open Oqec_circuit
open Oqec_dd
open Oqec_qasm

(* Streaming alternating-miter equivalence check: both circuits are
   consumed through {!Qasm_stream} and applied to the miter as they are
   parsed, so memory use is bounded by the diagram (plus one input
   chunk per side) rather than by circuit length.

   The scheduling policy adapts {!Dd_scheme} to the streaming setting,
   where total gate counts are unknown until the streams are exhausted:
   [Proportional] (and [Cost_metric], whose gate-weight totals are
   equally unknowable up front) fall back to byte proportions — file
   sizes are known and gate density is near-uniform for generated
   workloads, so the byte ratio keeps the product balanced around the
   identity just as the gate-count ratio does.  [Alternating] alternates
   strictly on applied-operation counts, and [Lookahead] applies one
   gate from each side speculatively and keeps the smaller diagram.
   [Auto] has no whole-circuit fingerprint to dispatch on and degrades
   to the byte-proportional rule.

   Operations are lowered to elementary gates one at a time (the same
   {!Decompose.elementary} pass the batch checker runs over the whole
   circuit; it is local, so per-operation lowering produces the same
   gate stream), and the left side is inverted operation by operation:
   D accumulates b_j ... b_0 * inv(a_0) ... inv(a_i), which is the
   identity at the end iff the circuits agree. *)

let fidelity_threshold = 1.0 -. 1e-9

module Of (C : Dd_core.S) = struct
  let conclude pkg n d =
    if C.is_identity ~up_to_phase:true pkg n d then Equivalence.Equivalent
    else if C.fidelity_to_identity pkg ~n d >= fidelity_threshold then
      Equivalence.Equivalent
    else Equivalence.Not_equivalent

  let package_counters ctx pkg =
    let st = C.stats pkg in
    Engine.Ctx.set ctx Engine.Dd_gc_run st.Dd.gc_runs;
    Engine.Ctx.set ctx Engine.Dd_cache_hit (Dd.cache_hits st);
    (match st.Dd.arena with
    | None -> ()
    | Some a ->
        Engine.Ctx.gauge ctx "dd.arena_occupancy" a.Dd.a_occupancy;
        Engine.Ctx.set ctx Engine.Dd_arena_compaction a.Dd.a_compactions;
        Engine.Ctx.set ctx Engine.Dd_shard_contention a.Dd.a_contended);
    st

  (* Parse header statements (includes, gate definitions) until the qreg
     is known.  Stray pre-qreg barriers are dropped — they carry no
     unitary meaning. *)
  let drive_header s =
    while (not (Qasm_stream.header_done s)) && Qasm_stream.step s ~emit:ignore do
      ()
    done;
    if not (Qasm_stream.header_done s) then
      raise (Qasm_stream.Unsupported "stream ended before any qreg declaration")

  (* Refill [q] with the elementary lowering of the next operations;
     false when the stream is exhausted and the queue stays empty.  At
     most one op-producing statement is parsed per call: the lexer
     cursor must track the application frontier, or the byte-ratio
     policy below would lose its progress signal. *)
  let refill s q ~lower =
    if Queue.is_empty q then begin
      let got = ref false in
      let emit op =
        List.iter
          (fun o ->
            Queue.add o q;
            got := true)
          (lower op)
      in
      while (not !got) && Qasm_stream.step s ~emit do
        ()
      done
    end;
    not (Queue.is_empty q)

  let checker ~scheme sa sb : Engine.checker =
    (module struct
      let name = "stream-dd"

      let run ctx _ _ =
        drive_header sa;
        drive_header sb;
        let n = max (Qasm_stream.num_qubits sa) (Qasm_stream.num_qubits sb) in
        let pkg =
          C.create ?tol:(Engine.Ctx.tol ctx) ?gc_threshold:(Engine.Ctx.gc_threshold ctx)
            ()
        in
        let lower op = Circuit.ops (Decompose.elementary (Circuit.add (Circuit.create n) op)) in
        let qa = Queue.create () and qb = Queue.create () in
        let d = ref (C.identity pkg n) in
        C.root pkg !d;
        C.on_safe_point pkg (fun () ->
            Engine.Ctx.incr ctx Engine.Dd_gate_applied;
            Engine.Ctx.check ctx);
        let commit nd =
          C.root pkg nd;
          C.unroot pkg !d;
          d := nd
        in
        (* Barriers are never applied to the diagram (they lower to no
           gates); they are counted as synchronisation tokens.  When the
           two sides were produced with barriers at matching logical
           positions, the policy below bounds cursor skew by one barrier
           interval — without a hard alignment signal, byte-proportional
           alternation drifts like a random walk and the miter grows
           with stream length.  Mismatched or absent barriers degrade
           scheduling, never correctness. *)
        let bars_a = ref 0 and bars_b = ref 0 in
        (* Re-anchor at sync points: when both sides have crossed the
           same number of barriers and the miter passes the same
           identity test the final verdict uses, snap it back to the
           exact identity.  This discards the accumulated global phase
           and, crucially, the floating-point dirt of the interval —
           without it the weight set grows without bound (every interval
           starts from a slightly dirty quasi-identity, canonical
           weights stop collapsing, sharing and cache hits degrade) and
           per-gate cost grows linearly with stream position.  Each
           interval is judged against the tolerance independently, so
           errors do not accumulate across intervals. *)
        (* Byte anchors of the last sync point.  The proportional rule
           below measures progress from these rather than from the start
           of the stream: the byte-density difference between the two
           sides is a random walk, and measured globally it makes the
           intra-interval cursor skew — and with it the transient miter
           size — grow with stream position. *)
        let last_a = ref 0 and last_b = ref 0 in
        let reanchor () =
          if !bars_a = !bars_b then begin
            last_a := Qasm_stream.consumed_bytes sa;
            last_b := Qasm_stream.consumed_bytes sb;
            if
              C.is_identity ~up_to_phase:true pkg n !d
              || C.fidelity_to_identity pkg ~n !d >= fidelity_threshold
            then commit (C.identity pkg n)
          end
        in
        let ops_a = ref 0 and ops_b = ref 0 in
        let apply_a () =
          match Queue.pop qa with
          | Circuit.Barrier ->
              incr bars_a;
              reanchor ()
          | op ->
              incr ops_a;
              Engine.Ctx.incr ctx Engine.Dd_left_applied;
              commit (C.apply_op_left pkg n !d (Circuit.inverse_op op))
        in
        let apply_b () =
          match Queue.pop qb with
          | Circuit.Barrier ->
              incr bars_b;
              reanchor ()
          | op ->
              incr ops_b;
              Engine.Ctx.incr ctx Engine.Dd_right_applied;
              commit (C.apply_op pkg n !d op)
        in
        let ta = Qasm_stream.total_bytes sa and tb = Qasm_stream.total_bytes sb in
        let continue = ref true in
        while !continue do
          let have_a = refill sa qa ~lower and have_b = refill sb qb ~lower in
          if not (have_a || have_b) then continue := false
          else if not have_b then apply_a ()
          else if not have_a then apply_b ()
          else if !bars_a > !bars_b then apply_b ()
          else if !bars_b > !bars_a then apply_a ()
          else if Queue.peek qa = Circuit.Barrier then apply_a ()
          else if Queue.peek qb = Circuit.Barrier then apply_b ()
          else begin
            match scheme with
            | Dd_scheme.Alternating ->
                (* Strict one-to-one alternation on applied operations,
                   the batch checker's baseline scheme. *)
                if !ops_a <= !ops_b then apply_a () else apply_b ()
            | Dd_scheme.Proportional | Dd_scheme.Cost_metric | Dd_scheme.Auto ->
                (* Advance the side lagging in consumed-bytes proportion,
                   mirroring the proportional scheme's ia*kb <= ib*ka.
                   Bytes are a fuzzy stand-in for gate indices, so the
                   product can drift away from the identity when the
                   sides' gate densities diverge; Lookahead resists the
                   drift at the price of applying each gate twice. *)
                if
                  (Qasm_stream.consumed_bytes sa - !last_a) * tb
                  <= (Qasm_stream.consumed_bytes sb - !last_b) * ta
                then apply_a ()
                else apply_b ()
            | Dd_scheme.Lookahead ->
                (* Apply one gate from each side speculatively and keep
                   the smaller diagram (see {!Miter.Make.peek_left});
                   the losing side's gate stays queued. *)
                let cand_a = C.apply_op_left pkg n !d (Circuit.inverse_op (Queue.peek qa)) in
                C.root pkg cand_a;
                let cand_b = C.apply_op pkg n !d (Queue.peek qb) in
                C.unroot pkg cand_a;
                if C.node_count pkg cand_a <= C.node_count pkg cand_b then begin
                  ignore (Queue.pop qa);
                  incr ops_a;
                  Engine.Ctx.incr ctx Engine.Dd_left_applied;
                  commit cand_a
                end
                else begin
                  ignore (Queue.pop qb);
                  incr ops_b;
                  Engine.Ctx.incr ctx Engine.Dd_right_applied;
                  commit cand_b
                end
          end
        done;
        let outcome = Engine.Ctx.span ctx ~cat:"dd" "conclude" (fun () -> conclude pkg n !d) in
        let st = package_counters ctx pkg in
        {
          Engine.outcome;
          peak_size = C.allocated pkg;
          final_size = C.node_count pkg !d;
          simulations = 0;
          note = "";
          dd = Some st;
          certificate = None;
        }
    end)
end

module Boxed = Of (Dd_core.Boxed_core)
module Arena = Of (Dd_core.Arena_core)

(* [check ?core ... path_a path_b] streams both files through the
   alternating miter.  The dummy circuits handed to {!Engine.run} are
   never inspected: the checker closes over the streams instead. *)
let check ?(core = Dd_core.Boxed) ?(scheme = Dd_scheme.Proportional) ?chunk_size ?tol
    ?gc_threshold ?deadline ?sink path_a path_b =
  let sa = Qasm_stream.open_file ?chunk_size path_a
  and sb = Qasm_stream.open_file ?chunk_size path_b in
  Fun.protect
    ~finally:(fun () ->
      Qasm_stream.close sa;
      Qasm_stream.close sb)
    (fun () ->
      let ctx = Engine.Ctx.make ?deadline ?tol ?gc_threshold ?sink () in
      let checker =
        match core with
        | Dd_core.Boxed -> Boxed.checker ~scheme sa sb
        | Dd_core.Arena -> Arena.checker ~scheme sa sb
      in
      Engine.run ~ctx ~method_used:Equivalence.Alternating_dd checker (Circuit.create 0)
        (Circuit.create 0))
