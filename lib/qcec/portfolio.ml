(* Parallel portfolio equivalence checking — the paper's actual Section
   6.1 configuration, generalised to a race combinator over any list of
   {!Engine.CHECKER}s: every entry runs on its own domain under its own
   derived execution context, and the first conclusive answer
   (Equivalent / Not_equivalent) wins.

   Cancellation protocol (cooperative, via [Atomic.t] flags polled at the
   checkers' existing safe points — DD gate applications, ZX rewriting
   loops, the per-gate simulation loop):

   - [stop_all] is set as soon as ANY worker is conclusive: non-drain
     workers (DD, ZX, stabilizer) abandon their work immediately.
   - [stop_drain] is set only when a non-drain worker is conclusive.
     Simulation shards are drain workers: when a sibling shard refutes,
     they are instead bounded by the shared minimal-refuting-index cell
     ([best], see {!Sim_checker.shard}) — they finish the still-relevant
     indices below [best] (a shrinking, cheap tail) and stop.  This
     drain is what makes the reported counterexample the global minimum
     of the stimulus stream — deterministic in the seed and independent
     of the shard count.

   Verdict determinism: every constituent checker is deterministic and
   sound, so whichever worker wins, a conclusive answer is the same one
   the sequential strategies would reach — racing only changes WHO
   answers (recorded in the report breakdown), never WHAT is answered. *)

open Oqec_base

let default_jobs () = max 1 (min 4 (Domain.recommended_domain_count () - 2))

type selection = { use_dd : bool; use_zx : bool; use_sim : bool; use_stab : bool }

let default_selection = { use_dd = true; use_zx = true; use_sim = true; use_stab = false }

let selection_of_string s =
  let parts =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun p -> p <> "")
  in
  if parts = [] then Error "empty checker selection"
  else
    let rec build sel = function
      | [] -> Ok sel
      | "dd" :: rest -> build { sel with use_dd = true } rest
      | "zx" :: rest -> build { sel with use_zx = true } rest
      | "sim" :: rest -> build { sel with use_sim = true } rest
      | "stab" :: rest -> build { sel with use_stab = true } rest
      | p :: _ -> Error (Printf.sprintf "unknown checker %S (expected dd, zx, sim, stab)" p)
    in
    build { use_dd = false; use_zx = false; use_sim = false; use_stab = false } parts

let selection_to_string sel =
  String.concat ","
    (List.concat
       [
         (if sel.use_dd then [ "dd" ] else []);
         (if sel.use_zx then [ "zx" ] else []);
         (if sel.use_sim then [ "sim" ] else []);
         (if sel.use_stab then [ "stab" ] else []);
       ])

(* One racer: [drain] workers are bounded by their own shared-progress
   protocol instead of being force-cancelled when a sibling drain worker
   wins (see the protocol note above). *)
type entry = { checker : Engine.checker; drain : bool }

let entry ?(drain = false) checker = { checker; drain }
let entry_name e =
  let module C = (val e.checker : Engine.CHECKER) in
  C.name

type slot =
  | Finished of Engine.verdict * float  (* verdict, worker-side elapsed *)
  | Stopped of float  (* worker was cancelled after this many seconds *)
  | Failed of exn * Printexc.raw_backtrace

let conclusive = function
  | Finished (v, _) -> (
      match v.Engine.outcome with
      | Equivalence.Equivalent | Equivalence.Not_equivalent -> true
      | Equivalence.No_information | Equivalence.Timed_out -> false)
  | Stopped _ | Failed _ -> false

let checker_run name = function
  | Finished (v, t) ->
      {
        Equivalence.checker = name;
        run_outcome = v.Engine.outcome;
        run_elapsed = t;
        run_note = v.Engine.note;
      }
  | Stopped t ->
      {
        Equivalence.checker = name;
        run_outcome = Equivalence.No_information;
        run_elapsed = t;
        run_note = "(cancelled)";
      }
  | Failed (e, _) ->
      {
        Equivalence.checker = name;
        run_outcome = Equivalence.No_information;
        run_elapsed = 0.0;
        run_note = Printf.sprintf "(error: %s)" (Printexc.to_string e);
      }

(* [race ~ctx ~jobs ?resolve entries g g'] runs every entry on its own
   domain and assembles the portfolio report.  [resolve] may remap the
   raw winning slot index to a display name and a canonical slot (used
   to surface the globally-minimal simulation counterexample). *)
let race ~ctx ?(jobs = 1) ?resolve entries g g' =
  let start = Mclock.now () in
  let entries = Array.of_list entries in
  let n = Array.length entries in
  if n = 0 then invalid_arg "Portfolio.race: no checkers";
  let stop_all = Atomic.make false in
  let stop_drain = Atomic.make false in
  let contexts =
    Array.mapi
      (fun i e ->
        let flag = if e.drain then stop_drain else stop_all in
        Engine.Ctx.worker ctx ~tid:(i + 2) ~cancel:(fun () -> Atomic.get flag) ())
      entries
  in
  let slots : slot option array = Array.make n None in
  let remaining = ref n in
  let m = Mutex.create () in
  let cv = Condition.create () in
  let run_worker i =
    let t0 = Mclock.now () in
    let s =
      match Engine.run_worker contexts.(i) entries.(i).checker g g' with
      | v -> Finished (v, Mclock.elapsed_since t0)
      | exception Equivalence.Cancelled -> Stopped (Mclock.elapsed_since t0)
      | exception e -> Failed (e, Printexc.get_raw_backtrace ())
    in
    Mutex.lock m;
    slots.(i) <- Some s;
    decr remaining;
    Condition.broadcast cv;
    Mutex.unlock m
  in
  let domains = Array.init n (fun i -> Domain.spawn (fun () -> run_worker i)) in
  let find_conclusive () =
    let rec go i =
      if i >= n then None
      else match slots.(i) with Some s when conclusive s -> Some i | _ -> go (i + 1)
    in
    go 0
  in
  Mutex.lock m;
  while !remaining > 0 && find_conclusive () = None do
    Condition.wait cv m
  done;
  let early = find_conclusive () in
  Mutex.unlock m;
  (* First conclusive answer wins: cancel the losers.  Drain workers are
     not force-cancelled when a sibling drain worker won — they finish
     their shrinking tail instead (see the protocol note). *)
  (match early with
  | Some i when entries.(i).drain -> Atomic.set stop_all true
  | Some _ ->
      Atomic.set stop_all true;
      Atomic.set stop_drain true
  | None -> ());
  Array.iter Domain.join domains;
  (* Surface unexpected worker crashes instead of masking them. *)
  Array.iter
    (function
      | Some (Failed (e, bt)) -> Printexc.raise_with_backtrace e bt
      | Some (Finished _ | Stopped _) | None -> ())
    slots;
  let verdict_of i = match slots.(i) with Some (Finished (v, _)) -> Some v | _ -> None in
  let winner =
    match early with
    | None -> None
    | Some i -> (
        match resolve with
        | None -> Some (entry_name entries.(i), Option.get (verdict_of i))
        | Some f ->
            let display, canonical = f i in
            let v =
              match verdict_of canonical with
              | Some v when v.Engine.outcome = Equivalence.Not_equivalent -> v
              | Some _ | None -> Option.get (verdict_of i)
            in
            Some (display, v))
  in
  let runs =
    List.init n (fun i -> checker_run (entry_name entries.(i)) (Option.get slots.(i)))
  in
  let engine_stats =
    List.init n (fun i ->
        let dd = Option.bind (verdict_of i) (fun v -> v.Engine.dd) in
        Engine.stats_of contexts.(i) ~name:(entry_name entries.(i)) dd)
  in
  let fold f init = Array.fold_left f init slots in
  let peak =
    fold
      (fun acc s ->
        match s with Some (Finished (v, _)) -> max acc v.Engine.peak_size | _ -> acc)
      0
  in
  let sims =
    fold
      (fun acc s ->
        match s with Some (Finished (v, _)) -> acc + v.Engine.simulations | _ -> acc)
      0
  in
  let any_timeout =
    Array.exists
      (function
        | Some (Finished (v, _)) -> v.Engine.outcome = Equivalence.Timed_out
        | _ -> false)
      slots
  in
  let outcome, final_size, note, winner_name =
    match winner with
    | Some (name, v) -> (v.Engine.outcome, v.Engine.final_size, v.Engine.note, Some name)
    | None ->
        ( (if any_timeout then Equivalence.Timed_out else Equivalence.No_information),
          0,
          "(no checker was conclusive)",
          None )
  in
  {
    Equivalence.outcome;
    method_used = Equivalence.Portfolio;
    elapsed = Mclock.elapsed_since start;
    peak_size = peak;
    final_size;
    simulations = sims;
    note;
    engine_stats;
    winner = winner_name;
    jobs;
    runs;
    certificate =
      (match winner with Some (_, v) -> v.Engine.certificate | None -> None);
  }

(* DD racers for one race: a concrete scheme races alone (the historical
   behaviour), while [Auto] is resolved through the dispatch table and
   paired with a structurally different scheme — when the table's
   profile-guided pick is wrong for this instance, the diverse partner
   covers for it, at the cost of one extra domain. *)
let scheme_racers ?table scheme g g' =
  match scheme with
  | Dd_scheme.Auto ->
      let resolved = Dd_dispatch.choose ?table g g' in
      let diverse =
        if resolved = Dd_scheme.Lookahead then Dd_scheme.Proportional
        else Dd_scheme.Lookahead
      in
      [ resolved; diverse ]
  | s -> [ s ]

let check ?tol ?gc_threshold ?(sim_runs = 16) ?(seed = 1) ?jobs ?deadline
    ?(scheme = Dd_scheme.Proportional) ?table ?schemes
    ?(checkers = default_selection) ?dd_core ?sink g g' =
  let jobs = match jobs with Some j when j >= 1 -> j | Some _ | None -> default_jobs () in
  let ctx = Engine.Ctx.make ?deadline ?tol ?gc_threshold ~sim_runs ~seed ?sink () in
  let best = Atomic.make max_int in
  let dd_schemes =
    match schemes with Some ss -> ss | None -> scheme_racers ?table scheme g g'
  in
  let fixed =
    List.concat
      [
        (if checkers.use_dd then
           List.map
             (fun s -> entry (Dd_checker.scheme_checker ?core:dd_core ~scheme:s ?table ()))
             dd_schemes
         else []);
        (if checkers.use_zx then [ entry Zx_checker.checker ] else []);
        (if checkers.use_stab then [ entry Stab_checker.checker ] else []);
      ]
  in
  let sim_base = List.length fixed in
  let shards =
    if checkers.use_sim then
      List.init jobs (fun s ->
          entry ~drain:true (Sim_checker.shard ?core:dd_core ~shard:s ~jobs ~best ()))
    else []
  in
  let entries = fixed @ shards in
  if entries = [] then invalid_arg "Portfolio.check: empty checker selection";
  (* When a simulation shard wins, the drain guarantees [best] holds the
     global minimal refuting stimulus index; its owner shard
     [sim_base + best mod jobs] carries the canonical counterexample
     note. *)
  let resolve i =
    if checkers.use_sim && i >= sim_base then
      ("simulation", sim_base + (Atomic.get best mod jobs))
    else (entry_name (List.nth entries i), i)
  in
  let jobs = if checkers.use_sim then jobs else 0 in
  race ~ctx ~jobs ~resolve entries g g'
