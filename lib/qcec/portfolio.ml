(* Parallel portfolio equivalence checking — the paper's actual Section
   6.1 configuration: the alternating-DD scheme, the ZX rewriter and a
   sharded random-stimuli checker race on separate domains, and the first
   conclusive answer (Equivalent / Not_equivalent) wins.

   Cancellation protocol (cooperative, via [Atomic.t] flags polled at the
   checkers' existing safe points — DD gate applications, ZX rewriting
   loops, the per-gate simulation loop):

   - [stop_dd_zx] is set as soon as ANY worker is conclusive: the DD and
     ZX workers abandon their miters immediately.
   - [stop_sims] is set only when a NON-simulation worker is conclusive.
     When a simulation shard refutes, the other shards are instead bounded
     by the shared minimal-refuting-index cell ([best], see
     {!Sim_checker.check_shard}): they finish the still-relevant indices
     below [best] (a shrinking, cheap tail) and stop.  This drain is what
     makes the reported counterexample the global minimum of the stimulus
     stream — deterministic in the seed and independent of the shard
     count.

   Verdict determinism: every constituent checker is deterministic and
   sound, so whichever worker wins, a conclusive answer is the same one
   the sequential strategies would reach — racing only changes WHO
   answers (recorded in the report breakdown), never WHAT is answered. *)

let default_jobs () = max 1 (min 4 (Domain.recommended_domain_count () - 2))

type slot =
  | Finished of Equivalence.report
  | Timed of float  (* worker hit the deadline after this many seconds *)
  | Stopped of float  (* worker was cancelled after this many seconds *)
  | Failed of exn * Printexc.raw_backtrace

let conclusive = function
  | Finished r -> (
      match r.Equivalence.outcome with
      | Equivalence.Equivalent | Equivalence.Not_equivalent -> true
      | Equivalence.No_information | Equivalence.Timed_out -> false)
  | Timed _ | Stopped _ | Failed _ -> false

let checker_run name = function
  | Finished (r : Equivalence.report) ->
      {
        Equivalence.checker = name;
        run_outcome = r.Equivalence.outcome;
        run_elapsed = r.Equivalence.elapsed;
        run_note = r.Equivalence.note;
      }
  | Timed t ->
      {
        Equivalence.checker = name;
        run_outcome = Equivalence.Timed_out;
        run_elapsed = t;
        run_note = "";
      }
  | Stopped t ->
      {
        Equivalence.checker = name;
        run_outcome = Equivalence.No_information;
        run_elapsed = t;
        run_note = "(cancelled)";
      }
  | Failed (e, _) ->
      {
        Equivalence.checker = name;
        run_outcome = Equivalence.No_information;
        run_elapsed = 0.0;
        run_note = Printf.sprintf "(error: %s)" (Printexc.to_string e);
      }

let check ?tol ?gc_threshold ?(sim_runs = 16) ?(seed = 1) ?jobs ?deadline
    ?(oracle = Dd_checker.Proportional) g g' =
  let start = Unix.gettimeofday () in
  let jobs = match jobs with Some j when j >= 1 -> j | Some _ | None -> default_jobs () in
  let stop_dd_zx = Atomic.make false in
  let stop_sims = Atomic.make false in
  let best = Atomic.make max_int in
  let workers =
    Array.append
      [|
        ( "alternating-dd",
          fun () ->
            Dd_checker.check_alternating ~oracle ?tol ?gc_threshold ?deadline
              ~cancel:stop_dd_zx g g' );
        ("zx-calculus", fun () -> Zx_checker.check ?deadline ~cancel:stop_dd_zx g g');
      |]
      (Array.init jobs (fun s ->
           ( Printf.sprintf "simulation-%d" s,
             fun () ->
               Sim_checker.check_shard ?tol ?gc_threshold ?deadline ~cancel:stop_sims
                 ~runs:sim_runs ~seed ~shard:s ~jobs ~best g g' )))
  in
  let n = Array.length workers in
  let slots : slot option array = Array.make n None in
  let remaining = ref n in
  let m = Mutex.create () in
  let cv = Condition.create () in
  let run_worker i =
    let _, f = workers.(i) in
    let t0 = Unix.gettimeofday () in
    let s =
      match f () with
      | r -> Finished r
      | exception Equivalence.Timeout -> Timed (Unix.gettimeofday () -. t0)
      | exception Equivalence.Cancelled -> Stopped (Unix.gettimeofday () -. t0)
      | exception e -> Failed (e, Printexc.get_raw_backtrace ())
    in
    Mutex.lock m;
    slots.(i) <- Some s;
    decr remaining;
    Condition.broadcast cv;
    Mutex.unlock m
  in
  let domains = Array.init n (fun i -> Domain.spawn (fun () -> run_worker i)) in
  let find_conclusive () =
    let rec go i =
      if i >= n then None
      else
        match slots.(i) with Some s when conclusive s -> Some i | _ -> go (i + 1)
    in
    go 0
  in
  Mutex.lock m;
  while !remaining > 0 && find_conclusive () = None do
    Condition.wait cv m
  done;
  let early = find_conclusive () in
  Mutex.unlock m;
  (* First conclusive answer wins: cancel the losers.  Simulation shards
     are not force-cancelled when a sibling shard won — they drain the
     remaining sub-[best] indices instead (see the protocol note). *)
  (match early with
  | Some i when i >= 2 -> Atomic.set stop_dd_zx true
  | Some _ ->
      Atomic.set stop_dd_zx true;
      Atomic.set stop_sims true
  | None -> ());
  Array.iter Domain.join domains;
  (* Surface unexpected worker crashes instead of masking them. *)
  Array.iter
    (function
      | Some (Failed (e, bt)) -> Printexc.raise_with_backtrace e bt
      | Some (Finished _ | Timed _ | Stopped _) | None -> ())
    slots;
  let report_of i =
    match slots.(i) with Some (Finished r) -> Some r | _ -> None
  in
  (* The winning checker and the report whose verdict/note we surface.
     When a simulation shard wins, the drain guarantees [best] holds the
     global minimal refuting stimulus index; its owner shard
     [2 + best mod jobs] carries the canonical counterexample note. *)
  let winner =
    match early with
    | None -> None
    | Some i when i < 2 -> Some (fst workers.(i), Option.get (report_of i))
    | Some i ->
        let min_index = Atomic.get best in
        let owner = 2 + (min_index mod jobs) in
        let r =
          match report_of owner with
          | Some r when r.Equivalence.outcome = Equivalence.Not_equivalent -> r
          | Some _ | None -> Option.get (report_of i)
        in
        Some ("simulation", r)
  in
  let runs = List.init n (fun i -> checker_run (fst workers.(i)) (Option.get slots.(i))) in
  let fold f init = Array.fold_left (fun acc s -> f acc s) init slots in
  let peak =
    fold (fun acc s -> match s with Some (Finished r) -> max acc r.Equivalence.peak_size | _ -> acc) 0
  in
  let sims =
    fold
      (fun acc s -> match s with Some (Finished r) -> acc + r.Equivalence.simulations | _ -> acc)
      0
  in
  let any_timeout =
    Array.exists
      (function
        | Some (Timed _) -> true
        | Some (Finished r) -> r.Equivalence.outcome = Equivalence.Timed_out
        | _ -> false)
      slots
  in
  let outcome, final_size, note, dd_stats, winner_name =
    match winner with
    | Some (name, r) ->
        ( r.Equivalence.outcome,
          r.Equivalence.final_size,
          r.Equivalence.note,
          r.Equivalence.dd_stats,
          Some name )
    | None ->
        ( (if any_timeout then Equivalence.Timed_out else Equivalence.No_information),
          0,
          "(no checker was conclusive)",
          None,
          None )
  in
  {
    Equivalence.outcome;
    method_used = Equivalence.Portfolio;
    elapsed = Unix.gettimeofday () -. start;
    peak_size = peak;
    final_size;
    simulations = sims;
    note;
    dd_stats;
    portfolio = Some { Equivalence.winner = winner_name; jobs; runs };
  }
