(** ZX-calculus equivalence checking (Section 5.1).

    Composes [G'] with the inverse of [G], rewrites the diagram to
    graph-like form and reduces it with the full PyZX-style procedure.
    Bare wires with the identity permutation prove equivalence; a
    non-identity permutation proves non-equivalence; remaining spiders
    yield [No_information].

    Every rewrite pass reports its firings to the context as
    ["zx.rewrites.<rule>"] counters, and the live spider count is traced
    as the ["zx.spiders"] gauge; the reported [peak_size] is the true
    running peak of the spider count over the whole reduction (not the
    initial size — transient growth from boundary pivots and phase
    gadgetization is included). *)

open Oqec_circuit

(** The ["zx-calculus"] checker. *)
val checker : Engine.checker

(** [cancel] is a portfolio stop flag polled by the rewriting loops'
    [should_stop]; raises {!Equivalence.Cancelled} when it fires. *)
val check :
  ?deadline:float -> ?cancel:bool Atomic.t -> Circuit.t -> Circuit.t -> Equivalence.report
