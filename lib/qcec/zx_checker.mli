(** ZX-calculus equivalence checking (Section 5.1).

    Composes [G'] with the inverse of [G], rewrites the diagram to
    graph-like form and reduces it with the full PyZX-style procedure.
    Bare wires with the identity permutation prove equivalence; a
    non-identity permutation proves non-equivalence; remaining spiders
    yield [No_information]. *)

open Oqec_circuit

(** [cancel] is a portfolio stop flag polled by the rewriting loops'
    [should_stop]; raises {!Equivalence.Cancelled} when it fires. *)
val check :
  ?deadline:float -> ?cancel:bool Atomic.t -> Circuit.t -> Circuit.t -> Equivalence.report
