open Oqec_circuit

(* Application schemes for the DD miter (Burgholzer & Wille, "Advanced
   Equivalence Checking for Quantum Circuits"): the order in which gates
   from the two sides are folded into D = U(G') * U(G)^dagger decides
   how far the product strays from the identity, and with it the DD
   sizes of the whole run.  Each scheme is a pure side-picking policy
   over a {!probe} snapshot; the miter mechanics live in {!Miter}. *)

type t = Alternating | Proportional | Lookahead | Cost_metric | Auto

let all = [ Alternating; Proportional; Lookahead; Cost_metric ]

let to_string = function
  | Alternating -> "alternating"
  | Proportional -> "proportional"
  | Lookahead -> "lookahead"
  | Cost_metric -> "cost"
  | Auto -> "auto"

let of_string = function
  | "alternating" -> Some Alternating
  | "proportional" -> Some Proportional
  | "lookahead" -> Some Lookahead
  | "cost" | "cost-metric" | "cost_metric" -> Some Cost_metric
  | "auto" -> Some Auto
  | _ -> None

type side = Left | Right

type probe = {
  left_applied : int;
  left_total : int;
  right_applied : int;
  right_total : int;
  left_cost_applied : int;
  left_cost_total : int;
  right_cost_applied : int;
  right_cost_total : int;
  live_size : unit -> int;
  peek_left : unit -> int;
  peek_right : unit -> int;
}

module type APPLICATION_SCHEME = sig
  val name : string

  (* Only consulted while both sides still have gates; the driver forces
     the surviving side once one is exhausted. *)
  val choose : probe -> side
end

(* Static per-gate growth weight for the cost-metric scheme: a rough
   model of how much a single application tends to inflate the miter.
   One-qubit Cliffords permute/phase existing nodes (1), non-Clifford
   one-qubit gates introduce fresh weights (2), swaps are three CNOTs
   (3), and each control multiplies the block structure the application
   has to thread (2 per wire touched, 3 when the target is also
   non-Clifford). *)
let op_cost = function
  | Circuit.Barrier -> 0
  | Circuit.Swap _ -> 3
  | Circuit.Gate (g, _) -> if Gate.is_clifford g then 1 else 2
  | Circuit.Ctrl (cs, g, _) ->
      (1 + List.length cs) * (if Gate.is_clifford g then 2 else 3)

let alternating : (module APPLICATION_SCHEME) =
  (module struct
    let name = "alternating"

    (* Strict one-to-one alternation — the paper's basic scheme, kept as
       the differential baseline.  When the sides' gate counts diverge
       (compiled circuits), the shorter side runs out early and the tail
       applies sequentially onto a far-from-identity product. *)
    let choose p = if p.left_applied <= p.right_applied then Left else Right
  end)

let proportional : (module APPLICATION_SCHEME) =
  (module struct
    let name = "proportional"

    (* Advance the side that lags behind relative to its total gate
       count, keeping the product balanced around the identity. *)
    let choose p =
      if p.left_applied * p.right_total <= p.right_applied * p.left_total then Left
      else Right
  end)

let lookahead : (module APPLICATION_SCHEME) =
  (module struct
    let name = "lookahead"

    (* Apply one gate from each side speculatively and keep whichever
       leaves the smaller diagram; the probes memoise the candidate so
       the committed side's application is not recomputed. *)
    let choose p = if p.peek_left () <= p.peek_right () then Left else Right
  end)

let cost_metric : (module APPLICATION_SCHEME) =
  (module struct
    let name = "cost"

    (* Proportional over accumulated {!op_cost} instead of raw indices:
       a side dense in multi-controlled or non-Clifford gates advances
       fewer (but heavier) gates per turn. *)
    let choose p =
      if p.left_cost_applied * p.right_cost_total <= p.right_cost_applied * p.left_cost_total
      then Left
      else Right
  end)

let impl = function
  | Alternating -> alternating
  | Proportional -> proportional
  | Lookahead -> lookahead
  | Cost_metric -> cost_metric
  | Auto -> invalid_arg "Dd_scheme.impl: Auto must be resolved through Dd_dispatch"
