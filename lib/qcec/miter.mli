open Oqec_circuit
open Oqec_dd

(** Explicit miter state for the DD checkers.

    A miter holds the evolving product
    [D = b_j ... b_0 * inv(a_0) ... inv(a_i)] over a DD package, plus
    the per-side cursors: the left side consumes [G] inverted from the
    right, the right side consumes [G'] from the left, and [D] is the
    identity once both are exhausted iff the circuits agree.  The order
    of applications — the application scheme — is the caller's business:
    drivers pick sides via {!Dd_scheme.APPLICATION_SCHEME} over
    {!Make.probe} snapshots. *)

(** Fidelity at or above this counts as identity, mirroring the
    structural test's tolerance. *)
val fidelity_threshold : float

module Make (C : Dd_core.S) : sig
  type t

  (** [create ctx ?trace g g'] aligns and lowers both circuits to
      elementary gates, allocates a package from the context's tuning
      knobs and pins the identity as the initial miter.  [trace] is
      called with the live node count after every commit (and once at
      creation).  Gate application is the package's GC safe point and
      the engine's deadline/cancellation polling point. *)
  val create : Engine.Ctx.t -> ?trace:(int -> unit) -> Circuit.t -> Circuit.t -> t

  val package : t -> C.pkg
  val qubits : t -> int

  (** The live (rooted) miter edge. *)
  val edge : t -> C.edge

  val left_remaining : t -> int
  val right_remaining : t -> int
  val exhausted : t -> bool

  (** Node count of the live miter. *)
  val live_size : t -> int

  (** Speculatively apply the side's next gate and return the resulting
      node count.  The candidate is memoised (and GC-rooted) until the
      next commit, so a following apply of the same side promotes it
      without recomputation. *)
  val peek_left : t -> int

  val peek_right : t -> int

  (** Commit the side's next gate into the miter (reusing the peeked
      candidate if one is cached), advance the cursor and bump the
      engine's per-side counter. *)
  val apply_left : t -> unit

  val apply_right : t -> unit
  val apply : t -> Dd_scheme.side -> unit

  (** Snapshot handed to {!Dd_scheme.APPLICATION_SCHEME.choose}. *)
  val probe : t -> Dd_scheme.probe

  (** Hilbert-Schmidt fidelity of the miter to the identity,
      [|tr D| / 2^n]. *)
  val fidelity : t -> float

  (** [1 - fidelity], the distance the schemes try to keep small. *)
  val identity_distance : t -> float

  (** Verdict on the (normally exhausted) miter: structural identity up
      to phase, with the fidelity fallback against
      {!fidelity_threshold}. *)
  val conclude : t -> Equivalence.outcome
end
