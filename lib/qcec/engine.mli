(** Instrumented execution engine shared by all checkers.

    Every checking strategy — reference DD, alternating DD, simulation,
    ZX rewriting, stabilizer tableaus, and any race over them — runs as
    a {!CHECKER} under {!run}.  The checker computes a bare {!verdict};
    the engine owns everything that used to be replicated per checker:
    monotonic-clock timing, deadline and cancellation polling, split-RNG
    seeding, trace-span emission, counter accounting, and assembly of
    the final {!Equivalence.report}. *)

open Oqec_base
open Oqec_circuit

(** Lock-free trace sink producing Chrome [trace_event] JSON.

    Workers racing on separate domains push events with a
    compare-and-set loop on a shared atomic list, so tracing needs no
    locks and costs nothing when disabled ({!Trace.null}). *)
module Trace : sig
  type event =
    | Span of { name : string; cat : string; tid : int; ts_ns : int64; dur_ns : int64 }
        (** completed phase: Chrome ["ph":"X"] *)
    | Count of { name : string; tid : int; ts_ns : int64; value : int }
        (** sampled counter: Chrome ["ph":"C"] *)

  type sink

  (** Disabled sink: every emission is a no-op. *)
  val null : sink

  (** Live sink; its epoch (event timestamps are relative to it) is the
      creation instant. *)
  val create : unit -> sink

  val active : sink -> bool
  val emit : sink -> event -> unit

  (** Events in emission order. *)
  val events : sink -> event list

  (** The whole trace as a Chrome [trace_event] JSON document
      ([{"traceEvents":[...]}]) loadable in [chrome://tracing] /
      Perfetto. *)
  val to_chrome_json : sink -> string

  (** Total span duration in seconds, aggregated by span name and
      sorted by name — the per-phase totals recorded by [bench]. *)
  val totals : sink -> (string * float) list
end

(** Typed counters a checker can bump; the engine maps them to stable
    string keys in {!Equivalence.engine_stats} and to trace counter
    tracks. *)
type counter =
  | Dd_gate_applied  (** ["dd.gates_applied"] *)
  | Dd_left_applied  (** ["dd.left_applied"] — miter gates taken from G *)
  | Dd_right_applied  (** ["dd.right_applied"] — miter gates taken from G' *)
  | Dd_scheme_used of string
      (** ["dd.scheme.<name>"] — set to 1 for the application scheme a DD
          run resolved to (records what [auto] picked) *)
  | Dd_gc_run  (** ["dd.gc_runs"] *)
  | Dd_cache_hit  (** ["dd.cache_hits"] *)
  | Dd_arena_compaction  (** ["dd.arena_compactions"] *)
  | Dd_shard_contention  (** ["dd.shard_contention"] *)
  | Zx_rewrite of string  (** ["zx.rewrites.<rule>"] *)
  | Sim_stimulus  (** ["sim.stimuli"] *)
  | Stab_row  (** ["stab.rows_canonicalized"] *)

val counter_key : counter -> string

(** Execution context: deadline, cancellation, tuning knobs, RNG seed
    and the trace sink, handed by the engine to a checker's [run].

    Contexts are single-owner (one domain mutates one context); the
    only shared piece is the lock-free trace {!Trace.sink}.  A race
    derives one context per worker with {!Ctx.worker}. *)
module Ctx : sig
  type t

  val make :
    ?deadline:float ->
    ?cancel:(unit -> bool) ->
    ?tol:float ->
    ?gc_threshold:int ->
    ?sim_runs:int ->
    ?seed:int ->
    ?sink:Trace.sink ->
    unit ->
    t
  (** [deadline] is absolute monotonic time ({!Mclock.now}-based). *)

  (** [worker ctx ~tid ?cancel ()] derives a context for one racing
      worker: fresh counters and guard (combining the parent deadline
      with the worker's own cancellation flag), shared trace sink,
      distinct trace thread id. *)
  val worker : t -> tid:int -> ?cancel:(unit -> bool) -> unit -> t

  (** Derived context with a (possibly tighter) deadline; counters are
      shared with the parent — used for the combined strategy's
      simulation screen. *)
  val with_deadline : t -> float -> t

  (** Derived context with a different simulation run budget (counters
      shared, like {!with_deadline}). *)
  val with_sim_runs : t -> int -> t

  val deadline : t -> float option
  val tol : t -> float option
  val gc_threshold : t -> int option
  val sim_runs : t -> int option
  val seed : t -> int option
  val sink : t -> Trace.sink
  val tid : t -> int

  (** [rng_at ctx i] is the pure split-RNG stream for stimulus [i] —
      identical regardless of sharding (see {!Oqec_base.Rng.split_at}). *)
  val rng_at : t -> int -> Rng.t

  (** Deadline/cancellation safe point: raises {!Equivalence.Timeout} /
      {!Equivalence.Cancelled}. *)
  val check : t -> unit

  (** Predicate form for ZX's [should_stop]-style callbacks. *)
  val stopper : t -> unit -> bool

  val cancelled : t -> bool
  val incr : t -> counter -> unit
  val add : t -> counter -> int -> unit

  (** Set a counter to an absolute value (e.g. final DD package cache
      hits). *)
  val set : t -> counter -> int -> unit

  (** [gauge ctx key v] records instantaneous level [v] (e.g. the live
      ZX spider count) on the trace counter track [key] and keeps the
      running maximum under [key ^ ".peak"] in the counters. *)
  val gauge : t -> string -> int -> unit

  (** Accumulated counters, sorted by key. *)
  val counters : t -> (string * int) list

  (** [span ctx ~cat name f] runs [f] inside a trace span; the span is
      closed (and emitted) even when [f] raises. *)
  val span : t -> cat:string -> string -> (unit -> 'a) -> 'a
end

(** What a checker computes; the engine turns it into a full
    {!Equivalence.report}. *)
type verdict = {
  outcome : Equivalence.outcome;
  peak_size : int;
  final_size : int;
  simulations : int;
  note : string;
  dd : Oqec_dd.Dd.stats option;
  certificate : Oqec_cert.Cert.t option;
      (** replayable evidence attached by the checker (ZX rewrite trace
          or refuting stimulus); [None] when the checker produced none *)
}

module type CHECKER = sig
  val name : string
  val run : Ctx.t -> Circuit.t -> Circuit.t -> verdict
end

type checker = (module CHECKER)

(** Engine-stats entry for a finished (or cancelled) worker: the
    context's counters plus the checker's DD package statistics, if it
    produced any. *)
val stats_of : Ctx.t -> name:string -> Oqec_dd.Dd.stats option -> Equivalence.engine_stats

(** [run_worker ctx checker g g'] executes the checker inside a trace
    span named after it.  {!Equivalence.Timeout} becomes a [Timed_out]
    verdict; {!Equivalence.Cancelled} propagates (races rely on it). *)
val run_worker : Ctx.t -> checker -> Circuit.t -> Circuit.t -> verdict

(** [run ~ctx ~method_used checker g g'] is {!run_worker} plus report
    assembly: elapsed monotonic time, a single {!Equivalence.checker_run}
    entry and the engine-stats payload. *)
val run :
  ctx:Ctx.t ->
  method_used:Equivalence.method_used ->
  checker ->
  Circuit.t ->
  Circuit.t ->
  Equivalence.report
