open Oqec_base
open Oqec_zx

let check ?deadline ?cancel g g' =
  let start = Unix.gettimeofday () in
  let gd =
    Equivalence.Guard.make ?deadline
      ?cancel:(Option.map (fun flag () -> Atomic.get flag) cancel)
      ()
  in
  let g, g' = Flatten.align g g' in
  let a = Flatten.flatten g and b = Flatten.flatten g' in
  let diagram = Zx_circuit.of_miter a b in
  let before = Zx_graph.spider_count diagram in
  let completed =
    Zx_simplify.full_reduce ~should_stop:(Equivalence.Guard.stopper gd) diagram
  in
  let after = Zx_graph.spider_count diagram in
  (* [should_stop] swallows the guard's exceptions; re-raise cancellation
     so a losing portfolio worker is reported as cancelled, not as a
     timeout. *)
  if (not completed) && Equivalence.Guard.cancelled gd then raise Equivalence.Cancelled;
  let outcome =
    if not completed then Equivalence.Timed_out
    else
      match Zx_simplify.extract_permutation diagram with
      | Some p when Perm.is_identity p -> Equivalence.Equivalent
      | Some _ -> Equivalence.Not_equivalent
      | None -> Equivalence.No_information
  in
  {
    Equivalence.outcome;
    method_used = Equivalence.Zx_calculus;
    elapsed = Unix.gettimeofday () -. start;
    peak_size = before;
    final_size = after;
    simulations = 0;
    note =
      (match outcome with
      | Equivalence.No_information ->
          Printf.sprintf "(%d spiders remain; strong indication of non-equivalence)" after
      | Equivalence.Equivalent | Equivalence.Not_equivalent | Equivalence.Timed_out -> "");
    dd_stats = None;
    portfolio = None;
  }
