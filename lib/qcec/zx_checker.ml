open Oqec_base
open Oqec_zx

let checker : Engine.checker =
  (module struct
    let name = "zx-calculus"

    let run ctx g g' =
      let g, g' = Flatten.align g g' in
      let a = Flatten.flatten g and b = Flatten.flatten g' in
      let diagram =
        Engine.Ctx.span ctx ~cat:"zx" "build-miter" (fun () -> Zx_circuit.of_miter a b)
      in
      (* Boundary vertices are never created or destroyed by the rewrite
         passes, so live and peak spider counts are vertex counts minus
         this constant. *)
      let boundaries = Zx_graph.num_vertices diagram - Zx_graph.spider_count diagram in
      let observe rule count =
        Engine.Ctx.add ctx (Engine.Zx_rewrite rule) count;
        Engine.Ctx.gauge ctx "zx.spiders" (Zx_graph.num_vertices diagram - boundaries)
      in
      (* The incremental engine also reports its live worklist length;
         the gauge keeps the peak under "zx.worklist.peak" so --trace
         shows how much re-enqueued work the rewrites generated. *)
      let on_pending n = Engine.Ctx.gauge ctx "zx.worklist" n in
      (* Record the fired rewrites as certificate steps; the list only
         becomes a certificate when the reduction proves equivalence. *)
      let steps = ref [] in
      let record s = steps := s :: !steps in
      let completed =
        Engine.Ctx.span ctx ~cat:"zx" "full-reduce" (fun () ->
            Zx_simplify.full_reduce ~should_stop:(Engine.Ctx.stopper ctx) ~observe
              ~on_pending ~record diagram)
      in
      let after = Zx_graph.spider_count diagram in
      (* [should_stop] swallows the guard's exceptions; re-raise
         cancellation so a losing portfolio worker is reported as
         cancelled, not as a timeout. *)
      if (not completed) && Engine.Ctx.cancelled ctx then raise Equivalence.Cancelled;
      let outcome =
        if not completed then Equivalence.Timed_out
        else
          match Zx_simplify.extract_permutation diagram with
          | Some p when Perm.is_identity p -> Equivalence.Equivalent
          | Some _ -> Equivalence.Not_equivalent
          | None -> Equivalence.No_information
      in
      {
        Engine.outcome;
        (* The running peak over the diagram's whole lifetime — rewrites
           such as boundary pivoting and gadgetization grow the graph
           transiently before shrinking it, which a before/after spider
           count cannot see. *)
        peak_size = Zx_graph.peak_vertices diagram - boundaries;
        final_size = after;
        simulations = 0;
        note =
          (match outcome with
          | Equivalence.No_information ->
              Printf.sprintf "(%d spiders remain; strong indication of non-equivalence)"
                after
          | Equivalence.Equivalent | Equivalence.Not_equivalent | Equivalence.Timed_out ->
              "");
        dd = None;
        certificate =
          (match outcome with
          | Equivalence.Equivalent ->
              Some (Oqec_cert.Cert.Zx_proof { a; b; steps = List.rev !steps })
          | Equivalence.Not_equivalent | Equivalence.No_information
          | Equivalence.Timed_out ->
              None);
      }
  end)

let check ?deadline ?cancel g g' =
  let ctx =
    Engine.Ctx.make ?deadline
      ?cancel:(Option.map (fun flag () -> Atomic.get flag) cancel)
      ()
  in
  Engine.run ~ctx ~method_used:Equivalence.Zx_calculus checker g g'
