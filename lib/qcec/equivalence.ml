open Oqec_base

type outcome = Equivalent | Not_equivalent | No_information | Timed_out

type method_used =
  | Reference_dd
  | Alternating_dd
  | Simulation
  | Zx_calculus
  | Combined
  | Stabilizer
  | Portfolio

type checker_run = {
  checker : string;
  run_outcome : outcome;
  run_elapsed : float;
  run_note : string;
}

type engine_stats = {
  engine : string;
  counters : (string * int) list;
  dd : Oqec_dd.Dd.stats option;
}

type report = {
  outcome : outcome;
  method_used : method_used;
  elapsed : float;
  peak_size : int;
  final_size : int;
  simulations : int;
  note : string;
  engine_stats : engine_stats list;
  winner : string option;
  jobs : int;
  runs : checker_run list;
  certificate : Oqec_cert.Cert.t option;
}

let dd_stats r =
  List.fold_left
    (fun acc e -> match acc with Some _ -> acc | None -> e.dd)
    None r.engine_stats

exception Timeout
exception Cancelled

module Guard = struct
  type t = {
    deadline : float option;
    cancel : (unit -> bool) option;
    mutable calls : int;
    mutable expired : bool;
  }

  (* The clock is consulted on the first call and then once per [quantum]
     calls: an [Mclock.now] per gate application dominates cheap gates,
     while one per quantum keeps deadline behaviour identical within a
     single polling window.  Cancellation is a plain atomic load behind
     the closure and stays on every call so workers stop promptly. *)
  let quantum = 64

  let make ?deadline ?cancel () = { deadline; cancel; calls = 0; expired = false }

  let check g =
    (match g.cancel with Some stop when stop () -> raise Cancelled | _ -> ());
    match g.deadline with
    | None -> ()
    | Some d ->
        if g.expired then raise Timeout;
        g.calls <- g.calls + 1;
        if g.calls land (quantum - 1) = 1 && Mclock.now () > d then begin
          g.expired <- true;
          raise Timeout
        end

  let stopper g () = match check g with () -> false | exception (Timeout | Cancelled) -> true
  let cancelled g = match g.cancel with Some stop -> stop () | None -> false
end

let outcome_to_string = function
  | Equivalent -> "equivalent"
  | Not_equivalent -> "not equivalent"
  | No_information -> "no information"
  | Timed_out -> "timeout"

let method_to_string = function
  | Reference_dd -> "reference-dd"
  | Alternating_dd -> "alternating-dd"
  | Simulation -> "simulation"
  | Zx_calculus -> "zx-calculus"
  | Combined -> "combined"
  | Stabilizer -> "stabilizer"
  | Portfolio -> "portfolio"

(* RFC 8259 string escaping.  [Printf %S] is OCaml literal syntax, not
   JSON: it emits decimal escapes such as [\027] for control characters
   and [\ddd] for non-ASCII bytes, both invalid JSON. *)
let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let checker_run_to_json cr =
  Printf.sprintf "{\"checker\":%s,\"outcome\":%s,\"elapsed\":%.6f,\"note\":%s}"
    (json_string cr.checker)
    (json_string (outcome_to_string cr.run_outcome))
    cr.run_elapsed (json_string cr.run_note)

let engine_stats_to_json e =
  Printf.sprintf "{\"engine\":%s,\"counters\":{%s},\"dd\":%s}"
    (json_string e.engine)
    (String.concat ","
       (List.map (fun (k, v) -> Printf.sprintf "%s:%d" (json_string k) v) e.counters))
    (match e.dd with Some s -> Oqec_dd.Dd.stats_to_json s | None -> "null")

let report_to_json r =
  Printf.sprintf
    "{\"outcome\":%s,\"method\":%s,\"elapsed\":%.6f,\"peak_size\":%d,\"final_size\":%d,\"simulations\":%d,\"note\":%s,\"winner\":%s,\"jobs\":%d,\"runs\":[%s],\"engine_stats\":[%s],\"certificate\":%s}"
    (json_string (outcome_to_string r.outcome))
    (json_string (method_to_string r.method_used))
    r.elapsed r.peak_size r.final_size r.simulations (json_string r.note)
    (match r.winner with Some w -> json_string w | None -> "null")
    r.jobs
    (String.concat "," (List.map checker_run_to_json r.runs))
    (String.concat "," (List.map engine_stats_to_json r.engine_stats))
    (match r.certificate with
    | Some c -> json_string (Oqec_cert.Cert.summary c)
    | None -> "null")

let pp_report ppf r =
  Format.fprintf ppf "%s [%s, %.3fs, peak %d, final %d%s]%s"
    (outcome_to_string r.outcome)
    (method_to_string r.method_used)
    r.elapsed r.peak_size r.final_size
    (if r.simulations > 0 then Printf.sprintf ", %d sims" r.simulations else "")
    (if r.note = "" then "" else " " ^ r.note);
  if List.length r.runs > 1 then begin
    Format.fprintf ppf "@\n  portfolio (%d sim job%s)%s:" r.jobs
      (if r.jobs = 1 then "" else "s")
      (match r.winner with Some w -> ", winner " ^ w | None -> ", no winner");
    List.iter
      (fun cr ->
        Format.fprintf ppf "@\n    %-16s %-15s %.3fs%s" cr.checker
          (outcome_to_string cr.run_outcome)
          cr.run_elapsed
          (if cr.run_note = "" then "" else " " ^ cr.run_note))
      r.runs
  end
