type outcome = Equivalent | Not_equivalent | No_information | Timed_out

type method_used =
  | Reference_dd
  | Alternating_dd
  | Simulation
  | Zx_calculus
  | Combined
  | Stabilizer

type report = {
  outcome : outcome;
  method_used : method_used;
  elapsed : float;
  peak_size : int;
  final_size : int;
  simulations : int;
  note : string;
  dd_stats : Oqec_dd.Dd.stats option;
}

exception Timeout

let guard = function
  | None -> ()
  | Some deadline -> if Unix.gettimeofday () > deadline then raise Timeout

let stopper deadline () =
  match deadline with None -> false | Some d -> Unix.gettimeofday () > d

let outcome_to_string = function
  | Equivalent -> "equivalent"
  | Not_equivalent -> "not equivalent"
  | No_information -> "no information"
  | Timed_out -> "timeout"

let method_to_string = function
  | Reference_dd -> "reference-dd"
  | Alternating_dd -> "alternating-dd"
  | Simulation -> "simulation"
  | Zx_calculus -> "zx-calculus"
  | Combined -> "combined"
  | Stabilizer -> "stabilizer"

let report_to_json r =
  Printf.sprintf
    "{\"outcome\":%S,\"method\":%S,\"elapsed\":%.6f,\"peak_size\":%d,\"final_size\":%d,\"simulations\":%d,\"note\":%S,\"dd_stats\":%s}"
    (outcome_to_string r.outcome)
    (method_to_string r.method_used)
    r.elapsed r.peak_size r.final_size r.simulations r.note
    (match r.dd_stats with
    | Some s -> Oqec_dd.Dd.stats_to_json s
    | None -> "null")

let pp_report ppf r =
  Format.fprintf ppf "%s [%s, %.3fs, peak %d, final %d%s]%s"
    (outcome_to_string r.outcome)
    (method_to_string r.method_used)
    r.elapsed r.peak_size r.final_size
    (if r.simulations > 0 then Printf.sprintf ", %d sims" r.simulations else "")
    (if r.note = "" then "" else " " ^ r.note)
