open Oqec_base
open Oqec_zx
open Oqec_cert

let certify outcome g g' =
  let aligned () =
    let g, g' = Flatten.align g g' in
    (Flatten.flatten g, Flatten.flatten g')
  in
  match outcome with
  | Equivalence.Equivalent -> (
      let a, b = aligned () in
      let steps = ref [] in
      let diagram = Zx_circuit.of_miter a b in
      let completed =
        Zx_simplify.full_reduce ~record:(fun s -> steps := s :: !steps) diagram
      in
      if not completed then Error "zx reduction was interrupted"
      else
        match Zx_simplify.extract_permutation diagram with
        | Some p when Perm.is_identity p ->
            Ok (Cert.Zx_proof { a; b; steps = List.rev !steps })
        | Some _ | None ->
            Error "zx reduction did not reach the identity; cannot certify equivalence"
      )
  | Equivalence.Not_equivalent -> (
      let a, b = aligned () in
      match Cert.find_witness a b with
      | Some (index, prep, fidelity) ->
          Ok (Cert.Witness { a; b; index; prep; fidelity })
      | None ->
          Error
            "no refuting stimulus found (circuits too wide for dense search, or \
             fidelity too close to 1)")
  | Equivalence.No_information | Equivalence.Timed_out ->
      Error "inconclusive outcomes cannot be certified"
