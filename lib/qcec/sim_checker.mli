(** Random-stimuli simulation (the non-equivalence detector of [20]/[45]).

    Runs both circuits on random computational basis states with
    decision-diagram simulation and compares output states by fidelity.
    A single mismatch proves non-equivalence; agreement on all runs
    yields [No_information] (strong evidence, not proof). *)

open Oqec_circuit

val check :
  ?tol:float ->
  ?gc_threshold:int ->
  ?runs:int ->
  ?seed:int ->
  ?deadline:float ->
  Circuit.t ->
  Circuit.t ->
  Equivalence.report

(** [check_states ?tol ?deadline g g'] decides whether the two circuits
    prepare the same state from |0...0> up to global phase — a weaker
    relation than unitary equivalence (e.g. the GHZ fan-out and chain
    preparations agree as state preparations but not as unitaries).
    Unlike random-stimuli checking this is a decision procedure: the two
    output state-vector DDs are compared by exact fidelity. *)
val check_states :
  ?tol:float ->
  ?gc_threshold:int ->
  ?deadline:float ->
  Circuit.t ->
  Circuit.t ->
  Equivalence.report
