(** Random-stimuli simulation (the non-equivalence detector of [20]/[45]).

    Runs both circuits on random computational basis states with
    decision-diagram simulation and compares output states by fidelity.
    A single mismatch proves non-equivalence; agreement on all runs
    yields [No_information] (strong evidence, not proof).

    Stimulus [i] is a pure function of [(seed, i)] (drawn from
    {!Oqec_base.Rng.split_at}), so the stimulus stream — and with it the
    reported counterexample — is identical whether the indices are
    checked sequentially by {!checker} or spread over shards by
    {!shard}.  The run count and seed come from the execution context
    ({!Engine.Ctx.sim_runs}, default 16; {!Engine.Ctx.seed}, default 1);
    every completed stimulus bumps the ["sim.stimuli"] counter. *)

open Oqec_circuit
open Oqec_dd

(** The sequential ["simulation"] checker (boxed DD core). *)
val checker : Engine.checker

(** {!checker} over an explicit DD core ({!Dd_core.kind}). *)
val checker_core : Dd_core.kind -> Engine.checker

(** [shard ~shard ~jobs ~best] is the portfolio worker
    ["simulation-<shard>"]: it checks stimulus indices
    [shard, shard+jobs, ...] below the context's run count in increasing
    order.  [best] is the shared minimal-refuting-index cell (initially
    [max_int]): a shard that finds a mismatch at index [i] lowers [best]
    to [i] (monotonically), and every shard stops scanning at
    [Atomic.get best] — so after all shards return, [best] is the
    {e global} minimal refuting index, independent of [jobs].  A
    stimulus whose index stops being minimal mid-run is abandoned via
    {!Equivalence.Cancelled}; the context's own cancellation aborts the
    whole shard (another checker of the portfolio won).  [core] selects
    the DD package representation; the stimulus stream and the reported
    counterexample are identical for both cores. *)
val shard :
  ?core:Dd_core.kind ->
  shard:int ->
  jobs:int ->
  best:int Atomic.t ->
  unit ->
  Engine.checker

(** [stimulus_bits ~seed ~index n] is the deterministic bit pattern of
    stimulus [index] (exposed for the sharding determinism tests). *)
val stimulus_bits : seed:int -> index:int -> int -> bool array

val check :
  ?tol:float ->
  ?gc_threshold:int ->
  ?runs:int ->
  ?seed:int ->
  ?deadline:float ->
  ?cancel:bool Atomic.t ->
  Circuit.t ->
  Circuit.t ->
  Equivalence.report

(** {!shard} under a fresh context (see {!shard} for the protocol). *)
val check_shard :
  ?core:Dd_core.kind ->
  ?tol:float ->
  ?gc_threshold:int ->
  ?deadline:float ->
  ?cancel:bool Atomic.t ->
  runs:int ->
  seed:int ->
  shard:int ->
  jobs:int ->
  best:int Atomic.t ->
  Circuit.t ->
  Circuit.t ->
  Equivalence.report

(** [check_states ?tol ?deadline g g'] decides whether the two circuits
    prepare the same state from |0...0> up to global phase — a weaker
    relation than unitary equivalence (e.g. the GHZ fan-out and chain
    preparations agree as state preparations but not as unitaries).
    Unlike random-stimuli checking this is a decision procedure: the two
    output state-vector DDs are compared by exact fidelity. *)
val check_states :
  ?tol:float ->
  ?gc_threshold:int ->
  ?deadline:float ->
  ?cancel:bool Atomic.t ->
  Circuit.t ->
  Circuit.t ->
  Equivalence.report
