(** Stabilizer-tableau equivalence checking for the Clifford fragment.

    A complete, polynomial-time decision procedure for circuits composed
    entirely of Clifford gates (the fragment for which the paper notes
    the basic ZX ruleset is complete): both circuits' Heisenberg
    conjugation tableaus are built and compared.  Non-Clifford gates
    yield [No_information].  Extension beyond the paper's two paradigms;
    see DESIGN.md.  Each tableau contributes its [2n] canonical rows to
    the ["stab.rows_canonicalized"] counter. *)

open Oqec_circuit

(** The ["stabilizer"] checker. *)
val checker : Engine.checker

val check :
  ?deadline:float -> ?cancel:bool Atomic.t -> Circuit.t -> Circuit.t -> Equivalence.report
