open Oqec_base
open Oqec_circuit
open Oqec_dd
open Oqec_workloads

let check_states ?tol ?gc_threshold ?deadline g g' =
  let start = Unix.gettimeofday () in
  let g, g' = Flatten.align g g' in
  let a = Flatten.flatten g and b = Flatten.flatten g' in
  let n = Circuit.num_qubits a in
  let pkg = Dd.create ?tol ?gc_threshold () in
  let run c =
    List.fold_left
      (fun acc op ->
        Equivalence.guard deadline;
        Dd_circuit.apply_op_vec pkg n acc op)
      (Dd.kets_bits pkg n (fun _ -> false))
      (Circuit.ops c)
  in
  let va = run a in
  (* Pin the first output state while the second circuit runs through the
     package's GC safe points. *)
  Dd.root pkg va;
  let vb = run b in
  let fidelity = Cx.mag (Dd.inner pkg va vb) in
  let outcome =
    if fidelity >= 1.0 -. 1e-9 then Equivalence.Equivalent else Equivalence.Not_equivalent
  in
  {
    Equivalence.outcome;
    method_used = Equivalence.Simulation;
    elapsed = Unix.gettimeofday () -. start;
    peak_size = Dd.allocated pkg;
    final_size = Dd.node_count va + Dd.node_count vb;
    simulations = 1;
    note = Printf.sprintf "(state fidelity %.9f)" fidelity;
    dd_stats = Some (Dd.stats pkg);
  }

let check ?tol ?gc_threshold ?(runs = 16) ?(seed = 1) ?deadline g g' =
  let start = Unix.gettimeofday () in
  let g, g' = Flatten.align g g' in
  let a = Flatten.flatten g and b = Flatten.flatten g' in
  let n = Circuit.num_qubits a in
  let pkg = Dd.create ?tol ?gc_threshold () in
  let rng = Rng.make ~seed in
  (* Build every gate DD once; the runs only pay for state evolution.
     The gate DDs are reused across runs, so they are pinned as GC roots
     — a collection during state evolution must not sever their sharing
     with the unique table. *)
  let dds c = List.concat_map (Dd_circuit.op_dds pkg n) (Circuit.ops c) in
  let dds_a = dds a and dds_b = dds b in
  List.iter (Dd.root pkg) dds_a;
  List.iter (Dd.root pkg) dds_b;
  let apply gs v =
    List.fold_left
      (fun acc gdd ->
        Equivalence.guard deadline;
        Dd.mul_vec pkg gdd acc)
      v gs
  in
  let rec run k =
    if k > runs then (Equivalence.No_information, k - 1)
    else begin
      let bits = Workloads.random_bits rng n in
      let input () = Dd.kets_bits pkg n (fun q -> bits.(q)) in
      let va = apply dds_a (input ()) in
      let vb = apply dds_b (input ()) in
      let fidelity = Cx.mag (Dd.inner pkg va vb) in
      if fidelity < 1.0 -. 1e-9 then (Equivalence.Not_equivalent, k)
      else run (k + 1)
    end
  in
  let outcome, performed = run 1 in
  {
    Equivalence.outcome;
    method_used = Equivalence.Simulation;
    elapsed = Unix.gettimeofday () -. start;
    peak_size = Dd.allocated pkg;
    final_size = 0;
    simulations = performed;
    note =
      (match outcome with
      | Equivalence.No_information ->
          Printf.sprintf "(all %d random stimuli agreed)" performed
      | Equivalence.Not_equivalent | Equivalence.Equivalent | Equivalence.Timed_out -> "");
    dd_stats = Some (Dd.stats pkg);
  }
