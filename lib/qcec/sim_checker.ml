open Oqec_base
open Oqec_circuit
open Oqec_dd
open Oqec_workloads

let atomic_pred = Option.map (fun flag () -> Atomic.get flag)

let check_states ?tol ?gc_threshold ?deadline ?cancel g g' =
  let start = Unix.gettimeofday () in
  let g, g' = Flatten.align g g' in
  let a = Flatten.flatten g and b = Flatten.flatten g' in
  let n = Circuit.num_qubits a in
  let pkg = Dd.create ?tol ?gc_threshold () in
  let gd = Equivalence.Guard.make ?deadline ?cancel:(atomic_pred cancel) () in
  Dd.on_safe_point pkg (fun () -> Equivalence.Guard.check gd);
  let run c =
    List.fold_left
      (fun acc op -> Dd_circuit.apply_op_vec pkg n acc op)
      (Dd.kets_bits pkg n (fun _ -> false))
      (Circuit.ops c)
  in
  let va = run a in
  (* Pin the first output state while the second circuit runs through the
     package's GC safe points. *)
  Dd.root pkg va;
  let vb = run b in
  let fidelity = Cx.mag (Dd.inner pkg va vb) in
  let outcome =
    if fidelity >= 1.0 -. 1e-9 then Equivalence.Equivalent else Equivalence.Not_equivalent
  in
  {
    Equivalence.outcome;
    method_used = Equivalence.Simulation;
    elapsed = Unix.gettimeofday () -. start;
    peak_size = Dd.allocated pkg;
    final_size = Dd.node_count va + Dd.node_count vb;
    simulations = 1;
    note = Printf.sprintf "(state fidelity %.9f)" fidelity;
    dd_stats = Some (Dd.stats pkg);
    portfolio = None;
  }

(* Stimulus [i] is a pure function of (seed, i): its bits come from the
   [i]th indexed split of the base generator (see {!Rng.split_at}), so a
   shard checking indices {s, s+k, ...} sees exactly the bits the
   sequential checker uses at those indices — counterexamples are
   identical for a given seed no matter how stimuli are spread over
   workers. *)
let stimulus_bits ~seed ~index n =
  Workloads.random_bits (Rng.split_at (Rng.make ~seed) index) n

type prepared = {
  pkg : Dd.pkg;
  n : int;
  dds_a : Dd.edge list;
  dds_b : Dd.edge list;
  guard : Equivalence.Guard.t;
}

let prepare ?tol ?gc_threshold ~guard g g' =
  let g, g' = Flatten.align g g' in
  let a = Flatten.flatten g and b = Flatten.flatten g' in
  let n = Circuit.num_qubits a in
  let pkg = Dd.create ?tol ?gc_threshold () in
  (* Build every gate DD once; the runs only pay for state evolution.
     The gate DDs are reused across runs, so they are pinned as GC roots
     — a collection during state evolution must not sever their sharing
     with the unique table. *)
  let dds c = List.concat_map (Dd_circuit.op_dds pkg n) (Circuit.ops c) in
  let dds_a = dds a and dds_b = dds b in
  List.iter (Dd.root pkg) dds_a;
  List.iter (Dd.root pkg) dds_b;
  { pkg; n; dds_a; dds_b; guard }

(* One random-stimulus run: [Some fidelity] is a mismatch proof, [None]
   means the outputs agree on this input. *)
let run_stimulus p ~seed ~index =
  let bits = stimulus_bits ~seed ~index p.n in
  let input () = Dd.kets_bits p.pkg p.n (fun q -> bits.(q)) in
  let apply gs v =
    List.fold_left
      (fun acc gdd ->
        Equivalence.Guard.check p.guard;
        Dd.mul_vec p.pkg gdd acc)
      v gs
  in
  let va = apply p.dds_a (input ()) in
  let vb = apply p.dds_b (input ()) in
  let fidelity = Cx.mag (Dd.inner p.pkg va vb) in
  if fidelity < 1.0 -. 1e-9 then Some fidelity else None

let report_of ~start ~outcome ~performed ~note p =
  {
    Equivalence.outcome;
    method_used = Equivalence.Simulation;
    elapsed = Unix.gettimeofday () -. start;
    peak_size = Dd.allocated p.pkg;
    final_size = 0;
    simulations = performed;
    note;
    dd_stats = Some (Dd.stats p.pkg);
    portfolio = None;
  }

let check ?tol ?gc_threshold ?(runs = 16) ?(seed = 1) ?deadline ?cancel g g' =
  let start = Unix.gettimeofday () in
  let guard = Equivalence.Guard.make ?deadline ?cancel:(atomic_pred cancel) () in
  let p = prepare ?tol ?gc_threshold ~guard g g' in
  let rec run i =
    if i >= runs then (Equivalence.No_information, runs, None)
    else
      match run_stimulus p ~seed ~index:i with
      | Some fid -> (Equivalence.Not_equivalent, i + 1, Some (i, fid))
      | None -> run (i + 1)
  in
  let outcome, performed, refuted = run 0 in
  let note =
    match (outcome, refuted) with
    | Equivalence.No_information, _ ->
        Printf.sprintf "(all %d random stimuli agreed)" performed
    | _, Some (i, fid) -> Printf.sprintf "(stimulus #%d refutes, fidelity %.9f)" i fid
    | _, None -> ""
  in
  report_of ~start ~outcome ~performed ~note p

let check_shard ?tol ?gc_threshold ?deadline ?cancel ~runs ~seed ~shard ~jobs ~best g g' =
  if shard < 0 || jobs <= 0 || shard >= jobs then
    invalid_arg "Sim_checker.check_shard: need 0 <= shard < jobs";
  let start = Unix.gettimeofday () in
  (* Abandon the current stimulus as soon as its index can no longer be
     the minimal counterexample: [best] only ever decreases, so work at or
     above it is dead.  Indices below [best] must still be checked even
     after another shard refutes — that is what makes the reported
     counterexample the global minimum, independent of the shard count. *)
  let current = ref max_int in
  let cancel_pred () =
    (match cancel with Some flag -> Atomic.get flag | None -> false)
    || !current >= Atomic.get best
  in
  let guard = Equivalence.Guard.make ?deadline ~cancel:cancel_pred () in
  let p = prepare ?tol ?gc_threshold ~guard g g' in
  (* Lower [best] to [i] unless a smaller refutation is already recorded. *)
  let rec publish i =
    let b = Atomic.get best in
    if i < b && not (Atomic.compare_and_set best b i) then publish i
  in
  let performed = ref 0 in
  let refuted = ref None in
  let rec scan i =
    if i < runs && i < Atomic.get best then begin
      current := i;
      (match run_stimulus p ~seed ~index:i with
      | Some fid ->
          incr performed;
          publish i;
          if !refuted = None then refuted := Some (i, fid)
      | None -> incr performed
      | exception Equivalence.Cancelled
        when !current >= Atomic.get best
             && not (match cancel with Some f -> Atomic.get f | None -> false) ->
          (* Only this stimulus became irrelevant; lower indices in this
             shard are still checked by the [scan] condition above. *)
          ());
      current := max_int;
      scan (i + jobs)
    end
  in
  scan shard;
  let outcome, note =
    match !refuted with
    | Some (i, fid) ->
        ( Equivalence.Not_equivalent,
          Printf.sprintf "(stimulus #%d refutes, fidelity %.9f)" i fid )
    | None ->
        if Atomic.get best < max_int then (Equivalence.No_information, "(another shard refuted first)")
        else (Equivalence.No_information, Printf.sprintf "(%d stimuli agreed)" !performed)
  in
  report_of ~start ~outcome ~performed:!performed ~note p
