open Oqec_base
open Oqec_circuit
open Oqec_dd
open Oqec_workloads

let atomic_pred = Option.map (fun flag () -> Atomic.get flag)

(* Stimulus [i] is a pure function of (seed, i): its bits come from the
   [i]th indexed split of the base generator (see {!Rng.split_at}), so a
   shard checking indices {s, s+k, ...} sees exactly the bits the
   sequential checker uses at those indices — counterexamples are
   identical for a given seed no matter how stimuli are spread over
   workers. *)
let stimulus_bits ~seed ~index n =
  Workloads.random_bits (Rng.split_at (Rng.make ~seed) index) n

(* The simulation logic is generic over the DD core; instantiated for
   both cores below and dispatched on {!Dd_core.kind}. *)
module Of (C : Dd_core.S) = struct
  type prepared = {
    pkg : C.pkg;
    n : int;
    a : Circuit.t;  (* kept for witness-certificate export *)
    b : Circuit.t;
    dds_a : C.edge list;
    dds_b : C.edge list;
    check : unit -> unit;
  }

  let prepare ctx ~check g g' =
    let g, g' = Flatten.align g g' in
    let a = Flatten.flatten g and b = Flatten.flatten g' in
    let n = Circuit.num_qubits a in
    let pkg =
      C.create ?tol:(Engine.Ctx.tol ctx) ?gc_threshold:(Engine.Ctx.gc_threshold ctx) ()
    in
    (* Build every gate DD once; the runs only pay for state evolution.
       The gate DDs are reused across runs, so they are pinned as GC
       roots — a collection during state evolution must not sever their
       sharing with the unique table. *)
    let dds c = List.concat_map (C.op_dds pkg n) (Circuit.ops c) in
    let dds_a = dds a and dds_b = dds b in
    List.iter (C.root pkg) dds_a;
    List.iter (C.root pkg) dds_b;
    { pkg; n; a; b; dds_a; dds_b; check }

  (* One random-stimulus run: [Some fidelity] is a mismatch proof,
     [None] means the outputs agree on this input. *)
  let run_stimulus p ~seed ~index =
    let bits = stimulus_bits ~seed ~index p.n in
    let input () = C.kets_bits p.pkg p.n (fun q -> bits.(q)) in
    let apply gs v =
      List.fold_left
        (fun acc gdd ->
          p.check ();
          C.mul_vec p.pkg gdd acc)
        v gs
    in
    let va = apply p.dds_a (input ()) in
    let vb = apply p.dds_b (input ()) in
    let fidelity = Cx.mag (C.inner p.pkg va vb) in
    if fidelity < 1.0 -. 1e-9 then Some fidelity else None

  let defaults ctx =
    ( Option.value (Engine.Ctx.sim_runs ctx) ~default:16,
      Option.value (Engine.Ctx.seed ctx) ~default:1 )

  (* Export a refuting stimulus as a standalone witness certificate: the
     preparation circuit rebuilds the random basis state from (seed,
     index), so the artifact replays without the RNG.  Marginal
     refutations (fidelity within 1e-6 of 1) are not certified — the
     validator re-checks by dense simulation under exactly that
     threshold. *)
  let witness_certificate p ~seed ~index ~fidelity =
    if p.n <= Oqec_cert.Cert.max_witness_qubits && fidelity < 1.0 -. 1e-6 then begin
      let bits = stimulus_bits ~seed ~index p.n in
      let prep = ref (Circuit.create ~name:"stimulus" p.n) in
      for q = 0 to p.n - 1 do
        if bits.(q) then prep := Circuit.x !prep q
      done;
      Some (Oqec_cert.Cert.Witness { a = p.a; b = p.b; index; prep = !prep; fidelity })
    end
    else None

  let verdict_of ?certificate ~outcome ~performed ~note p =
    {
      Engine.outcome;
      peak_size = C.allocated p.pkg;
      final_size = 0;
      simulations = performed;
      note;
      dd = Some (C.stats p.pkg);
      certificate;
    }

  let checker : Engine.checker =
    (module struct
      let name = "simulation"

      let run ctx g g' =
        let runs, seed = defaults ctx in
        let p =
          Engine.Ctx.span ctx ~cat:"sim" "prepare" (fun () ->
              prepare ctx ~check:(fun () -> Engine.Ctx.check ctx) g g')
        in
        Engine.Ctx.span ctx ~cat:"sim" "stimuli" (fun () ->
            let rec scan i =
              if i >= runs then (Equivalence.No_information, runs, None)
              else
                match run_stimulus p ~seed ~index:i with
                | Some fid ->
                    Engine.Ctx.incr ctx Engine.Sim_stimulus;
                    (Equivalence.Not_equivalent, i + 1, Some (i, fid))
                | None ->
                    Engine.Ctx.incr ctx Engine.Sim_stimulus;
                    scan (i + 1)
            in
            let outcome, performed, refuted = scan 0 in
            let note =
              match (outcome, refuted) with
              | Equivalence.No_information, _ ->
                  Printf.sprintf "(all %d random stimuli agreed)" performed
              | _, Some (i, fid) ->
                  Printf.sprintf "(stimulus #%d refutes, fidelity %.9f)" i fid
              | _, None -> ""
            in
            let certificate =
              Option.bind refuted (fun (i, fid) ->
                  witness_certificate p ~seed ~index:i ~fidelity:fid)
            in
            verdict_of ?certificate ~outcome ~performed ~note p)
    end)

  (* The portfolio worker over stimulus indices {shard, shard+jobs, ...}.
     [best] is the shared minimal-refuting-index cell; see the interface
     for the protocol that makes the reported counterexample the global
     minimum independent of [jobs]. *)
  let shard ~shard ~jobs ~best : Engine.checker =
    if shard < 0 || jobs <= 0 || shard >= jobs then
      invalid_arg "Sim_checker.shard: need 0 <= shard < jobs";
    (module struct
      let name = Printf.sprintf "simulation-%d" shard

      let run ctx g g' =
        let runs, seed = defaults ctx in
        (* Abandon the current stimulus as soon as its index can no
           longer be the minimal counterexample: [best] only ever
           decreases, so work at or above it is dead.  Indices below
           [best] must still be checked even after another shard refutes
           — that is what makes the reported counterexample the global
           minimum, independent of the shard count. *)
        let current = ref max_int in
        let gd =
          Equivalence.Guard.make
            ?deadline:(Engine.Ctx.deadline ctx)
            ~cancel:(fun () -> Engine.Ctx.cancelled ctx || !current >= Atomic.get best)
            ()
        in
        let p = prepare ctx ~check:(fun () -> Equivalence.Guard.check gd) g g' in
        (* Lower [best] to [i] unless a smaller refutation is recorded. *)
        let rec publish i =
          let b = Atomic.get best in
          if i < b && not (Atomic.compare_and_set best b i) then publish i
        in
        let performed = ref 0 in
        let refuted = ref None in
        let rec scan i =
          if i < runs && i < Atomic.get best then begin
            current := i;
            (match run_stimulus p ~seed ~index:i with
            | Some fid ->
                incr performed;
                Engine.Ctx.incr ctx Engine.Sim_stimulus;
                publish i;
                if !refuted = None then refuted := Some (i, fid)
            | None ->
                incr performed;
                Engine.Ctx.incr ctx Engine.Sim_stimulus
            | exception Equivalence.Cancelled
              when !current >= Atomic.get best && not (Engine.Ctx.cancelled ctx) ->
                (* Only this stimulus became irrelevant; lower indices in
                   this shard are still checked by the [scan] condition
                   above. *)
                ());
            current := max_int;
            scan (i + jobs)
          end
        in
        scan shard;
        let outcome, note =
          match !refuted with
          | Some (i, fid) ->
              ( Equivalence.Not_equivalent,
                Printf.sprintf "(stimulus #%d refutes, fidelity %.9f)" i fid )
          | None ->
              if Atomic.get best < max_int then
                (Equivalence.No_information, "(another shard refuted first)")
              else
                (Equivalence.No_information, Printf.sprintf "(%d stimuli agreed)" !performed)
        in
        let certificate =
          Option.bind !refuted (fun (i, fid) ->
              witness_certificate p ~seed ~index:i ~fidelity:fid)
        in
        verdict_of ?certificate ~outcome ~performed:!performed ~note p
    end)
end

module Boxed = Of (Dd_core.Boxed_core)
module Arena = Of (Dd_core.Arena_core)

let checker : Engine.checker = Boxed.checker

let checker_core = function
  | Dd_core.Boxed -> Boxed.checker
  | Dd_core.Arena -> Arena.checker

let shard ?(core = Dd_core.Boxed) ~shard ~jobs ~best () =
  match core with
  | Dd_core.Boxed -> Boxed.shard ~shard ~jobs ~best
  | Dd_core.Arena -> Arena.shard ~shard ~jobs ~best

let check_states ?tol ?gc_threshold ?deadline ?cancel g g' =
  let ctx = Engine.Ctx.make ?tol ?gc_threshold ?deadline ?cancel:(atomic_pred cancel) () in
  let checker : Engine.checker =
    (module struct
      let name = "state-preparation"

      let run ctx g g' =
        let g, g' = Flatten.align g g' in
        let a = Flatten.flatten g and b = Flatten.flatten g' in
        let n = Circuit.num_qubits a in
        let pkg =
          Dd.create ?tol:(Engine.Ctx.tol ctx) ?gc_threshold:(Engine.Ctx.gc_threshold ctx) ()
        in
        Dd.on_safe_point pkg (fun () ->
            Engine.Ctx.incr ctx Engine.Dd_gate_applied;
            Engine.Ctx.check ctx);
        let run c =
          List.fold_left
            (fun acc op -> Dd_circuit.apply_op_vec pkg n acc op)
            (Dd.kets_bits pkg n (fun _ -> false))
            (Circuit.ops c)
        in
        let va = Engine.Ctx.span ctx ~cat:"sim" "evolve-left" (fun () -> run a) in
        (* Pin the first output state while the second circuit runs through
           the package's GC safe points. *)
        Dd.root pkg va;
        let vb = Engine.Ctx.span ctx ~cat:"sim" "evolve-right" (fun () -> run b) in
        let fidelity = Cx.mag (Dd.inner pkg va vb) in
        let outcome =
          if fidelity >= 1.0 -. 1e-9 then Equivalence.Equivalent
          else Equivalence.Not_equivalent
        in
        {
          Engine.outcome;
          peak_size = Dd.allocated pkg;
          final_size = Dd.node_count va + Dd.node_count vb;
          simulations = 1;
          note = Printf.sprintf "(state fidelity %.9f)" fidelity;
          dd = Some (Dd.stats pkg);
          certificate =
            (* The single stimulus here is |0...0>, i.e. an empty
               preparation circuit.  Only clear refutations are
               certified: the validator re-checks with a strictly
               tighter threshold (1e-6) than the verdict's 1e-9. *)
            (if
               outcome = Equivalence.Not_equivalent
               && n <= Oqec_cert.Cert.max_witness_qubits
               && fidelity < 1.0 -. 1e-6
             then
               Some
                 (Oqec_cert.Cert.Witness
                    { a; b; index = 0; prep = Circuit.create ~name:"stimulus" n; fidelity })
             else None);
        }
    end)
  in
  Engine.run ~ctx ~method_used:Equivalence.Simulation checker g g'

(* ----------------------------------------------- Compatibility wrappers *)

let check ?tol ?gc_threshold ?(runs = 16) ?(seed = 1) ?deadline ?cancel g g' =
  let ctx =
    Engine.Ctx.make ?tol ?gc_threshold ~sim_runs:runs ~seed ?deadline
      ?cancel:(atomic_pred cancel) ()
  in
  Engine.run ~ctx ~method_used:Equivalence.Simulation checker g g'

let check_shard ?core ?tol ?gc_threshold ?deadline ?cancel ~runs ~seed ~shard:s ~jobs
    ~best g g' =
  let ctx =
    Engine.Ctx.make ?tol ?gc_threshold ~sim_runs:runs ~seed ?deadline
      ?cancel:(atomic_pred cancel) ()
  in
  Engine.run ~ctx ~method_used:Equivalence.Simulation
    (shard ?core ~shard:s ~jobs ~best ())
    g g'
