(** The paper's combined strategy as a single {!Engine.CHECKER}: a short
    random-stimuli screen (at most 8 runs, with its own small time
    slice) followed by the miter-DD completeness argument.  A refuting
    screen short-circuits; otherwise the DD verdict is returned with the
    screen's simulation count merged in. *)

(** [checker ?core ?scheme ?table ()] is the ["combined"] checker;
    [scheme] selects the DD application scheme (default proportional;
    [Auto] resolves through [table]) and [core] the DD package
    representation (both phases use the same core). *)
val checker :
  ?core:Oqec_dd.Dd_core.kind ->
  ?scheme:Dd_scheme.t ->
  ?table:Dd_dispatch.table ->
  unit ->
  Engine.checker
