(** The paper's combined strategy as a single {!Engine.CHECKER}: a short
    random-stimuli screen (at most 8 runs, with its own small time
    slice) followed by the alternating-DD completeness argument.  A
    refuting screen short-circuits; otherwise the DD verdict is returned
    with the screen's simulation count merged in. *)

(** [checker ?core ?oracle ()] is the ["combined"] checker; [oracle]
    selects the alternating scheme's gate-scheduling oracle and [core]
    the DD package representation (both phases use the same core). *)
val checker :
  ?core:Oqec_dd.Dd_core.kind -> ?oracle:Dd_checker.oracle -> unit -> Engine.checker
