open Oqec_base
open Oqec_circuit
open Oqec_dd

(* Equivalence of unitaries is decided on the miter DD: structural
   identity up to phase, with the Hilbert-Schmidt overlap |tr D| / 2^n as
   the tolerance-aware fallback (Section 3). *)
let fidelity_threshold = 1.0 -. 1e-9

type oracle = Proportional | Lookahead

(* The checking logic is generic over the DD core (boxed records vs the
   struct-of-arrays arena); it is instantiated statically for both cores
   below and dispatched on {!Dd_core.kind}. *)
module Of (C : Dd_core.S) = struct
  let conclude pkg n d =
    if C.is_identity ~up_to_phase:true pkg n d then Equivalence.Equivalent
    else if C.fidelity_to_identity pkg ~n d >= fidelity_threshold then
      Equivalence.Equivalent
    else Equivalence.Not_equivalent

  (* Gate application is the package's collection safe point; it doubles
     as the engine's counting and deadline/cancellation polling point. *)
  let hook_pkg ctx pkg =
    C.on_safe_point pkg (fun () ->
        Engine.Ctx.incr ctx Engine.Dd_gate_applied;
        Engine.Ctx.check ctx)

  (* Fold the package's own accounting into the engine counters once the
     run is over (these are maintained inside the package, not
     observable per event from out here). *)
  let package_counters ctx pkg =
    let st = C.stats pkg in
    Engine.Ctx.set ctx Engine.Dd_gc_run st.Dd.gc_runs;
    Engine.Ctx.set ctx Engine.Dd_cache_hit (Dd.cache_hits st);
    (match st.Dd.arena with
    | None -> ()
    | Some a ->
        Engine.Ctx.gauge ctx "dd.arena_occupancy" a.Dd.a_occupancy;
        Engine.Ctx.set ctx Engine.Dd_arena_compaction a.Dd.a_compactions;
        Engine.Ctx.set ctx Engine.Dd_shard_contention a.Dd.a_contended);
    st

  let verdict_of ctx ~pkg ~n d =
    let outcome = conclude pkg n d in
    let st = package_counters ctx pkg in
    {
      Engine.outcome;
      peak_size = C.allocated pkg;
      final_size = C.node_count pkg d;
      simulations = 0;
      note = "";
      dd = Some st;
      certificate = None;
    }

  (* Shared miter construction for the exact and approximate checkers.

     The circuits are lowered to elementary gates first: the alternating
     scheme inverts operation by operation, and controlled rotations
     only invert exactly after decomposition (their inverse-angle form
     differs by a controlled sign, rotation angles being canonical
     modulo 2*pi).

     The evolving miter edge is pinned as a GC root throughout: gate
     application is the package's collection safe point, and an unrooted
     miter would lose canonicity (and with it the structural identity
     test) the moment a collection runs. *)
  let build_miter ctx ~oracle ?trace g g' =
    let g, g' = Flatten.align g g' in
    let a = Decompose.elementary (Flatten.flatten g)
    and b = Decompose.elementary (Flatten.flatten g') in
    let n = Circuit.num_qubits a in
    let pkg =
      C.create ?tol:(Engine.Ctx.tol ctx) ?gc_threshold:(Engine.Ctx.gc_threshold ctx) ()
    in
    hook_pkg ctx pkg;
    let ops_a = Circuit.ops_array a and ops_b = Circuit.ops_array b in
    let ka = Array.length ops_a and kb = Array.length ops_b in
    let d = ref (C.identity pkg n) in
    C.root pkg !d;
    let commit nd =
      C.root pkg nd;
      C.unroot pkg !d;
      d := nd
    in
    let ia = ref 0 and ib = ref 0 in
    let record () = match trace with Some f -> f (C.node_count pkg !d) | None -> () in
    record ();
    (* Right side: D <- D * g_i^dagger;  left side: D <- g'_j * D.
       Deadline/cancellation polling happens inside the applications:
       gate application is the package's GC safe point and runs the
       engine hook registered above. *)
    let apply_a () = C.apply_op_left pkg n !d (Circuit.inverse_op ops_a.(!ia)) in
    let apply_b () = C.apply_op pkg n !d ops_b.(!ib) in
    while !ia < ka || !ib < kb do
      if !ia >= ka then begin
        commit (apply_b ());
        incr ib
      end
      else if !ib >= kb then begin
        commit (apply_a ());
        incr ia
      end
      else begin
        match oracle with
        | Proportional ->
            (* Advance the side that lags behind relative to its total
               gate count, keeping the product balanced around the
               identity. *)
            if !ia * kb <= !ib * ka then begin
              commit (apply_a ());
              incr ia
            end
            else begin
              commit (apply_b ());
              incr ib
            end
        | Lookahead ->
            (* Apply one gate from each side speculatively; commit to
               the smaller resulting diagram (hash-consing makes the
               discarded candidate cheap to abandon).  The first
               candidate must be pinned while the second is computed —
               applying the second gate may trigger a collection. *)
            let cand_a = apply_a () in
            C.root pkg cand_a;
            let cand_b = apply_b () in
            C.unroot pkg cand_a;
            if C.node_count pkg cand_a <= C.node_count pkg cand_b then begin
              commit cand_a;
              incr ia
            end
            else begin
              commit cand_b;
              incr ib
            end
      end;
      record ()
    done;
    (pkg, n, !d)

  let alternating ~oracle ?trace () : Engine.checker =
    (module struct
      let name = "alternating-dd"

      let run ctx g g' =
        let pkg, n, d =
          Engine.Ctx.span ctx ~cat:"dd" "build-miter" (fun () ->
              build_miter ctx ~oracle ?trace g g')
        in
        Engine.Ctx.span ctx ~cat:"dd" "conclude" (fun () -> verdict_of ctx ~pkg ~n d)
    end)

  let reference : Engine.checker =
    (module struct
      let name = "reference-dd"

      let run ctx g g' =
        let g, g' = Flatten.align g g' in
        let a = Flatten.flatten g and b = Flatten.flatten g' in
        let n = Circuit.num_qubits a in
        let pkg =
          C.create ?tol:(Engine.Ctx.tol ctx) ?gc_threshold:(Engine.Ctx.gc_threshold ctx)
            ()
        in
        hook_pkg ctx pkg;
        let build c =
          List.fold_left
            (fun acc op -> C.apply_op pkg n acc op)
            (C.identity pkg n) (Circuit.ops c)
        in
        let da = Engine.Ctx.span ctx ~cat:"dd" "build-left" (fun () -> build a) in
        (* Pin the first system matrix: building the second one runs
           through GC safe points, and the root comparison below needs
           canonicity. *)
        C.root pkg da;
        let db = Engine.Ctx.span ctx ~cat:"dd" "build-right" (fun () -> build b) in
        C.root pkg db;
        let outcome =
          if
            C.same_node da db
            && Float.abs (Cx.mag (C.weight pkg da) -. Cx.mag (C.weight pkg db)) < 1e-9
          then Equivalence.Equivalent
          else begin
            (* Canonicity says different roots mean different matrices,
               but close-to-tolerance cases deserve the numeric check. *)
            let miter = C.mul pkg (C.adjoint pkg da) db in
            conclude pkg n miter
          end
        in
        let st = package_counters ctx pkg in
        {
          Engine.outcome;
          peak_size = C.allocated pkg;
          final_size = C.node_count pkg da + C.node_count pkg db;
          simulations = 0;
          note = "";
          dd = Some st;
          certificate = None;
        }
    end)

  let approximate ~threshold ~fidelity : Engine.checker =
    (module struct
      let name = "approximate-dd"

      let run ctx g g' =
        let pkg, n, d =
          Engine.Ctx.span ctx ~cat:"dd" "build-miter" (fun () ->
              build_miter ctx ~oracle:Proportional g g')
        in
        let f = C.fidelity_to_identity pkg ~n d in
        fidelity := f;
        let outcome =
          if f >= threshold then Equivalence.Equivalent else Equivalence.Not_equivalent
        in
        let st = package_counters ctx pkg in
        {
          Engine.outcome;
          peak_size = C.allocated pkg;
          final_size = C.node_count pkg d;
          simulations = 0;
          note = Printf.sprintf "(fidelity %.9f, threshold %g)" f threshold;
          dd = Some st;
          certificate = None;
        }
    end)
end

module Boxed = Of (Dd_core.Boxed_core)
module Arena = Of (Dd_core.Arena_core)

let alternating ?(core = Dd_core.Boxed) ?(oracle = Proportional) ?trace () :
    Engine.checker =
  match core with
  | Dd_core.Boxed -> Boxed.alternating ~oracle ?trace ()
  | Dd_core.Arena -> Arena.alternating ~oracle ?trace ()

let reference_core = function
  | Dd_core.Boxed -> Boxed.reference
  | Dd_core.Arena -> Arena.reference

let reference : Engine.checker = Boxed.reference

(* ----------------------------------------------- Compatibility wrappers *)

let ctx_of ?tol ?gc_threshold ?deadline ?cancel () =
  Engine.Ctx.make ?deadline
    ?cancel:(Option.map (fun flag () -> Atomic.get flag) cancel)
    ?tol ?gc_threshold ()

let check_alternating ?core ?oracle ?tol ?gc_threshold ?trace ?deadline ?cancel g g' =
  let ctx = ctx_of ?tol ?gc_threshold ?deadline ?cancel () in
  Engine.run ~ctx ~method_used:Equivalence.Alternating_dd
    (alternating ?core ?oracle ?trace ())
    g g'

let check_reference ?(core = Dd_core.Boxed) ?tol ?gc_threshold ?deadline ?cancel g g' =
  let ctx = ctx_of ?tol ?gc_threshold ?deadline ?cancel () in
  Engine.run ~ctx ~method_used:Equivalence.Reference_dd (reference_core core) g g'

let check_approximate ?(core = Dd_core.Boxed) ?tol ?gc_threshold ?deadline ?sink
    ~threshold g g' =
  let ctx = Engine.Ctx.make ?deadline ?tol ?gc_threshold ?sink () in
  let fidelity = ref nan in
  let checker =
    match core with
    | Dd_core.Boxed -> Boxed.approximate ~threshold ~fidelity
    | Dd_core.Arena -> Arena.approximate ~threshold ~fidelity
  in
  let report = Engine.run ~ctx ~method_used:Equivalence.Alternating_dd checker g g' in
  (report, !fidelity)
