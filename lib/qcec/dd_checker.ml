open Oqec_base
open Oqec_circuit
open Oqec_dd

(* Equivalence of unitaries is decided on the miter DD: structural
   identity up to phase, with the Hilbert-Schmidt overlap |tr D| / 2^n as
   the tolerance-aware fallback (Section 3). *)
let fidelity_threshold = 1.0 -. 1e-9

let conclude pkg n d =
  if Dd.is_identity ~up_to_phase:true pkg n d then Equivalence.Equivalent
  else if Dd.fidelity_to_identity ~n d >= fidelity_threshold then Equivalence.Equivalent
  else Equivalence.Not_equivalent

let finish ~start ~method_used ~pkg ~n d =
  let outcome = conclude pkg n d in
  {
    Equivalence.outcome;
    method_used;
    elapsed = Unix.gettimeofday () -. start;
    peak_size = Dd.allocated pkg;
    final_size = Dd.node_count d;
    simulations = 0;
    note = "";
    dd_stats = Some (Dd.stats pkg);
    portfolio = None;
  }

type oracle = Proportional | Lookahead

(* Shared miter construction for the exact and approximate checkers.

   The circuits are lowered to elementary gates first: the alternating
   scheme inverts operation by operation, and controlled rotations only
   invert exactly after decomposition (their inverse-angle form differs
   by a controlled sign, rotation angles being canonical modulo 2*pi).

   The evolving miter edge is pinned as a GC root throughout: gate
   application is the package's collection safe point, and an unrooted
   miter would lose canonicity (and with it the structural identity
   test) the moment a collection runs. *)
let guard_pkg ?deadline ?cancel pkg =
  let gd =
    Equivalence.Guard.make ?deadline
      ?cancel:(Option.map (fun flag () -> Atomic.get flag) cancel)
      ()
  in
  Dd.on_safe_point pkg (fun () -> Equivalence.Guard.check gd)

let build_miter ~oracle ?tol ?gc_threshold ?trace ?deadline ?cancel g g' =
  let g, g' = Flatten.align g g' in
  let a = Decompose.elementary (Flatten.flatten g)
  and b = Decompose.elementary (Flatten.flatten g') in
  let n = Circuit.num_qubits a in
  let pkg = Dd.create ?tol ?gc_threshold () in
  guard_pkg ?deadline ?cancel pkg;
  let ops_a = Circuit.ops_array a and ops_b = Circuit.ops_array b in
  let ka = Array.length ops_a and kb = Array.length ops_b in
  let d = ref (Dd.identity pkg n) in
  Dd.root pkg !d;
  let commit nd =
    Dd.root pkg nd;
    Dd.unroot pkg !d;
    d := nd
  in
  let ia = ref 0 and ib = ref 0 in
  let record () = match trace with Some f -> f (Dd.node_count !d) | None -> () in
  record ();
  (* Right side: D <- D * g_i^dagger;  left side: D <- g'_j * D.
     Deadline/cancellation polling happens inside the applications: gate
     application is the package's GC safe point and runs the guard hook
     registered above. *)
  let apply_a () = Dd_circuit.apply_op_left pkg n !d (Circuit.inverse_op ops_a.(!ia)) in
  let apply_b () = Dd_circuit.apply_op pkg n !d ops_b.(!ib) in
  while !ia < ka || !ib < kb do
    if !ia >= ka then begin
      commit (apply_b ());
      incr ib
    end
    else if !ib >= kb then begin
      commit (apply_a ());
      incr ia
    end
    else begin
      match oracle with
      | Proportional ->
          (* Advance the side that lags behind relative to its total gate
             count, keeping the product balanced around the identity. *)
          if !ia * kb <= !ib * ka then begin
            commit (apply_a ());
            incr ia
          end
          else begin
            commit (apply_b ());
            incr ib
          end
      | Lookahead ->
          (* Apply one gate from each side speculatively; commit to the
             smaller resulting diagram (hash-consing makes the discarded
             candidate cheap to abandon).  The first candidate must be
             pinned while the second is computed — applying the second
             gate may trigger a collection. *)
          let cand_a = apply_a () in
          Dd.root pkg cand_a;
          let cand_b = apply_b () in
          Dd.unroot pkg cand_a;
          if Dd.node_count cand_a <= Dd.node_count cand_b then begin
            commit cand_a;
            incr ia
          end
          else begin
            commit cand_b;
            incr ib
          end
    end;
    record ()
  done;
  (pkg, n, !d)

let check_alternating ?(oracle = Proportional) ?tol ?gc_threshold ?trace ?deadline ?cancel g
    g' =
  let start = Unix.gettimeofday () in
  let pkg, n, d = build_miter ~oracle ?tol ?gc_threshold ?trace ?deadline ?cancel g g' in
  finish ~start ~method_used:Equivalence.Alternating_dd ~pkg ~n d

let check_approximate ?tol ?gc_threshold ?deadline ~threshold g g' =
  let start = Unix.gettimeofday () in
  let pkg, n, d = build_miter ~oracle:Proportional ?tol ?gc_threshold ?deadline g g' in
  let fidelity = Dd.fidelity_to_identity ~n d in
  let outcome =
    if fidelity >= threshold then Equivalence.Equivalent else Equivalence.Not_equivalent
  in
  ( {
      Equivalence.outcome;
      method_used = Equivalence.Alternating_dd;
      elapsed = Unix.gettimeofday () -. start;
      peak_size = Dd.allocated pkg;
      final_size = Dd.node_count d;
      simulations = 0;
      note = Printf.sprintf "(fidelity %.9f, threshold %g)" fidelity threshold;
      dd_stats = Some (Dd.stats pkg);
      portfolio = None;
    },
    fidelity )

let check_reference ?tol ?gc_threshold ?deadline ?cancel g g' =
  let start = Unix.gettimeofday () in
  let g, g' = Flatten.align g g' in
  let a = Flatten.flatten g and b = Flatten.flatten g' in
  let n = Circuit.num_qubits a in
  let pkg = Dd.create ?tol ?gc_threshold () in
  guard_pkg ?deadline ?cancel pkg;
  let build c =
    List.fold_left
      (fun acc op -> Dd_circuit.apply_op pkg n acc op)
      (Dd.identity pkg n) (Circuit.ops c)
  in
  let da = build a in
  (* Pin the first system matrix: building the second one runs through GC
     safe points, and the root-pointer comparison below needs canonicity. *)
  Dd.root pkg da;
  let db = build b in
  Dd.root pkg db;
  let outcome =
    if da.Dd.node == db.Dd.node && Float.abs (Cx.mag da.Dd.w -. Cx.mag db.Dd.w) < 1e-9
    then Equivalence.Equivalent
    else begin
      (* Canonicity says different roots mean different matrices, but
         close-to-tolerance cases deserve the numeric check. *)
      let miter = Dd.mul pkg (Dd.adjoint pkg da) db in
      conclude pkg n miter
    end
  in
  {
    Equivalence.outcome;
    method_used = Equivalence.Reference_dd;
    elapsed = Unix.gettimeofday () -. start;
    peak_size = Dd.allocated pkg;
    final_size = Dd.node_count da + Dd.node_count db;
    simulations = 0;
    note = "";
    dd_stats = Some (Dd.stats pkg);
    portfolio = None;
  }
