open Oqec_base
open Oqec_circuit
open Oqec_dd

(* DD-based checkers, rebuilt around the {!Miter} core: the exact
   checker is a driver that walks a miter under an
   {!Dd_scheme.APPLICATION_SCHEME}, so the hardwired alternating loop of
   the paper becomes one policy among several (and [auto] picks one per
   instance through {!Dd_dispatch}).

   The checking logic is generic over the DD core (boxed records vs the
   struct-of-arrays arena); it is instantiated statically for both cores
   below and dispatched on {!Dd_core.kind}. *)
module Of (C : Dd_core.S) = struct
  module M = Miter.Make (C)

  (* Gate application is the package's collection safe point; it doubles
     as the engine's counting and deadline/cancellation polling point. *)
  let hook_pkg ctx pkg =
    C.on_safe_point pkg (fun () ->
        Engine.Ctx.incr ctx Engine.Dd_gate_applied;
        Engine.Ctx.check ctx)

  (* Fold the package's own accounting into the engine counters once the
     run is over (these are maintained inside the package, not
     observable per event from out here). *)
  let package_counters ctx pkg =
    let st = C.stats pkg in
    Engine.Ctx.set ctx Engine.Dd_gc_run st.Dd.gc_runs;
    Engine.Ctx.set ctx Engine.Dd_cache_hit (Dd.cache_hits st);
    (match st.Dd.arena with
    | None -> ()
    | Some a ->
        Engine.Ctx.gauge ctx "dd.arena_occupancy" a.Dd.a_occupancy;
        Engine.Ctx.set ctx Engine.Dd_arena_compaction a.Dd.a_compactions;
        Engine.Ctx.set ctx Engine.Dd_shard_contention a.Dd.a_contended);
    st

  let verdict_of ctx m =
    let outcome = M.conclude m in
    let st = package_counters ctx (M.package m) in
    {
      Engine.outcome;
      peak_size = C.allocated (M.package m);
      final_size = M.live_size m;
      simulations = 0;
      note = "";
      dd = Some st;
      certificate = None;
    }

  (* Fold both circuits into the miter under the scheme's side policy.
     The scheme is only consulted while both sides have gates; a lone
     surviving side is forced.  Deadline/cancellation polling happens
     inside the applications: gate application is the package's GC safe
     point and runs the engine hook. *)
  let drive m (module S : Dd_scheme.APPLICATION_SCHEME) =
    while not (M.exhausted m) do
      let side =
        if M.left_remaining m = 0 then Dd_scheme.Right
        else if M.right_remaining m = 0 then Dd_scheme.Left
        else S.choose (M.probe m)
      in
      M.apply m side
    done

  (* [Auto] resolves through the dispatch table per instance; the
     resolved scheme is recorded in the ["dd.scheme.<name>"] counter so
     [--json] reports show what actually ran. *)
  let resolve ?table scheme g g' =
    match scheme with Dd_scheme.Auto -> Dd_dispatch.choose ?table g g' | s -> s

  let scheme_checker ?(scheme = Dd_scheme.Proportional) ?table ?trace () :
      Engine.checker =
    (module struct
      let name = "dd-" ^ Dd_scheme.to_string scheme

      let run ctx g g' =
        let resolved = resolve ?table scheme g g' in
        Engine.Ctx.set ctx (Engine.Dd_scheme_used (Dd_scheme.to_string resolved)) 1;
        let m =
          Engine.Ctx.span ctx ~cat:"dd" "build-miter" (fun () ->
              let m = M.create ctx ?trace g g' in
              drive m (Dd_scheme.impl resolved);
              m)
        in
        Engine.Ctx.span ctx ~cat:"dd" "conclude" (fun () -> verdict_of ctx m)
    end)

  let reference : Engine.checker =
    (module struct
      let name = "reference-dd"

      let run ctx g g' =
        let g, g' = Flatten.align g g' in
        let a = Flatten.flatten g and b = Flatten.flatten g' in
        let n = Circuit.num_qubits a in
        let pkg =
          C.create ?tol:(Engine.Ctx.tol ctx) ?gc_threshold:(Engine.Ctx.gc_threshold ctx)
            ()
        in
        hook_pkg ctx pkg;
        let build c =
          List.fold_left
            (fun acc op -> C.apply_op pkg n acc op)
            (C.identity pkg n) (Circuit.ops c)
        in
        let da = Engine.Ctx.span ctx ~cat:"dd" "build-left" (fun () -> build a) in
        (* Pin the first system matrix: building the second one runs
           through GC safe points, and the root comparison below needs
           canonicity. *)
        C.root pkg da;
        let db = Engine.Ctx.span ctx ~cat:"dd" "build-right" (fun () -> build b) in
        C.root pkg db;
        let outcome =
          if
            C.same_node da db
            && Float.abs (Cx.mag (C.weight pkg da) -. Cx.mag (C.weight pkg db)) < 1e-9
          then Equivalence.Equivalent
          else begin
            (* Canonicity says different roots mean different matrices,
               but close-to-tolerance cases deserve the numeric check. *)
            let miter = C.mul pkg (C.adjoint pkg da) db in
            if C.is_identity ~up_to_phase:true pkg n miter then Equivalence.Equivalent
            else if C.fidelity_to_identity pkg ~n miter >= Miter.fidelity_threshold
            then Equivalence.Equivalent
            else Equivalence.Not_equivalent
          end
        in
        let st = package_counters ctx pkg in
        {
          Engine.outcome;
          peak_size = C.allocated pkg;
          final_size = C.node_count pkg da + C.node_count pkg db;
          simulations = 0;
          note = "";
          dd = Some st;
          certificate = None;
        }
    end)

  let approximate ~threshold ~fidelity : Engine.checker =
    (module struct
      let name = "approximate-dd"

      let run ctx g g' =
        let m =
          Engine.Ctx.span ctx ~cat:"dd" "build-miter" (fun () ->
              let m = M.create ctx g g' in
              drive m Dd_scheme.proportional;
              m)
        in
        let f = M.fidelity m in
        fidelity := f;
        let outcome =
          if f >= threshold then Equivalence.Equivalent else Equivalence.Not_equivalent
        in
        let st = package_counters ctx (M.package m) in
        {
          Engine.outcome;
          peak_size = C.allocated (M.package m);
          final_size = M.live_size m;
          simulations = 0;
          note = Printf.sprintf "(fidelity %.9f, threshold %g)" f threshold;
          dd = Some st;
          certificate = None;
        }
    end)
end

module Boxed = Of (Dd_core.Boxed_core)
module Arena = Of (Dd_core.Arena_core)

let scheme_checker ?(core = Dd_core.Boxed) ?scheme ?table ?trace () : Engine.checker =
  match core with
  | Dd_core.Boxed -> Boxed.scheme_checker ?scheme ?table ?trace ()
  | Dd_core.Arena -> Arena.scheme_checker ?scheme ?table ?trace ()

let reference_core = function
  | Dd_core.Boxed -> Boxed.reference
  | Dd_core.Arena -> Arena.reference

let reference : Engine.checker = Boxed.reference

(* ----------------------------------------------- Compatibility wrappers *)

let ctx_of ?tol ?gc_threshold ?deadline ?cancel () =
  Engine.Ctx.make ?deadline
    ?cancel:(Option.map (fun flag () -> Atomic.get flag) cancel)
    ?tol ?gc_threshold ()

let check_miter ?core ?scheme ?table ?tol ?gc_threshold ?trace ?deadline ?cancel g g' =
  let ctx = ctx_of ?tol ?gc_threshold ?deadline ?cancel () in
  Engine.run ~ctx ~method_used:Equivalence.Alternating_dd
    (scheme_checker ?core ?scheme ?table ?trace ())
    g g'

let check_reference ?(core = Dd_core.Boxed) ?tol ?gc_threshold ?deadline ?cancel g g' =
  let ctx = ctx_of ?tol ?gc_threshold ?deadline ?cancel () in
  Engine.run ~ctx ~method_used:Equivalence.Reference_dd (reference_core core) g g'

let check_approximate ?(core = Dd_core.Boxed) ?tol ?gc_threshold ?deadline ?sink
    ~threshold g g' =
  let ctx = Engine.Ctx.make ?deadline ?tol ?gc_threshold ?sink () in
  let fidelity = ref nan in
  let checker =
    match core with
    | Dd_core.Boxed -> Boxed.approximate ~threshold ~fidelity
    | Dd_core.Arena -> Arena.approximate ~threshold ~fidelity
  in
  let report = Engine.run ~ctx ~method_used:Equivalence.Alternating_dd checker g g' in
  (report, !fidelity)
