open Oqec_circuit

(** Application schemes for the DD miter.

    An application scheme decides, at every step of the miter
    construction [D = U(G') * U(G)^dagger], which side contributes the
    next gate.  The choice does not affect the verdict (the final
    product is the same), only how far the intermediate product strays
    from the identity — and DD sizes, and with them run time, track that
    distance.  See Burgholzer & Wille, "Advanced Equivalence Checking
    for Quantum Circuits" (PAPERS.md). *)

type t =
  | Alternating  (** strict one-to-one alternation (the paper's scheme) *)
  | Proportional  (** interleave by total gate-count ratio *)
  | Lookahead  (** speculate one gate per side, keep the smaller DD *)
  | Cost_metric  (** interleave by accumulated per-gate growth cost *)
  | Auto  (** resolved per instance through the {!Dd_dispatch} table *)

(** The concrete schemes, i.e. every constructor except [Auto]. *)
val all : t list

val to_string : t -> string

(** Inverse of {!to_string} (accepting a couple of spellings for
    [Cost_metric]); [None] on unknown names. *)
val of_string : string -> t option

type side = Left | Right

(** Snapshot of the miter state handed to {!APPLICATION_SCHEME.choose}.
    Counts are gates (resp. accumulated {!op_cost}) applied so far and
    in total per side; the thunks probe live DD sizes — [peek_left] /
    [peek_right] speculatively apply the side's next gate and return the
    resulting node count (memoised by the miter, so a subsequent apply
    of that side commits the cached candidate). *)
type probe = {
  left_applied : int;
  left_total : int;
  right_applied : int;
  right_total : int;
  left_cost_applied : int;
  left_cost_total : int;
  right_cost_applied : int;
  right_cost_total : int;
  live_size : unit -> int;
  peek_left : unit -> int;
  peek_right : unit -> int;
}

module type APPLICATION_SCHEME = sig
  val name : string

  (** Pick the side whose next gate is applied.  Only called while both
      sides still have gates pending. *)
  val choose : probe -> side
end

(** Static growth weight of one operation, the currency of
    [Cost_metric] (documented in DESIGN.md "Application schemes and
    dispatch"). *)
val op_cost : Circuit.op -> int

val alternating : (module APPLICATION_SCHEME)
val proportional : (module APPLICATION_SCHEME)
val lookahead : (module APPLICATION_SCHEME)
val cost_metric : (module APPLICATION_SCHEME)

(** First-class module for a concrete scheme.
    @raise Invalid_argument on [Auto] — resolve it first. *)
val impl : t -> (module APPLICATION_SCHEME)
