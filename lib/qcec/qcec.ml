open Oqec_base

type strategy = Reference | Alternating | Simulation | Zx | Combined | Clifford | Portfolio

let strategy_to_string = function
  | Reference -> "reference"
  | Alternating -> "alternating"
  | Simulation -> "simulation"
  | Zx -> "zx"
  | Combined -> "combined"
  | Clifford -> "clifford"
  | Portfolio -> "portfolio"

let strategy_of_string = function
  | "reference" -> Some Reference
  | "alternating" -> Some Alternating
  | "simulation" -> Some Simulation
  | "zx" -> Some Zx
  | "combined" -> Some Combined
  | "clifford" -> Some Clifford
  | "portfolio" -> Some Portfolio
  | _ -> None

(* The differential-oracle checker set: one complete checker (dd), two
   one-sided ones (zx proves either verdict but may get stuck, sim only
   refutes) and one fragment-complete one (stab, Clifford only). *)
let oracle_checkers ?dd_core () =
  [
    ("dd", Equivalence.Alternating_dd, Dd_checker.scheme_checker ?core:dd_core ());
    ("zx", Equivalence.Zx_calculus, Zx_checker.checker);
    ( "sim",
      Equivalence.Simulation,
      Sim_checker.checker_core (Option.value dd_core ~default:Oqec_dd.Dd_core.Boxed) );
    ("stab", Equivalence.Stabilizer, Stab_checker.checker);
  ]

(* Every strategy is a CHECKER run by the engine: timing, deadline and
   cancellation polling, counter accounting and report assembly are
   centralised in {!Engine.run}; the portfolio is the same thing raced
   over several workers. *)
let check ?(strategy = Combined) ?timeout ?tol ?gc_threshold ?(sim_runs = 16) ?(seed = 1)
    ?jobs ?scheme ?table ?checkers ?dd_core ?sink g g' =
  let deadline = Option.map (fun t -> Mclock.now () +. t) timeout in
  let core = Option.value dd_core ~default:Oqec_dd.Dd_core.Boxed in
  let ctx = Engine.Ctx.make ?deadline ?tol ?gc_threshold ~sim_runs ~seed ?sink () in
  let run method_used checker = Engine.run ~ctx ~method_used checker g g' in
  match strategy with
  | Reference -> run Equivalence.Reference_dd (Dd_checker.reference_core core)
  | Alternating ->
      run Equivalence.Alternating_dd
        (Dd_checker.scheme_checker ?core:dd_core ?scheme ?table ())
  | Simulation -> run Equivalence.Simulation (Sim_checker.checker_core core)
  | Zx -> run Equivalence.Zx_calculus Zx_checker.checker
  | Clifford -> run Equivalence.Stabilizer Stab_checker.checker
  | Combined ->
      run Equivalence.Combined (Combined_checker.checker ?core:dd_core ?scheme ?table ())
  | Portfolio ->
      Portfolio.check ?tol ?gc_threshold ~sim_runs ~seed ?jobs ?deadline ?scheme ?table
        ?checkers ?dd_core ?sink g g'
