type strategy = Reference | Alternating | Simulation | Zx | Combined | Clifford | Portfolio

let strategy_to_string = function
  | Reference -> "reference"
  | Alternating -> "alternating"
  | Simulation -> "simulation"
  | Zx -> "zx"
  | Combined -> "combined"
  | Clifford -> "clifford"
  | Portfolio -> "portfolio"

let strategy_of_string = function
  | "reference" -> Some Reference
  | "alternating" -> Some Alternating
  | "simulation" -> Some Simulation
  | "zx" -> Some Zx
  | "combined" -> Some Combined
  | "clifford" -> Some Clifford
  | "portfolio" -> Some Portfolio
  | _ -> None

let timed_out_report ~method_used ~start =
  {
    Equivalence.outcome = Equivalence.Timed_out;
    method_used;
    elapsed = Unix.gettimeofday () -. start;
    peak_size = 0;
    final_size = 0;
    simulations = 0;
    note = "";
    dd_stats = None;
    portfolio = None;
  }

let check ?(strategy = Combined) ?timeout ?tol ?gc_threshold ?(sim_runs = 16) ?(seed = 1)
    ?jobs ?(oracle = Dd_checker.Proportional) g g' =
  let start = Unix.gettimeofday () in
  let deadline = Option.map (fun t -> start +. t) timeout in
  let run method_used f = try f () with Equivalence.Timeout -> timed_out_report ~method_used ~start in
  match strategy with
  | Reference ->
      run Equivalence.Reference_dd (fun () ->
          Dd_checker.check_reference ?tol ?gc_threshold ?deadline g g')
  | Alternating ->
      run Equivalence.Alternating_dd (fun () ->
          Dd_checker.check_alternating ~oracle ?tol ?gc_threshold ?deadline g g')
  | Simulation ->
      run Equivalence.Simulation (fun () ->
          Sim_checker.check ?tol ?gc_threshold ~runs:sim_runs ~seed ?deadline g g')
  | Zx -> run Equivalence.Zx_calculus (fun () -> Zx_checker.check ?deadline g g')
  | Clifford -> run Equivalence.Stabilizer (fun () -> Stab_checker.check ?deadline g g')
  | Portfolio ->
      run Equivalence.Portfolio (fun () ->
          Portfolio.check ?tol ?gc_threshold ~sim_runs ~seed ?jobs ?deadline ~oracle g g')
  | Combined ->
      run Equivalence.Combined (fun () ->
          (* Sequential emulation of the paper's parallel configuration:
             a short random-stimuli screen runs first (in the parallel
             original, the alternating checker would terminate the
             remaining simulations anyway), the completeness argument
             second.  The screen gets its own small time slice: on
             simulation-hostile circuits (QFT-like output states have
             exponential vector DDs) the parallel original would simply
             cancel the simulations, so blocking on them here would
             distort the comparison. *)
          let screen = min sim_runs 8 in
          let screen_deadline =
            let cap =
              match timeout with Some t -> Float.min 5.0 (t /. 10.0) | None -> 5.0
            in
            let d = start +. cap in
            match deadline with Some d' -> Some (Float.min d d') | None -> Some d
          in
          let sim =
            try Sim_checker.check ?tol ?gc_threshold ~runs:screen ~seed ?deadline:screen_deadline g g'
            with Equivalence.Timeout ->
              timed_out_report ~method_used:Equivalence.Simulation ~start
          in
          match sim.Equivalence.outcome with
          | Equivalence.Not_equivalent ->
              {
                sim with
                Equivalence.method_used = Equivalence.Combined;
                elapsed = Unix.gettimeofday () -. start;
              }
          | Equivalence.No_information | Equivalence.Equivalent | Equivalence.Timed_out ->
              let dd = Dd_checker.check_alternating ~oracle ?tol ?gc_threshold ?deadline g g' in
              {
                dd with
                Equivalence.method_used = Equivalence.Combined;
                elapsed = Unix.gettimeofday () -. start;
                simulations = sim.Equivalence.simulations;
              })
