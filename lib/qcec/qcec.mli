(** Equivalence checking of quantum circuits — the library facade.

    Reproduces the two paradigms compared by Peham, Burgholzer and Wille
    (DAC 2022): decision diagrams (the QCEC approach) and the ZX-calculus
    (the PyZX approach).

    {[
      let g  = Oqec_workloads.Workloads.ghz 3 in
      let g' = Oqec_compile.Compile.run (Oqec_compile.Architecture.linear 5) g in
      let report = Qcec.check ~strategy:Qcec.Combined g g' in
      assert (report.Equivalence.outcome = Equivalence.Equivalent)
    ]}

    Equivalence means equality of the circuits' effective unitaries up to
    a global phase, where initial layouts, SWAP insertions and output
    permutations of compiled circuits are accounted for (Section 3). *)

open Oqec_circuit

type strategy =
  | Reference  (** build both DDs and compare (canonicity argument) *)
  | Alternating  (** miter DD kept near the identity (Section 4.1) *)
  | Simulation  (** random stimuli only: refutation or no information *)
  | Zx  (** graph-like ZX rewriting (Section 5.1) *)
  | Combined
      (** the paper's QCEC configuration: random-stimuli refutation
          followed by the alternating scheme (a sequential emulation of
          the parallel setup of Section 6.1) *)
  | Clifford
      (** stabilizer-tableau comparison — complete and polynomial for
          Clifford-only circuits, [No_information] otherwise (extension
          beyond the paper) *)
  | Portfolio
      (** the paper's QCEC configuration run {e actually} in parallel
          (Section 6.1): alternating DD, ZX and sharded random stimuli
          race on separate domains, first conclusive answer wins and
          cancels the rest (see {!Portfolio}) *)

val strategy_to_string : strategy -> string
val strategy_of_string : string -> strategy option

(** [oracle_checkers ()] is the canonical set of named {!Engine.CHECKER}s
    a differential oracle runs side by side: the alternating DD scheme
    (["dd"]), ZX rewriting (["zx"]), random-stimuli simulation (["sim"])
    and the stabilizer tableau (["stab"]).  The paper's core claim is
    that these independent paradigms must agree on every instance, which
    is exactly what the fuzzing subsystem ([oqec.fuzz]) checks: each
    entry is run through {!Engine.run_worker} under its own context and
    any verdict disagreement is a bug by construction. *)
val oracle_checkers :
  ?dd_core:Oqec_dd.Dd_core.kind ->
  unit ->
  (string * Equivalence.method_used * Engine.checker) list

(** [check ?strategy ?timeout ?tol ?gc_threshold ?sim_runs ?seed g g']
    decides whether the circuits are equivalent up to global phase and
    layout metadata.

    [timeout] is wall-clock seconds for the whole check (default: none);
    [tol] the DD weight-interning tolerance; [gc_threshold] the DD
    package's node-reclamation trigger (see {!Oqec_dd.Dd.create});
    [sim_runs] the number of random stimuli (default 16, as in the
    paper's setup); [seed] makes stimuli reproducible; [jobs] the
    [Portfolio] strategy's simulation shard count (default
    {!Portfolio.default_jobs}; ignored by the other strategies — verdicts
    never depend on it); [scheme] selects the DD application scheme
    (default [Proportional]; [Dd_scheme.Auto] resolves per instance
    through [table], default {!Dd_dispatch.builtin}, and makes the
    [Portfolio] strategy race scheme-diverse DD workers); [checkers]
    restricts the
    [Portfolio] strategy's racers (default {!Portfolio.default_selection},
    ignored by the other strategies); [dd_core] selects the DD package
    representation for every DD-based engine
    ({!Oqec_dd.Dd_core.kind}: boxed records or the struct-of-arrays
    arena; default boxed — verdicts never depend on it); [sink] collects Chrome
    [trace_event] spans and counters (see {!Engine.Trace}).

    Every strategy runs through {!Engine.run}: the report's
    [engine_stats] carries one counter payload per engine that ran
    (DD package statistics included when applicable), and for
    [Portfolio] the [winner]/[jobs]/[runs] fields record the race
    breakdown. *)
val check :
  ?strategy:strategy ->
  ?timeout:float ->
  ?tol:float ->
  ?gc_threshold:int ->
  ?sim_runs:int ->
  ?seed:int ->
  ?jobs:int ->
  ?scheme:Dd_scheme.t ->
  ?table:Dd_dispatch.table ->
  ?checkers:Portfolio.selection ->
  ?dd_core:Oqec_dd.Dd_core.kind ->
  ?sink:Engine.Trace.sink ->
  Circuit.t ->
  Circuit.t ->
  Equivalence.report
