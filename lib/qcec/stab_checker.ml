open Oqec_circuit
open Oqec_stab

let check ?deadline ?cancel g g' =
  let start = Unix.gettimeofday () in
  let gd =
    Equivalence.Guard.make ?deadline
      ?cancel:(Option.map (fun flag () -> Atomic.get flag) cancel)
      ()
  in
  let g, g' = Flatten.align g g' in
  let a = Flatten.flatten g and b = Flatten.flatten g' in
  let n = Circuit.num_qubits a in
  let outcome, note =
    match (Tableau.of_circuit a, Tableau.of_circuit b) with
    | ta, tb ->
        Equivalence.Guard.check gd;
        if Tableau.equal ta tb then (Equivalence.Equivalent, "")
        else (Equivalence.Not_equivalent, "(conjugation tableaus differ)")
    | exception Tableau.Not_clifford what ->
        (Equivalence.No_information, Printf.sprintf "(not a Clifford circuit: %s)" what)
  in
  {
    Equivalence.outcome;
    method_used = Equivalence.Stabilizer;
    elapsed = Unix.gettimeofday () -. start;
    peak_size = 2 * n;
    final_size = 2 * n;
    simulations = 0;
    note;
    dd_stats = None;
    portfolio = None;
  }
