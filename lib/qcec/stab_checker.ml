open Oqec_circuit
open Oqec_stab

let checker : Engine.checker =
  (module struct
    let name = "stabilizer"

    let run ctx g g' =
      let g, g' = Flatten.align g g' in
      let a = Flatten.flatten g and b = Flatten.flatten g' in
      let n = Circuit.num_qubits a in
      let tableau side c =
        Engine.Ctx.span ctx ~cat:"stab" ("tableau-" ^ side) (fun () ->
            let t = Tableau.of_circuit c in
            (* A conjugation tableau is 2n canonical stabilizer rows. *)
            Engine.Ctx.add ctx Engine.Stab_row (2 * n);
            t)
      in
      let outcome, note =
        match (tableau "left" a, tableau "right" b) with
        | ta, tb ->
            Engine.Ctx.check ctx;
            if Tableau.equal ta tb then (Equivalence.Equivalent, "")
            else (Equivalence.Not_equivalent, "(conjugation tableaus differ)")
        | exception Tableau.Not_clifford what ->
            (Equivalence.No_information, Printf.sprintf "(not a Clifford circuit: %s)" what)
      in
      {
        Engine.outcome;
        peak_size = 2 * n;
        final_size = 2 * n;
        simulations = 0;
        note;
        dd = None;
        certificate = None;
      }
  end)

let check ?deadline ?cancel g g' =
  let ctx =
    Engine.Ctx.make ?deadline
      ?cancel:(Option.map (fun flag () -> Atomic.get flag) cancel)
      ()
  in
  Engine.run ~ctx ~method_used:Equivalence.Stabilizer checker g g'
