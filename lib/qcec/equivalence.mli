(** Result types shared by all equivalence-checking strategies. *)

type outcome =
  | Equivalent  (** proven equivalent up to global phase *)
  | Not_equivalent  (** proven non-equivalent (counterexample or mismatch) *)
  | No_information
      (** the procedure terminated without a proof either way — e.g. the
          ZX rewriting got stuck, which Section 6.2 notes is a strong
          indication (but no proof) of non-equivalence *)
  | Timed_out

type method_used =
  | Reference_dd  (** build both DDs and compare roots *)
  | Alternating_dd  (** the miter scheme of Section 4.1 *)
  | Simulation  (** random-stimuli runs *)
  | Zx_calculus  (** graph-like rewriting of Section 5.1 *)
  | Combined  (** simulation + alternating DD, as evaluated in the paper *)
  | Stabilizer
      (** Heisenberg-tableau comparison, complete for the Clifford
          fragment (extension beyond the paper) *)
  | Portfolio
      (** parallel portfolio: alternating DD, ZX and sharded simulation
          racing on separate domains, first conclusive answer wins — the
          actual (parallel) QCEC configuration of Section 6.1 *)

(** One constituent checker of a portfolio run. *)
type checker_run = {
  checker : string;  (** e.g. ["alternating-dd"], ["simulation-2"] *)
  run_outcome : outcome;
  run_elapsed : float;  (** seconds spent in that worker *)
  run_note : string;  (** e.g. ["(cancelled)"] for losing workers *)
}

(** Per-checker breakdown of a portfolio race. *)
type portfolio_info = {
  winner : string option;
      (** the checker whose conclusive answer won; [None] if every
          checker yielded *)
  jobs : int;  (** simulation shard count *)
  runs : checker_run list;
}

type report = {
  outcome : outcome;
  method_used : method_used;
  elapsed : float;  (** seconds *)
  peak_size : int;
      (** DD methods: nodes allocated in the package; ZX: spiders in the
          initial miter diagram *)
  final_size : int;
      (** DD: nodes in the final diagram; ZX: spiders left after
          reduction *)
  simulations : int;  (** random-stimuli runs actually performed *)
  note : string;
  dd_stats : Oqec_dd.Dd.stats option;
      (** DD engine statistics (GC activity, compute-cache hit rates) for
          the strategies that ran a DD package; [None] for ZX and
          stabilizer checks *)
  portfolio : portfolio_info option;
      (** winner and per-checker breakdown; [Some] only for the
          [Portfolio] strategy *)
}

exception Timeout

(** Raised inside a portfolio worker when another checker already won the
    race (cooperative cancellation). *)
exception Cancelled

(** Deadline and cancellation polling for checker hot loops.

    A guard bundles an optional wall-clock deadline with an optional
    cancellation predicate (typically a closure over an [Atomic.t] stop
    flag shared by a portfolio).  {!Guard.check} is designed to sit at
    every safe point of a checker: the cancellation flag is read on every
    call (one atomic load), the wall clock only once per
    {!Guard.quantum} calls, so deadline polling stays off the hot path
    while behaviour is unchanged within one polling window. *)
module Guard : sig
  type t

  (** Number of {!check} calls between two [Unix.gettimeofday] polls. *)
  val quantum : int

  val make : ?deadline:float -> ?cancel:(unit -> bool) -> unit -> t

  (** Raises {!Timeout} past the deadline, {!Cancelled} when the
      cancellation predicate fires. *)
  val check : t -> unit

  (** Predicate form for ZX's [should_stop]. *)
  val stopper : t -> unit -> bool

  (** Whether the cancellation predicate currently fires (no exception,
      no clock). *)
  val cancelled : t -> bool
end

val outcome_to_string : outcome -> string
val method_to_string : method_used -> string

(** RFC 8259-escaped JSON string literal (with the surrounding quotes). *)
val json_string : string -> string

(** One-line JSON object for machine consumption (engine statistics and
    portfolio breakdown included when present). *)
val report_to_json : report -> string

val pp_report : Format.formatter -> report -> unit
