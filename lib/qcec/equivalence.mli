(** Result types shared by all equivalence-checking strategies. *)

type outcome =
  | Equivalent  (** proven equivalent up to global phase *)
  | Not_equivalent  (** proven non-equivalent (counterexample or mismatch) *)
  | No_information
      (** the procedure terminated without a proof either way — e.g. the
          ZX rewriting got stuck, which Section 6.2 notes is a strong
          indication (but no proof) of non-equivalence *)
  | Timed_out

type method_used =
  | Reference_dd  (** build both DDs and compare roots *)
  | Alternating_dd  (** the miter scheme of Section 4.1 *)
  | Simulation  (** random-stimuli runs *)
  | Zx_calculus  (** graph-like rewriting of Section 5.1 *)
  | Combined  (** simulation + alternating DD, as evaluated in the paper *)
  | Stabilizer
      (** Heisenberg-tableau comparison, complete for the Clifford
          fragment (extension beyond the paper) *)

type report = {
  outcome : outcome;
  method_used : method_used;
  elapsed : float;  (** seconds *)
  peak_size : int;
      (** DD methods: nodes allocated in the package; ZX: spiders in the
          initial miter diagram *)
  final_size : int;
      (** DD: nodes in the final diagram; ZX: spiders left after
          reduction *)
  simulations : int;  (** random-stimuli runs actually performed *)
  note : string;
  dd_stats : Oqec_dd.Dd.stats option;
      (** DD engine statistics (GC activity, compute-cache hit rates) for
          the strategies that ran a DD package; [None] for ZX and
          stabilizer checks *)
}

exception Timeout

(** [guard deadline] raises {!Timeout} once [Unix.gettimeofday] passes the
    deadline (no-op for [None]). *)
val guard : float option -> unit

(** [stopper deadline] is a polling function for ZX's [should_stop]. *)
val stopper : float option -> unit -> bool

val outcome_to_string : outcome -> string
val method_to_string : method_used -> string

(** One-line JSON object for machine consumption (engine statistics
    included when present). *)
val report_to_json : report -> string

val pp_report : Format.formatter -> report -> unit
