(** Result types shared by all equivalence-checking strategies. *)

type outcome =
  | Equivalent  (** proven equivalent up to global phase *)
  | Not_equivalent  (** proven non-equivalent (counterexample or mismatch) *)
  | No_information
      (** the procedure terminated without a proof either way — e.g. the
          ZX rewriting got stuck, which Section 6.2 notes is a strong
          indication (but no proof) of non-equivalence *)
  | Timed_out

type method_used =
  | Reference_dd  (** build both DDs and compare roots *)
  | Alternating_dd  (** the miter scheme of Section 4.1 *)
  | Simulation  (** random-stimuli runs *)
  | Zx_calculus  (** graph-like rewriting of Section 5.1 *)
  | Combined  (** simulation + alternating DD, as evaluated in the paper *)
  | Stabilizer
      (** Heisenberg-tableau comparison, complete for the Clifford
          fragment (extension beyond the paper) *)
  | Portfolio
      (** parallel portfolio: a set of checkers racing on separate
          domains, first conclusive answer wins — the actual (parallel)
          QCEC configuration of Section 6.1 *)

(** One constituent checker of a multi-worker run. *)
type checker_run = {
  checker : string;  (** e.g. ["alternating-dd"], ["simulation-2"] *)
  run_outcome : outcome;
  run_elapsed : float;  (** seconds spent in that worker *)
  run_note : string;  (** e.g. ["(cancelled)"] for losing workers *)
}

(** Per-engine observability payload, one per checker that ran.  The
    [counters] are the typed trace counters accumulated by the execution
    context (e.g. ["dd.gates_applied"], ["zx.rewrites.pivot"],
    ["sim.stimuli"], ["stab.rows_canonicalized"]); [dd] carries the rich
    decision-diagram package statistics when that checker ran one.  New
    engines extend the report by adding counters — no new report fields
    are needed. *)
type engine_stats = {
  engine : string;
  counters : (string * int) list;  (** sorted by counter name *)
  dd : Oqec_dd.Dd.stats option;
}

type report = {
  outcome : outcome;
  method_used : method_used;
  elapsed : float;  (** seconds (monotonic clock) *)
  peak_size : int;
      (** DD methods: nodes allocated in the package; ZX: the true
          running peak of the spider count (rewrites such as boundary
          pivoting and gadgetization grow the graph transiently) *)
  final_size : int;
      (** DD: nodes in the final diagram; ZX: spiders left after
          reduction *)
  simulations : int;  (** random-stimuli runs actually performed *)
  note : string;
  engine_stats : engine_stats list;
      (** one entry per engine that ran (workers of a race each get
          their own entry) *)
  winner : string option;
      (** races: the checker whose conclusive answer won; [None] for
          single-checker strategies or when every racer yielded *)
  jobs : int;  (** simulation shard count of a race; [1] otherwise *)
  runs : checker_run list;
      (** per-worker breakdown of a race; a single entry for
          single-checker strategies *)
  certificate : Oqec_cert.Cert.t option;
      (** replayable proof of the verdict, when the deciding checker
          produced one: a ZX rewrite trace for [Equivalent], a refuting
          stimulus for [Not_equivalent] (see {!Oqec_cert.Cert}); only a
          one-line summary appears in the JSON rendering *)
}

(** First engine entry carrying decision-diagram package statistics,
    if any ran. *)
val dd_stats : report -> Oqec_dd.Dd.stats option

exception Timeout

(** Raised inside a racing worker when another checker already won
    (cooperative cancellation). *)
exception Cancelled

(** Deadline and cancellation polling for checker hot loops.

    A guard bundles an optional deadline (absolute {!Mclock} time) with
    an optional cancellation predicate (typically a closure over an
    [Atomic.t] stop flag shared by a race).  {!Guard.check} is designed
    to sit at every safe point of a checker: the cancellation flag is
    read on every call (one atomic load), the monotonic clock only once
    per {!Guard.quantum} calls, so deadline polling stays off the hot
    path while behaviour is unchanged within one polling window. *)
module Guard : sig
  type t

  (** Number of {!check} calls between two {!Mclock.now} polls. *)
  val quantum : int

  (** [deadline] is absolute monotonic time ({!Mclock.now}-based). *)
  val make : ?deadline:float -> ?cancel:(unit -> bool) -> unit -> t

  (** Raises {!Timeout} past the deadline, {!Cancelled} when the
      cancellation predicate fires. *)
  val check : t -> unit

  (** Predicate form for ZX's [should_stop]. *)
  val stopper : t -> unit -> bool

  (** Whether the cancellation predicate currently fires (no exception,
      no clock). *)
  val cancelled : t -> bool
end

val outcome_to_string : outcome -> string
val method_to_string : method_used -> string

(** RFC 8259-escaped JSON string literal (with the surrounding quotes). *)
val json_string : string -> string

(** One-line JSON object for machine consumption (engine statistics,
    counters and race breakdown included). *)
val report_to_json : report -> string

val pp_report : Format.formatter -> report -> unit
