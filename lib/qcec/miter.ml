open Oqec_circuit
open Oqec_dd

(* Explicit miter state for the DD checkers: the evolving product
   D = b_j ... b_0 * inv(a_0) ... inv(a_i) plus the per-side cursors the
   application schemes steer.  Generic over the DD core and instantiated
   for both representations by {!Dd_checker}.

   Invariants:
   - the live edge [d] is pinned as a GC root throughout (gate
     application is the package's collection safe point; an unrooted
     miter would lose canonicity the moment a collection runs);
   - speculative candidates produced by [peek_*] stay rooted until the
     next commit, which either promotes one of them or discards both. *)

let fidelity_threshold = 1.0 -. 1e-9

module Make (C : Dd_core.S) = struct
  type t = {
    ctx : Engine.Ctx.t;
    pkg : C.pkg;
    n : int;
    ops_left : Circuit.op array;  (* G, applied inverted from the right *)
    ops_right : Circuit.op array;  (* G', applied from the left *)
    left_cost_total : int;
    right_cost_total : int;
    mutable d : C.edge;
    mutable ia : int;
    mutable ib : int;
    mutable left_cost : int;
    mutable right_cost : int;
    (* Memoised speculative applications: candidate edge plus its node
       count, kept rooted until the next commit.  A [peek_left] followed
       by [apply_left] commits the cached candidate instead of
       recomputing the application. *)
    mutable spec_left : (C.edge * int) option;
    mutable spec_right : (C.edge * int) option;
    trace : (int -> unit) option;
  }

  (* Gate application is the package's collection safe point; it doubles
     as the engine's counting and deadline/cancellation polling point. *)
  let hook_pkg ctx pkg =
    C.on_safe_point pkg (fun () ->
        Engine.Ctx.incr ctx Engine.Dd_gate_applied;
        Engine.Ctx.check ctx)

  let total_cost ops = Array.fold_left (fun acc op -> acc + Dd_scheme.op_cost op) 0 ops

  (* The circuits are lowered to elementary gates first: the miter
     inverts operation by operation, and controlled rotations only
     invert exactly after decomposition (their inverse-angle form
     differs by a controlled sign, rotation angles being canonical
     modulo 2*pi). *)
  let create ctx ?trace g g' =
    let g, g' = Flatten.align g g' in
    let a = Decompose.elementary (Flatten.flatten g)
    and b = Decompose.elementary (Flatten.flatten g') in
    let n = Circuit.num_qubits a in
    let pkg =
      C.create ?tol:(Engine.Ctx.tol ctx) ?gc_threshold:(Engine.Ctx.gc_threshold ctx) ()
    in
    hook_pkg ctx pkg;
    let ops_left = Circuit.ops_array a and ops_right = Circuit.ops_array b in
    let d = C.identity pkg n in
    C.root pkg d;
    let m =
      {
        ctx;
        pkg;
        n;
        ops_left;
        ops_right;
        left_cost_total = total_cost ops_left;
        right_cost_total = total_cost ops_right;
        d;
        ia = 0;
        ib = 0;
        left_cost = 0;
        right_cost = 0;
        spec_left = None;
        spec_right = None;
        trace;
      }
    in
    (match trace with Some f -> f (C.node_count pkg d) | None -> ());
    m

  let package m = m.pkg
  let qubits m = m.n
  let edge m = m.d
  let left_remaining m = Array.length m.ops_left - m.ia
  let right_remaining m = Array.length m.ops_right - m.ib
  let exhausted m = left_remaining m = 0 && right_remaining m = 0
  let live_size m = C.node_count m.pkg m.d

  let drop_specs m =
    (match m.spec_left with Some (e, _) -> C.unroot m.pkg e | None -> ());
    (match m.spec_right with Some (e, _) -> C.unroot m.pkg e | None -> ());
    m.spec_left <- None;
    m.spec_right <- None

  (* Root the incoming edge before releasing anything: [nd] may be one
     of the speculative candidates (roots are counted, so the transfer
     is a net re-pin, never a window without a root). *)
  let commit m nd =
    C.root m.pkg nd;
    drop_specs m;
    C.unroot m.pkg m.d;
    m.d <- nd;
    match m.trace with Some f -> f (C.node_count m.pkg m.d) | None -> ()

  let next_left m = C.apply_op_left m.pkg m.n m.d (Circuit.inverse_op m.ops_left.(m.ia))
  let next_right m = C.apply_op m.pkg m.n m.d m.ops_right.(m.ib)

  let peek_left m =
    match m.spec_left with
    | Some (_, size) -> size
    | None ->
        let e = next_left m in
        (* Pin the candidate: computing the other side's candidate (or
           anything else before the commit) may trigger a collection. *)
        C.root m.pkg e;
        let size = C.node_count m.pkg e in
        m.spec_left <- Some (e, size);
        size

  let peek_right m =
    match m.spec_right with
    | Some (_, size) -> size
    | None ->
        let e = next_right m in
        C.root m.pkg e;
        let size = C.node_count m.pkg e in
        m.spec_right <- Some (e, size);
        size

  let apply_left m =
    let nd = match m.spec_left with Some (e, _) -> e | None -> next_left m in
    commit m nd;
    m.left_cost <- m.left_cost + Dd_scheme.op_cost m.ops_left.(m.ia);
    m.ia <- m.ia + 1;
    Engine.Ctx.incr m.ctx Engine.Dd_left_applied

  let apply_right m =
    let nd = match m.spec_right with Some (e, _) -> e | None -> next_right m in
    commit m nd;
    m.right_cost <- m.right_cost + Dd_scheme.op_cost m.ops_right.(m.ib);
    m.ib <- m.ib + 1;
    Engine.Ctx.incr m.ctx Engine.Dd_right_applied

  let apply m = function
    | Dd_scheme.Left -> apply_left m
    | Dd_scheme.Right -> apply_right m

  let probe m =
    {
      Dd_scheme.left_applied = m.ia;
      left_total = Array.length m.ops_left;
      right_applied = m.ib;
      right_total = Array.length m.ops_right;
      left_cost_applied = m.left_cost;
      left_cost_total = m.left_cost_total;
      right_cost_applied = m.right_cost;
      right_cost_total = m.right_cost_total;
      live_size = (fun () -> live_size m);
      peek_left = (fun () -> peek_left m);
      peek_right = (fun () -> peek_right m);
    }

  let fidelity m = C.fidelity_to_identity m.pkg ~n:m.n m.d
  let identity_distance m = 1.0 -. fidelity m

  (* Equivalence of unitaries is decided on the miter DD: structural
     identity up to phase, with the Hilbert-Schmidt overlap |tr D| / 2^n
     as the tolerance-aware fallback (Section 3). *)
  let conclude m =
    if C.is_identity ~up_to_phase:true m.pkg m.n m.d then Equivalence.Equivalent
    else if fidelity m >= fidelity_threshold then Equivalence.Equivalent
    else Equivalence.Not_equivalent
end
