(** Parallel portfolio equivalence checking (Section 6.1, parallel form).

    A generic race combinator over {!Engine.CHECKER}s: every entry runs
    on its own domain under its own derived execution context, and the
    first conclusive answer ([Equivalent] / [Not_equivalent]) wins and
    cooperatively cancels the remaining workers through [Atomic.t] stop
    flags polled at the checkers' existing safe points.
    [No_information] / [Timed_out] are returned only when every worker
    yields.

    Verdicts are deterministic in [seed] and independent of [jobs]:
    stimulus [i] is a pure function of [(seed, i)], refuting shards drain
    to the globally minimal counterexample index, and every constituent
    checker is individually deterministic. *)

open Oqec_circuit

(** Default simulation shard count:
    [Domain.recommended_domain_count () - 2] (leaving room for the DD and
    ZX workers), clamped to [1, 4]. *)
val default_jobs : unit -> int

(** Which checkers race.  [default_selection] is the paper's
    configuration: [dd], [zx] and the simulation shards. *)
type selection = { use_dd : bool; use_zx : bool; use_sim : bool; use_stab : bool }

val default_selection : selection

(** Parse a comma-separated selection such as ["dd,zx,sim,stab"]. *)
val selection_of_string : string -> (selection, string) result

val selection_to_string : selection -> string

(** One racer of a {!race}: [drain] workers are not force-cancelled when
    a sibling drain worker wins — they are bounded by their own shared
    progress protocol instead (the simulation shards' minimal-index
    drain). *)
type entry

val entry : ?drain:bool -> Engine.checker -> entry

(** [race ~ctx ?jobs ?resolve entries g g'] runs every entry on a fresh
    domain (worker contexts derived from [ctx] share its deadline and
    trace sink) and assembles the portfolio report: winner, per-worker
    breakdown and per-worker engine statistics.  [resolve] may remap the
    raw winning slot index to a display name and a canonical slot index
    (used to surface the globally-minimal simulation counterexample);
    [jobs] is recorded in the report. *)
val race :
  ctx:Engine.Ctx.t ->
  ?jobs:int ->
  ?resolve:(int -> string * int) ->
  entry list ->
  Circuit.t ->
  Circuit.t ->
  Equivalence.report

(** [check ?tol ?gc_threshold ?sim_runs ?seed ?jobs ?deadline ?scheme
    ?table ?schemes ?checkers ?sink g g'] races the selected checkers
    ([jobs] simulation shards splitting [sim_runs] stimuli round-robin,
    plus one worker per selected non-simulation checker).  [scheme]
    picks the DD application scheme (default proportional); a concrete
    scheme races as a single ["dd-<scheme>"] worker, while
    [Dd_scheme.Auto] resolves through [table] and races the resolved
    scheme alongside a structurally different partner (scheme-diverse DD
    racers).  [schemes] overrides that derivation with an explicit racer
    list.  The report's [method_used] is [Portfolio]; its
    [winner]/[jobs]/[runs] fields record the winning checker and the
    per-checker outcome/elapsed breakdown, and [engine_stats] carries
    one counter payload per worker. *)
val check :
  ?tol:float ->
  ?gc_threshold:int ->
  ?sim_runs:int ->
  ?seed:int ->
  ?jobs:int ->
  ?deadline:float ->
  ?scheme:Dd_scheme.t ->
  ?table:Dd_dispatch.table ->
  ?schemes:Dd_scheme.t list ->
  ?checkers:selection ->
  ?dd_core:Oqec_dd.Dd_core.kind ->
  ?sink:Engine.Trace.sink ->
  Circuit.t ->
  Circuit.t ->
  Equivalence.report
