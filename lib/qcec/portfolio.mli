(** Parallel portfolio equivalence checking (Section 6.1, parallel form).

    Races the alternating-DD scheme, the ZX rewriter and a sharded
    random-stimuli checker on separate domains; the first conclusive
    answer ([Equivalent] / [Not_equivalent]) wins and cooperatively
    cancels the remaining workers through [Atomic.t] stop flags polled at
    the checkers' existing safe points.  [No_information] / [Timed_out]
    are returned only when every worker yields.

    Verdicts are deterministic in [seed] and independent of [jobs]:
    stimulus [i] is a pure function of [(seed, i)], refuting shards drain
    to the globally minimal counterexample index, and every constituent
    checker is individually deterministic. *)

open Oqec_circuit

(** Default simulation shard count:
    [Domain.recommended_domain_count () - 2] (leaving room for the DD and
    ZX workers), clamped to [1, 4]. *)
val default_jobs : unit -> int

(** [check ?tol ?gc_threshold ?sim_runs ?seed ?jobs ?deadline ?oracle g g']
    spawns [jobs + 2] worker domains ([jobs] simulation shards splitting
    [sim_runs] stimuli round-robin, plus the alternating-DD and ZX
    checkers).  The report's [method_used] is [Portfolio]; its
    [portfolio] field records the winning checker and the per-checker
    outcome/elapsed breakdown. *)
val check :
  ?tol:float ->
  ?gc_threshold:int ->
  ?sim_runs:int ->
  ?seed:int ->
  ?jobs:int ->
  ?deadline:float ->
  ?oracle:Dd_checker.oracle ->
  Circuit.t ->
  Circuit.t ->
  Equivalence.report
