open Oqec_base
open Oqec_circuit

module Trace = struct
  type event =
    | Span of { name : string; cat : string; tid : int; ts_ns : int64; dur_ns : int64 }
    | Count of { name : string; tid : int; ts_ns : int64; value : int }

  type sink = { live : bool; epoch : int64; events : event list Atomic.t }

  let null = { live = false; epoch = 0L; events = Atomic.make [] }
  let create () = { live = true; epoch = Mclock.now_ns (); events = Atomic.make [] }
  let active s = s.live

  (* Lock-free push: racing domains retry on CAS failure.  The list is
     newest-first; readers reverse it. *)
  let emit s ev =
    if s.live then begin
      let rec go () =
        let old = Atomic.get s.events in
        if not (Atomic.compare_and_set s.events old (ev :: old)) then go ()
      in
      go ()
    end

  let events s = List.rev (Atomic.get s.events)

  (* Chrome trace_event timestamps are microseconds (floats allowed). *)
  let us ns = Int64.to_float ns /. 1e3

  let event_to_json = function
    | Span { name; cat; tid; ts_ns; dur_ns } ->
        Printf.sprintf
          "{\"name\":%s,\"cat\":%s,\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d}"
          (Equivalence.json_string name)
          (Equivalence.json_string cat)
          (us ts_ns) (us dur_ns) tid
    | Count { name; tid; ts_ns; value } ->
        Printf.sprintf
          "{\"name\":%s,\"cat\":\"counter\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":1,\"tid\":%d,\"args\":{\"value\":%d}}"
          (Equivalence.json_string name)
          (us ts_ns) tid value

  let to_chrome_json s =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "{\"traceEvents\":[";
    List.iteri
      (fun i ev ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (event_to_json ev))
      (events s);
    Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
    Buffer.contents buf

  let totals s =
    let tbl = Hashtbl.create 16 in
    List.iter
      (function
        | Span { name; dur_ns; _ } ->
            let prev = Option.value (Hashtbl.find_opt tbl name) ~default:0L in
            Hashtbl.replace tbl name (Int64.add prev dur_ns)
        | Count _ -> ())
      (events s);
    Hashtbl.fold (fun k v acc -> (k, Int64.to_float v *. 1e-9) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
end

type counter =
  | Dd_gate_applied
  | Dd_left_applied
  | Dd_right_applied
  | Dd_scheme_used of string
  | Dd_gc_run
  | Dd_cache_hit
  | Dd_arena_compaction
  | Dd_shard_contention
  | Zx_rewrite of string
  | Sim_stimulus
  | Stab_row

let counter_key = function
  | Dd_gate_applied -> "dd.gates_applied"
  | Dd_left_applied -> "dd.left_applied"
  | Dd_right_applied -> "dd.right_applied"
  | Dd_scheme_used scheme -> "dd.scheme." ^ scheme
  | Dd_gc_run -> "dd.gc_runs"
  | Dd_cache_hit -> "dd.cache_hits"
  | Dd_arena_compaction -> "dd.arena_compactions"
  | Dd_shard_contention -> "dd.shard_contention"
  | Zx_rewrite rule -> "zx.rewrites." ^ rule
  | Sim_stimulus -> "sim.stimuli"
  | Stab_row -> "stab.rows_canonicalized"

module Ctx = struct
  type t = {
    deadline : float option;
    cancel : (unit -> bool) option;
    tol : float option;
    gc_threshold : int option;
    sim_runs : int option;
    seed : int option;
    sink : Trace.sink;
    tid : int;
    guard : Equivalence.Guard.t;
    counters : (string, int ref) Hashtbl.t;
    (* Per-key timestamp of the last trace counter sample, to keep
       high-frequency counters (one bump per gate) from flooding the
       trace.  Single-owner like the rest of the context. *)
    last_sample : (string, int64) Hashtbl.t;
  }

  let make ?deadline ?cancel ?tol ?gc_threshold ?sim_runs ?seed ?(sink = Trace.null) () =
    {
      deadline;
      cancel;
      tol;
      gc_threshold;
      sim_runs;
      seed;
      sink;
      tid = 1;
      guard = Equivalence.Guard.make ?deadline ?cancel ();
      counters = Hashtbl.create 8;
      last_sample = Hashtbl.create 8;
    }

  let worker ctx ~tid ?cancel () =
    {
      ctx with
      tid;
      cancel;
      guard = Equivalence.Guard.make ?deadline:ctx.deadline ?cancel ();
      counters = Hashtbl.create 8;
      last_sample = Hashtbl.create 8;
    }

  let with_sim_runs ctx n = { ctx with sim_runs = Some n }

  (* Counters stay shared: the derived context is the same logical
     worker under a tighter deadline (e.g. the combined strategy's
     simulation screen). *)
  let with_deadline ctx d =
    {
      ctx with
      deadline = Some d;
      guard = Equivalence.Guard.make ~deadline:d ?cancel:ctx.cancel ();
    }

  let deadline ctx = ctx.deadline
  let tol ctx = ctx.tol
  let gc_threshold ctx = ctx.gc_threshold
  let sim_runs ctx = ctx.sim_runs
  let seed ctx = ctx.seed
  let sink ctx = ctx.sink
  let tid ctx = ctx.tid
  let rng_at ctx i = Rng.split_at (Rng.make ~seed:(Option.value ctx.seed ~default:0)) i
  let check ctx = Equivalence.Guard.check ctx.guard
  let stopper ctx = Equivalence.Guard.stopper ctx.guard
  let cancelled ctx = Equivalence.Guard.cancelled ctx.guard

  (* Trace counter tracks are sampled at most once per millisecond per
     key; the exact totals always land in the report's engine_stats. *)
  let sample_every_ns = 1_000_000L

  let sample ctx key value =
    if Trace.active ctx.sink then begin
      let now = Mclock.now_ns () in
      let due =
        match Hashtbl.find_opt ctx.last_sample key with
        | None -> true
        | Some last -> Int64.sub now last >= sample_every_ns
      in
      if due then begin
        Hashtbl.replace ctx.last_sample key now;
        Trace.emit ctx.sink
          (Trace.Count
             { name = key; tid = ctx.tid; ts_ns = Int64.sub now ctx.sink.Trace.epoch; value })
      end
    end

  let bump ctx key n =
    let cell =
      match Hashtbl.find_opt ctx.counters key with
      | Some cell -> cell
      | None ->
          let cell = ref 0 in
          Hashtbl.add ctx.counters key cell;
          cell
    in
    cell := !cell + n;
    sample ctx key !cell

  let add ctx c n = bump ctx (counter_key c) n
  let incr ctx c = add ctx c 1

  let set ctx c v =
    let key = counter_key c in
    Hashtbl.replace ctx.counters key (ref v);
    sample ctx key v

  let gauge ctx key v =
    let peak_key = key ^ ".peak" in
    (match Hashtbl.find_opt ctx.counters peak_key with
    | Some cell -> if v > !cell then cell := v
    | None -> Hashtbl.add ctx.counters peak_key (ref v));
    sample ctx key v

  let counters ctx =
    Hashtbl.fold (fun k v acc -> (k, !v) :: acc) ctx.counters []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  (* Emit one final sample per counter so trace tracks end at the true
     totals rather than the last throttled value. *)
  let flush ctx =
    if Trace.active ctx.sink then begin
      Hashtbl.reset ctx.last_sample;
      Hashtbl.iter (fun key cell -> sample ctx key !cell) ctx.counters
    end

  let span ctx ~cat name f =
    if not (Trace.active ctx.sink) then f ()
    else begin
      let t0 = Mclock.now_ns () in
      let finish () =
        let t1 = Mclock.now_ns () in
        Trace.emit ctx.sink
          (Trace.Span
             {
               name;
               cat;
               tid = ctx.tid;
               ts_ns = Int64.sub t0 ctx.sink.Trace.epoch;
               dur_ns = Int64.sub t1 t0;
             })
      in
      match f () with
      | v ->
          finish ();
          v
      | exception e ->
          finish ();
          raise e
    end
end

type verdict = {
  outcome : Equivalence.outcome;
  peak_size : int;
  final_size : int;
  simulations : int;
  note : string;
  dd : Oqec_dd.Dd.stats option;
  certificate : Oqec_cert.Cert.t option;
}

module type CHECKER = sig
  val name : string
  val run : Ctx.t -> Circuit.t -> Circuit.t -> verdict
end

type checker = (module CHECKER)

let stats_of ctx ~name dd =
  Ctx.flush ctx;
  { Equivalence.engine = name; counters = Ctx.counters ctx; dd }

let timed_out_verdict =
  {
    outcome = Equivalence.Timed_out;
    peak_size = 0;
    final_size = 0;
    simulations = 0;
    note = "";
    dd = None;
    certificate = None;
  }

(* Timeout is a verdict (the checker ran out of budget); Cancelled is
   control flow (another racer already won) and must propagate so the
   race can classify the worker. *)
let run_worker ctx checker g g' =
  let module C = (val checker : CHECKER) in
  Ctx.span ctx ~cat:"engine" C.name (fun () ->
      try C.run ctx g g' with Equivalence.Timeout -> timed_out_verdict)

let run ~ctx ~method_used checker g g' =
  let module C = (val checker : CHECKER) in
  let start = Mclock.now () in
  let verdict = run_worker ctx checker g g' in
  let elapsed = Mclock.elapsed_since start in
  {
    Equivalence.outcome = verdict.outcome;
    method_used;
    elapsed;
    peak_size = verdict.peak_size;
    final_size = verdict.final_size;
    simulations = verdict.simulations;
    note = verdict.note;
    engine_stats = [ stats_of ctx ~name:C.name verdict.dd ];
    winner = None;
    jobs = 1;
    runs =
      [
        {
          Equivalence.checker = C.name;
          run_outcome = verdict.outcome;
          run_elapsed = elapsed;
          run_note = "";
        };
      ];
    certificate = verdict.certificate;
  }
