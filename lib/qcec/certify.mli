(** On-demand certificate construction for a conclusive verdict.

    Checkers attach certificates opportunistically (the ZX checker
    records its own rewrites; the simulation checker exports its
    refuting stimulus).  When a verdict arrives without one — a DD or
    stabilizer win, or a replayed corpus verdict — [certify] builds the
    artifact from scratch: a recorded ZX reduction of the miter for
    [Equivalent], a deterministic dense witness search for
    [Not_equivalent]. *)

open Oqec_circuit

(** [certify outcome a b] produces a certificate substantiating
    [outcome] for the circuit pair, or [Error] explaining why none
    could be built (inconclusive outcome, reduction did not reach the
    identity, no refuting stimulus found, circuits too wide). *)
val certify :
  Equivalence.outcome -> Circuit.t -> Circuit.t -> (Oqec_cert.Cert.t, string) result
