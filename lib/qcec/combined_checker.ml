open Oqec_base

(* Sequential emulation of the paper's parallel configuration: a short
   random-stimuli screen runs first (in the parallel original, the
   alternating checker would terminate the remaining simulations anyway),
   the completeness argument second.  The screen gets its own small time
   slice: on simulation-hostile circuits (QFT-like output states have
   exponential vector DDs) the parallel original would simply cancel the
   simulations, so blocking on them here would distort the comparison. *)
let checker ?core ?scheme ?table () : Engine.checker =
  (module struct
    let name = "combined"

    let run ctx g g' =
      let screen_runs = min (Option.value (Engine.Ctx.sim_runs ctx) ~default:16) 8 in
      let now = Mclock.now () in
      let screen_deadline =
        match Engine.Ctx.deadline ctx with
        | Some d -> Float.min (now +. Float.min 5.0 ((d -. now) /. 10.0)) d
        | None -> now +. 5.0
      in
      let sctx =
        Engine.Ctx.with_sim_runs (Engine.Ctx.with_deadline ctx screen_deadline) screen_runs
      in
      let module Sim =
        (val Sim_checker.checker_core (Option.value core ~default:Oqec_dd.Dd_core.Boxed)
            : Engine.CHECKER)
      in
      let screen =
        (* A screen that exhausts its slice is simply inconclusive; only
           the overall deadline (enforced by [ctx]'s own guard in the DD
           phase) times the combined check out. *)
        match Engine.Ctx.span ctx ~cat:"sim" "screen" (fun () -> Sim.run sctx g g') with
        | v -> Some v
        | exception Equivalence.Timeout -> None
      in
      match screen with
      | Some v when v.Engine.outcome = Equivalence.Not_equivalent -> v
      | Some _ | None ->
          let sims =
            match screen with Some v -> v.Engine.simulations | None -> 0
          in
          let module Dd =
            (val Dd_checker.scheme_checker ?core ?scheme ?table () : Engine.CHECKER)
          in
          let v = Dd.run ctx g g' in
          { v with Engine.simulations = sims }
  end)
