(** Decision-diagram equivalence checking (Section 4.1).

    Both strategies decide [G ~ G'] up to global phase, honouring layout
    metadata and absorbing SWAPs via {!Flatten}. *)

open Oqec_circuit

(** Gate-scheduling oracles for the alternating scheme ([20]):
    [Proportional] advances the side that lags relative to its total gate
    count; [Lookahead] applies one gate from each side speculatively and
    commits to whichever keeps the diagram smaller (more bookkeeping per
    step, but it adapts when the two circuits' structures do not line up
    proportionally). *)
type oracle = Proportional | Lookahead

(** [check_alternating ?oracle ?tol ?gc_threshold ?trace ?deadline g g']
    builds the miter [U(G') * U(G)^dagger] starting from the identity,
    taking gates from both circuits so the intermediate diagram stays
    close to the identity.  [tol] is the DD package's interning
    tolerance; [gc_threshold] the package's collection trigger (see
    {!Oqec_dd.Dd.create}) — the evolving miter edge is pinned as a GC
    root; [trace] receives the intermediate node count after every gate
    application (used by the Fig. 4 demo and the ablations); [cancel] is
    a portfolio stop flag polled at every gate-application safe point
    (raises {!Equivalence.Cancelled} when set). *)
val check_alternating :
  ?oracle:oracle ->
  ?tol:float ->
  ?gc_threshold:int ->
  ?trace:(int -> unit) ->
  ?deadline:float ->
  ?cancel:bool Atomic.t ->
  Circuit.t ->
  Circuit.t ->
  Equivalence.report

(** [check_reference ?tol ?gc_threshold ?deadline ?cancel g g'] constructs
    both system-matrix DDs independently and compares root pointers
    (canonicity makes this a constant-time comparison once built). *)
val check_reference :
  ?tol:float ->
  ?gc_threshold:int ->
  ?deadline:float ->
  ?cancel:bool Atomic.t ->
  Circuit.t ->
  Circuit.t ->
  Equivalence.report

(** [check_approximate ?tol ?gc_threshold ?deadline ~threshold g g']
    decides approximate equivalence in the sense of the paper's
    reference [16]: the miter is built with the alternating scheme and
    the circuits count as equivalent when the normalised Hilbert-Schmidt
    overlap [|tr (U^dag V)| / 2^n] reaches [threshold].  Returns the
    report together with the measured fidelity. *)
val check_approximate :
  ?tol:float ->
  ?gc_threshold:int ->
  ?deadline:float ->
  threshold:float ->
  Circuit.t ->
  Circuit.t ->
  Equivalence.report * float
