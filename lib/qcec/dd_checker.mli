(** Decision-diagram equivalence checking (Section 4.1).

    Both strategies decide [G ~ G'] up to global phase, honouring layout
    metadata and absorbing SWAPs via {!Flatten}.  The checkers are
    {!Engine.CHECKER} instances; timing, deadline/cancellation polling
    and report assembly live in {!Engine.run}.

    The miter-based checker is a driver over the {!Miter} core,
    parameterised by a {!Dd_scheme.APPLICATION_SCHEME}: the scheme
    decides which side contributes the next gate, the miter does the
    bookkeeping, and [Auto] resolves to a concrete scheme per instance
    through the {!Dd_dispatch} table. *)

open Oqec_circuit
open Oqec_dd

(** [scheme_checker ?core ?scheme ?table ?trace ()] is the
    ["dd-<scheme>"] checker: it builds the miter [U(G') * U(G)^dagger]
    starting from the identity, taking gates from both circuits under
    [scheme]'s side policy (default [Proportional], the repo's
    long-standing default) so the intermediate diagram stays close to
    the identity.  [Dd_scheme.Auto] is resolved per instance through
    [table] (default {!Dd_dispatch.builtin}), recording the resolved
    scheme in the ["dd.scheme.<name>"] counter.  [trace] receives the
    intermediate node count after every commit (used by the Fig. 4 demo
    and the ablations).  The DD package's interning tolerance and
    collection trigger come from the execution context
    ({!Engine.Ctx.tol}, {!Engine.Ctx.gc_threshold}); every gate
    application bumps the ["dd.gates_applied"] counter and polls the
    context's guard, and per-side applications land in
    ["dd.left_applied"] / ["dd.right_applied"].  [core] selects the DD
    package representation ({!Dd_core.kind}; default boxed, the
    differential baseline). *)
val scheme_checker :
  ?core:Dd_core.kind ->
  ?scheme:Dd_scheme.t ->
  ?table:Dd_dispatch.table ->
  ?trace:(int -> unit) ->
  unit ->
  Engine.checker

(** The ["reference-dd"] checker: constructs both system-matrix DDs
    independently and compares root pointers (canonicity makes this a
    constant-time comparison once built). *)
val reference : Engine.checker

(** {!reference} over an explicit DD core. *)
val reference_core : Dd_core.kind -> Engine.checker

(** [check_miter ?core ?scheme ?table ?tol ?gc_threshold ?trace
    ?deadline ?cancel g g'] runs {!scheme_checker} under a fresh
    context.  [deadline] is absolute monotonic time; [cancel] is a
    portfolio stop flag polled at every gate-application safe point
    (raises {!Equivalence.Cancelled} when set). *)
val check_miter :
  ?core:Dd_core.kind ->
  ?scheme:Dd_scheme.t ->
  ?table:Dd_dispatch.table ->
  ?tol:float ->
  ?gc_threshold:int ->
  ?trace:(int -> unit) ->
  ?deadline:float ->
  ?cancel:bool Atomic.t ->
  Circuit.t ->
  Circuit.t ->
  Equivalence.report

(** [check_reference ?tol ?gc_threshold ?deadline ?cancel g g'] runs
    {!reference} under a fresh context. *)
val check_reference :
  ?core:Dd_core.kind ->
  ?tol:float ->
  ?gc_threshold:int ->
  ?deadline:float ->
  ?cancel:bool Atomic.t ->
  Circuit.t ->
  Circuit.t ->
  Equivalence.report

(** [check_approximate ?tol ?gc_threshold ?deadline ?sink ~threshold g g']
    decides approximate equivalence in the sense of the paper's
    reference [16]: the miter is built with the proportional scheme and
    the circuits count as equivalent when the normalised Hilbert-Schmidt
    overlap [|tr (U^dag V)| / 2^n] reaches [threshold].  Returns the
    report together with the measured fidelity ([nan] on timeout). *)
val check_approximate :
  ?core:Dd_core.kind ->
  ?tol:float ->
  ?gc_threshold:int ->
  ?deadline:float ->
  ?sink:Engine.Trace.sink ->
  threshold:float ->
  Circuit.t ->
  Circuit.t ->
  Equivalence.report * float
