(** Decision-diagram equivalence checking (Section 4.1).

    Both strategies decide [G ~ G'] up to global phase, honouring layout
    metadata and absorbing SWAPs via {!Flatten}.  The checkers are
    {!Engine.CHECKER} instances; timing, deadline/cancellation polling
    and report assembly live in {!Engine.run}. *)

open Oqec_circuit
open Oqec_dd

(** Gate-scheduling oracles for the alternating scheme ([20]):
    [Proportional] advances the side that lags relative to its total gate
    count; [Lookahead] applies one gate from each side speculatively and
    commits to whichever keeps the diagram smaller (more bookkeeping per
    step, but it adapts when the two circuits' structures do not line up
    proportionally). *)
type oracle = Proportional | Lookahead

(** [alternating ?oracle ?trace ()] is the ["alternating-dd"] checker: it
    builds the miter [U(G') * U(G)^dagger] starting from the identity,
    taking gates from both circuits so the intermediate diagram stays
    close to the identity.  [trace] receives the intermediate node count
    after every gate application (used by the Fig. 4 demo and the
    ablations).  The DD package's interning tolerance and collection
    trigger come from the execution context ({!Engine.Ctx.tol},
    {!Engine.Ctx.gc_threshold}); every gate application bumps the
    ["dd.gates_applied"] counter and polls the context's guard.  [core]
    selects the DD package representation ({!Dd_core.kind}; default
    boxed, the differential baseline). *)
val alternating :
  ?core:Dd_core.kind -> ?oracle:oracle -> ?trace:(int -> unit) -> unit -> Engine.checker

(** The ["reference-dd"] checker: constructs both system-matrix DDs
    independently and compares root pointers (canonicity makes this a
    constant-time comparison once built). *)
val reference : Engine.checker

(** {!reference} over an explicit DD core. *)
val reference_core : Dd_core.kind -> Engine.checker

(** [check_alternating ?oracle ?tol ?gc_threshold ?trace ?deadline
    ?cancel g g'] runs {!alternating} under a fresh context.  [deadline]
    is absolute monotonic time; [cancel] is a portfolio stop flag polled
    at every gate-application safe point (raises
    {!Equivalence.Cancelled} when set). *)
val check_alternating :
  ?core:Dd_core.kind ->
  ?oracle:oracle ->
  ?tol:float ->
  ?gc_threshold:int ->
  ?trace:(int -> unit) ->
  ?deadline:float ->
  ?cancel:bool Atomic.t ->
  Circuit.t ->
  Circuit.t ->
  Equivalence.report

(** [check_reference ?tol ?gc_threshold ?deadline ?cancel g g'] runs
    {!reference} under a fresh context. *)
val check_reference :
  ?core:Dd_core.kind ->
  ?tol:float ->
  ?gc_threshold:int ->
  ?deadline:float ->
  ?cancel:bool Atomic.t ->
  Circuit.t ->
  Circuit.t ->
  Equivalence.report

(** [check_approximate ?tol ?gc_threshold ?deadline ?sink ~threshold g g']
    decides approximate equivalence in the sense of the paper's
    reference [16]: the miter is built with the alternating scheme and
    the circuits count as equivalent when the normalised Hilbert-Schmidt
    overlap [|tr (U^dag V)| / 2^n] reaches [threshold].  Returns the
    report together with the measured fidelity ([nan] on timeout). *)
val check_approximate :
  ?core:Dd_core.kind ->
  ?tol:float ->
  ?gc_threshold:int ->
  ?deadline:float ->
  ?sink:Engine.Trace.sink ->
  threshold:float ->
  Circuit.t ->
  Circuit.t ->
  Equivalence.report * float
