open Oqec_circuit

(* Profile-guided scheme selection: a coarse structural fingerprint of
   the instance is looked up in a persisted table mapping fingerprints
   to the application scheme that won the last [bench dd-schemes] run.
   Unseen fingerprints fall back to {!Dd_scheme.Alternating} — the
   paper's baseline, never a regression against it. *)

(* ------------------------------------------------------------ fingerprint *)

(* The fingerprint buckets every feature so that instances of the same
   family land on the same key across small perturbations:
     v1:q<qubits>:s<log2 size>:r<depth ratio, halves>:c<Clifford decile>
       :h<1q-Clifford>.<1q-other>.<2q>.<multi> (deciles)
   Gate classes are counted over both circuits; barriers are ignored. *)

let clamp lo hi x = max lo (min hi x)

let fingerprint g g' =
  let n = max (Circuit.num_qubits g) (Circuit.num_qubits g') in
  let c1q_clif = ref 0 and c1q_other = ref 0 and c2q = ref 0 and cmulti = ref 0 in
  let cclif = ref 0 and total = ref 0 in
  let count op =
    match op with
    | Circuit.Barrier -> ()
    | Circuit.Gate (g, _) ->
        incr total;
        if Gate.is_clifford g then begin
          incr c1q_clif;
          incr cclif
        end
        else incr c1q_other
    | Circuit.Swap _ ->
        incr total;
        incr c2q;
        incr cclif
    | Circuit.Ctrl (cs, g, _) ->
        incr total;
        if List.length cs = 1 then incr c2q else incr cmulti;
        (* CX/CZ-style gates are the Clifford two-qubit generators. *)
        if List.length cs = 1 && (g = Gate.X || g = Gate.Z || g = Gate.Y) then
          incr cclif
  in
  List.iter count (Circuit.ops g);
  List.iter count (Circuit.ops g');
  let tot = max 1 !total in
  let decile k = clamp 0 10 (((10 * k) + (tot / 2)) / tot) in
  let rec lg acc k = if k <= 1 then acc else lg (acc + 1) (k / 2) in
  let da = max 1 (Circuit.depth g) and db = max 1 (Circuit.depth g') in
  let ratio_halves =
    clamp 0 40 (int_of_float (Float.round (2.0 *. float_of_int db /. float_of_int da)))
  in
  Printf.sprintf "v1:q%d:s%d:r%d:c%d:h%d.%d.%d.%d" n (lg 0 tot) ratio_halves
    (decile !cclif) (decile !c1q_clif) (decile !c1q_other) (decile !c2q)
    (decile !cmulti)

(* ------------------------------------------------------------ table *)

type entry = { fingerprint : string; scheme : Dd_scheme.t }
type table = entry list

let lookup table fp =
  List.find_map (fun e -> if e.fingerprint = fp then Some e.scheme else None) table

(* ------------------------------------------------------------ JSON *)

(* The repo has no JSON dependency; emission is hand-rolled everywhere
   and this is the one place that needs parsing, so a minimal recursive
   descent over the generic value shape keeps the file format honest
   (whitespace, key order and escapes all tolerated). *)

type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_arr of json list
  | J_obj of (string * json) list

exception Bad of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        let c = s.[!pos] in
        advance ();
        if c = '"' then Buffer.contents buf
        else if c = '\\' then begin
          (if !pos >= n then fail "unterminated escape"
           else
             let e = s.[!pos] in
             advance ();
             match e with
             | '"' -> Buffer.add_char buf '"'
             | '\\' -> Buffer.add_char buf '\\'
             | '/' -> Buffer.add_char buf '/'
             | 'b' -> Buffer.add_char buf '\b'
             | 'f' -> Buffer.add_char buf '\012'
             | 'n' -> Buffer.add_char buf '\n'
             | 'r' -> Buffer.add_char buf '\r'
             | 't' -> Buffer.add_char buf '\t'
             | 'u' ->
                 if !pos + 4 > n then fail "truncated \\u escape";
                 let hex = String.sub s !pos 4 in
                 pos := !pos + 4;
                 let code =
                   try int_of_string ("0x" ^ hex)
                   with _ -> fail "bad \\u escape"
                 in
                 (* The table only ever holds ASCII fingerprints; encode
                    the BMP code point as UTF-8 for good measure. *)
                 if code < 0x80 then Buffer.add_char buf (Char.chr code)
                 else if code < 0x800 then begin
                   Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                   Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                 end
                 else begin
                   Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                   Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                   Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                 end
             | _ -> fail "bad escape");
          go ()
        end
        else begin
          Buffer.add_char buf c;
          go ()
        end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected number"
    else
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          J_obj []
        end
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                J_obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or }"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          J_arr []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                J_arr (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          items []
    | Some '"' -> J_str (parse_string ())
    | Some 't' -> literal "true" (J_bool true)
    | Some 'f' -> literal "false" (J_bool false)
    | Some 'n' -> literal "null" J_null
    | Some _ -> J_num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse s =
  match parse_json s with
  | exception Bad msg -> Error ("dispatch table: " ^ msg)
  | J_obj fields -> (
      match (List.assoc_opt "version" fields, List.assoc_opt "entries" fields) with
      | Some (J_num v), _ when int_of_float v <> 1 ->
          Error
            (Printf.sprintf "dispatch table: unsupported version %d" (int_of_float v))
      | _, Some (J_arr entries) -> (
          let entry = function
            | J_obj e -> (
                match
                  (List.assoc_opt "fingerprint" e, List.assoc_opt "scheme" e)
                with
                | Some (J_str fp), Some (J_str sch) -> (
                    match Dd_scheme.of_string sch with
                    | Some (Dd_scheme.Auto) | None ->
                        Error ("dispatch table: bad scheme " ^ sch)
                    | Some scheme -> Ok { fingerprint = fp; scheme })
                | _ -> Error "dispatch table: entry needs fingerprint and scheme")
            | _ -> Error "dispatch table: entry is not an object"
          in
          match
            List.fold_left
              (fun acc e ->
                match (acc, entry e) with
                | Error _, _ -> acc
                | _, Error m -> Error m
                | Ok es, Ok x -> Ok (x :: es))
              (Ok []) entries
          with
          | Ok es -> Ok (List.rev es)
          | Error m -> Error m)
      | _, _ -> Error "dispatch table: missing entries array")
  | _ -> Error "dispatch table: top level is not an object"

let to_json table =
  let b = Buffer.create 256 in
  Buffer.add_string b "{\"version\":1,\"entries\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      (* Fingerprints are ASCII by construction; scheme names likewise —
         no escaping needed. *)
      Buffer.add_string b
        (Printf.sprintf "\n  {\"fingerprint\":\"%s\",\"scheme\":\"%s\"}" e.fingerprint
           (Dd_scheme.to_string e.scheme)))
    table;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents -> parse contents

let save path table =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc (to_json table))

(* ------------------------------------------------------------ builtin *)

(* Snapshot of bench/dispatch.json, compiled in so [--dd-scheme auto]
   works without the repo checkout.  Regenerated by [bench dd-schemes];
   keep the two in sync. *)
let builtin_json =
  {|{"version":1,"entries":[
  {"fingerprint":"v1:q65:s9:r20:c6:h0.3.7.0","scheme":"cost"},
  {"fingerprint":"v1:q65:s9:r14:c7:h1.3.7.0","scheme":"cost"},
  {"fingerprint":"v1:q65:s13:r40:c6:h1.4.5.0","scheme":"lookahead"},
  {"fingerprint":"v1:q65:s7:r18:c10:h2.0.8.0","scheme":"proportional"}
]}
|}

let builtin = match parse builtin_json with Ok t -> t | Error _ -> []

let default_path = Filename.concat "bench" "dispatch.json"

let default_table () =
  let candidate =
    match Sys.getenv_opt "OQEC_DISPATCH" with
    | Some p when p <> "" -> Some p
    | _ -> if Sys.file_exists default_path then Some default_path else None
  in
  match candidate with
  | None -> builtin
  | Some p -> ( match load p with Ok t -> t | Error _ -> builtin)

let choose ?(table = builtin) g g' =
  match lookup table (fingerprint g g') with
  | Some scheme -> scheme
  | None -> Dd_scheme.Alternating
