(** Streaming decision-diagram equivalence check.

    Consumes two QASM files through {!Oqec_qasm.Qasm_stream} and applies
    their gates to a miter as they are parsed: memory use is bounded by
    the evolving diagram plus one input chunk per side, independent of
    circuit length, so checks can run over files far larger than memory.

    [scheme] adapts the {!Dd_scheme} policies to the stream setting:
    [Proportional], [Cost_metric] and [Auto] schedule proportionally to
    input bytes consumed (gate counts and costs are unknown mid-stream),
    [Alternating] alternates strictly on applied operations, and
    [Lookahead] speculates one gate per side and keeps the smaller
    diagram.

    The streamed subset excludes measurement and layout metadata (see
    {!Oqec_qasm.Qasm_stream}); files outside the subset raise
    [Qasm_stream.Unsupported]. *)

(** [check ?core ?scheme ?chunk_size ?tol ?gc_threshold ?deadline ?sink
    a b] returns a report with [method_used = Alternating_dd] and
    checker name ["stream-dd"]. *)
val check :
  ?core:Oqec_dd.Dd_core.kind ->
  ?scheme:Dd_scheme.t ->
  ?chunk_size:int ->
  ?tol:float ->
  ?gc_threshold:int ->
  ?deadline:float ->
  ?sink:Engine.Trace.sink ->
  string ->
  string ->
  Equivalence.report
