(** Streaming decision-diagram equivalence check.

    Consumes two QASM files through {!Oqec_qasm.Qasm_stream} and applies
    their gates to an alternating miter as they are parsed: memory use
    is bounded by the evolving diagram plus one input chunk per side,
    independent of circuit length, so checks can run over files far
    larger than memory.  Alternation is proportional to input bytes
    consumed (gate counts are unknown mid-stream).

    The streamed subset excludes measurement and layout metadata (see
    {!Oqec_qasm.Qasm_stream}); files outside the subset raise
    [Qasm_stream.Unsupported]. *)

(** [check ?core ?chunk_size ?tol ?gc_threshold ?deadline ?sink a b]
    returns a report with [method_used = Alternating_dd] and checker
    name ["stream-dd"]. *)
val check :
  ?core:Oqec_dd.Dd_core.kind ->
  ?oracle:Dd_checker.oracle ->
  ?chunk_size:int ->
  ?tol:float ->
  ?gc_threshold:int ->
  ?deadline:float ->
  ?sink:Engine.Trace.sink ->
  string ->
  string ->
  Equivalence.report
