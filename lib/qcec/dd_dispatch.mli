open Oqec_circuit

(** Profile-guided application-scheme dispatch.

    [--dd-scheme auto] maps a coarse structural fingerprint of the
    instance through a persisted table ([bench/dispatch.json], written
    by [bench dd-schemes]) to the scheme that won the last profiling
    run.  Unseen fingerprints fall back to
    {!Dd_scheme.Alternating}. *)

(** Structural fingerprint of an instance pair: qubit count, log2 size
    class, depth ratio (in halves), Clifford fraction decile and a
    gate-class histogram in deciles.  Format (stable, versioned):
    [v1:q<n>:s<log2 gates>:r<2*depth'/depth>:c<clifford decile>
    :h<1q-Clifford>.<1q-other>.<2q>.<multi>]. *)
val fingerprint : Circuit.t -> Circuit.t -> string

type entry = { fingerprint : string; scheme : Dd_scheme.t }
type table = entry list

(** First entry matching the fingerprint, if any. *)
val lookup : table -> string -> Dd_scheme.t option

(** Parse the JSON wire form
    [{"version":1,"entries":[{"fingerprint":...,"scheme":...},...]}].
    Rejects unknown versions, non-concrete schemes and malformed
    JSON. *)
val parse : string -> (table, string) result

(** Serialise; [parse (to_json t)] returns [t]. *)
val to_json : table -> string

val load : string -> (table, string) result
val save : string -> table -> unit

(** Compiled-in snapshot of [bench/dispatch.json], used when no table
    file is reachable. *)
val builtin : table

(** The committed table location, [bench/dispatch.json]. *)
val default_path : string

(** Table the CLI consults for [--dd-scheme auto]: the [OQEC_DISPATCH]
    file if set, else [bench/dispatch.json] if present in the working
    directory, else {!builtin}.  Unreadable files degrade to
    {!builtin}. *)
val default_table : unit -> table

(** Resolve an instance to a concrete scheme: table hit, else
    {!Dd_scheme.Alternating}.  [table] defaults to {!builtin}. *)
val choose : ?table:table -> Circuit.t -> Circuit.t -> Dd_scheme.t
