open Oqec_base
open Oqec_circuit

(* Elaboration of parsed QASM statements into circuit operations, shared
   between the whole-program reader ({!Qasm}) and the streaming front
   end ({!Qasm_stream}).  Operations are delivered through [env.emit] as
   they are produced, so the streaming path never materialises the
   operation list; the batch path simply accumulates. *)

exception Parse_error of string

(* ------------------------------------------------------------ Evaluation *)

let rec eval_expr env (e : Qasm_ast.expr) : float =
  match e with
  | Qasm_ast.Num f -> f
  | Qasm_ast.Pi -> Float.pi
  | Qasm_ast.Ident name -> (
      match List.assoc_opt name env with
      | Some v -> v
      | None -> raise (Parse_error (Printf.sprintf "unbound parameter %S" name)))
  | Qasm_ast.Neg e -> -.eval_expr env e
  | Qasm_ast.Binop (op, a, b) -> (
      let a = eval_expr env a and b = eval_expr env b in
      match op with
      | '+' -> a +. b
      | '-' -> a -. b
      | '*' -> a *. b
      | '/' -> a /. b
      | '^' -> Float.pow a b
      | c -> raise (Parse_error (Printf.sprintf "unknown operator %C" c)))
  | Qasm_ast.Call (f, e) -> (
      let v = eval_expr env e in
      match f with
      | "sin" -> sin v
      | "cos" -> cos v
      | "tan" -> tan v
      | "exp" -> exp v
      | "ln" -> log v
      | "sqrt" -> sqrt v
      | _ -> raise (Parse_error (Printf.sprintf "unknown function %S" f)))

(* ------------------------------------------------------- Builtin gates *)

(* Each builtin maps evaluated parameters and resolved wires to ops.
   [arity] is (number of parameters, number of qubit arguments). *)

let single g = fun _ wires ->
  match wires with [ q ] -> [ Circuit.Gate (g, q) ] | _ -> assert false

let single1 mk = fun ps wires ->
  match (ps, wires) with
  | [ a ], [ q ] -> [ Circuit.Gate (mk a, q) ]
  | _ -> assert false

let ctrl1 g = fun _ wires ->
  match wires with [ c; t ] -> [ Circuit.Ctrl ([ c ], g, t) ] | _ -> assert false

let ctrl1p mk = fun ps wires ->
  match (ps, wires) with
  | [ a ], [ c; t ] -> [ Circuit.Ctrl ([ c ], mk a, t) ]
  | _ -> assert false

let builtins :
    (string * (int * int * (Phase.t list -> int list -> Circuit.op list))) list =
  [
    ("id", (0, 1, single Gate.I));
    ("x", (0, 1, single Gate.X));
    ("y", (0, 1, single Gate.Y));
    ("z", (0, 1, single Gate.Z));
    ("h", (0, 1, single Gate.H));
    ("s", (0, 1, single Gate.S));
    ("sdg", (0, 1, single Gate.Sdg));
    ("t", (0, 1, single Gate.T));
    ("tdg", (0, 1, single Gate.Tdg));
    ("sx", (0, 1, single Gate.Sx));
    ("sxdg", (0, 1, single Gate.Sxdg));
    ("rx", (1, 1, single1 (fun a -> Gate.Rx a)));
    ("ry", (1, 1, single1 (fun a -> Gate.Ry a)));
    ("rz", (1, 1, single1 (fun a -> Gate.Rz a)));
    ("p", (1, 1, single1 (fun a -> Gate.P a)));
    ("u1", (1, 1, single1 (fun a -> Gate.P a)));
    ( "u2",
      ( 2,
        1,
        fun ps wires ->
          match (ps, wires) with
          | [ a; b ], [ q ] -> [ Circuit.Gate (Gate.U (Phase.half_pi, a, b), q) ]
          | _ -> assert false ) );
    ( "u3",
      ( 3,
        1,
        fun ps wires ->
          match (ps, wires) with
          | [ a; b; c ], [ q ] -> [ Circuit.Gate (Gate.U (a, b, c), q) ]
          | _ -> assert false ) );
    ( "u",
      ( 3,
        1,
        fun ps wires ->
          match (ps, wires) with
          | [ a; b; c ], [ q ] -> [ Circuit.Gate (Gate.U (a, b, c), q) ]
          | _ -> assert false ) );
    ("cx", (0, 2, ctrl1 Gate.X));
    ("CX", (0, 2, ctrl1 Gate.X));
    ("cy", (0, 2, ctrl1 Gate.Y));
    ("cz", (0, 2, ctrl1 Gate.Z));
    ("ch", (0, 2, ctrl1 Gate.H));
    ("csx", (0, 2, ctrl1 Gate.Sx));
    ("cp", (1, 2, ctrl1p (fun a -> Gate.P a)));
    ("cu1", (1, 2, ctrl1p (fun a -> Gate.P a)));
    ("crx", (1, 2, ctrl1p (fun a -> Gate.Rx a)));
    ("cry", (1, 2, ctrl1p (fun a -> Gate.Ry a)));
    ("crz", (1, 2, ctrl1p (fun a -> Gate.Rz a)));
    ( "cu3",
      ( 3,
        2,
        fun ps wires ->
          match (ps, wires) with
          | [ a; b; c ], [ ctl; tgt ] -> [ Circuit.Ctrl ([ ctl ], Gate.U (a, b, c), tgt) ]
          | _ -> assert false ) );
    ( "swap",
      ( 0,
        2,
        fun _ wires ->
          match wires with [ a; b ] -> [ Circuit.Swap (a, b) ] | _ -> assert false ) );
    ( "ccx",
      ( 0,
        3,
        fun _ wires ->
          match wires with
          | [ a; b; t ] -> [ Circuit.Ctrl ([ a; b ], Gate.X, t) ]
          | _ -> assert false ) );
    ( "ccz",
      ( 0,
        3,
        fun _ wires ->
          match wires with
          | [ a; b; t ] -> [ Circuit.Ctrl ([ a; b ], Gate.Z, t) ]
          | _ -> assert false ) );
    ( "cswap",
      ( 0,
        3,
        fun _ wires ->
          match wires with
          | [ c; a; b ] ->
              (* Fredkin = CX(b,a) . CCX(c,a,b) . CX(b,a) *)
              [
                Circuit.Ctrl ([ b ], Gate.X, a);
                Circuit.Ctrl ([ c; a ], Gate.X, b);
                Circuit.Ctrl ([ b ], Gate.X, a);
              ]
          | _ -> assert false ) );
    ( "c3x",
      ( 0,
        4,
        fun _ wires ->
          match wires with
          | [ a; b; c; t ] -> [ Circuit.Ctrl ([ a; b; c ], Gate.X, t) ]
          | _ -> assert false ) );
    ( "c4x",
      ( 0,
        5,
        fun _ wires ->
          match wires with
          | [ a; b; c; d; t ] -> [ Circuit.Ctrl ([ a; b; c; d ], Gate.X, t) ]
          | _ -> assert false ) );
  ]

(* ------------------------------------------------------------ Elaboration *)

type env = {
  mutable qregs : (string * int) list;  (* name -> offset *)
  mutable qreg_sizes : (string * int) list;
  mutable cregs : (string * int) list;
  mutable creg_sizes : (string * int) list;
  mutable n_qubits : int;
  mutable n_clbits : int;
  defs : (string, Qasm_ast.gate_def) Hashtbl.t;
  mutable emit : Circuit.op -> unit;  (* receives ops in program order *)
  mutable ops : Circuit.op list;  (* reversed; fed by the default [emit] *)
  mutable measures : (int * int) list;  (* reversed *)
}

(* The default [emit] accumulates into [env.ops] (the batch reader's
   path); the streaming front end replaces it per statement. *)
let make_env () =
  let env =
    {
      qregs = [];
      qreg_sizes = [];
      cregs = [];
      creg_sizes = [];
      n_qubits = 0;
      n_clbits = 0;
      defs = Hashtbl.create 16;
      emit = ignore;
      ops = [];
      measures = [];
    }
  in
  env.emit <- (fun op -> env.ops <- op :: env.ops);
  env

let resolve_q env (a : Qasm_ast.arg) : int list =
  match List.assoc_opt a.Qasm_ast.reg env.qregs with
  | None -> raise (Parse_error (Printf.sprintf "unknown quantum register %S" a.Qasm_ast.reg))
  | Some offset -> (
      let size = List.assoc a.Qasm_ast.reg env.qreg_sizes in
      match a.Qasm_ast.index with
      | Some i ->
          if i < 0 || i >= size then
            raise (Parse_error (Printf.sprintf "index %d out of range for %S" i a.Qasm_ast.reg));
          [ offset + i ]
      | None -> List.init size (fun i -> offset + i))

let resolve_c env (a : Qasm_ast.arg) : int list =
  match List.assoc_opt a.Qasm_ast.reg env.cregs with
  | None -> raise (Parse_error (Printf.sprintf "unknown classical register %S" a.Qasm_ast.reg))
  | Some offset -> (
      let size = List.assoc a.Qasm_ast.reg env.creg_sizes in
      match a.Qasm_ast.index with
      | Some i ->
          if i < 0 || i >= size then
            raise (Parse_error (Printf.sprintf "index %d out of range for %S" i a.Qasm_ast.reg));
          [ offset + i ]
      | None -> List.init size (fun i -> offset + i))

(* Broadcast register arguments: all whole-register args must have the same
   length; indexed args are repeated. *)
let broadcast (arg_wires : int list list) : int list list =
  let lengths = List.filter (fun ws -> List.length ws > 1) arg_wires in
  match lengths with
  | [] -> [ List.map (function [ w ] -> w | _ -> assert false) arg_wires ]
  | ws :: rest ->
      let n = List.length ws in
      if List.exists (fun l -> List.length l <> n) rest then
        raise (Parse_error "mismatched register sizes in broadcast");
      List.init n (fun i ->
          List.map (fun l -> if List.length l = 1 then List.hd l else List.nth l i) arg_wires)

let rec apply_gate env (app : Qasm_ast.gate_app) (param_env : (string * float) list)
    (qarg_env : (string * int) list option) =
  let params = List.map (eval_expr param_env) app.Qasm_ast.params in
  let phases = List.map Phase.of_float params in
  let wires_of_arg (a : Qasm_ast.arg) : int list =
    match qarg_env with
    | Some bindings -> (
        (* Inside a gate body: arguments are formal names, no indices. *)
        match List.assoc_opt a.Qasm_ast.reg bindings with
        | Some w -> [ w ]
        | None -> raise (Parse_error (Printf.sprintf "unbound gate argument %S" a.Qasm_ast.reg)))
    | None -> resolve_q env a
  in
  let arg_wires = List.map wires_of_arg app.Qasm_ast.args in
  let instances = broadcast arg_wires in
  let emit wires =
    match List.assoc_opt app.Qasm_ast.gate_name builtins with
    | Some (n_params, n_qargs, build) ->
        if List.length params <> n_params then
          raise
            (Parse_error
               (Printf.sprintf "%s expects %d parameter(s)" app.Qasm_ast.gate_name n_params));
        if List.length wires <> n_qargs then
          raise
            (Parse_error
               (Printf.sprintf "%s expects %d qubit argument(s)" app.Qasm_ast.gate_name n_qargs));
        List.iter env.emit (build phases wires)
    | None -> (
        match Hashtbl.find_opt env.defs app.Qasm_ast.gate_name with
        | None ->
            raise (Parse_error (Printf.sprintf "unknown gate %S" app.Qasm_ast.gate_name))
        | Some def ->
            if List.length params <> List.length def.Qasm_ast.def_params then
              raise (Parse_error (Printf.sprintf "%s: wrong parameter count" def.Qasm_ast.def_name));
            if List.length wires <> List.length def.Qasm_ast.def_qargs then
              raise (Parse_error (Printf.sprintf "%s: wrong argument count" def.Qasm_ast.def_name));
            let params_bound = List.combine def.Qasm_ast.def_params params in
            let qargs_bound = List.combine def.Qasm_ast.def_qargs wires in
            List.iter
              (fun inner -> apply_gate env inner params_bound (Some qargs_bound))
              def.Qasm_ast.def_body)
  in
  List.iter emit instances

let handle_stmt env = function
  | Qasm_ast.Include _ -> ()
  | Qasm_ast.Qreg (name, size) ->
      if List.mem_assoc name env.qregs then
        raise (Parse_error (Printf.sprintf "duplicate register %S" name));
      env.qregs <- (name, env.n_qubits) :: env.qregs;
      env.qreg_sizes <- (name, size) :: env.qreg_sizes;
      env.n_qubits <- env.n_qubits + size
  | Qasm_ast.Creg (name, size) ->
      if List.mem_assoc name env.cregs then
        raise (Parse_error (Printf.sprintf "duplicate register %S" name));
      env.cregs <- (name, env.n_clbits) :: env.cregs;
      env.creg_sizes <- (name, size) :: env.creg_sizes;
      env.n_clbits <- env.n_clbits + size
  | Qasm_ast.Gate_def def -> Hashtbl.replace env.defs def.Qasm_ast.def_name def
  | Qasm_ast.App app -> apply_gate env app [] None
  | Qasm_ast.Barrier _ -> env.emit Circuit.Barrier
  | Qasm_ast.Measure (qa, ca) ->
      let qs = resolve_q env qa and cs = resolve_c env ca in
      if List.length qs <> List.length cs then
        raise (Parse_error "measure: register size mismatch");
      List.iter2 (fun q c -> env.measures <- (q, c) :: env.measures) qs cs
  | Qasm_ast.Reset _ -> raise (Parse_error "reset is not supported")
