open Oqec_base
open Oqec_circuit

exception Parse_error = Qasm_elab.Parse_error
(* Elaboration (builtins, register resolution, gate-definition macro
   expansion) lives in {!Qasm_elab}, shared with the streaming front end
   {!Qasm_stream}; this module keeps the whole-program reader, the
   measurement/layout metadata recovery and the writer. *)

type t = { circuit : Circuit.t; measures : (int * int) list }

let elaborate (program : Qasm_ast.program) : t =
  let env = Qasm_elab.make_env () in
  List.iter (Qasm_elab.handle_stmt env) program;
  let circuit =
    List.fold_left Circuit.add
      (Circuit.create env.Qasm_elab.n_qubits)
      (List.rev env.Qasm_elab.ops)
  in
  let measures = List.rev env.Qasm_elab.measures in
  let n_qubits = env.Qasm_elab.n_qubits in
  (* When measurements cover every qubit bijectively, record them as the
     output permutation: logical qubit [c] sits on wire [q] at the end. *)
  let circuit =
    if
      List.length measures = n_qubits
      && n_qubits > 0
      && List.for_all (fun (_, c) -> c < n_qubits) measures
    then begin
      let a = Array.make n_qubits (-1) in
      List.iter (fun (q, c) -> if c < n_qubits then a.(c) <- q) measures;
      if Array.for_all (fun x -> x >= 0) a then
        match Perm.of_array a with
        | p -> Circuit.with_output_perm circuit (Some p)
        | exception Invalid_argument _ -> circuit
      else circuit
    end
    else circuit
  in
  { circuit; measures }

(* Recover an initial layout persisted as "// oqec:layout 2,0,1". *)
let layout_comment src =
  let prefix = "// oqec:layout " in
  let lines = String.split_on_char '\n' src in
  List.find_map
    (fun line ->
      let line = String.trim line in
      if String.length line > String.length prefix
         && String.sub line 0 (String.length prefix) = prefix
      then
        let rest = String.sub line (String.length prefix) (String.length line - String.length prefix) in
        try
          Some
            (Perm.of_array
               (Array.of_list (List.map int_of_string (String.split_on_char ',' (String.trim rest)))))
        with Failure _ | Invalid_argument _ -> None
      else None)
    lines

let parse_string src =
  let result =
    try elaborate (Qasm_parser.parse_program src) with
    | Qasm_parser.Error (msg, line) ->
        raise (Parse_error (Printf.sprintf "line %d: %s" line msg))
    | Qasm_lexer.Error (msg, line) ->
        raise (Parse_error (Printf.sprintf "line %d: %s" line msg))
  in
  match layout_comment src with
  | Some l when Perm.size l = Circuit.num_qubits result.circuit ->
      { result with circuit = Circuit.with_initial_layout result.circuit (Some l) }
  | Some _ | None -> result

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  parse_string src

let circuit_of_string src = (parse_string src).circuit
let circuit_of_file path = (parse_file path).circuit

(* --------------------------------------------------------------- Writer *)

let phase_to_qasm (a : Phase.t) : string =
  let r = Phase.to_float a in
  if Phase.is_exact a then begin
    (* Reconstruct the fraction from a canonical exact phase. *)
    let frac = r /. Float.pi in
    let rec find_den den =
      if den > 1 lsl 30 then Printf.sprintf "%.17g" r
      else
        let scaled = frac *. float_of_int den in
        let n = Float.round scaled in
        if Float.abs (scaled -. n) < 1e-12 *. float_of_int den then
          let n = int_of_float n in
          if n = 0 then "0"
          else if den = 1 then if n = 1 then "pi" else Printf.sprintf "%d*pi" n
          else if n = 1 then Printf.sprintf "pi/%d" den
          else Printf.sprintf "%d*pi/%d" n den
        else find_den (den * 2)
    in
    find_den 1
  end
  else Printf.sprintf "%.17g" r

let op_to_qasm op =
  let q i = Printf.sprintf "q[%d]" i in
  let simple name wires = Printf.sprintf "%s %s;" name (String.concat "," (List.map q wires)) in
  let param name ps wires =
    Printf.sprintf "%s(%s) %s;" name
      (String.concat "," (List.map phase_to_qasm ps))
      (String.concat "," (List.map q wires))
  in
  match op with
  | Circuit.Barrier -> "barrier q;"
  | Circuit.Swap (a, b) -> simple "swap" [ a; b ]
  | Circuit.Gate (g, t) -> (
      match g with
      | Gate.I -> simple "id" [ t ]
      | Gate.X -> simple "x" [ t ]
      | Gate.Y -> simple "y" [ t ]
      | Gate.Z -> simple "z" [ t ]
      | Gate.H -> simple "h" [ t ]
      | Gate.S -> simple "s" [ t ]
      | Gate.Sdg -> simple "sdg" [ t ]
      | Gate.T -> simple "t" [ t ]
      | Gate.Tdg -> simple "tdg" [ t ]
      | Gate.Sx -> simple "sx" [ t ]
      | Gate.Sxdg -> simple "sxdg" [ t ]
      | Gate.Rx a -> param "rx" [ a ] [ t ]
      | Gate.Ry a -> param "ry" [ a ] [ t ]
      | Gate.Rz a -> param "rz" [ a ] [ t ]
      | Gate.P a -> param "p" [ a ] [ t ]
      | Gate.U (a, b, c) -> param "u" [ a; b; c ] [ t ])
  | Circuit.Ctrl ([ c ], g, t) -> (
      match g with
      | Gate.X -> simple "cx" [ c; t ]
      | Gate.Y -> simple "cy" [ c; t ]
      | Gate.Z -> simple "cz" [ c; t ]
      | Gate.H -> simple "ch" [ c; t ]
      | Gate.Sx -> simple "csx" [ c; t ]
      | Gate.S -> param "cp" [ Phase.half_pi ] [ c; t ]
      | Gate.Sdg -> param "cp" [ Phase.minus_half_pi ] [ c; t ]
      | Gate.T -> param "cp" [ Phase.quarter_pi ] [ c; t ]
      | Gate.Tdg -> param "cp" [ Phase.neg Phase.quarter_pi ] [ c; t ]
      | Gate.P a -> param "cp" [ a ] [ c; t ]
      | Gate.Rx a -> param "crx" [ a ] [ c; t ]
      | Gate.Ry a -> param "cry" [ a ] [ c; t ]
      | Gate.Rz a -> param "crz" [ a ] [ c; t ]
      | Gate.U (a, b, cc) -> param "cu3" [ a; b; cc ] [ c; t ]
      | Gate.I -> simple "id" [ t ]
      | Gate.Sxdg ->
          invalid_arg "Qasm.to_string: controlled sxdg has no qelib1 spelling")
  | Circuit.Ctrl ([ c1; c2 ], Gate.X, t) -> simple "ccx" [ c1; c2; t ]
  | Circuit.Ctrl ([ c1; c2 ], Gate.Z, t) -> simple "ccz" [ c1; c2; t ]
  | Circuit.Ctrl ([ _; _ ], g, _) ->
      invalid_arg
        (Printf.sprintf "Qasm.to_string: doubly-controlled %s not representable" (Gate.name g))
  | Circuit.Ctrl (cs, Gate.X, t) when List.length cs = 3 ->
      simple "c3x" (cs @ [ t ])
  | Circuit.Ctrl (cs, Gate.X, t) when List.length cs = 4 ->
      simple "c4x" (cs @ [ t ])
  | Circuit.Ctrl (cs, g, _) ->
      invalid_arg
        (Printf.sprintf "Qasm.to_string: %d-controlled %s not representable; decompose first"
           (List.length cs) (Gate.name g))

let to_string c =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n";
  (* The initial layout has no QASM-2 syntax; persist it as a structured
     comment the parser recognises. *)
  (match Circuit.initial_layout c with
  | Some l when not (Perm.is_identity l) ->
      let parts = Array.to_list (Array.map string_of_int (Perm.to_array l)) in
      Buffer.add_string buf (Printf.sprintf "// oqec:layout %s\n" (String.concat "," parts))
  | Some _ | None -> ());
  (* ccz is not part of qelib1; define it when used. *)
  let uses_ccz =
    List.exists
      (function Circuit.Ctrl ([ _; _ ], Gate.Z, _) -> true | _ -> false)
      (Circuit.ops c)
  in
  if uses_ccz then
    Buffer.add_string buf "gate ccz a,b,c { h c; ccx a,b,c; h c; }\n";
  Buffer.add_string buf (Printf.sprintf "qreg q[%d];\n" (Circuit.num_qubits c));
  (match Circuit.output_perm c with
  | Some _ -> Buffer.add_string buf (Printf.sprintf "creg c[%d];\n" (Circuit.num_qubits c))
  | None -> ());
  List.iter
    (fun op ->
      Buffer.add_string buf (op_to_qasm op);
      Buffer.add_char buf '\n')
    (Circuit.ops c);
  (* Output permutations round-trip through measurement targets: logical
     qubit [q] is read from wire [output_perm q]. *)
  (match Circuit.output_perm c with
  | Some p ->
      for q = 0 to Circuit.num_qubits c - 1 do
        Buffer.add_string buf (Printf.sprintf "measure q[%d] -> c[%d];\n" (Perm.apply p q) q)
      done
  | None -> ());
  Buffer.contents buf

let write_file path c =
  let oc = open_out path in
  output_string oc (to_string c);
  close_out oc
