(** Streaming OpenQASM 2.0 front end.

    Parses a QASM file incrementally — a refilling lexer window, one
    statement per {!step} — and delivers elaborated circuit operations
    to a callback without materialising the AST or the operation list.
    Memory use is bounded by one input chunk plus the gate-definition
    table, independent of circuit length, so checks can run over files
    far larger than memory (the [--stream] mode of [oqec check]).

    Supported subset relative to the batch reader ({!Qasm}): a single
    [qreg], [creg] declarations (accepted, ignored), [include], gate
    definitions, gate applications with broadcasting and [barrier].
    [measure] / [reset] statements and [// oqec:layout] metadata raise
    {!Unsupported} — their circuit-level meaning (output permutations,
    initial layouts) is whole-program metadata that streaming
    consumers cannot apply retroactively. *)

open Oqec_circuit

exception Unsupported of string

type t

(** [open_file path] opens the stream and parses the version header.
    [chunk_size] is the refill granularity in bytes (default 64 KiB). *)
val open_file : ?chunk_size:int -> string -> t

(** [step s ~emit] consumes one statement, delivering its operations
    (in program order) to [emit]; returns [false] at end of input.
    Raises {!Unsupported} on statements outside the streaming subset
    and [Qasm_parser.Error] on malformed input. *)
val step : t -> emit:(Circuit.op -> unit) -> bool

(** Declared qubit count.  Raises {!Unsupported} until the [qreg]
    declaration has been consumed by {!step} (check {!header_done}). *)
val num_qubits : t -> int

val header_done : t -> bool

(** Bytes already consumed by the lexer (absolute cursor offset) and the
    file's total size — the progress measure used by the streaming
    checker's bytes-proportional alternation. *)
val consumed_bytes : t -> int

val total_bytes : t -> int

val close : t -> unit

(** [fold path ~init ~f] drives a whole file and folds every operation;
    returns the qubit count and the final accumulator. *)
val fold :
  ?chunk_size:int -> string -> init:'a -> f:('a -> Circuit.op -> 'a) -> int * 'a
