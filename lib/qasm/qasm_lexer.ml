(* Hand-written lexer for the OpenQASM 2.0 subset. *)

type token =
  | OPENQASM
  | INCLUDE
  | QREG
  | CREG
  | GATE
  | BARRIER
  | MEASURE
  | RESET
  | IF
  | PI
  | ID of string
  | NUM of float
  | INT of int
  | STRING of string
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | ARROW
  | EQEQ
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | CARET
  | EOF

exception Error of string * int  (* message, line *)

(* The lexer runs over a window into the input.  In whole-string mode
   ([make]) the window is the entire source and never moves.  In
   streaming mode ([make_refill]) the window holds only the bytes still
   needed: when [pos] runs off the end, [refill] supplies the next chunk
   and everything before the current token ([mark], or [pos] itself
   between tokens) is discarded, so memory use is bounded by one chunk
   plus the longest token regardless of input size. *)
type lexer = {
  mutable src : string;  (* current window *)
  mutable pos : int;  (* cursor, relative to the window *)
  mutable line : int;
  refill : (unit -> string option) option;  (* [None] = whole-string mode *)
  mutable eof : bool;  (* refill returned [None] *)
  mutable mark : int;  (* start of the token being lexed; [max_int] between tokens *)
  mutable base : int;  (* bytes discarded before [src.[0]] *)
}

let make src =
  { src; pos = 0; line = 1; refill = None; eof = true; mark = max_int; base = 0 }

let make_refill refill =
  { src = ""; pos = 0; line = 1; refill = Some refill; eof = false; mark = max_int; base = 0 }

(* Absolute byte offset of the cursor in the underlying input. *)
let offset lx = lx.base + lx.pos

(* Ensure [pos + n <= length src], pulling and appending chunks in
   streaming mode.  Returns [false] when the input is exhausted first. *)
let rec ensure lx n =
  if lx.pos + n <= String.length lx.src then true
  else
    match lx.refill with
    | None -> false
    | Some refill ->
        if lx.eof then false
        else begin
          (match refill () with
          | None -> lx.eof <- true
          | Some chunk ->
              let keep = min lx.mark lx.pos in
              let tail = String.sub lx.src keep (String.length lx.src - keep) in
              lx.src <- tail ^ chunk;
              lx.pos <- lx.pos - keep;
              if lx.mark <> max_int then lx.mark <- lx.mark - keep;
              lx.base <- lx.base + keep);
          ensure lx n
        end

let peek_char lx = if ensure lx 1 then Some lx.src.[lx.pos] else None
let peek_char2 lx = if ensure lx 2 then Some lx.src.[lx.pos + 1] else None

let advance lx =
  (match peek_char lx with Some '\n' -> lx.line <- lx.line + 1 | Some _ | None -> ());
  lx.pos <- lx.pos + 1

let is_id_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_id_char c = is_id_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let rec skip_ws lx =
  match peek_char lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance lx;
      skip_ws lx
  | Some '/' when peek_char2 lx = Some '/' ->
      let rec to_eol () =
        match peek_char lx with
        | Some '\n' | None -> ()
        | Some _ ->
            advance lx;
            to_eol ()
      in
      to_eol ();
      skip_ws lx
  | Some _ | None -> ()

(* Token text accumulates between [mark] and [pos]; refills inside the
   loop slide the window but preserve everything from [mark] on. *)
let lex_while lx pred =
  lx.mark <- lx.pos;
  let rec go () =
    match peek_char lx with
    | Some c when pred c ->
        advance lx;
        go ()
    | Some _ | None -> ()
  in
  go ();
  let text = String.sub lx.src lx.mark (lx.pos - lx.mark) in
  lx.mark <- max_int;
  text

let keyword = function
  | "OPENQASM" -> Some OPENQASM
  | "include" -> Some INCLUDE
  | "qreg" -> Some QREG
  | "creg" -> Some CREG
  | "gate" -> Some GATE
  | "barrier" -> Some BARRIER
  | "measure" -> Some MEASURE
  | "reset" -> Some RESET
  | "if" -> Some IF
  | "pi" -> Some PI
  | _ -> None

let next lx =
  skip_ws lx;
  match peek_char lx with
  | None -> EOF
  | Some c when is_id_start c -> (
      let word = lex_while lx is_id_char in
      match keyword word with Some t -> t | None -> ID word)
  | Some c when is_digit c || c = '.' ->
      let text =
        lex_while lx (fun c ->
            is_digit c || c = '.' || c = 'e' || c = 'E' || c = '+' || c = '-')
      in
      (* The greedy scan above can swallow a trailing +/- that is not part of
         an exponent; numbers in QASM never end with a sign, so back up. *)
      let text =
        let n = String.length text in
        if n > 0 && (text.[n - 1] = '+' || text.[n - 1] = '-') then begin
          lx.pos <- lx.pos - 1;
          String.sub text 0 (n - 1)
        end
        else text
      in
      if String.contains text '.' || String.contains text 'e' || String.contains text 'E'
      then
        match float_of_string_opt text with
        | Some f -> NUM f
        | None -> raise (Error (Printf.sprintf "bad number %S" text, lx.line))
      else (
        match int_of_string_opt text with
        | Some i -> INT i
        | None -> raise (Error (Printf.sprintf "bad integer %S" text, lx.line)))
  | Some '"' ->
      advance lx;
      let s = lex_while lx (fun c -> c <> '"') in
      (match peek_char lx with
      | Some '"' -> advance lx
      | Some _ | None -> raise (Error ("unterminated string", lx.line)));
      STRING s
  | Some '{' ->
      advance lx;
      LBRACE
  | Some '}' ->
      advance lx;
      RBRACE
  | Some '(' ->
      advance lx;
      LPAREN
  | Some ')' ->
      advance lx;
      RPAREN
  | Some '[' ->
      advance lx;
      LBRACKET
  | Some ']' ->
      advance lx;
      RBRACKET
  | Some ';' ->
      advance lx;
      SEMI
  | Some ',' ->
      advance lx;
      COMMA
  | Some '+' ->
      advance lx;
      PLUS
  | Some '*' ->
      advance lx;
      STAR
  | Some '/' ->
      advance lx;
      SLASH
  | Some '^' ->
      advance lx;
      CARET
  | Some '-' ->
      advance lx;
      if peek_char lx = Some '>' then begin
        advance lx;
        ARROW
      end
      else MINUS
  | Some '=' ->
      advance lx;
      if peek_char lx = Some '=' then begin
        advance lx;
        EQEQ
      end
      else raise (Error ("lone '='", lx.line))
  | Some c -> raise (Error (Printf.sprintf "unexpected character %C" c, lx.line))

let token_to_string = function
  | OPENQASM -> "OPENQASM"
  | INCLUDE -> "include"
  | QREG -> "qreg"
  | CREG -> "creg"
  | GATE -> "gate"
  | BARRIER -> "barrier"
  | MEASURE -> "measure"
  | RESET -> "reset"
  | IF -> "if"
  | PI -> "pi"
  | ID s -> s
  | NUM f -> string_of_float f
  | INT i -> string_of_int i
  | STRING s -> Printf.sprintf "%S" s
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | SEMI -> ";"
  | COMMA -> ","
  | ARROW -> "->"
  | EQEQ -> "=="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | CARET -> "^"
  | EOF -> "<eof>"
