(* Recursive-descent parser for the OpenQASM 2.0 subset. *)

open Qasm_ast

exception Error of string * int

type parser_state = {
  lx : Qasm_lexer.lexer;
  mutable tok : Qasm_lexer.token;
}

let fail st msg = raise (Error (msg, st.lx.Qasm_lexer.line))

let make_from_lexer lx =
  try { lx; tok = Qasm_lexer.next lx }
  with Qasm_lexer.Error (m, l) -> raise (Error (m, l))

let make src = make_from_lexer (Qasm_lexer.make src)

let advance st =
  try st.tok <- Qasm_lexer.next st.lx
  with Qasm_lexer.Error (m, l) -> raise (Error (m, l))

let expect st t =
  if st.tok = t then advance st
  else
    fail st
      (Printf.sprintf "expected %s but found %s"
         (Qasm_lexer.token_to_string t)
         (Qasm_lexer.token_to_string st.tok))

let expect_id st =
  match st.tok with
  | Qasm_lexer.ID s ->
      advance st;
      s
  | t -> fail st (Printf.sprintf "expected identifier, found %s" (Qasm_lexer.token_to_string t))

let expect_int st =
  match st.tok with
  | Qasm_lexer.INT i ->
      advance st;
      i
  | t -> fail st (Printf.sprintf "expected integer, found %s" (Qasm_lexer.token_to_string t))

(* ---------------------------------------------------------- Expressions *)

let known_funcs = [ "sin"; "cos"; "tan"; "exp"; "ln"; "sqrt" ]

let rec parse_expr st = parse_additive st

and parse_additive st =
  let lhs = ref (parse_multiplicative st) in
  let rec loop () =
    match st.tok with
    | Qasm_lexer.PLUS ->
        advance st;
        lhs := Binop ('+', !lhs, parse_multiplicative st);
        loop ()
    | Qasm_lexer.MINUS ->
        advance st;
        lhs := Binop ('-', !lhs, parse_multiplicative st);
        loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and parse_multiplicative st =
  let lhs = ref (parse_unary st) in
  let rec loop () =
    match st.tok with
    | Qasm_lexer.STAR ->
        advance st;
        lhs := Binop ('*', !lhs, parse_unary st);
        loop ()
    | Qasm_lexer.SLASH ->
        advance st;
        lhs := Binop ('/', !lhs, parse_unary st);
        loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and parse_unary st =
  match st.tok with
  | Qasm_lexer.MINUS ->
      advance st;
      Neg (parse_unary st)
  | _ -> parse_power st

and parse_power st =
  let base = parse_atom st in
  match st.tok with
  | Qasm_lexer.CARET ->
      advance st;
      Binop ('^', base, parse_unary st)
  | _ -> base

and parse_atom st =
  match st.tok with
  | Qasm_lexer.NUM f ->
      advance st;
      Num f
  | Qasm_lexer.INT i ->
      advance st;
      Num (float_of_int i)
  | Qasm_lexer.PI ->
      advance st;
      Pi
  | Qasm_lexer.ID name when List.mem name known_funcs ->
      advance st;
      expect st Qasm_lexer.LPAREN;
      let e = parse_expr st in
      expect st Qasm_lexer.RPAREN;
      Call (name, e)
  | Qasm_lexer.ID name ->
      advance st;
      Ident name
  | Qasm_lexer.LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st Qasm_lexer.RPAREN;
      e
  | t -> fail st (Printf.sprintf "expected expression, found %s" (Qasm_lexer.token_to_string t))

(* ------------------------------------------------------------ Arguments *)

let parse_arg st =
  let reg = expect_id st in
  match st.tok with
  | Qasm_lexer.LBRACKET ->
      advance st;
      let i = expect_int st in
      expect st Qasm_lexer.RBRACKET;
      { reg; index = Some i }
  | _ -> { reg; index = None }

let parse_arg_list st =
  let rec loop acc =
    let a = parse_arg st in
    match st.tok with
    | Qasm_lexer.COMMA ->
        advance st;
        loop (a :: acc)
    | _ -> List.rev (a :: acc)
  in
  loop []

let parse_params st =
  match st.tok with
  | Qasm_lexer.LPAREN ->
      advance st;
      if st.tok = Qasm_lexer.RPAREN then begin
        advance st;
        []
      end
      else begin
        let rec loop acc =
          let e = parse_expr st in
          match st.tok with
          | Qasm_lexer.COMMA ->
              advance st;
              loop (e :: acc)
          | _ ->
              expect st Qasm_lexer.RPAREN;
              List.rev (e :: acc)
        in
        loop []
      end
  | _ -> []

let parse_app st name =
  let params = parse_params st in
  let args = parse_arg_list st in
  expect st Qasm_lexer.SEMI;
  { gate_name = name; params; args }

(* ------------------------------------------------------------ Statements *)

let parse_id_list st =
  let rec loop acc =
    let x = expect_id st in
    match st.tok with
    | Qasm_lexer.COMMA ->
        advance st;
        loop (x :: acc)
    | _ -> List.rev (x :: acc)
  in
  loop []

let parse_gate_def st =
  let def_name = expect_id st in
  let def_params =
    match st.tok with
    | Qasm_lexer.LPAREN ->
        advance st;
        if st.tok = Qasm_lexer.RPAREN then begin
          advance st;
          []
        end
        else begin
          let ps = parse_id_list st in
          expect st Qasm_lexer.RPAREN;
          ps
        end
    | _ -> []
  in
  let def_qargs = parse_id_list st in
  expect st Qasm_lexer.LBRACE;
  let body = ref [] in
  let rec loop () =
    match st.tok with
    | Qasm_lexer.RBRACE -> advance st
    | Qasm_lexer.BARRIER ->
        advance st;
        let _ = parse_arg_list st in
        expect st Qasm_lexer.SEMI;
        loop ()
    | Qasm_lexer.ID name ->
        advance st;
        body := parse_app st name :: !body;
        loop ()
    | t ->
        fail st
          (Printf.sprintf "unexpected %s in gate body" (Qasm_lexer.token_to_string t))
  in
  loop ();
  Gate_def { def_name; def_params; def_qargs; def_body = List.rev !body }

let parse_reg st kind =
  let name = expect_id st in
  expect st Qasm_lexer.LBRACKET;
  let size = expect_int st in
  expect st Qasm_lexer.RBRACKET;
  expect st Qasm_lexer.SEMI;
  match kind with `Q -> Qreg (name, size) | `C -> Creg (name, size)

(* Optional version header. *)
let parse_header st =
  if st.tok = Qasm_lexer.OPENQASM then begin
    advance st;
    (match st.tok with
    | Qasm_lexer.NUM _ | Qasm_lexer.INT _ -> advance st
    | t -> fail st (Printf.sprintf "expected version number, found %s" (Qasm_lexer.token_to_string t)));
    expect st Qasm_lexer.SEMI
  end

(* One top-level statement; [None] at end of input.  The incremental
   entry point of the streaming front end ({!Qasm_stream}): each call
   consumes exactly one statement's worth of tokens. *)
let parse_statement st =
  match st.tok with
  | Qasm_lexer.EOF -> None
  | Qasm_lexer.INCLUDE ->
      advance st;
      (match st.tok with
      | Qasm_lexer.STRING file ->
          advance st;
          expect st Qasm_lexer.SEMI;
          Some (Include file)
      | t -> fail st (Printf.sprintf "expected file name, found %s" (Qasm_lexer.token_to_string t)))
  | Qasm_lexer.QREG ->
      advance st;
      Some (parse_reg st `Q)
  | Qasm_lexer.CREG ->
      advance st;
      Some (parse_reg st `C)
  | Qasm_lexer.GATE ->
      advance st;
      Some (parse_gate_def st)
  | Qasm_lexer.BARRIER ->
      advance st;
      let args = parse_arg_list st in
      expect st Qasm_lexer.SEMI;
      Some (Barrier args)
  | Qasm_lexer.MEASURE ->
      advance st;
      let src_arg = parse_arg st in
      expect st Qasm_lexer.ARROW;
      let dst = parse_arg st in
      expect st Qasm_lexer.SEMI;
      Some (Measure (src_arg, dst))
  | Qasm_lexer.RESET ->
      advance st;
      let a = parse_arg st in
      expect st Qasm_lexer.SEMI;
      Some (Reset a)
  | Qasm_lexer.IF -> fail st "classical conditioning (if) is not supported"
  | Qasm_lexer.ID name ->
      advance st;
      Some (App (parse_app st name))
  | t -> fail st (Printf.sprintf "unexpected %s" (Qasm_lexer.token_to_string t))

let parse_program src =
  let st = make src in
  parse_header st;
  let stmts = ref [] in
  let rec loop () =
    match parse_statement st with
    | None -> ()
    | Some s ->
        stmts := s :: !stmts;
        loop ()
  in
  loop ();
  List.rev !stmts
