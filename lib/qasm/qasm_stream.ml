(* Streaming QASM front end: an incremental lexer/parser/elaboration
   pipeline that hands circuit operations to a callback statement by
   statement, so a check can run over circuits far larger than memory.
   See {!Qasm_stream} (mli) for the supported subset. *)

exception Unsupported of string

type t = {
  ic : in_channel;
  path : string;
  st : Qasm_parser.parser_state;
  env : Qasm_elab.env;
  total_bytes : int;
  mutable qreg_seen : bool;
  mutable closed : bool;
}

let fail_unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

let open_file ?(chunk_size = 65536) path =
  let ic = open_in_bin path in
  let total_bytes = in_channel_length ic in
  let buf = Bytes.create chunk_size in
  let first_chunk = ref true in
  let refill () =
    match input ic buf 0 chunk_size with
    | 0 -> None
    | exception End_of_file -> None
    | k ->
        let chunk = Bytes.sub_string buf 0 k in
        (* Layout metadata travels in a comment the lexer never sees;
           the batch reader honours it, streaming cannot, so reject it
           loudly rather than silently checking a different circuit.
           Best effort: the comment sits in the header in practice, and
           a chunk boundary splitting it is vanishingly unlikely. *)
        if !first_chunk then begin
          first_chunk := false;
          let pat = "oqec:layout" in
          let limit = String.length chunk - String.length pat in
          let found = ref false in
          for i = 0 to limit do
            if String.sub chunk i (String.length pat) = pat then found := true
          done;
          if !found then
            fail_unsupported
              "%s: layout metadata (// oqec:layout) is not supported in streaming \
               mode; use the batch reader"
              path
        end;
        Some chunk
  in
  let lx = Qasm_lexer.make_refill refill in
  match
    let st = Qasm_parser.make_from_lexer lx in
    Qasm_parser.parse_header st;
    st
  with
  | st ->
      {
        ic;
        path;
        st;
        env = Qasm_elab.make_env ();
        total_bytes;
        qreg_seen = false;
        closed = false;
      }
  | exception e ->
      close_in_noerr ic;
      raise e

let total_bytes s = s.total_bytes

(* Bytes of the input already consumed by the lexer (the cursor's
   absolute offset; trailing unread input is not counted). *)
let consumed_bytes s = Qasm_lexer.offset s.st.Qasm_parser.lx

let num_qubits s =
  if not s.qreg_seen then
    fail_unsupported "%s: no qreg declared yet (call step until the header is done)" s.path;
  s.env.Qasm_elab.n_qubits

let header_done s = s.qreg_seen

let close s =
  if not s.closed then begin
    s.closed <- true;
    close_in_noerr s.ic
  end

(* Consume one statement, delivering its operations to [emit].  Returns
   [false] at end of input.  Statements the streaming subset cannot
   represent raise {!Unsupported} with the reason. *)
let step s ~emit =
  s.env.Qasm_elab.emit <- emit;
  match Qasm_parser.parse_statement s.st with
  | None -> false
  | Some stmt ->
      (match stmt with
      | Qasm_ast.Qreg _ when s.qreg_seen ->
          fail_unsupported
            "%s: multiple qreg declarations are not supported in streaming mode" s.path
      | Qasm_ast.Qreg _ ->
          Qasm_elab.handle_stmt s.env stmt;
          s.qreg_seen <- true
      | Qasm_ast.Measure _ ->
          fail_unsupported
            "%s: measure (output-permutation metadata) is not supported in streaming \
             mode; use the batch reader"
            s.path
      | Qasm_ast.Reset _ -> fail_unsupported "%s: reset is not supported" s.path
      | Qasm_ast.App _ when not s.qreg_seen ->
          fail_unsupported "%s: gate application before any qreg declaration" s.path
      | Qasm_ast.Include _ | Qasm_ast.Creg _ | Qasm_ast.Gate_def _ | Qasm_ast.App _
      | Qasm_ast.Barrier _ ->
          Qasm_elab.handle_stmt s.env stmt);
      true

(* Drive the stream to the end: parse the header statements until the
   qreg is known, then fold every operation. *)
let fold ?chunk_size path ~init ~f =
  let s = open_file ?chunk_size path in
  Fun.protect
    ~finally:(fun () -> close s)
    (fun () ->
      let acc = ref init in
      let emit op = acc := f !acc op in
      while step s ~emit do
        ()
      done;
      (num_qubits s, !acc))
