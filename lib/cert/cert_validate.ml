open Oqec_base
module G = Oqec_zx.Zx_graph
module Step = Oqec_zx.Zx_step

(* Replay a recorded rewrite sequence against the graph primitives,
   re-deriving every precondition from the diagram itself.  Each replay
   below is written from the published rewrite rule (spider fusion,
   identity removal, Pauli absorption, local complementation, pivoting,
   phase-gadget laws), NOT from the engine's implementation: sharing the
   engine's matchers would make validation circular.

   Replay must also issue graph mutations in the exact order the engine
   does: fresh-vertex ids and adjacency iteration order are
   deterministic functions of the mutation history, and the recorded
   anchors of later steps refer to ids allocated by earlier ones. *)

exception Reject of string

let fail fmt = Printf.ksprintf (fun s -> raise (Reject s)) fmt

let is_spider g v =
  G.mem g v && match G.kind g v with G.Z | G.X -> true | G.B_in _ | G.B_out _ -> false

let require_spider g v =
  if not (is_spider g v) then fail "vertex %d is not a live spider" v

let require_z g v =
  require_spider g v;
  if G.kind g v <> G.Z then fail "vertex %d is not a Z spider" v

(* Interior, all edges Hadamard: the graph-like context in which local
   complementation, pivoting and the gadget laws are sound. *)
let require_graphlike g v =
  require_z g v;
  if not (G.is_interior g v) then fail "vertex %d is not interior" v;
  if not (G.for_all_neighbours g v (fun _ ty -> ty = G.Had)) then
    fail "vertex %d has a non-Hadamard edge" v

let require_phase g v recorded =
  if not (Phase.equal (G.phase g v) recorded) then
    fail "recorded phase %s of vertex %d does not match diagram phase %s"
      (Phase.to_string recorded) v
      (Phase.to_string (G.phase g v))

let require_fresh what got expected =
  if got <> expected then
    fail "fresh %s vertex allocated as %d, certificate recorded %d" what got expected

(* A phase gadget anchored at [leaf]: degree-1 Z leaf attached by a
   Hadamard wire to a graph-like axis. *)
let require_gadget g ~leaf ~axis =
  require_z g leaf;
  if G.degree g leaf <> 1 then fail "gadget leaf %d does not have degree 1" leaf;
  (match G.connected g leaf axis with
  | Some G.Had -> ()
  | Some G.Simple | None -> fail "gadget leaf %d is not Hadamard-connected to axis %d" leaf axis);
  require_graphlike g axis;
  if not (Phase.is_pauli (G.phase g axis)) then
    fail "gadget axis %d does not carry a Pauli phase" axis

let gadget_support g ~leaf ~axis =
  List.sort compare (List.filter (fun w -> w <> leaf) (G.neighbour_ids g axis))

let apply_step g = function
  | Step.Color v ->
      (* Colour change: an X spider equals a Z spider with every incident
         edge type flipped. *)
      if not (G.mem g v) then fail "vertex %d is not live" v;
      if G.kind g v <> G.X then fail "vertex %d is not an X spider" v;
      G.set_kind g v G.Z;
      List.iter
        (fun (u, ty) ->
          G.remove_edge g v u;
          G.add_edge g v u (match ty with G.Simple -> G.Had | G.Had -> G.Simple))
        (G.neighbours g v)
  | Step.Fuse { into; src; ph } ->
      (* Spider fusion: same-colour spiders on a plain wire merge, phases
         adding. *)
      require_spider g into;
      require_spider g src;
      if into = src then fail "fusion of vertex %d with itself" into;
      if G.kind g into <> G.kind g src then
        fail "fusion of differently coloured spiders %d and %d" into src;
      (match G.connected g into src with
      | Some G.Simple -> ()
      | Some G.Had | None -> fail "spiders %d and %d share no plain wire" into src);
      require_phase g src ph;
      G.remove_edge g into src;
      G.add_to_phase g into (G.phase g src);
      let moved = G.neighbours g src in
      G.remove_vertex g src;
      List.iter (fun (w, ty) -> if w <> into then G.add_edge_smart g into w ty) moved
  | Step.Id v ->
      (* Identity removal: a phase-0 degree-2 spider is a wire; the
         composite wire is Hadamard iff exactly one side was. *)
      require_spider g v;
      if not (Phase.is_zero (G.phase g v)) then
        fail "identity removal of vertex %d with non-zero phase %s" v
          (Phase.to_string (G.phase g v));
      if G.degree g v <> 2 then fail "identity removal of vertex %d with degree %d" v (G.degree g v);
      (match G.neighbours g v with
      | [ (a, ta); (b, tb) ] ->
          let combined = if ta = tb then G.Simple else G.Had in
          G.remove_vertex g v;
          if is_spider g a && is_spider g b then G.add_edge_smart g a b combined
          else G.add_edge g a b combined
      | _ -> fail "identity removal of vertex %d: malformed neighbourhood" v)
  | Step.Absorb { leaf; axis; ph } ->
      (* Pauli absorption: a degree-1 Pauli state plugged into a
         graph-like spider removes both, copying pi onto the
         neighbours when the state is |->.  (For any leaf phase the
         remainder is a global scalar.) *)
      require_z g leaf;
      if G.degree g leaf <> 1 then fail "absorbed leaf %d does not have degree 1" leaf;
      if not (Phase.is_pauli (G.phase g leaf)) then
        fail "absorbed leaf %d does not carry a Pauli phase" leaf;
      require_phase g leaf ph;
      (match G.connected g leaf axis with
      | Some G.Had -> ()
      | Some G.Simple | None -> fail "leaf %d is not Hadamard-connected to %d" leaf axis);
      require_graphlike g axis;
      let flip = Phase.is_pi (G.phase g leaf) in
      let others = List.filter (fun w -> w <> leaf) (G.neighbour_ids g axis) in
      G.remove_vertex g leaf;
      G.remove_vertex g axis;
      if flip then List.iter (fun w -> G.add_to_phase g w Phase.pi) others
  | Step.Lcomp { v; ph } ->
      (* Local complementation at a proper-Clifford graph-like spider:
         the spider vanishes, its neighbourhood is complemented and each
         neighbour gains the negated phase. *)
      require_graphlike g v;
      if not (Phase.is_proper_clifford (G.phase g v)) then
        fail "local complementation at %d with non-proper-Clifford phase %s" v
          (Phase.to_string (G.phase g v));
      require_phase g v ph;
      let ns = G.neighbour_ids g v in
      let minus_phase = Phase.neg (G.phase g v) in
      G.remove_vertex g v;
      let rec pairs = function
        | [] -> ()
        | a :: rest ->
            List.iter (fun b -> G.toggle_edge g a b G.Had) rest;
            pairs rest
      in
      pairs ns;
      List.iter (fun a -> G.add_to_phase g a minus_phase) ns
  | Step.Pivot { u; v; pu; pv } ->
      (* Pivot along a Hadamard edge between two interior Pauli
         graph-like spiders: both vanish, the three neighbourhood
         classes are pairwise complemented and phases propagate. *)
      require_graphlike g u;
      require_graphlike g v;
      if u = v then fail "pivot of vertex %d with itself" u;
      if not (Phase.is_pauli (G.phase g u)) then
        fail "pivot endpoint %d does not carry a Pauli phase" u;
      if not (Phase.is_pauli (G.phase g v)) then
        fail "pivot endpoint %d does not carry a Pauli phase" v;
      (match G.connected g u v with
      | Some G.Had -> ()
      | Some G.Simple | None -> fail "pivot endpoints %d and %d share no Hadamard wire" u v);
      require_phase g u pu;
      require_phase g v pv;
      let phase_u = G.phase g u and phase_v = G.phase g v in
      let nu = List.filter (fun w -> w <> v) (G.neighbour_ids g u) in
      let nv = List.filter (fun w -> w <> u) (G.neighbour_ids g v) in
      let in_nv w = G.connected g v w <> None in
      let in_nu w = G.connected g u w <> None in
      let shared = List.filter in_nv nu in
      let only_u = List.filter (fun w -> not (in_nv w)) nu in
      let only_v = List.filter (fun w -> not (in_nu w)) nv in
      G.remove_vertex g u;
      G.remove_vertex g v;
      let toggle_groups xs ys =
        List.iter (fun a -> List.iter (fun b -> G.toggle_edge g a b G.Had) ys) xs
      in
      toggle_groups only_u only_v;
      toggle_groups only_u shared;
      toggle_groups only_v shared;
      List.iter (fun w -> G.add_to_phase g w phase_v) only_u;
      List.iter (fun w -> G.add_to_phase g w phase_u) only_v;
      List.iter
        (fun w -> G.add_to_phase g w (Phase.add (Phase.add phase_u phase_v) Phase.pi))
        shared
  | Step.Unfuse { v; b; w; ty } ->
      (* Boundary unfusion: a wire v-[ty]-b equals v -H- w(0) -[ty']- b
         with ty' flipped (H after H is a plain wire).  Sound for any
         existing edge; [w] must come out as the recorded fresh id. *)
      require_z g v;
      if not (G.mem g b) then fail "unfuse target %d is not live" b;
      if is_spider g b then fail "unfuse target %d is not a boundary vertex" b;
      (match G.connected g v b with
      | Some t when t = ty -> ()
      | Some _ -> fail "edge %d-%d does not have the recorded type" v b
      | None -> fail "no edge between %d and %d to unfuse" v b);
      G.remove_edge g v b;
      let w' = G.add_vertex g G.Z ~phase:Phase.zero in
      require_fresh "unfuse" w' w;
      G.add_edge g v w G.Had;
      G.add_edge g w b (match ty with G.Simple -> G.Had | G.Had -> G.Simple)
  | Step.Gadgetize { v; axis; leaf; ph } ->
      (* Phase extraction: a Z spider with phase ph equals the same
         spider at phase 0 with a fresh gadget axis(0) -H- leaf(ph)
         hanging off it.  Sound for any Z spider. *)
      require_z g v;
      require_phase g v ph;
      G.set_phase g v Phase.zero;
      let axis' = G.add_vertex g G.Z ~phase:Phase.zero in
      require_fresh "gadget axis" axis' axis;
      let leaf' = G.add_vertex g G.Z ~phase:ph in
      require_fresh "gadget leaf" leaf' leaf;
      G.add_edge g v axis G.Had;
      G.add_edge g axis leaf G.Had
  | Step.Gadget_flip { axis; leaf } ->
      (* Gadget normalisation: a pi-phase axis equals a 0-phase axis
         with the leaf phase negated. *)
      require_gadget g ~leaf ~axis;
      if not (Phase.is_pi (G.phase g axis)) then
        fail "gadget axis %d does not carry phase pi" axis;
      G.set_phase g axis Phase.zero;
      G.set_phase g leaf (Phase.neg (G.phase g leaf))
  | Step.Gadget_merge { leaf; axis; leaf0; axis0; ph } ->
      (* Gadget fusion: two gadgets with equal support and 0-phase axes
         merge, leaf phases adding. *)
      if leaf = leaf0 then fail "gadget merge of leaf %d with itself" leaf;
      require_gadget g ~leaf ~axis;
      require_gadget g ~leaf:leaf0 ~axis:axis0;
      if not (Phase.is_zero (G.phase g axis)) then
        fail "gadget axis %d does not carry phase 0" axis;
      if not (Phase.is_zero (G.phase g axis0)) then
        fail "gadget axis %d does not carry phase 0" axis0;
      let support = gadget_support g ~leaf ~axis in
      if support = [] then fail "gadget merge with empty support at axis %d" axis;
      if support <> gadget_support g ~leaf:leaf0 ~axis:axis0 then
        fail "gadgets at %d and %d have different supports" axis axis0;
      require_phase g leaf ph;
      G.add_to_phase g leaf0 (G.phase g leaf);
      G.remove_vertex g leaf;
      G.remove_vertex g axis

(* The acceptance condition: no spiders remain and every input is wired
   straight to the same-numbered output by a plain wire. *)
let check_identity g n =
  if G.spider_count g <> 0 then
    fail "final diagram still contains %d spiders" (G.spider_count g);
  let ins = G.inputs g and outs = G.outputs g in
  if List.length ins <> n || List.length outs <> n then
    fail "final diagram has %d inputs and %d outputs, expected %d" (List.length ins)
      (List.length outs) n;
  List.iter
    (fun (q, vin) ->
      match G.neighbours g vin with
      | [ (w, G.Simple) ] -> (
          match G.kind g w with
          | G.B_out q' when q' = q -> ()
          | G.B_out q' -> fail "input %d is wired to output %d, not the identity" q q'
          | G.B_in _ | G.Z | G.X -> fail "input %d is not wired to an output" q)
      | [ (_, G.Had) ] -> fail "input %d is connected through a Hadamard wire" q
      | _ -> fail "input %d is not connected by a single wire" q)
    ins

let validate_zx a b steps =
  let open Oqec_circuit in
  let n = Circuit.num_qubits a in
  if Circuit.num_qubits b <> n then fail "circuits have different widths";
  let g = Oqec_zx.Zx_circuit.of_miter a b in
  List.iteri
    (fun i step ->
      try apply_step g step with
      | Reject msg -> fail "step %d (%s): %s" i (Step.to_string step) msg
      | Invalid_argument msg | Failure msg ->
          fail "step %d (%s): graph operation failed: %s" i (Step.to_string step) msg)
    steps;
  check_identity g n

let witness_tol = 1e-6

let validate_witness a b index prep fidelity =
  let open Oqec_circuit in
  let n = Circuit.num_qubits a in
  if Circuit.num_qubits b <> n || Circuit.num_qubits prep <> n then
    fail "witness circuits have different widths";
  if n > Cert.max_witness_qubits then
    fail "witness too wide to validate (%d qubits, max %d)" n Cert.max_witness_qubits;
  let va = Unitary.basis_state n 0 in
  (try Unitary.apply_to_vector prep va
   with Invalid_argument msg -> fail "stimulus simulation failed: %s" msg);
  let vb = Array.copy va in
  Unitary.apply_to_vector a va;
  Unitary.apply_to_vector b vb;
  let dot = ref Cx.zero in
  Array.iteri (fun i x -> dot := Cx.add !dot (Cx.mul (Cx.conj x) vb.(i))) va;
  let fid = Cx.mag !dot in
  if Float.abs (fid -. fidelity) > witness_tol then
    fail "recorded fidelity %.9f does not match simulated %.9f (stimulus #%d)" fidelity fid
      index;
  if fid >= 1.0 -. witness_tol then
    fail "stimulus #%d does not refute: fidelity %.9f" index fid

let validate cert =
  try
    (match cert with
    | Cert.Zx_proof { a; b; steps } -> validate_zx a b steps
    | Cert.Witness { a; b; index; prep; fidelity } ->
        validate_witness a b index prep fidelity);
    Ok ()
  with Reject msg -> Error msg
