(** Independent certificate validator.

    The trusted base is deliberately tiny: {!Oqec_zx.Zx_graph} mutation
    primitives, the circuit-to-diagram translation
    ({!Oqec_zx.Zx_circuit}) and the dense reference simulator
    ({!Oqec_circuit.Unitary}).  No code is shared with the rewrite
    engines ([Zx_rules], [Zx_worklist], [Zx_rescan], [Zx_simplify]) —
    a bug in the optimised engine cannot leak into validation, which is
    what makes an accepted certificate evidence rather than an echo of
    the engine's own verdict (asserted by the independence test in
    [test_cert]).

    A {!Oqec_cert.Cert.Zx_proof} is replayed step by step: each step's
    semantic preconditions (vertex kinds, degrees, interiority, edge
    types, recorded phases, fresh-vertex ids) are re-checked before its
    mutations are applied, and the certificate is accepted iff the
    final diagram is the identity — bare wires connecting each input to
    the same-numbered output.  A {!Oqec_cert.Cert.Witness} is accepted
    iff dense simulation of both circuits on the prepared stimulus
    yields states with fidelity below [1 - 1e-6], matching the recorded
    fidelity. *)

(** [validate cert] replays and checks [cert]; [Error] pinpoints the
    first failing step or the final-diagram mismatch. *)
val validate : Cert.t -> (unit, string) result
