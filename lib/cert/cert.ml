open Oqec_base
open Oqec_circuit
open Oqec_zx

type t =
  | Zx_proof of { a : Circuit.t; b : Circuit.t; steps : Zx_step.t list }
  | Witness of {
      a : Circuit.t;
      b : Circuit.t;
      index : int;
      prep : Circuit.t;
      fidelity : float;
    }

let summary = function
  | Zx_proof { steps; _ } -> Printf.sprintf "zx-proof (%d steps)" (List.length steps)
  | Witness { index; fidelity; _ } ->
      Printf.sprintf "witness (stimulus #%d, fidelity %.9f)" index fidelity

(* ------------------------------------------------------ Op serialisation *)

(* Circuits inside a ZX proof must round-trip *structurally*: the
   validator rebuilds the miter from the serialized ops, and replay
   determinism (vertex-id allocation) depends on the exact op sequence.
   QASM output is only semantically faithful (e.g. a controlled S prints
   as cp(pi/2)), so proofs use this one-op-per-line format instead.
   Witness circuits only need their semantics and embed QASM. *)

let ph = Zx_step.phase_to_string

let gate_to_string = function
  | Gate.I -> "i"
  | Gate.X -> "x"
  | Gate.Y -> "y"
  | Gate.Z -> "z"
  | Gate.H -> "h"
  | Gate.S -> "s"
  | Gate.Sdg -> "sdg"
  | Gate.T -> "t"
  | Gate.Tdg -> "tdg"
  | Gate.Sx -> "sx"
  | Gate.Sxdg -> "sxdg"
  | Gate.Rx p -> Printf.sprintf "rx(%s)" (ph p)
  | Gate.Ry p -> Printf.sprintf "ry(%s)" (ph p)
  | Gate.Rz p -> Printf.sprintf "rz(%s)" (ph p)
  | Gate.P p -> Printf.sprintf "p(%s)" (ph p)
  | Gate.U (a, b, c) -> Printf.sprintf "u(%s,%s,%s)" (ph a) (ph b) (ph c)

let gate_of_string s =
  let ( let* ) = Option.bind in
  match String.index_opt s '(' with
  | None -> (
      match s with
      | "i" -> Some Gate.I
      | "x" -> Some Gate.X
      | "y" -> Some Gate.Y
      | "z" -> Some Gate.Z
      | "h" -> Some Gate.H
      | "s" -> Some Gate.S
      | "sdg" -> Some Gate.Sdg
      | "t" -> Some Gate.T
      | "tdg" -> Some Gate.Tdg
      | "sx" -> Some Gate.Sx
      | "sxdg" -> Some Gate.Sxdg
      | _ -> None)
  | Some lp ->
      let len = String.length s in
      if s.[len - 1] <> ')' then None
      else
        let name = String.sub s 0 lp in
        let args = String.sub s (lp + 1) (len - lp - 2) in
        let args = String.split_on_char ',' args in
        let* phases =
          List.fold_right
            (fun a acc ->
              let* acc = acc in
              let* p = Zx_step.phase_of_string a in
              Some (p :: acc))
            args (Some [])
        in
        (match (name, phases) with
        | "rx", [ p ] -> Some (Gate.Rx p)
        | "ry", [ p ] -> Some (Gate.Ry p)
        | "rz", [ p ] -> Some (Gate.Rz p)
        | "p", [ p ] -> Some (Gate.P p)
        | "u", [ a; b; c ] -> Some (Gate.U (a, b, c))
        | _ -> None)

let op_to_string = function
  | Circuit.Gate (g, q) -> Printf.sprintf "g %s %d" (gate_to_string g) q
  | Circuit.Ctrl (cs, g, t) ->
      Printf.sprintf "c %s %s %d"
        (String.concat "," (List.map string_of_int cs))
        (gate_to_string g) t
  | Circuit.Swap (a, b) -> Printf.sprintf "swap %d %d" a b
  | Circuit.Barrier -> "barrier"

let op_of_string line =
  let ( let* ) = Option.bind in
  let int = int_of_string_opt in
  match String.split_on_char ' ' line with
  | [ "g"; g; q ] ->
      let* g = gate_of_string g in
      let* q = int q in
      Some (Circuit.Gate (g, q))
  | [ "c"; cs; g; t ] ->
      let* cs =
        List.fold_right
          (fun c acc ->
            let* acc = acc in
            let* c = int c in
            Some (c :: acc))
          (String.split_on_char ',' cs)
          (Some [])
      in
      let* g = gate_of_string g in
      let* t = int t in
      Some (Circuit.Ctrl (cs, g, t))
  | [ "swap"; a; b ] ->
      let* a = int a in
      let* b = int b in
      Some (Circuit.Swap (a, b))
  | [ "barrier" ] -> Some Circuit.Barrier
  | _ -> None

(* --------------------------------------------------------- Serialisation *)

let header = "OQEC-CERT 1"

let lines_of_qasm c =
  let text = Oqec_qasm.Qasm.to_string c in
  let lines = String.split_on_char '\n' text in
  (* Drop the trailing empty fragment of a newline-terminated string. *)
  match List.rev lines with "" :: rest -> List.rev rest | _ -> lines

let serialize cert =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "%s" header;
  (match cert with
  | Zx_proof { a; b; steps } ->
      line "claim equivalent";
      line "qubits %d" (Circuit.num_qubits a);
      let ops tag c =
        let ops = Circuit.ops c in
        line "ops %s %d" tag (List.length ops);
        List.iter (fun op -> line "%s" (op_to_string op)) ops
      in
      ops "a" a;
      ops "b" b;
      line "steps %d" (List.length steps);
      List.iter (fun s -> line "%s" (Zx_step.to_string s)) steps
  | Witness { a; b; index; prep; fidelity } ->
      line "claim not-equivalent";
      line "witness %d %.17g" index fidelity;
      let qasm tag c =
        let ls = lines_of_qasm c in
        line "qasm %s %d" tag (List.length ls);
        List.iter (fun l -> line "%s" l) ls
      in
      qasm "a" a;
      qasm "b" b;
      qasm "stimulus" prep);
  line "end";
  Buffer.contents buf

(* --------------------------------------------------------------- Parsing *)

exception Bad of string

let parse text =
  let lines = Array.of_list (String.split_on_char '\n' text) in
  let pos = ref 0 in
  let next what =
    if !pos >= Array.length lines then raise (Bad (Printf.sprintf "unexpected end of certificate, expected %s" what))
    else begin
      let l = lines.(!pos) in
      incr pos;
      l
    end
  in
  let expect_kv key what parse_v =
    let l = next what in
    match String.split_on_char ' ' l with
    | k :: rest when k = key -> (
        match parse_v rest with
        | Some v -> v
        | None -> raise (Bad (Printf.sprintf "malformed %s line: %S" what l)))
    | _ -> raise (Bad (Printf.sprintf "expected %s line, got %S" what l))
  in
  let read_block n what parse_line =
    List.init n (fun _ ->
        let l = next what in
        match parse_line l with
        | Some v -> v
        | None -> raise (Bad (Printf.sprintf "malformed %s line: %S" what l)))
  in
  let read_circuit_ops tag n =
    let count =
      expect_kv "ops" (Printf.sprintf "ops %s" tag) (function
        | [ t; c ] when t = tag -> int_of_string_opt c
        | _ -> None)
    in
    let ops = read_block count "op" op_of_string in
    try List.fold_left Circuit.add (Circuit.create n) ops
    with Invalid_argument msg -> raise (Bad (Printf.sprintf "invalid op in circuit %s: %s" tag msg))
  in
  let read_qasm tag =
    let count =
      expect_kv "qasm" (Printf.sprintf "qasm %s" tag) (function
        | [ t; c ] when t = tag -> int_of_string_opt c
        | _ -> None)
    in
    let ls = read_block count "qasm" (fun l -> Some l) in
    try Oqec_qasm.Qasm.circuit_of_string (String.concat "\n" ls ^ "\n")
    with Oqec_qasm.Qasm.Parse_error msg ->
      raise (Bad (Printf.sprintf "invalid qasm in section %s: %s" tag msg))
  in
  let finish cert =
    (match next "end" with
    | "end" -> ()
    | l -> raise (Bad (Printf.sprintf "expected end, got %S" l)));
    (* Only blank lines may follow. *)
    Array.iteri
      (fun i l -> if i >= !pos && String.trim l <> "" then raise (Bad "trailing garbage after end"))
      lines;
    cert
  in
  try
    (match next "header" with
    | l when l = header -> ()
    | l when String.length l >= 9 && String.sub l 0 9 = "OQEC-CERT" ->
        raise (Bad (Printf.sprintf "unsupported certificate version: %S" l))
    | l -> raise (Bad (Printf.sprintf "not a certificate (bad header %S)" l)));
    match next "claim" with
    | "claim equivalent" ->
        let n =
          expect_kv "qubits" "qubits" (function [ c ] -> int_of_string_opt c | _ -> None)
        in
        if n < 0 then raise (Bad "negative qubit count");
        let a = read_circuit_ops "a" n in
        let b = read_circuit_ops "b" n in
        let count =
          expect_kv "steps" "steps" (function [ c ] -> int_of_string_opt c | _ -> None)
        in
        let steps = read_block count "step" Zx_step.of_string in
        Ok (finish (Zx_proof { a; b; steps }))
    | "claim not-equivalent" ->
        let index, fidelity =
          expect_kv "witness" "witness" (function
            | [ i; f ] -> (
                match (int_of_string_opt i, float_of_string_opt f) with
                | Some i, Some f -> Some (i, f)
                | _ -> None)
            | _ -> None)
        in
        let a = read_qasm "a" in
        let b = read_qasm "b" in
        let prep = read_qasm "stimulus" in
        Ok (finish (Witness { a; b; index; prep; fidelity }))
    | l -> raise (Bad (Printf.sprintf "expected claim line, got %S" l))
  with Bad msg -> Error msg

(* -------------------------------------------------------------- Equality *)

let equal_circuit a b =
  Circuit.num_qubits a = Circuit.num_qubits b
  &&
  let oa = Circuit.ops a and ob = Circuit.ops b in
  List.length oa = List.length ob && List.for_all2 Circuit.equal_op oa ob

let equal c1 c2 =
  match (c1, c2) with
  | Zx_proof p1, Zx_proof p2 ->
      equal_circuit p1.a p2.a && equal_circuit p1.b p2.b
      && List.length p1.steps = List.length p2.steps
      && List.for_all2 Zx_step.equal p1.steps p2.steps
  | Witness w1, Witness w2 ->
      equal_circuit w1.a w2.a && equal_circuit w1.b w2.b && w1.index = w2.index
      && equal_circuit w1.prep w2.prep
      && Float.abs (w1.fidelity -. w2.fidelity) < 1e-9
  | _, _ -> false

(* ------------------------------------------------------- Witness search *)

let max_witness_qubits = 12

(* Dense search is quadratic in the 2^n dimension; cap below the
   simulator's own limit. *)
let max_search_qubits = 10

let state_fidelity a b prep n =
  let va = Oqec_circuit.Unitary.basis_state n 0 in
  Oqec_circuit.Unitary.apply_to_vector prep va;
  let vb = Array.copy va in
  Oqec_circuit.Unitary.apply_to_vector a va;
  Oqec_circuit.Unitary.apply_to_vector b vb;
  let dot = ref Cx.zero in
  Array.iteri (fun i x -> dot := Cx.add !dot (Cx.mul (Cx.conj x) vb.(i))) va;
  Cx.mag !dot

let prep_of_basis n x =
  let c = ref (Circuit.create ~name:"stimulus" n) in
  for q = 0 to n - 1 do
    if x land (1 lsl q) <> 0 then c := Circuit.x !c q
  done;
  !c

(* Prepare (|x> + |y>)/sqrt2: H on the lowest differing bit, CX it onto
   the other differing bits (giving |0>+|mask>), then X^x. *)
let prep_of_pair n x y =
  let mask = x lxor y in
  let p =
    let rec lowest i = if mask land (1 lsl i) <> 0 then i else lowest (i + 1) in
    lowest 0
  in
  let c = ref (Circuit.h (Circuit.create ~name:"stimulus" n) p) in
  for q = 0 to n - 1 do
    if q <> p && mask land (1 lsl q) <> 0 then c := Circuit.cx !c p q
  done;
  for q = 0 to n - 1 do
    if x land (1 lsl q) <> 0 then c := Circuit.x !c q
  done;
  !c

let find_witness ?(tol = 1e-6) a b =
  let n = Circuit.num_qubits a in
  if n <> Circuit.num_qubits b || n > max_search_qubits then None
  else begin
    let ua = Oqec_circuit.Unitary.unitary a
    and ub = Oqec_circuit.Unitary.unitary b in
    let dim = 1 lsl n in
    (* Column overlaps o_x = <Ua x | Ub x>. *)
    let overlap x =
      let dot = ref Cx.zero in
      for r = 0 to dim - 1 do
        dot := Cx.add !dot (Cx.mul (Cx.conj (Dmatrix.get ua r x)) (Dmatrix.get ub r x))
      done;
      !dot
    in
    let o = Array.init dim overlap in
    let verified index prep =
      let fid = state_fidelity a b prep n in
      if fid < 1.0 -. tol then Some (index, prep, fid) else None
    in
    (* Best basis-state stimulus first. *)
    let best = ref 0 in
    Array.iteri (fun x ox -> if Cx.mag ox < Cx.mag o.(!best) then best := x) o;
    if Cx.mag o.(!best) < 1.0 -. tol then verified !best (prep_of_basis n !best)
    else if dim < 2 then None
    else begin
      (* All columns preserved in magnitude: look for relative phases
         with a two-column superposition, whose fidelity is
         |o_x + o_y| / 2 up to negligible cross terms. *)
      let bx = ref 0 and by = ref 1 and bmag = ref infinity in
      for x = 0 to dim - 2 do
        for y = x + 1 to dim - 1 do
          let m = Cx.mag (Cx.add o.(x) o.(y)) in
          if m < !bmag then begin
            bmag := m;
            bx := x;
            by := y
          end
        done
      done;
      if !bmag /. 2.0 < 1.0 -. tol then verified !bx (prep_of_pair n !bx !by) else None
    end
  end
