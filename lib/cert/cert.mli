(** Replayable verdict certificates.

    A certificate is a standalone artifact a skeptical consumer can
    re-check without trusting the optimised equivalence-checking
    engines:

    - {!Zx_proof} carries the two (aligned, flattened) circuits plus
      the full ordered sequence of ZX rewrites the worklist engine
      fired while reducing their miter to the identity.  The
      independent validator ({!Cert_validate}) replays the sequence
      against {!Oqec_zx.Zx_graph} primitives only, re-checking every
      step's preconditions.
    - {!Witness} carries a refuting stimulus for a non-equivalence
      verdict: a state-preparation circuit such that running both
      circuits on the prepared state yields distinguishable states,
      re-checkable by direct dense simulation.

    The wire format is versioned, line-oriented text (header
    ["OQEC-CERT 1"]); {!parse} rejects unknown versions and malformed
    payloads with a descriptive error. *)

open Oqec_circuit
open Oqec_zx

type t =
  | Zx_proof of { a : Circuit.t; b : Circuit.t; steps : Zx_step.t list }
      (** [a] and [b] are the aligned, flattened circuits whose miter
          the recorded rewrite sequence reduces to the identity. *)
  | Witness of {
      a : Circuit.t;
      b : Circuit.t;
      index : int;  (** stimulus index (fuzz stimulus or basis state) *)
      prep : Circuit.t;  (** state preparation applied before [a] / [b] *)
      fidelity : float;  (** |<a prep 0 | b prep 0>| claimed by the prover *)
    }

(** One-line human summary, e.g. ["zx-proof (214 steps)"]. *)
val summary : t -> string

val serialize : t -> string

(** Inverse of {!serialize}; [Error] describes the first malformed
    line.  Certificates with an unknown version header are rejected. *)
val parse : string -> (t, string) result

(** Structural equality ({!Oqec_base.Phase.equal} on phases, 1e-9 on
    the witness fidelity) — for round-trip tests. *)
val equal : t -> t -> bool

(** Width cap for witness certificates: dense replay of wider circuits
    would be too expensive for a validator (12 qubits). *)
val max_witness_qubits : int

(** [find_witness a b] searches deterministically for a refuting
    stimulus for two aligned circuits of equal width: first the basis
    states (columns of the two unitaries), then superpositions of the
    two most phase-divergent columns — the classical stimuli-and-phases
    scheme of Burgholzer & Wille's advanced equivalence checking.
    Returns [(index, prep, fidelity)] with the fidelity verified by
    dense simulation, or [None] when no stimulus refutes within [tol]
    (default 1e-6) or the circuits are too wide (> 10 qubits). *)
val find_witness :
  ?tol:float -> Circuit.t -> Circuit.t -> (int * Circuit.t * float) option
