open Oqec_base
open Oqec_circuit

(* ------------------------------------------------------------ Algorithms *)

let ghz n =
  let c = Circuit.h (Circuit.create ~name:(Printf.sprintf "ghz-%d" n) n) 0 in
  let rec fan c q = if q >= n then c else fan (Circuit.cx c 0 q) (q + 1) in
  fan c 1

let graph_state ~seed n =
  let rng = Rng.make ~seed in
  let c = ref (Circuit.create ~name:(Printf.sprintf "graphstate-%d" n) n) in
  for q = 0 to n - 1 do
    c := Circuit.h !c q
  done;
  (* Ring plus random chords: about 1.5 edges per vertex, as in typical
     graph-state benchmarks. *)
  for q = 0 to n - 1 do
    c := Circuit.cz !c q ((q + 1) mod n)
  done;
  for _ = 1 to n / 2 do
    let a = Rng.int rng n in
    let b = Rng.int rng n in
    if a <> b && b <> (a + 1) mod n && a <> (b + 1) mod n then c := Circuit.cz !c a b
  done;
  !c

let qft ?(with_swaps = true) n =
  let c = ref (Circuit.create ~name:(Printf.sprintf "qft-%d" n) n) in
  for i = n - 1 downto 0 do
    c := Circuit.h !c i;
    for j = i - 1 downto 0 do
      c := Circuit.cp !c (Phase.of_pi_fraction 1 (1 lsl (i - j))) j i
    done
  done;
  if with_swaps then
    for k = 0 to (n / 2) - 1 do
      c := Circuit.swap !c k (n - 1 - k)
    done;
  !c

let qpe_exact ~seed n =
  let rng = Rng.make ~seed in
  (* The estimated phase is theta = m / 2^n with odd m, so the n-bit
     estimate is exact and the algorithm's output is deterministic. *)
  let m = (2 * Rng.int rng (1 lsl (n - 1))) + 1 in
  let target = n in
  let c = ref (Circuit.create ~name:(Printf.sprintf "qpeexact-%d" (n + 1)) (n + 1)) in
  c := Circuit.x !c target;
  for k = 0 to n - 1 do
    c := Circuit.h !c k;
    (* controlled-U^(2^k) with U = P(2 pi m / 2^n). *)
    c := Circuit.cp !c (Phase.of_pi_fraction (2 * m) (1 lsl (n - k))) k target
  done;
  (* Inverse QFT on the evaluation register (wires 0..n-1 of the wider
     circuit, so the ops embed unchanged). *)
  let iqft = Circuit.inverse (qft ~with_swaps:true n) in
  List.iter (fun op -> c := Circuit.add !c op) (Circuit.ops iqft);
  !c

let grover ?iterations ~seed n =
  let rng = Rng.make ~seed in
  let marked = Rng.int rng (1 lsl n) in
  let iterations =
    match iterations with
    | Some k -> k
    | None ->
        max 1 (int_of_float (Float.round (Float.pi /. 4.0 *. sqrt (float_of_int (1 lsl n)))))
  in
  let c = ref (Circuit.create ~name:(Printf.sprintf "grover-%d" n) n) in
  let all_h () =
    for q = 0 to n - 1 do
      c := Circuit.h !c q
    done
  in
  let mcz () =
    if n = 1 then c := Circuit.z !c 0
    else c := Circuit.add !c (Circuit.Ctrl (List.init (n - 1) (fun i -> i), Gate.Z, n - 1))
  in
  let flip_zeros v =
    for q = 0 to n - 1 do
      if (v lsr q) land 1 = 0 then c := Circuit.x !c q
    done
  in
  all_h ();
  for _ = 1 to iterations do
    (* Oracle: phase-flip the marked element. *)
    flip_zeros marked;
    mcz ();
    flip_zeros marked;
    (* Diffusion. *)
    all_h ();
    flip_zeros 0;
    mcz ();
    flip_zeros 0;
    all_h ()
  done;
  !c

(* Ripple increment: the most significant bit flips first (conditioned on
   all lower bits), the least significant bit flips last. *)
let increment_ops ~extra_controls pos =
  let k = Array.length pos in
  let cascade =
    List.init (k - 1) (fun idx ->
        let i = k - 1 - idx in
        let controls = extra_controls @ Array.to_list (Array.sub pos 0 i) in
        Circuit.Ctrl (controls, Gate.X, pos.(i)))
  in
  let low =
    match extra_controls with
    | [] -> Circuit.Gate (Gate.X, pos.(0))
    | cs -> Circuit.Ctrl (cs, Gate.X, pos.(0))
  in
  cascade @ [ low ]

let random_walk ~steps n =
  if n < 2 then invalid_arg "Workloads.random_walk: needs a coin and a position";
  let coin = n - 1 in
  let pos = Array.init (n - 1) (fun i -> i) in
  let c = ref (Circuit.create ~name:(Printf.sprintf "qwalk-%d" n) n) in
  let inc = increment_ops ~extra_controls:[ coin ] pos in
  let dec = List.rev inc in
  for _ = 1 to steps do
    c := Circuit.h !c coin;
    List.iter (fun op -> c := Circuit.add !c op) inc;
    c := Circuit.x !c coin;
    List.iter (fun op -> c := Circuit.add !c op) dec;
    c := Circuit.x !c coin
  done;
  !c

(* ------------------------------------------------------------ Reversible *)

(* Cuccaro ripple-carry adder: wires are cin=0, a_i = 1+i, b_i = 1+n+i,
   cout = 2n+1; computes b := a + b with the carry in cout. *)
let ripple_adder n =
  let cin = 0 and a i = 1 + i and b i = 1 + n + i in
  let cout = (2 * n) + 1 in
  let c = ref (Circuit.create ~name:(Printf.sprintf "rippleadd-%d" ((2 * n) + 2)) ((2 * n) + 2)) in
  let maj x y z =
    c := Circuit.cx !c z y;
    c := Circuit.cx !c z x;
    c := Circuit.ccx !c x y z
  in
  let uma x y z =
    c := Circuit.ccx !c x y z;
    c := Circuit.cx !c z x;
    c := Circuit.cx !c x y
  in
  maj cin (b 0) (a 0);
  for i = 1 to n - 1 do
    maj (a (i - 1)) (b i) (a i)
  done;
  c := Circuit.cx !c (a (n - 1)) cout;
  for i = n - 1 downto 1 do
    uma (a (i - 1)) (b i) (a i)
  done;
  uma cin (b 0) (a 0);
  !c

let const_adder_mod ~bits ~constant =
  let reg = Array.init bits (fun i -> i) in
  let c =
    ref
      (Circuit.create
         ~name:(Printf.sprintf "plus%dmod%d" constant (1 lsl bits))
         bits)
  in
  (* Adding 2^j modulo 2^bits is a ripple increment on wires j..bits-1. *)
  for j = 0 to bits - 1 do
    if (constant lsr j) land 1 = 1 then begin
      let window = Array.sub reg j (bits - j) in
      List.iter (fun op -> c := Circuit.add !c op) (increment_ops ~extra_controls:[] window)
    end
  done;
  !c

let random_reversible ~seed ~gates n =
  let rng = Rng.make ~seed in
  let c = ref (Circuit.create ~name:(Printf.sprintf "urf-%d" n) n) in
  let distinct k =
    let picked = Array.make k (-1) in
    for i = 0 to k - 1 do
      let rec draw () =
        let q = Rng.int rng n in
        if Array.exists (( = ) q) picked then draw () else q
      in
      picked.(i) <- draw ()
    done;
    Array.to_list picked
  in
  for _ = 1 to gates do
    match Rng.int rng 7 with
    | 0 -> c := Circuit.x !c (Rng.int rng n)
    | 1 | 2 -> (
        match distinct 2 with
        | [ a; b ] -> c := Circuit.cx !c a b
        | _ -> assert false)
    | 3 | 4 | 5 -> (
        match distinct 3 with
        | [ a; b; t ] -> c := Circuit.ccx !c a b t
        | _ -> assert false)
    | _ ->
        if n >= 4 then (
          match distinct 4 with
          | [ a; b; d; t ] -> c := Circuit.mcx !c [ a; b; d ] t
          | _ -> assert false)
        else c := Circuit.x !c (Rng.int rng n)
  done;
  !c

(* Comparator: MAJ chain of (NOT a) + b; the carry lands in the result
   wire, the chain is uncomputed.  Computes result = [a <= b] (validated
   against the dense semantics in the tests). *)
let comparator n =
  let cin = 0 and a i = 1 + i and b i = 1 + n + i in
  let result = (2 * n) + 1 in
  let c = ref (Circuit.create ~name:(Printf.sprintf "comparator-%d" ((2 * n) + 2)) ((2 * n) + 2)) in
  let maj x y z =
    c := Circuit.cx !c z y;
    c := Circuit.cx !c z x;
    c := Circuit.ccx !c x y z
  in
  let maj_inv x y z =
    c := Circuit.ccx !c x y z;
    c := Circuit.cx !c z x;
    c := Circuit.cx !c z y
  in
  c := Circuit.x !c cin;
  for i = 0 to n - 1 do
    c := Circuit.x !c (a i)
  done;
  maj cin (b 0) (a 0);
  for i = 1 to n - 1 do
    maj (a (i - 1)) (b i) (a i)
  done;
  c := Circuit.cx !c (a (n - 1)) result;
  for i = n - 1 downto 1 do
    maj_inv (a (i - 1)) (b i) (a i)
  done;
  maj_inv cin (b 0) (a 0);
  for i = 0 to n - 1 do
    c := Circuit.x !c (a i)
  done;
  c := Circuit.x !c cin;
  !c

(* ------------------------------------------------ Extended algorithms *)

let bernstein_vazirani ~secret n =
  if secret < 0 || secret >= 1 lsl n then invalid_arg "Workloads.bernstein_vazirani";
  let anc = n in
  let c = ref (Circuit.create ~name:(Printf.sprintf "bv-%d" n) (n + 1)) in
  c := Circuit.x !c anc;
  for q = 0 to n do
    c := Circuit.h !c q
  done;
  for q = 0 to n - 1 do
    if (secret lsr q) land 1 = 1 then c := Circuit.cx !c q anc
  done;
  for q = 0 to n - 1 do
    c := Circuit.h !c q
  done;
  !c

let deutsch_jozsa ~seed ~balanced n =
  let rng = Rng.make ~seed in
  let anc = n in
  let c = ref (Circuit.create ~name:(Printf.sprintf "dj-%d" n) (n + 1)) in
  c := Circuit.x !c anc;
  for q = 0 to n do
    c := Circuit.h !c q
  done;
  if balanced then begin
    (* f(x) = mask . x for a random non-zero mask is balanced. *)
    let mask = 1 + Rng.int rng ((1 lsl n) - 1) in
    for q = 0 to n - 1 do
      if (mask lsr q) land 1 = 1 then c := Circuit.cx !c q anc
    done
  end
  else if Rng.bool rng then c := Circuit.x !c anc;
  for q = 0 to n - 1 do
    c := Circuit.h !c q
  done;
  !c

(* Peel amplitude 1/sqrt n off wire k at each step, then shift the
   excitation with a CX. *)
let w_state n =
  if n < 1 then invalid_arg "Workloads.w_state";
  let c = ref (Circuit.x (Circuit.create ~name:(Printf.sprintf "wstate-%d" n) n) 0) in
  for k = 0 to n - 2 do
    let stay = sqrt (1.0 /. float_of_int (n - k)) in
    let theta = Phase.of_float (2.0 *. acos stay) in
    c := Circuit.add !c (Circuit.Ctrl ([ k ], Gate.Ry theta, k + 1));
    c := Circuit.cx !c (k + 1) k
  done;
  !c

let hidden_weighted_bit n =
  if n < 2 then invalid_arg "Workloads.hidden_weighted_bit";
  let rec bits_for k acc = if k = 0 then max acc 1 else bits_for (k lsr 1) (acc + 1) in
  let b = bits_for n 0 in
  let width = n + b in
  let weight = Array.init b (fun i -> n + i) in
  let c = ref (Circuit.create ~name:(Printf.sprintf "hwb-%d" n) width) in
  let emit ops = List.iter (fun op -> c := Circuit.add !c op) ops in
  let count_weight () =
    for i = 0 to n - 1 do
      emit (increment_ops ~extra_controls:[ i ] weight)
    done
  in
  let uncount_weight () =
    for i = n - 1 downto 0 do
      emit (List.rev (increment_ops ~extra_controls:[ i ] weight))
    done
  in
  (* Controlled cyclic shift of the data register by one position (the
     value on wire i moves to wire i+1 mod n), as a chain of Fredkin
     gates. *)
  let controlled_rot1 ctl =
    for i = n - 2 downto 0 do
      (* cswap ctl (i) (i+1) = cx b a; ccx ctl a b; cx b a *)
      let a = i and bq = i + 1 in
      emit
        [
          Circuit.Ctrl ([ bq ], Gate.X, a);
          Circuit.Ctrl ([ ctl; a ], Gate.X, bq);
          Circuit.Ctrl ([ bq ], Gate.X, a);
        ]
    done
  in
  count_weight ();
  for j = 0 to b - 1 do
    let reps = 1 lsl j mod n in
    for _ = 1 to reps do
      controlled_rot1 weight.(j)
    done
  done;
  uncount_weight ();
  !c

let vqe_ansatz ~seed ~layers n =
  let rng = Rng.make ~seed in
  let angle () = Phase.of_float (Rng.float rng (2.0 *. Float.pi)) in
  let c = ref (Circuit.create ~name:(Printf.sprintf "vqe-%d" n) n) in
  for _ = 1 to layers do
    for q = 0 to n - 1 do
      c := Circuit.ry !c (angle ()) q;
      c := Circuit.rz !c (angle ()) q
    done;
    for q = 0 to n - 2 do
      c := Circuit.cx !c q (q + 1)
    done;
    if n > 2 then c := Circuit.cx !c (n - 1) 0
  done;
  (* Final rotation layer. *)
  for q = 0 to n - 1 do
    c := Circuit.ry !c (angle ()) q
  done;
  !c

(* -------------------------------------------------------- Error injection *)

let remove_gate ~seed c =
  let rng = Rng.make ~seed in
  let ops = Circuit.ops c in
  let gate_indices =
    List.filteri (fun _ op -> op <> Circuit.Barrier) ops |> List.length
  in
  if gate_indices = 0 then invalid_arg "Workloads.remove_gate: empty circuit";
  let victim = Rng.int rng gate_indices in
  let counter = ref (-1) in
  let keep op =
    if op = Circuit.Barrier then true
    else begin
      incr counter;
      !counter <> victim
    end
  in
  let kept = List.filter keep ops in
  let c' =
    List.fold_left Circuit.add
      (Circuit.create ~name:(Circuit.name c ^ "-missing") (Circuit.num_qubits c))
      kept
  in
  let c' = Circuit.with_initial_layout c' (Circuit.initial_layout c) in
  Circuit.with_output_perm c' (Circuit.output_perm c)

let flip_cnot ~seed c =
  let rng = Rng.make ~seed in
  let ops = Circuit.ops c in
  let is_cnot = function Circuit.Ctrl ([ _ ], Gate.X, _) -> true | _ -> false in
  let total = List.length (List.filter is_cnot ops) in
  if total = 0 then invalid_arg "Workloads.flip_cnot: no CNOT to flip";
  let victim = Rng.int rng total in
  let counter = ref (-1) in
  let flip op =
    match op with
    | Circuit.Ctrl ([ ctl ], Gate.X, tgt) ->
        incr counter;
        if !counter = victim then Circuit.Ctrl ([ tgt ], Gate.X, ctl) else op
    | _ -> op
  in
  let c' =
    List.fold_left Circuit.add
      (Circuit.create ~name:(Circuit.name c ^ "-flipped") (Circuit.num_qubits c))
      (List.map flip ops)
  in
  let c' = Circuit.with_initial_layout c' (Circuit.initial_layout c) in
  Circuit.with_output_perm c' (Circuit.output_perm c)

type fault = Missing_gate | Flipped_cnot | Perturbed_angle | Substituted_gate

let fault_to_string = function
  | Missing_gate -> "missing-gate"
  | Flipped_cnot -> "flipped-cnot"
  | Perturbed_angle -> "perturbed-angle"
  | Substituted_gate -> "substituted-gate"

(* Whether an operation acts as the identity (up to global phase), in
   which case deleting it would NOT break equivalence. *)
let gate_is_identity = function
  | Gate.I -> true
  | Gate.Rx a | Gate.Ry a | Gate.Rz a | Gate.P a -> Phase.is_zero a
  | Gate.U (a, b, c) -> Phase.is_zero a && Phase.is_zero b && Phase.is_zero c
  | _ -> false

let op_is_identity = function
  | Circuit.Barrier -> true
  | Circuit.Gate (g, _) | Circuit.Ctrl (_, g, _) -> gate_is_identity g
  | Circuit.Swap _ -> false

(* Deleting op g from A;g;B yields A;B, equivalent to the original iff
   g is proportional to the identity — so picking only non-identity ops
   makes the deletion provably equivalence-breaking. *)
let rebuild_like c ~suffix ops =
  let c' =
    List.fold_left Circuit.add
      (Circuit.create ~name:(Circuit.name c ^ suffix) (Circuit.num_qubits c))
      ops
  in
  let c' = Circuit.with_initial_layout c' (Circuit.initial_layout c) in
  Circuit.with_output_perm c' (Circuit.output_perm c)

let edit_nth ~pred ~edit rng c =
  let ops = Circuit.ops c in
  let total = List.length (List.filter pred ops) in
  if total = 0 then None
  else begin
    let victim = Rng.int rng total in
    let counter = ref (-1) in
    let ops' =
      List.concat_map
        (fun op ->
          if pred op then begin
            incr counter;
            if !counter = victim then edit op else [ op ]
          end
          else [ op ])
        ops
    in
    Some ops'
  end

let is_rotation_op = function
  | Circuit.Gate ((Gate.Rx _ | Gate.Ry _ | Gate.Rz _ | Gate.P _), _)
  | Circuit.Ctrl (_, (Gate.Rx _ | Gate.Ry _ | Gate.Rz _ | Gate.P _), _) ->
      true
  | _ -> false

let perturb_rotation op =
  let bump g =
    let eps = Phase.of_pi_fraction 1 8 in
    match g with
    | Gate.Rx a -> Gate.Rx (Phase.add a eps)
    | Gate.Ry a -> Gate.Ry (Phase.add a eps)
    | Gate.Rz a -> Gate.Rz (Phase.add a eps)
    | Gate.P a -> Gate.P (Phase.add a eps)
    | g -> g
  in
  match op with
  | Circuit.Gate (g, t) -> [ Circuit.Gate (bump g, t) ]
  | Circuit.Ctrl (cs, g, t) -> [ Circuit.Ctrl (cs, bump g, t) ]
  | op -> [ op ]

let perturb_angle ~seed c =
  let rng = Rng.make ~seed in
  match edit_nth ~pred:is_rotation_op ~edit:perturb_rotation rng c with
  | Some ops -> rebuild_like c ~suffix:"-perturbed" ops
  | None -> invalid_arg "Workloads.perturb_angle: no rotation gate"

(* Substitution partners: the partner's 2x2 matrix is never proportional
   to the original's (needed at uncontrolled positions) and never equal
   (needed under controls); [Sxdg] maps to X so a controlled occurrence
   stays printable as QASM. *)
let substitution = function
  | Gate.X -> Some Gate.Y
  | Gate.Y -> Some Gate.Z
  | Gate.Z -> Some Gate.X
  | Gate.H -> Some Gate.X
  | Gate.S -> Some Gate.Sdg
  | Gate.Sdg -> Some Gate.S
  | Gate.T -> Some Gate.Tdg
  | Gate.Tdg -> Some Gate.T
  | Gate.Sx | Gate.Sxdg -> Some Gate.X
  | _ -> None

let is_substitutable_op = function
  | Circuit.Gate (g, _) | Circuit.Ctrl (_, g, _) -> substitution g <> None
  | _ -> false

let substitute_op op =
  match op with
  | Circuit.Gate (g, t) -> (
      match substitution g with Some g' -> [ Circuit.Gate (g', t) ] | None -> [ op ])
  | Circuit.Ctrl (cs, g, t) -> (
      match substitution g with Some g' -> [ Circuit.Ctrl (cs, g', t) ] | None -> [ op ])
  | op -> [ op ]

let substitute_gate ~seed c =
  let rng = Rng.make ~seed in
  match edit_nth ~pred:is_substitutable_op ~edit:substitute_op rng c with
  | Some ops -> rebuild_like c ~suffix:"-substituted" ops
  | None -> invalid_arg "Workloads.substitute_gate: no substitutable gate"

let inject_fault ~seed c =
  let rng = Rng.make ~seed in
  let deletable op = not (op_is_identity op) in
  let is_cnot = function Circuit.Ctrl ([ _ ], Gate.X, _) -> true | _ -> false in
  let attempt = function
    | Missing_gate ->
        Option.map
          (fun ops -> (rebuild_like c ~suffix:"-missing" ops, Missing_gate))
          (edit_nth ~pred:deletable ~edit:(fun _ -> []) rng c)
    | Flipped_cnot ->
        Option.map
          (fun ops -> (rebuild_like c ~suffix:"-flipped" ops, Flipped_cnot))
          (edit_nth ~pred:is_cnot
             ~edit:(function
               | Circuit.Ctrl ([ ctl ], Gate.X, tgt) -> [ Circuit.Ctrl ([ tgt ], Gate.X, ctl) ]
               | op -> [ op ])
             rng c)
    | Perturbed_angle ->
        Option.map
          (fun ops -> (rebuild_like c ~suffix:"-perturbed" ops, Perturbed_angle))
          (edit_nth ~pred:is_rotation_op ~edit:perturb_rotation rng c)
    | Substituted_gate ->
        Option.map
          (fun ops -> (rebuild_like c ~suffix:"-substituted" ops, Substituted_gate))
          (edit_nth ~pred:is_substitutable_op ~edit:substitute_op rng c)
  in
  (* Random preference order, first applicable model wins. *)
  let models = [| Missing_gate; Flipped_cnot; Perturbed_angle; Substituted_gate |] in
  let order = Perm.random (fun k -> Rng.int rng k) (Array.length models) in
  let rec try_from i =
    if i >= Array.length models then None
    else
      match attempt models.(Perm.apply order i) with
      | Some r -> Some r
      | None -> try_from (i + 1)
  in
  try_from 0

let random_basis_state rng n =
  if n > 62 then invalid_arg "Workloads.random_basis_state: use random_bits beyond 62 qubits";
  let r = ref 0 in
  for q = 0 to n - 1 do
    if Rng.bool rng then r := !r lor (1 lsl q)
  done;
  !r

let random_bits rng n = Array.init n (fun _ -> Rng.bool rng)

(* ------------------------------------------------- Streaming generator *)

(* Write a large random Clifford+T circuit directly as QASM text,
   never materialising a {!Circuit.t}: the driver for the streaming
   front end's large-circuit bench tier, where circuits of millions of
   gates must be produced and checked in bounded memory.

   With [twin = true] the same (seed, qubits, gates) stream is written
   with each gate rewritten through an exact local identity chosen by
   the gate index (Hadamard conjugation of CX/CZ, S = T*T, inserted
   gg^-1 pairs).  The twin is provably equivalent by construction, so a
   (base, twin) pair exercises the checker end to end with a known
   verdict and no whole-circuit oracle. *)
let stream_qasm ~seed ~qubits:n ~gates ?(barrier_every = 0) ~twin oc =
  if n < 2 then invalid_arg "Workloads.stream_qasm: need at least 2 qubits";
  let rng = Rng.make ~seed in
  Printf.fprintf oc "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[%d];\n" n;
  let g1 fmt_name q = Printf.fprintf oc "%s q[%d];\n" fmt_name q in
  let g2 fmt_name a b = Printf.fprintf oc "%s q[%d],q[%d];\n" fmt_name a b in
  for i = 0 to gates - 1 do
    (* Matching barriers in base and twin let the streaming checker
       re-synchronise its two cursors: without them, byte-proportional
       alternation drifts like a random walk and the miter grows with
       stream length instead of staying near the identity. *)
    if barrier_every > 0 && i > 0 && i mod barrier_every = 0 then
      Printf.fprintf oc "barrier q;\n";
    let q = Rng.int rng n in
    let p =
      let p = Rng.int rng (n - 1) in
      if p >= q then p + 1 else p
    in
    let kind = Rng.int rng 7 in
    if not twin then begin
      match kind with
      | 0 -> g1 "h" q
      | 1 -> g1 "x" q
      | 2 -> g1 "s" q
      | 3 -> g1 "t" q
      | 4 -> g1 "tdg" q
      | 5 -> g2 "cx" q p
      | _ -> g2 "cz" q p
    end
    else begin
      (* Exact rewrites, cycled by gate index so both density and the
         byte-offset skew vary along the stream. *)
      (match i mod 3 with
      | 0 -> ()
      | 1 ->
          g1 "h" q;
          g1 "h" q
      | _ ->
          g1 "t" p;
          g1 "tdg" p);
      match kind with
      | 0 -> g1 "h" q
      | 1 ->
          (* X = H Z H, Z = S S *)
          g1 "h" q;
          g1 "s" q;
          g1 "s" q;
          g1 "h" q
      | 2 ->
          (* S = T T *)
          g1 "t" q;
          g1 "t" q
      | 3 -> g1 "t" q
      | 4 -> g1 "tdg" q
      | 5 ->
          (* CX(q,p) = H_p CZ(q,p) H_p *)
          g1 "h" p;
          g2 "cz" q p;
          g1 "h" p
      | _ ->
          (* CZ(q,p) = H_p CX(q,p) H_p *)
          g1 "h" p;
          g2 "cx" q p;
          g1 "h" p
    end
  done
