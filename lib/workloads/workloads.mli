(** Benchmark circuit generators for the paper's Table 1.

    Quantum algorithms: GHZ preparation, graph states, QFT, exact quantum
    phase estimation, Grover search and discrete-time quantum random
    walks.  Reversible circuits: ripple-carry adders, modular constant
    adders (the "plus63mod4096" class), random reversible Toffoli networks
    (the "urf" class) and a structured comparator network (the "example2"
    stand-in).  RevLib's original files are not redistributable here, so
    the reversible circuits are generated with comparable structure and
    size — the property the paper's analysis depends on is that they are
    exactly representable over Clifford+T, which these are.

    Error injection produces the "1 Gate Missing" and "Flipped CNOT"
    configurations. *)

open Oqec_base
open Oqec_circuit

(** [ghz n] prepares the n-qubit GHZ state (Fig. 1a). *)
val ghz : int -> Circuit.t

(** [graph_state ~seed n] applies H everywhere and CZ along the edges of a
    random degree-ish-3 graph. *)
val graph_state : seed:int -> int -> Circuit.t

(** [qft ?with_swaps n] is the quantum Fourier transform; [with_swaps]
    (default true) appends the bit-reversal SWAP network. *)
val qft : ?with_swaps:bool -> int -> Circuit.t

(** [qpe_exact ~seed n] is quantum phase estimation with [n] evaluation
    qubits of a phase gate whose angle has an exact [n]-bit binary
    expansion (the paper's "QPE-Exact"); one extra eigenstate qubit. *)
val qpe_exact : seed:int -> int -> Circuit.t

(** [grover ~seed ?iterations n] searches for a random marked element on
    [n] qubits; [iterations] defaults to the optimal
    [pi/4 * sqrt 2^n] count. *)
val grover : ?iterations:int -> seed:int -> int -> Circuit.t

(** [random_walk ~steps n] is a discrete-time quantum walk on a cycle of
    [2^(n-1)] nodes with one coin qubit. *)
val random_walk : steps:int -> int -> Circuit.t

(** [ripple_adder n] adds two [n]-bit registers (CDKM-style with
    majority/unmajority blocks); width is [2n + 2]. *)
val ripple_adder : int -> Circuit.t

(** [const_adder_mod ~bits ~constant] adds a classical constant modulo
    [2^bits] with one multi-controlled ripple increment per set constant
    bit (no ancillas; width is [bits]).  The "plus63mod4096" class
    corresponds to [~bits:12 ~constant:63]. *)
val const_adder_mod : bits:int -> constant:int -> Circuit.t

(** [random_reversible ~seed ~gates n] is a random network of NOT, CNOT,
    Toffoli and C3X gates — the "urf" stand-in. *)
val random_reversible : seed:int -> gates:int -> int -> Circuit.t

(** [comparator n] computes a greater-than comparison of two [n]-bit
    registers into a result qubit (the "example2" stand-in); width is
    [2n + 2]. *)
val comparator : int -> Circuit.t

(** Additional algorithm families beyond the paper's Table 1, used by the
    extended benchmark suite and the examples. *)

(** [bernstein_vazirani ~secret n] recovers an [n]-bit secret with one
    oracle query; width is [n + 1] (ancilla on the top wire). *)
val bernstein_vazirani : secret:int -> int -> Circuit.t

(** [deutsch_jozsa ~seed ~balanced n] distinguishes a constant from a
    balanced oracle; width is [n + 1]. *)
val deutsch_jozsa : seed:int -> balanced:bool -> int -> Circuit.t

(** [w_state n] prepares the n-qubit W state (uniform superposition of
    one-hot basis states). *)
val w_state : int -> Circuit.t

(** [hidden_weighted_bit n] is the reversible hidden-weighted-bit
    benchmark class: the input register is cyclically rotated by its own
    Hamming weight.  Width is [n] plus a [ceil log2 (n+1)]-bit weight
    register (computed and uncomputed in place). *)
val hidden_weighted_bit : int -> Circuit.t

(** [vqe_ansatz ~seed ~layers n] is a hardware-efficient variational
    ansatz: layers of Ry/Rz rotations with uniformly random (non-dyadic)
    angles and a CX entangling ring — the "arbitrary rotation angle"
    region where Section 6.2 locates the DD's numerical fragility. *)
val vqe_ansatz : seed:int -> layers:int -> int -> Circuit.t

(** Error injection (Section 6.1's faulty configurations). *)

(** [remove_gate ~seed c] deletes one random (non-barrier) operation. *)
val remove_gate : seed:int -> Circuit.t -> Circuit.t

(** [flip_cnot ~seed c] exchanges control and target of one random CNOT;
    raises [Invalid_argument] if the circuit has none. *)
val flip_cnot : seed:int -> Circuit.t -> Circuit.t

(** The catalogue of single-fault error models, used by the differential
    fuzzer's equivalence-breaking mutations (each model provably changes
    the circuit's unitary — see the guards on the individual injectors). *)
type fault =
  | Missing_gate  (** one non-identity operation deleted *)
  | Flipped_cnot  (** control and target of one CNOT exchanged *)
  | Perturbed_angle  (** pi/8 added to one rotation angle *)
  | Substituted_gate  (** one discrete gate replaced by a non-equivalent one *)

val fault_to_string : fault -> string

(** [perturb_angle ~seed c] adds pi/8 to one random rotation angle
    (Rx/Ry/Rz/P, controlled or not).  Since pi/8 is not a multiple of
    2*pi, the result is never equivalent to [c], even up to global phase.
    Raises [Invalid_argument] if the circuit has no rotation gate. *)
val perturb_angle : seed:int -> Circuit.t -> Circuit.t

(** [substitute_gate ~seed c] replaces one random discrete single-qubit
    gate (controlled or not) by a fixed non-equivalent partner (X->Y,
    H->X, S->Sdg, ...).  The partner's matrix is never proportional to
    the original's, so the result is never equivalent to [c].  Raises
    [Invalid_argument] if the circuit has no substitutable gate. *)
val substitute_gate : seed:int -> Circuit.t -> Circuit.t

(** [inject_fault ~seed c] draws one applicable fault model at random and
    applies it; [None] when no model applies (e.g. an empty circuit).
    Unlike {!remove_gate}, the [Missing_gate] model here never deletes an
    identity-acting gate (identity gate, zero-angle rotation), so the
    faulty circuit is {e provably} non-equivalent to [c] — the property
    the fuzzer's metamorphic oracle relies on. *)
val inject_fault : seed:int -> Circuit.t -> (Circuit.t * fault) option

(** [random_basis_state rng n] draws a basis-state index for random
    stimuli simulation ([n] at most 62). *)
val random_basis_state : Rng.t -> int -> int

(** [random_bits rng n] draws a basis state as a bit array — usable beyond
    the native-integer width (e.g. the 65-qubit Manhattan register). *)
val random_bits : Rng.t -> int -> bool array

(** [stream_qasm ~seed ~qubits ~gates ?barrier_every ~twin oc] writes a
    random Clifford+T circuit of [gates] operations directly as OpenQASM
    text without materialising a circuit — the generator behind the
    streaming checker's large-circuit bench tier.  With [twin = true]
    the same stream is written with each gate rewritten through an
    exact local identity (plus inserted [g g^-1] pairs), producing a
    provably equivalent partner of different length and byte layout.
    [barrier_every > 0] emits a [barrier] at matching logical positions
    every that many base gates in both outputs; the streaming checker
    uses matching barriers to re-synchronise its cursors, which keeps
    the miter small on arbitrarily long streams. *)
val stream_qasm :
  seed:int -> qubits:int -> gates:int -> ?barrier_every:int -> twin:bool -> out_channel -> unit
