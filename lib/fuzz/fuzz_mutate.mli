(** Metamorphic circuit mutations.

    Each mutation either {e provably} preserves equivalence up to global
    phase (commuting-gate swaps, inverse-pair insertion, SWAP plus
    output-permutation rewiring, rotation-angle splitting) or {e provably}
    breaks it (single-fault injection through
    {!Oqec_workloads.Workloads.inject_fault}).  That proof obligation is
    what turns a mutation into an oracle: a checker contradicting the
    mutation's expectation is a bug with no reference computation needed,
    and the unit tests discharge the obligation against the dense
    semantics. *)

open Oqec_base
open Oqec_circuit

type kind =
  | Commute  (** swap two adjacent ops on disjoint wires (or both diagonal) *)
  | Insert_inverse  (** insert a gate immediately followed by its inverse *)
  | Rewire_swap
      (** append a SWAP and compose the output permutation with the same
          transposition (Fig. 2's layout metadata, exercised for real) *)
  | Split_rotation  (** replace a rotation by two rotations summing to it *)
  | Inject_fault  (** one random single-fault error model — breaks equivalence *)

val all_kinds : kind list

(** The equivalence-preserving subset of {!all_kinds}. *)
val preserving_kinds : kind list

val kind_to_string : kind -> string

(** Whether the mutation preserves equivalence (true) or breaks it. *)
val preserves : kind -> bool

(** [apply kind rng c] is the mutated circuit, or [None] when the
    mutation has no applicable site in [c]. *)
val apply : kind -> Rng.t -> Circuit.t -> Circuit.t option
