(** Greedy counterexample shrinking.

    Reduces a failing circuit pair to a local minimum while the
    [still_fails] predicate (a replay of the differential oracle) keeps
    holding.  Three passes run to a joint fixpoint: one-at-a-time gate
    deletion on either side, whole-qubit removal (all touching gates
    dropped, wires compacted; skipped when layout metadata is present),
    and operation simplification (drop a control, replace a rotation
    angle by pi or pi/2).  Every committed step re-ran the oracle, so the
    shrunk pair provably still exhibits the original class of
    disagreement. *)

open Oqec_circuit

type stats = {
  evaluations : int;  (** oracle replays performed *)
  committed : int;  (** shrinking steps that kept the failure *)
}

(** [shrink ?budget ~still_fails g g'] greedily minimises the pair;
    [budget] caps oracle replays (default 2000).  The returned pair
    fails [still_fails] — the original pair is returned unchanged if it
    does not fail to begin with. *)
val shrink :
  ?budget:int ->
  still_fails:(Circuit.t -> Circuit.t -> bool) ->
  Circuit.t ->
  Circuit.t ->
  Circuit.t * Circuit.t * stats
