(** Random circuit generation from configurable gate-set profiles.

    Every profile draws only gates the QASM writer can print (at most
    four controls, no controlled [Sxdg]) and never emits an
    identity-acting operation (no [I], no zero-angle rotation) — the
    fault injectors rely on that to make gate deletion provably
    equivalence-breaking (see {!Oqec_workloads.Workloads.inject_fault}). *)

open Oqec_base
open Oqec_circuit

type profile =
  | Clifford  (** H, S, Sdg, X, Y, Z, Sx, CX, CZ, SWAP *)
  | Clifford_t  (** Clifford plus T, Tdg, CCX, CCZ *)
  | Rotations
      (** dyadic and occasional float-angle Rx/Ry/Rz/P, CP, CX, H —
          the "arbitrary rotation angle" region of Section 6.2 *)
  | Multi_controlled  (** X, CX, CCX, CCZ, C3X, C4X, SWAP — the "urf" shape *)
  | Mixed  (** union of all profiles, drawn per gate *)

val all_profiles : profile list
val profile_to_string : profile -> string
val profile_of_string : string -> profile option

(** [circuit profile rng ~num_qubits ~gates] draws a random circuit;
    gates needing more wires than [num_qubits] are resampled from a
    narrower family. *)
val circuit : profile -> Rng.t -> num_qubits:int -> gates:int -> Circuit.t
