open Oqec_base
open Oqec_circuit
module Workloads = Oqec_workloads.Workloads

type kind = Commute | Insert_inverse | Rewire_swap | Split_rotation | Inject_fault

let all_kinds = [ Commute; Insert_inverse; Rewire_swap; Split_rotation; Inject_fault ]
let preserving_kinds = [ Commute; Insert_inverse; Rewire_swap; Split_rotation ]

let kind_to_string = function
  | Commute -> "commute"
  | Insert_inverse -> "insert-inverse"
  | Rewire_swap -> "rewire-swap"
  | Split_rotation -> "split-rotation"
  | Inject_fault -> "inject-fault"

let preserves = function Inject_fault -> false | _ -> true

let rebuild_like c ops =
  let c' =
    List.fold_left Circuit.add
      (Circuit.create ~name:(Circuit.name c) (Circuit.num_qubits c))
      ops
  in
  let c' = Circuit.with_initial_layout c' (Circuit.initial_layout c) in
  Circuit.with_output_perm c' (Circuit.output_perm c)

(* ----------------------------------------------------------- Commute *)

let op_diagonal = function
  | Circuit.Gate (g, _) | Circuit.Ctrl (_, g, _) -> Gate.is_diagonal g
  | Circuit.Swap _ | Circuit.Barrier -> false

(* Two adjacent operations may be exchanged when they touch disjoint
   wires (tensor factors commute) or when both are diagonal in the
   computational basis (diagonal matrices commute). *)
let commutes a b =
  match (a, b) with
  | Circuit.Barrier, _ | _, Circuit.Barrier -> false
  | _ ->
      let qa = Circuit.op_qubits a and qb = Circuit.op_qubits b in
      List.for_all (fun q -> not (List.mem q qb)) qa || (op_diagonal a && op_diagonal b)

let commute rng c =
  let ops = Circuit.ops_array c in
  let sites = ref [] in
  for i = 0 to Array.length ops - 2 do
    if commutes ops.(i) ops.(i + 1) && not (Circuit.equal_op ops.(i) ops.(i + 1)) then
      sites := i :: !sites
  done;
  match !sites with
  | [] -> None
  | sites ->
      let sites = Array.of_list sites in
      let i = sites.(Rng.int rng (Array.length sites)) in
      let tmp = ops.(i) in
      ops.(i) <- ops.(i + 1);
      ops.(i + 1) <- tmp;
      Some (rebuild_like c (Array.to_list ops))

(* ---------------------------------------------------- Insert_inverse *)

(* Gates whose [Circuit.inverse_op] is the exact matrix inverse (up to
   global phase): discrete single-qubit gates, single-qubit rotations,
   CX/CZ and SWAP.  Controlled rotations are excluded (see the
   [Circuit.inverse_op] caveat about the 4*pi rotation period). *)
let insertable rng n =
  let q = Rng.int rng n in
  match Rng.int rng 9 with
  | 0 -> Circuit.Gate (Gate.H, q)
  | 1 -> Circuit.Gate (Gate.S, q)
  | 2 -> Circuit.Gate (Gate.X, q)
  | 3 -> Circuit.Gate (Gate.T, q)
  | 4 -> Circuit.Gate (Gate.Rz (Phase.of_pi_fraction (1 + Rng.int rng 15) 8), q)
  | 5 -> Circuit.Gate (Gate.Ry (Phase.of_pi_fraction (1 + Rng.int rng 15) 8), q)
  | k when n < 2 -> Circuit.Gate ((if k land 1 = 0 then Gate.H else Gate.S), q)
  | 6 | 7 ->
      let q2 = (q + 1 + Rng.int rng (n - 1)) mod n in
      Circuit.Ctrl ([ q ], (if Rng.bool rng then Gate.X else Gate.Z), q2)
  | _ ->
      let q2 = (q + 1 + Rng.int rng (n - 1)) mod n in
      Circuit.Swap (q, q2)

let insert_inverse rng c =
  let ops = Circuit.ops c in
  let pos = Rng.int rng (List.length ops + 1) in
  let op = insertable rng (Circuit.num_qubits c) in
  let rec splice i = function
    | rest when i = pos -> op :: Circuit.inverse_op op :: rest
    | [] -> []
    | o :: rest -> o :: splice (i + 1) rest
  in
  Some (rebuild_like c (splice 0 ops))

(* ------------------------------------------------------- Rewire_swap *)

(* Appending SWAP(a,b) moves whatever ended on wire a to wire b and vice
   versa; composing the output permutation with the same transposition
   (logical q is now measured on wire t(p(q))) keeps the effective
   unitary unchanged. *)
let rewire_swap rng c =
  let n = Circuit.num_qubits c in
  if n < 2 then None
  else begin
    let a = Rng.int rng n in
    let b = (a + 1 + Rng.int rng (n - 1)) mod n in
    let p = match Circuit.output_perm c with Some p -> p | None -> Perm.id n in
    let t = Perm.swap (Perm.id n) a b in
    let c' = Circuit.swap c a b in
    Some (Circuit.with_output_perm c' (Some (Perm.compose t p)))
  end

(* --------------------------------------------------- Split_rotation *)

(* Rz(a1) Rz(a2) = Rz(a1+a2), and likewise for Rx/Ry/P and controlled
   phases (all exactly; for rotations the 2*pi-canonical sum can differ
   from the true sum by a global phase of -1, which equivalence modulo
   global phase absorbs). *)
let split_site rng op =
  let split mk a =
    let rec pick tries =
      let a1 = Phase.of_pi_fraction (1 + Rng.int rng 31) 16 in
      let a2 = Phase.sub a a1 in
      if (Phase.is_zero a1 || Phase.is_zero a2) && tries < 8 then pick (tries + 1)
      else (mk a1, mk a2)
    in
    let o1, o2 = pick 0 in
    Some [ o1; o2 ]
  in
  match op with
  | Circuit.Gate (Gate.Rx a, t) -> split (fun x -> Circuit.Gate (Gate.Rx x, t)) a
  | Circuit.Gate (Gate.Ry a, t) -> split (fun x -> Circuit.Gate (Gate.Ry x, t)) a
  | Circuit.Gate (Gate.Rz a, t) -> split (fun x -> Circuit.Gate (Gate.Rz x, t)) a
  | Circuit.Gate (Gate.P a, t) -> split (fun x -> Circuit.Gate (Gate.P x, t)) a
  | Circuit.Ctrl (cs, Gate.P a, t) -> split (fun x -> Circuit.Ctrl (cs, Gate.P x, t)) a
  | _ -> None

let split_rotation rng c =
  let ops = Circuit.ops_array c in
  let sites = ref [] in
  Array.iteri (fun i op -> if split_site rng op <> None then sites := i :: !sites) ops;
  match !sites with
  | [] -> None
  | site_list ->
      let arr = Array.of_list site_list in
      let i = arr.(Rng.int rng (Array.length arr)) in
      let replacement = Option.get (split_site rng ops.(i)) in
      let ops' =
        Array.to_list ops
        |> List.mapi (fun j op -> if j = i then replacement else [ op ])
        |> List.concat
      in
      Some (rebuild_like c ops')

(* ------------------------------------------------------ Inject_fault *)

let inject_fault rng c =
  Option.map fst (Workloads.inject_fault ~seed:(Rng.int rng 1_000_000) c)

let apply kind rng c =
  match kind with
  | Commute -> commute rng c
  | Insert_inverse -> insert_inverse rng c
  | Rewire_swap -> rewire_swap rng c
  | Split_rotation -> split_rotation rng c
  | Inject_fault -> inject_fault rng c
