open Oqec_base
open Oqec_circuit

type profile = Clifford | Clifford_t | Rotations | Multi_controlled | Mixed

let all_profiles = [ Clifford; Clifford_t; Rotations; Multi_controlled; Mixed ]

let profile_to_string = function
  | Clifford -> "clifford"
  | Clifford_t -> "clifford+t"
  | Rotations -> "rotations"
  | Multi_controlled -> "mcx"
  | Mixed -> "mixed"

let profile_of_string = function
  | "clifford" -> Some Clifford
  | "clifford+t" | "clifford-t" | "cliffordt" -> Some Clifford_t
  | "rotations" -> Some Rotations
  | "mcx" | "multi-controlled" -> Some Multi_controlled
  | "mixed" -> Some Mixed
  | _ -> None

(* k distinct wires out of n (k <= n). *)
let distinct rng n k =
  let picked = Array.make k (-1) in
  for i = 0 to k - 1 do
    let rec draw () =
      let q = Rng.int rng n in
      if Array.exists (( = ) q) picked then draw () else q
    in
    picked.(i) <- draw ()
  done;
  Array.to_list picked

(* Non-zero dyadic angle k*pi/16, k in 1..31. *)
let dyadic_angle rng = Phase.of_pi_fraction (1 + Rng.int rng 31) 16

(* Mostly dyadic with an occasional arbitrary float angle (kept away
   from 0 so the gate is never the identity). *)
let rotation_angle rng =
  if Rng.int rng 8 = 0 then Phase.of_float (0.05 +. Rng.float rng (2.0 *. Float.pi -. 0.1))
  else dyadic_angle rng

let clifford_op rng n =
  let q = Rng.int rng n in
  match Rng.int rng 12 with
  | 0 -> Circuit.Gate (Gate.H, q)
  | 1 -> Circuit.Gate (Gate.S, q)
  | 2 -> Circuit.Gate (Gate.Sdg, q)
  | 3 -> Circuit.Gate (Gate.X, q)
  | 4 -> Circuit.Gate (Gate.Y, q)
  | 5 -> Circuit.Gate (Gate.Z, q)
  | 6 -> Circuit.Gate (Gate.Sx, q)
  | k when n < 2 -> Circuit.Gate ((if k land 1 = 0 then Gate.H else Gate.S), q)
  | 7 | 8 -> (
      match distinct rng n 2 with [ a; b ] -> Circuit.Ctrl ([ a ], Gate.X, b) | _ -> assert false)
  | 9 | 10 -> (
      match distinct rng n 2 with [ a; b ] -> Circuit.Ctrl ([ a ], Gate.Z, b) | _ -> assert false)
  | _ -> (
      match distinct rng n 2 with [ a; b ] -> Circuit.Swap (a, b) | _ -> assert false)

let clifford_t_op rng n =
  match Rng.int rng 8 with
  | 0 -> Circuit.Gate (Gate.T, Rng.int rng n)
  | 1 -> Circuit.Gate (Gate.Tdg, Rng.int rng n)
  | 2 when n >= 3 -> (
      match distinct rng n 3 with
      | [ a; b; t ] -> Circuit.Ctrl ([ a; b ], Gate.X, t)
      | _ -> assert false)
  | 3 when n >= 3 -> (
      match distinct rng n 3 with
      | [ a; b; t ] -> Circuit.Ctrl ([ a; b ], Gate.Z, t)
      | _ -> assert false)
  | _ -> clifford_op rng n

let rotations_op rng n =
  let q = Rng.int rng n in
  match Rng.int rng 8 with
  | 0 -> Circuit.Gate (Gate.Rx (rotation_angle rng), q)
  | 1 -> Circuit.Gate (Gate.Ry (rotation_angle rng), q)
  | 2 -> Circuit.Gate (Gate.Rz (rotation_angle rng), q)
  | 3 -> Circuit.Gate (Gate.P (rotation_angle rng), q)
  | 4 -> Circuit.Gate (Gate.H, q)
  | k when n < 2 -> Circuit.Gate ((if k land 1 = 0 then Gate.H else Gate.Rz (dyadic_angle rng)), q)
  | 5 | 6 -> (
      match distinct rng n 2 with [ a; b ] -> Circuit.Ctrl ([ a ], Gate.X, b) | _ -> assert false)
  | _ -> (
      match distinct rng n 2 with
      | [ a; b ] -> Circuit.Ctrl ([ a ], Gate.P (dyadic_angle rng), b)
      | _ -> assert false)

let multi_controlled_op rng n =
  let mcx k =
    match distinct rng n (k + 1) with
    | t :: cs -> Circuit.Ctrl (cs, Gate.X, t)
    | [] -> assert false
  in
  match Rng.int rng 10 with
  | 0 -> Circuit.Gate (Gate.X, Rng.int rng n)
  | 1 | 2 when n >= 2 -> mcx 1
  | 3 | 4 | 5 when n >= 3 -> mcx 2
  | 6 when n >= 3 -> (
      match distinct rng n 3 with
      | [ a; b; t ] -> Circuit.Ctrl ([ a; b ], Gate.Z, t)
      | _ -> assert false)
  | 7 when n >= 4 -> mcx 3
  | 8 when n >= 5 -> mcx 4
  | 9 when n >= 2 -> (
      match distinct rng n 2 with [ a; b ] -> Circuit.Swap (a, b) | _ -> assert false)
  | _ -> if n >= 2 then mcx 1 else Circuit.Gate (Gate.X, Rng.int rng n)

let rec op_of_profile profile rng n =
  match profile with
  | Clifford -> clifford_op rng n
  | Clifford_t -> clifford_t_op rng n
  | Rotations -> rotations_op rng n
  | Multi_controlled -> multi_controlled_op rng n
  | Mixed ->
      let p =
        match Rng.int rng 4 with
        | 0 -> Clifford
        | 1 -> Clifford_t
        | 2 -> Rotations
        | _ -> Multi_controlled
      in
      op_of_profile p rng n

let circuit profile rng ~num_qubits ~gates =
  if num_qubits < 1 then invalid_arg "Fuzz_gen.circuit: need at least one qubit";
  let name = Printf.sprintf "fuzz-%s-%d" (profile_to_string profile) num_qubits in
  let c = ref (Circuit.create ~name num_qubits) in
  for _ = 1 to gates do
    c := Circuit.add !c (op_of_profile profile rng num_qubits)
  done;
  !c
