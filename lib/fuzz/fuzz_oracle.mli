(** The differential oracle: every checker, one verdict, zero tolerated
    disagreement.

    Runs the canonical checker set ({!Oqec_qcec.Qcec.oracle_checkers} —
    alternating DD, ZX rewriting, random-stimuli simulation, stabilizer
    tableau) on a circuit pair through {!Oqec_qcec.Engine.run_worker},
    plus the dense-matrix reference for small widths, and flags any
    violation of the checkers' soundness contracts:

    - [dd]: complete — a conclusive verdict must match the truth;
    - [zx]: sound both ways — [Equivalent] and [Not_equivalent] are
      proofs, [No_information] is always allowed;
    - [sim]: refutation only — [Not_equivalent] is a proof;
    - [stab]: complete on the Clifford fragment — a conclusive verdict
      must match the truth.

    With a metamorphic expectation ({!Expect_equivalent} /
    {!Expect_not_equivalent} from a provably preserving / breaking
    mutation) violations are detected even beyond the dense reference's
    reach: any conclusive verdict contradicting the expectation, or any
    two checkers giving opposite conclusive verdicts, is a bug by
    construction (the paper's two-paradigm redundancy as a standing
    correctness harness). *)

open Oqec_circuit

type expected = Expect_equivalent | Expect_not_equivalent | Expect_unknown

val expected_to_string : expected -> string
val expected_of_string : string -> expected option

type verdict = {
  checker : string;
  outcome : Oqec_qcec.Equivalence.outcome;
  elapsed : float;
  certificate : Oqec_cert.Cert.t option;
      (** the artifact the checker attached to its verdict, if any *)
  cert_error : string option;
      (** why the independent validator rejected it ([None] = valid or
          no certificate); any [Some] is reported as a violation *)
}

type result = {
  verdicts : verdict list;
  truth : bool option;  (** dense-reference equivalence, when width allows *)
  violation : string option;  (** human-readable description of the first violation *)
}

(** Width limit for the dense-matrix reference (8 qubits). *)
val dense_max_qubits : int

(** Hidden test hook: when set to a checker name ([dd], [zx], [sim] or
    [stab]), that checker's verdict is deliberately corrupted (conclusive
    verdicts flipped, [No_information] promoted to [Equivalent]) before
    the soundness contracts are evaluated — a known-buggy checker for
    validating that the oracle, shrinker and corpus actually catch
    disagreements end to end.  Read once at the start of each {!run}
    (never mid-run, so concurrent runs cannot tear).  Driven by the
    [OQEC_FUZZ_BREAK] environment variable in the CLI. *)
val break_hook : string option Atomic.t

(** [run ?timeout ?checkers ?seed ~expected g g'] runs every (selected)
    checker under its own engine context.  [timeout] is per checker
    (default 10 s; timeouts are never violations); [checkers] restricts
    the set by name; [dd_core] selects the DD package representation
    for the DD-based checkers (default boxed); [seed] feeds the
    simulation stimuli. *)
val run :
  ?timeout:float ->
  ?checkers:string list ->
  ?dd_core:Oqec_dd.Dd_core.kind ->
  ?seed:int ->
  expected:expected ->
  Circuit.t ->
  Circuit.t ->
  result

(** The stimulus index of the first witness certificate among the
    verdicts — the refuting stimulus the corpus records so a replay can
    re-check it directly instead of re-searching the stream. *)
val refuting_stimulus : result -> int option
