(** Differential fuzzing driver.

    Ties the subsystem together: deterministic case generation
    ({!Fuzz_gen} + {!Fuzz_mutate} + fault injection from
    [Oqec_workloads]), the differential oracle ({!Fuzz_oracle}), greedy
    shrinking ({!Fuzz_shrink}) and the persistent regression corpus
    ({!Fuzz_corpus}).

    Reproducibility contract: case [i] under seed [s] is a pure function
    of [(s, i)] — the per-case generator is [Rng.split_at (Rng.make
    ~seed:s) i], so any failing case can be replayed alone with
    [oqec fuzz --seed s --only i] and identical flags. *)

open Oqec_circuit

type config = {
  profile : Fuzz_gen.profile;
  runs : int;
  max_qubits : int;  (** widths are drawn in [2, max_qubits] *)
  max_gates : int;  (** base-circuit sizes are drawn in [1, max_gates] *)
  seed : int;
  shrink : bool;  (** minimise failing pairs before persisting *)
  corpus : string option;  (** corpus directory: replay + persist *)
  only : int option;  (** replay a single case index *)
  timeout : float;  (** per-checker timeout in seconds *)
  checkers : string list option;  (** restrict the oracle's checker set *)
  dd_core : Oqec_dd.Dd_core.kind option;  (** DD package representation *)
}

val default_config : config

(** One generated case: the pair, the provable expectation, and the
    mutation/fault provenance. *)
type case = {
  index : int;
  left : Circuit.t;
  right : Circuit.t;
  expected : Fuzz_oracle.expected;
  mutations : string list;  (** preserving mutations applied, in order *)
  fault : string option;  (** breaking fault injected last, if any *)
}

(** [generate_case config i] is deterministic in [(config, i)]. *)
val generate_case : config -> int -> case

type violation = {
  v_source : string;  (** ["case <i>"] or ["corpus <id>"] *)
  v_description : string;
  v_repro : string;  (** shell command replaying the case *)
  v_gates : int;  (** total ops across the (possibly shrunk) pair *)
  v_saved : string option;  (** corpus id when newly persisted *)
}

type stats = {
  cases : int;
  failures : int;  (** generated cases with an oracle violation *)
  corpus_replayed : int;
  corpus_failures : int;
  corpus_new : int;  (** counterexamples persisted by this run *)
  mutations_applied : int;
  faults_injected : int;
  shrink_evaluations : int;  (** oracle replays spent shrinking *)
  violations : violation list;
  elapsed : float;
}

(** [run ?log config] replays the corpus (when configured), then runs
    the generated cases, shrinking and persisting counterexamples.
    [log] receives human-readable progress lines (violations and their
    repro commands). *)
val run : ?log:(string -> unit) -> config -> stats

(** One-line JSON report ([schema] field: ["oqec-fuzz/1"]). *)
val stats_to_json : config -> stats -> string
