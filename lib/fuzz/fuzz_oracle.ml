open Oqec_base
open Oqec_circuit
open Oqec_qcec

type expected = Expect_equivalent | Expect_not_equivalent | Expect_unknown

let expected_to_string = function
  | Expect_equivalent -> "equivalent"
  | Expect_not_equivalent -> "not_equivalent"
  | Expect_unknown -> "unknown"

let expected_of_string = function
  | "equivalent" -> Some Expect_equivalent
  | "not_equivalent" -> Some Expect_not_equivalent
  | "unknown" -> Some Expect_unknown
  | _ -> None

type verdict = {
  checker : string;
  outcome : Equivalence.outcome;
  elapsed : float;
  certificate : Oqec_cert.Cert.t option;
  cert_error : string option;
}

type result = {
  verdicts : verdict list;
  truth : bool option;
  violation : string option;
}

let dense_max_qubits = 8

(* Read once per {!run} into [sabotage] below: the oracle may be driven
   from several domains at once and must never observe a mid-run flip. *)
let break_hook : string option Atomic.t = Atomic.make None

(* The deliberate corruption applied by the test hook: conclusive
   verdicts flip, an inconclusive one becomes a (false) equivalence
   proof, so the broken checker disagrees on essentially every pair. *)
let corrupt = function
  | Equivalence.Equivalent -> Equivalence.Not_equivalent
  | Equivalence.Not_equivalent -> Equivalence.Equivalent
  | Equivalence.No_information -> Equivalence.Equivalent
  | Equivalence.Timed_out -> Equivalence.Timed_out

let run_one ~timeout ~seed ~sabotage checker_name checker g g' =
  let deadline = Mclock.now () +. timeout in
  let ctx = Engine.Ctx.make ~deadline ~sim_runs:16 ~seed () in
  let t0 = Mclock.now () in
  let outcome, certificate =
    match Engine.run_worker ctx checker g g' with
    | v -> (v.Engine.outcome, v.Engine.certificate)
    | exception Equivalence.Cancelled -> (Equivalence.Timed_out, None)
  in
  let outcome = if sabotage = Some checker_name then corrupt outcome else outcome in
  (* Cross-check: every attached certificate is replayed through the
     independent validator, so an engine whose verdict and artifact
     drift apart is caught even when every checker agrees. *)
  let cert_error =
    match certificate with
    | None -> None
    | Some c -> (
        match Oqec_cert.Cert_validate.validate c with
        | Ok () -> None
        | Error e -> Some e)
  in
  { checker = checker_name; outcome; elapsed = Mclock.now () -. t0; certificate; cert_error }

(* Soundness contract of one checker against the dense truth. *)
let sound_vs_truth name truth outcome =
  match (name, outcome) with
  | _, Equivalence.Timed_out -> true
  | ("dd" | "stab"), (Equivalence.Equivalent | Equivalence.Not_equivalent) ->
      outcome = if truth then Equivalence.Equivalent else Equivalence.Not_equivalent
  | ("dd" | "stab"), Equivalence.No_information -> true
  | "zx", Equivalence.Equivalent -> truth
  | "zx", Equivalence.Not_equivalent -> not truth
  | "sim", Equivalence.Not_equivalent -> not truth
  | "sim", Equivalence.Equivalent -> truth
  | _, _ -> true

(* A conclusive verdict is a proof for every checker in the oracle set,
   so it may be judged against a metamorphic expectation directly. *)
let sound_vs_expected expected outcome =
  match (expected, outcome) with
  | Expect_equivalent, Equivalence.Not_equivalent -> false
  | Expect_not_equivalent, Equivalence.Equivalent -> false
  | _ -> true

let describe fmt = Printf.sprintf fmt

let find_violation ~expected ~truth verdicts =
  let conclusive v =
    v.outcome = Equivalence.Equivalent || v.outcome = Equivalence.Not_equivalent
  in
  let out v = Equivalence.outcome_to_string v.outcome in
  (* 0. certificate validation: an attached artifact that fails the
     independent replay is a bug in the emitting engine regardless of
     what the other checkers think. *)
  let certificate_invalid =
    List.find_map
      (fun v ->
        Option.map
          (fun e ->
            describe "%s attached a certificate that fails independent validation: %s"
              v.checker e)
          v.cert_error)
      verdicts
  in
  (* 1. metamorphic expectation vs dense truth: a mismatch means the
     mutation's proof obligation (or the circuit library under it) is
     broken — also a bug, reported distinctly. *)
  let expectation_vs_truth =
    match (expected, truth) with
    | Expect_equivalent, Some false ->
        Some
          "metamorphic violation: mutation chain claims equivalence but the dense \
           reference refutes it"
    | Expect_not_equivalent, Some true ->
        Some
          "metamorphic violation: fault injection claims non-equivalence but the dense \
           reference proves equivalence"
    | _ -> None
  in
  (* 2. each checker against the dense truth. *)
  let checker_vs_truth =
    match truth with
    | None -> None
    | Some t ->
        List.find_map
          (fun v ->
            if sound_vs_truth v.checker t v.outcome then None
            else
              Some
                (describe "%s said %s but the dense reference says %s" v.checker (out v)
                   (if t then "equivalent" else "not equivalent")))
          verdicts
  in
  (* 3. each checker against the metamorphic expectation. *)
  let checker_vs_expected =
    List.find_map
      (fun v ->
        if sound_vs_expected expected v.outcome then None
        else
          Some
            (describe "%s said %s on a pair the mutation chain proves %s" v.checker (out v)
               (expected_to_string expected)))
      verdicts
  in
  (* 4. two checkers with opposite conclusive verdicts — the paper's
     two-paradigm disagreement, detectable at any width. *)
  let checker_vs_checker =
    let conclusives = List.filter conclusive verdicts in
    List.find_map
      (fun a ->
        List.find_map
          (fun b ->
            if a.outcome <> b.outcome then
              Some (describe "%s said %s but %s said %s" a.checker (out a) b.checker (out b))
            else None)
          conclusives)
      conclusives
  in
  List.find_map Fun.id
    [
      certificate_invalid;
      expectation_vs_truth;
      checker_vs_truth;
      checker_vs_expected;
      checker_vs_checker;
    ]

let run ?(timeout = 10.0) ?checkers ?dd_core ?(seed = 1) ~expected g g' =
  let selected =
    match checkers with
    | None -> Qcec.oracle_checkers ?dd_core ()
    | Some names ->
        List.filter (fun (n, _, _) -> List.mem n names) (Qcec.oracle_checkers ?dd_core ())
  in
  let sabotage = Atomic.get break_hook in
  let verdicts =
    List.map
      (fun (name, _, checker) -> run_one ~timeout ~seed ~sabotage name checker g g')
      selected
  in
  let truth =
    if
      Circuit.num_qubits g <= dense_max_qubits
      && Circuit.num_qubits g' <= dense_max_qubits
    then
      (* Widen the narrower circuit first, exactly as the checkers do:
         compiled circuits legitimately use more wires than their
         originals. *)
      let a, b = Flatten.align g g' in
      Some (Unitary.equivalent a b)
    else None
  in
  { verdicts; truth; violation = find_violation ~expected ~truth verdicts }

let refuting_stimulus result =
  List.find_map
    (fun v ->
      match v.certificate with
      | Some (Oqec_cert.Cert.Witness { index; _ }) -> Some index
      | Some (Oqec_cert.Cert.Zx_proof _) | None -> None)
    result.verdicts
