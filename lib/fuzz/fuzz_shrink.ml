open Oqec_base
open Oqec_circuit

type stats = { evaluations : int; committed : int }

let rebuild base ops =
  let c =
    List.fold_left Circuit.add
      (Circuit.create ~name:(Circuit.name base) (Circuit.num_qubits base))
      ops
  in
  let c = Circuit.with_initial_layout c (Circuit.initial_layout base) in
  Circuit.with_output_perm c (Circuit.output_perm base)

(* ------------------------------------------------------- Gate deletion *)

let delete_pass eval (c1, c2) =
  let changed = ref false in
  let shrink_side ~left this other =
    let ops = ref (Circuit.ops this) in
    let i = ref (List.length !ops - 1) in
    while !i >= 0 do
      let cand_ops = List.filteri (fun j _ -> j <> !i) !ops in
      let cand = rebuild this cand_ops in
      let pair = if left then (cand, other) else (other, cand) in
      if eval (fst pair) (snd pair) then begin
        ops := cand_ops;
        changed := true
      end;
      decr i
    done;
    rebuild this !ops
  in
  (* Shrink the derived side first: it usually carries the mutation. *)
  let c2 = shrink_side ~left:false c2 c1 in
  let c1 = shrink_side ~left:true c1 c2 in
  ((c1, c2), !changed)

(* ------------------------------------------------------- Qubit removal *)

let drop_qubit q c =
  let n = Circuit.num_qubits c in
  let keep op = not (List.mem q (Circuit.op_qubits op)) in
  let remap w = if w > q then w - 1 else w in
  let remap_op = function
    | Circuit.Gate (g, t) -> Circuit.Gate (g, remap t)
    | Circuit.Ctrl (cs, g, t) -> Circuit.Ctrl (List.map remap cs, g, remap t)
    | Circuit.Swap (a, b) -> Circuit.Swap (remap a, remap b)
    | Circuit.Barrier -> Circuit.Barrier
  in
  List.fold_left Circuit.add
    (Circuit.create ~name:(Circuit.name c) (n - 1))
    (List.filter_map (fun op -> if keep op then Some (remap_op op) else None) (Circuit.ops c))

let no_layout c = Circuit.initial_layout c = None && Circuit.output_perm c = None

let qubit_pass eval (c1, c2) =
  let changed = ref false in
  let pair = ref (c1, c2) in
  if no_layout c1 && no_layout c2 then begin
    let q = ref (Circuit.num_qubits (fst !pair) - 1) in
    while !q >= 0 && Circuit.num_qubits (fst !pair) > 1 do
      let a, b = !pair in
      let cand = (drop_qubit !q a, drop_qubit !q b) in
      if eval (fst cand) (snd cand) then begin
        pair := cand;
        changed := true
      end;
      decr q
    done
  end;
  (!pair, !changed)

(* ------------------------------------------------ Op simplification *)

(* Simpler replacements for one operation: fewer controls, or a rotation
   angle snapped to pi / pi/2 (the shallow end of the angle lattice). *)
let simpler_ops op =
  let angle_candidates mk a =
    List.filter_map
      (fun a' -> if Phase.equal a a' then None else Some (mk a'))
      [ Phase.pi; Phase.half_pi ]
  in
  match op with
  | Circuit.Ctrl (_ :: (_ :: _ as rest), g, t) ->
      [ Circuit.Ctrl (rest, g, t) ]
  | Circuit.Ctrl ([ _ ], Gate.P a, t) ->
      Circuit.Gate (Gate.P a, t) :: angle_candidates (fun x -> Circuit.Gate (Gate.P x, t)) a
  | Circuit.Ctrl ([ _ ], g, t) -> [ Circuit.Gate (g, t) ]
  | Circuit.Gate (Gate.Rx a, t) -> angle_candidates (fun x -> Circuit.Gate (Gate.Rx x, t)) a
  | Circuit.Gate (Gate.Ry a, t) -> angle_candidates (fun x -> Circuit.Gate (Gate.Ry x, t)) a
  | Circuit.Gate (Gate.Rz a, t) -> angle_candidates (fun x -> Circuit.Gate (Gate.Rz x, t)) a
  | Circuit.Gate (Gate.P a, t) -> angle_candidates (fun x -> Circuit.Gate (Gate.P x, t)) a
  | _ -> []

let simplify_pass eval (c1, c2) =
  let changed = ref false in
  let simplify_side ~left this other =
    let ops = ref (Array.of_list (Circuit.ops this)) in
    Array.iteri
      (fun i op ->
        List.iter
          (fun op' ->
            if Circuit.equal_op !ops.(i) op then begin
              let cand_ops = Array.copy !ops in
              cand_ops.(i) <- op';
              let cand = rebuild this (Array.to_list cand_ops) in
              let pair = if left then (cand, other) else (other, cand) in
              if eval (fst pair) (snd pair) then begin
                ops := cand_ops;
                changed := true
              end
            end)
          (simpler_ops op))
      !ops;
    rebuild this (Array.to_list !ops)
  in
  let c2 = simplify_side ~left:false c2 c1 in
  let c1 = simplify_side ~left:true c1 c2 in
  ((c1, c2), !changed)

(* ---------------------------------------------------------- Fixpoint *)

let shrink ?(budget = 2000) ~still_fails c1 c2 =
  let evaluations = ref 0 and committed = ref 0 in
  let remaining = ref budget in
  let eval a b =
    if !remaining <= 0 then false
    else begin
      decr remaining;
      incr evaluations;
      let r = still_fails a b in
      if r then incr committed;
      r
    end
  in
  if not (eval c1 c2) then (c1, c2, { evaluations = !evaluations; committed = 0 })
  else begin
    (* The initial replay confirmed the failure; it is not a step. *)
    committed := 0;
    let pair = ref (c1, c2) in
    let continue = ref true in
    while !continue && !remaining > 0 do
      let p1, ch1 = delete_pass eval !pair in
      let p2, ch2 = qubit_pass eval p1 in
      let p3, ch3 = simplify_pass eval p2 in
      pair := p3;
      continue := ch1 || ch2 || ch3
    done;
    let a, b = !pair in
    (a, b, { evaluations = !evaluations; committed = !committed })
  end
