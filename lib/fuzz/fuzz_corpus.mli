(** Persistent regression corpus of shrunk counterexamples.

    A corpus directory holds QASM pairs ([<id>-a.qasm], [<id>-b.qasm])
    plus a [MANIFEST.jsonl] with one JSON object per line describing
    each entry (id, expected relation, provenance).  Every fuzz run
    replays the whole corpus through the differential oracle before
    generating new cases, so a disagreement fixed once stays fixed. *)

open Oqec_circuit

type entry = {
  id : string;
  expected : Fuzz_oracle.expected;
      (** the ground-truth relation of the pair, re-checked on replay *)
  seed : int;  (** fuzz seed that produced the entry; [-1] when unknown *)
  index : int;  (** case index under that seed; [-1] when unknown *)
  stimulus : int option;
      (** for witness pairs: the stimulus index (under [seed]) that
          refuted the pair, so replays re-check it directly instead of
          re-searching the stimulus stream; absent in older manifests *)
  note : string;  (** free-form provenance (violation description) *)
}

val manifest_path : string -> string

(** [pair_paths dir entry] is the pair of QASM file paths. *)
val pair_paths : string -> entry -> string * string

(** [entry_to_json e] is the one-line manifest encoding. *)
val entry_to_json : entry -> string

(** Content-derived identifier (FNV-1a over both QASM texts), used to
    deduplicate corpus entries. *)
val id_of_pair : Circuit.t -> Circuit.t -> string

(** [load dir] parses the manifest; [[]] when the directory or manifest
    does not exist.  Malformed lines are skipped. *)
val load : string -> entry list

(** [save ~dir entry g g'] writes the pair and appends the manifest line,
    creating the directory if needed; [false] (and no write) when the id
    is already present. *)
val save : dir:string -> entry -> Circuit.t -> Circuit.t -> bool

(** [load_pair dir entry] reads the entry's circuits back. *)
val load_pair : string -> entry -> Circuit.t * Circuit.t
