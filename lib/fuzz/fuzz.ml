open Oqec_base
open Oqec_circuit
module Workloads = Oqec_workloads.Workloads
module Equivalence = Oqec_qcec.Equivalence

type config = {
  profile : Fuzz_gen.profile;
  runs : int;
  max_qubits : int;
  max_gates : int;
  seed : int;
  shrink : bool;
  corpus : string option;
  only : int option;
  timeout : float;
  checkers : string list option;
  dd_core : Oqec_dd.Dd_core.kind option;
}

let default_config =
  {
    profile = Fuzz_gen.Mixed;
    runs = 100;
    max_qubits = 6;
    max_gates = 24;
    seed = 1;
    shrink = false;
    corpus = None;
    only = None;
    timeout = 10.0;
    checkers = None;
    dd_core = None;
  }

type case = {
  index : int;
  left : Circuit.t;
  right : Circuit.t;
  expected : Fuzz_oracle.expected;
  mutations : string list;
  fault : string option;
}

(* ------------------------------------------------------ Case generation *)

(* Case [i] draws everything from [split_at root i]: the parent never
   advances, so cases are independent and each is replayable from
   (seed, index) alone. *)
let generate_case config index =
  let root = Rng.make ~seed:config.seed in
  let case_rng = Rng.split_at root index in
  let rng_plan = Rng.split_at case_rng 0 in
  let rng_gen = Rng.split_at case_rng 1 in
  let rng_mut = Rng.split_at case_rng 2 in
  let max_qubits = max 2 config.max_qubits in
  let num_qubits = 2 + Rng.int rng_plan (max_qubits - 1) in
  let gates = 1 + Rng.int rng_plan (max 1 config.max_gates) in
  let left = Fuzz_gen.circuit config.profile rng_gen ~num_qubits ~gates in
  if Rng.int rng_plan 10 = 0 then
    (* Unrelated pair: no provable relation, pure inter-checker check. *)
    let gates' = 1 + Rng.int rng_plan (max 1 config.max_gates) in
    let right =
      Fuzz_gen.circuit config.profile (Rng.split_at case_rng 3) ~num_qubits ~gates:gates'
    in
    { index; left; right; expected = Fuzz_oracle.Expect_unknown; mutations = []; fault = None }
  else begin
    let right = ref left in
    let mutations = ref [] in
    let kinds = Fuzz_mutate.preserving_kinds in
    for _ = 1 to Rng.int rng_plan 4 do
      let kind = List.nth kinds (Rng.int rng_mut (List.length kinds)) in
      match Fuzz_mutate.apply kind rng_mut !right with
      | Some c ->
          right := c;
          mutations := Fuzz_mutate.kind_to_string kind :: !mutations
      | None -> ()
    done;
    let mutations = List.rev !mutations in
    let fault =
      if Rng.bool rng_plan then
        match Workloads.inject_fault ~seed:(Rng.int rng_plan 1_000_000_000) !right with
        | Some (c, f) ->
            right := c;
            Some (Workloads.fault_to_string f)
        | None -> None
      else None
    in
    let expected =
      match fault with
      | Some _ -> Fuzz_oracle.Expect_not_equivalent
      | None -> Fuzz_oracle.Expect_equivalent
    in
    { index; left; right = !right; expected; mutations; fault }
  end

(* ---------------------------------------------------------------- Stats *)

type violation = {
  v_source : string;
  v_description : string;
  v_repro : string;
  v_gates : int;
  v_saved : string option;
}

type stats = {
  cases : int;
  failures : int;
  corpus_replayed : int;
  corpus_failures : int;
  corpus_new : int;
  mutations_applied : int;
  faults_injected : int;
  shrink_evaluations : int;
  violations : violation list;
  elapsed : float;
}

let repro_command config index =
  Printf.sprintf "oqec fuzz --profile %s --max-qubits %d --max-gates %d --seed %d --only %d"
    (Fuzz_gen.profile_to_string config.profile)
    config.max_qubits config.max_gates config.seed index

let total_gates a b = List.length (Circuit.ops a) + List.length (Circuit.ops b)

(* Direct dense replay of a recorded refuting stimulus.  The MANIFEST's
   [stimulus] field pins the index that refuted a witness pair, and the
   (seed, index) -> bits contract is the engine's own
   ({!Oqec_workloads.Workloads.random_bits} over {!Rng.split_at}), so
   the replay needs no search: prepare that one basis state, run both
   circuits, compare.  [None] when the pair is too wide to check
   densely. *)
let stimulus_still_refutes ~seed ~stimulus g g' =
  let g, g' = Oqec_qcec.Flatten.align g g' in
  let a = Oqec_qcec.Flatten.flatten g and b = Oqec_qcec.Flatten.flatten g' in
  let n = Circuit.num_qubits a in
  if n > Oqec_cert.Cert.max_witness_qubits then None
  else begin
    let bits = Workloads.random_bits (Rng.split_at (Rng.make ~seed) stimulus) n in
    let prep = ref (Circuit.create ~name:"stimulus" n) in
    for q = 0 to n - 1 do
      if bits.(q) then prep := Circuit.x !prep q
    done;
    let va = Unitary.basis_state n 0 in
    Unitary.apply_to_vector !prep va;
    let vb = Array.copy va in
    Unitary.apply_to_vector a va;
    Unitary.apply_to_vector b vb;
    let dot = ref Cx.zero in
    Array.iteri (fun i x -> dot := Cx.add !dot (Cx.mul (Cx.conj x) vb.(i))) va;
    Some (Cx.mag !dot < 1.0 -. 1e-6)
  end

(* ------------------------------------------------------------------ Run *)

let run ?(log = fun _ -> ()) config =
  let t0 = Unix.gettimeofday () in
  let oracle ~expected g g' =
    Fuzz_oracle.run ~timeout:config.timeout ?checkers:config.checkers
      ?dd_core:config.dd_core ~seed:config.seed ~expected
      g g'
  in
  let violations = ref [] in
  let emit v = violations := v :: !violations in
  (* Corpus replay: yesterday's counterexamples must stay fixed. *)
  let corpus_entries = match config.corpus with Some dir -> Fuzz_corpus.load dir | None -> [] in
  let corpus_failures = ref 0 in
  (match config.corpus with
  | None -> ()
  | Some dir ->
      List.iter
        (fun (e : Fuzz_corpus.entry) ->
          let outcome =
            try
              let g, g' = Fuzz_corpus.load_pair dir e in
              (* A recorded refuting stimulus is re-checked directly
                 (no search): if it stopped refuting, either the pair
                 was mis-filed or the stimulus contract drifted. *)
              let stimulus_violation =
                match e.stimulus with
                | Some s when e.seed >= 0 -> (
                    match stimulus_still_refutes ~seed:e.seed ~stimulus:s g g' with
                    | Some false ->
                        Some
                          (Printf.sprintf
                             "recorded refuting stimulus #%d no longer refutes the pair" s)
                    | Some true | None -> None)
                | _ -> None
              in
              let violation =
                match stimulus_violation with
                | Some _ as v -> v
                | None -> (oracle ~expected:e.expected g g').Fuzz_oracle.violation
              in
              Option.map (fun desc -> (desc, total_gates g g')) violation
            with Sys_error msg | Failure msg -> Some ("replay error: " ^ msg, 0)
          in
          match outcome with
          | None -> ()
          | Some (desc, gates) ->
              incr corpus_failures;
              let repro = Printf.sprintf "oqec fuzz --corpus %s --runs 0" dir in
              log (Printf.sprintf "corpus %s: %s" e.id desc);
              log ("  repro: " ^ repro);
              emit
                {
                  v_source = "corpus " ^ e.id;
                  v_description = desc;
                  v_repro = repro;
                  v_gates = gates;
                  v_saved = None;
                })
        corpus_entries);
  (* Generated cases. *)
  let indices =
    match config.only with Some i -> [ i ] | None -> List.init (max 0 config.runs) Fun.id
  in
  let failures = ref 0 in
  let mutations_applied = ref 0 in
  let faults_injected = ref 0 in
  let shrink_evaluations = ref 0 in
  let corpus_new = ref 0 in
  List.iter
    (fun i ->
      let case = generate_case config i in
      mutations_applied := !mutations_applied + List.length case.mutations;
      if case.fault <> None then incr faults_injected;
      let result = oracle ~expected:case.expected case.left case.right in
      match result.Fuzz_oracle.violation with
      | None -> ()
      | Some desc ->
          incr failures;
          let repro = repro_command config i in
          log (Printf.sprintf "case %d: %s" i desc);
          log ("  repro: " ^ repro);
          (* Shrinking deletes gates, which invalidates the metamorphic
             expectation — so the shrink predicate replays the oracle
             expectation-free and minimises the raw inter-checker
             disagreement.  When the violation only exists relative to
             the expectation (a mutation-proof bug rather than a checker
             bug), the pair is kept whole. *)
          let still_fails a b =
            incr shrink_evaluations;
            (oracle ~expected:Fuzz_oracle.Expect_unknown a b).Fuzz_oracle.violation <> None
          in
          let left, right, entry_expected =
            if config.shrink && still_fails case.left case.right then begin
              let l, r, _ = Fuzz_shrink.shrink ~still_fails case.left case.right in
              (l, r, Fuzz_oracle.Expect_unknown)
            end
            else (case.left, case.right, case.expected)
          in
          let saved =
            match config.corpus with
            | None -> None
            | Some dir ->
                let id = Fuzz_corpus.id_of_pair left right in
                (* The refuting stimulus only describes the unshrunk
                   pair: shrinking rewrites the circuits, so the index
                   is dropped along with the expectation. *)
                let stimulus =
                  if entry_expected = Fuzz_oracle.Expect_not_equivalent then
                    Fuzz_oracle.refuting_stimulus result
                  else None
                in
                let entry =
                  { Fuzz_corpus.id; expected = entry_expected; seed = config.seed; index = i;
                    stimulus; note = desc }
                in
                if Fuzz_corpus.save ~dir entry left right then begin
                  incr corpus_new;
                  log (Printf.sprintf "  saved: %s (%d gates)" id (total_gates left right));
                  Some id
                end
                else None
          in
          emit
            {
              v_source = Printf.sprintf "case %d" i;
              v_description = desc;
              v_repro = repro;
              v_gates = total_gates left right;
              v_saved = saved;
            })
    indices;
  {
    cases = List.length indices;
    failures = !failures;
    corpus_replayed = List.length corpus_entries;
    corpus_failures = !corpus_failures;
    corpus_new = !corpus_new;
    mutations_applied = !mutations_applied;
    faults_injected = !faults_injected;
    shrink_evaluations = !shrink_evaluations;
    violations = List.rev !violations;
    elapsed = Unix.gettimeofday () -. t0;
  }

(* ----------------------------------------------------------------- JSON *)

let violation_to_json v =
  Printf.sprintf "{\"source\":%s,\"description\":%s,\"repro\":%s,\"gates\":%d,\"saved\":%s}"
    (Equivalence.json_string v.v_source)
    (Equivalence.json_string v.v_description)
    (Equivalence.json_string v.v_repro)
    v.v_gates
    (match v.v_saved with Some id -> Equivalence.json_string id | None -> "null")

let stats_to_json config s =
  Printf.sprintf
    "{\"schema\":\"oqec-fuzz/1\",\"profile\":%s,\"seed\":%d,\"runs\":%d,\"cases\":%d,\
     \"failures\":%d,\"corpus_replayed\":%d,\"corpus_failures\":%d,\"corpus_new\":%d,\
     \"mutations_applied\":%d,\"faults_injected\":%d,\"shrink_evaluations\":%d,\
     \"violations\":[%s],\"elapsed\":%.3f}"
    (Equivalence.json_string (Fuzz_gen.profile_to_string config.profile))
    config.seed config.runs s.cases s.failures s.corpus_replayed s.corpus_failures s.corpus_new
    s.mutations_applied s.faults_injected s.shrink_evaluations
    (String.concat "," (List.map violation_to_json s.violations))
    s.elapsed
