module Equivalence = Oqec_qcec.Equivalence
module Qasm = Oqec_qasm.Qasm

type entry = {
  id : string;
  expected : Fuzz_oracle.expected;
  seed : int;
  index : int;
  stimulus : int option;
  note : string;
}

let manifest_path dir = Filename.concat dir "MANIFEST.jsonl"

let pair_paths dir e =
  (Filename.concat dir (e.id ^ "-a.qasm"), Filename.concat dir (e.id ^ "-b.qasm"))

let entry_to_json e =
  Printf.sprintf "{\"id\":%s,\"expected\":%s,\"seed\":%d,\"index\":%d%s,\"note\":%s}"
    (Equivalence.json_string e.id)
    (Equivalence.json_string (Fuzz_oracle.expected_to_string e.expected))
    e.seed e.index
    (match e.stimulus with
    | Some s -> Printf.sprintf ",\"stimulus\":%d" s
    | None -> "")
    (Equivalence.json_string e.note)

(* ------------------------------------------------------------- Hashing *)

(* FNV-1a over both QASM texts: a stable, content-derived id so the same
   shrunk counterexample never enters the corpus twice. *)
let id_of_pair g g' =
  let h = ref 0xcbf29ce484222325L in
  let feed s =
    String.iter
      (fun c ->
        h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
      s
  in
  feed (Qasm.to_string g);
  feed "\x00";
  feed (Qasm.to_string g');
  Printf.sprintf "case-%016Lx" (Int64.logand !h Int64.max_int)

(* ------------------------------------------- Minimal JSONL field reader *)

let find_sub s pat =
  let n = String.length s and m = String.length pat in
  let rec go i = if i + m > n then None else if String.sub s i m = pat then Some i else go (i + 1) in
  go 0

let string_field line key =
  match find_sub line (Printf.sprintf "\"%s\":\"" key) with
  | None -> None
  | Some i ->
      let start = i + String.length key + 4 in
      let buf = Buffer.create 16 in
      let n = String.length line in
      let rec scan j =
        if j >= n then None
        else
          match line.[j] with
          | '"' -> Some (Buffer.contents buf)
          | '\\' when j + 1 < n ->
              (match line.[j + 1] with
              | 'n' -> Buffer.add_char buf '\n'
              | 't' -> Buffer.add_char buf '\t'
              | 'r' -> Buffer.add_char buf '\r'
              | c -> Buffer.add_char buf c);
              scan (j + 2)
          | c ->
              Buffer.add_char buf c;
              scan (j + 1)
      in
      scan start

let int_field line key =
  match find_sub line (Printf.sprintf "\"%s\":" key) with
  | None -> None
  | Some i ->
      let start = i + String.length key + 3 in
      let n = String.length line in
      let stop = ref start in
      if !stop < n && line.[!stop] = '-' then incr stop;
      while !stop < n && line.[!stop] >= '0' && line.[!stop] <= '9' do
        incr stop
      done;
      int_of_string_opt (String.sub line start (!stop - start))

let entry_of_line line =
  match (string_field line "id", string_field line "expected") with
  | Some id, Some expected_s ->
      Option.map
        (fun expected ->
          {
            id;
            expected;
            seed = Option.value ~default:(-1) (int_field line "seed");
            index = Option.value ~default:(-1) (int_field line "index");
            stimulus = int_field line "stimulus";
            note = Option.value ~default:"" (string_field line "note");
          })
        (Fuzz_oracle.expected_of_string expected_s)
  | _ -> None

(* ------------------------------------------------------------- Load/save *)

let load dir =
  let path = manifest_path dir in
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let entries = ref [] in
    (try
       while true do
         let line = input_line ic in
         if String.trim line <> "" then
           match entry_of_line line with
           | Some e -> entries := e :: !entries
           | None -> ()
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !entries
  end

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let save ~dir e g g' =
  mkdir_p dir;
  let known = load dir in
  if List.exists (fun k -> k.id = e.id) known then false
  else begin
    let a, b = pair_paths dir e in
    Qasm.write_file a g;
    Qasm.write_file b g';
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 (manifest_path dir) in
    output_string oc (entry_to_json e);
    output_char oc '\n';
    close_out oc;
    true
  end

let load_pair dir e =
  let a, b = pair_paths dir e in
  (Qasm.circuit_of_file a, Qasm.circuit_of_file b)
