(** Monotonic clock.

    All elapsed-time and deadline arithmetic in the checkers uses this
    clock rather than [Unix.gettimeofday]: the monotonic clock is immune
    to NTP steps and daylight-saving jumps, so a deadline can never fire
    early (or report a negative elapsed time) because the wall clock was
    adjusted mid-run.  The absolute value is meaningless — only
    differences between two readings are. *)

(** Nanoseconds since an arbitrary fixed origin (boot, typically). *)
val now_ns : unit -> int64

(** Seconds since the same origin, as a float — the unit used for
    deadlines and elapsed-time reporting. *)
val now : unit -> float

(** [elapsed_since t0] is [now () -. t0]. *)
val elapsed_since : float -> float
