(* /proc/self/status is a small text file of "Key:\tvalue unit" lines;
   parsing it on demand costs microseconds, which is negligible next to
   the benchmark runs it instruments. *)

let field_kb key =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let prefix = key ^ ":" in
          let rec scan () =
            match input_line ic with
            | exception End_of_file -> None
            | line when String.length line > String.length prefix
                        && String.sub line 0 (String.length prefix) = prefix -> (
                (* "VmHWM:     12345 kB" *)
                let rest =
                  String.sub line (String.length prefix)
                    (String.length line - String.length prefix)
                in
                match
                  Scanf.sscanf rest " %d kB" (fun kb -> kb)
                with
                | kb -> Some kb
                | exception (Scanf.Scan_failure _ | End_of_file | Failure _) -> None)
            | _ -> scan ()
          in
          scan ())

let vm_hwm_kb () = field_kb "VmHWM"
let vm_rss_kb () = field_kb "VmRSS"
