(** Deterministic pseudo-random number generation.

    A thin wrapper over [Random.State] giving every consumer an explicit,
    seedable generator so that benchmark workloads, error injection and
    random-stimuli simulation are reproducible run to run. *)

type t

val make : seed:int -> t

(** [split t] derives an independent generator; the parent advances. *)
val split : t -> t

(** [split_at t i] derives the [i]th child generator as a pure function
    of [t]'s current state and [i] — the parent does {e not} advance, and
    children with distinct indices are mutually independent.  This is the
    primitive behind sharded random-stimuli generation: stimulus [i] is
    the same no matter which worker draws it or how many workers there
    are. *)
val split_at : t -> int -> t

(** [int t bound] is uniform in [0, bound). *)
val int : t -> int -> int

val bool : t -> bool

(** [float t bound] is uniform in [0, bound). *)
val float : t -> float -> float

(** [bits64 t] returns 64 random bits. *)
val bits64 : t -> int64
