(** Process memory statistics (Linux [/proc], best effort).

    Used by the benchmark harness to record the peak resident set of a
    run alongside wall times, so memory regressions (e.g. a decision
    diagram arena that grows with total allocations instead of live
    size) are caught by the same baseline gate as time regressions.

    The counters are process-wide and monotonic: [vm_hwm_kb] is the high
    water mark since process start, so it attributes memory to whatever
    phase peaked first.  That is the right shape for a regression gate
    (a leak anywhere raises it) but not for per-phase attribution. *)

(** Peak resident set size in kilobytes ([VmHWM] in
    [/proc/self/status]); [None] when the file or the field is
    unavailable (non-Linux systems). *)
val vm_hwm_kb : unit -> int option

(** Current resident set size in kilobytes ([VmRSS]); [None] when
    unavailable. *)
val vm_rss_kb : unit -> int option
