(** Gate angles as exact rational multiples of pi.

    The ZX-calculus side of the equivalence checker needs to decide exactly
    whether a phase is a Pauli phase (multiple of pi) or a proper Clifford
    phase (odd multiple of pi/2).  All angles occurring in the paper's
    benchmark circuits (QFT, Grover, QPE, Clifford+T) are dyadic rational
    multiples of pi, so they are representable exactly.  Angles that do not
    fit (or whose exact arithmetic would overflow) degrade gracefully to a
    floating-point representation, which mirrors the numerical-robustness
    discussion in Section 6.2 of the paper.

    A value represents an angle in radians, kept canonical modulo 2*pi. *)

type t

val zero : t
val pi : t
val half_pi : t

(** [minus_half_pi] is -pi/2 (canonically 3*pi/2). *)
val minus_half_pi : t

val quarter_pi : t

(** [of_pi_fraction num den] is the angle [num/den * pi].  [den] must be
    non-zero. *)
val of_pi_fraction : int -> int -> t

(** [of_float radians] snaps to an exact dyadic fraction of pi when the
    angle is within 1e-12 of one with denominator up to 2^20, and falls back
    to the float representation otherwise. *)
val of_float : float -> t

val to_float : t -> float
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t

(** [double p] is [2 * p] modulo 2*pi. *)
val double : t -> t

(** [half p] is an angle [h] with [2 * h = p] modulo 2*pi (the other
    solution differs by pi; gate decompositions using [half] are invariant
    under that choice). *)
val half : t -> t

val is_zero : t -> bool

(** [is_pauli p] holds when [p] is 0 or pi (modulo 2*pi). *)
val is_pauli : t -> bool

val is_pi : t -> bool

(** [is_clifford p] holds when [p] is a multiple of pi/2. *)
val is_clifford : t -> bool

(** [is_proper_clifford p] holds when [p] is pi/2 or 3*pi/2. *)
val is_proper_clifford : t -> bool

(** [is_exact p] is [true] when the angle is stored as an exact rational
    multiple of pi. *)
val is_exact : t -> bool

(** [to_pi_fraction p] is [Some (num, den)] with [p = num/den * pi] in
    canonical form (den > 0, reduced, 0 <= num/den < 2) when the angle is
    exact, [None] for float-represented angles.  The exact inverse of
    {!of_pi_fraction} on exact angles — used by serialisers that must
    round-trip phases losslessly. *)
val to_pi_fraction : t -> (int * int) option

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
