type t = Random.State.t

let make ~seed = Random.State.make [| seed; 0x5eed |]
let split t = Random.State.make [| Random.State.bits t; Random.State.bits t |]

let split_at t i =
  (* Derive the child from a snapshot so the parent does not advance:
     indexed splitting must be a pure function of (state, i) for the
     stimulus streams to be independent of how many children are drawn. *)
  let snap = Random.State.copy t in
  let a = Random.State.bits snap and b = Random.State.bits snap in
  Random.State.make [| a; b; i; 0x5911 |]

let int t bound = Random.State.int t bound
let bool t = Random.State.bool t
let float t bound = Random.State.float t bound
let bits64 t = Random.State.bits64 t
