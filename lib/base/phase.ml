(* Angles are [Rat (num, den)] meaning num/den * pi with den > 0,
   gcd(num,den) = 1 and 0 <= num/den < 2 (i.e. canonical modulo 2*pi), or
   [Approx r] for a float angle in radians canonicalised to [0, 2*pi). *)

type t =
  | Rat of int * int
  | Approx of float

let two_pi = 2.0 *. Float.pi

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let canon_float r =
  let r = Float.rem r two_pi in
  let r = if r < 0.0 then r +. two_pi else r in
  if r >= two_pi then 0.0 else r

(* Overflow-checked multiplication; raises [Exit] on overflow so callers can
   degrade to the float representation. *)
let mul_exact a b =
  if a = 0 || b = 0 then 0
  else
    let c = a * b in
    if c / b <> a then raise Exit else c

let make_rat num den =
  assert (den <> 0);
  let num, den = if den < 0 then (-num, -den) else (num, den) in
  let g = gcd (abs num) den in
  let g = if g = 0 then 1 else g in
  let num = num / g and den = den / g in
  (* Reduce modulo 2*pi: num mod (2*den), mapped into [0, 2*den). *)
  let m = 2 * den in
  let num = ((num mod m) + m) mod m in
  Rat (num, den)

let zero = make_rat 0 1
let pi = make_rat 1 1
let half_pi = make_rat 1 2
let minus_half_pi = make_rat (-1) 2
let quarter_pi = make_rat 1 4
let of_pi_fraction num den = make_rat num den

let to_float = function
  | Rat (num, den) -> float_of_int num /. float_of_int den *. Float.pi
  | Approx r -> r

(* Snap a float angle to an exact dyadic fraction of pi when very close. *)
let of_float r =
  let r = canon_float r in
  let frac = r /. Float.pi in
  let rec try_den den =
    if den > 1 lsl 20 then Approx r
    else
      let scaled = frac *. float_of_int den in
      let n = Float.round scaled in
      if Float.abs (scaled -. n) < 1e-12 *. float_of_int den && Float.abs n < 1e18
      then make_rat (int_of_float n) den
      else try_den (den * 2)
  in
  try_den 1

let add p q =
  match (p, q) with
  | Rat (n1, d1), Rat (n2, d2) -> (
      try
        let g = gcd d1 d2 in
        let l = mul_exact (d1 / g) d2 in
        let n = mul_exact n1 (l / d1) + mul_exact n2 (l / d2) in
        make_rat n l
      with Exit -> Approx (canon_float (to_float p +. to_float q)))
  | _ -> Approx (canon_float (to_float p +. to_float q))

let neg = function
  | Rat (n, d) -> make_rat (-n) d
  | Approx r -> Approx (canon_float (-.r))

let sub p q = add p (neg q)

let double = function
  | Rat (n, d) -> make_rat (2 * n) d
  | Approx r -> Approx (canon_float (2.0 *. r))

let half = function
  | Rat (n, d) -> (
      try make_rat n (mul_exact 2 d)
      with Exit -> Approx (canon_float (float_of_int n /. float_of_int d *. Float.pi /. 2.0)))
  | Approx r -> Approx (canon_float (r /. 2.0))

let float_is ~target r =
  Float.abs (r -. target) < 1e-9 || Float.abs (r -. target -. two_pi) < 1e-9

let is_zero = function
  | Rat (n, _) -> n = 0
  | Approx r -> float_is ~target:0.0 r

let is_pi = function
  | Rat (n, d) -> n = d
  | Approx r -> float_is ~target:Float.pi r

let is_pauli p = is_zero p || is_pi p

let is_clifford = function
  | Rat (_, d) -> d = 1 || d = 2
  | Approx r ->
      let q = r /. (Float.pi /. 2.0) in
      Float.abs (q -. Float.round q) < 1e-9

let is_proper_clifford p = is_clifford p && not (is_pauli p)
let is_exact = function Rat _ -> true | Approx _ -> false
let to_pi_fraction = function Rat (n, d) -> Some (n, d) | Approx _ -> None

let equal p q =
  match (p, q) with
  | Rat (n1, d1), Rat (n2, d2) -> n1 = n2 && d1 = d2
  | _ ->
      let a = canon_float (to_float p) and b = canon_float (to_float q) in
      Float.abs (a -. b) < 1e-9 || Float.abs (Float.abs (a -. b) -. two_pi) < 1e-9

let compare p q = Float.compare (to_float p) (to_float q)

let pp ppf = function
  | Rat (0, _) -> Format.pp_print_string ppf "0"
  | Rat (1, 1) -> Format.pp_print_string ppf "pi"
  | Rat (n, 1) -> Format.fprintf ppf "%d*pi" n
  | Rat (1, d) -> Format.fprintf ppf "pi/%d" d
  | Rat (n, d) -> Format.fprintf ppf "%d*pi/%d" n d
  | Approx r -> Format.fprintf ppf "%.6f" r

let to_string p = Format.asprintf "%a" pp p
