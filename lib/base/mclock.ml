external now_ns : unit -> int64 = "oqec_mclock_now_ns"

let now () = Int64.to_float (now_ns ()) *. 1e-9
let elapsed_since t0 = now () -. t0
