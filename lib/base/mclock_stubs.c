/* Monotonic clock for elapsed-time and deadline arithmetic.

   CLOCK_MONOTONIC never steps when NTP adjusts the wall clock, so
   deadlines computed against it cannot fire spuriously (or go
   negative) the way Unix.gettimeofday-based ones can. */

#include <caml/alloc.h>
#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value oqec_mclock_now_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec);
}
