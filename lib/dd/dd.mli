(** Quantum multiple-valued decision diagrams (QMDDs).

    A matrix DD node at level [v] splits a [2^(v+1)]-dimensional operator
    into four equally sized sub-matrices (Section 4 of the paper); a vector
    DD node splits a state vector into two halves.  Sub-diagrams identical
    up to a constant factor are shared: the factors live on the edges,
    nodes are normalised (the first edge of maximal magnitude carries
    weight 1) and hash-consed in a unique table, making the representation
    canonical up to the interning tolerance.

    Levels run from [n-1] at the root down to [0]; edges with weight zero
    point directly at the terminal.  All operations are memoised in
    per-package compute tables. *)

open Oqec_base

type node = private {
  id : int;
  var : int;  (** level; [-1] for the terminal *)
  edges : edge array;  (** 4 entries for matrices, 2 for vectors, 0 terminal *)
}

and edge = { node : node; w : Cx.t }

type pkg

(** [create ?tol ?gc_threshold ?cache_bits ()] makes a fresh package
    (unique table, complex table, bounded compute caches).  [tol] is the
    weight-interning tolerance, default {!Cx.default_tolerance}.
    [gc_threshold] is the live-node count beyond which {!maybe_gc}
    collects (default 65536): [0] collects at every safe point,
    [max_int] disables collection.  [cache_bits] sizes the compute
    caches at [2^cache_bits] slots each (default 14). *)
val create : ?tol:float -> ?gc_threshold:int -> ?cache_bits:int -> unit -> pkg

val tolerance : pkg -> float
val terminal : node
val is_terminal : node -> bool

(** The all-zero edge (weight 0 into the terminal). *)
val zero_edge : edge

(** The scalar 1 (weight 1 into the terminal). *)
val one_edge : edge

val is_zero_edge : edge -> bool
val intern : pkg -> Cx.t -> Cx.t

(** [edge_of ~w node] builds an edge, snapping zero weights onto the
    terminal so that zero tests are structural. *)
val edge_of : pkg -> w:Cx.t -> node -> edge

(** [scale pkg z e] multiplies the edge weight by [z]. *)
val scale : pkg -> Cx.t -> edge -> edge

(** [make_node pkg v edges] is the normalising, hash-consing node
    constructor: returns an edge carrying the extracted common factor.
    [edges] must all be rooted strictly below [v] (or be zero). *)
val make_node : pkg -> int -> edge array -> edge

(** [cofactors e v] views edge [e] as a matrix node at level [v] and
    returns its four weighted sub-edges (zero edges expand to four zero
    edges). *)
val cofactors : edge -> int -> edge array

(** [vcofactors e v] is the vector analogue, returning two sub-edges. *)
val vcofactors : edge -> int -> edge array

(** [identity pkg n] is the identity matrix on [n] qubits (a linear-size
    chain, cf. Fig. 3b of the paper).  Memoised per package and rooted
    against {!gc}, so the checker hot loop's identity probes are free. *)
val identity : pkg -> int -> edge

(** [is_identity ?up_to_phase pkg n e] decides structurally whether [e] is
    the [n]-qubit identity.  With [up_to_phase] (default [true]) the root
    weight may be any unit-magnitude number. *)
val is_identity : ?up_to_phase:bool -> pkg -> int -> edge -> bool

(** [trace e] is the trace of the represented matrix — linear in the number
    of nodes. *)
val trace : edge -> Cx.t

(** [fidelity_to_identity pkg ~n e] is [|tr e| / 2^n], the normalised
    Hilbert-Schmidt overlap with the identity (Section 3). *)
val fidelity_to_identity : n:int -> edge -> float

(** Arithmetic (all memoised). *)

val add : pkg -> edge -> edge -> edge

(** [mul pkg a b] multiplies two matrix DDs rooted at the same level. *)
val mul : pkg -> edge -> edge -> edge

(** [mul_vec pkg m v] applies matrix [m] to vector [v]. *)
val mul_vec : pkg -> edge -> edge -> edge

(** [adjoint pkg m] is the conjugate transpose. *)
val adjoint : pkg -> edge -> edge

(** [inner pkg a b] is the inner product <a|b> of two vector DDs rooted at
    the same level. *)
val inner : pkg -> edge -> edge -> Cx.t

(** [kets pkg n i] is the computational basis vector |i> on [n] qubits. *)
val kets : pkg -> int -> int -> edge

(** [kets_bits pkg n bit] is the basis vector whose qubit [q] is [bit q] —
    usable beyond the native-integer width. *)
val kets_bits : pkg -> int -> (int -> bool) -> edge

(** {1 Garbage collection}

    The unique table grows monotonically without intervention.  Clients
    register the edges they need to survive with {!root} (balanced by
    {!unroot}); {!gc} then mark-and-sweeps the unique table from those
    roots (plus the memoised identities), dropping every unreachable
    node and invalidating the compute tables so no cached entry
    references a collected node.  Collection must only happen at a safe
    point: an unrooted edge held across a collection stays usable but
    loses canonicity (a later [make_node] with the same key returns a
    fresh node that is not [==] to it).  {!Dd_circuit} runs {!maybe_gc}
    between gate applications with the evolving diagram pinned. *)

(** [root pkg e] registers [e] as a GC root.  Registrations are counted:
    rooting twice requires unrooting twice. *)
val root : pkg -> edge -> unit

(** [unroot pkg e] drops one registration of [e] (no-op if unrooted). *)
val unroot : pkg -> edge -> unit

(** [gc pkg] forces a mark-and-sweep collection and returns the number of
    unique-table entries reclaimed. *)
val gc : pkg -> int

(** [maybe_gc pkg] collects iff the live-node count has crossed the
    current trigger level (the configured [gc_threshold], doubled after
    collections that reclaim too little, to avoid thrashing). *)
val maybe_gc : pkg -> unit

(** [on_safe_point pkg f] registers [f] to run at every GC safe point
    (each gate application in {!Dd_circuit}), before the collection
    check.  Checkers use this for deadline and cooperative-cancellation
    polling; [f] may raise to unwind out of the computation.  One hook
    per package (later registrations replace earlier ones). *)
val on_safe_point : pkg -> (unit -> unit) -> unit

(** [at_safe_point_hook pkg] invokes the registered hook (used by
    {!Dd_circuit} at its safe points). *)
val at_safe_point_hook : pkg -> unit

(** {1 Diagnostics} *)

(** [node_count e] counts the distinct nodes reachable from [e] (terminal
    excluded). *)
val node_count : edge -> int

(** [allocated pkg] is the total number of nodes ever hash-consed — the
    "peak size" proxy reported by the benchmarks. *)
val allocated : pkg -> int

(** [live pkg] is the current number of unique-table entries. *)
val live : pkg -> int

(** [clear_caches pkg] drops the compute tables (not the unique table). *)
val clear_caches : pkg -> unit

(** Arena-core extras, populated only by {!Dd_arena.stats}: slot
    occupancy, growth/compaction counters and unique-table sharding
    tallies.  The boxed package reports [None]. *)
type arena_stats = {
  a_capacity : int;  (** node slots allocated in the arena *)
  a_occupancy : int;  (** node slots currently live *)
  a_resizes : int;  (** whole-arena growth events *)
  a_compactions : int;  (** compaction passes run *)
  a_shards : int;  (** unique-table shard count *)
  a_contended : int;  (** cons operations that hit a locked shard *)
  a_shard_resizes : int;  (** per-shard bucket-array doublings *)
  a_weights : int;  (** distinct interned complex weights *)
}

type stats = {
  allocated : int;  (** nodes ever hash-consed *)
  live : int;  (** unique-table entries right now *)
  peak_live : int;  (** largest unique-table size observed *)
  gc_runs : int;
  gc_reclaimed : int;  (** unique-table entries swept over all runs *)
  mm : Ccache.stats;  (** matrix-matrix multiply cache *)
  mv : Ccache.stats;  (** matrix-vector multiply cache *)
  add_ : Ccache.stats;  (** addition cache *)
  adj : Ccache.stats;  (** adjoint cache *)
  inner_ : Ccache.stats;  (** inner-product cache *)
  ctable_entries : int;  (** distinct interned reals *)
  arena : arena_stats option;  (** arena-core extras; [None] when boxed *)
}
(** Engine statistics: node accounting, GC activity, per-compute-table
    hit/miss/overwrite counters and complex-table size. *)

val stats : pkg -> stats

(** Total hits across the five compute caches. *)
val cache_hits : stats -> int

val pp_stats : Format.formatter -> stats -> unit

(** One-line JSON object (no external dependency). *)
val stats_to_json : stats -> string

val pp_edge : Format.formatter -> edge -> unit
