open Oqec_base
open Oqec_circuit

(* Circuit application generic over the DD package representation: the
   boxed {!Dd} package and the arena package ({!Dd_arena}) share one
   implementation of gate-DD construction and the safe-point protocol by
   instantiating {!Make} (see {!Dd_circuit} and {!Dd_core}). *)

module type PRIM = sig
  type pkg
  type edge

  val zero_edge : edge
  val one_edge : edge
  val make_node : pkg -> int -> edge array -> edge
  val add : pkg -> edge -> edge -> edge
  val scale : pkg -> Cx.t -> edge -> edge
  val mul : pkg -> edge -> edge -> edge
  val mul_vec : pkg -> edge -> edge -> edge
  val identity : pkg -> int -> edge
  val kets : pkg -> int -> int -> edge
  val root : pkg -> edge -> unit
  val unroot : pkg -> edge -> unit
  val maybe_gc : pkg -> unit
  val at_safe_point_hook : pkg -> unit
end

let swap_ops a b =
  [
    Circuit.Ctrl ([ a ], Gate.X, b);
    Circuit.Ctrl ([ b ], Gate.X, a);
    Circuit.Ctrl ([ a ], Gate.X, b);
  ]

module Make (P : PRIM) = struct
  (* Build the DD of a (multi-)controlled single-qubit gate embedded in
     [n] qubits, bottom-up.  Below the target we carry two diagonal
     operators: [act], the projector onto "all controls seen so far are
     1" (tensored with identity on non-control wires), and
     [inact] = I - act; at the target level the gate applies on the
     active part and identity on the inactive part; above the target,
     further controls select between the accumulated operator and the
     identity. *)
  let gate_dd pkg n ~controls ~target (u : Dmatrix.t) : P.edge =
    assert (target >= 0 && target < n);
    let is_control = Array.make n false in
    List.iter
      (fun c ->
        assert (c >= 0 && c < n && c <> target);
        is_control.(c) <- true)
      controls;
    let wrap v e = P.make_node pkg v [| e; P.zero_edge; P.zero_edge; e |] in
    let u00 = Dmatrix.get u 0 0
    and u01 = Dmatrix.get u 0 1
    and u10 = Dmatrix.get u 1 0
    and u11 = Dmatrix.get u 1 1 in
    let rec below v ~act ~inact ~ident =
      if v = target then begin
        let gate =
          P.make_node pkg v
            [|
              P.add pkg (P.scale pkg u00 act) inact;
              P.scale pkg u01 act;
              P.scale pkg u10 act;
              P.add pkg (P.scale pkg u11 act) inact;
            |]
        in
        above (v + 1) ~gate ~ident:(wrap v ident)
      end
      else if is_control.(v) then
        below (v + 1)
          ~act:(P.make_node pkg v [| P.zero_edge; P.zero_edge; P.zero_edge; act |])
          ~inact:(P.make_node pkg v [| ident; P.zero_edge; P.zero_edge; inact |])
          ~ident:(wrap v ident)
      else below (v + 1) ~act:(wrap v act) ~inact:(wrap v inact) ~ident:(wrap v ident)
    and above v ~gate ~ident =
      if v >= n then gate
      else if is_control.(v) then
        above (v + 1)
          ~gate:(P.make_node pkg v [| ident; P.zero_edge; P.zero_edge; gate |])
          ~ident:(wrap v ident)
      else above (v + 1) ~gate:(wrap v gate) ~ident:(wrap v ident)
    in
    below 0 ~act:P.one_edge ~inact:P.zero_edge ~ident:P.one_edge

  let swap_ops = swap_ops

  (* The DDs of one circuit operation (SWAPs expand to three CNOTs). *)
  let op_dds pkg n (op : Circuit.op) : P.edge list =
    match op with
    | Circuit.Gate (g, t) -> [ gate_dd pkg n ~controls:[] ~target:t (Gate.matrix g) ]
    | Circuit.Ctrl (cs, g, t) -> [ gate_dd pkg n ~controls:cs ~target:t (Gate.matrix g) ]
    | Circuit.Swap (a, b) ->
        List.map
          (function
            | Circuit.Ctrl ([ c ], Gate.X, t) ->
                gate_dd pkg n ~controls:[ c ] ~target:t (Gate.matrix Gate.X)
            | _ -> assert false)
          (swap_ops a b)
    | Circuit.Barrier -> []

  (* Gate application doubles as the package's GC safe point: the
     incoming diagram is pinned, a collection may run, and only then are
     the gate DDs built (so they can never be swept mid-application). *)
  let at_safe_point pkg dd f =
    P.at_safe_point_hook pkg;
    P.root pkg dd;
    P.maybe_gc pkg;
    match f () with
    | r ->
        P.unroot pkg dd;
        r
    | exception e ->
        P.unroot pkg dd;
        raise e

  let apply_op pkg n (dd : P.edge) (op : Circuit.op) : P.edge =
    at_safe_point pkg dd (fun () ->
        List.fold_left (fun acc g -> P.mul pkg g acc) dd (op_dds pkg n op))

  let apply_op_left pkg n (dd : P.edge) (op : Circuit.op) : P.edge =
    at_safe_point pkg dd (fun () ->
        List.fold_left (fun acc g -> P.mul pkg acc g) dd (op_dds pkg n op))

  let apply_op_vec pkg n (v : P.edge) (op : Circuit.op) : P.edge =
    at_safe_point pkg v (fun () ->
        List.fold_left (fun acc g -> P.mul_vec pkg g acc) v (op_dds pkg n op))

  let of_circuit pkg (c : Circuit.t) : P.edge =
    let n = Circuit.num_qubits c in
    List.fold_left (fun acc op -> apply_op pkg n acc op) (P.identity pkg n) (Circuit.ops c)

  let simulate pkg (c : Circuit.t) ~(input : int) : P.edge =
    let n = Circuit.num_qubits c in
    List.fold_left
      (fun acc op -> apply_op_vec pkg n acc op)
      (P.kets pkg n input)
      (Circuit.ops c)
end
