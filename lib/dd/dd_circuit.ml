(* Circuit application over the boxed {!Dd} package: the shared
   implementation lives in {!Dd_circuit_core.Make}, instantiated here so
   existing callers keep the concrete [Dd.pkg]/[Dd.edge] types. *)
include Dd_circuit_core.Make (Dd)
