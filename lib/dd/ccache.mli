(** Bounded, direct-mapped compute cache with hit/miss/overwrite counters.

    A power-of-two array indexed by the structural hash of the key; a
    colliding store overwrites the previous entry (QCEC/dd_package
    layout).  Memory is bounded by the capacity regardless of workload
    length, which is what keeps long equivalence-checking runs from
    growing the compute tables monotonically.  Keys are compared with
    structural equality, so they must not contain functional values. *)

type ('k, 'v) t

type stats = {
  capacity : int;  (** number of slots *)
  s_filled : int;  (** slots currently occupied *)
  s_hits : int;
  s_misses : int;
  s_overwrites : int;  (** stores that evicted a different key *)
}

(** [create ~bits] makes a cache with [2^bits] slots (1 <= bits <= 24). *)
val create : bits:int -> ('k, 'v) t

val find : ('k, 'v) t -> 'k -> 'v option
val store : ('k, 'v) t -> 'k -> 'v -> unit

(** [memo t k f] is the cached value for [k], computing and storing
    [f ()] on a miss. *)
val memo : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v

(** Drop every entry (counters are preserved; [s_filled] resets). *)
val clear : ('k, 'v) t -> unit

val stats : ('k, 'v) t -> stats

(** Hits over lookups, 0.0 when no lookups happened. *)
val hit_rate : stats -> float
