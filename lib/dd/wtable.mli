(** Dense-id complex-weight interning for the arena DD core.

    Weights are canonicalised through a {!Ctable} (tolerance bucketing,
    [-0.] folded onto [+0.]) and then assigned small dense ids keyed by
    the canonical IEEE bit patterns, so that a whole edge — node id plus
    weight id — packs into one immediate integer.  Ids {!zero_id} and
    {!one_id} are pinned at creation. *)

open Oqec_base

type t

val create : ?tol:float -> unit -> t

(** Serialise subsequent {!intern} calls behind a mutex (used by shared
    arenas where several domains intern concurrently). *)
val set_shared : t -> unit

val tolerance : t -> float

(** Number of distinct weight ids assigned so far. *)
val size : t -> int

val zero_id : int
val one_id : int

(** [intern t z] is the dense id of [z]'s canonical representative,
    allocating a fresh id on first sight. *)
val intern : t -> Cx.t -> int

val get : t -> int -> Cx.t
val re : t -> int -> float
val im : t -> int -> float
