open Oqec_base

(* Arena-backed QMDD package: the same canonical decision diagrams as
   {!Dd}, stored as an int-indexed struct-of-arrays arena instead of
   boxed records.

   Layout (see DESIGN.md, "Arena DD core"):

   - An {e edge} is one immediate integer, [node_id lor (weight_id lsl
     32)].  Weight ids come from {!Wtable}, which pins id 0 to zero and
     id 1 to one, so the zero edge is [0] and the scalar-one edge is
     [1 lsl 32] — compile-time constants, invisible to the OCaml GC.
   - Node columns are Bigarrays indexed by node id: [var] (int16 level),
     [kids] (4 packed edges per node; vector nodes park [-1] sentinels
     in slots 2 and 3 so they can never collide with matrix nodes in the
     unique table), [next] (unique-table chain link) and [mark] (GC mark
     byte).  Node id 0 is the terminal.
   - The unique table is sharded by hash: each shard owns a bucket
     array, an entry count and a mutex.  Chains thread through the
     shared [next] column (every node lives in exactly one shard).
     Single-owner packages skip the locks entirely; shared arenas
     (see {!create_shared}/{!attach}) pay one try_lock per cons and
     count the collisions they observe.
   - Compute caches are direct-mapped parallel int arrays — probing
     allocates nothing.

   GC is a pinned-root compaction pass: rooted nodes never move (client
   edges stay valid across safe points, as {!Dd} documents), dead nodes
   free their slots, and surviving interior nodes slide down into the
   holes with every kid pointer, the identity cache and the unique table
   rebuilt to match.  Unlike the boxed package, an {e unrooted} edge
   held across a collection must not be used again: its slot may have
   been reassigned. *)

type edge = int

let nid (e : edge) = e land 0xFFFFFFFF
let wid (e : edge) = e lsr 32
let pack n w : edge = n lor (w lsl 32)
let zero_edge : edge = 0
let one_edge : edge = pack 0 Wtable.one_id
let is_zero_edge (e : edge) = e = 0
let is_terminal_id n = n = 0

type int_col = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
type i16_col = (int, Bigarray.int16_signed_elt, Bigarray.c_layout) Bigarray.Array1.t
type i8_col = (int, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

let int_col n : int_col = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n
let i16_col n : i16_col = Bigarray.Array1.create Bigarray.int16_signed Bigarray.c_layout n
let i8_col n : i8_col = Bigarray.Array1.create Bigarray.int8_unsigned Bigarray.c_layout n

(* Sentinel parked in the kid slots a vector node does not use. *)
let no_kid = -1

type shard = {
  lock : Mutex.t;
  mutable buckets : int_col;  (* head node id per bucket; 0 = empty *)
  mutable bmask : int;
  mutable count : int;
  mutable contended : int;  (* try_lock failures observed *)
  mutable bresizes : int;
}

type arena = {
  w : Wtable.t;
  shards : shard array;
  shard_mask : int;
  shared : bool;
  mutable cap : int;
  next_free : int Atomic.t;  (* bump allocator: next unused slot *)
  (* Dead slots left behind by the last compaction that the slide could
     not fill (pinned roots sit above them and the bump pointer cannot
     come back down past a pinned slot).  Reusing them is safe exactly
     because compaction clears the compute caches and rebuilds the
     unique table: no stale reference to a freed id survives the
     collection that freed it.  Single-owner arenas only — shared
     arenas never compact, so their free list stays empty. *)
  mutable free_slots : int list;
  live : int Atomic.t;
  allocated : int Atomic.t;  (* nodes ever consed; monotonic *)
  mutable var_c : i16_col;
  mutable kids : int_col;  (* 4 packed edges per node *)
  mutable next_c : int_col;
  mutable mark_c : i8_col;
  mutable resizes : int;
  mutable compactions : int;
}

(* ------------------------------------------------- direct-mapped caches *)

(* Keys and values are immediate ints, stored in parallel arrays; a slot
   is empty while its value is [min_int] (no packed edge or interned
   weight id is ever negative). *)
type icache = {
  k1 : int array;
  k2 : int array;
  k3 : int array;
  v : int array;
  cmask : int;
  mutable hits : int;
  mutable misses : int;
  mutable overwrites : int;
  mutable filled : int;
}

let icache_create bits =
  let n = 1 lsl bits in
  {
    k1 = Array.make n 0;
    k2 = Array.make n 0;
    k3 = Array.make n 0;
    v = Array.make n min_int;
    cmask = n - 1;
    hits = 0;
    misses = 0;
    overwrites = 0;
    filled = 0;
  }

let icache_clear c =
  Array.fill c.v 0 (Array.length c.v) min_int;
  c.filled <- 0

(* Multiplicative mixing over native ints; the constants fit in 62 bits. *)
let mix h k =
  let h = (h lxor k) * 0x2545F4914F6CDD1D in
  h lxor (h lsr 29)

let hash3 a b c = mix (mix (mix 0x9E3779B9 a) b) c land max_int

let icache_find c h k1 k2 k3 =
  let i = h land c.cmask in
  if c.v.(i) <> min_int && c.k1.(i) = k1 && c.k2.(i) = k2 && c.k3.(i) = k3 then begin
    c.hits <- c.hits + 1;
    c.v.(i)
  end
  else begin
    c.misses <- c.misses + 1;
    min_int
  end

let icache_store c h k1 k2 k3 value =
  let i = h land c.cmask in
  if c.v.(i) = min_int then c.filled <- c.filled + 1
  else if not (c.k1.(i) = k1 && c.k2.(i) = k2 && c.k3.(i) = k3) then
    c.overwrites <- c.overwrites + 1;
  c.k1.(i) <- k1;
  c.k2.(i) <- k2;
  c.k3.(i) <- k3;
  c.v.(i) <- value

let icache_stats c =
  {
    Ccache.capacity = c.cmask + 1;
    s_filled = c.filled;
    s_hits = c.hits;
    s_misses = c.misses;
    s_overwrites = c.overwrites;
  }

(* --------------------------------------------------------------- package *)

type pkg = {
  a : arena;
  owns_arena : bool;  (* false for {!attach}ed handles: GC is disabled *)
  mm_cache : icache;
  mv_cache : icache;
  add_cache : icache;
  adj_cache : icache;
  inner_cache : icache;
  roots : (int, int) Hashtbl.t;  (* node id -> registration count *)
  id_cache : (int, edge) Hashtbl.t;  (* qubit count -> identity edge *)
  gc_threshold : int;
  mutable gc_limit : int;
  mutable gc_runs : int;
  mutable gc_reclaimed : int;
  mutable peak_live : int;
  mutable safe_point_hook : unit -> unit;
}

let default_gc_threshold = 65536
let default_cache_bits = 14
let default_shard_bits = 3
let default_capacity = 1 lsl 16

let make_arena ~tol ~shard_bits ~capacity ~shared =
  let nshards = 1 lsl shard_bits in
  let shard () =
    let b = int_col 1024 in
    Bigarray.Array1.fill b 0;
    { lock = Mutex.create (); buckets = b; bmask = 1023; count = 0; contended = 0; bresizes = 0 }
  in
  let w = Wtable.create ~tol () in
  if shared then Wtable.set_shared w;
  let a =
    {
      w;
      shards = Array.init nshards (fun _ -> shard ());
      shard_mask = nshards - 1;
      shared;
      cap = capacity;
      next_free = Atomic.make 1;
      free_slots = [];
      live = Atomic.make 0;
      allocated = Atomic.make 0;
      var_c = i16_col capacity;
      kids = int_col (4 * capacity);
      next_c = int_col capacity;
      mark_c = i8_col capacity;
      resizes = 0;
      compactions = 0;
    }
  in
  a.var_c.{0} <- -1;
  Bigarray.Array1.fill a.mark_c 0;
  a

let make_pkg ~arena ~owns_arena ~gc_threshold ~cache_bits =
  if gc_threshold < 0 then invalid_arg "Dd_arena: gc_threshold must be >= 0";
  {
    a = arena;
    owns_arena;
    mm_cache = icache_create cache_bits;
    mv_cache = icache_create cache_bits;
    add_cache = icache_create cache_bits;
    adj_cache = icache_create (min cache_bits 10);
    inner_cache = icache_create (min cache_bits 10);
    roots = Hashtbl.create 64;
    id_cache = Hashtbl.create 8;
    gc_threshold;
    gc_limit = gc_threshold;
    gc_runs = 0;
    gc_reclaimed = 0;
    peak_live = 0;
    safe_point_hook = ignore;
  }

let create ?(tol = Cx.default_tolerance) ?(gc_threshold = default_gc_threshold)
    ?(cache_bits = default_cache_bits) ?(shard_bits = default_shard_bits)
    ?(capacity = default_capacity) () =
  let arena = make_arena ~tol ~shard_bits ~capacity:(max 16 capacity) ~shared:false in
  make_pkg ~arena ~owns_arena:true ~gc_threshold ~cache_bits

type shared_arena = arena

let create_shared ?(tol = Cx.default_tolerance) ?(shard_bits = default_shard_bits)
    ~capacity () =
  if capacity < 16 then invalid_arg "Dd_arena.create_shared: capacity too small";
  make_arena ~tol ~shard_bits ~capacity ~shared:true

(* Attached handles never collect: compaction would move nodes under the
   other handles' feet.  Shared arenas are preallocated instead. *)
let attach ?(cache_bits = default_cache_bits) arena =
  make_pkg ~arena ~owns_arena:false ~gc_threshold:max_int ~cache_bits

let on_safe_point pkg f = pkg.safe_point_hook <- f
let at_safe_point_hook pkg = pkg.safe_point_hook ()
let tolerance pkg = Wtable.tolerance pkg.a.w
let weight pkg (e : edge) = Wtable.get pkg.a.w (wid e)

let wmag2 a w =
  let re = Wtable.re a.w w and im = Wtable.im a.w w in
  (re *. re) +. (im *. im)

(* ------------------------------------------------------------ allocation *)

let grow_arena a ~need =
  let cap = ref a.cap in
  while need > !cap do
    cap := 2 * !cap
  done;
  let cap = !cap in
  let var_c = i16_col cap
  and kids = int_col (4 * cap)
  and next_c = int_col cap
  and mark_c = i8_col cap in
  let blit src dst len sub_len =
    Bigarray.Array1.blit
      (Bigarray.Array1.sub src 0 (len * sub_len))
      (Bigarray.Array1.sub dst 0 (len * sub_len))
  in
  blit a.var_c var_c a.cap 1;
  blit a.kids kids a.cap 4;
  blit a.next_c next_c a.cap 1;
  Bigarray.Array1.fill mark_c 0;
  a.var_c <- var_c;
  a.kids <- kids;
  a.next_c <- next_c;
  a.mark_c <- mark_c;
  a.cap <- cap;
  a.resizes <- a.resizes + 1

let alloc_slot a =
  match a.free_slots with
  | idx :: rest when not a.shared ->
      a.free_slots <- rest;
      idx
  | _ ->
      let idx = Atomic.fetch_and_add a.next_free 1 in
      if idx >= a.cap then
        if a.shared then
          failwith
            (Printf.sprintf "Dd_arena: shared arena capacity exhausted (%d nodes)" a.cap)
        else grow_arena a ~need:(idx + 1);
      idx

(* ------------------------------------------------------------ hash-consing *)

let edge_of pkg ~w n : edge =
  let id = Wtable.intern pkg.a.w w in
  if id = Wtable.zero_id then zero_edge else pack n id

let scale pkg z (e : edge) =
  if is_zero_edge e then zero_edge
  else edge_of pkg ~w:(Cx.mul z (weight pkg e)) (nid e)

let node_hash a i =
  let base = 4 * i in
  let h = mix 0x9E3779B9 a.var_c.{i} in
  let h = mix h a.kids.{base} in
  let h = mix h a.kids.{base + 1} in
  let h = mix h a.kids.{base + 2} in
  mix h a.kids.{base + 3} land max_int

let key_hash var k0 k1 k2 k3 =
  mix (mix (mix (mix (mix 0x9E3779B9 var) k0) k1) k2) k3 land max_int

let shard_of a h = a.shards.(h land a.shard_mask)
let bucket_index h bmask = (h lsr 8) land bmask

let shard_insert a s h i =
  a.next_c.{i} <- s.buckets.{bucket_index h s.bmask};
  s.buckets.{bucket_index h s.bmask} <- i;
  s.count <- s.count + 1;
  if s.count > 2 * (s.bmask + 1) then begin
    (* Double this shard's bucket array and redistribute its chains. *)
    let nmask = (2 * (s.bmask + 1)) - 1 in
    let nb = int_col (nmask + 1) in
    Bigarray.Array1.fill nb 0;
    for b = 0 to s.bmask do
      let node = ref s.buckets.{b} in
      while !node <> 0 do
        let next = a.next_c.{!node} in
        let h = node_hash a !node in
        let nbi = bucket_index h nmask in
        a.next_c.{!node} <- nb.{nbi};
        nb.{nbi} <- !node;
        node := next
      done
    done;
    s.buckets <- nb;
    s.bmask <- nmask;
    s.bresizes <- s.bresizes + 1
  end

(* Find-or-cons the already-normalised kid quadruple. *)
let cons pkg var k0 k1 k2 k3 =
  let a = pkg.a in
  let h = key_hash var k0 k1 k2 k3 in
  let s = shard_of a h in
  if a.shared then
    if not (Mutex.try_lock s.lock) then begin
      s.contended <- s.contended + 1;
      Mutex.lock s.lock
    end;
  let found = ref 0 in
  let i = ref s.buckets.{bucket_index h s.bmask} in
  while !found = 0 && !i <> 0 do
    let n = !i in
    let base = 4 * n in
    if
      a.var_c.{n} = var
      && a.kids.{base} = k0
      && a.kids.{base + 1} = k1
      && a.kids.{base + 2} = k2
      && a.kids.{base + 3} = k3
    then found := n
    else i := a.next_c.{n}
  done;
  let node =
    if !found <> 0 then !found
    else begin
      let n = alloc_slot a in
      let base = 4 * n in
      a.var_c.{n} <- var;
      a.kids.{base} <- k0;
      a.kids.{base + 1} <- k1;
      a.kids.{base + 2} <- k2;
      a.kids.{base + 3} <- k3;
      shard_insert a s h n;
      Atomic.incr a.allocated;
      let live = Atomic.fetch_and_add a.live 1 + 1 in
      if live > pkg.peak_live then pkg.peak_live <- live;
      n
    end
  in
  if a.shared then Mutex.unlock s.lock;
  node

(* Normalising constructor, mirroring {!Dd.make_node}: the first edge of
   maximal magnitude carries weight one, its weight is extracted onto
   the returned edge. *)
let make_node pkg var (edges : edge array) : edge =
  assert (var >= 0);
  let a = pkg.a in
  let width = Array.length edges in
  let best = ref (-1) and best_mag = ref 0.0 in
  for i = 0 to width - 1 do
    let e = edges.(i) in
    if not (is_zero_edge e) then begin
      let m = wmag2 a (wid e) in
      if m > !best_mag then begin
        best := i;
        best_mag := m
      end
    end
  done;
  if !best < 0 then zero_edge
  else begin
    let top = Wtable.get a.w (wid edges.(!best)) in
    let normalise i =
      let e = edges.(i) in
      if is_zero_edge e then zero_edge
      else if i = !best then pack (nid e) Wtable.one_id
      else edge_of pkg ~w:(Cx.div (weight pkg e) top) (nid e)
    in
    let k0 = normalise 0 and k1 = normalise 1 in
    let k2 = if width > 2 then normalise 2 else no_kid
    and k3 = if width > 2 then normalise 3 else no_kid in
    let n = cons pkg var k0 k1 k2 k3 in
    edge_of pkg ~w:top n
  end

(* ------------------------------------------------------------- structure *)

let var_of pkg n = pkg.a.var_c.{n}
let kid pkg n i = pkg.a.kids.{(4 * n) + i}
let is_vector_node pkg n = kid pkg n 2 = no_kid
let node_id (e : edge) = nid e
let live pkg = Atomic.get pkg.a.live
let allocated pkg = Atomic.get pkg.a.allocated

let root pkg (e : edge) =
  let n = nid e in
  if not (is_terminal_id n) then
    match Hashtbl.find_opt pkg.roots n with
    | Some c -> Hashtbl.replace pkg.roots n (c + 1)
    | None -> Hashtbl.replace pkg.roots n 1

let unroot pkg (e : edge) =
  let n = nid e in
  if not (is_terminal_id n) then
    match Hashtbl.find_opt pkg.roots n with
    | Some c when c > 1 -> Hashtbl.replace pkg.roots n (c - 1)
    | Some _ -> Hashtbl.remove pkg.roots n
    | None -> ()

let clear_caches pkg =
  icache_clear pkg.mm_cache;
  icache_clear pkg.mv_cache;
  icache_clear pkg.add_cache;
  icache_clear pkg.adj_cache;
  icache_clear pkg.inner_cache

(* Memoised identity chain, as in the boxed package; the cached edges
   double as GC roots through the marking pass below. *)
let identity pkg n =
  match Hashtbl.find_opt pkg.id_cache n with
  | Some e -> e
  | None ->
      let rec build v acc =
        if v >= n then acc
        else build (v + 1) (make_node pkg v [| acc; zero_edge; zero_edge; acc |])
      in
      let e = build 0 one_edge in
      Hashtbl.replace pkg.id_cache n e;
      e

let is_identity ?(up_to_phase = true) pkg n e =
  let id = identity pkg n in
  nid e = nid id
  &&
  let m = Cx.mag (weight pkg e) in
  if up_to_phase then Float.abs (m -. 1.0) <= 1e-8
  else Cx.approx_equal ~tol:1e-8 (weight pkg e) Cx.one

(* --------------------------------------------------------------------- GC *)

(* Pinned-root compaction.  Phases:
   1. mark everything reachable from the registered roots and the
      memoised identities (iterative, explicit stack);
   2. slide surviving unpinned nodes from the top of the arena into the
      lowest dead slots (rooted nodes are pinned: client-held edges keep
      their ids);
   3. remap every kid pointer and identity-cache entry, rebuild the
      unique table chains, drop the compute caches. *)
let gc pkg =
  if not pkg.owns_arena then 0
  else begin
    let a = pkg.a in
    let top = Atomic.get a.next_free in
    let before = Atomic.get a.live in
    (* 1. mark *)
    let stack = ref [] in
    let push_edge e = if not (is_terminal_id (nid e)) then stack := nid e :: !stack in
    Hashtbl.iter (fun n _ -> stack := n :: !stack) pkg.roots;
    Hashtbl.iter (fun _ e -> push_edge e) pkg.id_cache;
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | n :: rest ->
          stack := rest;
          if a.mark_c.{n} = 0 then begin
            a.mark_c.{n} <- 1;
            let base = 4 * n in
            for j = 0 to 3 do
              let k = a.kids.{base + j} in
              if k <> no_kid && not (is_zero_edge k) then begin
                let kn = nid k in
                if not (is_terminal_id kn) && a.mark_c.{kn} = 0 then stack := kn :: !stack
              end
            done
          end
    done;
    (* 2. compact: two-finger, dead slots collected bottom-up, survivors
       moved top-down.  Pinned (rooted) nodes never move. *)
    let deads = ref [] and ndead = ref 0 in
    for i = top - 1 downto 1 do
      if a.mark_c.{i} = 0 then begin
        deads := i :: !deads;
        incr ndead
      end
    done;
    let remap = Hashtbl.create (max 64 (!ndead / 4)) in
    let rec move i deads =
      if i >= 1 then
        match deads with
        | f :: rest when f < i ->
            if a.mark_c.{i} = 1 && not (Hashtbl.mem pkg.roots i) then begin
              a.var_c.{f} <- a.var_c.{i};
              let bi = 4 * i and bf = 4 * f in
              for j = 0 to 3 do
                a.kids.{bf + j} <- a.kids.{bi + j}
              done;
              a.mark_c.{f} <- 1;
              a.mark_c.{i} <- 0;
              Hashtbl.replace remap i f;
              move (i - 1) rest
            end
            else move (i - 1) deads
        | _ -> ()
    in
    move (top - 1) !deads;
    let new_top = ref 0 in
    for i = 1 to top - 1 do
      if a.mark_c.{i} = 1 then new_top := i
    done;
    let remap_edge e =
      if is_zero_edge e || e = no_kid then e
      else
        let n = nid e in
        match Hashtbl.find_opt remap n with
        | Some f -> pack f (wid e)
        | None -> e
    in
    (* 3. remap kids + identity cache, rebuild the unique table. *)
    for i = 1 to !new_top do
      if a.mark_c.{i} = 1 then begin
        let base = 4 * i in
        for j = 0 to 3 do
          a.kids.{base + j} <- remap_edge a.kids.{base + j}
        done
      end
    done;
    let ids = Hashtbl.fold (fun k e acc -> (k, remap_edge e) :: acc) pkg.id_cache [] in
    Hashtbl.reset pkg.id_cache;
    List.iter (fun (k, e) -> Hashtbl.replace pkg.id_cache k e) ids;
    Array.iter
      (fun s ->
        Bigarray.Array1.fill s.buckets 0;
        s.count <- 0)
      a.shards;
    let after = ref 0 in
    for i = 1 to !new_top do
      if a.mark_c.{i} = 1 then begin
        incr after;
        let h = node_hash a i in
        let s = shard_of a h in
        shard_insert a s h i
      end
    done;
    (* Dead slots below the highest survivor that the slide could not
       fill (they sit under pinned roots): hand them to the allocator,
       or the bump pointer — which can never come back down past a
       pinned slot — leaks them and the arena grows without bound on
       long runs. *)
    let fl = ref [] in
    for i = !new_top - 1 downto 1 do
      if a.mark_c.{i} = 0 then fl := i :: !fl
    done;
    a.free_slots <- !fl;
    Bigarray.Array1.fill (Bigarray.Array1.sub a.mark_c 0 top) 0;
    Atomic.set a.next_free (!new_top + 1);
    Atomic.set a.live !after;
    a.compactions <- a.compactions + 1;
    pkg.gc_runs <- pkg.gc_runs + 1;
    pkg.gc_reclaimed <- pkg.gc_reclaimed + (before - !after);
    clear_caches pkg;
    if pkg.gc_threshold > 0 && !after > pkg.gc_limit * 3 / 4 then
      pkg.gc_limit <- pkg.gc_limit * 2;
    before - !after
  end

let maybe_gc pkg = if pkg.owns_arena && live pkg >= pkg.gc_limit then ignore (gc pkg)

(* ------------------------------------------------------------ arithmetic *)

(* The recursions mirror {!Dd} operation for operation so the two cores
   stay differentially comparable: same operand ordering, same cache
   keys modulo representation, same normalisation. *)

let rec add pkg (e1 : edge) (e2 : edge) : edge =
  if is_zero_edge e1 then e2
  else if is_zero_edge e2 then e1
  else if nid e1 = nid e2 then
    edge_of pkg ~w:(Cx.add (weight pkg e1) (weight pkg e2)) (nid e1)
  else begin
    let e1, e2 = if nid e1 <= nid e2 then (e1, e2) else (e2, e1) in
    let ratio = Cx.div (weight pkg e2) (weight pkg e1) in
    let rw = Wtable.intern pkg.a.w ratio in
    let ratio = Wtable.get pkg.a.w rw in
    let n1 = nid e1 and n2 = nid e2 in
    let h = hash3 n1 n2 rw in
    let cached = icache_find pkg.add_cache h n1 n2 rw in
    let base =
      if cached <> min_int then cached
      else begin
        let r =
          if is_terminal_id n1 then begin
            assert (is_terminal_id n2);
            edge_of pkg ~w:(Cx.add Cx.one ratio) 0
          end
          else begin
            let v = max (var_of pkg n1) (var_of pkg n2) in
            let vector = is_vector_node pkg n1 in
            let c2 j =
              let k = kid pkg n2 j in
              if is_zero_edge k then zero_edge
              else edge_of pkg ~w:(Cx.mul ratio (weight pkg k)) (nid k)
            in
            if vector then
              make_node pkg v
                [| add pkg (kid pkg n1 0) (c2 0); add pkg (kid pkg n1 1) (c2 1) |]
            else
              make_node pkg v
                [|
                  add pkg (kid pkg n1 0) (c2 0);
                  add pkg (kid pkg n1 1) (c2 1);
                  add pkg (kid pkg n1 2) (c2 2);
                  add pkg (kid pkg n1 3) (c2 3);
                |]
          end
        in
        icache_store pkg.add_cache h n1 n2 rw r;
        r
      end
    in
    scale pkg (weight pkg e1) base
  end

let rec mul pkg (e1 : edge) (e2 : edge) : edge =
  if is_zero_edge e1 || is_zero_edge e2 then zero_edge
  else begin
    let n1 = nid e1 and n2 = nid e2 in
    if is_terminal_id n1 && is_terminal_id n2 then
      edge_of pkg ~w:(Cx.mul (weight pkg e1) (weight pkg e2)) 0
    else begin
      assert (var_of pkg n1 = var_of pkg n2);
      let v = var_of pkg n1 in
      let h = hash3 n1 n2 0 in
      let cached = icache_find pkg.mm_cache h n1 n2 0 in
      let base =
        if cached <> min_int then cached
        else begin
          let a i = kid pkg n1 i and b j = kid pkg n2 j in
          let entry i j =
            add pkg
              (mul pkg (a ((2 * i) + 0)) (b ((2 * 0) + j)))
              (mul pkg (a ((2 * i) + 1)) (b ((2 * 1) + j)))
          in
          let r = make_node pkg v [| entry 0 0; entry 0 1; entry 1 0; entry 1 1 |] in
          icache_store pkg.mm_cache h n1 n2 0 r;
          r
        end
      in
      scale pkg (Cx.mul (weight pkg e1) (weight pkg e2)) base
    end
  end

let rec mul_vec pkg (m : edge) (x : edge) : edge =
  if is_zero_edge m || is_zero_edge x then zero_edge
  else begin
    let nm = nid m and nx = nid x in
    if is_terminal_id nm && is_terminal_id nx then
      edge_of pkg ~w:(Cx.mul (weight pkg m) (weight pkg x)) 0
    else begin
      assert (var_of pkg nm = var_of pkg nx);
      let lvl = var_of pkg nm in
      let h = hash3 nm nx 1 in
      let cached = icache_find pkg.mv_cache h nm nx 1 in
      let base =
        if cached <> min_int then cached
        else begin
          let a i = kid pkg nm i and v j = kid pkg nx j in
          let entry i =
            add pkg (mul_vec pkg (a ((2 * i) + 0)) (v 0)) (mul_vec pkg (a ((2 * i) + 1)) (v 1))
          in
          let r = make_node pkg lvl [| entry 0; entry 1 |] in
          icache_store pkg.mv_cache h nm nx 1 r;
          r
        end
      in
      scale pkg (Cx.mul (weight pkg m) (weight pkg x)) base
    end
  end

let rec adjoint pkg (e : edge) : edge =
  if is_zero_edge e then zero_edge
  else if is_terminal_id (nid e) then edge_of pkg ~w:(Cx.conj (weight pkg e)) 0
  else begin
    let n = nid e in
    let h = hash3 n 0 2 in
    let cached = icache_find pkg.adj_cache h n 0 2 in
    let base =
      if cached <> min_int then cached
      else begin
        let v = var_of pkg n in
        let c i = kid pkg n i in
        let r =
          make_node pkg v
            [| adjoint pkg (c 0); adjoint pkg (c 2); adjoint pkg (c 1); adjoint pkg (c 3) |]
        in
        icache_store pkg.adj_cache h n 0 2 r;
        r
      end
    in
    scale pkg (Cx.conj (weight pkg e)) base
  end

let rec inner pkg (e1 : edge) (e2 : edge) : Cx.t =
  if is_zero_edge e1 || is_zero_edge e2 then Cx.zero
  else begin
    let n1 = nid e1 and n2 = nid e2 in
    if is_terminal_id n1 && is_terminal_id n2 then
      Cx.mul (Cx.conj (weight pkg e1)) (weight pkg e2)
    else begin
      assert (var_of pkg n1 = var_of pkg n2);
      let h = hash3 n1 n2 3 in
      let cached = icache_find pkg.inner_cache h n1 n2 3 in
      let base_wid =
        if cached <> min_int then cached
        else begin
          let a i = kid pkg n1 i and b j = kid pkg n2 j in
          let r = Cx.add (inner pkg (a 0) (b 0)) (inner pkg (a 1) (b 1)) in
          let rw = Wtable.intern pkg.a.w r in
          icache_store pkg.inner_cache h n1 n2 3 rw;
          rw
        end
      in
      Cx.mul
        (Cx.mul (Cx.conj (weight pkg e1)) (weight pkg e2))
        (Wtable.get pkg.a.w base_wid)
    end
  end

let kets_bits pkg n bit =
  let rec build v acc =
    if v >= n then acc
    else
      let edges = if bit v then [| zero_edge; acc |] else [| acc; zero_edge |] in
      build (v + 1) (make_node pkg v edges)
  in
  build 0 one_edge

let kets pkg n i = kets_bits pkg n (fun v -> (i lsr v) land 1 = 1)

let trace pkg (e : edge) =
  Dd_trace.trace ~is_zero:is_zero_edge
    ~is_terminal:(fun c -> is_terminal_id (nid c))
    ~weight:(weight pkg)
    ~node_key:(fun c -> nid c)
    ~diag:(fun c j -> kid pkg (nid c) j)
    e

let fidelity_to_identity pkg ~n e = Cx.mag (trace pkg e) /. Float.pow 2.0 (float_of_int n)

(* ------------------------------------------------------------ diagnostics *)

let node_count pkg (e : edge) =
  let seen = Hashtbl.create 256 in
  let rec visit n =
    if (not (is_terminal_id n)) && not (Hashtbl.mem seen n) then begin
      Hashtbl.replace seen n ();
      for j = 0 to 3 do
        let k = kid pkg n j in
        if k <> no_kid && not (is_zero_edge k) then visit (nid k)
      done
    end
  in
  visit (nid e);
  Hashtbl.length seen

(* Dense exports for the differential tests (small circuits only). *)
let to_dmatrix pkg (e : edge) ~n =
  let dim = 1 lsl n in
  let m = Dmatrix.zero dim dim in
  let rec fill e v row col w =
    if not (is_zero_edge e) then begin
      let w = Cx.mul w (weight pkg e) in
      if v < 0 then Dmatrix.set m row col (Cx.add (Dmatrix.get m row col) w)
      else begin
        let half = 1 lsl v in
        let node = nid e in
        let sub j = kid pkg node j in
        fill (sub 0) (v - 1) row col w;
        fill (sub 1) (v - 1) row (col + half) w;
        fill (sub 2) (v - 1) (row + half) col w;
        fill (sub 3) (v - 1) (row + half) (col + half) w
      end
    end
  in
  fill e (n - 1) 0 0 Cx.one;
  m

let to_vector pkg (e : edge) ~n =
  let v = Array.make (1 lsl n) Cx.zero in
  let rec fill e lvl idx w =
    if not (is_zero_edge e) then begin
      let w = Cx.mul w (weight pkg e) in
      if lvl < 0 then v.(idx) <- Cx.add v.(idx) w
      else begin
        let half = 1 lsl lvl in
        let node = nid e in
        fill (kid pkg node 0) (lvl - 1) idx w;
        fill (kid pkg node 1) (lvl - 1) (idx + half) w
      end
    end
  in
  fill e (n - 1) 0 Cx.one;
  v

let arena_stats pkg =
  let a = pkg.a in
  let contended = Array.fold_left (fun acc s -> acc + s.contended) 0 a.shards in
  let bresizes = Array.fold_left (fun acc s -> acc + s.bresizes) 0 a.shards in
  {
    Dd.a_capacity = a.cap;
    a_occupancy = Atomic.get a.live;
    a_resizes = a.resizes;
    a_compactions = a.compactions;
    a_shards = Array.length a.shards;
    a_contended = contended;
    a_shard_resizes = bresizes;
    a_weights = Wtable.size a.w;
  }

let stats pkg =
  {
    Dd.allocated = allocated pkg;
    live = live pkg;
    peak_live = pkg.peak_live;
    gc_runs = pkg.gc_runs;
    gc_reclaimed = pkg.gc_reclaimed;
    mm = icache_stats pkg.mm_cache;
    mv = icache_stats pkg.mv_cache;
    add_ = icache_stats pkg.add_cache;
    adj = icache_stats pkg.adj_cache;
    inner_ = icache_stats pkg.inner_cache;
    ctable_entries = Wtable.size pkg.a.w;
    arena = Some (arena_stats pkg);
  }
