open Oqec_base

(* Real components are interned individually: each float is assigned to the
   bucket [round (v / tol)]; on lookup the neighbouring buckets are probed
   too, so any two values within [tol] of a stored representative collapse
   onto it. *)

type t = { tol : float; tbl : (int, float) Hashtbl.t }

(* Bucket index for [v], or [None] when no sane bucket exists:
   [int_of_float] on NaN/infinities or on quotients beyond the native-int
   range is undefined behaviour and would produce garbage keys, silently
   aliasing unrelated values. *)
let bucket t v =
  let q = Float.round (v /. t.tol) in
  if Float.is_finite q && Float.abs q < 1e18 then Some (int_of_float q) else None

let seed_float t v =
  match bucket t v with
  | Some b -> if not (Hashtbl.mem t.tbl b) then Hashtbl.replace t.tbl b v
  | None -> ()

let seed t =
  let s = 1.0 /. sqrt 2.0 in
  List.iter (seed_float t) [ 0.0; 1.0; -1.0; 0.5; -0.5; s; -.s ]

let create ~tol =
  if tol <= 0.0 then invalid_arg "Ctable.create: tolerance must be positive";
  let t = { tol; tbl = Hashtbl.create 4096 } in
  seed t;
  t

let tolerance t = t.tol

let intern_float t v =
  (* Normalise negative zero so that structural equality and hashing agree. *)
  let v = if v = 0.0 then 0.0 else v in
  match bucket t v with
  | None -> v (* non-finite or out of bucket range: pass through uninterned *)
  | Some b -> (
      let probe k =
        match Hashtbl.find_opt t.tbl k with
        | Some r when Float.abs (r -. v) <= t.tol -> Some r
        | Some _ | None -> None
      in
      match probe b with
      | Some r -> r
      | None -> (
          match probe (b - 1) with
          | Some r -> r
          | None -> (
              match probe (b + 1) with
              | Some r -> r
              | None ->
                  Hashtbl.replace t.tbl b v;
                  v)))

let intern t (z : Cx.t) = Cx.make (intern_float t z.Cx.re) (intern_float t z.Cx.im)
let size t = Hashtbl.length t.tbl

let clear t =
  Hashtbl.clear t.tbl;
  seed t
