open Oqec_base

type node = { id : int; var : int; edges : edge array }
and edge = { node : node; w : Cx.t }

let terminal = { id = 0; var = -1; edges = [||] }
let is_terminal n = n.var = -1
let zero_edge = { node = terminal; w = Cx.zero }
let one_edge = { node = terminal; w = Cx.one }
let is_zero_edge e = e.w.Cx.re = 0.0 && e.w.Cx.im = 0.0

(* Unique-table key: level plus child ids and interned weights.  Interned
   weights make structural equality and hashing reliable. *)
type ukey = { kvar : int; kids : int array; kre : float array; kim : float array }

type pkg = {
  ctab : Ctable.t;
  mutable next_id : int;
  unique : (ukey, node) Hashtbl.t;
  mm_cache : (int * int, edge) Ccache.t;
  mv_cache : (int * int, edge) Ccache.t;
  add_cache : (int * int * float * float, edge) Ccache.t;
  adj_cache : (int, edge) Ccache.t;
  inner_cache : (int * int, Cx.t) Ccache.t;
  (* GC state: externally registered live edges (with registration counts)
     plus the memoised identities act as mark roots. *)
  roots : (int, node * int) Hashtbl.t;
  id_cache : (int, edge) Hashtbl.t;
  gc_threshold : int;  (* as configured; 0 = collect at every safe point *)
  mutable gc_limit : int;  (* current trigger level; grows to avoid thrashing *)
  mutable gc_runs : int;
  mutable gc_reclaimed : int;
  mutable peak_live : int;
  (* Client callback run at every GC safe point (gate application), before
     the collection check.  Portfolio checkers hang their deadline- and
     cancellation-polling here so every DD-backed worker reacts at the
     same cadence as the collector, with no extra plumbing through the
     circuit-application layer. *)
  mutable safe_point_hook : unit -> unit;
}

let default_gc_threshold = 65536
let default_cache_bits = 14

let create ?(tol = Cx.default_tolerance) ?(gc_threshold = default_gc_threshold)
    ?(cache_bits = default_cache_bits) () =
  if gc_threshold < 0 then invalid_arg "Dd.create: gc_threshold must be >= 0";
  {
    ctab = Ctable.create ~tol;
    next_id = 1;
    unique = Hashtbl.create 65536;
    mm_cache = Ccache.create ~bits:cache_bits;
    mv_cache = Ccache.create ~bits:cache_bits;
    add_cache = Ccache.create ~bits:cache_bits;
    adj_cache = Ccache.create ~bits:(min cache_bits 10);
    inner_cache = Ccache.create ~bits:(min cache_bits 10);
    roots = Hashtbl.create 64;
    id_cache = Hashtbl.create 8;
    gc_threshold;
    gc_limit = gc_threshold;
    gc_runs = 0;
    gc_reclaimed = 0;
    peak_live = 0;
    safe_point_hook = ignore;
  }

let on_safe_point pkg f = pkg.safe_point_hook <- f
let at_safe_point_hook pkg = pkg.safe_point_hook ()

let tolerance pkg = Ctable.tolerance pkg.ctab
let intern pkg z = Ctable.intern pkg.ctab z

let edge_of pkg ~w node =
  let w = intern pkg w in
  if Cx.mag2 w = 0.0 then zero_edge else { node; w }

let scale pkg z e = if is_zero_edge e then zero_edge else edge_of pkg ~w:(Cx.mul z e.w) e.node

let key_of var (edges : edge array) =
  {
    kvar = var;
    kids = Array.map (fun e -> e.node.id) edges;
    kre = Array.map (fun e -> e.w.Cx.re) edges;
    kim = Array.map (fun e -> e.w.Cx.im) edges;
  }

(* Normalising constructor: extract the weight of the first maximal-
   magnitude edge, so that equal-up-to-scalar sub-matrices share a node. *)
let make_node pkg var (edges : edge array) =
  assert (var >= 0);
  let best = ref (-1) and best_mag = ref 0.0 in
  Array.iteri
    (fun i e ->
      let m = Cx.mag2 e.w in
      if m > !best_mag then begin
        best := i;
        best_mag := m
      end)
    edges;
  if !best < 0 then zero_edge
  else begin
    let top = edges.(!best).w in
    let normalise i (e : edge) =
      if is_zero_edge e then zero_edge
      else if i = !best then { node = e.node; w = Cx.one }
      else edge_of pkg ~w:(Cx.div e.w top) e.node
    in
    let edges = Array.mapi normalise edges in
    let key = key_of var edges in
    let node =
      match Hashtbl.find_opt pkg.unique key with
      | Some n -> n
      | None ->
          let n = { id = pkg.next_id; var; edges } in
          pkg.next_id <- pkg.next_id + 1;
          Hashtbl.replace pkg.unique key n;
          let live = Hashtbl.length pkg.unique in
          if live > pkg.peak_live then pkg.peak_live <- live;
          n
    in
    { node; w = intern pkg top }
  end

(* --------------------------------------------------------------------- GC *)

let live pkg = Hashtbl.length pkg.unique

let root pkg (e : edge) =
  let n = e.node in
  if not (is_terminal n) then
    match Hashtbl.find_opt pkg.roots n.id with
    | Some (_, c) -> Hashtbl.replace pkg.roots n.id (n, c + 1)
    | None -> Hashtbl.replace pkg.roots n.id (n, 1)

let unroot pkg (e : edge) =
  let n = e.node in
  if not (is_terminal n) then
    match Hashtbl.find_opt pkg.roots n.id with
    | Some (_, c) when c > 1 -> Hashtbl.replace pkg.roots n.id (n, c - 1)
    | Some _ -> Hashtbl.remove pkg.roots n.id
    | None -> ()

let clear_caches pkg =
  Ccache.clear pkg.mm_cache;
  Ccache.clear pkg.mv_cache;
  Ccache.clear pkg.add_cache;
  Ccache.clear pkg.adj_cache;
  Ccache.clear pkg.inner_cache

(* Mark-and-sweep over the unique table.  Everything reachable from a
   registered root (or a memoised identity) survives; unreachable nodes
   are dropped from the unique table so their keys can be re-consed, and
   the OCaml GC reclaims the structures once no client value holds them.
   The compute tables may reference collected nodes by id, so they are
   invalidated wholesale — node ids are never reused (next_id is
   monotonic), hence a stale entry could never alias a fresh node, but
   keeping entries for dead nodes would pin no-longer-canonical results.

   Only call at a safe point: any unrooted edge held by the caller stays
   usable (the structure itself is immortal while referenced) but loses
   canonicity — a later [make_node] with the same key builds a fresh
   node that no longer compares [==] to it. *)
let gc pkg =
  let marked = Hashtbl.create (max 256 (live pkg / 2)) in
  let rec mark n =
    if (not (is_terminal n)) && not (Hashtbl.mem marked n.id) then begin
      Hashtbl.replace marked n.id ();
      Array.iter (fun (c : edge) -> mark c.node) n.edges
    end
  in
  Hashtbl.iter (fun _ (n, _) -> mark n) pkg.roots;
  Hashtbl.iter (fun _ (e : edge) -> mark e.node) pkg.id_cache;
  let before = live pkg in
  Hashtbl.filter_map_inplace
    (fun _ n -> if Hashtbl.mem marked n.id then Some n else None)
    pkg.unique;
  let after = live pkg in
  pkg.gc_runs <- pkg.gc_runs + 1;
  pkg.gc_reclaimed <- pkg.gc_reclaimed + (before - after);
  clear_caches pkg;
  (* If the roots themselves occupy most of the trigger level, collecting
     again soon would reclaim nothing: back off exponentially. *)
  if pkg.gc_threshold > 0 && after > pkg.gc_limit * 3 / 4 then
    pkg.gc_limit <- pkg.gc_limit * 2;
  before - after

let maybe_gc pkg = if live pkg >= pkg.gc_limit then ignore (gc pkg)

(* ------------------------------------------------------------- Structure *)

let cofactors e v =
  if is_zero_edge e then [| zero_edge; zero_edge; zero_edge; zero_edge |]
  else begin
    assert (e.node.var = v);
    Array.map
      (fun (c : edge) ->
        if is_zero_edge c then zero_edge else { node = c.node; w = Cx.mul e.w c.w })
      e.node.edges
  end

let vcofactors e v =
  if is_zero_edge e then [| zero_edge; zero_edge |]
  else begin
    assert (e.node.var = v);
    Array.map
      (fun (c : edge) ->
        if is_zero_edge c then zero_edge else { node = c.node; w = Cx.mul e.w c.w })
      e.node.edges
  end

(* Memoised per package: the identity chain is rebuilt by every
   [is_identity] probe of the checker hot loop otherwise.  The cached
   edges double as GC roots so a collection can never sever the chain. *)
let identity pkg n =
  match Hashtbl.find_opt pkg.id_cache n with
  | Some e -> e
  | None ->
      let rec build v acc =
        if v >= n then acc
        else build (v + 1) (make_node pkg v [| acc; zero_edge; zero_edge; acc |])
      in
      let e = build 0 one_edge in
      Hashtbl.replace pkg.id_cache n e;
      e

let is_identity ?(up_to_phase = true) pkg n e =
  let id = identity pkg n in
  e.node == id.node
  &&
  if up_to_phase then Float.abs (Cx.mag e.w -. 1.0) <= 1e-8
  else Cx.approx_equal ~tol:1e-8 e.w Cx.one

let trace e =
  Dd_trace.trace ~is_zero:is_zero_edge
    ~is_terminal:(fun (c : edge) -> is_terminal c.node)
    ~weight:(fun (c : edge) -> c.w)
    ~node_key:(fun (c : edge) -> c.node.id)
    ~diag:(fun (c : edge) j -> c.node.edges.(j))
    e

(* Computed in floats: [2^n] overflows native integers beyond 62 qubits
   (the Manhattan register has 65). *)
let fidelity_to_identity ~n e = Cx.mag (trace e) /. Float.pow 2.0 (float_of_int n)

(* ------------------------------------------------------------ Arithmetic *)

let float_key (z : Cx.t) = (z.Cx.re, z.Cx.im)

let rec add pkg (e1 : edge) (e2 : edge) =
  if is_zero_edge e1 then e2
  else if is_zero_edge e2 then e1
  else if e1.node == e2.node then edge_of pkg ~w:(Cx.add e1.w e2.w) e1.node
  else begin
    (* Commutative: order the operands deterministically. *)
    let e1, e2 =
      if e1.node.id <= e2.node.id then (e1, e2) else (e2, e1)
    in
    let ratio = intern pkg (Cx.div e2.w e1.w) in
    let kre, kim = float_key ratio in
    let key = (e1.node.id, e2.node.id, kre, kim) in
    let base =
      Ccache.memo pkg.add_cache key (fun () ->
          if is_terminal e1.node then begin
            assert (is_terminal e2.node);
            edge_of pkg ~w:(Cx.add Cx.one ratio) terminal
          end
          else begin
            let v = max e1.node.var e2.node.var in
            let c1 = cofactors { e1 with w = Cx.one } v
            and c2 = cofactors { e2 with w = ratio } v in
            let width = Array.length e1.node.edges in
            assert (Array.length e2.node.edges = width);
            if width = 4 then
              make_node pkg v (Array.init 4 (fun i -> add pkg c1.(i) c2.(i)))
            else
              make_node pkg v (Array.init 2 (fun i -> add pkg c1.(i) c2.(i)))
          end)
    in
    scale pkg e1.w base
  end

let rec mul pkg (e1 : edge) (e2 : edge) =
  if is_zero_edge e1 || is_zero_edge e2 then zero_edge
  else if is_terminal e1.node && is_terminal e2.node then
    edge_of pkg ~w:(Cx.mul e1.w e2.w) terminal
  else begin
    assert (e1.node.var = e2.node.var);
    let v = e1.node.var in
    let key = (e1.node.id, e2.node.id) in
    let base =
      Ccache.memo pkg.mm_cache key (fun () ->
          let a = cofactors { e1 with w = Cx.one } v
          and b = cofactors { e2 with w = Cx.one } v in
          let entry i j =
            add pkg
              (mul pkg a.((2 * i) + 0) b.((2 * 0) + j))
              (mul pkg a.((2 * i) + 1) b.((2 * 1) + j))
          in
          make_node pkg v [| entry 0 0; entry 0 1; entry 1 0; entry 1 1 |])
    in
    scale pkg (Cx.mul e1.w e2.w) base
  end

let rec mul_vec pkg (m : edge) (v : edge) =
  if is_zero_edge m || is_zero_edge v then zero_edge
  else if is_terminal m.node && is_terminal v.node then
    edge_of pkg ~w:(Cx.mul m.w v.w) terminal
  else begin
    assert (m.node.var = v.node.var);
    let lvl = m.node.var in
    let key = (m.node.id, v.node.id) in
    let base =
      Ccache.memo pkg.mv_cache key (fun () ->
          let a = cofactors { m with w = Cx.one } lvl
          and x = vcofactors { v with w = Cx.one } lvl in
          let entry i =
            add pkg (mul_vec pkg a.((2 * i) + 0) x.(0)) (mul_vec pkg a.((2 * i) + 1) x.(1))
          in
          make_node pkg lvl [| entry 0; entry 1 |])
    in
    scale pkg (Cx.mul m.w v.w) base
  end

let rec adjoint pkg (e : edge) =
  if is_zero_edge e then zero_edge
  else if is_terminal e.node then edge_of pkg ~w:(Cx.conj e.w) terminal
  else begin
    let base =
      Ccache.memo pkg.adj_cache e.node.id (fun () ->
          let v = e.node.var in
          let c = cofactors { e with w = Cx.one } v in
          (* Transpose the block structure and conjugate recursively. *)
          make_node pkg v
            [| adjoint pkg c.(0); adjoint pkg c.(2); adjoint pkg c.(1); adjoint pkg c.(3) |])
    in
    scale pkg (Cx.conj e.w) base
  end

let rec inner pkg (e1 : edge) (e2 : edge) =
  if is_zero_edge e1 || is_zero_edge e2 then Cx.zero
  else if is_terminal e1.node && is_terminal e2.node then Cx.mul (Cx.conj e1.w) e2.w
  else begin
    assert (e1.node.var = e2.node.var);
    let v = e1.node.var in
    let key = (e1.node.id, e2.node.id) in
    let base =
      Ccache.memo pkg.inner_cache key (fun () ->
          let a = vcofactors { e1 with w = Cx.one } v
          and b = vcofactors { e2 with w = Cx.one } v in
          Cx.add (inner pkg a.(0) b.(0)) (inner pkg a.(1) b.(1)))
    in
    Cx.mul (Cx.mul (Cx.conj e1.w) e2.w) base
  end

let kets_bits pkg n bit =
  let rec build v acc =
    if v >= n then acc
    else
      let edges = if bit v then [| zero_edge; acc |] else [| acc; zero_edge |] in
      build (v + 1) (make_node pkg v edges)
  in
  build 0 one_edge

let kets pkg n i = kets_bits pkg n (fun v -> (i lsr v) land 1 = 1)

(* ------------------------------------------------------------ Diagnostics *)

let node_count e =
  let seen = Hashtbl.create 256 in
  let rec visit n =
    if (not (is_terminal n)) && not (Hashtbl.mem seen n.id) then begin
      Hashtbl.replace seen n.id ();
      Array.iter (fun (c : edge) -> visit c.node) n.edges
    end
  in
  visit e.node;
  Hashtbl.length seen

let allocated pkg = pkg.next_id - 1

type arena_stats = {
  a_capacity : int;
  a_occupancy : int;
  a_resizes : int;
  a_compactions : int;
  a_shards : int;
  a_contended : int;
  a_shard_resizes : int;
  a_weights : int;
}

type stats = {
  allocated : int;
  live : int;
  peak_live : int;
  gc_runs : int;
  gc_reclaimed : int;
  mm : Ccache.stats;
  mv : Ccache.stats;
  add_ : Ccache.stats;
  adj : Ccache.stats;
  inner_ : Ccache.stats;
  ctable_entries : int;
  arena : arena_stats option;
}

let stats pkg =
  {
    allocated = allocated pkg;
    live = live pkg;
    peak_live = pkg.peak_live;
    gc_runs = pkg.gc_runs;
    gc_reclaimed = pkg.gc_reclaimed;
    mm = Ccache.stats pkg.mm_cache;
    mv = Ccache.stats pkg.mv_cache;
    add_ = Ccache.stats pkg.add_cache;
    adj = Ccache.stats pkg.adj_cache;
    inner_ = Ccache.stats pkg.inner_cache;
    ctable_entries = Ctable.size pkg.ctab;
    arena = None;
  }

let cache_hits s =
  s.mm.Ccache.s_hits + s.mv.Ccache.s_hits + s.add_.Ccache.s_hits + s.adj.Ccache.s_hits
  + s.inner_.Ccache.s_hits

let pp_stats ppf s =
  let cache name (c : Ccache.stats) =
    if c.Ccache.s_hits + c.Ccache.s_misses > 0 then
      Format.fprintf ppf "  %-5s hits %d, misses %d, overwrites %d (%.1f%% hit, %d/%d slots)@,"
        name c.Ccache.s_hits c.Ccache.s_misses c.Ccache.s_overwrites
        (100.0 *. Ccache.hit_rate c)
        c.Ccache.s_filled c.Ccache.capacity
  in
  Format.fprintf ppf "@[<v>nodes: %d allocated, %d live (peak %d)@," s.allocated s.live
    s.peak_live;
  Format.fprintf ppf "gc: %d run(s), %d node(s) reclaimed@," s.gc_runs s.gc_reclaimed;
  cache "mm" s.mm;
  cache "mv" s.mv;
  cache "add" s.add_;
  cache "adj" s.adj;
  cache "inner" s.inner_;
  Format.fprintf ppf "ctable: %d distinct reals" s.ctable_entries;
  (match s.arena with
  | None -> ()
  | Some a ->
      Format.fprintf ppf "@,arena: %d/%d slots, %d resize(s), %d compaction(s)@,"
        a.a_occupancy a.a_capacity a.a_resizes a.a_compactions;
      Format.fprintf ppf "arena: %d shard(s), %d contended cons, %d shard resize(s), %d weights"
        a.a_shards a.a_contended a.a_shard_resizes a.a_weights);
  Format.fprintf ppf "@]"

let stats_to_json s =
  let cache (c : Ccache.stats) =
    Printf.sprintf
      "{\"hits\":%d,\"misses\":%d,\"overwrites\":%d,\"hit_rate\":%.4f,\"filled\":%d,\"capacity\":%d}"
      c.Ccache.s_hits c.Ccache.s_misses c.Ccache.s_overwrites (Ccache.hit_rate c)
      c.Ccache.s_filled c.Ccache.capacity
  in
  let arena =
    match s.arena with
    | None -> ""
    | Some a ->
        Printf.sprintf
          ",\"arena\":{\"capacity\":%d,\"occupancy\":%d,\"resizes\":%d,\"compactions\":%d,\"shards\":%d,\"shard_contended\":%d,\"shard_resizes\":%d,\"weights\":%d}"
          a.a_capacity a.a_occupancy a.a_resizes a.a_compactions a.a_shards a.a_contended
          a.a_shard_resizes a.a_weights
  in
  Printf.sprintf
    "{\"allocated\":%d,\"live\":%d,\"peak_live\":%d,\"gc_runs\":%d,\"gc_reclaimed\":%d,\"ctable_entries\":%d,\"mm\":%s,\"mv\":%s,\"add\":%s,\"adj\":%s,\"inner\":%s%s}"
    s.allocated s.live s.peak_live s.gc_runs s.gc_reclaimed s.ctable_entries (cache s.mm)
    (cache s.mv) (cache s.add_) (cache s.adj) (cache s.inner_) arena

let pp_edge ppf e =
  Format.fprintf ppf "edge(w=%a, nodes=%d)" Cx.pp e.w (node_count e)
