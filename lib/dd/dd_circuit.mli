(** Bridging circuits and decision diagrams: gate-DD construction,
    left/right application and whole-circuit functionality. *)

open Oqec_base
open Oqec_circuit

(** [gate_dd pkg n ~controls ~target u] is the DD of the 2x2 unitary [u]
    applied to wire [target], controlled on [controls], embedded in an
    [n]-qubit register. *)
val gate_dd : Dd.pkg -> int -> controls:int list -> target:int -> Dmatrix.t -> Dd.edge

(** [op_dds pkg n op] lists the gate DDs an operation expands to (SWAP
    becomes three CNOTs, barriers vanish). *)
val op_dds : Dd.pkg -> int -> Circuit.op -> Dd.edge list

(** [apply_op pkg n dd op] is [U_op * dd] (the gate applied "from the
    right side of the circuit", i.e. matrix product on the left).

    The three [apply_op*] functions are the package's GC safe points:
    [dd] is pinned, {!Dd.maybe_gc} may collect, and only then is the
    operation applied.  Any {e other} edge the caller wants to keep
    canonical across the call must be {!Dd.root}ed. *)
val apply_op : Dd.pkg -> int -> Dd.edge -> Circuit.op -> Dd.edge

(** [apply_op_left pkg n dd op] is [dd * U_op]. *)
val apply_op_left : Dd.pkg -> int -> Dd.edge -> Circuit.op -> Dd.edge

(** [apply_op_vec pkg n v op] applies an operation to a state-vector DD. *)
val apply_op_vec : Dd.pkg -> int -> Dd.edge -> Circuit.op -> Dd.edge

(** [of_circuit pkg c] builds the full system-matrix DD of [c] by
    sequential gate application (the straightforward strategy that the
    alternating checker improves upon). *)
val of_circuit : Dd.pkg -> Circuit.t -> Dd.edge

(** [simulate pkg c ~input] runs the circuit on basis state [|input>]
    and returns the output state-vector DD. *)
val simulate : Dd.pkg -> Circuit.t -> input:int -> Dd.edge
