open Oqec_base
open Oqec_circuit

(* The DD-core seam: everything the checking paradigms need from a DD
   package, abstracted over the representation so the boxed package
   ({!Dd}, pointer-based records) and the arena package ({!Dd_arena},
   struct-of-arrays, packed integer edges) are interchangeable behind
   [--dd-core {boxed,arena}].  The boxed core stays the differential
   baseline; checkers instantiate their implementation functor once per
   core and dispatch on {!kind}. *)

type kind = Boxed | Arena

let kind_of_string = function
  | "boxed" -> Some Boxed
  | "arena" -> Some Arena
  | _ -> None

let kind_to_string = function Boxed -> "boxed" | Arena -> "arena"

module type S = sig
  type pkg
  type edge

  val kind : kind
  val create : ?tol:float -> ?gc_threshold:int -> unit -> pkg
  val on_safe_point : pkg -> (unit -> unit) -> unit
  val identity : pkg -> int -> edge
  val kets_bits : pkg -> int -> (int -> bool) -> edge
  val root : pkg -> edge -> unit
  val unroot : pkg -> edge -> unit
  val is_identity : ?up_to_phase:bool -> pkg -> int -> edge -> bool
  val fidelity_to_identity : pkg -> n:int -> edge -> float
  val node_count : pkg -> edge -> int
  val allocated : pkg -> int
  val stats : pkg -> Dd.stats
  val mul : pkg -> edge -> edge -> edge
  val mul_vec : pkg -> edge -> edge -> edge
  val adjoint : pkg -> edge -> edge
  val inner : pkg -> edge -> edge -> Cx.t

  (** Structural root equality — meaningful only under canonicity, i.e.
      while both edges are rooted or no collection has intervened. *)
  val same_node : edge -> edge -> bool

  val weight : pkg -> edge -> Cx.t
  val op_dds : pkg -> int -> Circuit.op -> edge list
  val apply_op : pkg -> int -> edge -> Circuit.op -> edge
  val apply_op_left : pkg -> int -> edge -> Circuit.op -> edge
  val apply_op_vec : pkg -> int -> edge -> Circuit.op -> edge
end

module Boxed_core : S with type pkg = Dd.pkg and type edge = Dd.edge = struct
  type pkg = Dd.pkg
  type edge = Dd.edge

  let kind = Boxed
  let create ?tol ?gc_threshold () = Dd.create ?tol ?gc_threshold ()
  let on_safe_point = Dd.on_safe_point
  let identity = Dd.identity
  let kets_bits = Dd.kets_bits
  let root = Dd.root
  let unroot = Dd.unroot
  let is_identity ?up_to_phase pkg n e = Dd.is_identity ?up_to_phase pkg n e
  let fidelity_to_identity _pkg ~n e = Dd.fidelity_to_identity ~n e
  let node_count _pkg e = Dd.node_count e
  let allocated = Dd.allocated
  let stats = Dd.stats
  let mul = Dd.mul
  let mul_vec = Dd.mul_vec
  let adjoint = Dd.adjoint
  let inner = Dd.inner
  let same_node (e1 : edge) (e2 : edge) = e1.Dd.node == e2.Dd.node
  let weight _pkg (e : edge) = e.Dd.w
  let op_dds = Dd_circuit.op_dds
  let apply_op = Dd_circuit.apply_op
  let apply_op_left = Dd_circuit.apply_op_left
  let apply_op_vec = Dd_circuit.apply_op_vec
end

module Arena_core : S with type pkg = Dd_arena.pkg and type edge = Dd_arena.edge = struct
  type pkg = Dd_arena.pkg
  type edge = Dd_arena.edge

  let kind = Arena
  let create ?tol ?gc_threshold () = Dd_arena.create ?tol ?gc_threshold ()
  let on_safe_point = Dd_arena.on_safe_point
  let identity = Dd_arena.identity
  let kets_bits = Dd_arena.kets_bits
  let root = Dd_arena.root
  let unroot = Dd_arena.unroot
  let is_identity ?up_to_phase pkg n e = Dd_arena.is_identity ?up_to_phase pkg n e
  let fidelity_to_identity pkg ~n e = Dd_arena.fidelity_to_identity pkg ~n e
  let node_count = Dd_arena.node_count
  let allocated = Dd_arena.allocated
  let stats = Dd_arena.stats
  let mul = Dd_arena.mul
  let mul_vec = Dd_arena.mul_vec
  let adjoint = Dd_arena.adjoint
  let inner = Dd_arena.inner
  let same_node (e1 : edge) (e2 : edge) = Dd_arena.node_id e1 = Dd_arena.node_id e2
  let weight = Dd_arena.weight

  module C = Dd_circuit_core.Make (Dd_arena)

  let op_dds = C.op_dds
  let apply_op = C.apply_op
  let apply_op_left = C.apply_op_left
  let apply_op_vec = C.apply_op_vec
end
