open Oqec_base

(* Dense-id complex-weight interning for the arena DD core.

   The boxed package interns weights by value ({!Ctable} maps each float
   onto a canonical representative within the tolerance); the arena packs
   edges into immediate integers, so weights must additionally collapse
   onto small dense ids.  Every weight is first canonicalised through the
   shared {!Ctable} (which also folds [-0.] onto [+0.]), then the
   canonical (re, im) pair is mapped onto an id.

   The id lookup is on the hot path of every edge construction, so the
   main index is an open-addressed int-array table (no allocation per
   probe): slots hold [id + 1] (0 = empty), hashing the canonical IEEE
   bit patterns and comparing candidates by float equality against the
   stored columns.  Float equality is exact on canonical representatives
   — [-0.] is folded onto [+0.] before storing and probing — except for
   NaNs ([nan <> nan]); weights with a NaN component take a slow path
   through a bit-pattern-keyed hashtable, which keeps interning total
   (every NaN payload maps to one id) where float equality is not.

   Ids 0 and 1 are pinned to zero and one, so the arena's zero and
   identity edges are compile-time constants. *)

type t = {
  ctab : Ctable.t;
  mutable slots : int array;  (* open addressing: id + 1, 0 = empty *)
  mutable smask : int;
  nan_ids : (int64 * int64, int) Hashtbl.t;  (* NaN-component slow path *)
  mutable re : float array;
  mutable im : float array;
  mutable n : int;
  lock : Mutex.t;
  mutable locked : bool;  (* shared arenas serialise interning *)
}

let zero_id = 0
let one_id = 1

(* Canonicalise [-0.] at the bit level: Ctable's value-level
   normalisation covers components it interns, but non-finite weights
   pass through uninterned and an explicit fold keeps [-0.] from
   splitting off a second id for zero. *)
let norm v = if v = 0.0 then 0.0 else v

let hash_weight re im =
  let h =
    Int64.to_int (Int64.bits_of_float re) * 0x2545F4914F6CDD1D
    lxor Int64.to_int (Int64.bits_of_float im)
  in
  let h = h * 0x2545F4914F6CDD1D in
  (h lxor (h lsr 29)) land max_int

let create ?(tol = Cx.default_tolerance) () =
  let t =
    {
      ctab = Ctable.create ~tol;
      slots = Array.make 4096 0;
      smask = 4095;
      nan_ids = Hashtbl.create 16;
      re = Array.make 1024 0.0;
      im = Array.make 1024 0.0;
      n = 0;
      lock = Mutex.create ();
      locked = false;
    }
  in
  let pin re im =
    let id = t.n in
    t.re.(id) <- re;
    t.im.(id) <- im;
    t.n <- id + 1;
    let h = ref (hash_weight re im land t.smask) in
    while t.slots.(!h) <> 0 do
      h := (!h + 1) land t.smask
    done;
    t.slots.(!h) <- id + 1
  in
  pin 0.0 0.0;
  pin 1.0 0.0;
  t

let set_shared t = t.locked <- true
let tolerance t = Ctable.tolerance t.ctab
let size t = t.n
let re t id = t.re.(id)
let im t id = t.im.(id)
let get t id = Cx.make t.re.(id) t.im.(id)

let grow_values t =
  let cap = Array.length t.re in
  if t.n >= cap then begin
    let re = Array.make (2 * cap) 0.0 and im = Array.make (2 * cap) 0.0 in
    Array.blit t.re 0 re 0 cap;
    Array.blit t.im 0 im 0 cap;
    t.re <- re;
    t.im <- im
  end

let grow_slots t =
  (* Keep the load factor under 1/2; NaN-path ids are absent from the
     slot table by construction, so rehashing from the value columns
     must skip them. *)
  if 2 * t.n >= t.smask + 1 then begin
    let size = 2 * (t.smask + 1) in
    let slots = Array.make size 0 and smask = size - 1 in
    for id = 0 to t.n - 1 do
      let rv = t.re.(id) and iv = t.im.(id) in
      if not (Float.is_nan rv || Float.is_nan iv) then begin
        let h = ref (hash_weight rv iv land smask) in
        while slots.(!h) <> 0 do
          h := (!h + 1) land smask
        done;
        slots.(!h) <- id + 1
      end
    done;
    t.slots <- slots;
    t.smask <- smask
  end

let fresh_id t rv iv =
  grow_values t;
  let id = t.n in
  t.re.(id) <- rv;
  t.im.(id) <- iv;
  t.n <- id + 1;
  id

let intern_nan t rv iv =
  let key = (Int64.bits_of_float rv, Int64.bits_of_float iv) in
  match Hashtbl.find_opt t.nan_ids key with
  | Some id -> id
  | None ->
      let id = fresh_id t rv iv in
      Hashtbl.replace t.nan_ids key id;
      id

let intern_uncontended t (z : Cx.t) =
  let z = Ctable.intern t.ctab z in
  let rv = norm z.Cx.re and iv = norm z.Cx.im in
  if Float.is_nan rv || Float.is_nan iv then intern_nan t rv iv
  else begin
    let h = ref (hash_weight rv iv land t.smask) in
    let found = ref (-1) in
    while !found < 0 && t.slots.(!h) <> 0 do
      let id = t.slots.(!h) - 1 in
      if t.re.(id) = rv && t.im.(id) = iv then found := id
      else h := (!h + 1) land t.smask
    done;
    if !found >= 0 then !found
    else begin
      let id = fresh_id t rv iv in
      t.slots.(!h) <- id + 1;
      grow_slots t;
      id
    end
  end

let intern t z =
  if t.locked then begin
    Mutex.lock t.lock;
    match intern_uncontended t z with
    | id ->
        Mutex.unlock t.lock;
        id
    | exception e ->
        Mutex.unlock t.lock;
        raise e
  end
  else intern_uncontended t z
