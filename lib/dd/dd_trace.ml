open Oqec_base

(* Shared memoised diagonal-trace walk over a QMDD, generic in the edge
   representation so the boxed ({!Dd}) and arena ({!Dd_arena}) cores run
   one implementation instead of two copy-pasted ones.

   [tr D] sums the two diagonal cofactor traces per node, memoised on
   the node key: sharing makes the walk linear in the number of distinct
   nodes rather than exponential in the qubit count.  The weight of an
   edge multiplies the trace of the node below it; terminal nodes
   contribute one. *)

let trace (type e) ~(is_zero : e -> bool) ~(is_terminal : e -> bool)
    ~(weight : e -> Cx.t) ~(node_key : e -> int) ~(diag : e -> int -> e) (root : e) =
  let cache : (int, Cx.t) Hashtbl.t = Hashtbl.create 256 in
  (* Trace of the node under [e]; [e]'s own weight is applied by the
     caller (either [sub] one level up or the top-level multiply). *)
  let rec node_trace e =
    if is_terminal e then Cx.one
    else
      let k = node_key e in
      match Hashtbl.find_opt cache k with
      | Some t -> t
      | None ->
          let sub c = if is_zero c then Cx.zero else Cx.mul (weight c) (node_trace c) in
          let t = Cx.add (sub (diag e 0)) (sub (diag e 3)) in
          Hashtbl.replace cache k t;
          t
  in
  if is_zero root then Cx.zero else Cx.mul (weight root) (node_trace root)
