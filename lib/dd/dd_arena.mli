(** Arena-backed QMDD package.

    Same canonical decision diagrams and operation semantics as {!Dd},
    different representation: nodes live in an int-indexed
    struct-of-arrays arena (Bigarray columns, invisible to the OCaml
    GC), an edge is one immediate integer packing a node id with a dense
    weight id from {!Wtable}, and the unique table is sharded by hash so
    several domains can cons into one shared arena.

    Garbage collection is a pinned-root compaction pass.  The
    {!root}/{!unroot}/{!on_safe_point} contract matches {!Dd} with one
    sharpening: after a collection, an edge that was {e not} rooted (and
    is not reachable from a rooted edge) must not be used again — its
    slot may have been reassigned, whereas the boxed package merely lets
    such edges lose canonicity. *)

open Oqec_base

type pkg
type edge

(** {1 Package lifecycle} *)

val default_gc_threshold : int
val default_cache_bits : int

(** Single-owner package: lock-free consing, growable arena, compaction
    enabled.  [capacity] is the initial slot count (doubles on
    exhaustion); [shard_bits] sets the unique-table shard count to
    [2^shard_bits]. *)
val create :
  ?tol:float ->
  ?gc_threshold:int ->
  ?cache_bits:int ->
  ?shard_bits:int ->
  ?capacity:int ->
  unit ->
  pkg

(** A shared arena several packages can {!attach} to, e.g. one handle
    per portfolio domain.  Interning serialises through per-shard locks
    and the weight table's mutex; the arena is preallocated at exactly
    [capacity] slots and raises [Failure] when full (growth and
    compaction would move nodes under the other handles' feet). *)
type shared_arena

val create_shared : ?tol:float -> ?shard_bits:int -> capacity:int -> unit -> shared_arena
val attach : ?cache_bits:int -> shared_arena -> pkg

(** {1 Edges} *)

val zero_edge : edge
val one_edge : edge
val is_zero_edge : edge -> bool

(** The arena slot index carried by an edge (0 = terminal).  Stable
    across safe points for rooted edges; exposed for tests and
    diagnostics. *)
val node_id : edge -> int

val weight : pkg -> edge -> Cx.t
val tolerance : pkg -> float

(** {1 Construction} *)

(** Normalising constructor; same normalisation rule as
    {!Dd.make_node}: the first edge of maximal magnitude carries weight
    one.  [edges] has length 4 (matrix node) or 2 (vector node). *)
val make_node : pkg -> int -> edge array -> edge

val edge_of : pkg -> w:Cx.t -> int -> edge
val identity : pkg -> int -> edge
val kets : pkg -> int -> int -> edge
val kets_bits : pkg -> int -> (int -> bool) -> edge

(** {1 Operations} *)

val add : pkg -> edge -> edge -> edge
val mul : pkg -> edge -> edge -> edge
val mul_vec : pkg -> edge -> edge -> edge
val adjoint : pkg -> edge -> edge
val inner : pkg -> edge -> edge -> Cx.t
val scale : pkg -> Cx.t -> edge -> edge
val trace : pkg -> edge -> Cx.t
val is_identity : ?up_to_phase:bool -> pkg -> int -> edge -> bool
val fidelity_to_identity : pkg -> n:int -> edge -> float

(** {1 Memory management} *)

val root : pkg -> edge -> unit
val unroot : pkg -> edge -> unit

(** Runs a mark-and-compact pass; returns the number of slots
    reclaimed.  No-op (returns 0) on {!attach}ed handles. *)
val gc : pkg -> int

val maybe_gc : pkg -> unit
val on_safe_point : pkg -> (unit -> unit) -> unit
val at_safe_point_hook : pkg -> unit
val clear_caches : pkg -> unit

(** {1 Diagnostics} *)

val live : pkg -> int
val allocated : pkg -> int
val node_count : pkg -> edge -> int
val stats : pkg -> Dd.stats

(** {1 Dense export (tests; exponential in [n])} *)

val to_dmatrix : pkg -> edge -> n:int -> Dmatrix.t
val to_vector : pkg -> edge -> n:int -> Cx.t array
