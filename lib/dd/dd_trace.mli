open Oqec_base

(** Memoised diagonal-trace walk shared by the boxed and arena DD cores.

    [trace ~is_zero ~is_terminal ~weight ~node_key ~diag e] computes
    [tr M(e)], the (unnormalised) matrix trace of the QMDD rooted at
    [e]: per node the traces of diagonal cofactors 0 and 3 are summed,
    memoised on [node_key] so shared nodes are visited once.  [diag e j]
    must return the [j]-th outgoing edge (j in {0, 3}) of [e]'s node;
    it is only called on non-terminal edges. *)
val trace :
  is_zero:('e -> bool) ->
  is_terminal:('e -> bool) ->
  weight:('e -> Cx.t) ->
  node_key:('e -> int) ->
  diag:('e -> int -> 'e) ->
  'e ->
  Cx.t
