(** Tolerance-bucketed interning of complex numbers.

    The QMDD package relies on physically shared sub-diagrams; two
    sub-matrices can only be shared if their edge weights compare equal.
    Interning every weight through this table snaps numerically-close
    values to a single canonical representative, which is what makes the
    diagrams (pseudo-)canonical under floating-point noise.  The bucket
    width is configurable: Section 6.2 of the paper discusses how circuits
    with very small rotation angles defeat this mechanism, an effect the
    ablation benchmark reproduces by tightening the tolerance. *)

open Oqec_base

type t

(** [create ~tol] makes an empty table with bucket width [tol]. *)
val create : tol:float -> t

val tolerance : t -> float

(** [intern t z] returns the canonical representative of [z]: an existing
    stored value within [tol] per component, or [z] itself (with negative
    zeros normalised away) after storing it.  Interned values can be
    compared with structural equality.  Non-finite components and
    magnitudes beyond the bucket range pass through uninterned rather
    than hash to garbage buckets. *)
val intern : t -> Cx.t -> Cx.t

(** Number of distinct representatives stored. *)
val size : t -> int

val clear : t -> unit
