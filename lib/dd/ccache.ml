(* Bounded, direct-mapped compute cache (dd_package style): a power-of-two
   array indexed by the key's hash, overwriting on collision.  Unlike the
   previous unbounded [Hashtbl]s this bounds memory independently of the
   workload length, at the cost of losing entries to collisions — the
   overwrite counter makes that loss observable. *)

type ('k, 'v) t = {
  entries : ('k * 'v) option array;
  mask : int;
  mutable hits : int;
  mutable misses : int;
  mutable overwrites : int;
  mutable filled : int;
}

type stats = {
  capacity : int;
  s_filled : int;
  s_hits : int;
  s_misses : int;
  s_overwrites : int;
}

let create ~bits =
  if bits < 1 || bits > 24 then invalid_arg "Ccache.create: bits out of range";
  {
    entries = Array.make (1 lsl bits) None;
    mask = (1 lsl bits) - 1;
    hits = 0;
    misses = 0;
    overwrites = 0;
    filled = 0;
  }

let slot t k = Hashtbl.hash k land t.mask

let find t k =
  match t.entries.(slot t k) with
  | Some (k', v) when k' = k ->
      t.hits <- t.hits + 1;
      Some v
  | Some _ | None ->
      t.misses <- t.misses + 1;
      None

let store t k v =
  let i = slot t k in
  (match t.entries.(i) with
  | None -> t.filled <- t.filled + 1
  | Some (k', _) -> if k' <> k then t.overwrites <- t.overwrites + 1);
  t.entries.(i) <- Some (k, v)

(* Memoising wrapper: [find]-or-compute-and-[store]. *)
let memo t k f =
  match find t k with
  | Some v -> v
  | None ->
      let v = f () in
      store t k v;
      v

let clear t =
  Array.fill t.entries 0 (Array.length t.entries) None;
  t.filled <- 0

let stats t =
  {
    capacity = t.mask + 1;
    s_filled = t.filled;
    s_hits = t.hits;
    s_misses = t.misses;
    s_overwrites = t.overwrites;
  }

let hit_rate s =
  let total = s.s_hits + s.s_misses in
  if total = 0 then 0.0 else float_of_int s.s_hits /. float_of_int total
