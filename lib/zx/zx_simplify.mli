(** Graph-like simplification of ZX-diagrams (Duncan et al., the engine
    behind PyZX's [full_reduce]).

    Each [*_simp] pass applies one rewrite rule everywhere it matches and
    returns the number of rewrites performed.  Every pass also reports its
    rewrites to the optional [observe] callback as [observe rule count]
    (rule names: ["spider-fusion"], ["id-removal"], ["pauli-leaf"],
    ["local-complement"], ["pivot"], ["pivot-boundary"], ["pivot-gadget"],
    ["gadget-fusion"]); composite passes forward the callback to their
    constituents, so [full_reduce ~observe] yields a complete per-rule
    firing census for the execution engine's trace counters.  All rules preserve the
    diagram's semantics up to a global scalar (certified against the
    tensor evaluator in the test suite), and none of them increases the
    spider count — the property Section 5.1 of the paper relies on for
    termination.

    Two engines implement the strategies.  The composite passes below
    ({!interior_clifford_simp}, {!clifford_simp}, {!full_reduce}) run on
    the incremental worklist engine ({!Worklist}): rewrites re-enqueue
    only the dirty neighbourhood instead of re-scanning every vertex.
    The original global-rescan engine remains available as {!Rescan} and
    serves as the differential baseline in the bench's [zx-smoke] target
    and the old-vs-new property suite. *)

open Oqec_base

(** The original full-rescan engine, unchanged — the comparison
    baseline. *)
module Rescan : module type of Zx_rescan

(** The incremental engine's full interface (per-rule queues, drains,
    worklist introspection). *)
module Worklist : module type of Zx_worklist

(** Fuse same-colour spiders connected by plain wires. *)
val spider_simp : ?should_stop:(unit -> bool) -> ?observe:(string -> int -> unit) -> Zx_graph.t -> int

(** Colour-change every X-spider into a Z-spider, toggling the types of
    its incident edges ("graph-like" conversion step). *)
val to_gh : Zx_graph.t -> unit

(** Remove phase-0 spiders of degree 2. *)
val id_simp : ?should_stop:(unit -> bool) -> ?observe:(string -> int -> unit) -> Zx_graph.t -> int

(** Local complementation: eliminate interior proper-Clifford spiders. *)
val lcomp_simp : ?should_stop:(unit -> bool) -> ?observe:(string -> int -> unit) -> Zx_graph.t -> int

(** Pivoting: eliminate pairs of connected interior Pauli spiders. *)
val pivot_simp : ?should_stop:(unit -> bool) -> ?observe:(string -> int -> unit) -> Zx_graph.t -> int

(** Pivoting where the second spider touches the boundary (unfuses the
    boundary wire first). *)
val pivot_boundary_simp : ?should_stop:(unit -> bool) -> ?observe:(string -> int -> unit) -> Zx_graph.t -> int

(** Pivoting where the second spider has a non-Pauli phase, which is
    extracted into a phase gadget first. *)
val pivot_gadget_simp : ?should_stop:(unit -> bool) -> ?observe:(string -> int -> unit) -> Zx_graph.t -> int

(** Fuse phase gadgets with identical support. *)
val gadget_simp : ?should_stop:(unit -> bool) -> ?observe:(string -> int -> unit) -> Zx_graph.t -> int

(** Eliminate Pauli states plugged into graph-like spiders (degree-1
    leaves with phase 0 or pi). *)
val pauli_leaf_simp : ?should_stop:(unit -> bool) -> ?observe:(string -> int -> unit) -> Zx_graph.t -> int

(** The inner Clifford loop: [to_gh] once, then [id]/[spider]/[pivot]/
    [lcomp] to fixpoint (incremental engine). *)
val interior_clifford_simp : ?should_stop:(unit -> bool) -> ?observe:(string -> int -> unit) -> Zx_graph.t -> int

(** [interior_clifford_simp] plus boundary pivoting, to fixpoint
    (incremental engine). *)
val clifford_simp : ?should_stop:(unit -> bool) -> ?observe:(string -> int -> unit) -> Zx_graph.t -> int

(** The full PyZX-style procedure: Clifford simplification interleaved
    with gadget extraction and fusion, to fixpoint, on the incremental
    worklist engine.  [on_pending] reports the live worklist length at
    phase boundaries (the checker maps it to the ["zx.worklist"] trace
    gauge).  [record] receives every fired rewrite as a {!Zx_step.t}
    (the verdict-certificate recording hook).  Returns [false] when
    [should_stop] interrupted the run. *)
val full_reduce :
  ?should_stop:(unit -> bool) ->
  ?observe:(string -> int -> unit) ->
  ?on_pending:(int -> unit) ->
  ?record:(Zx_step.t -> unit) ->
  Zx_graph.t ->
  bool

(** [extract_permutation g] returns the wire permutation when the diagram
    consists solely of plain input-to-output wires (the success condition
    of the ZX equivalence check): [p] maps input qubit [q] to the output
    qubit it connects to.  [None] when spiders or Hadamard wires remain. *)
val extract_permutation : Zx_graph.t -> Perm.t option
