(** Recorded rewrite steps for replayable ZX verdict certificates.

    When the worklist engine ({!Zx_worklist}) runs with a [record]
    callback, every fired rewrite is reported as one of these steps:
    the rule tag, the anchor vertices and the phases it consumed.  A
    certificate is the full ordered sequence; an independent validator
    (the [oqec.cert] library) replays it step by step against
    {!Zx_graph} primitives, re-checking each step's preconditions —
    including the recorded phases, which makes silent corruption
    detectable.

    This module is pure data plus its line-oriented wire format; it
    contains no rewrite logic. *)

open Oqec_base

type t =
  | Color of int  (** colour-change an X spider to Z, toggling edge types *)
  | Fuse of { into : int; src : int; ph : Phase.t }
      (** fuse [src] (recorded phase [ph]) into [into] along a plain wire *)
  | Id of int  (** remove a phase-0 degree-2 spider, reconnecting its wires *)
  | Absorb of { leaf : int; axis : int; ph : Phase.t }
      (** absorb the Pauli state [leaf] (phase [ph]) into interior spider [axis] *)
  | Lcomp of { v : int; ph : Phase.t }  (** local complementation at [v] *)
  | Pivot of { u : int; v : int; pu : Phase.t; pv : Phase.t }
      (** pivot along the Hadamard edge u-v *)
  | Unfuse of { v : int; b : int; w : int; ty : Zx_graph.etype }
      (** split boundary wire v-[ty]-b through the fresh spider [w] *)
  | Gadgetize of { v : int; axis : int; leaf : int; ph : Phase.t }
      (** extract phase [ph] of [v] into a fresh gadget ([axis], [leaf]) *)
  | Gadget_flip of { axis : int; leaf : int }
      (** normalise a pi-phase gadget axis to 0, negating the leaf phase *)
  | Gadget_merge of { leaf : int; axis : int; leaf0 : int; axis0 : int; ph : Phase.t }
      (** merge gadget ([leaf], [axis], leaf phase [ph]) into ([leaf0], [axis0]) *)

(** One step per line: ["fuse 3 7 1/2"], ["unfuse 4 0 12 s"], ... Phases
    are ["n/d"] (n*pi/d, exact) or ["~r"] (radians, %.17g). *)
val to_string : t -> string

(** Exact inverse of {!to_string}; [None] on malformed lines. *)
val of_string : string -> t option

val phase_to_string : Oqec_base.Phase.t -> string
val phase_of_string : string -> Oqec_base.Phase.t option

(** Structural equality with {!Oqec_base.Phase.equal} on phases. *)
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
