(** Worklist-driven incremental ZX simplification.

    The engine keeps one dirty-vertex queue per rewrite rule, fed by a
    {!Zx_graph.set_tracer} subscription: when a rewrite fires, only the
    touched vertices and their neighbourhoods are re-enqueued, replacing
    the global re-scan fixpoint loops of {!Zx_rescan}.  Draining a
    rule's queue to empty is that rule's fixpoint; the composite
    strategies mirror the rescan engine's pass layering so both engines
    stay verdict-for-verdict interchangeable (asserted by the property
    suite and the bench's [zx-smoke] agreement corpus).

    See DESIGN.md, "Incremental ZX rewriting", for the dirtying
    invariant and why the queues are per-rule. *)


type rule =
  | Fusion  (** ["spider-fusion"] *)
  | Identity  (** ["id-removal"] *)
  | Pauli_leaf  (** ["pauli-leaf"] *)
  | Lcomp  (** ["local-complement"] *)
  | Pivot  (** ["pivot"] *)
  | Pivot_boundary  (** ["pivot-boundary"] *)
  | Pivot_gadget  (** ["pivot-gadget"] *)
  | Gadget  (** ["gadget-fusion"] *)

val all_rules : rule list

(** The rule's counter name, identical to the rescan engine's observe
    keys. *)
val rule_name : rule -> string

(** An engine instance bound to one graph.  Creation installs the
    mutation tracer and seeds every vertex into every rule queue;
    {!release} uninstalls the tracer (mutations stop being tracked). *)
type t

(** [create ?record g] builds an engine on [g].  When [record] is given
    it receives every fired rewrite as a {!Zx_step.t}, emitted
    immediately before the graph mutation — the recording hook of the
    verdict-certificate subsystem ([oqec.cert]). *)
val create : ?record:(Zx_step.t -> unit) -> Zx_graph.t -> t

(** Test-only sabotage switch: setting it to [Some "identity-phase"]
    drops the phase-0 precondition of identity removal, making the
    engine unsound on purpose.  Used (via [OQEC_CERT_BREAK]) to
    demonstrate that certificate validation catches engine bugs the
    engine itself cannot detect.  Read once per engine at {!create} (so
    portfolio domains never race a mid-run flip).  Always [None] in
    production. *)
val break_hook : string option Atomic.t
val release : t -> unit
val graph : t -> Zx_graph.t

(** Total number of queued (vertex, rule) entries — the live worklist
    length reported to the engine's trace gauge. *)
val pending : t -> int

(** Running maximum of {!pending} over the engine's lifetime. *)
val peak_pending : t -> int

(** Per-rule rewrite counts fired so far, as [(rule-name, count)]. *)
val fired : t -> (string * int) list

(** [drain t rule] pops the rule's queue until empty (or [should_stop] /
    [limit]), firing the rule at each live anchor; returns the number of
    rewrites.  Rewrites fired during the drain re-enqueue their dirty
    neighbourhood and are processed before returning. *)
val drain :
  ?should_stop:(unit -> bool) ->
  ?observe:(string -> int -> unit) ->
  ?limit:int ->
  t ->
  rule ->
  int

(** Fusion, identity removal and Pauli absorption to joint fixpoint. *)
val basic_simp :
  ?should_stop:(unit -> bool) -> ?observe:(string -> int -> unit) -> t -> int

val interior_clifford_simp :
  ?should_stop:(unit -> bool) -> ?observe:(string -> int -> unit) -> t -> int

val clifford_simp :
  ?should_stop:(unit -> bool) -> ?observe:(string -> int -> unit) -> t -> int

(** Incremental [full_reduce] on an existing engine instance.
    [on_pending] is called with the current worklist length at phase
    boundaries (wired to the ["zx.worklist"] trace gauge by the
    checker).  Returns [false] when interrupted by [should_stop]. *)
val full_reduce_t :
  ?should_stop:(unit -> bool) ->
  ?observe:(string -> int -> unit) ->
  ?on_pending:(int -> unit) ->
  t ->
  bool

(** Convenience wrapper: create an engine on [g], run {!full_reduce_t},
    release the tracer (even on exceptions).  [record] is forwarded to
    {!create}. *)
val full_reduce :
  ?should_stop:(unit -> bool) ->
  ?observe:(string -> int -> unit) ->
  ?on_pending:(int -> unit) ->
  ?record:(Zx_step.t -> unit) ->
  Zx_graph.t ->
  bool
