open Oqec_base

(* Shared rewrite primitives and match predicates of the graph-like
   simplifier.  Both engines — the global-rescan baseline (Zx_rescan) and
   the incremental worklist engine (Zx_worklist) — apply exactly these
   rewrites; they differ only in how candidate sites are scheduled, which
   keeps the two engines rewrite-for-rewrite compatible and makes the
   differential tests meaningful. *)

let is_spider g v =
  match Zx_graph.kind g v with
  | Zx_graph.Z | Zx_graph.X -> true
  | Zx_graph.B_in _ | Zx_graph.B_out _ -> false

let is_z g v = Zx_graph.kind g v = Zx_graph.Z

(* ------------------------------------------------------------- Fusion *)

(* Fuse [u] into [v]: phases add, [u]'s edges move to [v] with smart
   resolution.  The u-v wire must already be removed. *)
let fuse g ~into:v u =
  Zx_graph.add_to_phase g v (Zx_graph.phase g u);
  let moved = Zx_graph.neighbours g u in
  Zx_graph.remove_vertex g u;
  List.iter
    (fun (w, ty) -> if w <> v then Zx_graph.add_edge_smart g v w ty)
    moved

(* Colour-change one X-spider into a Z-spider, toggling its edge types. *)
let to_gh_at g v =
  let flip = function Zx_graph.Simple -> Zx_graph.Had | Zx_graph.Had -> Zx_graph.Simple in
  if Zx_graph.mem g v && Zx_graph.kind g v = Zx_graph.X then begin
    Zx_graph.set_kind g v Zx_graph.Z;
    let ns = Zx_graph.neighbours g v in
    List.iter
      (fun (u, ty) ->
        Zx_graph.remove_edge g v u;
        (* The re-added edge can now clash with an existing edge only if
           graphs carried parallel edges, which they never do. *)
        Zx_graph.add_edge g v u (flip ty))
      ns
  end

(* ------------------------------------------------------- Predicates *)

let interior_z_with g v pred =
  Zx_graph.mem g v && is_z g v
  && pred (Zx_graph.phase g v)
  && Zx_graph.is_interior g v
  && Zx_graph.for_all_neighbours g v (fun _ ty -> ty = Zx_graph.Had)

(* A vertex carrying a phase gadget (a degree-1 neighbour).  Pivoting such
   vertices destroys and recreates gadgets forever; they are consumed by
   the dedicated gadget rules instead. *)
let has_leaf_neighbour g v =
  Zx_graph.exists_neighbour g v (fun w _ -> Zx_graph.degree g w = 1)

let pivot_candidate g v pred =
  interior_z_with g v pred && not (has_leaf_neighbour g v)

(* --------------------------------------------- Local complementation *)

let lcomp_at g v =
  let ns = Zx_graph.neighbour_ids g v in
  let minus_phase = Phase.neg (Zx_graph.phase g v) in
  Zx_graph.remove_vertex g v;
  let rec pairs = function
    | [] -> ()
    | a :: rest ->
        List.iter (fun b -> Zx_graph.toggle_edge g a b Zx_graph.Had) rest;
        pairs rest
  in
  pairs ns;
  List.iter (fun a -> Zx_graph.add_to_phase g a minus_phase) ns

(* ------------------------------------------------------------ Pivoting *)

let pivot_at g u v =
  let phase_u = Zx_graph.phase g u and phase_v = Zx_graph.phase g v in
  let nu = List.filter (fun w -> w <> v) (Zx_graph.neighbour_ids g u) in
  let nv = List.filter (fun w -> w <> u) (Zx_graph.neighbour_ids g v) in
  (* Classify each neighbourhood against the other side with the O(1)
     edge lookup instead of quadratic list membership. *)
  let in_nv w = Zx_graph.connected g v w <> None in
  let in_nu w = Zx_graph.connected g u w <> None in
  let shared = List.filter in_nv nu in
  let only_u = List.filter (fun w -> not (in_nv w)) nu in
  let only_v = List.filter (fun w -> not (in_nu w)) nv in
  Zx_graph.remove_vertex g u;
  Zx_graph.remove_vertex g v;
  let toggle_groups xs ys =
    List.iter (fun a -> List.iter (fun b -> Zx_graph.toggle_edge g a b Zx_graph.Had) ys) xs
  in
  toggle_groups only_u only_v;
  toggle_groups only_u shared;
  toggle_groups only_v shared;
  List.iter (fun w -> Zx_graph.add_to_phase g w phase_v) only_u;
  List.iter (fun w -> Zx_graph.add_to_phase g w phase_u) only_v;
  List.iter
    (fun w -> Zx_graph.add_to_phase g w (Phase.add (Phase.add phase_u phase_v) Phase.pi))
    shared

(* Unfuse a boundary wire of [v] so that [v] becomes interior: the wire
   v -t- b becomes v -H- w(0) -t'- b with t' chosen so the composite
   equals the original wire. *)
let unfuse_boundary g v b ty =
  Zx_graph.remove_edge g v b;
  let w = Zx_graph.add_vertex g Zx_graph.Z ~phase:Phase.zero in
  Zx_graph.add_edge g v w Zx_graph.Had;
  let outer = match ty with Zx_graph.Simple -> Zx_graph.Had | Zx_graph.Had -> Zx_graph.Simple in
  Zx_graph.add_edge g w b outer;
  w

let boundary_pauli_z g v =
  Zx_graph.mem g v && is_z g v
  && Phase.is_pauli (Zx_graph.phase g v)
  && (not (Zx_graph.is_interior g v))
  && (not (has_leaf_neighbour g v))
  && Zx_graph.for_all_neighbours g v (fun u ty ->
         ty = Zx_graph.Had || not (is_spider g u))

(* ------------------------------------------------------------- Gadgets *)

(* Extract a non-Pauli phase into a gadget hanging off [v]. *)
let gadgetize g v =
  let ph = Zx_graph.phase g v in
  Zx_graph.set_phase g v Phase.zero;
  let axis = Zx_graph.add_vertex g Zx_graph.Z ~phase:Phase.zero in
  let leaf = Zx_graph.add_vertex g Zx_graph.Z ~phase:ph in
  Zx_graph.add_edge g v axis Zx_graph.Had;
  Zx_graph.add_edge g axis leaf Zx_graph.Had;
  (axis, leaf)

(* A phase gadget: a degree-1 leaf attached by a Hadamard wire to a
   Pauli-phase axis all of whose other edges are Hadamard wires to
   spiders. *)
let gadget_of g leaf =
  if
    Zx_graph.mem g leaf && is_z g leaf
    && Zx_graph.degree g leaf = 1
  then
    match Zx_graph.neighbours g leaf with
    | [ (axis, Zx_graph.Had) ]
      when is_z g axis
           && Phase.is_pauli (Zx_graph.phase g axis)
           && Zx_graph.is_interior g axis
           && Zx_graph.for_all_neighbours g axis (fun _ ty -> ty = Zx_graph.Had) ->
        let support =
          List.sort compare (List.filter (fun w -> w <> leaf) (Zx_graph.neighbour_ids g axis))
        in
        Some (axis, support)
    | _ -> None
  else None
