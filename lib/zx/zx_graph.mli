(** Open graphs for the ZX-calculus.

    Vertices are Z-spiders, X-spiders or boundaries (circuit inputs and
    outputs); edges are plain wires or Hadamard wires.  The structure is
    mutable — simplification passes rewrite it in place.  At most one edge
    exists between any two vertices: {!add_edge_smart} resolves parallel
    edges and self-loops on the fly using the (tensor-verified) spider
    fusion, Hopf and self-loop laws, dropping global scalar factors (all
    equalities in the ZX-calculus here hold up to a non-zero scalar, which
    is irrelevant for equivalence up to global phase). *)

open Oqec_base

type vkind =
  | B_in of int  (** circuit input for qubit [q] *)
  | B_out of int  (** circuit output for qubit [q] *)
  | Z
  | X

type etype = Simple | Had

type t

val create : unit -> t

(** [add_vertex g kind ~phase] returns the fresh vertex id. *)
val add_vertex : t -> vkind -> phase:Phase.t -> int

val kind : t -> int -> vkind
val phase : t -> int -> Phase.t
val set_phase : t -> int -> Phase.t -> unit
val add_to_phase : t -> int -> Phase.t -> unit
val set_kind : t -> int -> vkind -> unit

(** [vertices g] lists live vertex ids (unspecified order). *)
val vertices : t -> int list

val num_vertices : t -> int

(** [peak_vertices g] is the running maximum of [num_vertices] over the
    graph's whole lifetime, maintained O(1) at vertex creation.  Unlike
    comparing sizes before and after a reduction, it captures transient
    growth inside a pass (boundary pivots and phase gadgetization add
    vertices before removing others). *)
val peak_vertices : t -> int

(** [spider_count g] counts Z and X vertices (the diagram-size measure
    whose non-growth Section 5.1 of the paper emphasises). *)
val spider_count : t -> int

val mem : t -> int -> bool

(** [connected g u v] is the edge type between [u] and [v], if any. *)
val connected : t -> int -> int -> etype option

(** [neighbours g v] lists [(u, etype)] pairs. *)
val neighbours : t -> int -> (int * etype) list

val neighbour_ids : t -> int -> int list
val degree : t -> int -> int

(** Allocation-free neighbourhood traversals — the worklist matchers run
    on every dequeued vertex, so they must not build the [neighbours]
    list.  Iteration order is unspecified. *)
val iter_neighbours : t -> int -> (int -> etype -> unit) -> unit

val fold_neighbours : t -> int -> (int -> etype -> 'a -> 'a) -> 'a -> 'a

(** Early-exit scans over the adjacency table. *)
val exists_neighbour : t -> int -> (int -> etype -> bool) -> bool

val for_all_neighbours : t -> int -> (int -> etype -> bool) -> bool
val find_neighbour : t -> int -> (int -> etype -> bool) -> (int * etype) option

(** [set_tracer g (Some f)] subscribes [f] to vertex mutations: [f v] is
    called whenever [v]'s local structure changes — its phase or kind is
    written, an incident edge is added, removed or retyped, or a
    neighbour of [v] is deleted (each surviving endpoint is reported).
    [add_vertex] reports the fresh vertex.  The incremental simplifier
    uses this to re-enqueue dirty neighbourhoods; at most one tracer is
    installed at a time and {!copy} does not inherit it. *)
val set_tracer : t -> (int -> unit) option -> unit

(** [add_edge g u v ty] adds an edge that must not already exist
    ([u <> v]); raises [Invalid_argument] otherwise. *)
val add_edge : t -> int -> int -> etype -> unit

(** [add_edge_smart g u v ty] adds an edge between spiders, resolving an
    existing parallel edge or a self-loop by the appropriate rewrite law
    (possibly adding pi to a phase or removing both edges).  Both
    endpoints must be spiders unless no edge is present. *)
val add_edge_smart : t -> int -> int -> etype -> unit

(** [toggle_edge g u v ty] removes the edge if present (it must have type
    [ty]) and adds it otherwise — the neighbourhood-complementation step
    of local complementation and pivoting. *)
val toggle_edge : t -> int -> int -> etype -> unit

val remove_edge : t -> int -> int -> unit

(** [remove_vertex g v] deletes [v] and all incident edges. *)
val remove_vertex : t -> int -> unit

(** [is_boundary g v] holds for input/output vertices. *)
val is_boundary : t -> int -> bool

(** [is_interior g v] holds for spiders all of whose neighbours are
    spiders. *)
val is_interior : t -> int -> bool

val inputs : t -> (int * int) list
(** [(qubit, vertex)] pairs, sorted by qubit. *)

val outputs : t -> (int * int) list

val copy : t -> t
val pp : Format.formatter -> t -> unit
