open Oqec_base

(* One fired rewrite of the worklist engine, as recorded into a verdict
   certificate: the rule tag, the anchor vertices it touched and the
   phases it consumed.  The data is deliberately redundant — recorded
   phases are re-checked against the replayed graph by the independent
   validator, so a corrupted certificate cannot silently change what a
   step means. *)

type t =
  | Color of int
  | Fuse of { into : int; src : int; ph : Phase.t }
  | Id of int
  | Absorb of { leaf : int; axis : int; ph : Phase.t }
  | Lcomp of { v : int; ph : Phase.t }
  | Pivot of { u : int; v : int; pu : Phase.t; pv : Phase.t }
  | Unfuse of { v : int; b : int; w : int; ty : Zx_graph.etype }
  | Gadgetize of { v : int; axis : int; leaf : int; ph : Phase.t }
  | Gadget_flip of { axis : int; leaf : int }
  | Gadget_merge of { leaf : int; axis : int; leaf0 : int; axis0 : int; ph : Phase.t }

(* ------------------------------------------------------------ Wire format *)

(* Phases print as "n/d" (meaning n*pi/d, exact) or "~r" (radians,
   %.17g so the float round-trips).  Parsing a "~" phase goes through
   Phase.of_float, which may snap a value that is within 1e-12 of a
   dyadic fraction — semantically equal under Phase.equal, so replay
   preconditions are unaffected. *)
let phase_to_string p =
  match Phase.to_pi_fraction p with
  | Some (n, d) -> Printf.sprintf "%d/%d" n d
  | None -> Printf.sprintf "~%.17g" (Phase.to_float p)

let phase_of_string s =
  let len = String.length s in
  if len = 0 then None
  else if s.[0] = '~' then
    Option.map Phase.of_float (float_of_string_opt (String.sub s 1 (len - 1)))
  else
    match String.split_on_char '/' s with
    | [ n; d ] -> (
        match (int_of_string_opt n, int_of_string_opt d) with
        | Some n, Some d when d <> 0 -> Some (Phase.of_pi_fraction n d)
        | _ -> None)
    | _ -> None

let etype_to_string = function Zx_graph.Simple -> "s" | Zx_graph.Had -> "h"

let etype_of_string = function
  | "s" -> Some Zx_graph.Simple
  | "h" -> Some Zx_graph.Had
  | _ -> None

let to_string = function
  | Color v -> Printf.sprintf "color %d" v
  | Fuse { into; src; ph } -> Printf.sprintf "fuse %d %d %s" into src (phase_to_string ph)
  | Id v -> Printf.sprintf "id %d" v
  | Absorb { leaf; axis; ph } ->
      Printf.sprintf "absorb %d %d %s" leaf axis (phase_to_string ph)
  | Lcomp { v; ph } -> Printf.sprintf "lcomp %d %s" v (phase_to_string ph)
  | Pivot { u; v; pu; pv } ->
      Printf.sprintf "pivot %d %d %s %s" u v (phase_to_string pu) (phase_to_string pv)
  | Unfuse { v; b; w; ty } -> Printf.sprintf "unfuse %d %d %d %s" v b w (etype_to_string ty)
  | Gadgetize { v; axis; leaf; ph } ->
      Printf.sprintf "gadgetize %d %d %d %s" v axis leaf (phase_to_string ph)
  | Gadget_flip { axis; leaf } -> Printf.sprintf "gflip %d %d" axis leaf
  | Gadget_merge { leaf; axis; leaf0; axis0; ph } ->
      Printf.sprintf "gmerge %d %d %d %d %s" leaf axis leaf0 axis0 (phase_to_string ph)

let of_string line =
  let ( let* ) = Option.bind in
  let int = int_of_string_opt in
  match String.split_on_char ' ' line with
  | [ "color"; v ] ->
      let* v = int v in
      Some (Color v)
  | [ "fuse"; a; b; p ] ->
      let* into = int a in
      let* src = int b in
      let* ph = phase_of_string p in
      Some (Fuse { into; src; ph })
  | [ "id"; v ] ->
      let* v = int v in
      Some (Id v)
  | [ "absorb"; l; a; p ] ->
      let* leaf = int l in
      let* axis = int a in
      let* ph = phase_of_string p in
      Some (Absorb { leaf; axis; ph })
  | [ "lcomp"; v; p ] ->
      let* v = int v in
      let* ph = phase_of_string p in
      Some (Lcomp { v; ph })
  | [ "pivot"; u; v; p; q ] ->
      let* u = int u in
      let* v = int v in
      let* pu = phase_of_string p in
      let* pv = phase_of_string q in
      Some (Pivot { u; v; pu; pv })
  | [ "unfuse"; v; b; w; t ] ->
      let* v = int v in
      let* b = int b in
      let* w = int w in
      let* ty = etype_of_string t in
      Some (Unfuse { v; b; w; ty })
  | [ "gadgetize"; v; a; l; p ] ->
      let* v = int v in
      let* axis = int a in
      let* leaf = int l in
      let* ph = phase_of_string p in
      Some (Gadgetize { v; axis; leaf; ph })
  | [ "gflip"; a; l ] ->
      let* axis = int a in
      let* leaf = int l in
      Some (Gadget_flip { axis; leaf })
  | [ "gmerge"; l; a; l0; a0; p ] ->
      let* leaf = int l in
      let* axis = int a in
      let* leaf0 = int l0 in
      let* axis0 = int a0 in
      let* ph = phase_of_string p in
      Some (Gadget_merge { leaf; axis; leaf0; axis0; ph })
  | _ -> None

let equal a b =
  match (a, b) with
  | Color u, Color v -> u = v
  | Fuse a, Fuse b -> a.into = b.into && a.src = b.src && Phase.equal a.ph b.ph
  | Id u, Id v -> u = v
  | Absorb a, Absorb b -> a.leaf = b.leaf && a.axis = b.axis && Phase.equal a.ph b.ph
  | Lcomp a, Lcomp b -> a.v = b.v && Phase.equal a.ph b.ph
  | Pivot a, Pivot b ->
      a.u = b.u && a.v = b.v && Phase.equal a.pu b.pu && Phase.equal a.pv b.pv
  | Unfuse a, Unfuse b -> a.v = b.v && a.b = b.b && a.w = b.w && a.ty = b.ty
  | Gadgetize a, Gadgetize b ->
      a.v = b.v && a.axis = b.axis && a.leaf = b.leaf && Phase.equal a.ph b.ph
  | Gadget_flip a, Gadget_flip b -> a.axis = b.axis && a.leaf = b.leaf
  | Gadget_merge a, Gadget_merge b ->
      a.leaf = b.leaf && a.axis = b.axis && a.leaf0 = b.leaf0 && a.axis0 = b.axis0
      && Phase.equal a.ph b.ph
  | _, _ -> false

let pp ppf s = Format.pp_print_string ppf (to_string s)
