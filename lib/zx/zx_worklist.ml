open Oqec_base
open Zx_rules

(* Worklist-driven incremental simplification.

   Instead of re-scanning every vertex after each round of rewrites (the
   Zx_rescan baseline), the engine keeps one dirty-vertex queue per
   rewrite rule.  A graph tracer (Zx_graph.set_tracer) reports every
   mutated vertex; the engine re-enqueues the touched vertex and its
   current neighbourhood into all rule queues.  Draining a rule's queue
   until it is empty is then a fixpoint for that rule: any rewrite fired
   during the drain re-dirties exactly the region where new matches can
   appear.

   Why per-rule queues: the strategies below (mirroring Zx_rescan's pass
   structure) interleave rule fixpoints — a vertex consumed by the
   fusion drain must still be examined by the later pivot drain, so a
   single shared dirty set would either lose work or force rescans.
   With one queue per rule, "queue empty" is exactly "this rule has no
   matches anywhere", provided the dirtying invariant holds:

   - every vertex is seeded into every queue at engine creation, and
   - every mutation re-enqueues the closed neighbourhood N[v] of each
     touched vertex, and
   - every match predicate depends only on the anchor's distance-1
     structure plus vertex kinds (which never change after the one-time
     graph-like conversion).  The pivot-family rules are anchored
     symmetrically (either endpoint of the pair can trigger the match)
     precisely so that this radius-1 invariant suffices.

   The one non-local rule is gadget fusion, whose partner gadget can be
   arbitrarily far away: it is backed by a persistent support-indexed
   registry whose entries are validated (and lazily repaired) on read. *)

type rule =
  | Fusion
  | Identity
  | Pauli_leaf
  | Lcomp
  | Pivot
  | Pivot_boundary
  | Pivot_gadget
  | Gadget

let all_rules =
  [ Fusion; Identity; Pauli_leaf; Lcomp; Pivot; Pivot_boundary; Pivot_gadget; Gadget ]

let num_rules = 8

let rule_index = function
  | Fusion -> 0
  | Identity -> 1
  | Pauli_leaf -> 2
  | Lcomp -> 3
  | Pivot -> 4
  | Pivot_boundary -> 5
  | Pivot_gadget -> 6
  | Gadget -> 7

let rule_name = function
  | Fusion -> "spider-fusion"
  | Identity -> "id-removal"
  | Pauli_leaf -> "pauli-leaf"
  | Lcomp -> "local-complement"
  | Pivot -> "pivot"
  | Pivot_boundary -> "pivot-boundary"
  | Pivot_gadget -> "pivot-gadget"
  | Gadget -> "gadget-fusion"

type t = {
  g : Zx_graph.t;
  queues : int Queue.t array;
  (* Bitmask of the queues currently holding each vertex, one byte per
     vertex id (eight rules, eight bits).  A vertex sits in queue [qi]
     exactly when bit [qi] is set, so membership tests are one byte read
     instead of eight hashtable probes, and the common cascade case —
     touching an already fully-dirty vertex — is a single read.  Grown on
     demand as the graph allocates fresh ids. *)
  mutable dirty_mask : Bytes.t;
  (* sorted gadget support -> (leaf, axis); entries may be stale and are
     validated on read. *)
  gadget_index : (int list, int * int) Hashtbl.t;
  fired : int array;
  mutable pending_total : int;
  mutable peak_pending : int;
  mutable gh : bool;  (* the one-time graph-like conversion has run *)
  (* Certificate sink: every fired rewrite is reported here, immediately
     before the graph is mutated, so recorded phases are the pre-rewrite
     values the independent validator re-checks. *)
  record : (Zx_step.t -> unit) option;
  (* Snapshot of {!break_hook} taken at {!create}: the hook is read once
     per engine so concurrent domains racing the portfolio never observe
     a torn or mid-run flip of the sabotage switch. *)
  sabotage : string option;
}

(* Test-only sabotage switch ("identity-phase" drops the phase-0
   precondition of identity removal), used to prove that certificate
   validation catches engine bugs the engine itself cannot see. *)
let break_hook : string option Atomic.t = Atomic.make None

let full_mask = (1 lsl num_rules) - 1
let never_stop () = false
let no_observe _ _ = ()
let no_pending _ = ()

let ensure_mask t v =
  let n = Bytes.length t.dirty_mask in
  if v >= n then begin
    let grown = Bytes.make (max (2 * n) (v + 1)) '\000' in
    Bytes.blit t.dirty_mask 0 grown 0 n;
    t.dirty_mask <- grown
  end

let enqueue_all t v =
  ensure_mask t v;
  let m = Char.code (Bytes.unsafe_get t.dirty_mask v) in
  if m <> full_mask then begin
    Bytes.unsafe_set t.dirty_mask v '\255';
    for qi = 0 to num_rules - 1 do
      if m land (1 lsl qi) = 0 then begin
        Queue.push v t.queues.(qi);
        t.pending_total <- t.pending_total + 1
      end
    done;
    if t.pending_total > t.peak_pending then t.peak_pending <- t.pending_total
  end

(* Tracer callback: the touched vertex and its whole current
   neighbourhood become dirty for every rule.  Radius 1 is enough — see
   the invariant in the header comment. *)
let dirty t v =
  if Zx_graph.mem t.g v then begin
    enqueue_all t v;
    Zx_graph.iter_neighbours t.g v (fun u _ -> enqueue_all t u)
  end

let create ?record g =
  let t =
    {
      g;
      queues = Array.init num_rules (fun _ -> Queue.create ());
      dirty_mask = Bytes.make (max 64 (Zx_graph.num_vertices g * 2)) '\000';
      gadget_index = Hashtbl.create 64;
      fired = Array.make num_rules 0;
      pending_total = 0;
      peak_pending = 0;
      gh = false;
      record;
      sabotage = Atomic.get break_hook;
    }
  in
  Zx_graph.set_tracer g (Some (dirty t));
  List.iter (enqueue_all t) (Zx_graph.vertices g);
  t

let release t = Zx_graph.set_tracer t.g None
let graph t = t.g
let pending t = t.pending_total
let peak_pending t = t.peak_pending

let fired t =
  List.map (fun r -> (rule_name r, t.fired.(rule_index r))) all_rules

(* ------------------------------------------------------------ Matchers *)

(* Each matcher inspects one anchor vertex and fires at most one rewrite
   there, returning the number fired; re-dirtying via the tracer brings
   the anchor back if more work remains.  Matchers take the engine (not
   just the graph) so each fired rewrite can be reported to the
   certificate sink before it mutates the graph. *)

let emit t step = match t.record with Some f -> f step | None -> ()

let try_fusion t v =
  let g = t.g in
  if Zx_graph.mem g v && is_spider g v then
    match
      Zx_graph.find_neighbour g v (fun u ty ->
          ty = Zx_graph.Simple && is_spider g u
          && Zx_graph.kind g u = Zx_graph.kind g v)
    with
    | Some (u, _) ->
        emit t (Zx_step.Fuse { into = v; src = u; ph = Zx_graph.phase g u });
        Zx_graph.remove_edge g v u;
        fuse g ~into:v u;
        1
    | None -> 0
  else 0

let try_identity t v =
  let g = t.g in
  if
    Zx_graph.mem g v && is_spider g v
    && (Phase.is_zero (Zx_graph.phase g v) || t.sabotage = Some "identity-phase")
    && Zx_graph.degree g v = 2
  then
    match Zx_graph.neighbours g v with
    | [ (a, ta); (b, tb) ] ->
        emit t (Zx_step.Id v);
        let combined = if ta = tb then Zx_graph.Simple else Zx_graph.Had in
        Zx_graph.remove_vertex g v;
        if is_spider g a && is_spider g b then Zx_graph.add_edge_smart g a b combined
        else Zx_graph.add_edge g a b combined;
        1
    | _ -> 0
  else 0

let try_pauli_leaf t leaf =
  let g = t.g in
  if
    Zx_graph.mem g leaf && is_z g leaf
    && Zx_graph.degree g leaf = 1
    && Phase.is_pauli (Zx_graph.phase g leaf)
  then
    match Zx_graph.neighbours g leaf with
    | [ (v, Zx_graph.Had) ]
      when is_z g v
           && Zx_graph.is_interior g v
           && Zx_graph.for_all_neighbours g v (fun _ ty -> ty = Zx_graph.Had) ->
        emit t (Zx_step.Absorb { leaf; axis = v; ph = Zx_graph.phase g leaf });
        let flip = Phase.is_pi (Zx_graph.phase g leaf) in
        let others = List.filter (fun w -> w <> leaf) (Zx_graph.neighbour_ids g v) in
        Zx_graph.remove_vertex g leaf;
        Zx_graph.remove_vertex g v;
        if flip then List.iter (fun w -> Zx_graph.add_to_phase g w Phase.pi) others;
        1
    | _ -> 0
  else 0

let try_lcomp t v =
  let g = t.g in
  if interior_z_with g v Phase.is_proper_clifford then begin
    emit t (Zx_step.Lcomp { v; ph = Zx_graph.phase g v });
    lcomp_at g v;
    1
  end
  else 0

let recorded_pivot t u v =
  emit t (Zx_step.Pivot { u; v; pu = Zx_graph.phase t.g u; pv = Zx_graph.phase t.g v });
  pivot_at t.g u v

let try_pivot t a =
  let g = t.g in
  if pivot_candidate g a Phase.is_pauli then
    match
      Zx_graph.find_neighbour g a (fun v ty ->
          ty = Zx_graph.Had && pivot_candidate g v Phase.is_pauli)
    with
    | Some (v, _) ->
        recorded_pivot t a v;
        1
    | None -> 0
  else 0

(* Boundary pivots are anchored at either endpoint: a neighbourhood
   change near the boundary spider dirties it but not necessarily its
   interior partner, so both orientations must match. *)
let apply_boundary_pivot t u v =
  let g = t.g in
  List.iter
    (fun (b, ty) ->
      if not (is_spider g b) then begin
        let w = unfuse_boundary g v b ty in
        emit t (Zx_step.Unfuse { v; b; w; ty })
      end)
    (Zx_graph.neighbours g v);
  recorded_pivot t u v

let try_pivot_boundary t a =
  let g = t.g in
  if pivot_candidate g a Phase.is_pauli then
    match
      Zx_graph.find_neighbour g a (fun v ty ->
          ty = Zx_graph.Had && boundary_pauli_z g v)
    with
    | Some (v, _) ->
        apply_boundary_pivot t a v;
        1
    | None -> 0
  else if boundary_pauli_z g a then
    match
      Zx_graph.find_neighbour g a (fun u ty ->
          ty = Zx_graph.Had && pivot_candidate g u Phase.is_pauli)
    with
    | Some (u, _) ->
        apply_boundary_pivot t u a;
        1
    | None -> 0
  else 0

let gadget_target g v =
  pivot_candidate g v (fun p -> not (Phase.is_pauli p)) && Zx_graph.degree g v >= 2

let recorded_gadgetized_pivot t u v =
  let ph = Zx_graph.phase t.g v in
  let axis, leaf = gadgetize t.g v in
  emit t (Zx_step.Gadgetize { v; axis; leaf; ph });
  recorded_pivot t u v

let try_pivot_gadget t a =
  let g = t.g in
  if pivot_candidate g a Phase.is_pauli then
    match
      Zx_graph.find_neighbour g a (fun v ty -> ty = Zx_graph.Had && gadget_target g v)
    with
    | Some (v, _) ->
        recorded_gadgetized_pivot t a v;
        1
    | None -> 0
  else if gadget_target g a then
    match
      Zx_graph.find_neighbour g a (fun u ty ->
          ty = Zx_graph.Had && pivot_candidate g u Phase.is_pauli)
    with
    | Some (u, _) ->
        recorded_gadgetized_pivot t u a;
        1
    | None -> 0
  else 0

(* Gadget fusion through the persistent support index.  A slot may hold a
   stale pair (the gadget was consumed or its support changed); staleness
   is detected by re-recognising the recorded leaf, and the slot is then
   taken over by the anchor. *)
let try_gadget t leaf =
  let g = t.g in
  match gadget_of g leaf with
  | None -> 0
  | Some (axis, support) ->
      let fires = ref 0 in
      (* Axis-phase normalisation (the old engine's gadget_cleanup): a
         pi-axis equals a 0-axis with the leaf phase negated. *)
      if Phase.is_pi (Zx_graph.phase g axis) then begin
        emit t (Zx_step.Gadget_flip { axis; leaf });
        Zx_graph.set_phase g axis Phase.zero;
        Zx_graph.set_phase g leaf (Phase.neg (Zx_graph.phase g leaf));
        incr fires
      end;
      if support <> [] && Phase.is_zero (Zx_graph.phase g axis) then begin
        let valid leaf0 axis0 =
          leaf0 <> leaf
          && Zx_graph.mem g leaf0
          &&
          match gadget_of g leaf0 with
          | Some (axis0', support') ->
              axis0' = axis0 && support' = support
              && Phase.is_zero (Zx_graph.phase g axis0')
          | None -> false
        in
        match Hashtbl.find_opt t.gadget_index support with
        | Some (leaf0, axis0) when valid leaf0 axis0 ->
            (* Merge this gadget into the recorded one. *)
            emit t
              (Zx_step.Gadget_merge
                 { leaf; axis; leaf0; axis0; ph = Zx_graph.phase g leaf });
            Zx_graph.add_to_phase g leaf0 (Zx_graph.phase g leaf);
            Zx_graph.remove_vertex g leaf;
            Zx_graph.remove_vertex g axis;
            incr fires
        | Some _ | None -> Hashtbl.replace t.gadget_index support (leaf, axis)
      end;
      !fires

(* -------------------------------------------------------------- Drains *)

exception Interrupted

(* Drain one rule's queue to empty (its per-rule fixpoint): rewrites
   fired during the drain push new candidates into the same queue and
   are processed before returning. *)
let drain ?(should_stop = never_stop) ?(observe = no_observe) ?(limit = max_int) t rule =
  let qi = rule_index rule in
  let q = t.queues.(qi) in
  let count = ref 0 in
  let try_at =
    match rule with
    | Fusion -> try_fusion t
    | Identity -> try_identity t
    | Pauli_leaf -> try_pauli_leaf t
    | Lcomp -> try_lcomp t
    | Pivot -> try_pivot t
    | Pivot_boundary -> try_pivot_boundary t
    | Pivot_gadget -> try_pivot_gadget t
    | Gadget -> try_gadget t
  in
  let bit = 1 lsl qi in
  (try
     while not (Queue.is_empty q) do
       if should_stop () || !count >= limit then raise Interrupted;
       let v = Queue.pop q in
       let m = Char.code (Bytes.unsafe_get t.dirty_mask v) in
       Bytes.unsafe_set t.dirty_mask v (Char.unsafe_chr (m land lnot bit));
       t.pending_total <- t.pending_total - 1;
       if Zx_graph.mem t.g v then count := !count + try_at v
     done
   with Interrupted -> ());
  t.fired.(qi) <- t.fired.(qi) + !count;
  if !count > 0 then observe (rule_name rule) !count;
  !count

(* ----------------------------------------------------------- Strategies *)

(* The strategy layering deliberately mirrors Zx_rescan's pass structure
   (fusion/identity/Pauli absorption first, then pivoting and local
   complementation, then boundary pivots, then the gadget rounds) so the
   two engines stay verdict-for-verdict interchangeable; only the
   within-pass scheduling differs. *)

let basic_simp ?(should_stop = never_stop) ?(observe = no_observe) t =
  let total = ref 0 in
  let progress = ref true in
  while !progress && not (should_stop ()) do
    let i1 = drain ~should_stop ~observe t Identity in
    let i2 = drain ~should_stop ~observe t Fusion in
    let i3 = drain ~should_stop ~observe t Pauli_leaf in
    let round = i1 + i2 + i3 in
    total := !total + round;
    progress := round > 0
  done;
  !total

(* The graph-like conversion runs once: no rewrite reintroduces X
   spiders (fusion preserves kinds and every vertex created by a rule is
   a Z spider), so later rounds skip the whole-graph sweep the rescan
   engine repeats on every entry. *)
let to_gh_once t =
  if not t.gh then begin
    List.iter
      (fun v ->
        if Zx_graph.mem t.g v && Zx_graph.kind t.g v = Zx_graph.X then begin
          emit t (Zx_step.Color v);
          to_gh_at t.g v
        end)
      (Zx_graph.vertices t.g);
    t.gh <- true
  end

let interior_clifford_simp ?(should_stop = never_stop) ?(observe = no_observe) t =
  let total = ref 0 in
  total := drain ~should_stop ~observe t Fusion;
  to_gh_once t;
  total := !total + basic_simp ~should_stop ~observe t;
  let progress = ref true in
  while !progress && not (should_stop ()) do
    let i3 = drain ~should_stop ~observe t Pivot in
    let i4 = drain ~should_stop ~observe t Lcomp in
    let round = i3 + i4 + basic_simp ~should_stop ~observe t in
    total := !total + round;
    progress := round > 0
  done;
  !total

let clifford_simp ?(should_stop = never_stop) ?(observe = no_observe) t =
  let total = ref 0 in
  let progress = ref true in
  let rounds = ref 0 in
  while !progress && !rounds < 1000 && not (should_stop ()) do
    incr rounds;
    total := !total + interior_clifford_simp ~should_stop ~observe t;
    let b = drain ~should_stop ~observe ~limit:10_000 t Pivot_boundary in
    total := !total + b;
    progress := b > 0
  done;
  !total

let full_reduce_t ?(should_stop = never_stop) ?(observe = no_observe)
    ?(on_pending = no_pending) t =
  let tick () = on_pending t.pending_total in
  (* Sample the worklist length after every productive drain, not just at
     phase boundaries, so the trace gauge tracks the rewrite cascade. *)
  let observe rule count =
    observe rule count;
    tick ()
  in
  ignore (interior_clifford_simp ~should_stop ~observe t);
  tick ();
  ignore (drain ~should_stop ~observe ~limit:10_000 t Pivot_gadget);
  let continue_ = ref true in
  let rounds = ref 0 in
  while !continue_ && !rounds < 1000 && not (should_stop ()) do
    incr rounds;
    ignore (clifford_simp ~should_stop ~observe t);
    let i = drain ~should_stop ~observe t Gadget in
    ignore (interior_clifford_simp ~should_stop ~observe t);
    let j = drain ~should_stop ~observe ~limit:10_000 t Pivot_gadget in
    tick ();
    continue_ := i + j > 0
  done;
  if not (should_stop ()) then ignore (clifford_simp ~should_stop ~observe t);
  tick ();
  not (should_stop ())

let full_reduce ?should_stop ?observe ?on_pending ?record g =
  let t = create ?record g in
  Fun.protect
    ~finally:(fun () -> release t)
    (fun () -> full_reduce_t ?should_stop ?observe ?on_pending t)
