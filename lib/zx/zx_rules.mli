(** Shared rewrite primitives of the graph-like ZX simplifier.

    Both simplification engines — the global-rescan baseline
    ({!Zx_rescan}) and the incremental worklist engine ({!Zx_worklist})
    — apply exactly these rewrites and match predicates; they differ
    only in how candidate sites are scheduled.  Each primitive preserves
    the diagram's semantics up to a global scalar (certified against the
    tensor evaluator in the test suite). *)

open Oqec_base

val is_spider : Zx_graph.t -> int -> bool
val is_z : Zx_graph.t -> int -> bool

(** [fuse g ~into:v u] fuses [u] into [v]: phases add and [u]'s edges
    move to [v] with smart parallel-edge resolution.  The u-v wire must
    already be removed. *)
val fuse : Zx_graph.t -> into:int -> int -> unit

(** Colour-change one X-spider into a Z-spider, toggling the types of
    its incident edges; a no-op on non-X vertices. *)
val to_gh_at : Zx_graph.t -> int -> unit

(** [interior_z_with g v pred] holds for interior Z-spiders whose phase
    satisfies [pred] and whose edges are all Hadamard wires. *)
val interior_z_with : Zx_graph.t -> int -> (Phase.t -> bool) -> bool

(** A vertex with a degree-1 neighbour (a phase-gadget leaf); pivoting
    such vertices would destroy and recreate gadgets forever. *)
val has_leaf_neighbour : Zx_graph.t -> int -> bool

val pivot_candidate : Zx_graph.t -> int -> (Phase.t -> bool) -> bool

(** Local complementation at [v] (which is removed). *)
val lcomp_at : Zx_graph.t -> int -> unit

(** Pivot along the Hadamard edge u-v (both are removed). *)
val pivot_at : Zx_graph.t -> int -> int -> unit

(** [unfuse_boundary g v b ty] splits the boundary wire v-[ty]-b into
    v -H- w(0) -ty'- b so that [v] becomes interior; returns the fresh
    spider [w] (recorded into verdict certificates). *)
val unfuse_boundary : Zx_graph.t -> int -> int -> Zx_graph.etype -> int

(** The boundary partner of a boundary pivot: a Pauli Z-spider touching
    the boundary, with no gadget leaf. *)
val boundary_pauli_z : Zx_graph.t -> int -> bool

(** Extract a non-Pauli phase on [v] into a fresh phase gadget; returns
    the fresh [(axis, leaf)] pair (recorded into verdict certificates). *)
val gadgetize : Zx_graph.t -> int -> int * int

(** [gadget_of g leaf] recognises a phase gadget anchored at its leaf and
    returns the axis and the sorted support. *)
val gadget_of : Zx_graph.t -> int -> (int * int list) option
