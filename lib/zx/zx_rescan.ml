open Oqec_base
open Zx_rules

(* The original full-rescan simplification engine: every pass is a
   [while !progress] fixpoint loop that re-scans the whole vertex list
   after each round of rewrites.  Kept intact as the differential
   baseline for the incremental worklist engine (Zx_worklist): the
   bench's [zx-smoke] target and the property suite compare the two
   rewrite-for-rewrite. *)

let never_stop () = false
let no_observe _ _ = ()

(* Report a pass's rewrite count to the tracing callback; zero-rewrite
   passes stay silent so counters only carry rules that fired. *)
let observed rule observe count =
  if count > 0 then observe rule count;
  count

let spider_simp ?(should_stop = never_stop) ?(observe = no_observe) g =
  let count = ref 0 in
  let progress = ref true in
  while !progress && not (should_stop ()) do
    progress := false;
    let try_vertex v =
      if Zx_graph.mem g v && is_spider g v then
        let candidate =
          List.find_opt
            (fun (u, ty) ->
              ty = Zx_graph.Simple && is_spider g u
              && Zx_graph.kind g u = Zx_graph.kind g v)
            (Zx_graph.neighbours g v)
        in
        match candidate with
        | Some (u, _) ->
            Zx_graph.remove_edge g v u;
            fuse g ~into:v u;
            incr count;
            progress := true
        | None -> ()
    in
    List.iter try_vertex (Zx_graph.vertices g)
  done;
  observed "spider-fusion" observe !count

let to_gh g = List.iter (to_gh_at g) (Zx_graph.vertices g)

let id_simp ?(should_stop = never_stop) ?(observe = no_observe) g =
  let count = ref 0 in
  let progress = ref true in
  while !progress && not (should_stop ()) do
    progress := false;
    let try_vertex v =
      if
        Zx_graph.mem g v && is_spider g v
        && Phase.is_zero (Zx_graph.phase g v)
        && Zx_graph.degree g v = 2
      then begin
        match Zx_graph.neighbours g v with
        | [ (a, ta); (b, tb) ] ->
            let combined =
              if ta = tb then Zx_graph.Simple else Zx_graph.Had
            in
            Zx_graph.remove_vertex g v;
            (* Both endpoints are spiders, or at least one is a boundary of
               degree 1 with no existing a-b edge; smart addition covers
               the spider-spider case. *)
            if is_spider g a && is_spider g b then Zx_graph.add_edge_smart g a b combined
            else Zx_graph.add_edge g a b combined;
            incr count;
            progress := true
        | _ -> ()
      end
    in
    List.iter try_vertex (Zx_graph.vertices g)
  done;
  observed "id-removal" observe !count

(* A Pauli state plugged into a graph-like spider (a degree-1 Z-leaf with
   phase 0 or pi on a Hadamard wire) collapses it: the leaf fixes the
   spider's summation bit, so the spider and leaf disappear; a pi-leaf
   additionally flips the sign seen by every other neighbour, i.e. adds pi
   to their phases (tensor-verified). *)
let pauli_leaf_simp ?(should_stop = never_stop) ?(observe = no_observe) g =
  let count = ref 0 in
  let progress = ref true in
  while !progress && not (should_stop ()) do
    progress := false;
    let try_leaf leaf =
      if
        Zx_graph.mem g leaf && is_z g leaf
        && Zx_graph.degree g leaf = 1
        && Phase.is_pauli (Zx_graph.phase g leaf)
      then
        match Zx_graph.neighbours g leaf with
        | [ (v, Zx_graph.Had) ]
          when is_z g v
               && Zx_graph.is_interior g v
               && Zx_graph.for_all_neighbours g v (fun _ ty -> ty = Zx_graph.Had) ->
            let flip = Phase.is_pi (Zx_graph.phase g leaf) in
            let others = List.filter (fun w -> w <> leaf) (Zx_graph.neighbour_ids g v) in
            Zx_graph.remove_vertex g leaf;
            Zx_graph.remove_vertex g v;
            if flip then List.iter (fun w -> Zx_graph.add_to_phase g w Phase.pi) others;
            incr count;
            progress := true
        | _ -> ()
    in
    List.iter try_leaf (Zx_graph.vertices g)
  done;
  observed "pauli-leaf" observe !count

let lcomp_simp ?(should_stop = never_stop) ?(observe = no_observe) g =
  let count = ref 0 in
  let progress = ref true in
  while !progress && not (should_stop ()) do
    progress := false;
    let try_vertex v =
      if interior_z_with g v Phase.is_proper_clifford then begin
        lcomp_at g v;
        incr count;
        progress := true
      end
    in
    List.iter try_vertex (Zx_graph.vertices g)
  done;
  observed "local-complement" observe !count

let find_pivot_pair ?(symmetric = false) g pred_v =
  let candidate u =
    if pivot_candidate g u Phase.is_pauli then
      List.find_map
        (fun (v, ty) ->
          if ty = Zx_graph.Had && ((not symmetric) || u < v) && pred_v v then
            Some (u, v)
          else None)
        (Zx_graph.neighbours g u)
    else None
  in
  List.find_map candidate (Zx_graph.vertices g)

let pivot_simp ?(should_stop = never_stop) ?(observe = no_observe) g =
  let count = ref 0 in
  let progress = ref true in
  while !progress && not (should_stop ()) do
    progress := false;
    match
      find_pivot_pair ~symmetric:true g (fun v -> pivot_candidate g v Phase.is_pauli)
    with
    | Some (u, v) ->
        pivot_at g u v;
        incr count;
        progress := true
    | None -> ()
  done;
  observed "pivot" observe !count

(* Also a single bounded sweep; the unfused phase-0 spiders it leaves
   behind are cleaned up by id_simp in the caller's loop. *)
let pivot_boundary_simp ?(should_stop = never_stop) ?(observe = no_observe) g =
  let count = ref 0 in
  let pick u =
    if pivot_candidate g u Phase.is_pauli then
      List.find_map
        (fun (v, ty) -> if ty = Zx_graph.Had && boundary_pauli_z g v then Some (u, v) else None)
        (Zx_graph.neighbours g u)
    else None
  in
  let rec go () =
    match List.find_map pick (Zx_graph.vertices g) with
    | Some (u, v) when !count < 10_000 && not (should_stop ()) ->
        List.iter
          (fun (b, ty) -> if not (is_spider g b) then ignore (unfuse_boundary g v b ty))
          (Zx_graph.neighbours g v);
        pivot_at g u v;
        incr count;
        go ()
    | Some _ | None -> ()
  in
  go ();
  observed "pivot-boundary" observe !count

(* One sweep only: the caller's fixpoint loops interleave this with the
   cleanup passes.  The degree guard keeps gadget leaves (degree 1) from
   being re-gadgetised forever. *)
let pivot_gadget_simp ?(should_stop = never_stop) ?(observe = no_observe) g =
  let count = ref 0 in
  let not_pauli p = not (Phase.is_pauli p) in
  let gadget_target v = pivot_candidate g v not_pauli && Zx_graph.degree g v >= 2 in
  let rec go () =
    match find_pivot_pair g gadget_target with
    | Some (u, v) when !count < 10_000 && not (should_stop ()) ->
        ignore (gadgetize g v);
        pivot_at g u v;
        incr count;
        go ()
    | Some _ | None -> ()
  in
  go ();
  observed "pivot-gadget" observe !count

(* Normalise gadgets for merging: an axis with phase pi is equivalent to a
   phase-0 axis with the leaf phase negated (tensor-verified).  Pauli
   leaves themselves are eliminated by {!pauli_leaf_simp}. *)
let gadget_cleanup g =
  let count = ref 0 in
  let consider leaf =
    match gadget_of g leaf with
    | Some (axis, _) ->
        if Phase.is_pi (Zx_graph.phase g axis) then begin
          Zx_graph.set_phase g axis Phase.zero;
          Zx_graph.set_phase g leaf (Phase.neg (Zx_graph.phase g leaf));
          incr count
        end
    | None -> ()
  in
  List.iter consider (Zx_graph.vertices g);
  !count

let gadget_simp ?(should_stop = never_stop) ?(observe = no_observe) g =
  let count = ref 0 in
  let progress = ref true in
  while !progress && not (should_stop ()) do
    progress := false;
    count := !count + gadget_cleanup g;
    let table = Hashtbl.create 16 in
    let consider leaf =
      match gadget_of g leaf with
      | Some (axis, support)
        when support <> [] && Phase.is_zero (Zx_graph.phase g axis) -> (
          match Hashtbl.find_opt table support with
          | Some (leaf0, _) when Zx_graph.mem g leaf0 && leaf0 <> leaf ->
              (* Merge this gadget into the recorded one. *)
              Zx_graph.add_to_phase g leaf0 (Zx_graph.phase g leaf);
              Zx_graph.remove_vertex g leaf;
              Zx_graph.remove_vertex g axis;
              incr count;
              progress := true
          | Some _ -> ()
          | None -> Hashtbl.replace table support (leaf, axis))
      | Some _ | None -> ()
    in
    List.iter consider (Zx_graph.vertices g)
  done;
  observed "gadget-fusion" observe !count

(* ----------------------------------------------------------- Strategies *)

(* Fusion, identity removal and Pauli-state absorption to fixpoint; this
   is what peels mirrored miters layer by layer, so it must complete
   before any pivoting or local complementation disturbs the structure. *)
let basic_simp ?(should_stop = never_stop) ?(observe = no_observe) g =
  let total = ref 0 in
  let progress = ref true in
  while !progress && not (should_stop ()) do
    let i1 = id_simp ~should_stop ~observe g in
    let i2 = spider_simp ~should_stop ~observe g in
    let i3 = pauli_leaf_simp ~should_stop ~observe g in
    let round = i1 + i2 + i3 in
    total := !total + round;
    progress := round > 0
  done;
  !total

let interior_clifford_simp ?(should_stop = never_stop) ?(observe = no_observe) g =
  let total = ref 0 in
  total := spider_simp ~should_stop ~observe g;
  to_gh g;
  total := !total + basic_simp ~should_stop ~observe g;
  let progress = ref true in
  while !progress && not (should_stop ()) do
    let i3 = pivot_simp ~should_stop ~observe g in
    let i4 = lcomp_simp ~should_stop ~observe g in
    let round = i3 + i4 + basic_simp ~should_stop ~observe g in
    total := !total + round;
    progress := round > 0
  done;
  !total

let clifford_simp ?(should_stop = never_stop) ?(observe = no_observe) g =
  let total = ref 0 in
  let progress = ref true in
  let rounds = ref 0 in
  while !progress && !rounds < 1000 && not (should_stop ()) do
    incr rounds;
    total := !total + interior_clifford_simp ~should_stop ~observe g;
    let b = pivot_boundary_simp ~should_stop ~observe g in
    total := !total + b;
    progress := b > 0
  done;
  !total

let full_reduce ?(should_stop = never_stop) ?(observe = no_observe) g =
  let stopped () = should_stop () in
  ignore (interior_clifford_simp ~should_stop ~observe g);
  ignore (pivot_gadget_simp ~should_stop ~observe g);
  let continue_ = ref true in
  let rounds = ref 0 in
  while !continue_ && !rounds < 1000 && not (stopped ()) do
    incr rounds;
    ignore (clifford_simp ~should_stop ~observe g);
    let i = gadget_simp ~should_stop ~observe g in
    ignore (interior_clifford_simp ~should_stop ~observe g);
    let j = pivot_gadget_simp ~should_stop ~observe g in
    continue_ := i + j > 0
  done;
  if not (stopped ()) then ignore (clifford_simp ~should_stop ~observe g);
  not (stopped ())
