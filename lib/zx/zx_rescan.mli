(** The original full-rescan simplification engine.

    Every pass is a fixpoint loop that re-scans the whole vertex list
    after each round of rewrites — quadratic-plus in practice.  It is
    kept unchanged as the differential baseline for the incremental
    worklist engine ({!Zx_worklist}): the bench's [zx-smoke] target and
    the property suite in [test_zx_worklist.ml] assert that both engines
    produce identical verdicts.  New code should reach these passes
    through the {!Zx_simplify} facade. *)


val spider_simp :
  ?should_stop:(unit -> bool) -> ?observe:(string -> int -> unit) -> Zx_graph.t -> int

val to_gh : Zx_graph.t -> unit

val id_simp :
  ?should_stop:(unit -> bool) -> ?observe:(string -> int -> unit) -> Zx_graph.t -> int

val pauli_leaf_simp :
  ?should_stop:(unit -> bool) -> ?observe:(string -> int -> unit) -> Zx_graph.t -> int

val lcomp_simp :
  ?should_stop:(unit -> bool) -> ?observe:(string -> int -> unit) -> Zx_graph.t -> int

val pivot_simp :
  ?should_stop:(unit -> bool) -> ?observe:(string -> int -> unit) -> Zx_graph.t -> int

val pivot_boundary_simp :
  ?should_stop:(unit -> bool) -> ?observe:(string -> int -> unit) -> Zx_graph.t -> int

val pivot_gadget_simp :
  ?should_stop:(unit -> bool) -> ?observe:(string -> int -> unit) -> Zx_graph.t -> int

val gadget_simp :
  ?should_stop:(unit -> bool) -> ?observe:(string -> int -> unit) -> Zx_graph.t -> int

val basic_simp :
  ?should_stop:(unit -> bool) -> ?observe:(string -> int -> unit) -> Zx_graph.t -> int

val interior_clifford_simp :
  ?should_stop:(unit -> bool) -> ?observe:(string -> int -> unit) -> Zx_graph.t -> int

val clifford_simp :
  ?should_stop:(unit -> bool) -> ?observe:(string -> int -> unit) -> Zx_graph.t -> int

val full_reduce :
  ?should_stop:(unit -> bool) -> ?observe:(string -> int -> unit) -> Zx_graph.t -> bool
