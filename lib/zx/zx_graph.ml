open Oqec_base

type vkind = B_in of int | B_out of int | Z | X
type etype = Simple | Had

type vertex = {
  mutable vk : vkind;
  mutable ph : Phase.t;
  adj : (int, etype) Hashtbl.t;
}

type t = {
  mutable next : int;
  mutable peak : int;
  vs : (int, vertex) Hashtbl.t;
  mutable tracer : (int -> unit) option;
}

let create () = { next = 0; peak = 0; vs = Hashtbl.create 256; tracer = None }

let set_tracer g t = g.tracer <- t

(* Every mutation funnels its touched vertices through here; the worklist
   engine subscribes to re-enqueue dirty neighbourhoods.  With no tracer
   installed the cost is a single branch. *)
let touch g v = match g.tracer with None -> () | Some f -> f v

(* Vertex creation is the only way the graph grows, so maintaining the
   running peak here captures every transient blow-up (boundary pivots,
   gadgetization) that a before/after comparison would miss. *)
let add_vertex g vk ~phase =
  let id = g.next in
  g.next <- id + 1;
  Hashtbl.replace g.vs id { vk; ph = phase; adj = Hashtbl.create 4 };
  let live = Hashtbl.length g.vs in
  if live > g.peak then g.peak <- live;
  touch g id;
  id

let vertex g v =
  match Hashtbl.find_opt g.vs v with
  | Some vx -> vx
  | None -> invalid_arg (Printf.sprintf "Zx_graph: dead vertex %d" v)

let kind g v = (vertex g v).vk
let phase g v = (vertex g v).ph

let set_phase g v p =
  (vertex g v).ph <- p;
  touch g v

let add_to_phase g v p =
  let vx = vertex g v in
  vx.ph <- Phase.add vx.ph p;
  touch g v

let set_kind g v k =
  (vertex g v).vk <- k;
  touch g v

let vertices g = Hashtbl.fold (fun id _ acc -> id :: acc) g.vs []
let num_vertices g = Hashtbl.length g.vs
let peak_vertices g = g.peak

let spider_count g =
  Hashtbl.fold
    (fun _ vx acc -> match vx.vk with Z | X -> acc + 1 | B_in _ | B_out _ -> acc)
    g.vs 0

let mem g v = Hashtbl.mem g.vs v
let connected g u v = Hashtbl.find_opt (vertex g u).adj v
let neighbours g v = Hashtbl.fold (fun u ty acc -> (u, ty) :: acc) (vertex g v).adj []
let neighbour_ids g v = Hashtbl.fold (fun u _ acc -> u :: acc) (vertex g v).adj []
let degree g v = Hashtbl.length (vertex g v).adj
let iter_neighbours g v f = Hashtbl.iter f (vertex g v).adj
let fold_neighbours g v f acc = Hashtbl.fold f (vertex g v).adj acc

exception Stop

(* Early-exit scans over the adjacency table: the worklist matchers run
   these on every dequeued vertex, so they must not allocate the
   [neighbours] list. *)
let exists_neighbour g v p =
  try
    iter_neighbours g v (fun u ty -> if p u ty then raise Stop);
    false
  with Stop -> true

let for_all_neighbours g v p = not (exists_neighbour g v (fun u ty -> not (p u ty)))

let find_neighbour g v p =
  let found = ref None in
  (try iter_neighbours g v (fun u ty -> if p u ty then (found := Some (u, ty); raise Stop))
   with Stop -> ());
  !found

let add_edge g u v ty =
  if u = v then invalid_arg "Zx_graph.add_edge: self-loop";
  if connected g u v <> None then invalid_arg "Zx_graph.add_edge: parallel edge";
  Hashtbl.replace (vertex g u).adj v ty;
  Hashtbl.replace (vertex g v).adj u ty;
  touch g u;
  touch g v

let remove_edge g u v =
  Hashtbl.remove (vertex g u).adj v;
  Hashtbl.remove (vertex g v).adj u;
  touch g u;
  touch g v

let is_spider g v = match kind g v with Z | X -> true | B_in _ | B_out _ -> false

let same_color a b =
  match (a, b) with
  | Z, Z | X, X -> true
  | Z, X | X, Z -> false
  | (B_in _ | B_out _), _ | _, (B_in _ | B_out _) ->
      invalid_arg "Zx_graph: boundary in smart edge resolution"

(* Parallel-edge and self-loop resolution, all verified against the tensor
   semantics (up to scalar):
   - self-loop, plain wire on a spider: disappears;
   - self-loop, Hadamard wire: adds pi to the spider's phase;
   - same colour, both plain: a single plain wire (fusion absorbs it);
   - same colour, both Hadamard: both disappear (Hopf);
   - same colour, mixed: one plain wire plus pi on a phase;
   - different colour, both plain: both disappear (Hopf, colour-changed);
   - different colour, both Hadamard: a single Hadamard wire;
   - different colour, mixed: one Hadamard wire plus pi on a phase. *)
let add_edge_smart g u v ty =
  if u = v then begin
    match ty with
    | Simple -> ()
    | Had -> add_to_phase g u Phase.pi
  end
  else
    match connected g u v with
    | None -> add_edge g u v ty
    | Some existing ->
        if not (is_spider g u && is_spider g v) then
          invalid_arg "Zx_graph.add_edge_smart: parallel edge at a boundary";
        let same = same_color (kind g u) (kind g v) in
        (match (existing, ty) with
        | Simple, Simple -> if not same then remove_edge g u v
        | Had, Had -> if same then remove_edge g u v
        | Simple, Had | Had, Simple ->
            let final = if same then Simple else Had in
            Hashtbl.replace (vertex g u).adj v final;
            Hashtbl.replace (vertex g v).adj u final;
            touch g v;
            add_to_phase g u Phase.pi)

let toggle_edge g u v ty =
  match connected g u v with
  | None -> add_edge g u v ty
  | Some existing ->
      assert (existing = ty);
      remove_edge g u v

let remove_vertex g v =
  let vx = vertex g v in
  Hashtbl.iter
    (fun u _ ->
      Hashtbl.remove (vertex g u).adj v;
      touch g u)
    vx.adj;
  Hashtbl.remove g.vs v

let is_boundary g v = match kind g v with B_in _ | B_out _ -> true | Z | X -> false

let is_interior g v =
  is_spider g v && List.for_all (fun u -> is_spider g u) (neighbour_ids g v)

let collect_boundaries g f =
  Hashtbl.fold
    (fun id vx acc -> match f vx.vk with Some q -> (q, id) :: acc | None -> acc)
    g.vs []
  |> List.sort compare

let inputs g = collect_boundaries g (function B_in q -> Some q | B_out _ | Z | X -> None)
let outputs g = collect_boundaries g (function B_out q -> Some q | B_in _ | Z | X -> None)

let copy g =
  let vs = Hashtbl.create (Hashtbl.length g.vs) in
  Hashtbl.iter
    (fun id vx -> Hashtbl.replace vs id { vx with adj = Hashtbl.copy vx.adj })
    g.vs;
  (* Tracer subscriptions are tied to one engine instance and do not
     survive copying. *)
  { next = g.next; peak = g.peak; vs; tracer = None }

let pp ppf g =
  let kind_str = function
    | B_in q -> Printf.sprintf "in%d" q
    | B_out q -> Printf.sprintf "out%d" q
    | Z -> "Z"
    | X -> "X"
  in
  Format.fprintf ppf "@[<v>zx graph: %d vertices@," (num_vertices g);
  List.iter
    (fun v ->
      let vx = vertex g v in
      Format.fprintf ppf "  %d: %s(%a) --" v (kind_str vx.vk) Phase.pp vx.ph;
      Hashtbl.iter
        (fun u ty ->
          Format.fprintf ppf " %s%d" (match ty with Simple -> "" | Had -> "h") u)
        vx.adj;
      Format.fprintf ppf "@,")
    (List.sort compare (vertices g));
  Format.fprintf ppf "@]"
