open Oqec_base

(* Facade over the two simplification engines.

   Single-rule passes delegate to the rescan implementation — "apply
   this rule everywhere" has no scheduling to optimise and the figure
   demos and rewrite-certification tests use them directly.  The
   composite strategies delegate to the incremental worklist engine
   (Zx_worklist), which replaced the global rescan fixpoint loops; the
   original engine stays available as {!Rescan} and is raced against the
   incremental one by the bench's [zx-smoke] target and the property
   suite. *)

module Rescan = Zx_rescan
module Worklist = Zx_worklist

let spider_simp = Zx_rescan.spider_simp
let to_gh = Zx_rescan.to_gh
let id_simp = Zx_rescan.id_simp
let pauli_leaf_simp = Zx_rescan.pauli_leaf_simp
let lcomp_simp = Zx_rescan.lcomp_simp
let pivot_simp = Zx_rescan.pivot_simp
let pivot_boundary_simp = Zx_rescan.pivot_boundary_simp
let pivot_gadget_simp = Zx_rescan.pivot_gadget_simp
let gadget_simp = Zx_rescan.gadget_simp

let with_worklist f ?should_stop ?observe g =
  let t = Zx_worklist.create g in
  Fun.protect
    ~finally:(fun () -> Zx_worklist.release t)
    (fun () -> f ?should_stop ?observe t)

let interior_clifford_simp ?should_stop ?observe g =
  with_worklist Zx_worklist.interior_clifford_simp ?should_stop ?observe g

let clifford_simp ?should_stop ?observe g =
  with_worklist Zx_worklist.clifford_simp ?should_stop ?observe g

let full_reduce ?should_stop ?observe ?on_pending ?record g =
  Zx_worklist.full_reduce ?should_stop ?observe ?on_pending ?record g

(* ----------------------------------------------------------- Extraction *)

let extract_permutation g =
  let n = List.length (Zx_graph.inputs g) in
  if Zx_graph.spider_count g > 0 then None
  else if List.length (Zx_graph.outputs g) <> n then None
  else
    let image = Array.make n (-1) in
    let ok = ref true in
    List.iter
      (fun (q, vin) ->
        match Zx_graph.neighbours g vin with
        | [ (w, Zx_graph.Simple) ] -> (
            match Zx_graph.kind g w with
            | Zx_graph.B_out q' -> image.(q) <- q'
            | Zx_graph.B_in _ | Zx_graph.Z | Zx_graph.X -> ok := false)
        | _ -> ok := false)
      (Zx_graph.inputs g);
    if (not !ok) || Array.exists (fun x -> x < 0) image then None
    else match Perm.of_array image with p -> Some p | exception Invalid_argument _ -> None
