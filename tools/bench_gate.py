#!/usr/bin/env python3
"""Compare freshly emitted BENCH_*.json files against committed baselines.

Usage: bench_gate.py BASELINE_DIR CURRENT_DIR [options]

Walks every BENCH_*.json present in BASELINE_DIR and compares it with
the file of the same name in CURRENT_DIR:

- "outcome" leaves must be identical (a verdict change is always fatal);
- "mismatches" / "failures" counters must not increase;
- "elapsed" leaves may grow by at most --tolerance (default 1.5x), and
  only when the baseline time is above --floor seconds (default 0.5) —
  sub-floor timings are dominated by scheduler noise, not regressions;
- "mem_peak_kb" / "vm_hwm_kb" leaves may grow by at most
  --mem-tolerance (default 3.0x) — peak RSS is far noisier than wall
  time (allocator arenas, GC timing), but an order-of-magnitude jump
  means a leak, e.g. a DD arena growing with total allocations instead
  of live size.

List entries are matched by their "benchmark" key when present, by
position otherwise.  Extra keys on either side are ignored (the emitters
are free to grow richer).  A human-readable report is written to
--report for upload as a CI artifact.
"""

import argparse
import json
import os
import sys

VERDICT_KEYS = {"outcome"}
COUNTER_KEYS = {"mismatches", "failures"}
TIME_KEYS = {"elapsed"}
MEM_KEYS = {"mem_peak_kb", "vm_hwm_kb"}


class Gate:
    def __init__(self, tolerance, floor, mem_tolerance):
        self.tolerance = tolerance
        self.floor = floor
        self.mem_tolerance = mem_tolerance
        self.problems = []
        self.checked_times = 0
        self.checked_mem = 0
        self.checked_verdicts = 0

    def fail(self, path, message):
        self.problems.append(f"{path}: {message}")

    def compare(self, path, base, cur):
        if isinstance(base, dict):
            if not isinstance(cur, dict):
                self.fail(path, f"shape changed: expected object, got {type(cur).__name__}")
                return
            for key, bval in base.items():
                if key not in cur:
                    if key in VERDICT_KEYS | COUNTER_KEYS | TIME_KEYS | MEM_KEYS:
                        self.fail(path, f"gated key {key!r} disappeared")
                    continue
                self.compare_leaf(f"{path}.{key}", key, bval, cur[key])
        elif isinstance(base, list):
            if not isinstance(cur, list):
                self.fail(path, f"shape changed: expected array, got {type(cur).__name__}")
                return
            for i, bitem in enumerate(base):
                citem, label = self.match(bitem, cur, i)
                if citem is None:
                    self.fail(f"{path}[{label}]", "benchmark row disappeared")
                else:
                    self.compare(f"{path}[{label}]", bitem, citem)

    @staticmethod
    def match(bitem, cur, i):
        if isinstance(bitem, dict) and "benchmark" in bitem:
            name = bitem["benchmark"]
            for citem in cur:
                if isinstance(citem, dict) and citem.get("benchmark") == name:
                    return citem, name
            return None, name
        return (cur[i], i) if i < len(cur) else (None, i)

    def compare_leaf(self, path, key, bval, cval):
        if key in VERDICT_KEYS:
            self.checked_verdicts += 1
            if bval != cval:
                self.fail(path, f"verdict changed: {bval!r} -> {cval!r}")
        elif key in COUNTER_KEYS:
            if isinstance(bval, (int, float)) and isinstance(cval, (int, float)):
                if cval > bval:
                    self.fail(path, f"{key} increased: {bval} -> {cval}")
        elif key in TIME_KEYS:
            if isinstance(bval, (int, float)) and isinstance(cval, (int, float)):
                if bval >= self.floor and cval > bval * self.tolerance:
                    self.fail(
                        path,
                        f"wall time regressed {cval / bval:.2f}x "
                        f"({bval:.3f}s -> {cval:.3f}s, tolerance {self.tolerance}x)",
                    )
                self.checked_times += 1
        elif key in MEM_KEYS:
            if isinstance(bval, (int, float)) and isinstance(cval, (int, float)):
                # A zero baseline means /proc was unavailable there —
                # nothing meaningful to compare against.
                if bval > 0 and cval > bval * self.mem_tolerance:
                    self.fail(
                        path,
                        f"peak memory regressed {cval / bval:.2f}x "
                        f"({bval} kB -> {cval} kB, tolerance {self.mem_tolerance}x)",
                    )
                self.checked_mem += 1
        elif isinstance(bval, (dict, list)):
            self.compare(path, bval, cval)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline_dir")
    ap.add_argument("current_dir")
    ap.add_argument("--tolerance", type=float, default=1.5)
    ap.add_argument("--floor", type=float, default=0.5)
    ap.add_argument("--mem-tolerance", type=float, default=3.0)
    ap.add_argument("--report", default="bench-gate-report.txt")
    args = ap.parse_args()

    gate = Gate(args.tolerance, args.floor, args.mem_tolerance)
    names = sorted(
        n
        for n in os.listdir(args.baseline_dir)
        if n.startswith("BENCH_") and n.endswith(".json")
    )
    if not names:
        print(f"no BENCH_*.json baselines in {args.baseline_dir}", file=sys.stderr)
        return 2

    lines = [
        f"bench gate: tolerance {args.tolerance}x, floor {args.floor}s, "
        f"mem tolerance {args.mem_tolerance}x",
        f"baselines: {args.baseline_dir}  current: {args.current_dir}",
        "",
    ]
    for name in names:
        cur_path = os.path.join(args.current_dir, name)
        if not os.path.exists(cur_path):
            gate.fail(name, "benchmark output was not produced")
            lines.append(f"{name}: MISSING")
            continue
        with open(os.path.join(args.baseline_dir, name)) as f:
            base = json.load(f)
        with open(cur_path) as f:
            cur = json.load(f)
        before = len(gate.problems)
        gate.compare(name, base, cur)
        status = "ok" if len(gate.problems) == before else "REGRESSED"
        lines.append(f"{name}: {status}")

    lines.append("")
    if gate.problems:
        lines.append(f"{len(gate.problems)} regression(s):")
        lines.extend(f"  {p}" for p in gate.problems)
    else:
        lines.append(
            f"no regressions ({gate.checked_verdicts} verdicts, "
            f"{gate.checked_times} timings, {gate.checked_mem} memory peaks checked)"
        )
    report = "\n".join(lines) + "\n"
    with open(args.report, "w") as f:
        f.write(report)
    print(report, end="")
    return 1 if gate.problems else 0


if __name__ == "__main__":
    sys.exit(main())
