(* Cross-cutting properties that did not fit the per-module suites. *)

open Oqec_base
open Oqec_circuit
open Oqec_compile
open Helpers

(* ----------------------------------------------------------- Phase laws *)

let phase_gen =
  QCheck.Gen.(
    oneof
      [
        map2 (fun n d -> Phase.of_pi_fraction n (1 lsl d)) (int_range (-32) 32) (int_range 0 6);
        map Phase.of_float (float_range (-10.0) 10.0);
      ])

let phase_arb = QCheck.make ~print:Phase.to_string phase_gen

let prop_half_double =
  qtest "phase: double (half p) = p" phase_arb (fun p ->
      Phase.equal (Phase.double (Phase.half p)) p)

let prop_sub_add =
  qtest "phase: (p - q) + q = p" QCheck.(pair phase_arb phase_arb) (fun (p, q) ->
      Phase.equal (Phase.add (Phase.sub p q) q) p)

(* --------------------------------------------------------- Architectures *)

let arch_gen =
  QCheck.Gen.(
    oneof
      [
        map Architecture.linear (int_range 2 20);
        map Architecture.ring (int_range 3 20);
        map2 (fun r c -> Architecture.grid ~rows:r ~cols:c) (int_range 2 5) (int_range 2 5);
        return Architecture.manhattan;
      ])

let arch_arb = QCheck.make ~print:Architecture.name arch_gen

let prop_shortest_path_valid =
  qtest "architecture: shortest paths follow couplings"
    QCheck.(pair arch_arb (make ~print:string_of_int Gen.int))
    (fun (arch, seed) ->
      let rng = Rng.make ~seed in
      let n = Architecture.num_qubits arch in
      let a = Rng.int rng n and b = Rng.int rng n in
      let path = Architecture.shortest_path arch a b in
      let rec consecutive = function
        | x :: (y :: _ as rest) -> Architecture.connected arch x y && consecutive rest
        | [ _ ] | [] -> true
      in
      List.length path = Architecture.distance arch a b + 1
      && List.hd path = a
      && List.nth path (List.length path - 1) = b
      && consecutive path)

let prop_distance_symmetric =
  qtest "architecture: distance is symmetric"
    QCheck.(pair arch_arb (make ~print:string_of_int Gen.int))
    (fun (arch, seed) ->
      let rng = Rng.make ~seed in
      let n = Architecture.num_qubits arch in
      let a = Rng.int rng n and b = Rng.int rng n in
      Architecture.distance arch a b = Architecture.distance arch b a)

(* ------------------------------------------------------------- Strategies *)

let test_strategy_strings () =
  List.iter
    (fun s ->
      match Oqec_qcec.Qcec.strategy_of_string (Oqec_qcec.Qcec.strategy_to_string s) with
      | Some s' when s' = s -> ()
      | _ -> Alcotest.fail ("roundtrip failed for " ^ Oqec_qcec.Qcec.strategy_to_string s))
    Oqec_qcec.Qcec.[ Reference; Alternating; Simulation; Zx; Combined; Clifford; Portfolio ];
  Alcotest.(check bool) "unknown rejected" true
    (Oqec_qcec.Qcec.strategy_of_string "nonsense" = None)

(* ------------------------------------------------------------ QASM extras *)

let test_qasm_functions () =
  let src = {|OPENQASM 2.0;
qreg q[1];
rz(2*cos(0)*pi/4) q[0];
rz(sqrt(4)*pi/8) q[0];
|} in
  let c = Oqec_qasm.Qasm.circuit_of_string src in
  match Circuit.ops c with
  | [ Circuit.Gate (Gate.Rz a, 0); Circuit.Gate (Gate.Rz b, 0) ] ->
      Alcotest.check phase_testable "2cos0*pi/4 = pi/2" Phase.half_pi a;
      Alcotest.check phase_testable "sqrt4*pi/8 = pi/4" Phase.quarter_pi b
  | _ -> Alcotest.fail "function evaluation wrong"

(* ------------------------------------------------------------- Flatten *)

let prop_flatten_idempotent =
  qtest ~count:30 "flatten: idempotent on metadata-free circuits"
    QCheck.(make ~print:string_of_int Gen.int)
    (fun seed ->
      let rng = Rng.make ~seed in
      let n = 2 + Rng.int rng 3 in
      let c = ref (Circuit.create n) in
      for _ = 1 to 10 do
        let q = Rng.int rng n in
        let q2 = (q + 1 + Rng.int rng (n - 1)) mod n in
        match Rng.int rng 3 with
        | 0 -> c := Circuit.h !c q
        | 1 -> c := Circuit.cx !c q q2
        | _ -> c := Circuit.swap !c q q2
      done;
      let once = Oqec_qcec.Flatten.flatten !c in
      let twice = Oqec_qcec.Flatten.flatten once in
      Dmatrix.equal ~tol:1e-9 (Unitary.unitary once) (Unitary.unitary twice))

(* ---------------------------------------------------------------- Stab pp *)

let test_tableau_pp () =
  let t = Oqec_stab.Tableau.of_circuit (Circuit.cx (Circuit.h (Circuit.create 2) 0) 0 1) in
  let s = Format.asprintf "%a" Oqec_stab.Tableau.pp t in
  Alcotest.(check bool) "prints paulis" true (String.length s > 0 && String.contains s 'X')

let suite =
  [
    prop_half_double;
    prop_sub_add;
    prop_shortest_path_valid;
    prop_distance_symmetric;
    Alcotest.test_case "strategy string roundtrip" `Quick test_strategy_strings;
    Alcotest.test_case "qasm function expressions" `Quick test_qasm_functions;
    prop_flatten_idempotent;
    Alcotest.test_case "tableau printing" `Quick test_tableau_pp;
  ]
