(* The incremental worklist simplifier against the rescan baseline: both
   engines must stay verdict-for-verdict interchangeable (the bench's
   zx-smoke asserts the same at miter scale), plus unit tests for the
   worklist mechanics themselves (seeding, re-enqueue on neighbour
   change, termination, cancellation). *)

open Oqec_base
open Oqec_circuit
open Oqec_zx
open Helpers

let seed_arb = QCheck.(make ~print:string_of_int Gen.int)

(* Random circuits on up to 6 qubits, drawing from the same gate mix as
   the fuzz generators' Mixed profile region the checkers see. *)
let random_circuit seed ~n ~len =
  let rng = Rng.make ~seed in
  let c = ref (Circuit.create n) in
  for _ = 1 to len do
    let q = Rng.int rng n in
    let q2 = (q + 1 + Rng.int rng (max 1 (n - 1))) mod n in
    match Rng.int rng 8 with
    | 0 -> c := Circuit.h !c q
    | 1 -> c := Circuit.t_gate !c q
    | 2 -> c := Circuit.s !c q
    | 3 -> c := Circuit.x !c q
    | 4 -> c := Circuit.rz !c (Phase.of_pi_fraction (Rng.int rng 16) 8) q
    | 5 | 6 -> if n > 1 then c := Circuit.cx !c q q2
    | _ -> if n > 1 then c := Circuit.cz !c q q2
  done;
  !c

let reduce_both c =
  let d_inc = Zx_circuit.of_circuit c in
  let d_res = Zx_circuit.of_circuit c in
  let ok_inc = Zx_simplify.full_reduce d_inc in
  let ok_res = Zx_simplify.Rescan.full_reduce d_res in
  ((d_inc, ok_inc), (d_res, ok_res))

(* Verdict-level agreement: completion, the extracted permutation (the
   equivalence verdict), and the number of live wires must match; both
   reduced diagrams must still denote the original circuit. *)
let prop_engines_agree =
  qtest ~count:80 "worklist: verdicts agree with the rescan engine" seed_arb
    (fun seed ->
      let n = 1 + (abs seed mod 6) in
      let c = random_circuit seed ~n ~len:10 in
      let reference = Unitary.unitary c in
      let (d_inc, ok_inc), (d_res, ok_res) = reduce_both c in
      ok_inc = ok_res
      && Zx_simplify.extract_permutation d_inc = Zx_simplify.extract_permutation d_res
      && Zx_graph.num_vertices d_inc - Zx_graph.spider_count d_inc
         = Zx_graph.num_vertices d_res - Zx_graph.spider_count d_res
      && Zx_tensor.proportional reference (Zx_tensor.matrix d_inc)
      && Zx_tensor.proportional reference (Zx_tensor.matrix d_res))

(* Self-miters must collapse to the identity permutation under both
   engines. *)
let prop_self_miter_identity =
  qtest ~count:40 "worklist: self-miter reduces to identity on both engines" seed_arb
    (fun seed ->
      let n = 2 + (abs seed mod 4) in
      let c = random_circuit seed ~n ~len:8 in
      let identity d =
        match Zx_simplify.extract_permutation d with
        | Some p -> Perm.is_identity p
        | None -> false
      in
      let d_inc = Zx_circuit.of_miter c c in
      let d_res = Zx_circuit.of_miter c c in
      ignore (Zx_simplify.full_reduce d_inc);
      ignore (Zx_simplify.Rescan.full_reduce d_res);
      identity d_inc && identity d_res)

let num_rules = List.length Zx_worklist.all_rules

(* Creation seeds every vertex into every rule queue. *)
let test_seeding () =
  let d = Zx_circuit.of_circuit (Circuit.cx (Circuit.h (Circuit.create 2) 0) 0 1) in
  let t = Zx_worklist.create d in
  Fun.protect
    ~finally:(fun () -> Zx_worklist.release t)
    (fun () ->
      Alcotest.(check int)
        "pending = vertices x rules"
        (Zx_graph.num_vertices d * num_rules)
        (Zx_worklist.pending t))

(* Draining every queue reaches pending = 0 in bounded rounds
   (termination), and a later graph mutation re-enqueues exactly the
   closed neighbourhood N[v] of the touched vertex into every queue. *)
let test_reenqueue_on_neighbour_change () =
  let d = Zx_circuit.of_circuit (Circuit.cx (Circuit.h (Circuit.create 2) 0) 0 1) in
  let t = Zx_worklist.create d in
  Fun.protect
    ~finally:(fun () -> Zx_worklist.release t)
    (fun () ->
      let rounds = ref 0 in
      while Zx_worklist.pending t > 0 && !rounds < 100 do
        incr rounds;
        List.iter (fun r -> ignore (Zx_worklist.drain t r)) Zx_worklist.all_rules
      done;
      Alcotest.(check bool) "drains terminate" true (!rounds < 100);
      Alcotest.(check int) "all queues empty" 0 (Zx_worklist.pending t);
      (* Touch one surviving spider; it and its neighbours become dirty
         for every rule. *)
      let v =
        let is_spider v =
          match Zx_graph.kind d v with
          | Zx_graph.Z | Zx_graph.X -> true
          | Zx_graph.B_in _ | Zx_graph.B_out _ -> false
        in
        match List.find_opt is_spider (Zx_graph.vertices d) with
        | Some v -> v
        | None -> List.hd (Zx_graph.vertices d)
      in
      Zx_graph.add_to_phase d v Phase.pi;
      Alcotest.(check int)
        "N[v] re-enqueued into every queue"
        ((1 + Zx_graph.degree d v) * num_rules)
        (Zx_worklist.pending t))

(* The tracer must stop feeding the queues after release. *)
let test_release_stops_tracking () =
  let d = Zx_circuit.of_circuit (Circuit.h (Circuit.create 1) 0) in
  let t = Zx_worklist.create d in
  let rounds = ref 0 in
  while Zx_worklist.pending t > 0 && !rounds < 100 do
    incr rounds;
    List.iter (fun r -> ignore (Zx_worklist.drain t r)) Zx_worklist.all_rules
  done;
  Zx_worklist.release t;
  Zx_graph.add_to_phase d (List.hd (Zx_graph.vertices d)) Phase.pi;
  Alcotest.(check int) "no re-enqueue after release" 0 (Zx_worklist.pending t)

(* full_reduce honours should_stop at its Guard points: a stopper that
   trips after a few probes aborts the run with [false] and leaves work
   behind. *)
let test_cancellation () =
  let c = random_circuit 5 ~n:4 ~len:30 in
  let calls = ref 0 in
  let should_stop () =
    incr calls;
    !calls > 3
  in
  let d = Zx_circuit.of_miter c c in
  let completed = Zx_simplify.full_reduce ~should_stop d in
  Alcotest.(check bool) "interrupted run reports false" false completed

(* The fired census uses the same rule names as the rescan engine's
   observe callback, so the Engine.Ctx counters stay comparable. *)
let test_fired_census () =
  let c = random_circuit 7 ~n:3 ~len:12 in
  let d = Zx_circuit.of_miter c c in
  let t = Zx_worklist.create d in
  Fun.protect
    ~finally:(fun () -> Zx_worklist.release t)
    (fun () ->
      let observed = Hashtbl.create 8 in
      let observe rule count =
        Hashtbl.replace observed rule
          (count + Option.value ~default:0 (Hashtbl.find_opt observed rule))
      in
      ignore (Zx_worklist.full_reduce_t ~observe t);
      List.iter
        (fun (rule, count) ->
          Alcotest.(check int)
            (Printf.sprintf "census matches observe for %s" rule)
            (Option.value ~default:0 (Hashtbl.find_opt observed rule))
            count)
        (Zx_worklist.fired t);
      Alcotest.(check bool)
        "peak pending covers the seed"
        true
        (Zx_worklist.peak_pending t >= Zx_graph.peak_vertices d))

let suite =
  [
    prop_engines_agree;
    prop_self_miter_identity;
    Alcotest.test_case "worklist: seeding fills every queue" `Quick test_seeding;
    Alcotest.test_case "worklist: neighbour change re-enqueues N[v]" `Quick
      test_reenqueue_on_neighbour_change;
    Alcotest.test_case "worklist: release stops tracking" `Quick
      test_release_stops_tracking;
    Alcotest.test_case "worklist: should_stop cancels full_reduce" `Quick
      test_cancellation;
    Alcotest.test_case "worklist: fired census matches observe" `Quick
      test_fired_census;
  ]
