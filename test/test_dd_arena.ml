(* Arena DD core: differential tests against the boxed baseline, GC and
   rooting properties of the compacting arena, weight-table pins, and
   the streaming QASM front end.

   The boxed package is the differential reference: for every generated
   pair both cores must return the same verdict, and for the stimuli
   strategy the same counterexample index (the number of simulations
   consumed before refutation) — verdicts must never depend on the
   representation. *)

open Oqec_base
open Oqec_circuit
open Oqec_dd
open Oqec_compile
open Oqec_workloads.Workloads
open Oqec_qcec
open Helpers

let outcome_testable =
  Alcotest.testable
    (fun ppf o -> Format.pp_print_string ppf (Equivalence.outcome_to_string o))
    ( = )

(* ------------------------------------------------------------- Wtable *)

let test_wtable_pins () =
  let w = Wtable.create ~tol:1e-10 () in
  Alcotest.(check int) "zero pinned" Wtable.zero_id (Wtable.intern w Cx.zero);
  Alcotest.(check int) "one pinned" Wtable.one_id (Wtable.intern w Cx.one);
  (* Negative zero folds onto positive zero before ids are assigned. *)
  Alcotest.(check int)
    "-0 re is zero" Wtable.zero_id
    (Wtable.intern w (Cx.make (-0.0) 0.0));
  Alcotest.(check int)
    "-0 im is zero" Wtable.zero_id
    (Wtable.intern w (Cx.make 0.0 (-0.0)));
  Alcotest.(check int)
    "1 with -0 im is one" Wtable.one_id
    (Wtable.intern w (Cx.make 1.0 (-0.0)));
  (* Tolerance snapping holds through the id layer. *)
  let a = Wtable.intern w (Cx.make 0.5 (-0.25)) in
  let b = Wtable.intern w (Cx.make (0.5 +. 1e-12) (-0.25)) in
  Alcotest.(check int) "snapped to same id" a b;
  let z = Wtable.get w a in
  Alcotest.(check (float 0.0)) "get re" 0.5 z.Cx.re;
  Alcotest.(check (float 0.0)) "get im" (-0.25) z.Cx.im;
  (* Non-finite components stay total: equal bit patterns share an id,
     and the table keeps working afterwards. *)
  let i1 = Wtable.intern w (Cx.make infinity 0.0) in
  let i2 = Wtable.intern w (Cx.make infinity 0.0) in
  Alcotest.(check int) "inf stable" i1 i2;
  let n1 = Wtable.intern w (Cx.make nan 0.0) in
  let n2 = Wtable.intern w (Cx.make nan 0.0) in
  Alcotest.(check int) "nan stable" n1 n2;
  Alcotest.(check bool) "nan distinct from inf" true (n1 <> i1);
  Alcotest.(check bool) "nan value round-trips" true (Float.is_nan (Wtable.re w n1));
  let c = Wtable.intern w (Cx.make 0.5 (-0.25)) in
  Alcotest.(check int) "normal interning unaffected" a c

(* -------------------------------------------------- dense ground truth *)

let apply_circuit (type p e) (module C : Dd_core.S with type pkg = p and type edge = e)
    (pkg : p) c =
  let n = Circuit.num_qubits c in
  let d = ref (C.identity pkg n) in
  C.root pkg !d;
  List.iter
    (fun op ->
      let nd = C.apply_op pkg n !d op in
      C.root pkg nd;
      C.unroot pkg !d;
      d := nd)
    (Circuit.ops (Decompose.elementary c));
  !d

let test_arena_matches_dense () =
  List.iter
    (fun c ->
      let pkg = Dd_arena.create () in
      let d = apply_circuit (module Dd_core.Arena_core) pkg c in
      check_matrix_up_to_phase (Circuit.name c) (Unitary.unitary c)
        (Dd_arena.to_dmatrix pkg d ~n:(Circuit.num_qubits c)))
    [ ghz 3; qft 4; grover ~seed:3 3; w_state 4 ]

(* ------------------------------------------------- differential suite *)

(* Local mirror of the differential generator: small random Clifford+T
   circuits with an equal-or-mutated partner, fully determined by the
   case index. *)
let random_circuit rng n len =
  let c = ref (Circuit.create n) in
  for _ = 1 to len do
    let q = Rng.int rng n in
    let q2 = (q + 1 + Rng.int rng (max 1 (n - 1))) mod n in
    match Rng.int rng 8 with
    | 0 -> c := Circuit.h !c q
    | 1 -> c := Circuit.s !c q
    | 2 -> c := Circuit.x !c q
    | 3 -> c := Circuit.t_gate !c q
    | 4 -> c := Circuit.cx !c q q2
    | 5 -> c := Circuit.cz !c q q2
    | 6 -> c := Circuit.swap !c q q2
    | _ -> c := Circuit.rz !c (Phase.of_pi_fraction (Rng.int rng 16) 8) q
  done;
  !c

let derive rng c =
  match Rng.int rng 3 with
  | 0 -> c
  | 1 ->
      let q = Rng.int rng (Circuit.num_qubits c) in
      Circuit.h (Circuit.h c q) q
  | _ -> (
      match inject_fault ~seed:(Rng.int rng 10000) c with
      | Some (c', _) -> c'
      | None -> c)

let case i =
  let rng = Rng.split_at (Rng.make ~seed:20260809) i in
  let n = 2 + Rng.int rng 4 in
  let len = 5 + Rng.int rng 30 in
  let g = random_circuit rng n len in
  (g, derive rng g)

let test_differential_pairs () =
  for i = 0 to 99 do
    let g, g' = case i in
    let run core strategy =
      Qcec.check ~strategy ~seed:11 ~sim_runs:8 ~dd_core:core g g'
    in
    let rb = run Dd_core.Boxed Qcec.Alternating
    and ra = run Dd_core.Arena Qcec.Alternating in
    Alcotest.check outcome_testable
      (Printf.sprintf "alternating case %d" i)
      rb.Equivalence.outcome ra.Equivalence.outcome;
    let sb = run Dd_core.Boxed Qcec.Simulation
    and sa = run Dd_core.Arena Qcec.Simulation in
    Alcotest.check outcome_testable
      (Printf.sprintf "simulation case %d" i)
      sb.Equivalence.outcome sa.Equivalence.outcome;
    (* Refutation must come from the same stimulus on both cores. *)
    Alcotest.(check int)
      (Printf.sprintf "counterexample index case %d" i)
      sb.Equivalence.simulations sa.Equivalence.simulations
  done

let test_table1_miters () =
  let pairs =
    [
      ("ghz-5/linear-7", ghz 5, Compile.run (Architecture.linear 7) (ghz 5));
      ("qft-4/ring-5", qft 4, Compile.run (Architecture.ring 5) (qft 4));
      ( "grover-3/linear-5",
        grover ~seed:3 3,
        Compile.run (Architecture.linear 5) (grover ~seed:3 3) );
      ( "adder-2/linear-6",
        ripple_adder 2,
        Compile.run (Architecture.linear 6) (ripple_adder 2) );
    ]
  in
  List.iter
    (fun (name, g, g') ->
      List.iter
        (fun strategy ->
          let rb = Qcec.check ~strategy ~seed:7 ~dd_core:Dd_core.Boxed g g'
          and ra = Qcec.check ~strategy ~seed:7 ~dd_core:Dd_core.Arena g g' in
          Alcotest.check outcome_testable name Equivalence.Equivalent
            rb.Equivalence.outcome;
          Alcotest.check outcome_testable name rb.Equivalence.outcome
            ra.Equivalence.outcome)
        [ Qcec.Alternating; Qcec.Reference; Qcec.Combined ];
      (* A faulted compiled side must be rejected by both cores. *)
      match inject_fault ~seed:3 g' with
      | None -> ()
      | Some (bad, _) ->
          List.iter
            (fun core ->
              let r = Qcec.check ~strategy:Qcec.Alternating ~seed:7 ~dd_core:core g bad in
              Alcotest.check outcome_testable (name ^ " faulted")
                Equivalence.Not_equivalent r.Equivalence.outcome)
            [ Dd_core.Boxed; Dd_core.Arena ])
    pairs

let test_jobs_independence () =
  let g = qft 4 and g' = Compile.run (Architecture.ring 5) (qft 4) in
  let verdicts =
    List.map
      (fun jobs ->
        (Qcec.check ~strategy:Qcec.Portfolio ~jobs ~seed:7 ~dd_core:Dd_core.Arena g g')
          .Equivalence.outcome)
      [ 1; 3 ]
  in
  match verdicts with
  | [ a; b ] ->
      Alcotest.check outcome_testable "portfolio verdict" Equivalence.Equivalent a;
      Alcotest.check outcome_testable "jobs-independent" a b
  | _ -> assert false

(* --------------------------------------------------- GC and rooting *)

let test_rooted_stable_across_gc () =
  let pkg = Dd_arena.create () in
  let c = qft 4 in
  let d = apply_circuit (module Dd_core.Arena_core) pkg c in
  let id0 = Dd_arena.node_id d in
  let dense0 = Dd_arena.to_dmatrix pkg d ~n:4 in
  (* Pile up garbage, then collect: the rooted edge must neither move
     nor change meaning. *)
  for seed = 1 to 5 do
    ignore (apply_circuit (module Dd_core.Arena_core) pkg (graph_state ~seed 5) : _)
  done;
  (* The intermediate diagrams above were rooted by apply_circuit; only
     their final edges still are.  Unroot nothing else: collect and see
     reclamation of the interior garbage. *)
  let reclaimed = Dd_arena.gc pkg in
  Alcotest.(check bool) "something reclaimed" true (reclaimed > 0);
  Alcotest.(check int) "rooted edge pinned" id0 (Dd_arena.node_id d);
  check_matrix "meaning preserved" dense0 (Dd_arena.to_dmatrix pkg d ~n:4);
  (* Unrooting lets a later pass reclaim the diagram. *)
  let live_before = Dd_arena.live pkg in
  Dd_arena.unroot pkg d;
  ignore (Dd_arena.gc pkg : int);
  Alcotest.(check bool) "unrooted reclaimed" true (Dd_arena.live pkg < live_before)

(* Regression: the bump allocator could never come back down past a
   pinned root, so long miter runs leaked address space — capacity grew
   with total allocations instead of live size.  Freed slots below the
   pin must be reused. *)
let test_capacity_bounded_by_live () =
  let pkg = Dd_arena.create ~gc_threshold:512 ~capacity:2048 () in
  let n = 4 in
  let rng = Rng.make ~seed:5 in
  let d = ref (Dd_arena.identity pkg n) in
  Dd_arena.root pkg !d;
  for _ = 1 to 3000 do
    let c = random_circuit rng n 1 in
    List.iter
      (fun op ->
        let nd = Dd_core.Arena_core.apply_op pkg n !d op in
        Dd_arena.root pkg nd;
        Dd_arena.unroot pkg !d;
        d := nd)
      (Circuit.ops (Decompose.elementary c))
  done;
  let st = Dd_arena.stats pkg in
  let a = Option.get st.Dd.arena in
  Alcotest.(check bool) "compactions ran" true (a.Dd.a_compactions > 0);
  Alcotest.(check bool)
    (Printf.sprintf "capacity stays bounded (%d)" a.Dd.a_capacity)
    true
    (a.Dd.a_capacity <= 8192)

let test_shared_arena () =
  let arena = Dd_arena.create_shared ~capacity:4096 () in
  let p1 = Dd_arena.attach arena and p2 = Dd_arena.attach arena in
  let e1 = Dd_arena.identity p1 3 and e2 = Dd_arena.identity p2 3 in
  (* Hash-consing is arena-wide: both handles see the same slots. *)
  Alcotest.(check int) "same node across handles" (Dd_arena.node_id e1)
    (Dd_arena.node_id e2);
  Alcotest.(check int) "attached handles never collect" 0 (Dd_arena.gc p1);
  let g1 = apply_circuit (module Dd_core.Arena_core) p1 (ghz 3) in
  check_matrix_up_to_phase "shared-arena ghz" (Unitary.unitary (ghz 3))
    (Dd_arena.to_dmatrix p2 g1 ~n:3)

(* ----------------------------------------------------- fuzz oracle *)

let test_fuzz_oracle_arena () =
  let config =
    {
      Oqec_fuzz.Fuzz.default_config with
      runs = 12;
      max_qubits = 4;
      max_gates = 12;
      seed = 424242;
      shrink = false;
      corpus = None;
      dd_core = Some Dd_core.Arena;
    }
  in
  let stats = Oqec_fuzz.Fuzz.run config in
  Alcotest.(check int) "cases ran" 12 stats.Oqec_fuzz.Fuzz.cases;
  Alcotest.(check int) "no oracle violations" 0 stats.Oqec_fuzz.Fuzz.failures

(* ------------------------------------------------------- streaming *)

let write_tmp contents =
  let path = Filename.temp_file "oqec_stream" ".qasm" in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  path

let stream_pair ~seed ~qubits ~gates ~barrier_every =
  let emit twin =
    let path = Filename.temp_file "oqec_stream" ".qasm" in
    let oc = open_out path in
    stream_qasm ~seed ~qubits ~gates ~barrier_every ~twin oc;
    close_out oc;
    path
  in
  (emit false, emit true)

let test_stream_matches_batch () =
  let src =
    "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n\
     gate foo a,b { h a; cx a,b; rz(pi/4) b; }\n\
     qreg q[3];\ncreg c[3];\n\
     h q[0];\nfoo q[1],q[2];\nbarrier q;\ncx q[0],q[2];\nrz(pi/8) q[1];\n\
     x q;\n"
  in
  let path = write_tmp src in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let batch = Oqec_qasm.Qasm.circuit_of_file path in
      let n, rev_ops =
        Oqec_qasm.Qasm_stream.fold path ~init:[] ~f:(fun acc op -> op :: acc)
      in
      Alcotest.(check int) "qubits" (Circuit.num_qubits batch) n;
      let streamed = List.rev rev_ops in
      Alcotest.(check int)
        "op count" (List.length (Circuit.ops batch))
        (List.length streamed);
      List.iter2
        (fun a b -> Alcotest.(check bool) "op equal" true (a = b))
        (Circuit.ops batch) streamed)

let expect_unsupported name src =
  let path = write_tmp src in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Alcotest.(check bool)
        name true
        (match Oqec_qasm.Qasm_stream.fold path ~init:() ~f:(fun () _ -> ()) with
        | _ -> false
        | exception Oqec_qasm.Qasm_stream.Unsupported _ -> true))

let test_stream_unsupported () =
  expect_unsupported "measure rejected"
    "OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\nh q[0];\nmeasure q[0] -> c[0];\n";
  expect_unsupported "second qreg rejected" "OPENQASM 2.0;\nqreg q[1];\nqreg r[1];\n";
  expect_unsupported "layout comment rejected"
    "OPENQASM 2.0;\n// oqec:layout 1 0\nqreg q[2];\nh q[0];\n";
  expect_unsupported "gate before qreg rejected" "OPENQASM 2.0;\nh q[0];\nqreg q[1];\n"

let test_stream_offsets () =
  let base, twin = stream_pair ~seed:3 ~qubits:3 ~gates:50 ~barrier_every:10 in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove base;
      Sys.remove twin)
    (fun () ->
      (* Tiny chunks exercise the window-sliding refill path. *)
      let s = Oqec_qasm.Qasm_stream.open_file ~chunk_size:32 base in
      Fun.protect
        ~finally:(fun () -> Oqec_qasm.Qasm_stream.close s)
        (fun () ->
          while Oqec_qasm.Qasm_stream.step s ~emit:ignore do
            ()
          done;
          Alcotest.(check int)
            "cursor consumed the whole file"
            (Oqec_qasm.Qasm_stream.total_bytes s)
            (Oqec_qasm.Qasm_stream.consumed_bytes s);
          Alcotest.(check int) "qubits" 3 (Oqec_qasm.Qasm_stream.num_qubits s)))

let test_stream_twin_check () =
  let base, twin = stream_pair ~seed:5 ~qubits:4 ~gates:400 ~barrier_every:100 in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove base;
      Sys.remove twin)
    (fun () ->
      List.iter
        (fun (core, scheme) ->
          let r =
            Stream_checker.check ~core ~scheme ~chunk_size:512 base twin
          in
          Alcotest.check outcome_testable "twin pair equivalent" Equivalence.Equivalent
            r.Equivalence.outcome;
          Alcotest.(check string)
            "streamed checker ran" "stream-dd"
            (match r.Equivalence.runs with
            | [ run ] -> run.Equivalence.checker
            | _ -> "?"))
        [
          (Dd_core.Boxed, Dd_scheme.Proportional);
          (Dd_core.Arena, Dd_scheme.Proportional);
          (Dd_core.Arena, Dd_scheme.Lookahead);
          (Dd_core.Boxed, Dd_scheme.Alternating);
        ];
      (* A trailing extra gate must flip the verdict on both cores. *)
      let oc = open_out_gen [ Open_append ] 0o644 twin in
      output_string oc "x q[0];\n";
      close_out oc;
      List.iter
        (fun core ->
          let r = Stream_checker.check ~core ~chunk_size:512 base twin in
          Alcotest.check outcome_testable "mutated twin rejected"
            Equivalence.Not_equivalent r.Equivalence.outcome)
        [ Dd_core.Boxed; Dd_core.Arena ])

let suite =
  [
    Alcotest.test_case "wtable pins" `Quick test_wtable_pins;
    Alcotest.test_case "arena matches dense" `Quick test_arena_matches_dense;
    Alcotest.test_case "differential pairs" `Slow test_differential_pairs;
    Alcotest.test_case "table-1 miters" `Slow test_table1_miters;
    Alcotest.test_case "jobs independence" `Quick test_jobs_independence;
    Alcotest.test_case "rooted stable across gc" `Quick test_rooted_stable_across_gc;
    Alcotest.test_case "capacity bounded by live" `Quick test_capacity_bounded_by_live;
    Alcotest.test_case "shared arena" `Quick test_shared_arena;
    Alcotest.test_case "fuzz oracle on arena" `Slow test_fuzz_oracle_arena;
    Alcotest.test_case "stream matches batch" `Quick test_stream_matches_batch;
    Alcotest.test_case "stream unsupported" `Quick test_stream_unsupported;
    Alcotest.test_case "stream offsets" `Quick test_stream_offsets;
    Alcotest.test_case "stream twin check" `Quick test_stream_twin_check;
  ]
