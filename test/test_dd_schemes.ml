(* Application schemes and profile-guided dispatch.

   The scheme only decides which side of the miter contributes the next
   gate, so it must be invisible in every answer:
   - fixed-seed differential suite: all four concrete schemes plus auto,
     on both DD cores, agree with alternating-on-boxed over 100
     generated pairs, and the Combined strategy reports the identical
     counterexample note regardless of scheme;
   - Table-1 style compiled miters, clean and with injected faults
     (remove_gate / flip_cnot), across every scheme and core;
   - unit tests pin each scheme's side policy on synthetic probes;
   - the dispatch table round-trips through its JSON wire form, rejects
     malformed input, and falls back to Alternating on fingerprints it
     has never seen;
   - the resolved scheme is visible in engine_stats (dd.scheme.<name>). *)

open Oqec_base
open Oqec_circuit
open Oqec_compile
open Oqec_qcec

let outcome =
  Alcotest.testable
    (fun fmt o -> Format.pp_print_string fmt (Equivalence.outcome_to_string o))
    ( = )

(* ------------------------------------------------- scheme round trips *)

let test_scheme_strings () =
  List.iter
    (fun s ->
      Alcotest.(check (option string))
        (Dd_scheme.to_string s ^ " round-trips")
        (Some (Dd_scheme.to_string s))
        (Option.map Dd_scheme.to_string (Dd_scheme.of_string (Dd_scheme.to_string s))))
    (Dd_scheme.Auto :: Dd_scheme.all);
  Alcotest.(check bool)
    "cost-metric spellings accepted" true
    (Dd_scheme.of_string "cost-metric" = Some Dd_scheme.Cost_metric
    && Dd_scheme.of_string "cost_metric" = Some Dd_scheme.Cost_metric);
  Alcotest.(check bool) "unknown rejected" true (Dd_scheme.of_string "banana" = None)

(* --------------------------------------------- side policies, pinned *)

let probe ?(ia = 0) ?(ib = 0) ?(ka = 1) ?(kb = 1) ?(ca = 0) ?(cb = 0) ?(cta = 1)
    ?(ctb = 1) ?(peek_l = 0) ?(peek_r = 0) () =
  {
    Dd_scheme.left_applied = ia;
    left_total = ka;
    right_applied = ib;
    right_total = kb;
    left_cost_applied = ca;
    left_cost_total = cta;
    right_cost_applied = cb;
    right_cost_total = ctb;
    live_size = (fun () -> 1);
    peek_left = (fun () -> peek_l);
    peek_right = (fun () -> peek_r);
  }

let side = Alcotest.testable (fun fmt s ->
    Format.pp_print_string fmt
      (match s with Dd_scheme.Left -> "left" | Dd_scheme.Right -> "right"))
    ( = )

let test_side_policies () =
  let choose (module S : Dd_scheme.APPLICATION_SCHEME) p = S.choose p in
  let alt = choose Dd_scheme.alternating in
  Alcotest.check side "alternating starts left" Dd_scheme.Left (alt (probe ()));
  Alcotest.check side "alternating answers imbalance" Dd_scheme.Right
    (alt (probe ~ia:3 ~ib:2 ()));
  Alcotest.check side "alternating ties break left" Dd_scheme.Left
    (alt (probe ~ia:2 ~ib:2 ()));
  let prop = choose Dd_scheme.proportional in
  (* 1/10 applied left vs 2/40 right: 1*40 <= 2*10 fails -> right. *)
  Alcotest.check side "proportional follows the gate-count ratio" Dd_scheme.Right
    (prop (probe ~ia:1 ~ka:10 ~ib:1 ~kb:40 ()));
  Alcotest.check side "proportional starts left" Dd_scheme.Left
    (prop (probe ~ka:10 ~kb:40 ()));
  let look = choose Dd_scheme.lookahead in
  Alcotest.check side "lookahead keeps the smaller DD" Dd_scheme.Right
    (look (probe ~peek_l:9 ~peek_r:4 ()));
  Alcotest.check side "lookahead ties break left" Dd_scheme.Left
    (look (probe ~peek_l:4 ~peek_r:4 ()));
  let cost = choose Dd_scheme.cost_metric in
  Alcotest.check side "cost-metric follows the cost ratio" Dd_scheme.Right
    (cost (probe ~ca:5 ~cta:10 ~cb:2 ~ctb:40 ()));
  Alcotest.check side "cost-metric starts left" Dd_scheme.Left
    (cost (probe ~cta:10 ~ctb:40 ()))

let test_op_costs () =
  let c = Circuit.ccx (Circuit.cx (Circuit.t_gate (Circuit.h (Circuit.create 3) 0) 0) 0 1) 0 1 2 in
  let costs = List.map Dd_scheme.op_cost (Circuit.ops c) in
  (* h (Clifford) 1, t 2, cx (1 ctrl, Clifford target) 4, ccx (2
     ctrls, Clifford target) 6. *)
  Alcotest.(check (list int)) "op costs pinned" [ 1; 2; 4; 6 ] costs

(* ------------------------------------------- differential agreement *)

let schemes_with_auto = Dd_scheme.all @ [ Dd_scheme.Auto ]
let cores = [ Oqec_dd.Dd_core.Boxed; Oqec_dd.Dd_core.Arena ]

let core_name = function Oqec_dd.Dd_core.Boxed -> "boxed" | Oqec_dd.Dd_core.Arena -> "arena"

let agree_on label g g' =
  let baseline =
    (Dd_checker.check_miter ~scheme:Dd_scheme.Alternating g g').Equivalence.outcome
  in
  List.iter
    (fun core ->
      List.iter
        (fun scheme ->
          let r = Dd_checker.check_miter ~core ~scheme g g' in
          Alcotest.check outcome
            (Printf.sprintf "%s: %s on %s agrees with alternating" label
               (Dd_scheme.to_string scheme) (core_name core))
            baseline r.Equivalence.outcome)
        schemes_with_auto)
    cores;
  baseline

let test_generated_pairs () =
  for seed = 1 to 100 do
    let rng = Rng.make ~seed in
    let n = 2 + Rng.int rng 4 in
    let c1 =
      Test_differential.random_circuit rng ~clifford_only:false n (5 + Rng.int rng 15)
    in
    let c2 = Test_differential.derive rng c1 in
    if Circuit.gate_count c1 > 0 then
      ignore (agree_on (Printf.sprintf "seed %d" seed) c1 c2)
  done

(* The counterexample a Combined run reports comes from the simulation
   screen, whose stimulus order the scheme must not perturb: the note
   (naming the refuting stimulus index) is identical across schemes. *)
let test_counterexample_notes () =
  List.iter
    (fun seed ->
      let rng = Rng.make ~seed in
      let c1 = Test_differential.random_circuit rng ~clifford_only:false 4 12 in
      let c2 = Oqec_workloads.Workloads.remove_gate ~seed c1 in
      let note scheme =
        let r = Qcec.check ~strategy:Qcec.Combined ~seed:1 ~scheme c1 c2 in
        (Equivalence.outcome_to_string r.Equivalence.outcome, r.Equivalence.note)
      in
      let base = note Dd_scheme.Alternating in
      List.iter
        (fun scheme ->
          Alcotest.(check (pair string string))
            (Printf.sprintf "seed %d: %s verdict and note match alternating" seed
               (Dd_scheme.to_string scheme))
            base (note scheme))
        schemes_with_auto)
    [ 3; 7; 11; 19 ]

let test_compiled_miters () =
  let module W = Oqec_workloads.Workloads in
  List.iter
    (fun (name, g) ->
      let g' = Compile.run (Architecture.ring (Circuit.num_qubits g + 2)) g in
      Alcotest.check outcome (name ^ ": compiled pair is equivalent")
        Equivalence.Equivalent
        (agree_on name g g');
      Alcotest.check outcome (name ^ ": dropped gate refuted")
        Equivalence.Not_equivalent
        (agree_on (name ^ "-missing") g (W.remove_gate ~seed:5 g'));
      match W.flip_cnot ~seed:7 g' with
      | flipped -> ignore (agree_on (name ^ "-flipped") g flipped)
      | exception Invalid_argument _ -> ())
    [
      ("ghz-6", W.ghz 6);
      ("qft-5", W.qft 5);
      ("graphstate-6", W.graph_state ~seed:3 6);
      ("qwalk-3", W.random_walk ~steps:3 3);
    ]

(* ------------------------------------------------- dispatch table *)

let table_entries t =
  List.map (fun e -> (e.Dd_dispatch.fingerprint, e.Dd_dispatch.scheme)) t

let test_dispatch_roundtrip () =
  let table =
    List.mapi
      (fun i s ->
        { Dd_dispatch.fingerprint = Printf.sprintf "v1:q%d:s1:r2:c0:h0.0.0.0" i;
          scheme = s })
      Dd_scheme.all
  in
  match Dd_dispatch.parse (Dd_dispatch.to_json table) with
  | Error e -> Alcotest.fail ("round trip: " ^ e)
  | Ok t ->
      Alcotest.(check (list (pair string string)))
        "parse (to_json t) = t"
        (List.map (fun (f, s) -> (f, Dd_scheme.to_string s)) (table_entries table))
        (List.map (fun (f, s) -> (f, Dd_scheme.to_string s)) (table_entries t))

let test_dispatch_save_load () =
  let path = Filename.temp_file "oqec_dispatch" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let table =
        [ { Dd_dispatch.fingerprint = "v1:q3:s2:r2:c5:h1.1.1.0";
            scheme = Dd_scheme.Lookahead } ]
      in
      Dd_dispatch.save path table;
      match Dd_dispatch.load path with
      | Error e -> Alcotest.fail ("load: " ^ e)
      | Ok t ->
          Alcotest.(check int) "one entry survives" 1 (List.length t);
          Alcotest.(check bool) "entry intact" true (t = table));
  Alcotest.(check bool)
    "missing file is an error" true
    (Result.is_error (Dd_dispatch.load "nonexistent/dispatch.json"))

let test_dispatch_rejects () =
  let bad =
    [
      ("garbage", "not json");
      ("wrong version", {|{"version":2,"entries":[]}|});
      ("auto entry", {|{"version":1,"entries":[{"fingerprint":"x","scheme":"auto"}]}|});
      ("unknown scheme",
       {|{"version":1,"entries":[{"fingerprint":"x","scheme":"banana"}]}|});
      ("trailing garbage", {|{"version":1,"entries":[]} trailing|});
      ("truncated", {|{"version":1,"entries":[|});
    ]
  in
  List.iter
    (fun (label, s) ->
      Alcotest.(check bool) (label ^ " rejected") true
        (Result.is_error (Dd_dispatch.parse s)))
    bad

let test_dispatch_fallback () =
  let g = Oqec_workloads.Workloads.ghz 3 in
  let g' = Compile.run (Architecture.ring 4) g in
  Alcotest.(check string)
    "unseen fingerprint falls back to alternating" "alternating"
    (Dd_scheme.to_string (Dd_dispatch.choose ~table:[] g g'));
  let fp = Dd_dispatch.fingerprint g g' in
  let table = [ { Dd_dispatch.fingerprint = fp; scheme = Dd_scheme.Cost_metric } ] in
  Alcotest.(check string)
    "table hit resolves" "cost"
    (Dd_scheme.to_string (Dd_dispatch.choose ~table g g'));
  Alcotest.(check (option string))
    "lookup misses cleanly" None
    (Option.map Dd_scheme.to_string (Dd_dispatch.lookup table "v1:nope"))

let test_builtin_parses () =
  (* The compiled-in snapshot must stay a valid, non-empty table (it is
     what --dd-scheme auto uses outside a repo checkout). *)
  Alcotest.(check bool) "builtin table non-empty" true (Dd_dispatch.builtin <> []);
  match Dd_dispatch.parse (Dd_dispatch.to_json Dd_dispatch.builtin) with
  | Ok t -> Alcotest.(check bool) "builtin round-trips" true (t = Dd_dispatch.builtin)
  | Error e -> Alcotest.fail e

(* --------------------------------------------------- resolved scheme *)

let test_engine_stats_scheme () =
  let g = Oqec_workloads.Workloads.ghz 4 in
  let g' = Compile.run (Architecture.ring 5) g in
  let counters scheme =
    let r = Qcec.check ~strategy:Qcec.Alternating ~scheme g g' in
    match r.Equivalence.engine_stats with
    | [ e ] -> (e.Equivalence.engine, e.Equivalence.counters)
    | _ -> Alcotest.fail "expected a single engine_stats entry"
  in
  let name, kvs = counters Dd_scheme.Lookahead in
  Alcotest.(check string) "engine named after the scheme" "dd-lookahead" name;
  Alcotest.(check (option int))
    "concrete scheme recorded" (Some 1)
    (List.assoc_opt "dd.scheme.lookahead" kvs);
  Alcotest.(check bool)
    "sides counted" true
    (List.assoc_opt "dd.left_applied" kvs <> None
    && List.assoc_opt "dd.right_applied" kvs <> None);
  let name, kvs = counters Dd_scheme.Auto in
  Alcotest.(check string) "auto keeps its own engine name" "dd-auto" name;
  let resolved =
    List.filter
      (fun (k, v) ->
        String.length k > 10 && String.sub k 0 10 = "dd.scheme." && v = 1)
      kvs
  in
  match resolved with
  | [ (k, _) ] ->
      let s = String.sub k 10 (String.length k - 10) in
      Alcotest.(check bool)
        ("auto resolved to a concrete scheme (" ^ s ^ ")")
        true
        (match Dd_scheme.of_string s with
        | Some Dd_scheme.Auto | None -> false
        | Some _ -> true)
  | _ -> Alcotest.fail "auto must record exactly one resolved scheme"

let suite =
  [
    Alcotest.test_case "schemes: to_string/of_string round trip" `Quick
      test_scheme_strings;
    Alcotest.test_case "schemes: side policies pinned on synthetic probes" `Quick
      test_side_policies;
    Alcotest.test_case "schemes: op costs pinned" `Quick test_op_costs;
    Alcotest.test_case "differential: schemes x cores agree, 100 seeds" `Slow
      test_generated_pairs;
    Alcotest.test_case "differential: counterexample notes scheme-independent" `Slow
      test_counterexample_notes;
    Alcotest.test_case "differential: compiled miters with injected faults" `Slow
      test_compiled_miters;
    Alcotest.test_case "dispatch: JSON round trip" `Quick test_dispatch_roundtrip;
    Alcotest.test_case "dispatch: save/load" `Quick test_dispatch_save_load;
    Alcotest.test_case "dispatch: malformed tables rejected" `Quick
      test_dispatch_rejects;
    Alcotest.test_case "dispatch: unseen fingerprints fall back" `Quick
      test_dispatch_fallback;
    Alcotest.test_case "dispatch: builtin snapshot valid" `Quick test_builtin_parses;
    Alcotest.test_case "engine stats: resolved scheme visible" `Quick
      test_engine_stats_scheme;
  ]
