The oqec command-line tool: generate, inspect, compile and check circuits.

  $ oqec generate ghz -n 3 -o ghz.qasm
  $ cat ghz.qasm
  OPENQASM 2.0;
  include "qelib1.inc";
  qreg q[3];
  h q[0];
  cx q[0],q[1];
  cx q[0],q[2];

  $ oqec info ghz.qasm
  name:         circuit
  qubits:       3
  gates:        3
  two-qubit:    2
  t-count:      0
  depth:        3

Compile onto a 5-qubit linear architecture (Fig. 2 of the paper):

  $ oqec compile ghz.qasm -a linear:5 -o ghz_lin.qasm
  compiled ghz.qasm onto linear-5: 4 gates

The compiled circuit records its output permutation through measurements:

  $ grep -c measure ghz_lin.qasm
  5

Verification succeeds with every strategy (exit code 0):

  $ oqec check ghz.qasm ghz_lin.qasm -s alternating > /dev/null
  $ oqec check ghz.qasm ghz_lin.qasm -s zx > /dev/null
  $ oqec check ghz.qasm ghz_lin.qasm -s combined > /dev/null
  $ oqec check ghz.qasm ghz_lin.qasm -s reference > /dev/null

The parallel portfolio races the checkers on separate domains, names a
winner and reports one line per worker (jobs + 2 of them); the verdict
is independent of the shard count:

  $ oqec check ghz.qasm ghz_lin.qasm -s portfolio --jobs 2 \
  >   | grep -cE 'winner|dd-proportional|zx-calculus|simulation-[01]'
  5
  $ oqec check ghz.qasm ghz_lin.qasm -s portfolio --jobs 1 > /dev/null
  $ oqec check ghz.qasm ghz_lin.qasm -s portfolio --json \
  >   | grep -cE '"winner":"[a-z-]+".*"runs":\['
  1
  $ oqec check ghz.qasm ghz_lin.qasm -s portfolio --jobs 0
  error: --jobs must be >= 1 (got 0)
  [3]

The racers can be restricted with --checkers (dd, zx, sim, stab):

  $ oqec check ghz.qasm ghz_lin.qasm -s portfolio --checkers dd,stab --json \
  >   | grep -cE '"runs":\[\{"checker":"(dd-proportional|stabilizer)"'
  1
  $ oqec check ghz.qasm ghz_lin.qasm -s portfolio --checkers dd,banana
  error: --checkers: unknown checker "banana" (expected dd, zx, sim, stab)
  [3]

--trace writes the run's spans and counters as Chrome trace_event JSON
(loadable in chrome://tracing); a portfolio run covers at least the
engine plus per-checker phase categories:

  $ oqec check ghz.qasm ghz_lin.qasm -s portfolio --jobs 2 --trace trace.json > /dev/null
  $ grep -c '"traceEvents":\[' trace.json
  1
  $ grep -oE '"cat":"(engine|dd|zx|sim|stab)","ph":"X"' trace.json \
  >   | sort -u | wc -l | awk '{print ($1 >= 3) ? "enough categories" : "too few"}'
  enough categories

The DD engine reports its memory-management statistics; forcing a
collection after every gate (--gc-threshold 0) does not change the
verdict:

  $ oqec check ghz.qasm ghz_lin.qasm -s alternating --dd-stats \
  >   | grep -cE 'nodes:|gc:|mm '
  3
  $ oqec check ghz.qasm ghz_lin.qasm -s alternating --gc-threshold 0 \
  >   --dd-stats | grep -oE 'gc: [0-9]+ run' | awk '{print ($2 > 0) ? "collected" : "idle"}'
  collected
  $ oqec check ghz.qasm ghz_lin.qasm -s alternating --json \
  >   | grep -cE '"outcome":"equivalent".*"engine_stats":\[\{"engine":"dd-proportional".*"dd":\{'
  1

Application schemes: every --dd-scheme agrees on the verdict, the
engine is named after the scheme, and the resolved scheme (what auto
picked) is visible as a dd.scheme.* counter in the JSON report:

  $ for s in alternating proportional lookahead cost auto; do
  >   oqec check ghz.qasm ghz_lin.qasm -s alternating --dd-scheme $s > /dev/null \
  >     && echo "$s ok"
  > done
  alternating ok
  proportional ok
  lookahead ok
  cost ok
  auto ok
  $ oqec check ghz.qasm ghz_lin.qasm -s alternating --dd-scheme lookahead --json \
  >   | grep -cE '"engine":"dd-lookahead".*"dd\.scheme\.lookahead":1'
  1
  $ oqec check ghz.qasm ghz_lin.qasm -s alternating --dd-scheme auto --json \
  >   | grep -cE '"engine":"dd-auto".*"dd\.scheme\.[a-z]+":1'
  1
  $ oqec check ghz.qasm ghz_lin.qasm --dd-scheme banana
  error: --dd-scheme must be alternating, proportional, lookahead, cost or auto (got "banana")
  [3]

A corrupted circuit is refuted (exit code 1):

  $ sed 's/cx q\[1\],q\[2\];/cx q[2],q[1];/' ghz_lin.qasm > broken.qasm
  $ oqec check ghz.qasm broken.qasm -s combined > /dev/null
  [1]

Simulation alone cannot prove equivalence (exit code 2):

  $ oqec check ghz.qasm ghz_lin.qasm -s simulation > /dev/null
  [2]

Unknown gates produce a parse error:

  $ printf 'OPENQASM 2.0;\nqreg q[1];\nbogus q[0];\n' > bad.qasm
  $ oqec check bad.qasm bad.qasm 2>&1
  error: bad.qasm: unknown gate "bogus"
  [3]

Differential fuzzing: a fixed-seed run over every checker is clean and
reports one-line JSON statistics:

  $ oqec fuzz --runs 10 --seed 42 | sed 's/ in [0-9.]*s$//'
  fuzz: 10 cases, 0 failures (corpus: 0 replayed, 0 failing, 0 new)
  $ oqec fuzz --runs 10 --seed 42 --json \
  >   | grep -cE '^\{"schema":"oqec-fuzz/1","profile":"mixed","seed":42,"runs":10,"cases":10,"failures":0,.*"violations":\[\]'
  1

Flag validation (exit code 3):

  $ oqec fuzz --profile banana
  error: unknown profile "banana"
  [3]
  $ oqec fuzz --max-qubits 1
  error: --max-qubits must be >= 2 (got 1)
  [3]
  $ oqec fuzz --runs 5 --checkers dd,banana
  error: --checkers: unknown checker "banana" (expected dd, zx, sim, stab)
  [3]

A deliberately corrupted checker (the hidden OQEC_FUZZ_BREAK test hook)
makes the oracle disagree; the failing pair is shrunk, persisted into
the corpus (exit code 1), and the repro command pins (seed, index):

  $ OQEC_FUZZ_BREAK=zx oqec fuzz --runs 1 --seed 7 --shrink --corpus fuzz-corpus \
  >   | sed -e 's/ in [0-9.]*s$//' -e 's/case-[0-9a-f]*/case-ID/'
  case 0: zx said equivalent but the dense reference says not equivalent
    repro: oqec fuzz --profile mixed --max-qubits 6 --max-gates 24 --seed 7 --only 0
    saved: case-ID (0 gates)
  fuzz: 1 cases, 1 failures (corpus: 0 replayed, 0 failing, 1 new)
  $ ls fuzz-corpus | grep -c 'qasm$'
  2
  $ grep -c '"expected"' fuzz-corpus/MANIFEST.jsonl
  1

Replaying the corpus re-catches the corrupted checker (exit code 1) and
passes once the corruption is gone (exit code 0):

  $ OQEC_FUZZ_BREAK=zx oqec fuzz --runs 0 --corpus fuzz-corpus > /dev/null
  [1]
  $ oqec fuzz --runs 0 --corpus fuzz-corpus | sed 's/ in [0-9.]*s$//'
  fuzz: 0 cases, 0 failures (corpus: 1 replayed, 0 failing, 0 new)

Verdict certificates: --certify writes a replayable artifact and
verify-cert replays it through the independent validator (exit 0):

  $ oqec check ghz.qasm ghz_lin.qasm -s zx --certify ghz.cert > /dev/null
  certificate written to ghz.cert (zx-proof (10 steps))
  $ head -3 ghz.cert
  OQEC-CERT 1
  claim equivalent
  qubits 5
  $ oqec verify-cert ghz.cert
  certificate valid: zx-proof (10 steps)

A DD verdict carries no certificate of its own, so one is built from
scratch; the JSON report names the attached certificate:

  $ oqec check ghz.qasm ghz_lin.qasm -s alternating --certify dd.cert > /dev/null
  certificate written to dd.cert (zx-proof (10 steps))
  $ oqec verify-cert dd.cert > /dev/null
  $ oqec check ghz.qasm ghz_lin.qasm -s zx --json | grep -c '"certificate":"zx-proof'
  1

A refutation exports its refuting stimulus as a standalone witness,
re-checked by direct simulation:

  $ oqec check ghz.qasm broken.qasm -s combined --certify ne.cert > /dev/null
  certificate written to ne.cert (witness (stimulus #0, fidelity 0.500000000))
  [1]
  $ oqec verify-cert ne.cert
  certificate valid: witness (stimulus #0, fidelity 0.500000000)

Tampered or truncated certificates are rejected (exit 1); a missing
file is an I/O error (exit 3):

  $ sed 's/^claim not-equivalent/claim equivalent/' ne.cert > tampered.cert
  $ oqec verify-cert tampered.cert
  error: tampered.cert: expected qubits line, got "witness 0 0.49999999999999989"
  [1]
  $ head -5 ghz.cert > truncated.cert
  $ oqec verify-cert truncated.cert 2>&1 | grep -c 'error'
  1
  $ oqec verify-cert nothere.cert
  error: nothere.cert: No such file or directory
  [3]

The hidden OQEC_CERT_BREAK hook corrupts the ZX engine's identity rule:
the engine is fooled into proving T = I (exit 0), but the recorded
certificate cannot be replayed — only the independent validator catches
the bug, which is the point of the subsystem:

  $ printf 'OPENQASM 2.0;\ninclude "qelib1.inc";\nqreg q[1];\nt q[0];\n' > t.qasm
  $ printf 'OPENQASM 2.0;\ninclude "qelib1.inc";\nqreg q[1];\n' > id.qasm
  $ OQEC_CERT_BREAK=identity-phase oqec check -s zx --certify fooled.cert t.qasm id.qasm
  equivalent [zx-calculus, 0.000s, peak 1, final 0]
  certificate written to fooled.cert (zx-proof (1 steps))
  $ oqec verify-cert fooled.cert
  certificate INVALID: step 0 (id 1): identity removal of vertex 1 with non-zero phase 7*pi/4
  [1]
  $ oqec check -s zx t.qasm id.qasm > /dev/null
  [2]

The fuzz oracle cross-checks every attached certificate, so the same
engine corruption surfaces as a violation without OQEC_FUZZ_BREAK:

  $ OQEC_CERT_BREAK=identity-phase oqec fuzz --runs 1 --seed 5 \
  >   | sed -e 's/ in [0-9.]*s$//' -e 's/step [0-9]* (id [0-9]*).*/step N/'
  case 0: zx attached a certificate that fails independent validation: step N
    repro: oqec fuzz --profile mixed --max-qubits 6 --max-gates 24 --seed 5 --only 0
  fuzz: 1 cases, 1 failures (corpus: 0 replayed, 0 failing, 0 new)
