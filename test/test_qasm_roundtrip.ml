(* QASM round-trip properties over the fuzz generator's circuit space:
   parse (print c) must be semantically equal to c (dense reference, up
   to global phase), and print . parse must be a fixpoint after the
   first print (printing normalises gate spellings — e.g. controlled
   phase gates — so the fixpoint starts one step in). *)

open Oqec_base
open Oqec_circuit
open Oqec_fuzz
module Qasm = Oqec_qasm.Qasm

let reparse c = Qasm.circuit_of_string (Qasm.to_string c)

let test_semantic_roundtrip () =
  List.iter
    (fun profile ->
      let rng = Rng.make ~seed:101 in
      for i = 0 to 19 do
        let n = 2 + (i mod 4) in
        let c = Fuzz_gen.circuit profile (Rng.split_at rng i) ~num_qubits:n ~gates:12 in
        let c' = reparse c in
        Alcotest.(check int)
          (Fuzz_gen.profile_to_string profile ^ " width preserved")
          (Circuit.num_qubits c) (Circuit.num_qubits c');
        Alcotest.(check bool)
          (Printf.sprintf "%s case %d: parse . print preserves the unitary"
             (Fuzz_gen.profile_to_string profile) i)
          true (Unitary.equivalent c c')
      done)
    Fuzz_gen.all_profiles

let test_print_parse_fixpoint () =
  List.iter
    (fun profile ->
      let rng = Rng.make ~seed:103 in
      for i = 0 to 19 do
        let n = 2 + (i mod 4) in
        let c = Fuzz_gen.circuit profile (Rng.split_at rng i) ~num_qubits:n ~gates:12 in
        let once = Qasm.to_string (reparse c) in
        let twice = Qasm.to_string (reparse (Qasm.circuit_of_string once)) in
        Alcotest.(check string)
          (Printf.sprintf "%s case %d: print . parse is a fixpoint"
             (Fuzz_gen.profile_to_string profile) i)
          once twice
      done)
    Fuzz_gen.all_profiles

(* Layout metadata (initial layout comment, output-permutation
   measurements) must survive the round-trip too — compiled circuits are
   exactly what the corpus stores. *)
let test_layout_roundtrip () =
  let g = Oqec_workloads.Workloads.ghz 4 in
  let arch = Oqec_compile.Architecture.linear 6 in
  (* A spread (non-identity) layout: identity layouts are normalised away
     by the writer, non-trivial ones must survive verbatim. *)
  let layout = Oqec_compile.Compile.spread_layout arch (Rng.make ~seed:5) in
  let g' = Oqec_compile.Compile.run ~initial_layout:layout arch g in
  let g'' = reparse g' in
  Alcotest.(check bool)
    "initial layout preserved" true
    (Circuit.initial_layout g' = Circuit.initial_layout g'');
  Alcotest.(check bool)
    "output permutation preserved" true
    (Circuit.output_perm g' = Circuit.output_perm g'');
  let a, b = Oqec_qcec.Flatten.align g g'' in
  Alcotest.(check bool) "compiled circuit still equivalent" true (Unitary.equivalent a b)

let test_mutated_roundtrip () =
  (* Mutated circuits (inverse pairs, rewiring with output perms, split
     rotations) stay printable and semantically stable. *)
  let rng = Rng.make ~seed:107 in
  let checked = ref 0 in
  for i = 0 to 29 do
    let c = Fuzz_gen.circuit Fuzz_gen.Mixed (Rng.split_at rng i) ~num_qubits:3 ~gates:10 in
    let kinds = Fuzz_mutate.preserving_kinds in
    let kind = List.nth kinds (i mod List.length kinds) in
    match Fuzz_mutate.apply kind (Rng.split_at rng (500 + i)) c with
    | None -> ()
    | Some m ->
        incr checked;
        Alcotest.(check bool)
          (Fuzz_mutate.kind_to_string kind ^ " mutant round-trips")
          true
          (Unitary.equivalent m (reparse m))
  done;
  Alcotest.(check bool) "mutants exercised" true (!checked > 10)

let suite =
  [
    Alcotest.test_case "parse . print preserves semantics" `Quick test_semantic_roundtrip;
    Alcotest.test_case "print . parse is a fixpoint" `Quick test_print_parse_fixpoint;
    Alcotest.test_case "layout metadata round-trips" `Quick test_layout_roundtrip;
    Alcotest.test_case "mutated circuits round-trip" `Quick test_mutated_roundtrip;
  ]
