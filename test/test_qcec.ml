(* End-to-end tests of the equivalence-checking engine. *)

open Oqec_base
open Oqec_circuit
open Oqec_compile
open Oqec_workloads.Workloads
open Oqec_qcec
open Helpers

let outcome_testable =
  Alcotest.testable
    (fun ppf o -> Format.pp_print_string ppf (Equivalence.outcome_to_string o))
    ( = )

let check_outcome name expected strategy g g' =
  let r = Qcec.check ~strategy ~seed:7 g g' in
  Alcotest.check outcome_testable name expected r.Equivalence.outcome

(* ---------------------------------------------------------------- Flatten *)

let random_layout_circuit seed =
  let rng = Rng.make ~seed in
  let n = 2 + Rng.int rng 3 in
  let c = ref (Circuit.create n) in
  for _ = 1 to 12 do
    let q = Rng.int rng n in
    let q2 = (q + 1 + Rng.int rng (n - 1)) mod n in
    match Rng.int rng 6 with
    | 0 -> c := Circuit.h !c q
    | 1 -> c := Circuit.t_gate !c q
    | 2 -> c := Circuit.cx !c q q2
    | 3 -> c := Circuit.rz !c (Phase.of_pi_fraction (Rng.int rng 16) 8) q
    | 4 -> c := Circuit.swap !c q q2
    | _ -> c := Circuit.cz !c q q2
  done;
  let layout = if Rng.bool rng then Some (Perm.random (Rng.int rng) n) else None in
  let out = if Rng.bool rng then Some (Perm.random (Rng.int rng) n) else None in
  Circuit.with_output_perm (Circuit.with_initial_layout !c layout) out

let prop_flatten_matches_effective =
  qtest ~count:60 "flatten: unitary equals the effective unitary"
    QCheck.(make ~print:string_of_int Gen.int)
    (fun seed ->
      let c = random_layout_circuit seed in
      let f = Flatten.flatten c in
      Circuit.initial_layout f = None
      && Circuit.output_perm f = None
      && Dmatrix.equal ~tol:1e-8 (Unitary.effective_unitary c) (Unitary.unitary f))

let test_flatten_absorbs_swaps () =
  let c = Circuit.swap (Circuit.cx (Circuit.swap (Circuit.create 3) 0 1) 1 2) 1 2 in
  let f = Flatten.flatten c in
  (* The two SWAPs become permutation tracking; only the CX (relabelled)
     plus the final correction swaps remain. *)
  check_matrix "semantics" (Unitary.effective_unitary c) (Unitary.unitary f)

let test_flatten_reconstructs_cx_swaps () =
  let c = Circuit.cx (Circuit.cx (Circuit.cx (Circuit.create 2) 0 1) 1 0) 0 1 in
  let c = Circuit.with_output_perm c (Some (Perm.of_array [| 1; 0 |])) in
  let f = Flatten.flatten c in
  Alcotest.(check int) "everything absorbed" 0 (Circuit.gate_count f)

(* ------------------------------------------------------------ Strategies *)

let all_strategies = Qcec.[ Reference; Alternating; Zx; Combined ]

let test_identical_circuits () =
  let c = ghz 4 in
  List.iter
    (fun s ->
      check_outcome
        ("identical: " ^ Qcec.strategy_to_string s)
        Equivalence.Equivalent s c c)
    all_strategies

let test_trivially_different () =
  let c = ghz 4 in
  let broken = Circuit.x c 2 in
  List.iter
    (fun s ->
      check_outcome
        ("different: " ^ Qcec.strategy_to_string s)
        Equivalence.Not_equivalent s c broken)
    Qcec.[ Reference; Alternating; Combined ]

let test_simulation_refutes () =
  let c = ghz 4 in
  let broken = Circuit.x c 2 in
  check_outcome "simulation refutes" Equivalence.Not_equivalent Qcec.Simulation c broken

let test_simulation_no_proof () =
  let c = ghz 4 in
  let r = Qcec.check ~strategy:Qcec.Simulation c c in
  Alcotest.check outcome_testable "no proof from sims" Equivalence.No_information
    r.Equivalence.outcome;
  Alcotest.(check int) "all sims ran" 16 r.Equivalence.simulations

(* ------------------------------------------------- Compilation use case *)

let compiled_pairs =
  lazy
    [
      ("ghz-5/linear-7", ghz 5, Compile.run (Architecture.linear 7) (ghz 5));
      ("qft-4/ring-5", qft 4, Compile.run (Architecture.ring 5) (qft 4));
      ( "grover-3/linear-5",
        grover ~seed:3 3,
        Compile.run (Architecture.linear 5) (grover ~seed:3 3) );
      ( "adder-2/linear-6",
        ripple_adder 2,
        Compile.run (Architecture.linear 6) (ripple_adder 2) );
    ]

let test_compiled_equivalent_dd () =
  List.iter
    (fun (name, g, g') ->
      check_outcome (name ^ " dd") Equivalence.Equivalent Qcec.Alternating g g')
    (Lazy.force compiled_pairs)

let test_compiled_equivalent_zx () =
  List.iter
    (fun (name, g, g') ->
      check_outcome (name ^ " zx") Equivalence.Equivalent Qcec.Zx g g')
    (Lazy.force compiled_pairs)

let test_compiled_with_layout () =
  let rng = Rng.make ~seed:17 in
  let arch = Architecture.ring 6 in
  let g = qft 4 in
  let layout = Compile.spread_layout arch rng in
  let g' = Compile.run ~initial_layout:layout arch g in
  check_outcome "layouted compile dd" Equivalence.Equivalent Qcec.Alternating g g';
  check_outcome "layouted compile zx" Equivalence.Equivalent Qcec.Zx g g'

let test_compiled_gate_missing () =
  let g = ghz 5 in
  let g' = Compile.run (Architecture.linear 7) g in
  let broken = remove_gate ~seed:23 g' in
  check_outcome "missing gate dd" Equivalence.Not_equivalent Qcec.Combined g broken;
  let r = Qcec.check ~strategy:Qcec.Zx g broken in
  Alcotest.(check bool)
    "zx does not claim equivalence" true
    (r.Equivalence.outcome <> Equivalence.Equivalent)

let test_compiled_flipped_cnot () =
  let g = ghz 5 in
  let g' = Compile.run (Architecture.linear 7) g in
  let broken = flip_cnot ~seed:23 g' in
  check_outcome "flipped cnot dd" Equivalence.Not_equivalent Qcec.Combined g broken;
  let r = Qcec.check ~strategy:Qcec.Zx g broken in
  Alcotest.(check bool)
    "zx does not claim equivalence" true
    (r.Equivalence.outcome <> Equivalence.Equivalent)

(* ------------------------------------------------ Optimisation use case *)

let test_optimized_equivalent () =
  let g = grover ~seed:4 3 in
  let lowered = Decompose.to_cx_basis (Decompose.elementary g) in
  let g' = Optimize.optimize lowered in
  Alcotest.(check bool) "optimizer did something" true
    (Circuit.gate_count g' < Circuit.gate_count lowered);
  check_outcome "optimized dd" Equivalence.Equivalent Qcec.Alternating g g';
  check_outcome "optimized zx" Equivalence.Equivalent Qcec.Zx g g'

let test_optimized_error_detected () =
  let g = qft 4 in
  let g' = Optimize.optimize (Decompose.to_cx_basis g) in
  let broken = remove_gate ~seed:5 g' in
  check_outcome "optimized broken" Equivalence.Not_equivalent Qcec.Combined g broken

(* --------------------------------------------------------------- Details *)

let test_global_phase_ignored () =
  (* Rz(pi) vs Z differ by the global phase i. *)
  let a = Circuit.rz (Circuit.create 1) Phase.pi 0 in
  let b = Circuit.z (Circuit.create 1) 0 in
  List.iter
    (fun s ->
      check_outcome ("phase: " ^ Qcec.strategy_to_string s) Equivalence.Equivalent s a b)
    all_strategies

let test_permuted_outputs_not_equivalent () =
  (* A swap is not the identity unless declared in the output perm. *)
  let a = Circuit.create 2 in
  let b = Circuit.swap (Circuit.create 2) 0 1 in
  check_outcome "undeclared swap dd" Equivalence.Not_equivalent Qcec.Alternating a b;
  check_outcome "undeclared swap zx" Equivalence.Not_equivalent Qcec.Zx a b;
  let b_declared = Circuit.with_output_perm b (Some (Perm.of_array [| 1; 0 |])) in
  check_outcome "declared swap dd" Equivalence.Equivalent Qcec.Alternating a b_declared;
  check_outcome "declared swap zx" Equivalence.Equivalent Qcec.Zx a b_declared

let test_width_mismatch () =
  let a = ghz 3 in
  let b = Circuit.embed (ghz 3) ~num_qubits:5 in
  check_outcome "widths aligned" Equivalence.Equivalent Qcec.Alternating a b

let test_timeout () =
  let g = random_reversible ~seed:3 ~gates:120 10 in
  let g' = random_reversible ~seed:4 ~gates:120 10 in
  let r = Qcec.check ~strategy:Qcec.Alternating ~timeout:0.0 g g' in
  Alcotest.check outcome_testable "times out" Equivalence.Timed_out r.Equivalence.outcome

let test_state_equivalence () =
  (* GHZ by fan-out vs by chain: same state preparation, different
     unitaries. *)
  let fanout = ghz 5 in
  let chain =
    let c = Circuit.h (Circuit.create 5) 0 in
    let rec go c q = if q >= 5 then c else go (Circuit.cx c (q - 1) q) (q + 1) in
    go c 1
  in
  let unit_r = Qcec.check ~strategy:Qcec.Alternating fanout chain in
  Alcotest.check outcome_testable "different unitaries" Equivalence.Not_equivalent
    unit_r.Equivalence.outcome;
  let st = Sim_checker.check_states fanout chain in
  Alcotest.check outcome_testable "same state prep" Equivalence.Equivalent
    st.Equivalence.outcome;
  let broken = Circuit.z chain 3 in
  let st2 = Sim_checker.check_states fanout broken in
  Alcotest.check outcome_testable "broken state prep" Equivalence.Not_equivalent
    st2.Equivalence.outcome;
  let w = Oqec_workloads.Workloads.w_state 6 in
  let w' = Compile.run (Architecture.ring 8) w in
  let st3 = Sim_checker.check_states w w' in
  Alcotest.check outcome_testable "compiled state prep" Equivalence.Equivalent
    st3.Equivalence.outcome

let test_approximate_check () =
  (* A tiny extra rotation: not exactly equivalent, but within fidelity
     0.999 (the approximate notion of the paper's reference [16]). *)
  let c = ghz 4 in
  let perturbed = Circuit.p c (Phase.of_float 1e-3) 2 in
  let exact = Qcec.check ~strategy:Qcec.Alternating c perturbed in
  Alcotest.check outcome_testable "exactly: not equivalent" Equivalence.Not_equivalent
    exact.Equivalence.outcome;
  let approx, fidelity = Dd_checker.check_approximate ~threshold:0.999 c perturbed in
  Alcotest.check outcome_testable "approximately: equivalent" Equivalence.Equivalent
    approx.Equivalence.outcome;
  Alcotest.(check bool) "fidelity just below 1" true (fidelity < 1.0 && fidelity > 0.999);
  let strict, _ = Dd_checker.check_approximate ~threshold:0.9999999999 c perturbed in
  Alcotest.check outcome_testable "strict threshold refuses" Equivalence.Not_equivalent
    strict.Equivalence.outcome

let test_lookahead_scheme () =
  let g = qft 5 in
  let g' = Compile.run (Architecture.ring 6) g in
  let r = Qcec.check ~strategy:Qcec.Alternating ~scheme:Dd_scheme.Lookahead g g' in
  Alcotest.check outcome_testable "lookahead proves equivalence" Equivalence.Equivalent
    r.Equivalence.outcome;
  let broken = remove_gate ~seed:4 g' in
  let r2 = Qcec.check ~strategy:Qcec.Alternating ~scheme:Dd_scheme.Lookahead g broken in
  Alcotest.(check bool) "lookahead does not prove broken" true
    (r2.Equivalence.outcome <> Equivalence.Equivalent)

let test_report_fields () =
  let c = ghz 3 in
  let r = Qcec.check ~strategy:Qcec.Alternating c c in
  Alcotest.(check bool) "peak positive" true (r.Equivalence.peak_size > 0);
  Alcotest.(check int) "identity final size" 3 r.Equivalence.final_size;
  Alcotest.(check bool) "elapsed sane" true (r.Equivalence.elapsed >= 0.0)

let prop_random_equivalent_pairs =
  qtest ~count:25 "qcec: compile-then-check proves equivalence"
    QCheck.(make ~print:string_of_int Gen.int)
    (fun seed ->
      let c = random_layout_circuit seed in
      let c = Circuit.with_initial_layout (Circuit.with_output_perm c None) None in
      let arch = Architecture.linear (Circuit.num_qubits c + 1) in
      let compiled = Compile.run arch c in
      let r = Qcec.check ~strategy:Qcec.Alternating c compiled in
      let z = Qcec.check ~strategy:Qcec.Zx c compiled in
      r.Equivalence.outcome = Equivalence.Equivalent
      && z.Equivalence.outcome <> Equivalence.Not_equivalent)

let prop_random_error_detected =
  qtest ~count:25 "qcec: injected errors never verify as equivalent"
    QCheck.(make ~print:string_of_int Gen.int)
    (fun seed ->
      let c = random_layout_circuit seed in
      let c = Circuit.with_initial_layout (Circuit.with_output_perm c None) None in
      QCheck.assume (Circuit.gate_count c > 0);
      let broken = remove_gate ~seed c in
      (* Removing a gate may keep the unitary (e.g. one of two identical
         CX); compare against the dense truth. *)
      let truly_equal = Unitary.equivalent c broken in
      let r = Qcec.check ~strategy:Qcec.Combined ~seed c broken in
      if truly_equal then r.Equivalence.outcome = Equivalence.Equivalent
      else r.Equivalence.outcome = Equivalence.Not_equivalent)

let suite =
  [
    prop_flatten_matches_effective;
    Alcotest.test_case "flatten absorbs swaps" `Quick test_flatten_absorbs_swaps;
    Alcotest.test_case "flatten reconstructs cx swaps" `Quick test_flatten_reconstructs_cx_swaps;
    Alcotest.test_case "identical circuits" `Quick test_identical_circuits;
    Alcotest.test_case "trivially different" `Quick test_trivially_different;
    Alcotest.test_case "simulation refutes" `Quick test_simulation_refutes;
    Alcotest.test_case "simulation gives no proof" `Quick test_simulation_no_proof;
    Alcotest.test_case "compiled pairs (dd)" `Quick test_compiled_equivalent_dd;
    Alcotest.test_case "compiled pairs (zx)" `Quick test_compiled_equivalent_zx;
    Alcotest.test_case "compiled with random layout" `Quick test_compiled_with_layout;
    Alcotest.test_case "compiled, gate missing" `Quick test_compiled_gate_missing;
    Alcotest.test_case "compiled, flipped cnot" `Quick test_compiled_flipped_cnot;
    Alcotest.test_case "optimized circuits equivalent" `Quick test_optimized_equivalent;
    Alcotest.test_case "optimized circuits, error" `Quick test_optimized_error_detected;
    Alcotest.test_case "global phase ignored" `Quick test_global_phase_ignored;
    Alcotest.test_case "output permutations" `Quick test_permuted_outputs_not_equivalent;
    Alcotest.test_case "width mismatch" `Quick test_width_mismatch;
    Alcotest.test_case "timeout" `Quick test_timeout;
    Alcotest.test_case "state-preparation equivalence" `Quick test_state_equivalence;
    Alcotest.test_case "approximate equivalence" `Quick test_approximate_check;
    Alcotest.test_case "lookahead scheme" `Quick test_lookahead_scheme;
    Alcotest.test_case "report fields" `Quick test_report_fields;
    prop_random_equivalent_pairs;
    prop_random_error_detected;
  ]
