(* Tests for the QMDD package, validated against dense matrices. *)

open Oqec_base
open Oqec_circuit
open Oqec_dd
open Helpers

let ghz3 =
  let c = Circuit.create ~name:"ghz3" 3 in
  let c = Circuit.h c 0 in
  let c = Circuit.cx c 0 1 in
  Circuit.cx c 0 2

let test_ctable () =
  let t = Ctable.create ~tol:1e-10 in
  let a = Ctable.intern t (Cx.make 0.5 0.0) in
  let b = Ctable.intern t (Cx.make (0.5 +. 1e-12) 0.0) in
  Alcotest.(check bool) "snapped" true (a = b);
  let c = Ctable.intern t (Cx.make 0.5001 0.0) in
  Alcotest.(check bool) "distinct" true (a <> c);
  let z = Ctable.intern t (Cx.make (-0.0) 0.0) in
  Alcotest.(check bool) "negative zero normalised" true (1.0 /. z.Cx.re = infinity)

(* Regression: NaN/inf and huge magnitudes used to hit int_of_float
   undefined behaviour in the bucket computation, producing garbage keys
   that could alias unrelated values.  They must now pass through
   uninterned and leave the table intact. *)
let test_ctable_nonfinite () =
  let t = Ctable.create ~tol:1e-10 in
  let inf = Ctable.intern t (Cx.make infinity neg_infinity) in
  Alcotest.(check bool) "inf passes through" true (inf.Cx.re = infinity);
  Alcotest.(check bool) "neg inf passes through" true (inf.Cx.im = neg_infinity);
  let n = Ctable.intern t (Cx.make nan 0.0) in
  Alcotest.(check bool) "nan passes through" true (Float.is_nan n.Cx.re);
  let huge = Ctable.intern t (Cx.make 1e300 (-1e300)) in
  Alcotest.(check bool) "huge passes through" true (huge.Cx.re = 1e300);
  Alcotest.(check bool) "huge negative passes through" true (huge.Cx.im = -1e300);
  (* The table still interns ordinary values correctly afterwards. *)
  let a = Ctable.intern t (Cx.make 0.5 0.0) in
  let b = Ctable.intern t (Cx.make (0.5 +. 1e-12) 0.0) in
  Alcotest.(check bool) "normal interning unaffected" true (a = b)

let test_identity_dd () =
  let pkg = Dd.create () in
  let id = Dd.identity pkg 5 in
  Alcotest.(check int) "linear size" 5 (Dd.node_count id);
  Alcotest.(check bool) "is identity" true (Dd.is_identity pkg 5 id);
  check_matrix "dense" (Dmatrix.identity 32) (Dd_export.to_dmatrix id ~n:5);
  Alcotest.(check (float 1e-9)) "trace" 32.0 (Cx.mag (Dd.trace id));
  Alcotest.(check (float 1e-9)) "fidelity" 1.0 (Dd.fidelity_to_identity ~n:5 id)

let test_hash_consing () =
  let pkg = Dd.create () in
  let a = Dd.identity pkg 3 in
  let b = Dd.identity pkg 3 in
  Alcotest.(check bool) "same node" true (a.Dd.node == b.Dd.node)

let test_gate_dd_dense () =
  let pkg = Dd.create () in
  let check name n controls target g =
    let dd = Dd_circuit.gate_dd pkg n ~controls ~target (Gate.matrix g) in
    let c = Circuit.create n in
    let c =
      if controls = [] then Circuit.gate c g target
      else Circuit.add c (Circuit.Ctrl (controls, g, target))
    in
    check_matrix name (Unitary.unitary c) (Dd_export.to_dmatrix dd ~n)
  in
  check "h on 1 of 3" 3 [] 1 Gate.H;
  check "t on 0 of 2" 2 [] 0 Gate.T;
  check "cx 0->1" 2 [ 0 ] 1 Gate.X;
  check "cx 1->0" 2 [ 1 ] 0 Gate.X;
  check "cx 2->0 of 3" 3 [ 2 ] 0 Gate.X;
  check "ccx" 3 [ 0; 1 ] 2 Gate.X;
  check "ccx mixed order" 3 [ 2; 0 ] 1 Gate.X;
  check "cccz" 4 [ 0; 1; 3 ] 2 Gate.Z;
  check "controlled rz" 3 [ 1 ] 2 (Gate.Rz Phase.quarter_pi)

let test_ghz_dd () =
  let pkg = Dd.create () in
  let dd = Dd_circuit.of_circuit pkg ghz3 in
  check_matrix "ghz matrix" (Unitary.unitary ghz3) (Dd_export.to_dmatrix dd ~n:3);
  (* Fig. 3a: the GHZ DD is compact — 5 nodes (1 + 2 + 2 across the three
     levels) instead of the 64 entries of the dense matrix. *)
  Alcotest.(check int) "compact" 5 (Dd.node_count dd)

let test_mul_add_adjoint_dense () =
  let pkg = Dd.create () in
  let c1 = Circuit.cx (Circuit.h (Circuit.create 2) 0) 0 1 in
  let c2 = Circuit.t_gate (Circuit.cx (Circuit.create 2) 1 0) 0 in
  let d1 = Dd_circuit.of_circuit pkg c1 and d2 = Dd_circuit.of_circuit pkg c2 in
  let m1 = Unitary.unitary c1 and m2 = Unitary.unitary c2 in
  check_matrix "mul" (Dmatrix.mul m1 m2) (Dd_export.to_dmatrix (Dd.mul pkg d1 d2) ~n:2);
  check_matrix "add" (Dmatrix.add m1 m2) (Dd_export.to_dmatrix (Dd.add pkg d1 d2) ~n:2);
  check_matrix "adjoint" (Dmatrix.adjoint m1)
    (Dd_export.to_dmatrix (Dd.adjoint pkg d1) ~n:2)

let test_gdg_g_is_identity () =
  let pkg = Dd.create () in
  let c = ghz3 in
  let miter = Circuit.append c (Circuit.inverse c) in
  let dd = Dd_circuit.of_circuit pkg miter in
  Alcotest.(check bool) "identity" true (Dd.is_identity pkg 3 dd);
  Alcotest.(check (float 1e-9)) "fidelity 1" 1.0 (Dd.fidelity_to_identity ~n:3 dd)

let test_simulation () =
  let pkg = Dd.create () in
  let v = Dd_circuit.simulate pkg ghz3 ~input:0 in
  let dense = Dd_export.to_vector v ~n:3 in
  let expect = Unitary.basis_state 3 0 in
  Unitary.apply_to_vector ghz3 expect;
  Array.iteri
    (fun i amp -> Alcotest.check cx_testable (Printf.sprintf "amp %d" i) expect.(i) amp)
    dense

let test_inner_product () =
  let pkg = Dd.create () in
  let v0 = Dd_circuit.simulate pkg ghz3 ~input:0 in
  Alcotest.(check (float 1e-9)) "normalised" 1.0 (Cx.mag (Dd.inner pkg v0 v0));
  let v1 = Dd_circuit.simulate pkg ghz3 ~input:1 in
  Alcotest.(check (float 1e-9)) "orthogonal" 0.0 (Cx.mag (Dd.inner pkg v0 v1));
  let k3 = Dd.kets pkg 3 3 in
  let k3' = Dd.kets pkg 3 3 in
  Alcotest.(check (float 1e-9)) "kets self" 1.0 (Cx.mag (Dd.inner pkg k3 k3'))

let test_kets () =
  let pkg = Dd.create () in
  let v = Dd_export.to_vector (Dd.kets pkg 3 5) ~n:3 in
  Alcotest.check cx_testable "amp 5" Cx.one v.(5);
  Alcotest.check cx_testable "amp 0" Cx.zero v.(0)

(* Canonicity: the same unitary built along different op orders must be
   physically the same node. *)
let test_canonicity () =
  let pkg = Dd.create () in
  let c1 = Circuit.cx (Circuit.h (Circuit.create 2) 0) 0 1 in
  (* Same unitary: H = S . Sx . S up to phase?  Use a simpler identity:
     build c1 as one product vs the product of two halves. *)
  let d_whole = Dd_circuit.of_circuit pkg c1 in
  let h_dd = Dd_circuit.of_circuit pkg (Circuit.h (Circuit.create 2) 0) in
  let cx_dd = Dd_circuit.of_circuit pkg (Circuit.cx (Circuit.create 2) 0 1) in
  let d_split = Dd.mul pkg cx_dd h_dd in
  Alcotest.(check bool) "same node" true (d_whole.Dd.node == d_split.Dd.node);
  Alcotest.(check bool) "same weight" true (Cx.approx_equal d_whole.Dd.w d_split.Dd.w)

(* ------------------------------------------ Engine statistics and GC *)

let test_identity_memoised () =
  let pkg = Dd.create () in
  let a = Dd.identity pkg 6 in
  let b = Dd.identity pkg 6 in
  Alcotest.(check bool) "same chain" true (a.Dd.node == b.Dd.node);
  (* The memoised identity acts as a GC root: it survives a collection
     with no registered roots and stays physically identical. *)
  ignore (Dd.gc pkg);
  let c = Dd.identity pkg 6 in
  Alcotest.(check bool) "survives gc" true (a.Dd.node == c.Dd.node)

let test_stats_hits () =
  let pkg = Dd.create () in
  let d1 = Dd_circuit.of_circuit pkg ghz3 in
  let d2 = Dd_circuit.of_circuit pkg (Circuit.inverse ghz3) in
  let before = (Dd.stats pkg).Dd.mm.Ccache.s_hits in
  ignore (Dd.mul pkg d1 d2);
  let after_once = (Dd.stats pkg).Dd.mm.Ccache.s_hits in
  ignore (Dd.mul pkg d1 d2);
  let after_twice = (Dd.stats pkg).Dd.mm.Ccache.s_hits in
  Alcotest.(check bool) "repeat mul hits the cache" true (after_twice > after_once);
  ignore before;
  let s = Dd.stats pkg in
  Alcotest.(check bool) "total hits positive" true (Dd.cache_hits s > 0);
  Alcotest.(check bool) "allocated covers live" true (s.Dd.allocated >= s.Dd.live);
  Alcotest.(check bool) "peak covers live" true (s.Dd.peak_live >= s.Dd.live)

let test_gc_roots () =
  let pkg = Dd.create () in
  let dd = Dd_circuit.of_circuit pkg ghz3 in
  Dd.root pkg dd;
  let nodes_before = Dd.node_count dd in
  let trace_before = Dd.trace dd in
  (* Junk that nothing roots: must be swept. *)
  for i = 0 to 7 do
    ignore (Dd.kets pkg 3 i)
  done;
  let live_before = Dd.live pkg in
  let reclaimed = Dd.gc pkg in
  Alcotest.(check bool) "collection reclaimed the kets" true (reclaimed > 0);
  Alcotest.(check bool) "live dropped" true (Dd.live pkg < live_before);
  (* The rooted miter is untouched. *)
  Alcotest.(check int) "rooted node count unchanged" nodes_before (Dd.node_count dd);
  Alcotest.check cx_testable "rooted trace unchanged" trace_before (Dd.trace dd);
  (* Unrooting releases it: only the memoised identity chain remains. *)
  Dd.unroot pkg dd;
  let live_rooted = Dd.live pkg in
  ignore (Dd.gc pkg);
  Alcotest.(check bool) "live drops after unroot + gc" true (Dd.live pkg < live_rooted);
  let s = Dd.stats pkg in
  Alcotest.(check int) "gc runs counted" 2 s.Dd.gc_runs;
  Alcotest.(check bool) "reclaimed counted" true (s.Dd.gc_reclaimed >= reclaimed)

let test_root_counting () =
  let pkg = Dd.create () in
  let dd = Dd_circuit.of_circuit pkg ghz3 in
  Dd.root pkg dd;
  Dd.root pkg dd;
  Dd.unroot pkg dd;
  ignore (Dd.gc pkg);
  (* One registration remains: the edge must still be canonical. *)
  let again = Dd_circuit.of_circuit pkg ghz3 in
  Alcotest.(check bool) "still hash-conses onto the root" true (dd.Dd.node == again.Dd.node)

let test_auto_gc_threshold_zero () =
  let pkg = Dd.create ~gc_threshold:0 () in
  let dd = Dd_circuit.of_circuit pkg (Circuit.append ghz3 (Circuit.inverse ghz3)) in
  Alcotest.(check bool) "is identity with gc at every gate" true (Dd.is_identity pkg 3 dd);
  let s = Dd.stats pkg in
  Alcotest.(check bool) "gc ran automatically" true (s.Dd.gc_runs >= 1)

let random_clifford_t_circuit seed n n_ops =
  let rng = Rng.make ~seed in
  let c = ref (Circuit.create n) in
  for _ = 1 to n_ops do
    let q = Rng.int rng n in
    let q2 = (q + 1 + Rng.int rng (n - 1)) mod n in
    match Rng.int rng 6 with
    | 0 -> c := Circuit.h !c q
    | 1 -> c := Circuit.t_gate !c q
    | 2 -> c := Circuit.s !c q
    | 3 -> c := Circuit.cx !c q q2
    | 4 -> c := Circuit.rz !c (Phase.of_pi_fraction (Rng.int rng 16) 8) q
    | _ -> c := Circuit.swap !c q q2
  done;
  !c

let test_bounded_cache_overwrites () =
  (* A tiny compute cache forces collisions: the workload still computes
     correctly, and the overwrite counter records the evictions. *)
  let pkg = Dd.create ~cache_bits:2 () in
  let c = random_clifford_t_circuit 7 4 40 in
  let dd = Dd_circuit.of_circuit pkg c in
  check_matrix "tiny cache still correct" (Unitary.unitary c) (Dd_export.to_dmatrix dd ~n:4);
  let s = Dd.stats pkg in
  Alcotest.(check bool) "collisions recorded" true
    (s.Dd.mm.Ccache.s_overwrites > 0 || s.Dd.add_.Ccache.s_overwrites > 0)

let prop_circuit_dd_matches_dense =
  qtest ~count:40 "dd: circuit DD matches dense unitary"
    QCheck.(make ~print:string_of_int Gen.int)
    (fun seed ->
      let n = 2 + (abs seed mod 3) in
      let c = random_clifford_t_circuit seed n 15 in
      let pkg = Dd.create () in
      let dd = Dd_circuit.of_circuit pkg c in
      Dmatrix.equal ~tol:1e-8 (Unitary.unitary c) (Dd_export.to_dmatrix dd ~n))

let prop_miter_identity =
  qtest ~count:40 "dd: G . G^dagger reduces to the identity node"
    QCheck.(make ~print:string_of_int Gen.int)
    (fun seed ->
      let n = 2 + (abs seed mod 3) in
      let c = random_clifford_t_circuit seed n 20 in
      let pkg = Dd.create () in
      let dd = Dd_circuit.of_circuit pkg (Circuit.append c (Circuit.inverse c)) in
      Dd.is_identity pkg n dd)

let prop_simulation_matches_dense =
  qtest ~count:40 "dd: simulation matches dense state vector"
    QCheck.(make ~print:string_of_int Gen.int)
    (fun seed ->
      let n = 2 + (abs seed mod 3) in
      let c = random_clifford_t_circuit seed n 15 in
      let input = abs seed mod (1 lsl n) in
      let pkg = Dd.create () in
      let v = Dd_export.to_vector (Dd_circuit.simulate pkg c ~input) ~n in
      let expect = Unitary.basis_state n input in
      Unitary.apply_to_vector c expect;
      Array.for_all2 (fun a b -> Cx.approx_equal ~tol:1e-8 a b) expect v)

let prop_trace_matches_dense =
  qtest ~count:30 "dd: trace matches dense trace"
    QCheck.(make ~print:string_of_int Gen.int)
    (fun seed ->
      let n = 2 + (abs seed mod 2) in
      let c = random_clifford_t_circuit seed n 10 in
      let pkg = Dd.create () in
      let dd = Dd_circuit.of_circuit pkg c in
      Cx.approx_equal ~tol:1e-8 (Dd.trace dd) (Dmatrix.trace (Unitary.unitary c)))

let suite =
  [
    Alcotest.test_case "complex table interning" `Quick test_ctable;
    Alcotest.test_case "complex table non-finite inputs" `Quick test_ctable_nonfinite;
    Alcotest.test_case "identity memoised across gc" `Quick test_identity_memoised;
    Alcotest.test_case "stats: compute-cache hits" `Quick test_stats_hits;
    Alcotest.test_case "gc: roots survive, garbage swept" `Quick test_gc_roots;
    Alcotest.test_case "gc: root registrations counted" `Quick test_root_counting;
    Alcotest.test_case "gc: automatic at threshold 0" `Quick test_auto_gc_threshold_zero;
    Alcotest.test_case "bounded cache overwrites" `Quick test_bounded_cache_overwrites;
    Alcotest.test_case "identity dd (fig 3b)" `Quick test_identity_dd;
    Alcotest.test_case "hash consing" `Quick test_hash_consing;
    Alcotest.test_case "gate dds vs dense" `Quick test_gate_dd_dense;
    Alcotest.test_case "ghz dd compact (fig 3a)" `Quick test_ghz_dd;
    Alcotest.test_case "mul/add/adjoint vs dense" `Quick test_mul_add_adjoint_dense;
    Alcotest.test_case "miter is identity" `Quick test_gdg_g_is_identity;
    Alcotest.test_case "simulation" `Quick test_simulation;
    Alcotest.test_case "inner products" `Quick test_inner_product;
    Alcotest.test_case "basis kets" `Quick test_kets;
    Alcotest.test_case "canonicity across op orders" `Quick test_canonicity;
    prop_circuit_dd_matches_dense;
    prop_miter_identity;
    prop_simulation_matches_dense;
    prop_trace_matches_dense;
  ]
