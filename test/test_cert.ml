(* Replayable verdict certificates: wire-format round-trips, the
   adversarial mutation suite against the independent validator, golden
   acceptance on Table-1 style instances, engine/certificate agreement
   over fuzz pairs, and the independence proof — a deliberately
   corrupted engine is caught by certificate validation, not by the
   engine itself. *)

open Oqec_base
open Oqec_circuit
open Oqec_workloads
open Oqec_qcec
module Cert = Oqec_cert.Cert
module Validate = Oqec_cert.Cert_validate
module Step = Oqec_zx.Zx_step
module G = Oqec_zx.Zx_graph
module Fuzz = Oqec_fuzz.Fuzz

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let certify outcome a b =
  match Certify.certify outcome a b with
  | Ok cert -> cert
  | Error e -> Alcotest.failf "certify: %s" e

let assert_valid msg cert =
  match Validate.validate cert with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: validator rejected: %s" msg e

(* A corrupted certificate must be rejected, and with an error message
   precise enough to name the offence. *)
let assert_rejected ?expect msg cert =
  match Validate.validate cert with
  | Ok () -> Alcotest.failf "%s: validator accepted a corrupted certificate" msg
  | Error e -> (
      match expect with
      | Some frag when not (contains e frag) ->
          Alcotest.failf "%s: error %S does not mention %S" msg e frag
      | Some _ | None -> ())

(* ------------------------------------------------------------ fixtures *)

(* S;S;S;S against the empty circuit: the miter is a chain of four
   pi/2-phase spiders, so the recorded proof is exactly three fusions
   followed by one identity removal — small and predictable enough to
   mutate surgically. *)
let s4 =
  let c = ref (Circuit.create ~name:"s4" 1) in
  for _ = 1 to 4 do
    c := Circuit.s !c 0
  done;
  !c

let empty1 = Circuit.create ~name:"id" 1
let x1 = Circuit.x (Circuit.create ~name:"x" 1) 0

let zx_proof_parts () =
  match certify Equivalence.Equivalent s4 empty1 with
  | Cert.Zx_proof { a; b; steps } -> (a, b, steps)
  | Cert.Witness _ -> Alcotest.fail "expected a zx proof"

(* ---------------------------------------------------------- round-trip *)

let roundtrip msg cert =
  let wire = Cert.serialize cert in
  match Cert.parse wire with
  | Error e -> Alcotest.failf "%s: parse failed: %s" msg e
  | Ok cert' ->
      if not (Cert.equal cert cert') then
        Alcotest.failf "%s: parse(serialize) is not the identity:\n%s" msg wire;
      (* serialising the parsed value must be a fixpoint *)
      Alcotest.(check string) (msg ^ " (fixpoint)") wire (Cert.serialize cert')

let test_roundtrip_zx () =
  let cert = certify Equivalence.Equivalent s4 empty1 in
  assert_valid "s4 proof" cert;
  roundtrip "zx proof" cert;
  let ghz = Workloads.ghz 3 in
  let cert = certify Equivalence.Equivalent ghz ghz in
  assert_valid "ghz proof" cert;
  roundtrip "ghz proof" cert

let test_roundtrip_witness () =
  let cert = certify Equivalence.Not_equivalent x1 empty1 in
  assert_valid "basis witness" cert;
  roundtrip "basis witness" cert;
  (* S vs T differ only in phases, so no basis state refutes: the
     witness search must emit a superposition preparation (H + phases),
     exercising the non-trivial stimulus encoding. *)
  let s = Circuit.s (Circuit.create ~name:"s" 1) 0 in
  let t = Circuit.t_gate (Circuit.create ~name:"t" 1) 0 in
  let cert = certify Equivalence.Not_equivalent s t in
  (match cert with
  | Cert.Witness { prep; _ } ->
      if Circuit.gate_count prep = 0 then
        Alcotest.fail "phase-only refutation should need a superposition stimulus"
  | Cert.Zx_proof _ -> Alcotest.fail "expected a witness");
  assert_valid "superposition witness" cert;
  roundtrip "superposition witness" cert

let test_wire_rejects () =
  let wire = Cert.serialize (certify Equivalence.Equivalent s4 empty1) in
  let expect_error msg frag s =
    match Cert.parse s with
    | Ok _ -> Alcotest.failf "%s: parser accepted malformed input" msg
    | Error e ->
        if not (contains e frag) then
          Alcotest.failf "%s: error %S does not mention %S" msg e frag
  in
  expect_error "empty input" "not a certificate" "";
  expect_error "garbage input" "not a certificate" "hello\nworld\n";
  (let lines = String.split_on_char '\n' wire in
   let bumped =
     String.concat "\n" ("OQEC-CERT 99" :: List.tl lines)
   in
   expect_error "unknown version" "version" bumped;
   let truncated =
     String.concat "\n" (List.filteri (fun i _ -> i < List.length lines - 2) lines)
   in
   expect_error "truncated payload" "" truncated);
  expect_error "trailing garbage" "trailing" (wire ^ "oops\n")

let phase_gen =
  QCheck.Gen.(
    oneof
      [
        map2
          (fun n d -> Phase.of_pi_fraction n (1 + abs d))
          (int_range (-8) 8) (int_range 0 7);
        map Phase.of_float (float_range (-6.0) 6.0);
      ])

let step_gen =
  QCheck.Gen.(
    let v = int_range 0 99 in
    oneof
      [
        map (fun x -> Step.Color x) v;
        map3 (fun into src ph -> Step.Fuse { into; src; ph }) v v phase_gen;
        map (fun x -> Step.Id x) v;
        map3 (fun leaf axis ph -> Step.Absorb { leaf; axis; ph }) v v phase_gen;
        map2 (fun v ph -> Step.Lcomp { v; ph }) v phase_gen;
        map
          (fun ((u, v), (pu, pv)) -> Step.Pivot { u; v; pu; pv })
          (pair (pair v v) (pair phase_gen phase_gen));
        map
          (fun ((v, b, w), h) ->
            Step.Unfuse { v; b; w; ty = (if h then G.Had else G.Simple) })
          (pair (triple v v v) bool);
        map
          (fun ((v, axis, leaf), ph) -> Step.Gadgetize { v; axis; leaf; ph })
          (pair (triple v v v) phase_gen);
        map2 (fun axis leaf -> Step.Gadget_flip { axis; leaf }) v v;
        map
          (fun ((leaf, axis), (leaf0, axis0), ph) ->
            Step.Gadget_merge { leaf; axis; leaf0; axis0; ph })
          (triple (pair v v) (pair v v) phase_gen);
      ])

let step_roundtrip =
  Helpers.qtest ~count:500 "step lines round-trip"
    (QCheck.make ~print:Step.to_string step_gen)
    (fun s ->
      match Step.of_string (Step.to_string s) with
      | Some s' -> Step.equal s s'
      | None -> false)

(* --------------------------------------------------------- adversarial *)

(* The base proof is fetched (and sanity-checked) once per mutation
   class so a failure names the class directly in the test tree. *)
let with_zx_proof f () =
  let a, b, steps = zx_proof_parts () in
  let mk steps = Cert.Zx_proof { a; b; steps } in
  assert_valid "unmutated base proof" (mk steps);
  let n = List.length steps in
  if n < 2 then Alcotest.failf "proof too small to mutate (%d steps)" n;
  (match List.hd steps with
  | Step.Fuse _ -> ()
  | s -> Alcotest.failf "expected the proof to open with a fusion, got %s" (Step.to_string s));
  f ~mk ~steps ~n

let drop_last steps n k = List.filteri (fun i _ -> i < n - k) steps

let zx_mutations =
  [
    ( "dropped first step",
      fun ~mk ~steps ~n:_ -> assert_rejected "dropped first step" (mk (List.tl steps)) );
    ( "dropped last step",
      fun ~mk ~steps ~n ->
        assert_rejected "dropped last step" (mk (drop_last steps n 1)) );
    ( "truncated tail",
      fun ~mk ~steps ~n ->
        assert_rejected "truncated tail" (mk (List.filteri (fun i _ -> i < n / 2) steps)) );
    ( "duplicated step",
      fun ~mk ~steps ~n:_ ->
        assert_rejected "duplicated step" (mk (List.hd steps :: steps)) );
    ( "reordered steps",
      fun ~mk ~steps ~n ->
        (* the final identity removal moved before the fusions *)
        assert_rejected ~expect:"non-zero phase" "reordered steps"
          (mk (List.nth steps (n - 1) :: drop_last steps n 1)) );
    ( "wrong anchor",
      fun ~mk ~steps ~n:_ ->
        (* the first fusion retargeted at a vertex that does not exist *)
        let retargeted =
          match List.hd steps with
          | Step.Fuse f -> Step.Fuse { f with src = 9999 }
          | s -> s
        in
        assert_rejected ~expect:"9999" "wrong anchor" (mk (retargeted :: List.tl steps)) );
    ( "corrupted phase",
      fun ~mk ~steps ~n:_ ->
        (* the recorded phase no longer matches the diagram *)
        let corrupted =
          match List.hd steps with
          | Step.Fuse f -> Step.Fuse { f with ph = Phase.add f.ph Phase.pi }
          | s -> s
        in
        assert_rejected ~expect:"phase" "corrupted phase" (mk (corrupted :: List.tl steps)) );
    ( "wrong final diagram",
      fun ~mk:_ ~steps ~n:_ ->
        (* the recorded steps replayed against a pair they do not reduce
           — a leftover spider must be reported *)
        let a, b, _ = zx_proof_parts () in
        ignore b;
        assert_rejected ~expect:"spider" "wrong final diagram"
          (Cert.Zx_proof { a; b = x1; steps }) );
  ]

let with_witness f () =
  let index, prep, fidelity =
    match certify Equivalence.Not_equivalent x1 empty1 with
    | Cert.Witness { index; prep; fidelity; _ } -> (index, prep, fidelity)
    | Cert.Zx_proof _ -> Alcotest.fail "expected a witness"
  in
  assert_valid "unmutated base witness"
    (Cert.Witness { a = x1; b = empty1; index; prep; fidelity });
  f ~index ~prep ~fidelity

let witness_mutations =
  [
    ( "corrupted fidelity",
      fun ~index ~prep ~fidelity:_ ->
        assert_rejected ~expect:"fidelity" "corrupted fidelity"
          (Cert.Witness { a = x1; b = empty1; index; prep; fidelity = 0.5 }) );
    ( "non-refuting witness",
      fun ~index ~prep ~fidelity:_ ->
        (* equivalent circuits: the claimed refutation does not refute *)
        assert_rejected ~expect:"does not refute" "non-refuting witness"
          (Cert.Witness { a = x1; b = x1; index; prep; fidelity = 1.0 }) );
    ( "wrong-width stimulus",
      fun ~index ~prep:_ ~fidelity ->
        assert_rejected ~expect:"width" "wrong-width stimulus"
          (Cert.Witness { a = x1; b = empty1; index; prep = Circuit.create 2; fidelity })
    );
    ( "over-wide witness",
      fun ~index:_ ~prep:_ ~fidelity:_ ->
        let wide = 1 + Cert.max_witness_qubits in
        assert_rejected ~expect:"too wide" "over-wide witness"
          (Cert.Witness
             {
               a = Circuit.x (Circuit.create wide) 0;
               b = Circuit.create wide;
               index = 0;
               prep = Circuit.create wide;
               fidelity = 0.0;
             }) );
  ]

(* -------------------------------------------------------------- golden *)

let test_golden_instances () =
  List.iter
    (fun (name, g) ->
      let arch = Oqec_compile.Architecture.linear (Circuit.num_qubits g) in
      let g' = Oqec_compile.Compile.run arch g in
      let report = Qcec.check ~strategy:Qcec.Zx g g' in
      Alcotest.(check bool)
        (name ^ " is equivalent") true
        (report.Equivalence.outcome = Equivalence.Equivalent);
      match report.Equivalence.certificate with
      | Some cert ->
          assert_valid name cert;
          roundtrip name cert
      | None -> Alcotest.failf "%s: no certificate attached" name)
    [ ("ghz-6", Workloads.ghz 6); ("qft-4", Workloads.qft 4) ]

let test_certify_dd_verdict () =
  (* A DD verdict carries no certificate of its own; the on-demand
     builder must substantiate it after the fact. *)
  let g = Workloads.ghz 5 in
  let g' = Oqec_compile.Compile.run (Oqec_compile.Architecture.linear 5) g in
  let report = Qcec.check ~strategy:Qcec.Alternating g g' in
  Alcotest.(check bool)
    "dd finds the pair equivalent" true
    (report.Equivalence.outcome = Equivalence.Equivalent);
  Alcotest.(check bool)
    "dd attaches no certificate" true
    (report.Equivalence.certificate = None);
  let cert = certify report.Equivalence.outcome g g' in
  assert_valid "on-demand proof for a dd verdict" cert

(* ----------------------------------------------------- fuzz agreement *)

(* Over fixed-seed fuzz pairs the engines and the certificates must
   agree: a ZX [Equivalent] comes with a proof the validator accepts
   (and the dense reference confirms), a refutation yields a witness
   the validator accepts (and the dense reference confirms). *)
let test_fuzz_agreement () =
  let config = { Fuzz.default_config with Fuzz.max_qubits = 4; max_gates = 12; seed = 7 } in
  let proofs = ref 0 and witnesses = ref 0 in
  for i = 0 to 99 do
    let case = Fuzz.generate_case config i in
    let a = case.Fuzz.left and b = case.Fuzz.right in
    let al, bl = Flatten.align a b in
    let truth = Unitary.equivalent al bl in
    let ctx = Printf.sprintf "case %d" i in
    let report = Qcec.check ~strategy:Qcec.Zx a b in
    (match (report.Equivalence.outcome, report.Equivalence.certificate) with
    | Equivalence.Equivalent, Some cert ->
        if not truth then Alcotest.failf "%s: zx claims equivalence, dense refutes" ctx;
        assert_valid (ctx ^ ": zx proof") cert;
        incr proofs
    | Equivalence.Equivalent, None ->
        Alcotest.failf "%s: equivalent verdict without a certificate" ctx
    | Equivalence.Not_equivalent, _ ->
        if truth then Alcotest.failf "%s: zx refutes, dense proves equivalence" ctx;
        assert_valid (ctx ^ ": witness") (certify Equivalence.Not_equivalent a b);
        incr witnesses
    | (Equivalence.No_information | Equivalence.Timed_out), _ -> ());
    let sim = Qcec.check ~strategy:Qcec.Simulation ~sim_runs:8 ~seed:3 a b in
    match (sim.Equivalence.outcome, sim.Equivalence.certificate) with
    | Equivalence.Not_equivalent, Some cert ->
        if truth then Alcotest.failf "%s: sim refutes, dense proves equivalence" ctx;
        assert_valid (ctx ^ ": sim witness") cert;
        incr witnesses
    | Equivalence.Not_equivalent, None ->
        (* only marginal refutations (fidelity within 1e-6 of 1) go
           uncertified; random fuzz pairs should never be marginal *)
        Alcotest.failf "%s: sim refutation without a witness certificate" ctx
    | _ -> ()
  done;
  if !proofs = 0 then Alcotest.fail "no equivalent pair was exercised";
  if !witnesses = 0 then Alcotest.fail "no refuted pair was exercised"

(* -------------------------------------------------------- independence *)

(* The sabotage switch: the engine's identity matcher fires on non-zero
   phases, producing a false equivalence proof.  The engine is fooled —
   only the certificate validator, replaying against the graph
   primitives, catches the bogus step.  This is the point of the whole
   subsystem: validation must not share the engine's bugs. *)
let test_validator_catches_broken_engine () =
  let t = Circuit.t_gate (Circuit.create ~name:"t" 1) 0 in
  Atomic.set Oqec_zx.Zx_worklist.break_hook (Some "identity-phase");
  Fun.protect
    ~finally:(fun () -> Atomic.set Oqec_zx.Zx_worklist.break_hook None)
    (fun () ->
      let report = Qcec.check ~strategy:Qcec.Zx t empty1 in
      Alcotest.(check bool)
        "the corrupted engine claims a false equivalence" true
        (report.Equivalence.outcome = Equivalence.Equivalent);
      match report.Equivalence.certificate with
      | None -> Alcotest.fail "no certificate attached to the corrupted verdict"
      | Some cert -> (
          match Validate.validate cert with
          | Ok () -> Alcotest.fail "validator accepted the corrupted proof"
          | Error msg ->
              Alcotest.(check bool)
                "rejection names the bogus identity removal" true
                (contains msg "non-zero phase")))

(* Textual independence: the validator's source must never mention the
   rewrite engine's modules — replay is written against Zx_graph
   primitives only, so engine bugs cannot leak into validation. *)
let test_validator_source_independent () =
  let candidates =
    [
      "../lib/cert/cert_validate.ml";
      "../../lib/cert/cert_validate.ml";
      "lib/cert/cert_validate.ml";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | None ->
      Alcotest.failf "cannot locate cert_validate.ml (cwd %s)" (Sys.getcwd ())
  | Some path ->
      let ic = open_in_bin path in
      let src = really_input_string ic (in_channel_length ic) in
      close_in ic;
      List.iter
        (fun forbidden ->
          if contains src forbidden then
            Alcotest.failf "validator source references the rewrite engine: %s" forbidden)
        [ "Zx_rules"; "Zx_worklist"; "Zx_simplify"; "Zx_rescan" ]

let suite =
  [
    Alcotest.test_case "zx proofs round-trip" `Quick test_roundtrip_zx;
    Alcotest.test_case "witnesses round-trip" `Quick test_roundtrip_witness;
    Alcotest.test_case "malformed wire input is rejected" `Quick test_wire_rejects;
    step_roundtrip;
  ]
  @ List.map
      (fun (name, mutate) ->
        Alcotest.test_case ("mutation rejected: " ^ name) `Quick (with_zx_proof mutate))
      zx_mutations
  @ List.map
      (fun (name, mutate) ->
        Alcotest.test_case ("witness mutation rejected: " ^ name) `Quick
          (with_witness mutate))
      witness_mutations
  @ [
    Alcotest.test_case "golden instances certify and validate" `Quick
      test_golden_instances;
    Alcotest.test_case "dd verdicts certify on demand" `Quick test_certify_dd_verdict;
    Alcotest.test_case "engine verdicts agree with certificates on fuzz pairs" `Slow
      test_fuzz_agreement;
    Alcotest.test_case "validator catches a corrupted engine" `Quick
      test_validator_catches_broken_engine;
    Alcotest.test_case "validator source is engine-independent" `Quick
      test_validator_source_independent;
  ]
