let () =
  Alcotest.run "oqec"
    [
      ("base", Test_base.suite);
      ("circuit", Test_circuit.suite);
      ("qasm", Test_qasm.suite);
      ("dd", Test_dd.suite);
      ("decompose", Test_decompose.suite);
      ("zx", Test_zx.suite);
      ("zx-worklist", Test_zx_worklist.suite);
      ("bench-fmt", Test_bench_fmt.suite);
      ("compile", Test_compile.suite);
      ("workloads", Test_workloads.suite);
      ("qcec", Test_qcec.suite);
      ("regressions", Test_regressions.suite);
      ("stab", Test_stab.suite);
      ("extract", Test_extract.suite);
      ("differential", Test_differential.suite);
      ("portfolio", Test_portfolio.suite);
      ("engine", Test_engine.suite);
      ("misc", Test_misc.suite);
      ("fuzz", Test_fuzz.suite);
      ("qasm-roundtrip", Test_qasm_roundtrip.suite);
      ("compile-fuzz", Test_compile_fuzz.suite);
      ("cert", Test_cert.suite);
      ("dd-arena", Test_dd_arena.suite);
      ("dd-schemes", Test_dd_schemes.suite);
    ]
