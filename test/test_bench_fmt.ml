(* The bench table-cell formatter, in particular the timeout clamping:
   a timed-out cell must print the configured budget (">10"), never the
   measured wall time with scheduling slack (">10.0013"). *)

open Oqec_qcec

let cell ?(timeout = 10.0) ~expected outcome time =
  Bench_fmt.cell_to_string ~timeout ~expected outcome ~time

let test_timeout_clamped () =
  Alcotest.(check string)
    "overshoot clamped to the budget" ">10"
    (cell ~expected:`Equivalent Equivalence.Timed_out 10.0013);
  Alcotest.(check string)
    "non-default budget" ">30"
    (cell ~timeout:30.0 ~expected:`Not_equivalent Equivalence.Timed_out 30.27);
  Alcotest.(check string)
    "fractional budget keeps %g rendering" ">2.5"
    (cell ~timeout:2.5 ~expected:`Equivalent Equivalence.Timed_out 2.5061)

let test_verdict_markers () =
  Alcotest.(check string)
    "expected equivalent" "1.23"
    (cell ~expected:`Equivalent Equivalence.Equivalent 1.234);
  Alcotest.(check string)
    "expected non-equivalent" "0.50"
    (cell ~expected:`Not_equivalent Equivalence.Not_equivalent 0.499);
  Alcotest.(check string)
    "no-information on faulty instance is expected for ZX" "0.10*"
    (cell ~expected:`Not_equivalent Equivalence.No_information 0.1);
  Alcotest.(check string)
    "inconclusive on equivalent instance" "0.10?"
    (cell ~expected:`Equivalent Equivalence.No_information 0.1);
  Alcotest.(check string)
    "wrong verdict flagged" "0.10!"
    (cell ~expected:`Equivalent Equivalence.Not_equivalent 0.1);
  Alcotest.(check string)
    "wrong verdict flagged (other direction)" "0.10!"
    (cell ~expected:`Not_equivalent Equivalence.Equivalent 0.1)

let test_timeout_has_no_marker () =
  Alcotest.(check string)
    "timeout cell carries no verdict marker" ">10"
    (cell ~expected:`Not_equivalent Equivalence.Timed_out 10.8)

let suite =
  [
    Alcotest.test_case "bench-fmt: timeout cells clamp to the budget" `Quick
      test_timeout_clamped;
    Alcotest.test_case "bench-fmt: verdict markers" `Quick test_verdict_markers;
    Alcotest.test_case "bench-fmt: timeouts carry no marker" `Quick
      test_timeout_has_no_marker;
  ]
