(* Parallel portfolio checker tests.

   - 50-seed differential suite: the portfolio verdict must agree with
     the (complete) Combined strategy, and with ZX whenever ZX is
     conclusive, for jobs in {1, 2, 4};
   - sharded-stimuli determinism: the minimal refuting index is the same
     for any shard count, so counterexamples never depend on --jobs;
   - Rng.split_at stream pinning: the indexed child streams are frozen
     (changing them silently re-seeds every sharded counterexample);
   - cancellation: a pre-set stop flag aborts the DD and ZX checkers
     immediately, and a full portfolio run on a pair whose DD check needs
     tens of seconds returns within a small bound once simulation
     refutes (prompt cooperative cancellation, bounded joined
     wall-clock). *)

open Oqec_base
open Oqec_circuit
open Oqec_qcec

(* ------------------------------------------------ Rng stream pinning *)

(* Values computed once from the implementation and frozen: four draws of
   [Rng.int _ 1_000_000] from [Rng.split_at (Rng.make ~seed) i]. *)
let pinned_streams =
  [
    ((1, 0), [ 337454; 115391; 727088; 54571 ]);
    ((1, 1), [ 498414; 176885; 164047; 15010 ]);
    ((1, 7), [ 601536; 498242; 127936; 560658 ]);
    ((42, 0), [ 23514; 263810; 781800; 359977 ]);
    ((42, 5), [ 966733; 676528; 562802; 939220 ]);
    ((123, 31), [ 305814; 7972; 833180; 299717 ]);
  ]

(* Draw [k] ints in a defined order (List.map/init order is unspecified). *)
let draws rng k =
  let rec go acc k = if k = 0 then List.rev acc else go (Rng.int rng 1_000_000 :: acc) (k - 1) in
  go [] k

let test_split_at_pinned () =
  List.iter
    (fun ((seed, i), expected) ->
      let s = Rng.split_at (Rng.make ~seed) i in
      let got = draws s (List.length expected) in
      Alcotest.(check (list int))
        (Printf.sprintf "split_at (make ~seed:%d) %d stream" seed i)
        expected got)
    pinned_streams

let test_split_at_pure () =
  (* The parent state must not advance, and the child must not depend on
     how many siblings were split off before it. *)
  let parent = Rng.make ~seed:9 in
  let first = draws (Rng.split_at parent 3) 4 in
  ignore (draws (Rng.split_at parent 0) 4);
  ignore (draws (Rng.split_at parent 1) 4);
  let again = draws (Rng.split_at parent 3) 4 in
  Alcotest.(check (list int)) "split_at is a pure function of (state, i)" first again;
  let after_parent_use = Rng.int parent 1_000_000 in
  Alcotest.(check int)
    "parent stream unperturbed by split_at"
    (Rng.int (Rng.make ~seed:9) 1_000_000)
    after_parent_use

(* -------------------------------------- sharded-stimuli determinism *)

(* [c2] appends a Toffoli to [c1], so the pair differs exactly on the
   stimuli whose (post-X) control bits are both 1.  The first such
   stimulus index was computed from the pinned streams: seed 5 -> 4,
   seed 4 -> 14. *)
let toffoli_fault_pair () =
  let c1 = Circuit.x (Circuit.create 3) 0 in
  let c2 = Circuit.ccx c1 0 1 2 in
  (c1, c2)

let best_of_shards ~runs ~seed ~jobs c1 c2 =
  let best = Atomic.make max_int in
  for shard = 0 to jobs - 1 do
    ignore (Sim_checker.check_shard ~runs ~seed ~shard ~jobs ~best c1 c2)
  done;
  Atomic.get best

let test_shard_determinism () =
  let c1, c2 = toffoli_fault_pair () in
  List.iter
    (fun (seed, expected_index) ->
      List.iter
        (fun jobs ->
          Alcotest.(check int)
            (Printf.sprintf "seed %d, %d shard(s): minimal refuting index" seed jobs)
            expected_index
            (best_of_shards ~runs:16 ~seed ~jobs c1 c2))
        [ 1; 2; 3; 4; 5 ];
      (* The sequential checker reports the very same counterexample. *)
      let r = Sim_checker.check ~runs:16 ~seed c1 c2 in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: sequential note names stimulus #%d" seed expected_index)
        true
        (r.Equivalence.outcome = Equivalence.Not_equivalent
        && String.length r.Equivalence.note > 0
        &&
        let prefix = Printf.sprintf "(stimulus #%d refutes" expected_index in
        String.length r.Equivalence.note >= String.length prefix
        && String.sub r.Equivalence.note 0 (String.length prefix) = prefix))
    [ (5, 4); (4, 14) ]

(* ------------------------------------------- 50-seed differential suite *)

let conclusive = function
  | Equivalence.Equivalent | Equivalence.Not_equivalent -> true
  | Equivalence.No_information | Equivalence.Timed_out -> false

let portfolio_case seed =
  let rng = Rng.make ~seed in
  let n = 2 + Rng.int rng 3 in
  let c1 =
    Test_differential.random_circuit rng ~clifford_only:false n (6 + Rng.int rng 12)
  in
  let c2 = Test_differential.derive rng c1 in
  if Circuit.gate_count c1 = 0 then ()
  else begin
    let combined = Qcec.check ~strategy:Qcec.Combined ~seed ~timeout:30.0 c1 c2 in
    let zx = Qcec.check ~strategy:Qcec.Zx ~seed ~timeout:30.0 c1 c2 in
    List.iter
      (fun jobs ->
        let p = Qcec.check ~strategy:Qcec.Portfolio ~jobs ~seed ~timeout:30.0 c1 c2 in
        Alcotest.(check string)
          (Printf.sprintf "seed %d, jobs %d: portfolio agrees with combined" seed jobs)
          (Equivalence.outcome_to_string combined.Equivalence.outcome)
          (Equivalence.outcome_to_string p.Equivalence.outcome);
        if conclusive zx.Equivalence.outcome then
          Alcotest.(check string)
            (Printf.sprintf "seed %d, jobs %d: portfolio agrees with zx" seed jobs)
            (Equivalence.outcome_to_string zx.Equivalence.outcome)
            (Equivalence.outcome_to_string p.Equivalence.outcome);
        Alcotest.(check int)
          (Printf.sprintf "seed %d: breakdown records jobs" seed)
          jobs p.Equivalence.jobs;
        Alcotest.(check int)
          (Printf.sprintf "seed %d: one run per worker" seed)
          (jobs + 2)
          (List.length p.Equivalence.runs);
        Alcotest.(check int)
          (Printf.sprintf "seed %d: one engine_stats entry per worker" seed)
          (jobs + 2)
          (List.length p.Equivalence.engine_stats);
        if conclusive p.Equivalence.outcome then
          Alcotest.(check bool)
            (Printf.sprintf "seed %d: conclusive verdict names a winner" seed)
            true
            (p.Equivalence.winner <> None))
      [ 1; 2; 4 ]
  end

let test_portfolio_differential () =
  for seed = 1 to 50 do
    portfolio_case seed
  done

(* ------------------------------------------------------- cancellation *)

let test_preset_cancel () =
  let c1 = Decompose.elementary (Oqec_workloads.Workloads.qft 5) in
  let c2 = Circuit.x c1 0 in
  let flag = Atomic.make true in
  Alcotest.check_raises "alternating DD aborts on a pre-set stop flag"
    Equivalence.Cancelled (fun () ->
      ignore (Dd_checker.check_miter ~cancel:flag c1 c2));
  Alcotest.check_raises "reference DD aborts on a pre-set stop flag"
    Equivalence.Cancelled (fun () ->
      ignore (Dd_checker.check_reference ~cancel:flag c1 c2));
  Alcotest.check_raises "ZX aborts on a pre-set stop flag" Equivalence.Cancelled
    (fun () -> ignore (Zx_checker.check ~cancel:flag c1 c2))

(* Two unrelated 10-qubit reversible networks: the alternating-DD check
   needs well over ten seconds on this pair (the miter is far from the
   identity), while a single random stimulus refutes it almost
   instantly.  A portfolio round must therefore come back quickly — the
   joined wall-clock bound below is only met if the DD and ZX workers
   are cancelled promptly instead of running to completion. *)
let test_prompt_cancellation () =
  let gen seed =
    Decompose.elementary (Oqec_workloads.Workloads.random_reversible ~seed ~gates:200 10)
  in
  let c1 = gen 1 and c2 = gen 2 in
  let t0 = Mclock.now () in
  let r = Qcec.check ~strategy:Qcec.Portfolio ~jobs:2 ~seed:3 ~timeout:60.0 c1 c2 in
  let elapsed = Mclock.elapsed_since t0 in
  Alcotest.(check string)
    "simulation refutes the unrelated pair" "not equivalent"
    (Equivalence.outcome_to_string r.Equivalence.outcome);
  (match r.Equivalence.winner with
  | Some w ->
      Alcotest.(check string) "simulation wins the race" "simulation" w;
      let dd =
        List.find
          (fun cr -> cr.Equivalence.checker = "dd-proportional")
          r.Equivalence.runs
      in
      Alcotest.(check string)
        "the slow DD worker was cancelled" "(cancelled)" dd.Equivalence.run_note
  | None -> Alcotest.fail "race has no winner");
  Alcotest.(check bool)
    (Printf.sprintf "joined wall-clock bounded (%.2fs < 10s)" elapsed)
    true (elapsed < 10.0)

let suite =
  [
    Alcotest.test_case "rng: split_at streams pinned" `Quick test_split_at_pinned;
    Alcotest.test_case "rng: split_at is pure" `Quick test_split_at_pure;
    Alcotest.test_case "shards: minimal refuting index independent of jobs" `Quick
      test_shard_determinism;
    Alcotest.test_case "differential: portfolio agrees with combined/zx, 50 seeds"
      `Slow test_portfolio_differential;
    Alcotest.test_case "cancellation: pre-set flag aborts checkers" `Quick
      test_preset_cancel;
    Alcotest.test_case "cancellation: losers stop promptly after a winner" `Slow
      test_prompt_cancellation;
  ]
