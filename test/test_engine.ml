(* Execution-engine tests: report JSON well-formedness (including
   adversarial note strings), Chrome trace shape, per-checker counter
   presence, and the ZX peak-size fix.

   The JSON parser below is a deliberately strict, minimal recursive
   descent over the RFC 8259 grammar — just enough to certify that
   [report_to_json] / [Trace.to_chrome_json] emit syntactically valid
   JSON and that string escaping round-trips byte-exactly. *)

open Oqec_base
open Oqec_circuit
open Oqec_qcec

(* ------------------------------------------------- Minimal JSON parser *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let skip_ws () =
    while
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') -> true
      | _ -> false
    do
      advance ()
    done
  in
  let hex c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail "bad hex digit"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance ()
          | Some '/' -> Buffer.add_char buf '/'; advance ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance ()
          | Some 't' -> Buffer.add_char buf '\t'; advance ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let v =
                (hex s.[!pos] * 0x1000) + (hex s.[!pos + 1] * 0x100)
                + (hex s.[!pos + 2] * 0x10) + hex s.[!pos + 3]
              in
              pos := !pos + 4;
              (* The encoder only emits \u00XX for control bytes. *)
              if v > 0xff then fail "unexpected non-byte \\u escape"
              else Buffer.add_char buf (Char.chr v)
          | _ -> fail "bad escape");
          go ()
      | Some c when Char.code c < 0x20 -> fail "raw control character in string"
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((k, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); Arr [])
        else
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements (v :: acc)
            | Some ']' -> advance (); Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
    | Some 't' ->
        if !pos + 4 <= n && String.sub s !pos 4 = "true" then (pos := !pos + 4; Bool true)
        else fail "expected true"
    | Some 'f' ->
        if !pos + 5 <= n && String.sub s !pos 5 = "false" then (pos := !pos + 5; Bool false)
        else fail "expected false"
    | Some 'n' ->
        if !pos + 4 <= n && String.sub s !pos 4 = "null" then (pos := !pos + 4; Null)
        else fail "expected null"
    | _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let field obj name =
  match obj with
  | Obj kvs -> (
      match List.assoc_opt name kvs with
      | Some v -> v
      | None -> Alcotest.fail (Printf.sprintf "missing JSON field %S" name))
  | _ -> Alcotest.fail (Printf.sprintf "expected object around field %S" name)

(* -------------------------------------- json_string / report_to_json *)

(* Adversarial bytes: controls, quotes, backslashes, non-ASCII. *)
let nasty_string_gen =
  QCheck.Gen.(
    map
      (fun l -> String.concat "" l)
      (list_size (int_bound 30)
         (oneof
            [
              map (String.make 1) (char_range '\000' '\255');
              return "\"";
              return "\\";
              return "\n";
              return "\t";
              return "\027[31m";
              return "caf\xc3\xa9";
              return "\xe2\x88\x80x";
            ])))

let nasty_string_arb = QCheck.make ~print:String.escaped nasty_string_gen

let test_json_string_roundtrip =
  Helpers.qtest ~count:500 "json_string escapes round-trip byte-exactly"
    nasty_string_arb (fun s ->
      match parse_json (Equivalence.json_string s) with
      | Str s' -> s' = s
      | _ -> false)

let report_with ~note ~counters =
  {
    Equivalence.outcome = Equivalence.Not_equivalent;
    method_used = Equivalence.Portfolio;
    elapsed = 0.001;
    peak_size = 7;
    final_size = 3;
    simulations = 5;
    note;
    engine_stats =
      [ { Equivalence.engine = "simulation"; counters; dd = None } ];
    winner = Some "simulation";
    jobs = 2;
    runs =
      [
        {
          Equivalence.checker = "simulation-0";
          run_outcome = Equivalence.Not_equivalent;
          run_elapsed = 0.001;
          run_note = note;
        };
      ];
    certificate = None;
  }

let test_report_json_adversarial =
  Helpers.qtest ~count:300 "report_to_json stays valid JSON for adversarial notes"
    nasty_string_arb (fun note ->
      let r = report_with ~note ~counters: [ ("sim.stimuli", 5) ] in
      let j = parse_json (Equivalence.report_to_json r) in
      field j "note" = Str note
      && field j "winner" = Str "simulation"
      && field j "jobs" = Num 2.0
      &&
      match field j "engine_stats" with
      | Arr [ e ] -> field (field e "counters") "sim.stimuli" = Num 5.0
      | _ -> false)

let test_report_json_schema () =
  let g = Oqec_workloads.Workloads.ghz 3 in
  let g' = Oqec_compile.Compile.run (Oqec_compile.Architecture.linear 5) g in
  let r = Qcec.check ~strategy:Qcec.Portfolio ~jobs:2 ~seed:1 g g' in
  let j = parse_json (Equivalence.report_to_json r) in
  Alcotest.(check string)
    "outcome" "equivalent"
    (match field j "outcome" with Str s -> s | _ -> "?");
  (match field j "winner" with
  | Str _ -> ()
  | Null -> Alcotest.fail "conclusive portfolio run must name a winner"
  | _ -> Alcotest.fail "winner has the wrong JSON type");
  (match field j "runs" with
  | Arr runs ->
      Alcotest.(check int) "one run per worker" 4 (List.length runs);
      List.iter
        (fun r ->
          match (field r "checker", field r "outcome") with
          | Str _, Str _ -> ()
          | _ -> Alcotest.fail "run entry shape")
        runs
  | _ -> Alcotest.fail "runs must be an array");
  match field j "engine_stats" with
  | Arr entries ->
      Alcotest.(check int) "one engine_stats entry per worker" 4 (List.length entries);
      let dd_entry =
        List.find
          (fun e -> field e "engine" = Str "dd-proportional")
          entries
      in
      (match field dd_entry "counters" with
      | Obj kvs ->
          Alcotest.(check bool)
            "dd entry carries counters object" true
            (List.for_all (fun (_, v) -> match v with Num _ -> true | _ -> false) kvs)
      | _ -> Alcotest.fail "counters must be an object")
  | _ -> Alcotest.fail "engine_stats must be an array"

(* --------------------------------------------------- trace shape tests *)

let span_cats events =
  List.sort_uniq compare
    (List.filter_map
       (function
         | Engine.Trace.Span { cat; _ } -> Some cat
         | Engine.Trace.Count _ -> None)
       events)

let test_trace_shape () =
  let g = Decompose.elementary (Oqec_workloads.Workloads.qft 4) in
  let g' = Oqec_compile.Compile.run (Oqec_compile.Architecture.ring 6) g in
  let sink = Engine.Trace.create () in
  let r = Qcec.check ~strategy:Qcec.Portfolio ~jobs:2 ~seed:1 ~sink g g' in
  Alcotest.(check string)
    "portfolio verdict" "equivalent"
    (Equivalence.outcome_to_string r.Equivalence.outcome);
  let events = Engine.Trace.events sink in
  let cats = span_cats events in
  Alcotest.(check bool)
    (Printf.sprintf "at least 3 span categories (got %s)" (String.concat "," cats))
    true
    (List.length cats >= 3);
  Alcotest.(check bool) "engine spans present" true (List.mem "engine" cats);
  (* The Chrome export is valid JSON of the documented shape. *)
  let j = parse_json (Engine.Trace.to_chrome_json sink) in
  Alcotest.(check string)
    "displayTimeUnit" "ms"
    (match field j "displayTimeUnit" with Str s -> s | _ -> "?");
  match field j "traceEvents" with
  | Arr evs ->
      Alcotest.(check int) "event counts match" (List.length events) (List.length evs);
      List.iter
        (fun e ->
          match field e "ph" with
          | Str "X" -> (
              match (field e "ts", field e "dur", field e "cat") with
              | Num _, Num _, Str _ -> ()
              | _ -> Alcotest.fail "complete-span event shape")
          | Str "C" -> (
              match field (field e "args") "value" with
              | Num _ -> ()
              | _ -> Alcotest.fail "counter event must carry args.value")
          | _ -> Alcotest.fail "unexpected trace phase")
        evs
  | _ -> Alcotest.fail "traceEvents must be an array"

let counters_of name r =
  match
    List.find_opt (fun e -> e.Equivalence.engine = name) r.Equivalence.engine_stats
  with
  | Some e -> e.Equivalence.counters
  | None -> Alcotest.fail (Printf.sprintf "no engine_stats entry for %S" name)

let counter_value counters key = Option.value (List.assoc_opt key counters) ~default:0

let test_strategy_counters () =
  let g = Decompose.elementary (Oqec_workloads.Workloads.qft 4) in
  let g' = Oqec_compile.Compile.run (Oqec_compile.Architecture.ring 6) g in
  let dd = Qcec.check ~strategy:Qcec.Alternating g g' in
  Alcotest.(check bool)
    "dd-proportional counts gate applications" true
    (counter_value (counters_of "dd-proportional" dd) "dd.gates_applied" > 0);
  let zx = Qcec.check ~strategy:Qcec.Zx g g' in
  let zxc = counters_of "zx-calculus" zx in
  Alcotest.(check bool)
    "zx counts rewrite-rule firings" true
    (List.exists
       (fun (k, v) ->
         String.length k > 12 && String.sub k 0 12 = "zx.rewrites." && v > 0)
       zxc);
  let sim = Qcec.check ~strategy:Qcec.Simulation ~sim_runs:4 ~seed:1 g g' in
  Alcotest.(check int)
    "simulation counts stimuli" 4
    (counter_value (counters_of "simulation" sim) "sim.stimuli");
  let cliff = Oqec_workloads.Workloads.ghz 3 in
  let stab = Qcec.check ~strategy:Qcec.Clifford cliff cliff in
  Alcotest.(check bool)
    "stabilizer counts canonicalized rows" true
    (counter_value (counters_of "stabilizer" stab) "stab.rows_canonicalized" > 0)

(* ------------------------------------------------------- ZX peak size *)

let test_zx_graph_peak () =
  let open Oqec_zx in
  let g = Zx_graph.create () in
  let vs =
    List.init 5 (fun _ -> Zx_graph.add_vertex g Zx_graph.Z ~phase:Phase.zero)
  in
  Alcotest.(check int) "peak after growth" 5 (Zx_graph.peak_vertices g);
  List.iter (Zx_graph.remove_vertex g) vs;
  Alcotest.(check int) "live count drops" 0 (Zx_graph.num_vertices g);
  Alcotest.(check int) "peak survives removals" 5 (Zx_graph.peak_vertices g);
  ignore (Zx_graph.add_vertex g Zx_graph.Z ~phase:Phase.zero);
  Alcotest.(check int) "regrowth below peak leaves it" 5 (Zx_graph.peak_vertices g);
  let h = Zx_graph.copy g in
  Alcotest.(check int) "copy preserves the peak" 5 (Zx_graph.peak_vertices h)

let test_zx_report_peak () =
  (* Boundary pivoting / gadgetization grow the graph transiently, so the
     true running peak strictly exceeds both the initial and the final
     spider count on a T-heavy pair; before the fix, peak_size was
     computed as max(initial, final) and missed the transient. *)
  let g = Decompose.elementary (Oqec_workloads.Workloads.qft 4) in
  let g' = Oqec_compile.Compile.run (Oqec_compile.Architecture.ring 6) g in
  let r = Qcec.check ~strategy:Qcec.Zx g g' in
  Alcotest.(check bool)
    (Printf.sprintf "peak %d >= final %d" r.Equivalence.peak_size
       r.Equivalence.final_size)
    true
    (r.Equivalence.peak_size >= r.Equivalence.final_size);
  Alcotest.(check bool)
    (Printf.sprintf "peak %d > 0" r.Equivalence.peak_size)
    true
    (r.Equivalence.peak_size > 0)

let suite =
  [
    test_json_string_roundtrip;
    test_report_json_adversarial;
    Alcotest.test_case "report_to_json: portfolio schema" `Quick test_report_json_schema;
    Alcotest.test_case "trace: chrome shape, >= 3 span categories" `Quick
      test_trace_shape;
    Alcotest.test_case "counters: every strategy reports its engine" `Quick
      test_strategy_counters;
    Alcotest.test_case "zx_graph: peak_vertices is a running max" `Quick
      test_zx_graph_peak;
    Alcotest.test_case "zx report: peak covers transient growth" `Quick
      test_zx_report_peak;
  ]
