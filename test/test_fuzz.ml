(* The fuzzing subsystem itself: generator well-formedness, metamorphic
   mutations validated against the dense reference, (seed, index)
   reproducibility, the differential oracle's contracts (including the
   deliberate break hook), the shrinker and the regression corpus. *)

open Oqec_base
open Oqec_circuit
open Oqec_fuzz
module Qasm = Oqec_qasm.Qasm
module Workloads = Oqec_workloads.Workloads

let with_break name f =
  Atomic.set Fuzz_oracle.break_hook (Some name);
  Fun.protect ~finally:(fun () -> Atomic.set Fuzz_oracle.break_hook None) f

let align_equivalent a b =
  let a, b = Oqec_qcec.Flatten.align a b in
  Unitary.equivalent a b

(* ------------------------------------------------------------ Generator *)

let test_generator_profiles () =
  List.iter
    (fun profile ->
      let rng = Rng.make ~seed:11 in
      for i = 0 to 9 do
        let n = 2 + (i mod 5) in
        let c = Fuzz_gen.circuit profile rng ~num_qubits:n ~gates:15 in
        Alcotest.(check int)
          (Fuzz_gen.profile_to_string profile ^ " width")
          n (Circuit.num_qubits c);
        Alcotest.(check int)
          (Fuzz_gen.profile_to_string profile ^ " size")
          15
          (List.length (Circuit.ops c));
        (* Every generated circuit must survive a QASM round-trip: the
           corpus persists pairs as QASM files. *)
        let c' = Qasm.circuit_of_string (Qasm.to_string c) in
        if n <= 5 then
          Alcotest.(check bool) "round-trip preserves semantics" true (Unitary.equivalent c c')
      done)
    Fuzz_gen.all_profiles

let test_profile_names () =
  List.iter
    (fun p ->
      Alcotest.(check bool)
        "profile name round-trips" true
        (Fuzz_gen.profile_of_string (Fuzz_gen.profile_to_string p) = Some p))
    Fuzz_gen.all_profiles;
  Alcotest.(check bool) "unknown rejected" true (Fuzz_gen.profile_of_string "qeg" = None)

(* ------------------------------------------------------------ Mutations *)

(* Every preserving mutation must keep the effective unitary equal (up to
   global phase); fault injection must provably change it. *)
let test_preserving_mutations () =
  List.iter
    (fun kind ->
      let applied = ref 0 in
      let rng = Rng.make ~seed:23 in
      for i = 0 to 29 do
        let n = 2 + (i mod 3) in
        let c = Fuzz_gen.circuit Fuzz_gen.Mixed (Rng.split_at rng i) ~num_qubits:n ~gates:10 in
        match Fuzz_mutate.apply kind (Rng.split_at rng (1000 + i)) c with
        | None -> ()
        | Some c' ->
            incr applied;
            Alcotest.(check bool)
              (Fuzz_mutate.kind_to_string kind ^ " preserves equivalence")
              true (align_equivalent c c')
      done;
      Alcotest.(check bool)
        (Fuzz_mutate.kind_to_string kind ^ " applied at least once")
        true (!applied > 0))
    Fuzz_mutate.preserving_kinds

let test_fault_injection_breaks () =
  let rng = Rng.make ~seed:31 in
  let broken = ref 0 in
  for i = 0 to 29 do
    let n = 2 + (i mod 3) in
    let c = Fuzz_gen.circuit Fuzz_gen.Mixed (Rng.split_at rng i) ~num_qubits:n ~gates:12 in
    match Workloads.inject_fault ~seed:(100 + i) c with
    | None -> ()
    | Some (c', fault) ->
        incr broken;
        Alcotest.(check bool)
          (Workloads.fault_to_string fault ^ " breaks equivalence")
          false (align_equivalent c c')
  done;
  Alcotest.(check bool) "faults injected" true (!broken > 20)

(* -------------------------------------------------------- Reproducibility *)

let config_of ?(runs = 5) ?(seed = 5) () = { Fuzz.default_config with Fuzz.runs; seed }

let case_fingerprint (c : Fuzz.case) =
  Qasm.to_string c.Fuzz.left ^ "\x00" ^ Qasm.to_string c.Fuzz.right

let test_case_reproducible () =
  let config = config_of () in
  for i = 0 to 19 do
    let a = Fuzz.generate_case config i in
    let b = Fuzz.generate_case config i in
    Alcotest.(check string)
      (Printf.sprintf "case %d is a pure function of (seed, index)" i)
      (case_fingerprint a) (case_fingerprint b);
    Alcotest.(check bool)
      "expectation is reproducible too" true
      (a.Fuzz.expected = b.Fuzz.expected && a.Fuzz.mutations = b.Fuzz.mutations)
  done;
  (* Distinct indices decorrelate. *)
  let a = Fuzz.generate_case config 0 and b = Fuzz.generate_case config 1 in
  Alcotest.(check bool)
    "different indices give different cases" true
    (case_fingerprint a <> case_fingerprint b)

(* --------------------------------------------------------------- Oracle *)

let test_oracle_clean () =
  let g = Workloads.ghz 3 in
  let g' = Oqec_compile.Compile.run (Oqec_compile.Architecture.linear 4) g in
  let r = Fuzz_oracle.run ~expected:Fuzz_oracle.Expect_equivalent g g' in
  Alcotest.(check bool) "no violation on a sound pair" true (r.Fuzz_oracle.violation = None);
  Alcotest.(check bool) "dense truth computed" true (r.Fuzz_oracle.truth = Some true)

let test_oracle_expectation_violation () =
  (* Claiming non-equivalence of two identical circuits is a metamorphic
     violation the oracle must flag even though every checker is sound. *)
  let g = Workloads.ghz 3 in
  let r = Fuzz_oracle.run ~expected:Fuzz_oracle.Expect_not_equivalent g g in
  Alcotest.(check bool) "expectation violation flagged" true (r.Fuzz_oracle.violation <> None)

let test_oracle_break_hook () =
  (* A corrupted checker must be caught on an equivalent pair, a
     non-equivalent pair, or both — sim's honest answer on an equivalent
     pair is No_information, so only the refutation side exposes it. *)
  let g = Workloads.ghz 3 in
  let broken = Circuit.x g 0 in
  List.iter
    (fun name ->
      with_break name (fun () ->
          let eq = Fuzz_oracle.run ~expected:Fuzz_oracle.Expect_equivalent g g in
          let ne = Fuzz_oracle.run ~expected:Fuzz_oracle.Expect_not_equivalent g broken in
          Alcotest.(check bool)
            (name ^ " corruption detected")
            true
            (eq.Fuzz_oracle.violation <> None || ne.Fuzz_oracle.violation <> None)))
    [ "dd"; "zx"; "sim"; "stab" ]

let test_oracle_checker_subset () =
  let g = Workloads.ghz 3 in
  let r = Fuzz_oracle.run ~checkers:[ "dd"; "zx" ] ~expected:Fuzz_oracle.Expect_unknown g g in
  Alcotest.(check int) "two checkers ran" 2 (List.length r.Fuzz_oracle.verdicts)

(* ------------------------------------------------------------- Shrinking *)

let test_shrink_minimises () =
  (* A single fault buried in a large random circuit: the dense-reference
     predicate keeps holding while the shrinker strips everything
     irrelevant away. *)
  let rng = Rng.make ~seed:47 in
  let c = Fuzz_gen.circuit Fuzz_gen.Clifford rng ~num_qubits:4 ~gates:30 in
  match Workloads.inject_fault ~seed:3 c with
  | None -> Alcotest.fail "fault injection failed on a 30-gate circuit"
  | Some (c', _) ->
      let still_fails a b = not (align_equivalent a b) in
      let a, b, stats = Fuzz_shrink.shrink ~still_fails c c' in
      Alcotest.(check bool) "shrunk pair still fails" true (still_fails a b);
      let gates = List.length (Circuit.ops a) + List.length (Circuit.ops b) in
      Alcotest.(check bool)
        (Printf.sprintf "shrunk to <= 10 gates (got %d)" gates)
        true (gates <= 10);
      Alcotest.(check bool) "steps were committed" true (stats.Fuzz_shrink.committed > 0)

let test_shrink_noop_on_passing_pair () =
  let g = Workloads.ghz 3 in
  let a, b, stats = Fuzz_shrink.shrink ~still_fails:(fun _ _ -> false) g g in
  Alcotest.(check string) "left unchanged" (Qasm.to_string g) (Qasm.to_string a);
  Alcotest.(check string) "right unchanged" (Qasm.to_string g) (Qasm.to_string b);
  Alcotest.(check int) "no steps committed" 0 stats.Fuzz_shrink.committed

let test_shrink_budget () =
  let calls = ref 0 in
  let still_fails _ _ =
    incr calls;
    true
  in
  let c = Fuzz_gen.circuit Fuzz_gen.Clifford (Rng.make ~seed:3) ~num_qubits:3 ~gates:20 in
  let _, _, stats = Fuzz_shrink.shrink ~budget:10 ~still_fails c c in
  Alcotest.(check bool) "budget respected" true (stats.Fuzz_shrink.evaluations <= 10);
  Alcotest.(check bool) "call count matches" true (!calls <= 10)

(* ---------------------------------------------------------------- Corpus *)

let in_temp_dir f =
  let dir = Filename.temp_file "oqec-corpus" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let test_corpus_roundtrip () =
  in_temp_dir (fun dir ->
      let g = Workloads.ghz 3 in
      let g' = Workloads.qft 3 in
      let id = Fuzz_corpus.id_of_pair g g' in
      let entry =
        {
          Fuzz_corpus.id;
          expected = Fuzz_oracle.Expect_unknown;
          seed = 9;
          index = 4;
          stimulus = Some 5;
          note = "a note with \"quotes\" and\nnewlines";
        }
      in
      Alcotest.(check bool) "first save succeeds" true (Fuzz_corpus.save ~dir entry g g');
      Alcotest.(check bool) "duplicate rejected" false (Fuzz_corpus.save ~dir entry g g');
      match Fuzz_corpus.load dir with
      | [ e ] ->
          Alcotest.(check string) "id" id e.Fuzz_corpus.id;
          Alcotest.(check int) "seed" 9 e.Fuzz_corpus.seed;
          Alcotest.(check int) "index" 4 e.Fuzz_corpus.index;
          Alcotest.(check (option int)) "stimulus" (Some 5) e.Fuzz_corpus.stimulus;
          Alcotest.(check bool)
            "expected" true
            (e.Fuzz_corpus.expected = Fuzz_oracle.Expect_unknown);
          let a, b = Fuzz_corpus.load_pair dir e in
          Alcotest.(check bool) "left circuit round-trips" true (Unitary.equivalent g a);
          Alcotest.(check bool) "right circuit round-trips" true (Unitary.equivalent g' b)
      | es -> Alcotest.failf "expected one entry, got %d" (List.length es))

let test_corpus_id_stable () =
  let g = Workloads.ghz 3 and g' = Workloads.qft 3 in
  Alcotest.(check string)
    "id depends only on content"
    (Fuzz_corpus.id_of_pair g g') (Fuzz_corpus.id_of_pair g g');
  Alcotest.(check bool)
    "order matters" true
    (Fuzz_corpus.id_of_pair g g' <> Fuzz_corpus.id_of_pair g' g)

(* Witness entries pin the refuting stimulus index so a replay re-checks
   it directly instead of re-searching the stream.  Old manifests
   without the field must still load, and a recorded stimulus that
   stopped refuting must be flagged. *)
let test_corpus_stimulus_recorded () =
  in_temp_dir (fun dir ->
      let g = Workloads.ghz 3 in
      let g' = Circuit.x g 0 in
      (* the oracle surfaces the refuting stimulus of the sim witness *)
      let result = Fuzz_oracle.run ~expected:Fuzz_oracle.Expect_unknown ~seed:9 g g' in
      let stimulus = Fuzz_oracle.refuting_stimulus result in
      Alcotest.(check bool) "oracle reports a refuting stimulus" true (stimulus <> None);
      let entry =
        {
          Fuzz_corpus.id = Fuzz_corpus.id_of_pair g g';
          expected = Fuzz_oracle.Expect_not_equivalent;
          seed = 9;
          index = 0;
          stimulus;
          note = "witness regression";
        }
      in
      Alcotest.(check bool) "saved" true (Fuzz_corpus.save ~dir entry g g');
      let config =
        { (config_of ~runs:0 ~seed:9 ()) with Fuzz.runs = 0; corpus = Some dir }
      in
      let replay = Fuzz.run config in
      Alcotest.(check int) "recorded stimulus still refutes" 0 replay.Fuzz.corpus_failures;
      (* a stale stimulus on an equivalent pair is caught by the direct
         re-check, before the oracle even runs *)
      let entry' =
        { entry with Fuzz_corpus.id = Fuzz_corpus.id_of_pair g g; note = "stale" }
      in
      Alcotest.(check bool) "stale entry saved" true (Fuzz_corpus.save ~dir entry' g g);
      let stale = Fuzz.run config in
      Alcotest.(check int) "stale stimulus flagged" 1 stale.Fuzz.corpus_failures;
      Alcotest.(check bool)
        "violation names the stimulus" true
        (List.exists
           (fun v ->
             let d = v.Fuzz.v_description in
             let n = String.length d and pat = "no longer refutes" in
             let m = String.length pat in
             let rec go i = i + m <= n && (String.sub d i m = pat || go (i + 1)) in
             go 0)
           stale.Fuzz.violations);
      (* manifests predating the field load with [stimulus = None] *)
      let oc =
        open_out_gen [ Open_append ] 0o644 (Fuzz_corpus.manifest_path dir)
      in
      output_string oc
        "{\"id\":\"case-legacy\",\"expected\":\"unknown\",\"seed\":1,\"index\":2,\"note\":\"old\"}\n";
      close_out oc;
      match List.rev (Fuzz_corpus.load dir) with
      | legacy :: _ ->
          Alcotest.(check string) "legacy id" "case-legacy" legacy.Fuzz_corpus.id;
          Alcotest.(check (option int)) "legacy stimulus" None legacy.Fuzz_corpus.stimulus
      | [] -> Alcotest.fail "legacy entry did not load")

(* ------------------------------------------------------------ End to end *)

let test_run_clean () =
  let config = config_of ~runs:10 ~seed:3 () in
  let stats = Fuzz.run config in
  Alcotest.(check int) "all cases ran" 10 stats.Fuzz.cases;
  Alcotest.(check int) "no failures" 0 stats.Fuzz.failures;
  Alcotest.(check bool) "mutations exercised" true (stats.Fuzz.mutations_applied > 0)

let test_run_only () =
  let config = { (config_of ~runs:50 ~seed:3 ()) with Fuzz.only = Some 7 } in
  let stats = Fuzz.run config in
  Alcotest.(check int) "--only runs exactly one case" 1 stats.Fuzz.cases

let test_run_break_hook_end_to_end () =
  with_break "zx" (fun () ->
      in_temp_dir (fun dir ->
          let config =
            {
              (config_of ~runs:2 ~seed:7 ()) with
              Fuzz.shrink = true;
              corpus = Some dir;
            }
          in
          let stats = Fuzz.run config in
          Alcotest.(check bool) "violations found" true (stats.Fuzz.failures > 0);
          Alcotest.(check bool) "counterexamples persisted" true (stats.Fuzz.corpus_new > 0);
          List.iter
            (fun v ->
              Alcotest.(check bool)
                "shrunk counterexample is tiny" true
                (v.Fuzz.v_gates <= 10);
              Alcotest.(check bool)
                "repro command names the case" true
                (String.length v.Fuzz.v_repro > 0))
            stats.Fuzz.violations;
          (* The persisted corpus re-catches the bug on replay... *)
          let replay = Fuzz.run { config with Fuzz.runs = 0; only = None } in
          Alcotest.(check bool)
            "replay catches the corrupted checker" true
            (replay.Fuzz.corpus_failures > 0);
          (* ...and passes once the bug is gone. *)
          Atomic.set Fuzz_oracle.break_hook None;
          let fixed = Fuzz.run { config with Fuzz.runs = 0; only = None } in
          Alcotest.(check int) "replay clean after the fix" 0 fixed.Fuzz.corpus_failures))

let test_stats_json_shape () =
  let config = config_of ~runs:3 ~seed:3 () in
  let stats = Fuzz.run config in
  let json = Fuzz.stats_to_json config stats in
  let contains hay needle =
    let n = String.length hay and m = String.length needle in
    let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true (contains json needle))
    [ "\"schema\":\"oqec-fuzz/1\""; "\"cases\":3"; "\"failures\":0"; "\"violations\":[]" ]

let suite =
  [
    Alcotest.test_case "generator: profiles well-formed + printable" `Quick
      test_generator_profiles;
    Alcotest.test_case "generator: profile names" `Quick test_profile_names;
    Alcotest.test_case "mutations: preserving kinds preserve" `Quick test_preserving_mutations;
    Alcotest.test_case "mutations: faults break" `Quick test_fault_injection_breaks;
    Alcotest.test_case "cases: reproducible from (seed, index)" `Quick test_case_reproducible;
    Alcotest.test_case "oracle: clean pair" `Quick test_oracle_clean;
    Alcotest.test_case "oracle: expectation violation" `Quick test_oracle_expectation_violation;
    Alcotest.test_case "oracle: break hook detected" `Quick test_oracle_break_hook;
    Alcotest.test_case "oracle: checker subset" `Quick test_oracle_checker_subset;
    Alcotest.test_case "shrink: minimises failing pair" `Quick test_shrink_minimises;
    Alcotest.test_case "shrink: no-op on passing pair" `Quick test_shrink_noop_on_passing_pair;
    Alcotest.test_case "shrink: budget respected" `Quick test_shrink_budget;
    Alcotest.test_case "corpus: save/load round-trip" `Quick test_corpus_roundtrip;
    Alcotest.test_case "corpus: content-derived ids" `Quick test_corpus_id_stable;
    Alcotest.test_case "corpus: refuting stimulus recorded and re-checked" `Quick
      test_corpus_stimulus_recorded;
    Alcotest.test_case "run: clean end to end" `Quick test_run_clean;
    Alcotest.test_case "run: --only isolates one case" `Quick test_run_only;
    Alcotest.test_case "run: break hook end to end" `Quick test_run_break_hook_end_to_end;
    Alcotest.test_case "run: JSON stats shape" `Quick test_stats_json_shape;
  ]
