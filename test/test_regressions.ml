(* Regression tests for bugs found during development, plus edge cases of
   the newer rewrite rules. *)

open Oqec_base
open Oqec_circuit
open Oqec_zx
open Oqec_qcec

(* fidelity_to_identity divided by [1 lsl n], which overflows native ints
   beyond 62 qubits — a near-identity 65-qubit miter then reported a
   bogus fidelity and verified as equivalent. *)
let test_wide_register_fidelity () =
  let module Dd = Oqec_dd.Dd in
  let module Dd_circuit = Oqec_dd.Dd_circuit in
  let n = 65 in
  let pkg = Dd.create () in
  let id = Dd.identity pkg n in
  Alcotest.(check (float 1e-9)) "identity fidelity" 1.0 (Dd.fidelity_to_identity ~n id);
  (* A small but non-negligible rotation must not look like the identity. *)
  let tiny = Circuit.p (Circuit.create n) (Phase.of_pi_fraction 1 512) 40 in
  let dd = Dd_circuit.of_circuit pkg tiny in
  Alcotest.(check bool) "tiny rotation detected" true
    (Dd.fidelity_to_identity ~n dd < 1.0 -. 1e-9);
  Alcotest.(check bool) "not the identity node" false (Dd.is_identity pkg n dd)

let test_wide_register_check () =
  let n = 65 in
  let g = Circuit.create n in
  let g' = Circuit.p (Circuit.create n) (Phase.of_pi_fraction 1 512) 40 in
  let r = Qcec.check ~strategy:Qcec.Alternating g g' in
  Alcotest.(check bool) "non-equivalence detected at width 65" true
    (r.Equivalence.outcome = Equivalence.Not_equivalent)

(* kets_bits must agree with kets on narrow registers. *)
let test_kets_bits () =
  let module Dd = Oqec_dd.Dd in
  let module Dd_export = Oqec_dd.Dd_export in
  let pkg = Dd.create () in
  let a = Dd.kets pkg 4 11 in
  let b = Dd.kets_bits pkg 4 (fun q -> (11 lsr q) land 1 = 1) in
  Alcotest.(check bool) "same node" true (a.Oqec_dd.Dd.node == b.Oqec_dd.Dd.node)

(* The Pauli-leaf (state copy) rule must preserve semantics. *)
let test_pauli_leaf_rule () =
  let check_case leaf_phase =
    (* Build: in - v -h- w -h- x - out with a leaf hanging off the
       interior spider w. *)
    let g = Zx_graph.create () in
    let inp = Zx_graph.add_vertex g (Zx_graph.B_in 0) ~phase:Phase.zero in
    let out = Zx_graph.add_vertex g (Zx_graph.B_out 0) ~phase:Phase.zero in
    let v = Zx_graph.add_vertex g Zx_graph.Z ~phase:Phase.quarter_pi in
    let w = Zx_graph.add_vertex g Zx_graph.Z ~phase:(Phase.of_float 0.3) in
    let x = Zx_graph.add_vertex g Zx_graph.Z ~phase:Phase.half_pi in
    let leaf = Zx_graph.add_vertex g Zx_graph.Z ~phase:leaf_phase in
    Zx_graph.add_edge g inp v Zx_graph.Simple;
    Zx_graph.add_edge g v w Zx_graph.Had;
    Zx_graph.add_edge g w x Zx_graph.Had;
    Zx_graph.add_edge g x out Zx_graph.Simple;
    Zx_graph.add_edge g w leaf Zx_graph.Had;
    let before = Zx_tensor.matrix g in
    let n = Zx_simplify.pauli_leaf_simp g in
    Alcotest.(check bool) "rule fired" true (n > 0);
    Alcotest.(check bool)
      (Format.asprintf "semantics preserved (leaf %a)" Phase.pp leaf_phase)
      true
      (Zx_tensor.proportional before (Zx_tensor.matrix g))
  in
  check_case Phase.zero;
  check_case Phase.pi

(* Gadget axis normalisation (pi axis = 0 axis with negated leaf). *)
let test_gadget_axis_normalisation () =
  let g = Zx_graph.create () in
  let inp = Zx_graph.add_vertex g (Zx_graph.B_in 0) ~phase:Phase.zero in
  let out = Zx_graph.add_vertex g (Zx_graph.B_out 0) ~phase:Phase.zero in
  let w = Zx_graph.add_vertex g Zx_graph.Z ~phase:Phase.zero in
  let axis = Zx_graph.add_vertex g Zx_graph.Z ~phase:Phase.pi in
  let leaf = Zx_graph.add_vertex g Zx_graph.Z ~phase:Phase.quarter_pi in
  Zx_graph.add_edge g inp w Zx_graph.Simple;
  Zx_graph.add_edge g w out Zx_graph.Simple;
  Zx_graph.add_edge g w axis Zx_graph.Had;
  Zx_graph.add_edge g axis leaf Zx_graph.Had;
  let before = Zx_tensor.matrix g in
  ignore (Zx_simplify.gadget_simp g);
  Alcotest.(check bool) "axis now zero" true (Phase.is_zero (Zx_graph.phase g axis));
  Alcotest.(check bool) "leaf negated" true
    (Phase.equal (Zx_graph.phase g leaf) (Phase.neg Phase.quarter_pi));
  Alcotest.(check bool) "semantics preserved" true
    (Zx_tensor.proportional before (Zx_tensor.matrix g))

(* Gadget merging: two T-gadgets on the same support fuse into an S. *)
let test_gadget_merge_semantics () =
  let build () =
    let g = Zx_graph.create () in
    let inp = Zx_graph.add_vertex g (Zx_graph.B_in 0) ~phase:Phase.zero in
    let out = Zx_graph.add_vertex g (Zx_graph.B_out 0) ~phase:Phase.zero in
    let w1 = Zx_graph.add_vertex g Zx_graph.Z ~phase:Phase.zero in
    let w2 = Zx_graph.add_vertex g Zx_graph.Z ~phase:Phase.zero in
    Zx_graph.add_edge g inp w1 Zx_graph.Simple;
    Zx_graph.add_edge g w1 w2 Zx_graph.Had;
    Zx_graph.add_edge g w2 out Zx_graph.Simple;
    let gadget phase =
      let axis = Zx_graph.add_vertex g Zx_graph.Z ~phase:Phase.zero in
      let leaf = Zx_graph.add_vertex g Zx_graph.Z ~phase in
      Zx_graph.add_edge g axis leaf Zx_graph.Had;
      Zx_graph.add_edge_smart g axis w1 Zx_graph.Had;
      Zx_graph.add_edge_smart g axis w2 Zx_graph.Had
    in
    gadget Phase.quarter_pi;
    gadget Phase.quarter_pi;
    g
  in
  let g = build () in
  let before = Zx_tensor.matrix g in
  let merged = Zx_simplify.gadget_simp g in
  Alcotest.(check bool) "merged" true (merged > 0);
  Alcotest.(check bool) "semantics preserved" true
    (Zx_tensor.proportional before (Zx_tensor.matrix g))

(* The miter must be lowered before inversion so it telescopes; a
   three-control gate (with its recursive decomposition) exercises it. *)
let test_c3z_self_miter_reduces () =
  let c3z = Circuit.add (Circuit.create 4) (Circuit.Ctrl ([ 0; 1; 2 ], Gate.Z, 3)) in
  let d = Zx_circuit.of_miter c3z c3z in
  ignore (Zx_simplify.full_reduce d);
  match Zx_simplify.extract_permutation d with
  | Some p -> Alcotest.(check bool) "identity" true (Perm.is_identity p)
  | None -> Alcotest.fail "c3z self-miter did not reduce"

(* Phase gadgets must never be pivoted (that loops); the paper-level
   observable is simply that full_reduce terminates quickly on a
   T-heavy miter. *)
let test_gadget_pivot_termination () =
  let c =
    Circuit.add (Circuit.create 4) (Circuit.Ctrl ([ 0; 1; 2 ], Gate.X, 3))
  in
  let c = Circuit.t_gate (Circuit.h c 2) 1 in
  let broken = Circuit.t_gate c 0 in
  let d = Zx_circuit.of_miter c broken in
  let t0 = Mclock.now () in
  let finished = Zx_simplify.full_reduce d in
  Alcotest.(check bool) "terminates" true finished;
  Alcotest.(check bool) "fast" true (Mclock.elapsed_since t0 < 5.0)

(* QASM layout comments: malformed ones are ignored, wrong-size ones too. *)
let test_layout_comment_robustness () =
  let src = "// oqec:layout 1,0\nOPENQASM 2.0;\nqreg q[3];\nh q[0];\n" in
  let c = (Oqec_qasm.Qasm.parse_string src).Oqec_qasm.Qasm.circuit in
  Alcotest.(check bool) "wrong size ignored" true (Circuit.initial_layout c = None);
  let src2 = "// oqec:layout banana\nOPENQASM 2.0;\nqreg q[2];\nh q[0];\n" in
  let c2 = (Oqec_qasm.Qasm.parse_string src2).Oqec_qasm.Qasm.circuit in
  Alcotest.(check bool) "garbage ignored" true (Circuit.initial_layout c2 = None);
  let src3 = "// oqec:layout 1,0\nOPENQASM 2.0;\nqreg q[2];\nh q[0];\n" in
  let c3 = (Oqec_qasm.Qasm.parse_string src3).Oqec_qasm.Qasm.circuit in
  match Circuit.initial_layout c3 with
  | Some p -> Alcotest.(check bool) "parsed" true (Perm.equal p (Perm.of_array [| 1; 0 |]))
  | None -> Alcotest.fail "layout comment lost"

(* equal_up_to_phase must anchor the phase at one fixed position
   (regression: picking each matrix's own largest entry broke on ties). *)
let test_phase_anchor () =
  let m = Dmatrix.make 2 2 (fun i j -> if i = j then Cx.e_i (0.3 *. float_of_int (i + 1)) else Cx.zero) in
  let m' = Dmatrix.scale (Cx.e_i 1.234) m in
  Alcotest.(check bool) "diagonal phases" true (Dmatrix.equal_up_to_phase m m')

(* Controlled rotations invert only up to a controlled sign through
   inverse_op (angles are modulo 2*pi, rotations have period 4*pi); the
   checkers must lower them before inverting, and the optimizer must not
   cancel such pairs. *)
let test_controlled_rotation_inversion () =
  let cry = Circuit.add (Circuit.create 2) (Circuit.Ctrl ([ 0 ], Gate.Ry (Phase.of_float 0.7), 1)) in
  (* Raw inverse_op is NOT the exact inverse... *)
  let naive = Circuit.add cry (Circuit.inverse_op (List.hd (Circuit.ops cry))) in
  Alcotest.(check bool) "naive inversion leaves a controlled sign" false
    (Dmatrix.equal_up_to_phase ~tol:1e-8 (Unitary.unitary naive) (Dmatrix.identity 4));
  (* ...but the checkers handle it by lowering first. *)
  let w = Oqec_workloads.Workloads.w_state 4 in
  let w' = Oqec_compile.Compile.run (Oqec_compile.Architecture.linear 5) w in
  Alcotest.(check bool) "dense ground truth" true
    (Unitary.equivalent (Circuit.embed w ~num_qubits:5) w');
  let r = Qcec.check ~strategy:Qcec.Alternating w w' in
  Alcotest.(check bool) "alternating agrees" true
    (r.Equivalence.outcome = Equivalence.Equivalent)

let test_optimizer_no_controlled_rotation_cancel () =
  let a = Phase.of_float 0.7 in
  let c = Circuit.create 2 in
  let c = Circuit.add c (Circuit.Ctrl ([ 0 ], Gate.Ry a, 1)) in
  let c = Circuit.add c (Circuit.Ctrl ([ 0 ], Gate.Ry (Phase.neg a), 1)) in
  let o = Oqec_compile.Optimize.optimize c in
  (* Cancelling would change the unitary by a controlled sign. *)
  Alcotest.(check bool) "semantics preserved" true
    (Dmatrix.equal_up_to_phase ~tol:1e-8 (Unitary.unitary c) (Unitary.unitary o))

let suite =
  [
    Alcotest.test_case "controlled rotation inversion" `Quick
      test_controlled_rotation_inversion;
    Alcotest.test_case "optimizer skips controlled-rotation pairs" `Quick
      test_optimizer_no_controlled_rotation_cancel;
    Alcotest.test_case "65-qubit fidelity (int overflow)" `Quick test_wide_register_fidelity;
    Alcotest.test_case "65-qubit non-equivalence" `Quick test_wide_register_check;
    Alcotest.test_case "kets_bits consistency" `Quick test_kets_bits;
    Alcotest.test_case "pauli leaf rule" `Quick test_pauli_leaf_rule;
    Alcotest.test_case "gadget axis normalisation" `Quick test_gadget_axis_normalisation;
    Alcotest.test_case "gadget merge semantics" `Quick test_gadget_merge_semantics;
    Alcotest.test_case "c3z self-miter telescopes" `Quick test_c3z_self_miter_reduces;
    Alcotest.test_case "gadget pivot terminates" `Quick test_gadget_pivot_termination;
    Alcotest.test_case "layout comment robustness" `Quick test_layout_comment_robustness;
    Alcotest.test_case "phase anchoring in equal_up_to_phase" `Quick test_phase_anchor;
  ]
