(* Compilation as a metamorphic transformation: routing a random circuit
   onto a random coupling map must preserve its effective unitary, and
   the differential oracle must agree — every conclusive checker says
   Equivalent, none refutes.  This fuzzes the compiler and the checkers
   against each other in one pass. *)

open Oqec_base
open Oqec_circuit
open Oqec_fuzz
module Arch = Oqec_compile.Architecture
module Compile = Oqec_compile.Compile

let architectures n =
  [ Arch.linear n; Arch.linear (n + 2); Arch.ring n; Arch.ring (n + 1);
    Arch.grid ~rows:2 ~cols:((n + 1) / 2) ]

let test_compiled_equivalent_dense () =
  let rng = Rng.make ~seed:211 in
  for i = 0 to 14 do
    let n = 2 + (i mod 3) in
    let c = Fuzz_gen.circuit Fuzz_gen.Clifford_t (Rng.split_at rng i) ~num_qubits:n ~gates:12 in
    let archs = architectures n in
    let arch = List.nth archs (i mod List.length archs) in
    let compiled = Compile.run arch c in
    let a, b = Oqec_qcec.Flatten.align c compiled in
    Alcotest.(check bool)
      (Printf.sprintf "case %d: compiled onto %s is equivalent" i (Arch.name arch))
      true (Unitary.equivalent a b)
  done

let test_compiled_through_oracle () =
  let rng = Rng.make ~seed:223 in
  for i = 0 to 9 do
    let n = 2 + (i mod 3) in
    let c = Fuzz_gen.circuit Fuzz_gen.Mixed (Rng.split_at rng i) ~num_qubits:n ~gates:10 in
    let archs = architectures n in
    let arch = List.nth archs (i mod List.length archs) in
    let compiled = Compile.run arch c in
    let r = Fuzz_oracle.run ~expected:Fuzz_oracle.Expect_equivalent c compiled in
    (match r.Fuzz_oracle.violation with
    | Some v -> Alcotest.failf "case %d (%s): %s" i (Arch.name arch) v
    | None -> ());
    Alcotest.(check bool) "dense truth says equivalent" true (r.Fuzz_oracle.truth = Some true)
  done

let test_compiled_with_spread_layout () =
  (* A non-trivial initial layout exercises the permutation bookkeeping
     on both sides of the oracle. *)
  let rng = Rng.make ~seed:227 in
  for i = 0 to 5 do
    let c = Fuzz_gen.circuit Fuzz_gen.Clifford (Rng.split_at rng i) ~num_qubits:3 ~gates:10 in
    let arch = Arch.linear 5 in
    let layout = Compile.spread_layout arch (Rng.split_at rng (100 + i)) in
    let compiled = Compile.run ~initial_layout:layout arch c in
    let r = Fuzz_oracle.run ~expected:Fuzz_oracle.Expect_equivalent c compiled in
    match r.Fuzz_oracle.violation with
    | Some v -> Alcotest.failf "case %d: %s" i v
    | None -> ()
  done

let test_faulty_compilation_caught () =
  (* Injecting a fault after compilation must flip the oracle's verdict:
     the pair is provably non-equivalent and no checker may prove
     equivalence. *)
  let rng = Rng.make ~seed:229 in
  let caught = ref 0 in
  for i = 0 to 9 do
    let c = Fuzz_gen.circuit Fuzz_gen.Clifford_t (Rng.split_at rng i) ~num_qubits:3 ~gates:10 in
    let compiled = Compile.run (Arch.linear 4) c in
    match Oqec_workloads.Workloads.inject_fault ~seed:(300 + i) compiled with
    | None -> ()
    | Some (broken, _) ->
        incr caught;
        let r = Fuzz_oracle.run ~expected:Fuzz_oracle.Expect_not_equivalent c broken in
        (match r.Fuzz_oracle.violation with
        | Some v -> Alcotest.failf "case %d: %s" i v
        | None -> ());
        Alcotest.(check bool)
          "dense truth says not equivalent" true
          (r.Fuzz_oracle.truth = Some false)
  done;
  Alcotest.(check bool) "faults exercised" true (!caught > 5)

let suite =
  [
    Alcotest.test_case "compiled circuits equivalent (dense)" `Quick
      test_compiled_equivalent_dense;
    Alcotest.test_case "compiled circuits through the oracle" `Quick
      test_compiled_through_oracle;
    Alcotest.test_case "spread layouts through the oracle" `Quick
      test_compiled_with_spread_layout;
    Alcotest.test_case "faulty compilation caught" `Quick test_faulty_compilation_caught;
  ]
