(* Differential fuzzing: every checking strategy is run against the dense
   ground truth on random circuit pairs (equal or mutated), asserting
   soundness of every verdict.

   Soundness contract per strategy:
   - Reference / Alternating / Combined: verdict must MATCH ground truth;
   - Simulation: Not_equivalent must imply ground-truth non-equivalence
     (No_information is always allowed);
   - Zx: Equivalent must imply ground-truth equivalence, Not_equivalent
     (permutation mismatch) must imply non-equivalence;
   - Clifford: on Clifford-only circuits the verdict must match; on other
     circuits it must be No_information. *)

open Oqec_base
open Oqec_circuit
open Oqec_dd
open Oqec_qcec
open Helpers

let random_circuit rng ~clifford_only n len =
  let c = ref (Circuit.create n) in
  for _ = 1 to len do
    let q = Rng.int rng n in
    let q2 = (q + 1 + Rng.int rng (max 1 (n - 1))) mod n in
    match Rng.int rng 10 with
    | 0 -> c := Circuit.h !c q
    | 1 -> c := Circuit.s !c q
    | 2 -> c := Circuit.x !c q
    | 3 -> if n > 1 then c := Circuit.cx !c q q2
    | 4 -> if n > 1 then c := Circuit.cz !c q q2
    | 5 -> if n > 1 then c := Circuit.swap !c q q2
    | 6 -> if not clifford_only then c := Circuit.t_gate !c q
    | 7 ->
        if not clifford_only then
          c := Circuit.rz !c (Phase.of_pi_fraction (Rng.int rng 16) 8) q
    | 8 ->
        if (not clifford_only) && n > 1 then
          c := Circuit.cp !c (Phase.of_pi_fraction 1 (1 lsl (1 + Rng.int rng 3))) q q2
    | _ ->
        if (not clifford_only) && n > 2 then
          let q3 = (q2 + 1 + Rng.int rng (n - 2)) mod n in
          if q3 <> q && q3 <> q2 then c := Circuit.ccx !c q q2 q3
  done;
  !c

(* Derive a second circuit: either a disguised-equivalent variant or a
   mutated one. *)
let derive rng c =
  match Rng.int rng 4 with
  | 0 -> c
  | 1 ->
      (* Pad with a cancelling pair. *)
      let q = Rng.int rng (Circuit.num_qubits c) in
      Circuit.h (Circuit.h c q) q
  | 2 -> (
      match Oqec_workloads.Workloads.flip_cnot ~seed:(Rng.int rng 10000) c with
      | c' -> c'
      | exception Invalid_argument _ -> c)
  | _ -> (
      match Oqec_workloads.Workloads.remove_gate ~seed:(Rng.int rng 10000) c with
      | c' -> c'
      | exception Invalid_argument _ -> c)

let sound strategy truth outcome ~clifford_only =
  match (strategy, outcome) with
  | _, Equivalence.Timed_out -> true
  | (Qcec.Reference | Qcec.Alternating | Qcec.Combined | Qcec.Portfolio), o ->
      o = (if truth then Equivalence.Equivalent else Equivalence.Not_equivalent)
  | Qcec.Simulation, Equivalence.Not_equivalent -> not truth
  | Qcec.Simulation, (Equivalence.No_information | Equivalence.Equivalent) -> true
  | Qcec.Zx, Equivalence.Equivalent -> truth
  | Qcec.Zx, Equivalence.Not_equivalent -> not truth
  | Qcec.Zx, Equivalence.No_information -> true
  | Qcec.Clifford, Equivalence.No_information ->
      (* Allowed only when the pair is not Clifford-only; random "general"
         pairs may still happen to be Clifford, where a verdict is due. *)
      not clifford_only
  | Qcec.Clifford, o ->
      o = (if truth then Equivalence.Equivalent else Equivalence.Not_equivalent)

let all_strategies =
  Qcec.[ Reference; Alternating; Simulation; Zx; Combined; Clifford ]

let fuzz_case ~clifford_only seed =
  let rng = Rng.make ~seed in
  let n = 2 + Rng.int rng 3 in
  let c1 = random_circuit rng ~clifford_only n (6 + Rng.int rng 12) in
  let c2 = derive rng c1 in
  QCheck.assume (Circuit.gate_count c1 > 0);
  let truth = Unitary.equivalent c1 c2 in
  List.for_all
    (fun strategy ->
      let r = Qcec.check ~strategy ~seed ~timeout:20.0 c1 c2 in
      let ok = sound strategy truth r.Equivalence.outcome ~clifford_only in
      if not ok then
        Printf.printf "UNSOUND: %s said %s but truth=%b (seed %d)\n"
          (Qcec.strategy_to_string strategy)
          (Equivalence.outcome_to_string r.Equivalence.outcome)
          truth seed;
      ok)
    all_strategies

(* ------------------------------------------------- GC differential suite

   Seeded randomized hardening of the DD package's memory management:
   for ~50 random Clifford+T circuits on 2-6 qubits,
   (a) the DD built with GC forced at every safe point still matches the
       dense reference unitary,
   (b) the DD, ZX and simulation checkers give mutually consistent
       verdicts against dense ground truth, and
   (c) the alternating and reference checkers return identical outcomes
       (and identical final diagram sizes — canonicity) with GC forced
       after every gate application versus GC disabled. *)

let gc_forced = 0
let gc_disabled = max_int

let gc_case seed =
  let rng = Rng.make ~seed in
  let n = 2 + Rng.int rng 5 in
  let c1 = random_circuit rng ~clifford_only:false n (8 + Rng.int rng 12) in
  let c2 = derive rng c1 in
  if Circuit.gate_count c1 = 0 then ()
  else begin
    (* (a) forced-GC DD build vs dense reference *)
    let pkg = Dd.create ~gc_threshold:gc_forced () in
    let dd = Dd_circuit.of_circuit pkg c1 in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: forced-gc DD matches dense unitary" seed)
      true
      (Dmatrix.equal ~tol:1e-8 (Unitary.unitary c1) (Dd_export.to_dmatrix dd ~n));
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: gc actually ran" seed)
      true
      ((Dd.stats pkg).Dd.gc_runs >= 1);
    (* (b) verdict consistency across checkers *)
    let truth = Unitary.equivalent c1 c2 in
    List.iter
      (fun strategy ->
        let r = Qcec.check ~strategy ~seed ~gc_threshold:gc_forced ~timeout:20.0 c1 c2 in
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: %s sound under forced gc" seed
             (Qcec.strategy_to_string strategy))
          true
          (sound strategy truth r.Equivalence.outcome ~clifford_only:false))
      Qcec.[ Reference; Alternating; Simulation; Zx ];
    (* (c) forced vs disabled GC: identical verdicts and final sizes *)
    let on = Dd_checker.check_miter ~gc_threshold:gc_forced c1 c2 in
    let off = Dd_checker.check_miter ~gc_threshold:gc_disabled c1 c2 in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: alternating verdict gc-invariant" seed)
      true
      (on.Equivalence.outcome = off.Equivalence.outcome);
    Alcotest.(check int)
      (Printf.sprintf "seed %d: alternating final size gc-invariant" seed)
      off.Equivalence.final_size on.Equivalence.final_size;
    let ron = Dd_checker.check_reference ~gc_threshold:gc_forced c1 c2 in
    let roff = Dd_checker.check_reference ~gc_threshold:gc_disabled c1 c2 in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: reference verdict gc-invariant" seed)
      true
      (ron.Equivalence.outcome = roff.Equivalence.outcome)
  end

let test_gc_differential () =
  for seed = 1 to 50 do
    gc_case seed
  done

let prop_differential_general =
  qtest ~count:40 "differential: all strategies sound on Clifford+T pairs"
    QCheck.(make ~print:string_of_int Gen.int)
    (fun seed -> fuzz_case ~clifford_only:false (abs seed))

let prop_differential_clifford =
  qtest ~count:40 "differential: all strategies sound on Clifford pairs"
    QCheck.(make ~print:string_of_int Gen.int)
    (fun seed -> fuzz_case ~clifford_only:true (abs seed))

let suite =
  [
    prop_differential_general;
    prop_differential_clifford;
    Alcotest.test_case "gc differential: 50 seeded Clifford+T pairs" `Quick
      test_gc_differential;
  ]
