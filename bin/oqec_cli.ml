(* Command-line interface: check two QASM files for equivalence, inspect
   or generate benchmark circuits, and run the compilation flow. *)

open Oqec_base
open Oqec_circuit
open Oqec_qcec
open Cmdliner

(* ------------------------------------------------------------- Helpers *)

let load path =
  try Oqec_qasm.Qasm.circuit_of_file path
  with Oqec_qasm.Qasm.Parse_error msg ->
    Printf.eprintf "error: %s: %s\n" path msg;
    exit 3

(* Hidden test hook: deliberately corrupt the ZX worklist engine so the
   certificate chain can demonstrate its independence — the fooled
   engine reports a wrong verdict, and only [verify-cert] (or the fuzz
   oracle's certificate cross-check) catches it. *)
let set_engine_break_hook () =
  match Sys.getenv_opt "OQEC_CERT_BREAK" with
  | Some mode when mode <> "" -> Atomic.set Oqec_zx.Zx_worklist.break_hook (Some mode)
  | _ -> ()

let arch_of_string = function
  | "manhattan" -> Some Oqec_compile.Architecture.manhattan
  | s -> (
      match String.split_on_char ':' s with
      | [ "linear"; n ] -> Option.map Oqec_compile.Architecture.linear (int_of_string_opt n)
      | [ "ring"; n ] -> Option.map Oqec_compile.Architecture.ring (int_of_string_opt n)
      | [ "grid"; r; c ] -> (
          match (int_of_string_opt r, int_of_string_opt c) with
          | Some rows, Some cols -> Some (Oqec_compile.Architecture.grid ~rows ~cols)
          | _ -> None)
      | _ -> None)

let generator_of_string ~seed ~size = function
  | "ghz" -> Some (Oqec_workloads.Workloads.ghz size)
  | "graphstate" -> Some (Oqec_workloads.Workloads.graph_state ~seed size)
  | "qft" -> Some (Oqec_workloads.Workloads.qft size)
  | "qpe" -> Some (Oqec_workloads.Workloads.qpe_exact ~seed size)
  | "grover" -> Some (Oqec_workloads.Workloads.grover ~seed size)
  | "qwalk" -> Some (Oqec_workloads.Workloads.random_walk ~steps:size size)
  | "adder" -> Some (Oqec_workloads.Workloads.ripple_adder size)
  | "urf" -> Some (Oqec_workloads.Workloads.random_reversible ~seed ~gates:(20 * size) size)
  | _ -> None

(* ------------------------------------------------------------ check cmd *)

let strategy_conv =
  let parse s =
    match Qcec.strategy_of_string s with
    | Some st -> Ok st
    | None -> Error (`Msg (Printf.sprintf "unknown strategy %S" s))
  in
  Arg.conv (parse, fun ppf s -> Format.pp_print_string ppf (Qcec.strategy_to_string s))

let check_cmd =
  let file1 = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE1") in
  let file2 = Arg.(required & pos 1 (some file) None & info [] ~docv:"FILE2") in
  let strategy =
    Arg.(
      value
      & opt strategy_conv Qcec.Combined
      & info [ "s"; "strategy" ] ~docv:"STRATEGY"
          ~doc:
            "One of reference, alternating, simulation, zx, combined, clifford, \
             portfolio.  portfolio races the alternating-DD, ZX and sharded \
             random-stimuli checkers on separate domains and returns the first \
             conclusive answer (see --jobs).")
  in
  let timeout =
    Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS")
  in
  let tol = Arg.(value & opt (some float) None & info [ "tolerance" ] ~docv:"EPS") in
  let sim_runs = Arg.(value & opt int 16 & info [ "sim-runs" ] ~docv:"N") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED") in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Simulation shard count for --strategy portfolio (worker domains: N + 2).  \
             Defaults to the machine's recommended domain count minus two, clamped to \
             [1, 4].  Verdicts and counterexamples are independent of N.")
  in
  let gc_threshold =
    Arg.(
      value
      & opt (some int) None
      & info [ "gc-threshold" ] ~docv:"NODES"
          ~doc:
            "Live-node count beyond which the decision-diagram package garbage-collects \
             (0 collects after every gate application; default 65536).")
  in
  let dd_stats =
    Arg.(
      value & flag
      & info [ "dd-stats" ]
          ~doc:
            "Print decision-diagram engine statistics (allocated/live nodes, GC runs, \
             compute-cache hit rates) after the verdict.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the report (statistics included) as one JSON object.")
  in
  let approx =
    Arg.(
      value
      & opt (some float) None
      & info [ "approx" ] ~docv:"FIDELITY"
          ~doc:
            "Approximate equivalence: accept when the Hilbert-Schmidt fidelity \
             reaches $(docv) (uses the decision-diagram miter).")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write an execution trace (per-phase spans and engine counters) to $(docv) \
             in Chrome trace_event JSON, loadable in chrome://tracing or Perfetto.")
  in
  let checkers =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkers" ] ~docv:"LIST"
          ~doc:
            "Comma-separated checkers to race with --strategy portfolio: any of dd, zx, \
             sim, stab (default dd,zx,sim).")
  in
  let dd_core =
    Arg.(
      value
      & opt (some string) None
      & info [ "dd-core" ] ~docv:"CORE"
          ~doc:
            "Decision-diagram package representation: $(b,boxed) (pointer-based \
             records, the differential baseline; default) or $(b,arena) \
             (struct-of-arrays node store with packed integer edges).  Verdicts and \
             counterexamples are independent of the core.")
  in
  let dd_scheme =
    Arg.(
      value
      & opt string "proportional"
      & info [ "dd-scheme" ] ~docv:"SCHEME"
          ~doc:
            "Application scheme of the DD miter — the policy deciding which side \
             contributes the next gate: $(b,alternating) (strict one-to-one, the \
             paper's baseline), $(b,proportional) (advance the side lagging in \
             relative progress; default), $(b,lookahead) (apply one gate from each \
             side speculatively and keep the smaller diagram — roughly twice the work \
             per step, but resistant to drift when the circuits' structures diverge), \
             $(b,cost) (proportional over per-gate growth weights) or $(b,auto) \
             (profile-guided: a structural fingerprint of the instance is looked up \
             in the dispatch table written by $(b,bench dd-schemes) — \
             $(b,OQEC_DISPATCH), else bench/dispatch.json, else the compiled-in \
             snapshot — falling back to alternating on unseen fingerprints).")
  in
  let stream =
    Arg.(
      value & flag
      & info [ "stream" ]
          ~doc:
            "Stream both files through the alternating-DD miter without materialising \
             the circuits: memory use is bounded by the diagram plus one input chunk \
             per side, so checks can run over files far larger than memory.  Implies \
             the alternating strategy; by default gates are interleaved proportionally \
             to input bytes consumed ($(b,--dd-scheme) adapts: alternating and \
             lookahead keep their semantics, cost and auto degrade to the \
             byte-proportional rule).  The streamed subset excludes measure and \
             layout metadata.")
  in
  let certify =
    Arg.(
      value
      & opt (some string) None
      & info [ "certify" ] ~docv:"FILE"
          ~doc:
            "Write a replayable certificate substantiating a conclusive verdict to \
             $(docv): a recorded ZX rewrite proof for equivalence, a refuting stimulus \
             witness for non-equivalence.  Re-check it with $(b,oqec verify-cert).  \
             Inconclusive verdicts produce no certificate; a conclusive verdict that \
             cannot be certified exits with code 4.")
  in
  let run file1 file2 strategy timeout tol sim_runs seed jobs approx gc_threshold dd_stats
      json trace checkers dd_core dd_scheme stream certify =
    set_engine_break_hook ();
    let scheme =
      match Dd_scheme.of_string dd_scheme with
      | Some s -> s
      | None ->
          Printf.eprintf
            "error: --dd-scheme must be alternating, proportional, lookahead, cost or \
             auto (got %S)\n"
            dd_scheme;
          exit 3
    in
    let table =
      match scheme with Dd_scheme.Auto -> Some (Dd_dispatch.default_table ()) | _ -> None
    in
    let dd_core =
      match dd_core with
      | None -> None
      | Some s -> (
          match Oqec_dd.Dd_core.kind_of_string s with
          | Some k -> Some k
          | None ->
              Printf.eprintf "error: --dd-core must be boxed or arena (got %S)\n" s;
              exit 3)
    in
    (match gc_threshold with
    | Some t when t < 0 ->
        Printf.eprintf "error: --gc-threshold must be >= 0 (got %d)\n" t;
        exit 3
    | _ -> ());
    (match jobs with
    | Some j when j < 1 ->
        Printf.eprintf "error: --jobs must be >= 1 (got %d)\n" j;
        exit 3
    | _ -> ());
    (match (certify, approx) with
    | Some _, Some _ ->
        Printf.eprintf "error: --certify cannot substantiate an approximate verdict\n";
        exit 3
    | _ -> ());
    let checkers =
      match checkers with
      | None -> None
      | Some s -> (
          match Portfolio.selection_of_string s with
          | Ok sel -> Some sel
          | Error msg ->
              Printf.eprintf "error: --checkers: %s\n" msg;
              exit 3)
    in
    (match (stream, approx, certify) with
    | true, Some _, _ ->
        Printf.eprintf "error: --approx is not supported with --stream\n";
        exit 3
    | true, _, Some _ ->
        Printf.eprintf
          "error: --certify is not supported with --stream (certification replays the \
           materialised circuits)\n";
        exit 3
    | true, None, None -> (
        match strategy with
        | Qcec.Alternating | Qcec.Combined -> ()
        | s ->
            Printf.eprintf
              "error: --stream only supports the alternating strategy (got %s)\n"
              (Qcec.strategy_to_string s);
            exit 3)
    | false, _, _ -> ());
    let sink = Option.map (fun _ -> Engine.Trace.create ()) trace in
    if stream then begin
      let deadline = Option.map (fun t -> Mclock.now () +. t) timeout in
      let report =
        try
          Stream_checker.check ?core:dd_core ~scheme ?tol ?gc_threshold ?deadline ?sink
            file1 file2
        with
        | Oqec_qasm.Qasm_stream.Unsupported msg ->
            Printf.eprintf "error: %s\n" msg;
            exit 3
        | Oqec_qasm.Qasm_parser.Error (msg, line) ->
            Printf.eprintf "error: line %d: %s\n" line msg;
            exit 3
        | Oqec_qasm.Qasm.Parse_error msg ->
            Printf.eprintf "error: %s\n" msg;
            exit 3
      in
      (match (trace, sink) with
      | Some path, Some s ->
          let oc = open_out path in
          output_string oc (Engine.Trace.to_chrome_json s);
          output_char oc '\n';
          close_out oc
      | _ -> ());
      if json then print_endline (Equivalence.report_to_json report)
      else begin
        Format.printf "%a@." Equivalence.pp_report report;
        if dd_stats then
          match Equivalence.dd_stats report with
          | Some s -> Format.printf "%a@." Oqec_dd.Dd.pp_stats s
          | None -> ()
      end;
      match report.Equivalence.outcome with
      | Equivalence.Equivalent -> exit 0
      | Equivalence.Not_equivalent -> exit 1
      | Equivalence.No_information | Equivalence.Timed_out -> exit 2
    end;
    let g = load file1 and g' = load file2 in
    let report =
      match approx with
      | Some threshold ->
          let deadline = Option.map (fun t -> Mclock.now () +. t) timeout in
          let r, _fid =
            Dd_checker.check_approximate ?core:dd_core ?tol ?gc_threshold:gc_threshold
              ?deadline ?sink ~threshold g g'
          in
          r
      | None ->
          Qcec.check ~strategy ?timeout ?tol ?gc_threshold:gc_threshold ~sim_runs ~seed
            ?jobs ~scheme ?table ?checkers ?dd_core ?sink g g'
    in
    (match (trace, sink) with
    | Some path, Some s ->
        let oc = open_out path in
        output_string oc (Engine.Trace.to_chrome_json s);
        output_char oc '\n';
        close_out oc
    | _ -> ());
    if json then print_endline (Equivalence.report_to_json report)
    else begin
      Format.printf "%a@." Equivalence.pp_report report;
      if dd_stats then
        match Equivalence.dd_stats report with
        | Some s -> Format.printf "%a@." Oqec_dd.Dd.pp_stats s
        | None -> Format.printf "(no decision-diagram engine ran for this strategy)@."
    end;
    (match (certify, report.Equivalence.outcome) with
    | None, _ -> ()
    | Some _, (Equivalence.No_information | Equivalence.Timed_out) ->
        Printf.eprintf "note: inconclusive verdict, no certificate written\n"
    | Some path, outcome -> (
        (* Checkers attach certificates opportunistically; a bare
           verdict (DD or stabilizer win, for instance) is certified
           from scratch. *)
        let cert =
          match report.Equivalence.certificate with
          | Some c -> Ok c
          | None -> Certify.certify outcome g g'
        in
        match cert with
        | Ok c ->
            let oc = open_out path in
            output_string oc (Oqec_cert.Cert.serialize c);
            close_out oc;
            Printf.eprintf "certificate written to %s (%s)\n" path
              (Oqec_cert.Cert.summary c)
        | Error msg ->
            Printf.eprintf "error: cannot certify the verdict: %s\n" msg;
            exit 4));
    match report.Equivalence.outcome with
    | Equivalence.Equivalent -> exit 0
    | Equivalence.Not_equivalent -> exit 1
    | Equivalence.No_information | Equivalence.Timed_out -> exit 2
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Check two OpenQASM circuits for equivalence.")
    Term.(
      const run $ file1 $ file2 $ strategy $ timeout $ tol $ sim_runs $ seed $ jobs
      $ approx $ gc_threshold $ dd_stats $ json $ trace $ checkers $ dd_core $ dd_scheme
      $ stream $ certify)

(* ------------------------------------------------------- verify-cert cmd *)

let verify_cert_cmd =
  let file = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let run file =
    let text =
      try
        let ic = open_in_bin file in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        s
      with Sys_error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 3
    in
    match Oqec_cert.Cert.parse text with
    | Error msg ->
        Printf.eprintf "error: %s: %s\n" file msg;
        exit 1
    | Ok cert -> (
        match Oqec_cert.Cert_validate.validate cert with
        | Ok () ->
            Printf.printf "certificate valid: %s\n" (Oqec_cert.Cert.summary cert);
            exit 0
        | Error msg ->
            Printf.printf "certificate INVALID: %s\n" msg;
            exit 1)
  in
  Cmd.v
    (Cmd.info "verify-cert"
       ~doc:
         "Independently validate a certificate produced by $(b,oqec check --certify): \
          replay a ZX proof step by step against the graph primitives, or re-simulate \
          a refuting stimulus witness.  The validator shares no code with the \
          equivalence-checking engines.")
    Term.(const run $ file)

(* ------------------------------------------------------------- info cmd *)

let info_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let run file =
    let c = load file in
    Printf.printf "name:         %s\n" (Circuit.name c);
    Printf.printf "qubits:       %d\n" (Circuit.num_qubits c);
    Printf.printf "gates:        %d\n" (Circuit.gate_count c);
    Printf.printf "two-qubit:    %d\n" (Circuit.two_qubit_count c);
    Printf.printf "t-count:      %d\n" (Circuit.t_count c);
    Printf.printf "depth:        %d\n" (Circuit.depth c);
    (match Circuit.output_perm c with
    | Some p -> Format.printf "output perm:  %a@." Perm.pp p
    | None -> ())
  in
  Cmd.v (Cmd.info "info" ~doc:"Print statistics about a QASM circuit.") Term.(const run $ file)

(* --------------------------------------------------------- generate cmd *)

let generate_cmd =
  let kind =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"KIND"
          ~doc:
            "ghz, graphstate, qft, qpe, grover, qwalk, adder, urf or stream (a random \
             Clifford+T circuit written directly as QASM text, sized by --gates; see \
             --twin).")
  in
  let size = Arg.(value & opt int 4 & info [ "n"; "size" ] ~docv:"N") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED") in
  let out = Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE") in
  let gates =
    Arg.(
      value & opt int 1000
      & info [ "gates" ] ~docv:"G"
          ~doc:
            "Gate count for the $(b,stream) kind.  The circuit is emitted straight to \
             the output without being materialised, so gate counts in the millions are \
             fine.")
  in
  let twin =
    Arg.(
      value & flag
      & info [ "twin" ]
          ~doc:
            "With the $(b,stream) kind: emit the provably equivalent twin of the same \
             (seed, size, gates) stream — every gate rewritten through an exact local \
             identity, with identity pairs interleaved.  A (base, twin) pair is a \
             ready-made test case for $(b,oqec check --stream).")
  in
  let barrier_every =
    Arg.(
      value & opt int 0
      & info [ "barrier-every" ] ~docv:"K"
          ~doc:
            "With the $(b,stream) kind: emit a $(b,barrier) at matching logical \
             positions every K base gates (0 = none).  The streaming checker uses \
             matching barriers to re-synchronise its two cursors, keeping the miter \
             small on long streams; recommended for large --gates counts.")
  in
  let run kind size seed out gates barrier_every twin =
    let with_out f =
      match out with
      | Some path ->
          let oc = open_out path in
          f oc;
          close_out oc
      | None -> f stdout
    in
    if kind = "stream" then begin
      if size < 2 then begin
        Printf.eprintf "error: stream needs --size >= 2 (got %d)\n" size;
        exit 3
      end;
      if gates < 1 then begin
        Printf.eprintf "error: --gates must be >= 1 (got %d)\n" gates;
        exit 3
      end;
      if barrier_every < 0 then begin
        Printf.eprintf "error: --barrier-every must be >= 0 (got %d)\n" barrier_every;
        exit 3
      end;
      with_out (fun oc ->
          Oqec_workloads.Workloads.stream_qasm ~seed ~qubits:size ~gates ~barrier_every
            ~twin oc)
    end
    else
      match generator_of_string ~seed ~size kind with
      | None ->
          Printf.eprintf "error: unknown generator %S\n" kind;
          exit 3
      | Some c ->
          let lowered = Decompose.elementary c in
          with_out (fun oc -> output_string oc (Oqec_qasm.Qasm.to_string lowered))
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a benchmark circuit as OpenQASM.")
    Term.(const run $ kind $ size $ seed $ out $ gates $ barrier_every $ twin)

(* ---------------------------------------------------------- compile cmd *)

let compile_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let arch =
    Arg.(
      value
      & opt string "manhattan"
      & info [ "a"; "arch" ] ~docv:"ARCH"
          ~doc:"manhattan, linear:N, ring:N or grid:R:C.")
  in
  let out = Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE") in
  let run file arch out =
    match arch_of_string arch with
    | None ->
        Printf.eprintf "error: unknown architecture %S\n" arch;
        exit 3
    | Some a -> (
        let c = load file in
        let compiled = Oqec_compile.Compile.run a c in
        let text = Oqec_qasm.Qasm.to_string compiled in
        match out with
        | Some path ->
            let oc = open_out path in
            output_string oc text;
            close_out oc;
            Printf.printf "compiled %s onto %s: %d gates\n" file
              (Oqec_compile.Architecture.name a)
              (Circuit.gate_count compiled)
        | None -> print_string text)
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile a QASM circuit onto a coupling map.")
    Term.(const run $ file $ arch $ out)

(* ------------------------------------------------------------- fuzz cmd *)

let fuzz_cmd =
  let module Fuzz = Oqec_fuzz.Fuzz in
  let module Fuzz_gen = Oqec_fuzz.Fuzz_gen in
  let profile =
    Arg.(
      value
      & opt string "mixed"
      & info [ "p"; "profile" ] ~docv:"PROFILE"
          ~doc:
            "Gate-set profile for generated circuits: clifford, clifford+t, rotations, \
             mcx or mixed.")
  in
  let runs = Arg.(value & opt int 100 & info [ "runs" ] ~docv:"N" ~doc:"Generated cases.") in
  let max_qubits =
    Arg.(value & opt int 6 & info [ "max-qubits" ] ~docv:"Q" ~doc:"Maximum circuit width.")
  in
  let max_gates =
    Arg.(
      value & opt int 24 & info [ "max-gates" ] ~docv:"G" ~doc:"Maximum base-circuit size.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED") in
  let shrink =
    Arg.(
      value & flag
      & info [ "shrink" ]
          ~doc:"Greedily minimise failing pairs before persisting them to the corpus.")
  in
  let corpus =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "Regression-corpus directory: replay every stored counterexample before \
             fuzzing and persist newly found (shrunk) counterexamples into it.")
  in
  let only =
    Arg.(
      value
      & opt (some int) None
      & info [ "only" ] ~docv:"INDEX"
          ~doc:
            "Replay a single case index instead of the whole run — case INDEX under a \
             given seed is fully deterministic, so this reproduces one failure in \
             isolation.")
  in
  let timeout =
    Arg.(
      value & opt float 10.0
      & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Per-checker timeout for each case.")
  in
  let checkers =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkers" ] ~docv:"LIST"
          ~doc:"Comma-separated subset of the oracle's checkers: dd, zx, sim, stab.")
  in
  let dd_core =
    Arg.(
      value
      & opt (some string) None
      & info [ "dd-core" ] ~docv:"CORE"
          ~doc:
            "DD package representation for the dd/sim checkers: boxed (default) or \
             arena.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit run statistics as one JSON object.") in
  let run profile runs max_qubits max_gates seed shrink corpus only timeout checkers
      dd_core json =
    let profile =
      match Fuzz_gen.profile_of_string profile with
      | Some p -> p
      | None ->
          Printf.eprintf "error: unknown profile %S\n" profile;
          exit 3
    in
    if runs < 0 then begin
      Printf.eprintf "error: --runs must be >= 0 (got %d)\n" runs;
      exit 3
    end;
    if max_qubits < 2 then begin
      Printf.eprintf "error: --max-qubits must be >= 2 (got %d)\n" max_qubits;
      exit 3
    end;
    let checkers =
      match checkers with
      | None -> None
      | Some s ->
          let names = String.split_on_char ',' s |> List.map String.trim in
          let known = List.map (fun (n, _, _) -> n) (Qcec.oracle_checkers ()) in
          List.iter
            (fun n ->
              if not (List.mem n known) then begin
                Printf.eprintf "error: --checkers: unknown checker %S (expected dd, zx, sim, stab)\n" n;
                exit 3
              end)
            names;
          Some names
    in
    let dd_core =
      match dd_core with
      | None -> None
      | Some s -> (
          match Oqec_dd.Dd_core.kind_of_string s with
          | Some k -> Some k
          | None ->
              Printf.eprintf "error: --dd-core must be boxed or arena (got %S)\n" s;
              exit 3)
    in
    (* Hidden test hook: deliberately corrupt one checker's verdicts so the
       oracle/shrink/corpus path can be exercised end to end. *)
    (match Sys.getenv_opt "OQEC_FUZZ_BREAK" with
    | Some name when name <> "" ->
        Atomic.set Oqec_fuzz.Fuzz_oracle.break_hook (Some name)
    | _ -> ());
    set_engine_break_hook ();
    let config =
      {
        Fuzz.profile;
        runs;
        max_qubits;
        max_gates;
        seed;
        shrink;
        corpus;
        only;
        timeout;
        checkers;
        dd_core;
      }
    in
    let log = if json then fun line -> prerr_endline line else print_endline in
    let stats = Fuzz.run ~log config in
    if json then print_endline (Fuzz.stats_to_json config stats)
    else
      Printf.printf
        "fuzz: %d cases, %d failures (corpus: %d replayed, %d failing, %d new) in %.2fs\n"
        stats.Fuzz.cases stats.Fuzz.failures stats.Fuzz.corpus_replayed
        stats.Fuzz.corpus_failures stats.Fuzz.corpus_new stats.Fuzz.elapsed;
    if stats.Fuzz.failures > 0 || stats.Fuzz.corpus_failures > 0 then exit 1 else exit 0
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: random circuit pairs with provable metamorphic \
          expectations are run through every checker; any disagreement is shrunk and \
          persisted as a regression.")
    Term.(
      const run $ profile $ runs $ max_qubits $ max_gates $ seed $ shrink $ corpus $ only
      $ timeout $ checkers $ dd_core $ json)

let () =
  let doc = "equivalence checking of quantum circuits (DDs vs ZX-calculus)" in
  let main = Cmd.group (Cmd.info "oqec" ~version:"1.0.0" ~doc)
      [ check_cmd; verify_cert_cmd; info_cmd; generate_cmd; compile_cmd; fuzz_cmd ]
  in
  exit (Cmd.eval main)
