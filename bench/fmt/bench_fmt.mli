(** Result-cell formatting for the bench harness tables.

    Lives in its own library (rather than inside the bench executable)
    so the unit tests can link it and pin down the timeout clamping. *)

open Oqec_qcec

type expected = [ `Equivalent | `Not_equivalent ]

(** [cell_to_string ~timeout ~expected outcome ~time] renders one table
    cell: the wall time, suffixed with a verdict marker ([*] expected
    no-information on a faulty instance, [?] inconclusive on an
    equivalent one, [!] wrong verdict).  Timed-out cells print [>T] with
    [T] the {e configured} timeout, not the measured wall time — the
    measurement overshoots the budget by scheduling slack. *)
val cell_to_string :
  timeout:float ->
  expected:expected ->
  Equivalence.outcome ->
  time:float ->
  string
