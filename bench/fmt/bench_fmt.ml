open Oqec_qcec

type expected = [ `Equivalent | `Not_equivalent ]

(* A timed-out run's measured wall time overshoots the configured budget
   by scheduling slack (a 10 s deadline comes back as 10.0013 s), so the
   cell clamps to the configured timeout: tables read ">10", never
   ">10.0013". *)
let cell_to_string ~timeout ~(expected : expected) outcome ~time =
  let t =
    match outcome with
    | Equivalence.Timed_out -> Printf.sprintf ">%g" timeout
    | _ -> Printf.sprintf "%.2f" time
  in
  let marker =
    match (expected, outcome) with
    | _, Equivalence.Timed_out -> ""
    | `Equivalent, Equivalence.Equivalent -> ""
    | `Not_equivalent, Equivalence.Not_equivalent -> ""
    (* ZX cannot prove non-equivalence; "no information" is its expected
       answer on faulty instances (Section 6.2). *)
    | `Not_equivalent, Equivalence.No_information -> "*"
    (* Inconclusive on an equivalent instance (e.g. ZX rewriting got
       stuck): incomplete, but not a wrong verdict. *)
    | `Equivalent, Equivalence.No_information -> "?"
    | `Equivalent, Equivalence.Not_equivalent | `Not_equivalent, Equivalence.Equivalent
      ->
        "!"
  in
  t ^ marker
