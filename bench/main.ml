(* Benchmark harness regenerating every table and figure of the paper.

   Usage:
     dune exec bench/main.exe                      run everything (small scale)
     dune exec bench/main.exe -- table1-compiled   Table 1, top half
     dune exec bench/main.exe -- table1-optimized  Table 1, bottom half
     dune exec bench/main.exe -- fig1 .. fig6      figure demos
     dune exec bench/main.exe -- ablations         Section 6.2 ablations
     dune exec bench/main.exe -- dd-stats          DD engine statistics
     dune exec bench/main.exe -- dd-arena          arena vs boxed DD core -> BENCH_dd_arena.json
     dune exec bench/main.exe -- dd-schemes        application schemes -> BENCH_dd_schemes.json
                                                   (also regenerates bench/dispatch.json)
     dune exec bench/main.exe -- portfolio         parallel portfolio vs Combined
     dune exec bench/main.exe -- trace-smoke       traced run -> BENCH_trace.json
     dune exec bench/main.exe -- fuzz-smoke        differential fuzz -> BENCH_fuzz.json
     dune exec bench/main.exe -- zx-smoke          ZX engines differential -> BENCH_zx.json
     dune exec bench/main.exe -- cert-smoke        certificates + validator -> BENCH_cert.json
     dune exec bench/main.exe -- micro             Bechamel micro-benchmarks
   Options:
     --paper        paper-scale instance sizes (hours; default is a scaled-down
                    suite preserving the relative shape)
     --timeout S    per-instance per-method timeout in seconds (default 10)

   Absolute times differ from the paper's testbed; EXPERIMENTS.md records the
   shape comparison. *)

open Oqec_base
open Oqec_circuit
open Oqec_compile
open Oqec_workloads.Workloads
open Oqec_qcec

type scale = Small | Paper

type options = { scale : scale; timeout : float; seed : int }

let default_options = { scale = Small; timeout = 10.0; seed = 1 }

(* ------------------------------------------------------------ Instances *)

type instance = {
  name : string;
  original : Circuit.t;
  derived : Circuit.t;  (* compiled or optimised version *)
}

let compiled_instance opts name g =
  let rng = Rng.make ~seed:opts.seed in
  let arch = Architecture.manhattan in
  let layout = Compile.spread_layout arch rng in
  { name; original = g; derived = Compile.run ~initial_layout:layout arch g }

let optimized_instance name g =
  let lowered = Decompose.to_cx_basis ~keep_swaps:false (Decompose.elementary g) in
  { name; original = g; derived = Optimize.optimize lowered }

let compiled_suite opts =
  let sizes f small paper = List.map f (match opts.scale with Small -> small | Paper -> paper) in
  List.concat
    [
      sizes
        (fun n -> compiled_instance opts (Printf.sprintf "grover-%d" n) (grover ~seed:3 n))
        [ 4; 5 ] [ 6; 7; 8 ];
      sizes
        (fun n -> compiled_instance opts (Printf.sprintf "qft-%d" n) (qft n))
        [ 8; 12 ] [ 23; 38 ];
      sizes
        (fun n ->
          compiled_instance opts (Printf.sprintf "qwalk-%d" n) (random_walk ~steps:n n))
        [ 5; 6 ] [ 7; 8; 9 ];
      sizes
        (fun n ->
          compiled_instance opts (Printf.sprintf "qpe-exact-%d" n) (qpe_exact ~seed:3 (n - 1)))
        [ 8; 11 ] [ 22; 39 ];
      sizes
        (fun n -> compiled_instance opts (Printf.sprintf "ghz-%d" n) (ghz n))
        [ 16 ] [ 65 ];
      sizes
        (fun n ->
          compiled_instance opts (Printf.sprintf "graphstate-%d" n) (graph_state ~seed:3 n))
        [ 14 ] [ 62 ];
    ]

let optimized_suite opts =
  let sizes f small paper = List.map f (match opts.scale with Small -> small | Paper -> paper) in
  List.concat
    [
      (match opts.scale with
      | Small ->
          [
            optimized_instance "urf-10" (random_reversible ~seed:2 ~gates:300 10);
            optimized_instance "plus21mod256" (const_adder_mod ~bits:8 ~constant:21);
            optimized_instance "comparator-6" (comparator 6);
          ]
      | Paper ->
          [
            optimized_instance "urf-20" (random_reversible ~seed:2 ~gates:5000 20);
            optimized_instance "plus63mod4096" (const_adder_mod ~bits:12 ~constant:63);
            optimized_instance "comparator-16" (comparator 16);
          ]);
      sizes
        (fun n -> optimized_instance (Printf.sprintf "grover-%d" n) (grover ~seed:5 n))
        [ 4; 5 ] [ 8; 9; 10 ];
      sizes
        (fun n -> optimized_instance (Printf.sprintf "qft-%d" n) (qft n))
        [ 8; 10 ] [ 32; 43; 44 ];
      sizes
        (fun n ->
          optimized_instance (Printf.sprintf "qwalk-%d" n) (random_walk ~steps:n n))
        [ 5; 6 ] [ 7; 8; 9 ];
    ]

(* -------------------------------------------------------------- Running *)

type cell = { time : float; outcome : Equivalence.outcome }

let run_method opts strategy g g' =
  let t0 = Mclock.now () in
  let r = Qcec.check ~strategy ~timeout:opts.timeout ~seed:opts.seed g g' in
  { time = Mclock.now () -. t0; outcome = r.Equivalence.outcome }

let cell_to_string opts expected c =
  Bench_fmt.cell_to_string ~timeout:opts.timeout ~expected c.outcome ~time:c.time

let header () =
  Printf.printf "%-16s %4s %7s %7s | %18s | %18s | %18s\n" "benchmark" "n" "|G|" "|G'|"
    "equivalent" "1 gate missing" "flipped cnot";
  Printf.printf "%-16s %4s %7s %7s | %8s %9s | %8s %9s | %8s %9s\n" "" "" "" "" "t_dd" "t_zx"
    "t_dd" "t_zx" "t_dd" "t_zx";
  Printf.printf "%s\n" (String.make 100 '-')

let run_table opts title suite =
  Printf.printf "\n== %s (scale=%s, timeout=%gs) ==\n" title
    (match opts.scale with Small -> "small" | Paper -> "paper")
    opts.timeout;
  header ();
  (* The paper reports the share of instances where the two methods
     finish within a fixed delta of each other (82% at 10 s on its
     reversible set); track the same statistic at this run's timeout. *)
  let total_within = ref 0 and total = ref 0 in
  List.iter
    (fun inst ->
      let missing = remove_gate ~seed:(opts.seed + 13) inst.derived in
      let flipped = flip_cnot ~seed:(opts.seed + 17) inst.derived in
      let run_pair expected g g' =
        let dd = run_method opts Qcec.Combined g g' in
        let zx = run_method opts Qcec.Zx g g' in
        incr total;
        if
          Float.abs (dd.time -. zx.time) <= opts.timeout
          && dd.outcome <> Equivalence.Timed_out
          && zx.outcome <> Equivalence.Timed_out
        then incr total_within;
        (cell_to_string opts expected dd, cell_to_string opts expected zx)
      in
      let e_dd, e_zx = run_pair `Equivalent inst.original inst.derived in
      let m_dd, m_zx = run_pair `Not_equivalent inst.original missing in
      let f_dd, f_zx = run_pair `Not_equivalent inst.original flipped in
      Printf.printf "%-16s %4d %7d %7d | %8s %9s | %8s %9s | %8s %9s\n%!" inst.name
        (Circuit.num_qubits inst.original)
        (Circuit.gate_count inst.original)
        (Circuit.gate_count inst.derived)
        e_dd e_zx m_dd m_zx f_dd f_zx)
    suite;
  Printf.printf "both methods within %gs of each other: %d/%d instances (%.0f%%)\n"
    opts.timeout !total_within !total
    (100.0 *. float_of_int !total_within /. float_of_int (max 1 !total));
  Printf.printf
    "(legend: * = no-information, the ZX answer the paper expects on faulty instances;\n";
  Printf.printf
    " ? = inconclusive on an equivalent instance; ! = wrong verdict; >T = timeout)\n"

(* Extended workloads beyond the paper's Table 1 (new algorithm families
   plus the stabilizer-tableau checker, which is complete for the
   Clifford rows). *)
let run_extended opts =
  Printf.printf "\n== Extended workloads (beyond the paper; timeout=%gs) ==\n" opts.timeout;
  Printf.printf "%-16s %4s %7s %7s | %26s | %18s\n" "benchmark" "n" "|G|" "|G'|"
    "equivalent" "flipped cnot";
  Printf.printf "%-16s %4s %7s %7s | %8s %8s %8s | %8s %9s\n" "" "" "" "" "t_dd" "t_zx"
    "t_cliff" "t_dd" "t_zx";
  Printf.printf "%s\n" (String.make 100 '-');
  let instances =
    [
      compiled_instance opts "bv-16" (bernstein_vazirani ~secret:0xBEEF 16);
      compiled_instance opts "dj-12" (deutsch_jozsa ~seed:3 ~balanced:true 12);
      compiled_instance opts "wstate-8" (w_state 8);
      compiled_instance opts "hwb-5" (hidden_weighted_bit 5);
      compiled_instance opts "vqe-6x4" (vqe_ansatz ~seed:3 ~layers:4 6);
      compiled_instance opts "graphstate-20" (graph_state ~seed:5 20);
    ]
  in
  List.iter
    (fun inst ->
      let flipped = flip_cnot ~seed:(opts.seed + 17) inst.derived in
      let e_dd = run_method opts Qcec.Combined inst.original inst.derived in
      let e_zx = run_method opts Qcec.Zx inst.original inst.derived in
      let e_cl = run_method opts Qcec.Clifford inst.original inst.derived in
      let f_dd = run_method opts Qcec.Combined inst.original flipped in
      let f_zx = run_method opts Qcec.Zx inst.original flipped in
      let cl_cell =
        match e_cl.outcome with
        | Equivalence.No_information -> "n/a"
        | _ -> cell_to_string opts `Equivalent e_cl
      in
      Printf.printf "%-16s %4d %7d %7d | %8s %8s %8s | %8s %9s\n%!" inst.name
        (Circuit.num_qubits inst.original)
        (Circuit.gate_count inst.original)
        (Circuit.gate_count inst.derived)
        (cell_to_string opts `Equivalent e_dd)
        (cell_to_string opts `Equivalent e_zx)
        cl_cell
        (cell_to_string opts `Not_equivalent f_dd)
        (cell_to_string opts `Not_equivalent f_zx))
    instances;
  Printf.printf "(t_cliff: stabilizer-tableau checker, n/a on non-Clifford circuits)\n"

(* -------------------------------------------------------------- Figures *)

let fig1 () =
  print_endline "\n== Fig. 1: GHZ preparation circuit and its system matrix ==";
  let g = ghz 3 in
  print_string (Render.to_ascii g);
  Format.printf "@.%a@." Dmatrix.pp (Unitary.unitary g)

let fig2 () =
  print_endline "\n== Fig. 2: GHZ compiled onto the 5-qubit linear architecture ==";
  let g = ghz 3 in
  let g' = Compile.run ~optimize:false (Architecture.linear 5) g in
  print_string (Render.to_ascii g');
  (match Circuit.initial_layout g' with
  | Some l -> Format.printf "initial layout:     %a@." Perm.pp l
  | None -> ());
  match Circuit.output_perm g' with
  | Some p -> Format.printf "output permutation: %a@." Perm.pp p
  | None -> ()

let fig3 () =
  print_endline "\n== Fig. 3: decision diagrams of the GHZ matrix and the identity ==";
  let module Dd = Oqec_dd.Dd in
  let module Dd_circuit = Oqec_dd.Dd_circuit in
  let module Dd_export = Oqec_dd.Dd_export in
  let pkg = Dd.create () in
  let ghz_dd = Dd_circuit.of_circuit pkg (ghz 3) in
  Printf.printf "(a) GHZ system-matrix DD: %d nodes (dense matrix: 64 entries)\n"
    (Dd.node_count ghz_dd);
  Format.printf "%a@." (fun ppf e -> Dd_export.dump ppf e ~n:3) ghz_dd;
  let id = Dd.identity pkg 8 in
  Printf.printf "(b) identity DD on 8 qubits: %d nodes (linear in width)\n" (Dd.node_count id)

let fig4 () =
  print_endline "\n== Fig. 4: the alternating miter stays close to the identity ==";
  let g = ghz 3 in
  let g' = Compile.run (Architecture.linear 5) g in
  let trace = ref [] in
  let r = Dd_checker.check_miter ~trace:(fun k -> trace := k :: !trace) g g' in
  Printf.printf "intermediate node counts: %s\n"
    (String.concat " " (List.rev_map string_of_int !trace));
  Format.printf "verdict: %a@." Equivalence.pp_report r;
  (* Contrast: building G' sequentially first grows the DD. *)
  let module Dd = Oqec_dd.Dd in
  let module Dd_circuit = Oqec_dd.Dd_circuit in
  let pkg = Dd.create () in
  let seq = Dd_circuit.of_circuit pkg (Flatten.flatten (qft 10)) in
  Printf.printf "for contrast, qft-10 built sequentially: %d nodes; " (Dd.node_count seq);
  let tr = ref 0 in
  let r2 =
    Dd_checker.check_miter ~trace:(fun k -> tr := max !tr k) (qft 10) (qft 10)
  in
  Printf.printf "alternating miter of qft-10 with itself peaks at %d nodes (%s)\n" !tr
    (Equivalence.outcome_to_string r2.Equivalence.outcome)

let fig5 () =
  print_endline "\n== Fig. 5 / Ex. 6: ZX-calculus rewriting proves SWAP = 3 CNOTs ==";
  let module Zx_graph = Oqec_zx.Zx_graph in
  let module Zx_circuit = Oqec_zx.Zx_circuit in
  let module Zx_simplify = Oqec_zx.Zx_simplify in
  let sw = Circuit.swap (Circuit.create 2) 0 1 in
  let three = Circuit.cx (Circuit.cx (Circuit.cx (Circuit.create 2) 0 1) 1 0) 0 1 in
  let d = Zx_circuit.of_miter sw three in
  Printf.printf "miter diagram: %d spiders\n" (Zx_graph.spider_count d);
  let fused = Zx_simplify.spider_simp d in
  Zx_simplify.to_gh d;
  Printf.printf "after %d spider fusions (graph-like): %d spiders\n" fused
    (Zx_graph.spider_count d);
  ignore (Zx_simplify.full_reduce d);
  (match Zx_simplify.extract_permutation d with
  | Some p -> Format.printf "reduced to bare wires with permutation %a@." Perm.pp p
  | None -> print_endline "!! did not reduce");
  print_endline "each rewrite rule is certified against the tensor semantics in the test suite"

let fig6 () =
  print_endline "\n== Fig. 6 / Ex. 7: ZX diagrams of the GHZ circuits and their reduction ==";
  let module Zx_graph = Oqec_zx.Zx_graph in
  let module Zx_circuit = Oqec_zx.Zx_circuit in
  let module Zx_simplify = Oqec_zx.Zx_simplify in
  let g = ghz 3 in
  let g' = Compile.run (Architecture.linear 5) g in
  let dg = Zx_circuit.of_circuit g in
  Format.printf "diagram of G:@.%a@." Zx_graph.pp dg;
  let a, b = Flatten.align g g' in
  let miter = Zx_circuit.of_miter (Flatten.flatten a) (Flatten.flatten b) in
  Printf.printf "miter of G and compiled G': %d spiders\n" (Zx_graph.spider_count miter);
  ignore (Zx_simplify.full_reduce miter);
  match Zx_simplify.extract_permutation miter with
  | Some p -> Format.printf "reduces to wires with permutation %a => equivalent@." Perm.pp p
  | None -> print_endline "!! did not reduce"

(* ------------------------------------------------------------ Ablations *)

(* (a) Numerical tolerance: rotation angles perturbed by float noise (as
   produced by real compilation flows) defeat the DD's node merging when
   the interning tolerance is tighter than the noise, so the miter no
   longer collapses onto the identity — the effect behind the QFT rows of
   Table 1 (Section 6.2). *)
let ablation_tolerance () =
  print_endline "\n== Ablation (a): DD miter vs interning tolerance under angle noise ==";
  let noisy_qft n noise =
    let rng = Rng.make ~seed:9 in
    let c = ref (Circuit.create ~name:"noisy-qft" n) in
    for i = n - 1 downto 0 do
      c := Circuit.h !c i;
      for j = i - 1 downto 0 do
        let exact = Float.pi /. float_of_int (1 lsl (i - j)) in
        let eps = (Rng.float rng 2.0 -. 1.0) *. noise in
        c := Circuit.cp !c (Phase.of_float (exact +. eps)) j i
      done
    done;
    !c
  in
  let n = 10 in
  let exact = noisy_qft n 0.0 and noisy = noisy_qft n 1e-11 in
  List.iter
    (fun tol ->
      let r = Dd_checker.check_miter ~tol exact noisy in
      Printf.printf "tol=%.0e : %-14s peak %7d nodes, final %5d, %.3fs\n" tol
        (Equivalence.outcome_to_string r.Equivalence.outcome)
        r.Equivalence.peak_size r.Equivalence.final_size r.Equivalence.elapsed)
    [ 1e-9; 1e-13 ];
  print_endline
    "(loose tolerance absorbs the noise and keeps the miter at the identity; a tight\n\
    \ tolerance lets numerically distinct weights proliferate, growing the diagram\n\
    \ and losing the equivalence verdict)"

(* (b) The spider count never increases during the ZX check. *)
let ablation_spiders () =
  print_endline "\n== Ablation (b): spider count is non-increasing during ZX checking ==";
  let module Zx_graph = Oqec_zx.Zx_graph in
  let module Zx_circuit = Oqec_zx.Zx_circuit in
  let module Zx_simplify = Oqec_zx.Zx_simplify in
  let g = qft 8 in
  let g' = Compile.run (Architecture.manhattan) g in
  let a, b = Flatten.align g g' in
  let d = Zx_circuit.of_miter (Flatten.flatten a) (Flatten.flatten b) in
  let series = ref [ Zx_graph.spider_count d ] in
  let snap () = series := Zx_graph.spider_count d :: !series in
  ignore (Zx_simplify.spider_simp d);
  snap ();
  Zx_simplify.to_gh d;
  ignore (Zx_simplify.interior_clifford_simp d);
  snap ();
  ignore (Zx_simplify.pivot_gadget_simp d);
  snap ();
  ignore (Zx_simplify.full_reduce d);
  snap ();
  let s = List.rev !series in
  Printf.printf "qft-8 vs compiled: spiders %s\n"
    (String.concat " -> " (List.map string_of_int s));
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a >= b && non_increasing rest
    | _ -> true
  in
  Printf.printf "non-increasing: %b\n" (non_increasing s)

(* (c) Random stimuli refute faulty instances within a few runs. *)
let ablation_simulations opts =
  print_endline "\n== Ablation (c): simulations needed to refute faulty instances ==";
  let cases =
    [
      ("ghz-10", ghz 10);
      ("qft-8", qft 8);
      ("grover-4", grover ~seed:3 4);
      ("adder-4", ripple_adder 4);
      ("qwalk-5", random_walk ~steps:3 5);
    ]
  in
  List.iter
    (fun (name, g) ->
      let arch = Architecture.ring (Circuit.num_qubits g + 2) in
      let g' = Compile.run arch g in
      let broken = remove_gate ~seed:(opts.seed + 3) g' in
      let r = Qcec.check ~strategy:Qcec.Simulation ~sim_runs:16 ~seed:opts.seed g broken in
      Printf.printf "%-10s: %s after %d simulation(s)\n" name
        (Equivalence.outcome_to_string r.Equivalence.outcome)
        r.Equivalence.simulations)
    cases

(* (d) Alternating vs reference construction: peak DD sizes. *)
let ablation_oracle () =
  print_endline "\n== Ablation (d): alternating scheme vs reference construction ==";
  List.iter
    (fun (name, g) ->
      let arch = Architecture.ring (Circuit.num_qubits g + 1) in
      let g' = Compile.run arch g in
      let alt = Dd_checker.check_miter g g' in
      let ref_ = Dd_checker.check_reference g g' in
      Printf.printf "%-10s alternating: peak %7d (%.3fs) ; reference: peak %7d (%.3fs)\n" name
        alt.Equivalence.peak_size alt.Equivalence.elapsed ref_.Equivalence.peak_size
        ref_.Equivalence.elapsed)
    [ ("qft-8", qft 8); ("grover-4", grover ~seed:3 4); ("adder-3", ripple_adder 3) ]

(* ------------------------------------------------- DD engine statistics *)

(* Per-phase span totals (seconds) of a traced run, as a JSON object. *)
let spans_json sink =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) -> Printf.sprintf "%s:%.6f" (Equivalence.json_string k) v)
         (Engine.Trace.totals sink))
  ^ "}"

(* Memory-management behaviour of the DD package on representative miters:
   wall time alongside GC activity and compute-cache efficiency, written
   to BENCH_dd_stats.json for tracking across revisions.  The threshold
   is deliberately low so collections are exercised at these scaled-down
   instance sizes. *)
let dd_stats_bench () =
  let module Dd = Oqec_dd.Dd in
  let module Ccache = Oqec_dd.Ccache in
  print_endline "\n== DD engine statistics (GC + bounded compute tables) ==";
  let gc_threshold = 2048 in
  let cases =
    [
      ("qft-10", qft 10);
      ("grover-5", grover ~seed:3 5);
      ("qwalk-6", random_walk ~steps:6 6);
      ("adder-4", ripple_adder 4);
      ("graphstate-14", graph_state ~seed:3 14);
    ]
  in
  let rows =
    List.map
      (fun (name, g) ->
        let arch = Architecture.ring (Circuit.num_qubits g + 2) in
        let g' = Compile.run arch g in
        let sink = Engine.Trace.create () in
        let ctx = Engine.Ctx.make ~gc_threshold ~sink () in
        let t0 = Mclock.now () in
        let r =
          Engine.run ~ctx ~method_used:Equivalence.Alternating_dd (Dd_checker.scheme_checker ())
            g g'
        in
        let dt = Mclock.now () -. t0 in
        let s = Option.get (Equivalence.dd_stats r) in
        Printf.printf
          "%-14s %-12s %6.3fs  alloc %7d  live %6d  peak %6d  gc %3d  reclaimed %7d  \
           mm-hit %4.1f%%  add-hit %4.1f%%\n%!"
          name
          (Equivalence.outcome_to_string r.Equivalence.outcome)
          dt s.Dd.allocated s.Dd.live s.Dd.peak_live s.Dd.gc_runs s.Dd.gc_reclaimed
          (100.0 *. Ccache.hit_rate s.Dd.mm)
          (100.0 *. Ccache.hit_rate s.Dd.add_);
        (name, dt, r, s, sink))
      cases
  in
  let oc = open_out "BENCH_dd_stats.json" in
  output_string oc "[\n";
  List.iteri
    (fun i (name, dt, r, s, sink) ->
      Printf.fprintf oc
        "  {\"benchmark\":%S,\"outcome\":%S,\"elapsed\":%.6f,\"gc_threshold\":%d,\"dd\":%s,\"spans\":%s}%s\n"
        name
        (Equivalence.outcome_to_string r.Equivalence.outcome)
        dt gc_threshold (Dd.stats_to_json s) (spans_json sink)
        (if i < List.length rows - 1 then "," else ""))
    rows;
  output_string oc "]\n";
  close_out oc;
  let total_gc = List.fold_left (fun acc (_, _, _, s, _) -> acc + s.Dd.gc_runs) 0 rows in
  let total_hits = List.fold_left (fun acc (_, _, _, s, _) -> acc + Dd.cache_hits s) 0 rows in
  Printf.printf "wrote BENCH_dd_stats.json (%d gc run(s), %d cache hit(s) in total)\n"
    total_gc total_hits

(* ---------------------------------------------------- Portfolio benchmark *)

(* Sequential Combined (the paper's emulation: 8-stimulus screen, then the
   alternating scheme) against the parallel portfolio on the same
   instances, written to BENCH_portfolio.json.

   The rare-fault instance targets the screen's blind spot: a Toffoli
   prepended to a reversible network fires only on stimuli with both
   control bits set, and with the chosen seed the first such stimulus has
   index 10 — past the 8-stimulus screen, within the portfolio's 16
   sharded stimuli.  Combined must run the whole agreeing screen before
   the DD scheme can refute; the portfolio races both from the start. *)
let portfolio_bench opts =
  print_endline "\n== Portfolio vs sequential Combined ==";
  let jobs = 2 in
  let sim_runs = 16 in
  let rare_fault g =
    let n = Circuit.num_qubits g in
    Circuit.append (Circuit.ccx (Circuit.create n) 0 1 2) g
  in
  let urf n gates = random_reversible ~seed:2 ~gates n in
  let cases =
    [
      ("qpe-exact-8-compiled", `Equivalent, qpe_exact ~seed:3 7,
       (compiled_instance opts "qpe-8" (qpe_exact ~seed:3 7)).derived);
      ("qft-10-compiled", `Equivalent, qft 10, (compiled_instance opts "qft-10" (qft 10)).derived);
      ("urf-8-rare-fault", `Not_equivalent, urf 8 120, rare_fault (urf 8 120));
      ("urf-9-rare-fault", `Not_equivalent, urf 9 200, rare_fault (urf 9 200));
      ("urf-10-rare-fault", `Not_equivalent, urf 10 300, rare_fault (urf 10 300));
    ]
  in
  let timeout = Float.max opts.timeout 30.0 in
  let rows =
    List.map
      (fun (name, expected, g, g') ->
        let t0 = Mclock.now () in
        let c = Qcec.check ~strategy:Qcec.Combined ~timeout ~sim_runs ~seed:1 g g' in
        let t_c = Mclock.now () -. t0 in
        let sink = Engine.Trace.create () in
        let t1 = Mclock.now () in
        let p =
          Qcec.check ~strategy:Qcec.Portfolio ~timeout ~sim_runs ~seed:1 ~jobs ~sink g g'
        in
        let t_p = Mclock.now () -. t1 in
        let winner = match p.Equivalence.winner with Some w -> w | None -> "-" in
        Printf.printf
          "%-20s combined %-15s %7.3fs | portfolio %-15s %7.3fs (winner %-14s) | speedup %5.2fx\n%!"
          name
          (Equivalence.outcome_to_string c.Equivalence.outcome)
          t_c
          (Equivalence.outcome_to_string p.Equivalence.outcome)
          t_p winner (t_c /. t_p);
        (name, expected, c, t_c, p, t_p, winner, sink))
      cases
  in
  let oc = open_out "BENCH_portfolio.json" in
  output_string oc "[\n";
  List.iteri
    (fun i (name, expected, c, t_c, p, t_p, winner, sink) ->
      Printf.fprintf oc
        "  {\"benchmark\":%S,\"expected\":%S,\"jobs\":%d,\
         \"combined\":{\"outcome\":%S,\"elapsed\":%.6f},\
         \"portfolio\":{\"outcome\":%S,\"elapsed\":%.6f,\"winner\":%S,\"spans\":%s},\
         \"speedup\":%.3f}%s\n"
        name
        (match expected with `Equivalent -> "equivalent" | `Not_equivalent -> "not equivalent")
        jobs
        (Equivalence.outcome_to_string c.Equivalence.outcome)
        t_c
        (Equivalence.outcome_to_string p.Equivalence.outcome)
        t_p winner (spans_json sink)
        (t_c /. t_p)
        (if i < List.length rows - 1 then "," else ""))
    rows;
  output_string oc "]\n";
  close_out oc;
  (* Combined hitting its timeout where the portfolio answers is the
     point of the parallel scheme, not a disagreement. *)
  let agreeing =
    List.for_all
      (fun (_, _, c, _, p, _, _, _) ->
        c.Equivalence.outcome = p.Equivalence.outcome
        || c.Equivalence.outcome = Equivalence.Timed_out)
      rows
  in
  let no_slower =
    List.length (List.filter (fun (_, _, _, t_c, _, t_p, _, _) -> t_p <= t_c) rows)
  in
  let best_faulty =
    List.fold_left
      (fun acc (_, expected, c, t_c, _, t_p, _, _) ->
        match (expected, c.Equivalence.outcome) with
        | `Not_equivalent, Equivalence.Not_equivalent -> Float.max acc (t_c /. t_p)
        | _ -> acc)
      0.0 rows
  in
  Printf.printf
    "wrote BENCH_portfolio.json (conclusive verdicts agree: %b; portfolio <= combined \
     on %d/%d; best conclusive non-equivalent speedup %.2fx)\n"
    agreeing no_slower (List.length rows) best_faulty

(* ----------------------------------------------------------- Trace smoke *)

(* A traced portfolio run written to BENCH_trace.json in Chrome
   trace_event format, with an internal shape check: the trace must carry
   spans from at least three distinct categories (engine + per-checker
   phases), or the instrumentation has regressed. *)
let trace_smoke () =
  print_endline "\n== Trace smoke: traced portfolio run ==";
  let g = qft 8 in
  let g' = Compile.run (Architecture.ring 10) g in
  let sink = Engine.Trace.create () in
  let r = Qcec.check ~strategy:Qcec.Portfolio ~sim_runs:16 ~seed:1 ~jobs:2 ~sink g g' in
  let oc = open_out "BENCH_trace.json" in
  output_string oc (Engine.Trace.to_chrome_json sink);
  output_char oc '\n';
  close_out oc;
  let events = Engine.Trace.events sink in
  let cats =
    List.sort_uniq compare
      (List.filter_map
         (function
           | Engine.Trace.Span { cat; _ } -> Some cat
           | Engine.Trace.Count _ -> None)
         events)
  in
  let spans, counts =
    List.fold_left
      (fun (s, c) -> function
        | Engine.Trace.Span _ -> (s + 1, c)
        | Engine.Trace.Count _ -> (s, c + 1))
      (0, 0) events
  in
  Printf.printf "verdict: %s (winner %s)\n"
    (Equivalence.outcome_to_string r.Equivalence.outcome)
    (match r.Equivalence.winner with Some w -> w | None -> "-");
  Printf.printf "wrote BENCH_trace.json: %d span(s), %d counter sample(s), categories: %s\n"
    spans counts (String.concat " " cats);
  if List.length cats < 3 then begin
    Printf.eprintf "trace smoke FAILED: expected >= 3 span categories\n";
    exit 1
  end

(* ------------------------------------------------------------- Fuzz smoke *)

(* A fixed-seed differential-fuzzing run (100 mixed-profile cases through
   every checker, shrinking enabled), written to BENCH_fuzz.json.  Any
   violation is a checker bug by construction, so failures are fatal. *)
let fuzz_smoke opts =
  let module Fuzz = Oqec_fuzz.Fuzz in
  print_endline "\n== Fuzz smoke: differential oracle over 100 random cases ==";
  let config =
    {
      Fuzz.default_config with
      Fuzz.runs = 100;
      seed = 7;
      shrink = true;
      timeout = opts.timeout;
    }
  in
  let stats = Fuzz.run ~log:print_endline config in
  let oc = open_out "BENCH_fuzz.json" in
  output_string oc (Fuzz.stats_to_json config stats);
  output_char oc '\n';
  close_out oc;
  Printf.printf
    "wrote BENCH_fuzz.json: %d cases, %d failures, %d mutations, %d faults in %.2fs\n"
    stats.Fuzz.cases stats.Fuzz.failures stats.Fuzz.mutations_applied
    stats.Fuzz.faults_injected stats.Fuzz.elapsed;
  if stats.Fuzz.failures > 0 then begin
    Printf.eprintf "fuzz smoke FAILED: %d checker disagreement(s)\n" stats.Fuzz.failures;
    exit 1
  end

(* -------------------------------------------------------------- ZX smoke *)

(* Differential benchmark of the two ZX simplification engines: the
   incremental worklist engine (the default behind Zx_simplify) against
   the preserved full-rescan baseline (Zx_simplify.Rescan).

   Two parts, both written to BENCH_zx.json:
   - timing rows on the Table-1 miters where the rescan engine's
     quadratic re-scans dominate (qwalk-6) or the graphs are large
     enough to expose worklist overhead (qft-12) — the incremental
     engine must be strictly faster on every row;
   - a verdict-agreement sweep over the committed fuzz corpus plus 100
     fixed-seed generated pairs (every profile, equivalent and faulty
     derivations) — any disagreement between the engines is fatal. *)
let zx_smoke opts =
  let module Zx_circuit = Oqec_zx.Zx_circuit in
  let module Zx_simplify = Oqec_zx.Zx_simplify in
  let module Fuzz_gen = Oqec_fuzz.Fuzz_gen in
  let module Fuzz_corpus = Oqec_fuzz.Fuzz_corpus in
  print_endline "\n== ZX smoke: incremental worklist vs rescan baseline ==";
  let reduce engine g g' =
    let a, b = Flatten.align g g' in
    let d = Zx_circuit.of_miter (Flatten.flatten a) (Flatten.flatten b) in
    let deadline = Mclock.now () +. opts.timeout in
    let stop () = Mclock.now () > deadline in
    let t0 = Mclock.now () in
    let completed = engine ~should_stop:stop d in
    let dt = Mclock.now () -. t0 in
    let outcome =
      if not completed then Equivalence.Timed_out
      else
        match Zx_simplify.extract_permutation d with
        | Some p when Perm.is_identity p -> Equivalence.Equivalent
        | Some _ -> Equivalence.Not_equivalent
        | None -> Equivalence.No_information
    in
    { time = dt; outcome }
  in
  let incremental ~should_stop d = Zx_simplify.full_reduce ~should_stop d in
  let rescan ~should_stop d = Zx_simplify.Rescan.full_reduce ~should_stop d in
  let failures = ref 0 in
  (* Timing rows. *)
  let timing =
    List.map
      (fun (name, g) ->
        let inst = compiled_instance opts name g in
        let inc = reduce incremental inst.original inst.derived in
        let res = reduce rescan inst.original inst.derived in
        (* A timed-out rescan makes the speedup a lower bound. *)
        let speedup = res.time /. inc.time in
        Printf.printf "%-10s incremental %8s | rescan %8s | speedup %s%.1fx\n%!" name
          (cell_to_string opts `Equivalent inc)
          (cell_to_string opts `Equivalent res)
          (if res.outcome = Equivalence.Timed_out then ">" else "")
          speedup;
        if inc.outcome <> Equivalence.Equivalent then begin
          incr failures;
          Printf.printf "  FAIL %s: incremental engine answered %s, expected equivalent\n"
            name
            (Equivalence.outcome_to_string inc.outcome)
        end;
        if inc.time >= res.time then begin
          incr failures;
          Printf.printf "  FAIL %s: incremental (%.3fs) not faster than rescan (%.3fs)\n"
            name inc.time res.time
        end;
        (name, inc, res, speedup))
      [ ("qwalk-6", random_walk ~steps:6 6); ("qft-12", qft 12) ]
  in
  (* Verdict agreement: corpus replays plus fixed-seed generated pairs. *)
  let mismatches = ref 0 in
  let agree name g g' =
    let inc = reduce incremental g g' in
    let res = reduce rescan g g' in
    if inc.outcome <> res.outcome then begin
      incr mismatches;
      Printf.printf "  MISMATCH %s: incremental %s, rescan %s\n" name
        (Equivalence.outcome_to_string inc.outcome)
        (Equivalence.outcome_to_string res.outcome)
    end
  in
  let corpus_dir = "corpus" in
  let corpus = Fuzz_corpus.load corpus_dir in
  List.iter
    (fun e ->
      let g, g' = Fuzz_corpus.load_pair corpus_dir e in
      agree ("corpus:" ^ e.Fuzz_corpus.id) g g')
    corpus;
  if corpus = [] then
    Printf.printf "  (corpus directory %S empty or absent — generated pairs only)\n"
      corpus_dir;
  let generated = 100 in
  let rng = Rng.make ~seed:11 in
  let profiles = Fuzz_gen.all_profiles in
  for i = 0 to generated - 1 do
    let profile = List.nth profiles (i mod List.length profiles) in
    let n = 2 + Rng.int rng 5 in
    let gates = 5 + Rng.int rng 20 in
    let g = Fuzz_gen.circuit profile rng ~num_qubits:n ~gates in
    let g' =
      if i mod 2 = 0 then Compile.run (Architecture.ring (n + 2)) g
      else remove_gate ~seed:(1000 + i) g
    in
    agree (Printf.sprintf "gen-%03d" i) g g'
  done;
  Printf.printf "agreement: %d corpus + %d generated pairs, %d mismatch(es)\n"
    (List.length corpus) generated !mismatches;
  let oc = open_out "BENCH_zx.json" in
  output_string oc "{\n  \"timing\": [\n";
  List.iteri
    (fun i (name, inc, res, speedup) ->
      Printf.fprintf oc
        "    {\"benchmark\":%S,\
         \"incremental\":{\"outcome\":%S,\"elapsed\":%.6f},\
         \"rescan\":{\"outcome\":%S,\"elapsed\":%.6f},\
         \"speedup\":%.3f}%s\n"
        name
        (Equivalence.outcome_to_string inc.outcome)
        inc.time
        (Equivalence.outcome_to_string res.outcome)
        res.time speedup
        (if i < List.length timing - 1 then "," else ""))
    timing;
  Printf.fprintf oc
    "  ],\n  \"agreement\": {\"corpus\": %d, \"generated\": %d, \"mismatches\": %d}\n}\n"
    (List.length corpus) generated !mismatches;
  close_out oc;
  Printf.printf "wrote BENCH_zx.json\n";
  if !mismatches > 0 || !failures > 0 then begin
    Printf.eprintf "zx smoke FAILED: %d verdict mismatch(es), %d timing failure(s)\n"
      !mismatches !failures;
    exit 1
  end

(* ------------------------------------------------------------ Cert smoke *)

(* Certificate emission plus independent validation, written to
   BENCH_cert.json:

   - Table-1 compiled miters checked with the ZX strategy, plus one
     deliberately broken pair refuted by simulation — every verdict
     must carry a certificate that survives a serialize/parse round
     trip and passes the independent validator; rows record the
     certificate size and validation time;
   - a sweep of the committed fuzz corpus through the combined
     checker — any attached certificate failing validation is fatal. *)
let cert_smoke opts =
  let module Cert = Oqec_cert.Cert in
  let module Validate = Oqec_cert.Cert_validate in
  let module Fuzz_corpus = Oqec_fuzz.Fuzz_corpus in
  print_endline "\n== Cert smoke: verdict certificates + independent validator ==";
  let failures = ref 0 in
  let steps_of = function
    | Cert.Zx_proof { steps; _ } -> List.length steps
    | Cert.Witness _ -> 0
  in
  let certify name strategy expected g g' =
    let t0 = Mclock.now () in
    let r = Qcec.check ~strategy ~timeout:opts.timeout ~sim_runs:16 ~seed:opts.seed g g' in
    let check_time = Mclock.now () -. t0 in
    let outcome = r.Equivalence.outcome in
    if outcome <> expected then begin
      incr failures;
      Printf.printf "  FAIL %s: expected %s, engine answered %s\n" name
        (Equivalence.outcome_to_string expected)
        (Equivalence.outcome_to_string outcome)
    end;
    match r.Equivalence.certificate with
    | None ->
        incr failures;
        Printf.printf "  FAIL %s: verdict carries no certificate\n" name;
        (name, outcome, "none", 0, 0, check_time, 0.0)
    | Some c ->
        let wire = Cert.serialize c in
        let t1 = Mclock.now () in
        let verdict =
          match Cert.parse wire with
          | Error e -> Error ("round trip: " ^ e)
          | Ok c' when not (Cert.equal c c') -> Error "round trip: not a fixpoint"
          | Ok c' -> Validate.validate c'
        in
        let validate_time = Mclock.now () -. t1 in
        (match verdict with
        | Ok () -> ()
        | Error e ->
            incr failures;
            Printf.printf "  FAIL %s: %s\n" name e);
        let kind =
          match c with Cert.Zx_proof _ -> "zx-proof" | Cert.Witness _ -> "witness"
        in
        Printf.printf "%-14s %-14s %-8s %5d steps %8d bytes  check %.3fs  validate %.3fs\n%!"
          name
          (Equivalence.outcome_to_string outcome)
          kind (steps_of c) (String.length wire) check_time validate_time;
        (name, outcome, kind, steps_of c, String.length wire, check_time, validate_time)
  in
  let rows =
    List.map
      (fun (name, g) ->
        let inst = compiled_instance opts name g in
        certify name Qcec.Zx Equivalence.Equivalent inst.original inst.derived)
      [ ("ghz-6", ghz 6); ("qft-4", qft 4); ("graphstate-6", graph_state ~seed:3 6) ]
    @ [
        (let g = ghz 5 in
         certify "ghz-5-broken" Qcec.Simulation Equivalence.Not_equivalent g
           (remove_gate ~seed:5 g));
      ]
  in
  (* Corpus sweep: every decisive combined-checker verdict on a committed
     regression pair must be certifiable (on demand when the winning
     checker attaches none, as `oqec check --certify` does), and the
     certificate must pass independent validation. *)
  let corpus_dir = "corpus" in
  let corpus = Fuzz_corpus.load corpus_dir in
  let certified = ref 0 in
  List.iter
    (fun e ->
      let g, g' = Fuzz_corpus.load_pair corpus_dir e in
      let r =
        Qcec.check ~strategy:Qcec.Combined ~timeout:opts.timeout ~sim_runs:16
          ~seed:opts.seed g g'
      in
      let outcome = r.Equivalence.outcome in
      let cert =
        match r.Equivalence.certificate with
        | Some c -> Ok c
        | None -> Certify.certify outcome g g'
      in
      match (outcome, cert) with
      | (Equivalence.Equivalent | Equivalence.Not_equivalent), Ok c -> (
          incr certified;
          match Validate.validate c with
          | Ok () -> ()
          | Error err ->
              incr failures;
              Printf.printf "  FAIL corpus:%s: %s\n" e.Fuzz_corpus.id err)
      | (Equivalence.Equivalent | Equivalence.Not_equivalent), Error err ->
          incr failures;
          Printf.printf "  FAIL corpus:%s: decisive verdict not certifiable: %s\n"
            e.Fuzz_corpus.id err
      | _ -> ())
    corpus;
  if corpus = [] then
    Printf.printf "  (corpus directory %S empty or absent — Table-1 rows only)\n"
      corpus_dir;
  Printf.printf "corpus: %d entries, %d certified, %d total failure(s)\n"
    (List.length corpus) !certified !failures;
  let oc = open_out "BENCH_cert.json" in
  output_string oc "{\n  \"instances\": [\n";
  List.iteri
    (fun i (name, outcome, kind, steps, bytes, check_time, validate_time) ->
      Printf.fprintf oc
        "    {\"benchmark\":%S,\"outcome\":%S,\"kind\":%S,\"steps\":%d,\"bytes\":%d,\
         \"elapsed\":%.6f,\"validate_elapsed\":%.6f}%s\n"
        name
        (Equivalence.outcome_to_string outcome)
        kind steps bytes check_time validate_time
        (if i < List.length rows - 1 then "," else ""))
    rows;
  Printf.fprintf oc
    "  ],\n  \"corpus\": {\"entries\": %d, \"certified\": %d, \"failures\": %d}\n}\n"
    (List.length corpus) !certified !failures;
  close_out oc;
  Printf.printf "wrote BENCH_cert.json\n";
  if !failures > 0 then begin
    Printf.eprintf "cert smoke FAILED: %d failure(s)\n" !failures;
    exit 1
  end

(* ---------------------------------------------------- Arena DD benchmark *)

(* Boxed vs arena DD core on the DD-heavy Table-1 miters, plus the
   streamed large-circuit tier (generator-backed twin pairs far larger
   than the batch representation is meant for), written to
   BENCH_dd_arena.json.

   Self-checking on the properties the arena core must hold:
   - the two cores must agree on every verdict (fatal otherwise — the
     representation must never leak into the answer);
   - the arena must reach >= 2x on at least two instances (fatal
     otherwise — the point of the struct-of-arrays core);
   - the process peak RSS is recorded so the baseline gate catches
     memory regressions (an arena whose capacity grows with total
     allocations instead of live size). *)
let dd_arena_bench opts =
  print_endline "\n== Arena DD core vs boxed baseline ==";
  let failures = ref 0 in
  let speedups = ref [] in
  let check_agreement name boxed arena =
    if boxed <> arena then begin
      incr failures;
      Printf.printf "  FAIL %s: boxed %s, arena %s\n" name
        (Equivalence.outcome_to_string boxed)
        (Equivalence.outcome_to_string arena)
    end
  in
  (* DD-heavy miters: the alternating scheme alone (no simulation
     screen), so the whole wall time is DD manipulation. *)
  let miter_rows =
    List.map
      (fun (name, g) ->
        let inst = compiled_instance opts name g in
        let time core =
          let t0 = Mclock.now () in
          let r =
            Qcec.check ~strategy:Qcec.Alternating ~timeout:opts.timeout
              ~seed:opts.seed ~dd_core:core inst.original inst.derived
          in
          (Mclock.now () -. t0, r.Equivalence.outcome)
        in
        let t_boxed, o_boxed = time Oqec_dd.Dd_core.Boxed in
        let t_arena, o_arena = time Oqec_dd.Dd_core.Arena in
        check_agreement name o_boxed o_arena;
        let speedup = t_boxed /. t_arena in
        speedups := (name, speedup) :: !speedups;
        Printf.printf "%-16s boxed %-14s %7.3fs | arena %-14s %7.3fs | speedup %5.2fx\n%!"
          name
          (Equivalence.outcome_to_string o_boxed)
          t_boxed
          (Equivalence.outcome_to_string o_arena)
          t_arena speedup;
        (name, o_boxed, t_boxed, o_arena, t_arena, speedup))
      [
        ("qft-12", qft 12);
        ("qpe-exact-11", qpe_exact ~seed:3 10);
        ("qwalk-6", random_walk ~steps:6 6);
        ("graphstate-14", graph_state ~seed:3 14);
      ]
  in
  (* Streamed tier: twin pairs produced by the generator with barrier
     sync points, checked straight off the files.  Far larger than the
     miter rows — this is where the flat node store pays. *)
  let stream_gates = match opts.scale with Small -> 100_000 | Paper -> 1_000_000 in
  let emit twin =
    let path = Filename.temp_file "oqec_bench" ".qasm" in
    let oc = open_out path in
    stream_qasm ~seed:11 ~qubits:8 ~gates:stream_gates ~barrier_every:500 ~twin oc;
    close_out oc;
    path
  in
  let base = emit false and twin = emit true in
  let stream_rows =
    Fun.protect
      ~finally:(fun () ->
        Sys.remove base;
        Sys.remove twin)
      (fun () ->
        List.map
          (fun (label, core) ->
            let t0 = Mclock.now () in
            let r = Stream_checker.check ~core base twin in
            let dt = Mclock.now () -. t0 in
            Printf.printf "stream-%-9s %-14s %7.3fs (%d gates, twin pair)\n%!" label
              (Equivalence.outcome_to_string r.Equivalence.outcome)
              dt stream_gates;
            (label, r.Equivalence.outcome, dt))
          [ ("boxed", Oqec_dd.Dd_core.Boxed); ("arena", Oqec_dd.Dd_core.Arena) ])
  in
  (match stream_rows with
  | [ (_, o_boxed, t_boxed); (_, o_arena, t_arena) ] ->
      check_agreement "stream-twin" o_boxed o_arena;
      if o_arena <> Equivalence.Equivalent then begin
        incr failures;
        Printf.printf "  FAIL stream-twin: expected equivalent, got %s\n"
          (Equivalence.outcome_to_string o_arena)
      end;
      let speedup = t_boxed /. t_arena in
      speedups := ("stream-twin", speedup) :: !speedups;
      Printf.printf "stream speedup %.2fx\n" speedup
  | _ -> assert false);
  let mem_peak_kb = Option.value ~default:0 (Meminfo.vm_hwm_kb ()) in
  let fast = List.filter (fun (_, s) -> s >= 2.0) !speedups in
  Printf.printf "instances at >= 2x: %d/%d%s; peak RSS %d kB\n"
    (List.length fast) (List.length !speedups)
    (match fast with
    | [] -> ""
    | _ -> " (" ^ String.concat " " (List.map fst fast) ^ ")")
    mem_peak_kb;
  let oc = open_out "BENCH_dd_arena.json" in
  output_string oc "{\n  \"miters\": [\n";
  List.iteri
    (fun i (name, o_boxed, t_boxed, o_arena, t_arena, speedup) ->
      Printf.fprintf oc
        "    {\"benchmark\":%S,\
         \"boxed\":{\"outcome\":%S,\"elapsed\":%.6f},\
         \"arena\":{\"outcome\":%S,\"elapsed\":%.6f},\
         \"speedup\":%.3f}%s\n"
        name
        (Equivalence.outcome_to_string o_boxed)
        t_boxed
        (Equivalence.outcome_to_string o_arena)
        t_arena speedup
        (if i < List.length miter_rows - 1 then "," else ""))
    miter_rows;
  output_string oc "  ],\n  \"stream\": [\n";
  List.iteri
    (fun i (label, outcome, dt) ->
      Printf.fprintf oc
        "    {\"benchmark\":\"stream-%s\",\"gates\":%d,\"outcome\":%S,\"elapsed\":%.6f}%s\n"
        label stream_gates
        (Equivalence.outcome_to_string outcome)
        dt
        (if i < List.length stream_rows - 1 then "," else ""))
    stream_rows;
  Printf.fprintf oc
    "  ],\n  \"mem_peak_kb\": %d,\n  \"speedups_ge_2x\": %d,\n  \"failures\": %d\n}\n"
    mem_peak_kb (List.length fast) !failures;
  close_out oc;
  Printf.printf "wrote BENCH_dd_arena.json\n";
  if !failures > 0 || List.length fast < 2 then begin
    Printf.eprintf "dd-arena FAILED: %d disagreement(s), %d/%d instance(s) at >= 2x\n"
      !failures (List.length fast) (List.length !speedups);
    exit 1
  end

(* ---------------------------------------- Application-scheme benchmark *)

(* All four concrete application schemes plus the profile-guided auto
   mode on the DD-heavy compiled Table-1 miters, written to
   BENCH_dd_schemes.json.  The measured winners are persisted as the
   dispatch table (bench/dispatch.json) that [--dd-scheme auto]
   consults, so the profiling run and the profile consumer can never
   drift: auto is timed against the table this very run just wrote.

   Self-checking:
   - every scheme must agree on every conclusive verdict (fatal — a
     scheme only reorders gate applications, it must never change the
     answer; a timeout is not a disagreement);
   - auto must match or beat alternating on every row, within a noise
     allowance (fatal otherwise — the fallback for unseen fingerprints
     IS alternating, so auto being slower means the table misfired);
   - at least two rows must improve >= 1.5x under some non-alternating
     scheme (fatal otherwise — on compiled instances |G'| >> |G|, so
     strict 1:1 alternation starves the short side and the scheme
     family is the point of the refactor). *)
let dd_schemes_bench opts =
  print_endline "\n== DD application schemes on compiled Table-1 miters ==";
  let failures = ref 0 in
  let conclusive = function
    | Equivalence.Equivalent | Equivalence.Not_equivalent -> true
    | Equivalence.No_information | Equivalence.Timed_out -> false
  in
  let time ?table scheme inst =
    let t0 = Mclock.now () in
    let r =
      Qcec.check ~strategy:Qcec.Alternating ~timeout:opts.timeout ~seed:opts.seed
        ~scheme ?table inst.original inst.derived
    in
    (Mclock.now () -. t0, r.Equivalence.outcome, r.Equivalence.peak_size)
  in
  (* Concrete schemes first; their winners become the dispatch table. *)
  let measured =
    List.map
      (fun (name, g) ->
        let inst = compiled_instance opts name g in
        let runs = List.map (fun s -> (s, time s inst)) Dd_scheme.all in
        (match List.filter (fun (_, (_, o, _)) -> conclusive o) runs with
        | [] -> ()
        | (s0, (_, o0, _)) :: rest ->
            List.iter
              (fun (s, (_, o, _)) ->
                if o <> o0 then begin
                  incr failures;
                  Printf.printf "  FAIL %s: %s says %s but %s says %s\n" name
                    (Dd_scheme.to_string s)
                    (Equivalence.outcome_to_string o)
                    (Dd_scheme.to_string s0)
                    (Equivalence.outcome_to_string o0)
                end)
              rest);
        let best =
          List.fold_left
            (fun acc ((_, (dt, o, _)) as r) ->
              if not (conclusive o) then acc
              else
                match acc with
                | Some (_, (best_dt, _, _)) when best_dt <= dt -> acc
                | _ -> Some r)
            None runs
        in
        (name, inst, runs, best))
      [
        ("qft-12", qft 12);
        ("qpe-exact-11", qpe_exact ~seed:3 10);
        ("qwalk-6", random_walk ~steps:6 6);
        ("graphstate-14", graph_state ~seed:3 14);
      ]
  in
  (* Persist the winners: one entry per distinct fingerprint (first row
     wins on a collision — the rows are fixed, so a collision means the
     instances are structurally indistinguishable anyway). *)
  let table =
    List.fold_left
      (fun acc (_, inst, _, best) ->
        match best with
        | None -> acc
        | Some (s, _) ->
            let fp = Dd_dispatch.fingerprint inst.original inst.derived in
            if List.exists (fun e -> e.Dd_dispatch.fingerprint = fp) acc then acc
            else acc @ [ { Dd_dispatch.fingerprint = fp; scheme = s } ])
      [] measured
  in
  let dispatch_path =
    if Sys.file_exists "bench" && Sys.is_directory "bench" then Dd_dispatch.default_path
    else Filename.basename Dd_dispatch.default_path
  in
  Dd_dispatch.save dispatch_path table;
  Printf.printf "wrote %s (%d entr%s)\n" dispatch_path (List.length table)
    (if List.length table = 1 then "y" else "ies");
  (* Auto against the freshly written table, plus the per-row summary. *)
  let rows =
    List.map
      (fun (name, inst, runs, best) ->
        let auto = time ~table Dd_scheme.Auto inst in
        let resolved = Dd_dispatch.choose ~table inst.original inst.derived in
        let t_auto, o_auto, _ = auto in
        let t_alt, o_alt, _ = List.assoc Dd_scheme.Alternating runs in
        (match List.filter (fun (_, (_, o, _)) -> conclusive o) runs with
        | (_, (_, o0, _)) :: _ when conclusive o_auto && o_auto <> o0 ->
            incr failures;
            Printf.printf "  FAIL %s: auto says %s but the concrete schemes say %s\n"
              name
              (Equivalence.outcome_to_string o_auto)
              (Equivalence.outcome_to_string o0)
        | _ -> ());
        if conclusive o_alt && not (conclusive o_auto) then begin
          incr failures;
          Printf.printf "  FAIL %s: auto %s where alternating concluded\n" name
            (Equivalence.outcome_to_string o_auto)
        end;
        if conclusive o_alt && t_auto > (t_alt *. 1.25) +. 0.1 then begin
          incr failures;
          Printf.printf "  FAIL %s: auto %.3fs slower than alternating %.3fs\n" name
            t_auto t_alt
        end;
        (* Best non-alternating speedup over alternating; a timed-out
           alternating run makes it a lower bound. *)
        let speedup =
          List.fold_left
            (fun acc (s, (dt, o, _)) ->
              if s = Dd_scheme.Alternating || not (conclusive o) then acc
              else Float.max acc (t_alt /. dt))
            0.0 runs
        in
        List.iter
          (fun (s, (dt, o, peak)) ->
            Printf.printf "%-16s %-12s %-14s %7.3fs  peak %7d\n%!" name
              (Dd_scheme.to_string s)
              (Equivalence.outcome_to_string o)
              dt peak)
          (runs @ [ (Dd_scheme.Auto, auto) ]);
        Printf.printf "%-16s best %s, non-alternating speedup %s%.2fx (auto -> %s)\n%!"
          name
          (match best with Some (s, _) -> Dd_scheme.to_string s | None -> "-")
          (if conclusive o_alt then "" else ">=")
          speedup
          (Dd_scheme.to_string resolved);
        (name, runs, auto, resolved, speedup))
      measured
  in
  let fast = List.filter (fun (_, _, _, _, s) -> s >= 1.5) rows in
  Printf.printf "rows at >= 1.5x under a non-alternating scheme: %d/%d%s\n"
    (List.length fast) (List.length rows)
    (match fast with
    | [] -> ""
    | _ -> " (" ^ String.concat " " (List.map (fun (n, _, _, _, _) -> n) fast) ^ ")");
  let oc = open_out "BENCH_dd_schemes.json" in
  output_string oc "{\n  \"rows\": [\n";
  let scheme_cell (dt, o, peak) =
    (* A timed-out wall time only measures where the deadline poll
       landed inside a long multiply, so it stays out of the gated
       "elapsed" key. *)
    Printf.sprintf "{\"outcome\":%S,\"%s\":%.6f,\"peak_size\":%d}"
      (Equivalence.outcome_to_string o)
      (if conclusive o then "elapsed" else "elapsed_timeout")
      dt peak
  in
  List.iteri
    (fun i (name, runs, auto, resolved, speedup) ->
      Printf.fprintf oc "    {\"benchmark\":%S,%s,\"auto\":%s,\"resolved\":%S,\
                         \"best_speedup_vs_alternating\":%.3f}%s\n"
        name
        (String.concat ","
           (List.map
              (fun (s, cell) ->
                Printf.sprintf "\"%s\":%s" (Dd_scheme.to_string s) (scheme_cell cell))
              runs))
        (scheme_cell auto)
        (Dd_scheme.to_string resolved)
        speedup
        (if i < List.length rows - 1 then "," else ""))
    rows;
  Printf.fprintf oc
    "  ],\n  \"dispatch_entries\": %d,\n  \"rows_ge_1_5x\": %d,\n  \"failures\": %d\n}\n"
    (List.length table) (List.length fast) !failures;
  close_out oc;
  Printf.printf "wrote BENCH_dd_schemes.json\n";
  if !failures > 0 || List.length fast < 2 then begin
    Printf.eprintf "dd-schemes FAILED: %d failure(s), %d/%d row(s) at >= 1.5x\n"
      !failures (List.length fast) (List.length rows);
    exit 1
  end

(* ------------------------------------------------------- Micro (Bechamel) *)

let micro () =
  print_endline "\n== Bechamel micro-benchmarks ==";
  let open Bechamel in
  let module Dd = Oqec_dd.Dd in
  let module Dd_circuit = Oqec_dd.Dd_circuit in
  let module Zx_circuit = Oqec_zx.Zx_circuit in
  let module Zx_simplify = Oqec_zx.Zx_simplify in
  let ghz8 = ghz 8 and qft6 = qft 6 in
  let grouped =
    Test.make_grouped ~name:"oqec" ~fmt:"%s %s"
      [
        Test.make ~name:"dd: ghz-8 miter check"
          (Staged.stage (fun () -> ignore (Dd_checker.check_miter ghz8 ghz8)));
        Test.make ~name:"dd: qft-6 circuit build"
          (Staged.stage (fun () ->
               let pkg = Dd.create () in
               ignore (Dd_circuit.of_circuit pkg qft6)));
        Test.make ~name:"zx: qft-6 miter full_reduce"
          (Staged.stage (fun () ->
               let d = Zx_circuit.of_miter qft6 qft6 in
               ignore (Zx_simplify.full_reduce d)));
        Test.make ~name:"sim: ghz-8 random stimulus"
          (Staged.stage (fun () -> ignore (Sim_checker.check ~runs:1 ghz8 ghz8)));
      ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] grouped in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name est acc -> (name, est) :: acc) results [] in
  List.iter
    (fun (name, est) ->
      match Analyze.OLS.estimates est with
      | Some [ t ] -> Printf.printf "%-36s %12.1f ns/run\n" name t
      | Some _ | None -> Printf.printf "%-36s (no estimate)\n" name)
    (List.sort compare rows)

(* ----------------------------------------------------------------- Main *)

let () =
  let rec split opts cmds = function
    | [] -> (opts, List.rev cmds)
    | "--paper" :: rest -> split { opts with scale = Paper } cmds rest
    | "--timeout" :: v :: rest -> split { opts with timeout = float_of_string v } cmds rest
    | "--seed" :: v :: rest -> split { opts with seed = int_of_string v } cmds rest
    | cmd :: rest -> split opts (cmd :: cmds) rest
  in
  let opts, cmds = split default_options [] (List.tl (Array.to_list Sys.argv)) in
  let run_ablations () =
    ablation_tolerance ();
    ablation_spiders ();
    ablation_simulations opts;
    ablation_oracle ()
  in
  let dispatch = function
    | "fig1" -> fig1 ()
    | "fig2" -> fig2 ()
    | "fig3" -> fig3 ()
    | "fig4" -> fig4 ()
    | "fig5" -> fig5 ()
    | "fig6" -> fig6 ()
    | "table1-compiled" ->
        run_table opts "Table 1 (top): compiled circuits" (compiled_suite opts)
    | "table1-optimized" ->
        run_table opts "Table 1 (bottom): optimized circuits" (optimized_suite opts)
    | "table-extended" -> run_extended opts
    | "ablations" -> run_ablations ()
    | "dd-stats" -> dd_stats_bench ()
    | "dd-arena" -> dd_arena_bench opts
    | "dd-schemes" -> dd_schemes_bench opts
    | "portfolio" -> portfolio_bench opts
    | "trace-smoke" -> trace_smoke ()
    | "fuzz-smoke" -> fuzz_smoke opts
    | "zx-smoke" -> zx_smoke opts
    | "cert-smoke" -> cert_smoke opts
    | "micro" -> micro ()
    | "all" ->
        List.iter (fun f -> f ()) [ fig1; fig2; fig3; fig4; fig5; fig6 ];
        run_table opts "Table 1 (top): compiled circuits" (compiled_suite opts);
        run_table opts "Table 1 (bottom): optimized circuits" (optimized_suite opts);
        run_extended opts;
        run_ablations ();
        dd_stats_bench ();
        dd_arena_bench opts;
        dd_schemes_bench opts;
        portfolio_bench opts;
        trace_smoke ();
        fuzz_smoke opts;
        zx_smoke opts;
        cert_smoke opts
    | other ->
        Printf.eprintf
          "unknown command %S (use fig1..fig6, table1-compiled, table1-optimized, table-extended, ablations, dd-stats, dd-arena, dd-schemes, portfolio, trace-smoke, fuzz-smoke, zx-smoke, cert-smoke, micro, all)\n"
          other;
        exit 2
  in
  match cmds with [] -> dispatch "all" | cmds -> List.iter dispatch cmds
