(** OpenQASM 2.0 reader and writer.

    QASM serves as the common interchange format between the benchmark
    generators, the compiler and both equivalence checkers, exactly as in
    the paper's experimental setup (Section 6.1).

    Supported subset: version header, [include] (recorded and ignored;
    the qelib1 gate vocabulary is built in), [qreg]/[creg], gate
    applications with parameter expressions over [pi], user [gate]
    definitions (expanded as macros), register broadcasting, [barrier],
    [measure] and [reset] (recorded; resets are rejected mid-circuit).
    Classical control ([if]) is not supported. *)

open Oqec_circuit

exception Parse_error of string
(** Raised with a human-readable message including a line number. *)

type t = {
  circuit : Circuit.t;
  measures : (int * int) list;
      (** pairs (qubit wire, classical bit) in program order *)
}

(** [parse_string src] elaborates a QASM program into a circuit.  When the
    measurements form a permutation pattern covering all qubits, the
    circuit's output permutation metadata is set accordingly (classical
    bit [c] holds logical qubit [c], measured on wire [q]). *)
val parse_string : string -> t

val parse_file : string -> t

(** [circuit_of_string src] is [ (parse_string src).circuit ]. *)
val circuit_of_string : string -> Circuit.t

val circuit_of_file : string -> Circuit.t

(** [to_string c] renders a circuit as OpenQASM 2.0.  Operations without a
    qelib1 spelling (controlled gates with five or more controls) raise
    [Invalid_argument]; decompose them first (see [Oqec_compile]).  The
    output round-trips through [parse_string], including layout metadata:
    the output permutation is expressed through measurement targets and
    the initial layout through an [// oqec:layout] comment. *)
val to_string : Circuit.t -> string

val write_file : string -> Circuit.t -> unit
