lib/qasm/qasm_ast.ml:
