lib/qasm/qasm_parser.ml: List Printf Qasm_ast Qasm_lexer
