lib/qasm/qasm_lexer.ml: Printf String
