lib/qasm/qasm.mli: Circuit Oqec_circuit
