lib/qasm/qasm.ml: Array Buffer Circuit Float Gate Hashtbl List Oqec_base Oqec_circuit Perm Phase Printf Qasm_ast Qasm_lexer Qasm_parser String
