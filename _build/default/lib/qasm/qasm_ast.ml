(* Abstract syntax of the supported OpenQASM 2.0 subset. *)

type expr =
  | Num of float
  | Pi
  | Ident of string  (* gate parameter reference inside a gate body *)
  | Neg of expr
  | Binop of char * expr * expr  (* '+', '-', '*', '/', '^' *)
  | Call of string * expr  (* sin, cos, tan, exp, ln, sqrt *)

(* A quantum argument: a whole register [q] or one element [q[i]]. *)
type arg = { reg : string; index : int option }

type gate_app = {
  gate_name : string;
  params : expr list;
  args : arg list;
}

type stmt =
  | Qreg of string * int
  | Creg of string * int
  | Gate_def of gate_def
  | App of gate_app
  | Barrier of arg list
  | Measure of arg * arg
  | Reset of arg
  | Include of string

and gate_def = {
  def_name : string;
  def_params : string list;
  def_qargs : string list;
  def_body : gate_app list;  (* barriers inside bodies are dropped *)
}

type program = stmt list
