open Oqec_base
open Oqec_circuit

exception Parse_error of string

type t = { circuit : Circuit.t; measures : (int * int) list }

(* ------------------------------------------------------------ Evaluation *)

let rec eval_expr env (e : Qasm_ast.expr) : float =
  match e with
  | Qasm_ast.Num f -> f
  | Qasm_ast.Pi -> Float.pi
  | Qasm_ast.Ident name -> (
      match List.assoc_opt name env with
      | Some v -> v
      | None -> raise (Parse_error (Printf.sprintf "unbound parameter %S" name)))
  | Qasm_ast.Neg e -> -.eval_expr env e
  | Qasm_ast.Binop (op, a, b) -> (
      let a = eval_expr env a and b = eval_expr env b in
      match op with
      | '+' -> a +. b
      | '-' -> a -. b
      | '*' -> a *. b
      | '/' -> a /. b
      | '^' -> Float.pow a b
      | c -> raise (Parse_error (Printf.sprintf "unknown operator %C" c)))
  | Qasm_ast.Call (f, e) -> (
      let v = eval_expr env e in
      match f with
      | "sin" -> sin v
      | "cos" -> cos v
      | "tan" -> tan v
      | "exp" -> exp v
      | "ln" -> log v
      | "sqrt" -> sqrt v
      | _ -> raise (Parse_error (Printf.sprintf "unknown function %S" f)))

(* ------------------------------------------------------- Builtin gates *)

(* Each builtin maps evaluated parameters and resolved wires to ops.
   [arity] is (number of parameters, number of qubit arguments). *)

let single g = fun _ wires ->
  match wires with [ q ] -> [ Circuit.Gate (g, q) ] | _ -> assert false

let single1 mk = fun ps wires ->
  match (ps, wires) with
  | [ a ], [ q ] -> [ Circuit.Gate (mk a, q) ]
  | _ -> assert false

let ctrl1 g = fun _ wires ->
  match wires with [ c; t ] -> [ Circuit.Ctrl ([ c ], g, t) ] | _ -> assert false

let ctrl1p mk = fun ps wires ->
  match (ps, wires) with
  | [ a ], [ c; t ] -> [ Circuit.Ctrl ([ c ], mk a, t) ]
  | _ -> assert false

let builtins :
    (string * (int * int * (Phase.t list -> int list -> Circuit.op list))) list =
  [
    ("id", (0, 1, single Gate.I));
    ("x", (0, 1, single Gate.X));
    ("y", (0, 1, single Gate.Y));
    ("z", (0, 1, single Gate.Z));
    ("h", (0, 1, single Gate.H));
    ("s", (0, 1, single Gate.S));
    ("sdg", (0, 1, single Gate.Sdg));
    ("t", (0, 1, single Gate.T));
    ("tdg", (0, 1, single Gate.Tdg));
    ("sx", (0, 1, single Gate.Sx));
    ("sxdg", (0, 1, single Gate.Sxdg));
    ("rx", (1, 1, single1 (fun a -> Gate.Rx a)));
    ("ry", (1, 1, single1 (fun a -> Gate.Ry a)));
    ("rz", (1, 1, single1 (fun a -> Gate.Rz a)));
    ("p", (1, 1, single1 (fun a -> Gate.P a)));
    ("u1", (1, 1, single1 (fun a -> Gate.P a)));
    ( "u2",
      ( 2,
        1,
        fun ps wires ->
          match (ps, wires) with
          | [ a; b ], [ q ] -> [ Circuit.Gate (Gate.U (Phase.half_pi, a, b), q) ]
          | _ -> assert false ) );
    ( "u3",
      ( 3,
        1,
        fun ps wires ->
          match (ps, wires) with
          | [ a; b; c ], [ q ] -> [ Circuit.Gate (Gate.U (a, b, c), q) ]
          | _ -> assert false ) );
    ( "u",
      ( 3,
        1,
        fun ps wires ->
          match (ps, wires) with
          | [ a; b; c ], [ q ] -> [ Circuit.Gate (Gate.U (a, b, c), q) ]
          | _ -> assert false ) );
    ("cx", (0, 2, ctrl1 Gate.X));
    ("CX", (0, 2, ctrl1 Gate.X));
    ("cy", (0, 2, ctrl1 Gate.Y));
    ("cz", (0, 2, ctrl1 Gate.Z));
    ("ch", (0, 2, ctrl1 Gate.H));
    ("csx", (0, 2, ctrl1 Gate.Sx));
    ("cp", (1, 2, ctrl1p (fun a -> Gate.P a)));
    ("cu1", (1, 2, ctrl1p (fun a -> Gate.P a)));
    ("crx", (1, 2, ctrl1p (fun a -> Gate.Rx a)));
    ("cry", (1, 2, ctrl1p (fun a -> Gate.Ry a)));
    ("crz", (1, 2, ctrl1p (fun a -> Gate.Rz a)));
    ( "cu3",
      ( 3,
        2,
        fun ps wires ->
          match (ps, wires) with
          | [ a; b; c ], [ ctl; tgt ] -> [ Circuit.Ctrl ([ ctl ], Gate.U (a, b, c), tgt) ]
          | _ -> assert false ) );
    ( "swap",
      ( 0,
        2,
        fun _ wires ->
          match wires with [ a; b ] -> [ Circuit.Swap (a, b) ] | _ -> assert false ) );
    ( "ccx",
      ( 0,
        3,
        fun _ wires ->
          match wires with
          | [ a; b; t ] -> [ Circuit.Ctrl ([ a; b ], Gate.X, t) ]
          | _ -> assert false ) );
    ( "ccz",
      ( 0,
        3,
        fun _ wires ->
          match wires with
          | [ a; b; t ] -> [ Circuit.Ctrl ([ a; b ], Gate.Z, t) ]
          | _ -> assert false ) );
    ( "cswap",
      ( 0,
        3,
        fun _ wires ->
          match wires with
          | [ c; a; b ] ->
              (* Fredkin = CX(b,a) . CCX(c,a,b) . CX(b,a) *)
              [
                Circuit.Ctrl ([ b ], Gate.X, a);
                Circuit.Ctrl ([ c; a ], Gate.X, b);
                Circuit.Ctrl ([ b ], Gate.X, a);
              ]
          | _ -> assert false ) );
    ( "c3x",
      ( 0,
        4,
        fun _ wires ->
          match wires with
          | [ a; b; c; t ] -> [ Circuit.Ctrl ([ a; b; c ], Gate.X, t) ]
          | _ -> assert false ) );
    ( "c4x",
      ( 0,
        5,
        fun _ wires ->
          match wires with
          | [ a; b; c; d; t ] -> [ Circuit.Ctrl ([ a; b; c; d ], Gate.X, t) ]
          | _ -> assert false ) );
  ]

(* ------------------------------------------------------------ Elaboration *)

type env = {
  mutable qregs : (string * int) list;  (* name -> offset *)
  mutable qreg_sizes : (string * int) list;
  mutable cregs : (string * int) list;
  mutable creg_sizes : (string * int) list;
  mutable n_qubits : int;
  mutable n_clbits : int;
  defs : (string, Qasm_ast.gate_def) Hashtbl.t;
  mutable ops : Circuit.op list;  (* reversed *)
  mutable measures : (int * int) list;  (* reversed *)
}

let resolve_q env (a : Qasm_ast.arg) : int list =
  match List.assoc_opt a.Qasm_ast.reg env.qregs with
  | None -> raise (Parse_error (Printf.sprintf "unknown quantum register %S" a.Qasm_ast.reg))
  | Some offset -> (
      let size = List.assoc a.Qasm_ast.reg env.qreg_sizes in
      match a.Qasm_ast.index with
      | Some i ->
          if i < 0 || i >= size then
            raise (Parse_error (Printf.sprintf "index %d out of range for %S" i a.Qasm_ast.reg));
          [ offset + i ]
      | None -> List.init size (fun i -> offset + i))

let resolve_c env (a : Qasm_ast.arg) : int list =
  match List.assoc_opt a.Qasm_ast.reg env.cregs with
  | None -> raise (Parse_error (Printf.sprintf "unknown classical register %S" a.Qasm_ast.reg))
  | Some offset -> (
      let size = List.assoc a.Qasm_ast.reg env.creg_sizes in
      match a.Qasm_ast.index with
      | Some i ->
          if i < 0 || i >= size then
            raise (Parse_error (Printf.sprintf "index %d out of range for %S" i a.Qasm_ast.reg));
          [ offset + i ]
      | None -> List.init size (fun i -> offset + i))

(* Broadcast register arguments: all whole-register args must have the same
   length; indexed args are repeated. *)
let broadcast (arg_wires : int list list) : int list list =
  let lengths = List.filter (fun ws -> List.length ws > 1) arg_wires in
  match lengths with
  | [] -> [ List.map (function [ w ] -> w | _ -> assert false) arg_wires ]
  | ws :: rest ->
      let n = List.length ws in
      if List.exists (fun l -> List.length l <> n) rest then
        raise (Parse_error "mismatched register sizes in broadcast");
      List.init n (fun i ->
          List.map (fun l -> if List.length l = 1 then List.hd l else List.nth l i) arg_wires)

let rec apply_gate env (app : Qasm_ast.gate_app) (param_env : (string * float) list)
    (qarg_env : (string * int) list option) =
  let params = List.map (eval_expr param_env) app.Qasm_ast.params in
  let phases = List.map Phase.of_float params in
  let wires_of_arg (a : Qasm_ast.arg) : int list =
    match qarg_env with
    | Some bindings -> (
        (* Inside a gate body: arguments are formal names, no indices. *)
        match List.assoc_opt a.Qasm_ast.reg bindings with
        | Some w -> [ w ]
        | None -> raise (Parse_error (Printf.sprintf "unbound gate argument %S" a.Qasm_ast.reg)))
    | None -> resolve_q env a
  in
  let arg_wires = List.map wires_of_arg app.Qasm_ast.args in
  let instances = broadcast arg_wires in
  let emit wires =
    match List.assoc_opt app.Qasm_ast.gate_name builtins with
    | Some (n_params, n_qargs, build) ->
        if List.length params <> n_params then
          raise
            (Parse_error
               (Printf.sprintf "%s expects %d parameter(s)" app.Qasm_ast.gate_name n_params));
        if List.length wires <> n_qargs then
          raise
            (Parse_error
               (Printf.sprintf "%s expects %d qubit argument(s)" app.Qasm_ast.gate_name n_qargs));
        List.iter (fun op -> env.ops <- op :: env.ops) (build phases wires)
    | None -> (
        match Hashtbl.find_opt env.defs app.Qasm_ast.gate_name with
        | None ->
            raise (Parse_error (Printf.sprintf "unknown gate %S" app.Qasm_ast.gate_name))
        | Some def ->
            if List.length params <> List.length def.Qasm_ast.def_params then
              raise (Parse_error (Printf.sprintf "%s: wrong parameter count" def.Qasm_ast.def_name));
            if List.length wires <> List.length def.Qasm_ast.def_qargs then
              raise (Parse_error (Printf.sprintf "%s: wrong argument count" def.Qasm_ast.def_name));
            let params_bound = List.combine def.Qasm_ast.def_params params in
            let qargs_bound = List.combine def.Qasm_ast.def_qargs wires in
            List.iter
              (fun inner -> apply_gate env inner params_bound (Some qargs_bound))
              def.Qasm_ast.def_body)
  in
  List.iter emit instances

let elaborate (program : Qasm_ast.program) : t =
  let env =
    {
      qregs = [];
      qreg_sizes = [];
      cregs = [];
      creg_sizes = [];
      n_qubits = 0;
      n_clbits = 0;
      defs = Hashtbl.create 16;
      ops = [];
      measures = [];
    }
  in
  let handle = function
    | Qasm_ast.Include _ -> ()
    | Qasm_ast.Qreg (name, size) ->
        if List.mem_assoc name env.qregs then
          raise (Parse_error (Printf.sprintf "duplicate register %S" name));
        env.qregs <- (name, env.n_qubits) :: env.qregs;
        env.qreg_sizes <- (name, size) :: env.qreg_sizes;
        env.n_qubits <- env.n_qubits + size
    | Qasm_ast.Creg (name, size) ->
        if List.mem_assoc name env.cregs then
          raise (Parse_error (Printf.sprintf "duplicate register %S" name));
        env.cregs <- (name, env.n_clbits) :: env.cregs;
        env.creg_sizes <- (name, size) :: env.creg_sizes;
        env.n_clbits <- env.n_clbits + size
    | Qasm_ast.Gate_def def -> Hashtbl.replace env.defs def.Qasm_ast.def_name def
    | Qasm_ast.App app -> apply_gate env app [] None
    | Qasm_ast.Barrier _ -> env.ops <- Circuit.Barrier :: env.ops
    | Qasm_ast.Measure (qa, ca) ->
        let qs = resolve_q env qa and cs = resolve_c env ca in
        if List.length qs <> List.length cs then
          raise (Parse_error "measure: register size mismatch");
        List.iter2 (fun q c -> env.measures <- (q, c) :: env.measures) qs cs
    | Qasm_ast.Reset _ -> raise (Parse_error "reset is not supported")
  in
  List.iter handle program;
  let circuit =
    List.fold_left Circuit.add (Circuit.create env.n_qubits) (List.rev env.ops)
  in
  let measures = List.rev env.measures in
  (* When measurements cover every qubit bijectively, record them as the
     output permutation: logical qubit [c] sits on wire [q] at the end. *)
  let circuit =
    if
      List.length measures = env.n_qubits
      && env.n_qubits > 0
      && List.for_all (fun (_, c) -> c < env.n_qubits) measures
    then begin
      let a = Array.make env.n_qubits (-1) in
      List.iter (fun (q, c) -> if c < env.n_qubits then a.(c) <- q) measures;
      if Array.for_all (fun x -> x >= 0) a then
        match Perm.of_array a with
        | p -> Circuit.with_output_perm circuit (Some p)
        | exception Invalid_argument _ -> circuit
      else circuit
    end
    else circuit
  in
  { circuit; measures }

(* Recover an initial layout persisted as "// oqec:layout 2,0,1". *)
let layout_comment src =
  let prefix = "// oqec:layout " in
  let lines = String.split_on_char '\n' src in
  List.find_map
    (fun line ->
      let line = String.trim line in
      if String.length line > String.length prefix
         && String.sub line 0 (String.length prefix) = prefix
      then
        let rest = String.sub line (String.length prefix) (String.length line - String.length prefix) in
        try
          Some
            (Perm.of_array
               (Array.of_list (List.map int_of_string (String.split_on_char ',' (String.trim rest)))))
        with Failure _ | Invalid_argument _ -> None
      else None)
    lines

let parse_string src =
  let result =
    try elaborate (Qasm_parser.parse_program src) with
    | Qasm_parser.Error (msg, line) ->
        raise (Parse_error (Printf.sprintf "line %d: %s" line msg))
    | Qasm_lexer.Error (msg, line) ->
        raise (Parse_error (Printf.sprintf "line %d: %s" line msg))
  in
  match layout_comment src with
  | Some l when Perm.size l = Circuit.num_qubits result.circuit ->
      { result with circuit = Circuit.with_initial_layout result.circuit (Some l) }
  | Some _ | None -> result

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  parse_string src

let circuit_of_string src = (parse_string src).circuit
let circuit_of_file path = (parse_file path).circuit

(* --------------------------------------------------------------- Writer *)

let phase_to_qasm (a : Phase.t) : string =
  let r = Phase.to_float a in
  if Phase.is_exact a then begin
    (* Reconstruct the fraction from a canonical exact phase. *)
    let frac = r /. Float.pi in
    let rec find_den den =
      if den > 1 lsl 30 then Printf.sprintf "%.17g" r
      else
        let scaled = frac *. float_of_int den in
        let n = Float.round scaled in
        if Float.abs (scaled -. n) < 1e-12 *. float_of_int den then
          let n = int_of_float n in
          if n = 0 then "0"
          else if den = 1 then if n = 1 then "pi" else Printf.sprintf "%d*pi" n
          else if n = 1 then Printf.sprintf "pi/%d" den
          else Printf.sprintf "%d*pi/%d" n den
        else find_den (den * 2)
    in
    find_den 1
  end
  else Printf.sprintf "%.17g" r

let op_to_qasm op =
  let q i = Printf.sprintf "q[%d]" i in
  let simple name wires = Printf.sprintf "%s %s;" name (String.concat "," (List.map q wires)) in
  let param name ps wires =
    Printf.sprintf "%s(%s) %s;" name
      (String.concat "," (List.map phase_to_qasm ps))
      (String.concat "," (List.map q wires))
  in
  match op with
  | Circuit.Barrier -> "barrier q;"
  | Circuit.Swap (a, b) -> simple "swap" [ a; b ]
  | Circuit.Gate (g, t) -> (
      match g with
      | Gate.I -> simple "id" [ t ]
      | Gate.X -> simple "x" [ t ]
      | Gate.Y -> simple "y" [ t ]
      | Gate.Z -> simple "z" [ t ]
      | Gate.H -> simple "h" [ t ]
      | Gate.S -> simple "s" [ t ]
      | Gate.Sdg -> simple "sdg" [ t ]
      | Gate.T -> simple "t" [ t ]
      | Gate.Tdg -> simple "tdg" [ t ]
      | Gate.Sx -> simple "sx" [ t ]
      | Gate.Sxdg -> simple "sxdg" [ t ]
      | Gate.Rx a -> param "rx" [ a ] [ t ]
      | Gate.Ry a -> param "ry" [ a ] [ t ]
      | Gate.Rz a -> param "rz" [ a ] [ t ]
      | Gate.P a -> param "p" [ a ] [ t ]
      | Gate.U (a, b, c) -> param "u" [ a; b; c ] [ t ])
  | Circuit.Ctrl ([ c ], g, t) -> (
      match g with
      | Gate.X -> simple "cx" [ c; t ]
      | Gate.Y -> simple "cy" [ c; t ]
      | Gate.Z -> simple "cz" [ c; t ]
      | Gate.H -> simple "ch" [ c; t ]
      | Gate.Sx -> simple "csx" [ c; t ]
      | Gate.S -> param "cp" [ Phase.half_pi ] [ c; t ]
      | Gate.Sdg -> param "cp" [ Phase.minus_half_pi ] [ c; t ]
      | Gate.T -> param "cp" [ Phase.quarter_pi ] [ c; t ]
      | Gate.Tdg -> param "cp" [ Phase.neg Phase.quarter_pi ] [ c; t ]
      | Gate.P a -> param "cp" [ a ] [ c; t ]
      | Gate.Rx a -> param "crx" [ a ] [ c; t ]
      | Gate.Ry a -> param "cry" [ a ] [ c; t ]
      | Gate.Rz a -> param "crz" [ a ] [ c; t ]
      | Gate.U (a, b, cc) -> param "cu3" [ a; b; cc ] [ c; t ]
      | Gate.I -> simple "id" [ t ]
      | Gate.Sxdg ->
          invalid_arg "Qasm.to_string: controlled sxdg has no qelib1 spelling")
  | Circuit.Ctrl ([ c1; c2 ], Gate.X, t) -> simple "ccx" [ c1; c2; t ]
  | Circuit.Ctrl ([ c1; c2 ], Gate.Z, t) -> simple "ccz" [ c1; c2; t ]
  | Circuit.Ctrl ([ _; _ ], g, _) ->
      invalid_arg
        (Printf.sprintf "Qasm.to_string: doubly-controlled %s not representable" (Gate.name g))
  | Circuit.Ctrl (cs, Gate.X, t) when List.length cs = 3 ->
      simple "c3x" (cs @ [ t ])
  | Circuit.Ctrl (cs, Gate.X, t) when List.length cs = 4 ->
      simple "c4x" (cs @ [ t ])
  | Circuit.Ctrl (cs, g, _) ->
      invalid_arg
        (Printf.sprintf "Qasm.to_string: %d-controlled %s not representable; decompose first"
           (List.length cs) (Gate.name g))

let to_string c =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n";
  (* The initial layout has no QASM-2 syntax; persist it as a structured
     comment the parser recognises. *)
  (match Circuit.initial_layout c with
  | Some l when not (Perm.is_identity l) ->
      let parts = Array.to_list (Array.map string_of_int (Perm.to_array l)) in
      Buffer.add_string buf (Printf.sprintf "// oqec:layout %s\n" (String.concat "," parts))
  | Some _ | None -> ());
  (* ccz is not part of qelib1; define it when used. *)
  let uses_ccz =
    List.exists
      (function Circuit.Ctrl ([ _; _ ], Gate.Z, _) -> true | _ -> false)
      (Circuit.ops c)
  in
  if uses_ccz then
    Buffer.add_string buf "gate ccz a,b,c { h c; ccx a,b,c; h c; }\n";
  Buffer.add_string buf (Printf.sprintf "qreg q[%d];\n" (Circuit.num_qubits c));
  (match Circuit.output_perm c with
  | Some _ -> Buffer.add_string buf (Printf.sprintf "creg c[%d];\n" (Circuit.num_qubits c))
  | None -> ());
  List.iter
    (fun op ->
      Buffer.add_string buf (op_to_qasm op);
      Buffer.add_char buf '\n')
    (Circuit.ops c);
  (* Output permutations round-trip through measurement targets: logical
     qubit [q] is read from wire [output_perm q]. *)
  (match Circuit.output_perm c with
  | Some p ->
      for q = 0 to Circuit.num_qubits c - 1 do
        Buffer.add_string buf (Printf.sprintf "measure q[%d] -> c[%d];\n" (Perm.apply p q) q)
      done
  | None -> ());
  Buffer.contents buf

let write_file path c =
  let oc = open_out path in
  output_string oc (to_string c);
  close_out oc
