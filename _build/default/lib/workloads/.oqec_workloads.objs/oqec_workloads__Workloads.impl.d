lib/workloads/workloads.ml: Array Circuit Float Gate List Oqec_base Oqec_circuit Phase Printf Rng
