lib/workloads/workloads.mli: Circuit Oqec_base Oqec_circuit Rng
