(** The compilation flow: decomposition to the device gate set followed by
    layout and SWAP routing, mirroring the paper's first use case
    (qiskit level-O1 compilation onto IBM Manhattan).

    The result operates on the architecture's full register and carries
    the initial layout and output permutation as metadata, which the
    equivalence checkers consume. *)

open Oqec_base
open Oqec_circuit

(** [run ?initial_layout ?optimize arch c] compiles [c] onto [arch]:
    multi-qubit gates are lowered to CX (the paper's device basis is
    arbitrary single-qubit rotations plus CNOT), the circuit is routed,
    and with [optimize] (default [true]) a light peephole pass removes
    the redundancies routing introduced. *)
val run : ?initial_layout:Perm.t -> ?optimize:bool -> Architecture.t -> Circuit.t -> Circuit.t

(** [spread_layout arch rng] draws a uniformly random initial layout over
    the architecture's register — used by benchmarks to exercise
    non-trivial layouts and output permutations. *)
val spread_layout : Architecture.t -> Rng.t -> Perm.t
