open Oqec_base
open Oqec_circuit

let route arch ?initial_layout c =
  let n = Circuit.num_qubits c in
  let big_n = Architecture.num_qubits arch in
  if n > big_n then
    invalid_arg
      (Printf.sprintf "Route.route: %d qubits do not fit on %s" n (Architecture.name arch));
  let layout = match initial_layout with Some p -> p | None -> Perm.id big_n in
  if Perm.size layout <> big_n then
    invalid_arg "Route.route: layout must cover the whole architecture";
  (* pos.(logical) = physical wire currently holding that logical qubit. *)
  let pos = Perm.to_array layout in
  let occupant = Array.make big_n 0 in
  Array.iteri (fun l p -> occupant.(p) <- l) pos;
  let out = ref (Circuit.create ~name:(Circuit.name c ^ "@" ^ Architecture.name arch) big_n) in
  let emit op = out := Circuit.add !out op in
  let apply_swap p q =
    emit (Circuit.Swap (p, q));
    let lp = occupant.(p) and lq = occupant.(q) in
    occupant.(p) <- lq;
    occupant.(q) <- lp;
    pos.(lp) <- q;
    pos.(lq) <- p
  in
  (* Walk the coupling path, swapping the control's qubit forward until it
     neighbours the target. *)
  let make_adjacent a b =
    let path = Architecture.shortest_path arch pos.(a) pos.(b) in
    let rec hop = function
      | p :: (q :: _ as rest) when List.length rest > 1 ->
          apply_swap p q;
          hop rest
      | _ -> ()
    in
    hop path
  in
  let handle op =
    match op with
    | Circuit.Barrier -> emit Circuit.Barrier
    | Circuit.Gate (g, t) -> emit (Circuit.Gate (g, pos.(t)))
    | Circuit.Ctrl ([ ctl ], g, t) ->
        if not (Architecture.connected arch pos.(ctl) pos.(t)) then make_adjacent ctl t;
        emit (Circuit.Ctrl ([ pos.(ctl) ], g, pos.(t)))
    | Circuit.Swap (a, b) ->
        if not (Architecture.connected arch pos.(a) pos.(b)) then make_adjacent a b;
        emit (Circuit.Swap (pos.(a), pos.(b)))
    | Circuit.Ctrl (_, _, _) ->
        invalid_arg "Route.route: lower multi-controlled gates before routing"
  in
  List.iter handle (Circuit.ops c);
  let routed = Circuit.with_initial_layout !out (Some layout) in
  Circuit.with_output_perm routed (Some (Perm.of_array (Array.copy pos)))
