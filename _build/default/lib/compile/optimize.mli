(** Peephole circuit optimisation.

    Provides the "optimized circuit" instances of the paper's second use
    case.  The passes preserve the unitary up to a global phase:

    - cancellation of an operation with its inverse, looking through
      intervening operations that commute on the shared wires (diagonal
      gates slide across CX controls, X-like gates across CX targets);
    - merging of same-axis single-qubit rotations (diagonal gates collapse
      into one phase gate, X-like gates into one Rx) and of controlled
      phases on the same wire pair;
    - removal of identities and zero-angle rotations;
    - reconstruction of SWAP gates from three alternating CNOTs (used by
      the DD checker to turn SWAPs back into permutation bookkeeping,
      Section 4.1). *)

open Oqec_circuit

(** [optimize c] runs cancellation, merging and identity removal to a
    fixpoint.  Layout metadata is preserved. *)
val optimize : Circuit.t -> Circuit.t

(** [reconstruct_swaps c] replaces each CX(a,b) CX(b,a) CX(a,b) pattern
    (allowing no intervening ops on either wire) with a SWAP. *)
val reconstruct_swaps : Circuit.t -> Circuit.t

(** [cancel_pass c] is a single cancellation/merge sweep (exposed for
    testing). *)
val cancel_pass : Circuit.t -> Circuit.t
