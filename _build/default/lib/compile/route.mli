(** SWAP-insertion routing onto a coupling map.

    Takes a circuit whose operations touch at most two qubits (lower
    multi-controlled gates with [Decompose] first) and produces an
    equivalent circuit on the architecture's full register in which every
    two-qubit operation acts on coupled physical qubits.  Qubits are moved
    with SWAP chains along shortest coupling paths, updating the tracked
    logical-to-physical mapping (Example 3 of the paper).

    The result carries the initial layout and the final output permutation
    as circuit metadata: logical qubit [q] starts on wire
    [initial_layout q] and is measured on wire [output_perm q]. *)

open Oqec_base
open Oqec_circuit

(** [route arch ?initial_layout c] routes [c] onto [arch].

    [initial_layout] is a permutation of the architecture's qubits
    (logical to physical, logicals beyond [Circuit.num_qubits c] are
    padding); it defaults to the identity.  Raises [Invalid_argument] when
    the circuit is wider than the architecture or contains an operation on
    three or more qubits. *)
val route : Architecture.t -> ?initial_layout:Perm.t -> Circuit.t -> Circuit.t
