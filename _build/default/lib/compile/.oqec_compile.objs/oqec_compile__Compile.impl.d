lib/compile/compile.ml: Architecture Decompose Optimize Oqec_base Oqec_circuit Perm Rng Route
