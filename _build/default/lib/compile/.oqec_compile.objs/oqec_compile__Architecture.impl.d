lib/compile/architecture.ml: Array Hashtbl List Printf Queue
