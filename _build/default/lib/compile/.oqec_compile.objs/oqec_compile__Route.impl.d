lib/compile/route.ml: Architecture Array Circuit List Oqec_base Oqec_circuit Perm Printf
