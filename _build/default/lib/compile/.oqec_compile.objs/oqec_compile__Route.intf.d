lib/compile/route.mli: Architecture Circuit Oqec_base Oqec_circuit Perm
