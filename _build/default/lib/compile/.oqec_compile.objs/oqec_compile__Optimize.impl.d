lib/compile/optimize.ml: Array Circuit Gate List Option Oqec_base Oqec_circuit Phase
