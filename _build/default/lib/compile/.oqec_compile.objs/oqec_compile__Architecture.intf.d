lib/compile/architecture.mli:
