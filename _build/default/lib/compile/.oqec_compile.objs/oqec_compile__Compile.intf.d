lib/compile/compile.mli: Architecture Circuit Oqec_base Oqec_circuit Perm Rng
