lib/compile/optimize.mli: Circuit Oqec_circuit
