open Oqec_base
open Oqec_circuit

let run ?initial_layout ?(optimize = true) arch c =
  let lowered = Decompose.to_cx_basis ~keep_swaps:false c in
  let routed = Route.route arch ?initial_layout lowered in
  if optimize then Optimize.optimize routed else routed

let spread_layout arch rng = Perm.random (Rng.int rng) (Architecture.num_qubits arch)
