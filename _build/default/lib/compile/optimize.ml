open Oqec_base
open Oqec_circuit

(* ------------------------------------------------------------ Analysis *)

let diag_phase_of = function
  | Gate.Z -> Some Phase.pi
  | Gate.S -> Some Phase.half_pi
  | Gate.Sdg -> Some Phase.minus_half_pi
  | Gate.T -> Some Phase.quarter_pi
  | Gate.Tdg -> Some (Phase.neg Phase.quarter_pi)
  | Gate.Rz a | Gate.P a -> Some a
  | Gate.I | Gate.X | Gate.Y | Gate.H | Gate.Sx | Gate.Sxdg | Gate.Rx _
  | Gate.Ry _ | Gate.U _ ->
      None

let xlike_angle_of = function
  | Gate.X -> Some Phase.pi
  | Gate.Sx -> Some Phase.half_pi
  | Gate.Sxdg -> Some Phase.minus_half_pi
  | Gate.Rx a -> Some a
  | Gate.I | Gate.Y | Gate.Z | Gate.H | Gate.S | Gate.Sdg | Gate.T | Gate.Tdg
  | Gate.Rz _ | Gate.P _ | Gate.Ry _ | Gate.U _ ->
      None

let cp_angle_of = function
  | Circuit.Ctrl ([ c ], Gate.Z, t) -> Some (Phase.pi, c, t)
  | Circuit.Ctrl ([ c ], Gate.P a, t) -> Some (a, c, t)
  | Circuit.Ctrl (_, _, _) | Circuit.Gate _ | Circuit.Swap _ | Circuit.Barrier -> None

(* Does [op] act diagonally on wire [q]? *)
let diagonal_on op q =
  match op with
  | Circuit.Gate (g, t) -> t = q && diag_phase_of g <> None
  | Circuit.Ctrl (cs, g, t) ->
      List.mem q cs || (t = q && (diag_phase_of g <> None || Gate.is_diagonal g))
  | Circuit.Swap _ | Circuit.Barrier -> false

(* Does [op] act as a pure X-basis operation on wire [q]? *)
let xlike_on op q =
  match op with
  | Circuit.Gate (g, t) -> t = q && xlike_angle_of g <> None
  | Circuit.Ctrl ([ _ ], Gate.X, t) -> t = q
  | Circuit.Ctrl (_, _, _) | Circuit.Swap _ | Circuit.Barrier -> false

(* [a] and [b] may be reordered across wire [q]. *)
let commute_on a b q =
  (diagonal_on a q && diagonal_on b q) || (xlike_on a q && xlike_on b q)

let is_identity_op = function
  | Circuit.Gate (Gate.I, _) -> true
  | Circuit.Gate ((Gate.Rz a | Gate.Rx a | Gate.Ry a | Gate.P a), _) -> Phase.is_zero a
  | Circuit.Gate (Gate.U (t, p, l), _) ->
      Phase.is_zero t && Phase.is_zero p && Phase.is_zero l
  | Circuit.Ctrl (_, Gate.I, _) -> true
  | Circuit.Ctrl (_, (Gate.Rz a | Gate.P a), _) -> Phase.is_zero a
  | Circuit.Gate _ | Circuit.Ctrl _ | Circuit.Swap _ | Circuit.Barrier -> false

(* --------------------------------------------------------- Cancel pass *)

type cell = {
  mutable op : Circuit.op;
  mutable alive : bool;
  prevs : (int * int) list;  (* wire -> index of the previous op on it *)
}

let support op = List.sort_uniq compare (Circuit.op_qubits op)

(* Controlled rotations do not invert exactly through [Circuit.inverse_op]
   (angles are canonical modulo 2*pi while rotations have period 4*pi, so
   the would-be inverse differs by a controlled sign); cancelling such a
   pair would be unsound. *)
let exactly_invertible = function
  | Circuit.Ctrl (_, (Gate.Rx _ | Gate.Ry _ | Gate.Rz _ | Gate.U _), _) -> false
  | Circuit.Ctrl _ | Circuit.Gate _ | Circuit.Swap _ | Circuit.Barrier -> true

(* Merge two operations acting on the same support, when possible.  The
   result replaces the earlier one; soundness of moving the later one
   backwards is guaranteed by the commutation scan in the caller. *)
let merge_ops earlier later =
  match (earlier, later) with
  | Circuit.Gate (g1, q1), Circuit.Gate (g2, q2) when q1 = q2 -> (
      match (diag_phase_of g1, diag_phase_of g2) with
      | Some a, Some b -> Some (Circuit.Gate (Gate.P (Phase.add a b), q1))
      | _ -> (
          match (xlike_angle_of g1, xlike_angle_of g2) with
          | Some a, Some b -> Some (Circuit.Gate (Gate.Rx (Phase.add a b), q1))
          | _ -> (
              match (g1, g2) with
              | Gate.Ry a, Gate.Ry b -> Some (Circuit.Gate (Gate.Ry (Phase.add a b), q1))
              | _ -> None)))
  | _ -> (
      match (cp_angle_of earlier, cp_angle_of later) with
      | Some (a, c1, t1), Some (b, c2, t2)
        when (c1, t1) = (c2, t2) || (c1, t1) = (t2, c2) ->
          Some (Circuit.Ctrl ([ c1 ], Gate.P (Phase.add a b), t1))
      | _ -> None)

let cancel_pass c =
  let ops = List.filter (fun op -> op <> Circuit.Barrier) (Circuit.ops c) in
  let n = Circuit.num_qubits c in
  let last = Array.make n (-1) in
  let cells : cell array =
    Array.make (List.length ops)
      { op = Circuit.Barrier; alive = false; prevs = [] }
  in
  let n_cells = ref 0 in
  let prev_on cell q = Option.value ~default:(-1) (List.assoc_opt q cell.prevs) in
  (* First alive op on wire [q] at or before index [i]. *)
  let rec alive_at q i =
    if i < 0 then -1
    else if cells.(i).alive then i
    else alive_at q (prev_on cells.(i) q)
  in
  let push op =
    let s = support op in
    let prevs = List.map (fun q -> (q, last.(q))) s in
    let i = !n_cells in
    cells.(i) <- { op; alive = true; prevs };
    incr n_cells;
    List.iter (fun q -> last.(q) <- i) s
  in
  (* Scan backwards through the operations touching [op]'s support, in
     program order.  The scan may step over an intervening op only when
     [op] commutes with it on every wire they share; the first op with
     equal support that is the inverse of [op] (or merges with it) is the
     partner. *)
  let find_partner op s =
    let cursors = Array.of_list (List.map (fun q -> (q, last.(q))) s) in
    let rec search () =
      Array.iteri (fun i (q, c) -> cursors.(i) <- (q, alive_at q c)) cursors;
      let k = Array.fold_left (fun acc (_, c) -> max acc c) (-1) cursors in
      if k < 0 then None
      else begin
        let kop = cells.(k).op in
        let kill_or_merge =
          support kop = s
          && ((exactly_invertible op && Circuit.equal_op kop (Circuit.inverse_op op))
             || merge_ops kop op <> None)
        in
        if kill_or_merge then Some k
        else begin
          let shared = Array.to_list cursors |> List.filter (fun (_, c) -> c = k) in
          if List.for_all (fun (q, _) -> commute_on op kop q) shared then begin
            Array.iteri
              (fun i (q, c) -> if c = k then cursors.(i) <- (q, prev_on cells.(k) q))
              cursors;
            search ()
          end
          else None
        end
      end
    in
    search ()
  in
  let try_insert op =
    if is_identity_op op then ()
    else begin
      let s = support op in
      match if s = [] then None else find_partner op s with
      | Some j ->
          let cand = cells.(j) in
          if exactly_invertible op && Circuit.equal_op cand.op (Circuit.inverse_op op)
          then cand.alive <- false
          else begin
            match merge_ops cand.op op with
            | Some merged ->
                if is_identity_op merged then cand.alive <- false else cand.op <- merged
            | None -> assert false
          end
      | None -> push op
    end
  in
  List.iter try_insert ops;
  let result = ref (Circuit.create ~name:(Circuit.name c) n) in
  for i = 0 to !n_cells - 1 do
    if cells.(i).alive then result := Circuit.add !result cells.(i).op
  done;
  let r = Circuit.with_initial_layout !result (Circuit.initial_layout c) in
  Circuit.with_output_perm r (Circuit.output_perm c)

let optimize c =
  let rec fix c rounds =
    if rounds = 0 then c
    else
      let c' = cancel_pass c in
      if Circuit.gate_count c' = Circuit.gate_count c then c' else fix c' (rounds - 1)
  in
  fix c 10

(* --------------------------------------------------- SWAP reconstruction *)

let reconstruct_swaps c =
  let ops = Array.of_list (Circuit.ops c) in
  let alive = Array.make (Array.length ops) true in
  let touches op a b =
    List.exists (fun q -> q = a || q = b) (Circuit.op_qubits op)
  in
  let next_touching i a b =
    let rec go j =
      if j >= Array.length ops then -1
      else if alive.(j) && touches ops.(j) a b then j
      else go (j + 1)
    in
    go (i + 1)
  in
  Array.iteri
    (fun i op ->
      if alive.(i) then
        match op with
        | Circuit.Ctrl ([ a ], Gate.X, b) -> (
            let j = next_touching i a b in
            if j >= 0 then
              match ops.(j) with
              | Circuit.Ctrl ([ b' ], Gate.X, a') when a' = a && b' = b -> (
                  let k = next_touching j a b in
                  if k >= 0 then
                    match ops.(k) with
                    | Circuit.Ctrl ([ a'' ], Gate.X, b'') when a'' = a && b'' = b ->
                        ops.(i) <- Circuit.Swap (a, b);
                        alive.(j) <- false;
                        alive.(k) <- false
                    | _ -> ()
                  else ())
              | _ -> ()
            else ())
        | Circuit.Gate _ | Circuit.Ctrl _ | Circuit.Swap _ | Circuit.Barrier -> ())
    ops;
  let result = ref (Circuit.create ~name:(Circuit.name c) (Circuit.num_qubits c)) in
  Array.iteri (fun i op -> if alive.(i) then result := Circuit.add !result op) ops;
  let r = Circuit.with_initial_layout !result (Circuit.initial_layout c) in
  Circuit.with_output_perm r (Circuit.output_perm c)
