(** Quantum device coupling maps.

    An architecture restricts which physical qubit pairs two-qubit gates
    may act on (Section 2.2 of the paper).  Provided topologies: linear
    chains, rings, 2D grids and the heavy-hex lattice of IBM's 65-qubit
    Manhattan device used in the paper's compiled-circuits use case. *)

type t

val make : name:string -> num_qubits:int -> (int * int) list -> t
val name : t -> string
val num_qubits : t -> int

(** [edges a] lists each undirected coupling once. *)
val edges : t -> (int * int) list

val connected : t -> int -> int -> bool
val neighbours : t -> int -> int list

(** [distance a p q] is the hop count of a shortest coupling path. *)
val distance : t -> int -> int -> int

(** [shortest_path a p q] includes both endpoints. *)
val shortest_path : t -> int -> int -> int list

(** [linear n] is the chain 0 - 1 - ... - n-1 (cf. Fig. 2). *)
val linear : int -> t

val ring : int -> t
val grid : rows:int -> cols:int -> t

(** The 65-qubit heavy-hex coupling map of IBM Manhattan. *)
val manhattan : t
