type t = {
  name : string;
  num_qubits : int;
  edges : (int * int) list;
  adjacency : int list array;
  (* All-pairs BFS predecessors, computed lazily per source. *)
  bfs_cache : (int, int array) Hashtbl.t;
}

let make ~name ~num_qubits edge_list =
  let adjacency = Array.make num_qubits [] in
  let seen = Hashtbl.create 64 in
  let canon (a, b) = if a < b then (a, b) else (b, a) in
  let edges =
    List.filter
      (fun (a, b) ->
        if a = b || a < 0 || b < 0 || a >= num_qubits || b >= num_qubits then
          invalid_arg "Architecture.make: bad edge";
        let c = canon (a, b) in
        if Hashtbl.mem seen c then false
        else begin
          Hashtbl.replace seen c ();
          true
        end)
      edge_list
  in
  List.iter
    (fun (a, b) ->
      adjacency.(a) <- b :: adjacency.(a);
      adjacency.(b) <- a :: adjacency.(b))
    edges;
  { name; num_qubits; edges; adjacency; bfs_cache = Hashtbl.create 16 }

let name a = a.name
let num_qubits a = a.num_qubits
let edges a = a.edges
let neighbours a q = a.adjacency.(q)
let connected a p q = List.mem q a.adjacency.(p)

(* Parent array of a BFS tree rooted at [src]; -1 for unreachable/self. *)
let bfs a src =
  match Hashtbl.find_opt a.bfs_cache src with
  | Some parents -> parents
  | None ->
      let parents = Array.make a.num_qubits (-1) in
      let visited = Array.make a.num_qubits false in
      visited.(src) <- true;
      let queue = Queue.create () in
      Queue.add src queue;
      while not (Queue.is_empty queue) do
        let v = Queue.take queue in
        List.iter
          (fun w ->
            if not visited.(w) then begin
              visited.(w) <- true;
              parents.(w) <- v;
              Queue.add w queue
            end)
          a.adjacency.(v)
      done;
      Hashtbl.replace a.bfs_cache src parents;
      parents

let shortest_path a p q =
  if p = q then [ p ]
  else begin
    let parents = bfs a p in
    if q <> p && parents.(q) = -1 then
      invalid_arg (Printf.sprintf "Architecture: %d and %d are disconnected" p q);
    let rec walk v acc = if v = p then p :: acc else walk parents.(v) (v :: acc) in
    walk q []
  end

let distance a p q = List.length (shortest_path a p q) - 1
let linear n = make ~name:(Printf.sprintf "linear-%d" n) ~num_qubits:n
    (List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let ring n =
  let base = List.init (max 0 (n - 1)) (fun i -> (i, i + 1)) in
  let edges = if n > 2 then (n - 1, 0) :: base else base in
  make ~name:(Printf.sprintf "ring-%d" n) ~num_qubits:n edges

let grid ~rows ~cols =
  let idx r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (idx r c, idx r (c + 1)) :: !edges;
      if r + 1 < rows then edges := (idx r c, idx (r + 1) c) :: !edges
    done
  done;
  make ~name:(Printf.sprintf "grid-%dx%d" rows cols) ~num_qubits:(rows * cols) !edges

(* IBM Manhattan: five rows of qubits joined by bridge qubits in the
   heavy-hex pattern. *)
let manhattan =
  let row lo hi = List.init (hi - lo) (fun i -> (lo + i, lo + i + 1)) in
  let edges =
    row 0 9            (* 0..9 *)
    @ row 13 23        (* 13..23 *)
    @ row 27 37        (* 27..37 *)
    @ row 41 51        (* 41..51 *)
    @ row 55 64        (* 55..64 *)
    @ [
        (0, 10); (10, 13);
        (4, 11); (11, 17);
        (8, 12); (12, 21);
        (15, 24); (24, 29);
        (19, 25); (25, 33);
        (23, 26); (26, 37);
        (27, 38); (38, 41);
        (31, 39); (39, 45);
        (35, 40); (40, 49);
        (43, 52); (52, 56);
        (47, 53); (53, 60);
        (51, 54); (54, 64);
      ]
  in
  make ~name:"ibmq-manhattan" ~num_qubits:65 edges
