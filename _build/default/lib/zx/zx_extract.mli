(** Circuit extraction from graph-like ZX-diagrams ("there and back
    again", the paper's reference [40]).

    Turns a graph-like diagram back into a circuit over {P, H, CZ, CX,
    SWAP}, processing the diagram from its outputs: frontier phases
    become phase gates, frontier-frontier wires become CZs, and the
    biadjacency between the frontier and the next layer is brought to
    row-echelon form over GF(2) with CNOTs until a vertex can be pulled
    through a Hadamard wire.  Diagrams produced from circuits by Clifford
    simplification admit extraction (they have a generalised flow);
    diagrams containing phase gadgets are not supported and raise
    {!Extraction_failed}. *)

open Oqec_circuit

exception Extraction_failed of string

(** [extract g] returns a circuit whose unitary equals the diagram's
    semantics up to a global scalar.  [g] is consumed (mutated). *)
val extract : Zx_graph.t -> Circuit.t

(** [resynthesize c] round-trips a circuit through the ZX-calculus:
    translate, Clifford-simplify, extract.  The result is equivalent to
    [c] up to global phase and often uses fewer gates on
    Clifford-dominated circuits. *)
val resynthesize : Circuit.t -> Circuit.t
