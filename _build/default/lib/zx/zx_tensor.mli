(** Brute-force semantics of ZX-diagrams.

    Evaluates a diagram to the dense matrix it denotes, by summing over one
    boolean variable per spider (a Z-spider's tensor is diagonal, so a
    single bit per vertex with delta/Hadamard edge factors reproduces the
    standard semantics; X-spiders contribute Hadamard-conjugated factors).
    Exponential in the number of spiders — used only by the test suite and
    the figure demos to certify the rewrite rules.

    All comparisons against circuit semantics hold up to one global
    non-zero scalar, because rewrite rules here drop scalar factors. *)

open Oqec_base

(** [matrix g] is the [2^out x 2^in] matrix of the diagram; requires every
    qubit index in [0, n) to appear exactly once among inputs and once
    among outputs.  Delta-like edges are contracted away first, so the
    cost is exponential only in the number of remaining free vertex
    classes; raises [Invalid_argument] beyond 16 of them. *)
val matrix : Zx_graph.t -> Dmatrix.t

(** [proportional ?tol a b] holds when [a = c * b] for some non-zero
    complex scalar [c]. *)
val proportional : ?tol:float -> Dmatrix.t -> Dmatrix.t -> bool
