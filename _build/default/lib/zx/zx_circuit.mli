(** Translation of quantum circuits into ZX-diagrams.

    Every gate is first lowered to the ZX-native set (Z/X phase spiders,
    Hadamard wires, CX, CZ; controlled phases expand exactly through
    {!Oqec_circuit.Decompose}); Hadamards are tracked per wire and become
    Hadamard edges, as in Fig. 6 of the paper.  The denotation of the
    resulting diagram equals the circuit unitary up to a global scalar. *)

open Oqec_circuit

(** [of_circuit c] translates a circuit (layout metadata is ignored; the
    equivalence checker accounts for it separately). *)
val of_circuit : Circuit.t -> Zx_graph.t

(** [of_miter g g'] translates [g'] followed by [inverse g] into a single
    diagram — the composition whose reduction to bare wires witnesses
    equivalence (Section 5.1). *)
val of_miter : Circuit.t -> Circuit.t -> Zx_graph.t
