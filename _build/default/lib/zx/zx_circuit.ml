open Oqec_base
open Oqec_circuit

type builder = {
  graph : Zx_graph.t;
  cur : int array;  (* current open endpoint of each wire *)
  pending : bool array;  (* a Hadamard is waiting on this wire *)
}

let make_builder n =
  let graph = Zx_graph.create () in
  let cur =
    Array.init n (fun q -> Zx_graph.add_vertex graph (Zx_graph.B_in q) ~phase:Phase.zero)
  in
  { graph; cur; pending = Array.make n false }

let edge_type b q = if b.pending.(q) then Zx_graph.Had else Zx_graph.Simple

(* Append a spider on wire [q], consuming any pending Hadamard. *)
let add_spider b kind ph q =
  let v = Zx_graph.add_vertex b.graph kind ~phase:ph in
  Zx_graph.add_edge b.graph b.cur.(q) v (edge_type b q);
  b.pending.(q) <- false;
  b.cur.(q) <- v;
  v

let z_spider b ph q = ignore (add_spider b Zx_graph.Z ph q)
let x_spider b ph q = ignore (add_spider b Zx_graph.X ph q)

let rec emit b (op : Circuit.op) =
  match op with
  | Circuit.Barrier -> ()
  | Circuit.Swap (a, c) ->
      let t = b.cur.(a) in
      b.cur.(a) <- b.cur.(c);
      b.cur.(c) <- t;
      let p = b.pending.(a) in
      b.pending.(a) <- b.pending.(c);
      b.pending.(c) <- p
  | Circuit.Gate (g, q) -> (
      match g with
      | Gate.I -> ()
      | Gate.H -> b.pending.(q) <- not b.pending.(q)
      | Gate.Z -> z_spider b Phase.pi q
      | Gate.S -> z_spider b Phase.half_pi q
      | Gate.Sdg -> z_spider b Phase.minus_half_pi q
      | Gate.T -> z_spider b Phase.quarter_pi q
      | Gate.Tdg -> z_spider b (Phase.neg Phase.quarter_pi) q
      | Gate.Rz a | Gate.P a -> z_spider b a q
      | Gate.X -> x_spider b Phase.pi q
      | Gate.Sx -> x_spider b Phase.half_pi q
      | Gate.Sxdg -> x_spider b Phase.minus_half_pi q
      | Gate.Rx a -> x_spider b a q
      | Gate.Y ->
          z_spider b Phase.pi q;
          x_spider b Phase.pi q
      | Gate.Ry a ->
          (* Ry(a) = Rz(pi/2) Rx(a) Rz(-pi/2), applied right to left. *)
          z_spider b Phase.minus_half_pi q;
          x_spider b a q;
          z_spider b Phase.half_pi q
      | Gate.U (theta, phi, lambda) ->
          (* u3 = Rz(phi) Ry(theta) Rz(lambda) up to a global phase. *)
          z_spider b lambda q;
          z_spider b Phase.minus_half_pi q;
          x_spider b theta q;
          z_spider b Phase.half_pi q;
          z_spider b phi q)
  | Circuit.Ctrl ([ c ], Gate.X, t) ->
      let zc = add_spider b Zx_graph.Z Phase.zero c in
      let xt = add_spider b Zx_graph.X Phase.zero t in
      Zx_graph.add_edge b.graph zc xt Zx_graph.Simple
  | Circuit.Ctrl ([ c ], Gate.Z, t) ->
      let zc = add_spider b Zx_graph.Z Phase.zero c in
      let zt = add_spider b Zx_graph.Z Phase.zero t in
      Zx_graph.add_edge b.graph zc zt Zx_graph.Had
  | Circuit.Ctrl ([ c ], Gate.P a, t) -> List.iter (emit b) (Decompose.cp_ops a c t)
  | Circuit.Ctrl (_, _, _) ->
      invalid_arg "Zx_circuit: circuit must be lowered with Decompose.elementary first"

(* Lower to the ZX-native op set: singles, CX, CZ, SWAP (controlled
   phases expand exactly).  Idempotent. *)
let lower c =
  let c = Decompose.elementary c in
  let expand op =
    match op with
    | Circuit.Ctrl ([ ctl ], Gate.P a, tgt) -> Decompose.cp_ops a ctl tgt
    | Circuit.Gate _ | Circuit.Ctrl _ | Circuit.Swap _ | Circuit.Barrier -> [ op ]
  in
  List.fold_left
    (fun acc op -> List.fold_left Circuit.add acc (expand op))
    (Circuit.create ~name:(Circuit.name c) (Circuit.num_qubits c))
    (Circuit.ops c)

let of_circuit c =
  let c = lower c in
  let n = Circuit.num_qubits c in
  let b = make_builder n in
  List.iter (emit b) (Circuit.ops c);
  for q = 0 to n - 1 do
    let out = Zx_graph.add_vertex b.graph (Zx_graph.B_out q) ~phase:Phase.zero in
    Zx_graph.add_edge b.graph b.cur.(q) out (edge_type b q)
  done;
  b.graph

(* Decompose BEFORE inverting: equivalence-checking tools receive
   already-lowered circuits whose adjoint mirrors the gate list, so the
   junction of the miter cancels gate by gate — this is what keeps the
   rewriting tractable on circuits with large reversible parts. *)
let of_miter g g' = of_circuit (Circuit.append (lower g') (Circuit.inverse (lower g)))
