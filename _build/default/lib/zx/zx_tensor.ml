open Oqec_base

let max_free_classes = 16

(* An endpoint behaves "Z-like" when its leg value equals the vertex bit
   directly: Z-spiders and boundaries.  X-spider legs see the bit through a
   Hadamard.  An edge then acts as a delta (forcing equal bits) or as a
   Hadamard factor, depending on its type and whether the endpoints mix
   colours. *)
let zlike = function
  | Zx_graph.Z | Zx_graph.B_in _ | Zx_graph.B_out _ -> true
  | Zx_graph.X -> false

let hadamard_entry bu bv =
  let s = 1.0 /. sqrt 2.0 in
  if bu = 1 && bv = 1 then Cx.make (-.s) 0.0 else Cx.make s 0.0

(* Delta edges are contracted with a union-find, so the summation only
   ranges over the remaining free classes — this keeps the evaluator fast
   enough for property-based testing. *)
let matrix g =
  let ins = Zx_graph.inputs g and outs = Zx_graph.outputs g in
  let n_in = List.length ins and n_out = List.length outs in
  let expect_positions l =
    List.iteri
      (fun i (q, _) ->
        if q <> i then invalid_arg "Zx_tensor.matrix: qubit indices must be 0..n-1")
      l
  in
  expect_positions ins;
  expect_positions outs;
  let verts = Zx_graph.vertices g in
  let index = Hashtbl.create 64 in
  List.iteri (fun i v -> Hashtbl.replace index v i) verts;
  let nv = List.length verts in
  let parent = Array.init nv (fun i -> i) in
  let rec find i = if parent.(i) = i then i else begin
      let r = find parent.(i) in
      parent.(i) <- r;
      r
    end
  in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(ri) <- rj
  in
  let idx v = Hashtbl.find index v in
  (* Classify each edge once. *)
  let had_edges = ref [] in
  List.iter
    (fun v ->
      List.iter
        (fun (u, ty) ->
          if u > v then begin
            let mixed = zlike (Zx_graph.kind g u) <> zlike (Zx_graph.kind g v) in
            let is_delta = (ty = Zx_graph.Simple) <> mixed in
            if is_delta then union (idx u) (idx v)
            else had_edges := (idx u, idx v) :: !had_edges
          end)
        (Zx_graph.neighbours g v))
    verts;
  (* Partition classes into boundary-pinned and free. *)
  let pinned = Hashtbl.create 16 in
  (* root -> boundary list *)
  let record_boundary (q, v) which =
    let r = find (idx v) in
    let l = Option.value ~default:[] (Hashtbl.find_opt pinned r) in
    Hashtbl.replace pinned r ((which, q) :: l)
  in
  List.iter (fun b -> record_boundary b `In) ins;
  List.iter (fun b -> record_boundary b `Out) outs;
  let roots =
    List.sort_uniq compare (List.init nv find)
  in
  let free_roots = List.filter (fun r -> not (Hashtbl.mem pinned r)) roots in
  let f = List.length free_roots in
  if f > max_free_classes then
    invalid_arg (Printf.sprintf "Zx_tensor.matrix: %d free classes exceed the limit" f);
  let free_pos = Hashtbl.create 16 in
  List.iteri (fun i r -> Hashtbl.replace free_pos r i) free_roots;
  let spiders =
    List.filter_map
      (fun v ->
        match Zx_graph.kind g v with
        | Zx_graph.Z | Zx_graph.X ->
            let p = Zx_graph.phase g v in
            if Phase.is_zero p then None else Some (find (idx v), p)
        | Zx_graph.B_in _ | Zx_graph.B_out _ -> None)
      verts
  in
  let entry row col =
    let boundary_bit = function
      | `In, q -> (col lsr q) land 1
      | `Out, q -> (row lsr q) land 1
    in
    (* Check consistency of multiply-pinned classes and compute their bit. *)
    let pinned_bit = Hashtbl.create 16 in
    let consistent = ref true in
    Hashtbl.iter
      (fun r bs ->
        match List.map boundary_bit bs with
        | [] -> assert false
        | b :: rest ->
            if List.for_all (fun x -> x = b) rest then Hashtbl.replace pinned_bit r b
            else consistent := false)
      pinned;
    if not !consistent then Cx.zero
    else begin
      let total = ref Cx.zero in
      for assignment = 0 to (1 lsl f) - 1 do
        let bit_of_root r =
          match Hashtbl.find_opt pinned_bit r with
          | Some b -> b
          | None -> (assignment lsr Hashtbl.find free_pos r) land 1
        in
        let term = ref Cx.one in
        List.iter
          (fun (iu, iv) ->
            term := Cx.mul !term (hadamard_entry (bit_of_root (find iu)) (bit_of_root (find iv))))
          !had_edges;
        List.iter
          (fun (r, p) ->
            if bit_of_root r = 1 then term := Cx.mul !term (Cx.e_i (Phase.to_float p)))
          spiders;
        total := Cx.add !total !term
      done;
      !total
    end
  in
  Dmatrix.make (1 lsl n_out) (1 lsl n_in) entry

let proportional ?(tol = 1e-8) a b =
  Dmatrix.rows a = Dmatrix.rows b
  && Dmatrix.cols a = Dmatrix.cols b
  &&
  let best = ref (0, 0) and best_mag = ref (-1.0) in
  for i = 0 to Dmatrix.rows a - 1 do
    for j = 0 to Dmatrix.cols a - 1 do
      let m = Cx.mag2 (Dmatrix.get a i j) in
      if m > !best_mag then begin
        best := (i, j);
        best_mag := m
      end
    done
  done;
  let i, j = !best in
  let za = Dmatrix.get a i j and zb = Dmatrix.get b i j in
  if Cx.mag za <= tol then
    Dmatrix.equal ~tol (Dmatrix.zero (Dmatrix.rows b) (Dmatrix.cols b)) b
  else if Cx.mag zb <= tol *. Cx.mag za then false
  else
    let c = Cx.div za zb in
    Dmatrix.equal ~tol a (Dmatrix.scale c b)
