open Oqec_base

let to_dot g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "graph zx {\n  rankdir=LR;\n  node [fontsize=10];\n";
  let vertex v =
    let phase = Zx_graph.phase g v in
    let phase_label = if Phase.is_zero phase then "" else Phase.to_string phase in
    match Zx_graph.kind g v with
    | Zx_graph.B_in q ->
        Printf.sprintf
          "  v%d [shape=plaintext, label=\"in%d\"];\n" v q
    | Zx_graph.B_out q ->
        Printf.sprintf
          "  v%d [shape=plaintext, label=\"out%d\"];\n" v q
    | Zx_graph.Z ->
        Printf.sprintf
          "  v%d [shape=circle, style=filled, fillcolor=\"#ccffcc\", label=\"%s\"];\n" v
          phase_label
    | Zx_graph.X ->
        Printf.sprintf
          "  v%d [shape=circle, style=filled, fillcolor=\"#ffcccc\", label=\"%s\"];\n" v
          phase_label
  in
  List.iter (fun v -> Buffer.add_string buf (vertex v)) (List.sort compare (Zx_graph.vertices g));
  List.iter
    (fun v ->
      List.iter
        (fun (u, ty) ->
          if u > v then
            Buffer.add_string buf
              (match ty with
              | Zx_graph.Simple -> Printf.sprintf "  v%d -- v%d;\n" v u
              | Zx_graph.Had ->
                  Printf.sprintf "  v%d -- v%d [style=dashed, color=blue];\n" v u))
        (Zx_graph.neighbours g v))
    (Zx_graph.vertices g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_dot path g =
  let oc = open_out path in
  output_string oc (to_dot g);
  close_out oc
