lib/zx/zx_extract.ml: Array Circuit Format Gate Hashtbl List Oqec_base Oqec_circuit Perm Phase Printf Sys Zx_circuit Zx_graph Zx_simplify
