lib/zx/zx_tensor.ml: Array Cx Dmatrix Hashtbl List Option Oqec_base Phase Printf Zx_graph
