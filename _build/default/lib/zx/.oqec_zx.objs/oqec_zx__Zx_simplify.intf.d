lib/zx/zx_simplify.mli: Oqec_base Perm Zx_graph
