lib/zx/zx_export.ml: Buffer List Oqec_base Phase Printf Zx_graph
