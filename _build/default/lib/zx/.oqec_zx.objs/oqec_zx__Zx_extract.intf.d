lib/zx/zx_extract.mli: Circuit Oqec_circuit Zx_graph
