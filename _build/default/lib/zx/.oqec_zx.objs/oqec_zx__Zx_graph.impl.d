lib/zx/zx_graph.ml: Format Hashtbl List Oqec_base Phase Printf
