lib/zx/zx_export.mli: Zx_graph
