lib/zx/zx_circuit.ml: Array Circuit Decompose Gate List Oqec_base Oqec_circuit Phase Zx_graph
