lib/zx/zx_tensor.mli: Dmatrix Oqec_base Zx_graph
