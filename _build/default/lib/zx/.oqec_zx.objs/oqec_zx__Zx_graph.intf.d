lib/zx/zx_graph.mli: Format Oqec_base Phase
