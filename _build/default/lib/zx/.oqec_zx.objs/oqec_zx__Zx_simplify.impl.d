lib/zx/zx_simplify.ml: Array Hashtbl List Oqec_base Perm Phase Zx_graph
