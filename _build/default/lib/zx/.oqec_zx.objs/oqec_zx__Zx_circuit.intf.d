lib/zx/zx_circuit.mli: Circuit Oqec_circuit Zx_graph
