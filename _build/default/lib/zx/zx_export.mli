(** Graphviz output for ZX-diagrams: green Z-spiders, red X-spiders,
    square boundaries, dashed blue Hadamard wires — the usual rendering
    conventions of ZX papers (cf. Fig. 6). *)

val to_dot : Zx_graph.t -> string
val write_dot : string -> Zx_graph.t -> unit
