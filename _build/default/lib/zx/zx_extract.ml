open Oqec_base
open Oqec_circuit

exception Extraction_failed of string

let fail fmt = Printf.ksprintf (fun s -> raise (Extraction_failed s)) fmt

let is_spider g v =
  match Zx_graph.kind g v with
  | Zx_graph.Z | Zx_graph.X -> true
  | Zx_graph.B_in _ | Zx_graph.B_out _ -> false

let is_input g v =
  match Zx_graph.kind g v with
  | Zx_graph.B_in _ -> true
  | Zx_graph.B_out _ | Zx_graph.Z | Zx_graph.X -> false

(* Re-wire every input so it reaches its first spider through a plain
   wire into a fresh phase-0 spider, keeping all spider-spider wires
   Hadamard; this makes the frontier's linear algebra uniform. *)
let normalise_inputs g =
  List.iter
    (fun (_, b) ->
      match Zx_graph.neighbours g b with
      | [ (s, ty) ] when is_spider g s ->
          Zx_graph.remove_edge g b s;
          let d1 = Zx_graph.add_vertex g Zx_graph.Z ~phase:Phase.zero in
          Zx_graph.add_edge g b d1 Zx_graph.Simple;
          (match ty with
          | Zx_graph.Had -> Zx_graph.add_edge g d1 s Zx_graph.Had
          | Zx_graph.Simple ->
              let d2 = Zx_graph.add_vertex g Zx_graph.Z ~phase:Phase.zero in
              Zx_graph.add_edge g d1 d2 Zx_graph.Had;
              Zx_graph.add_edge g d2 s Zx_graph.Had)
      | [ (_, _) ] -> ()  (* input wired straight to another boundary *)
      | _ -> fail "input with degree <> 1")
    (Zx_graph.inputs g)

let extract g =
  (* The diagram must be graph-like first. *)
  ignore (Zx_simplify.spider_simp g);
  Zx_simplify.to_gh g;
  ignore (Zx_simplify.spider_simp g);
  normalise_inputs g;
  let outs = Zx_graph.outputs g in
  let n = List.length outs in
  let output = Array.make n 0 in
  List.iter (fun (q, o) -> output.(q) <- o) outs;
  (* Gates are emitted from the output side inwards, so the accumulated
     list is already in circuit order (innermost first at the head end
     after all emissions). *)
  let emitted = ref [] in
  let emit op = emitted := op :: !emitted in
  let frontier = Array.make n (-1) in
  (* Consume a Hadamard on the wire between output q and its neighbour. *)
  let consume_had q v ty =
    match ty with
    | Zx_graph.Simple -> ()
    | Zx_graph.Had ->
        emit (Circuit.Gate (Gate.H, q));
        Zx_graph.remove_edge g output.(q) v;
        Zx_graph.add_edge g output.(q) v Zx_graph.Simple
  in
  Array.iteri
    (fun q o ->
      match Zx_graph.neighbours g o with
      | [ (v, ty) ] ->
          consume_had q v ty;
          frontier.(q) <- v
      | _ -> fail "output with degree <> 1")
    output;
  let wire_of = Hashtbl.create 16 in
  let reset_wires () =
    Hashtbl.reset wire_of;
    Array.iteri
      (fun q v ->
        if Hashtbl.mem wire_of v then fail "spider adjacent to two outputs";
        Hashtbl.replace wire_of v q)
      frontier
  in
  let done_ () = Array.for_all (fun v -> is_input g v) frontier in
  let steps = ref 0 in
  while not (done_ ()) do
    incr steps;
    if !steps > 10000 then fail "no progress (diagram without flow?)";
    reset_wires ();
    (* 1. Phases on the frontier become phase gates. *)
    Array.iteri
      (fun q v ->
        if is_spider g v && not (Phase.is_zero (Zx_graph.phase g v)) then begin
          emit (Circuit.Gate (Gate.P (Zx_graph.phase g v), q));
          Zx_graph.set_phase g v Phase.zero
        end)
      frontier;
    (* 2. Wires inside the frontier become CZs. *)
    Array.iteri
      (fun q v ->
        if is_spider g v then
          List.iter
            (fun (u, ty) ->
              match Hashtbl.find_opt wire_of u with
              | Some r when r > q ->
                  if ty <> Zx_graph.Had then fail "plain wire inside the frontier";
                  emit (Circuit.Ctrl ([ q ], Gate.Z, r));
                  Zx_graph.remove_edge g v u
              | Some _ | None -> ())
            (Zx_graph.neighbours g v))
      frontier;
    (* 3. Spiders left with only the output and an input disappear. *)
    Array.iteri
      (fun q v ->
        if is_spider g v && Zx_graph.degree g v = 2 && Phase.is_zero (Zx_graph.phase g v)
        then begin
          match
            List.filter (fun (u, _) -> u <> output.(q)) (Zx_graph.neighbours g v)
          with
          | [ (b, ty) ] when is_input g b ->
              Zx_graph.remove_vertex g v;
              Zx_graph.add_edge g output.(q) b ty;
              consume_had q b ty;
              frontier.(q) <- b
          | _ -> ()
        end)
      frontier;
    if not (done_ ()) then begin
      (* 4. Bring the frontier/next-layer biadjacency to reduced row
         echelon form with CNOTs, then pull single-neighbour frontier
         spiders through their Hadamard wire. *)
      let rows = ref [] in
      Array.iteri (fun q v -> if is_spider g v then rows := q :: !rows) frontier;
      let rows = Array.of_list (List.rev !rows) in
      let cols = Hashtbl.create 32 in
      let col_list = ref [] in
      Array.iter
        (fun q ->
          List.iter
            (fun u ->
              if
                is_spider g u
                && (not (Hashtbl.mem wire_of u))
                && u <> output.(q)
                && not (Hashtbl.mem cols u)
              then begin
                Hashtbl.replace cols u (List.length !col_list);
                col_list := u :: !col_list
              end)
            (Zx_graph.neighbour_ids g frontier.(q)))
        rows;
      let col_arr = Array.of_list (List.rev !col_list) in
      let nc = Array.length col_arr in
      if nc = 0 then fail "stuck frontier (no next layer)";
      let m = Array.make_matrix (Array.length rows) nc false in
      Array.iteri
        (fun ri q ->
          List.iter
            (fun u ->
              match Hashtbl.find_opt cols u with
              | Some ci -> m.(ri).(ci) <- true
              | None -> ())
            (Zx_graph.neighbour_ids g frontier.(q)))
        rows;
      (* Row operation: row [src] is added into row [dst]; on the diagram
         this toggles dst's wires to src's neighbours, and on the circuit
         it is a CNOT. *)
      let row_add src dst =
        for ci = 0 to nc - 1 do
          if m.(src).(ci) then begin
            m.(dst).(ci) <- not m.(dst).(ci);
            Zx_graph.toggle_edge g frontier.(rows.(dst)) col_arr.(ci) Zx_graph.Had
          end
        done;
        emit (Circuit.Ctrl ([ rows.(dst) ], Gate.X, rows.(src)))
      in
      (* Gauss-Jordan over GF(2).  No physical row swaps: instead each row
         serves as a pivot at most once, otherwise its earlier leading
         column would be smeared back into the other rows. *)
      let used = Array.make (Array.length rows) false in
      for ci = 0 to nc - 1 do
        let found = ref (-1) in
        for ri = 0 to Array.length rows - 1 do
          if !found < 0 && (not used.(ri)) && m.(ri).(ci) then found := ri
        done;
        if !found >= 0 then begin
          let p = !found in
          used.(p) <- true;
          for ri = 0 to Array.length rows - 1 do
            if ri <> p && m.(ri).(ci) then row_add p ri
          done
        end
      done;
      (* Pull every row with exactly one remaining neighbour (each column
         at most once per round, so two wires never claim one spider). *)
      let pulled = ref 0 in
      let claimed = Array.make nc false in
      Array.iteri
        (fun ri q ->
          let ones = ref [] in
          Array.iteri (fun ci b -> if b then ones := ci :: !ones) m.(ri);
          match !ones with
          | [ ci ] when not claimed.(ci) ->
              let w = col_arr.(ci) in
              let v = frontier.(q) in
              if Zx_graph.degree g v = 2 && Phase.is_zero (Zx_graph.phase g v) then begin
                (* v connects only to its output and to w. *)
                Zx_graph.remove_vertex g v;
                Zx_graph.add_edge g output.(q) w Zx_graph.Simple;
                emit (Circuit.Gate (Gate.H, q));
                frontier.(q) <- w;
                claimed.(ci) <- true;
                incr pulled;
                m.(ri).(ci) <- false
              end
          | _ -> ())
        rows;
      if !pulled = 0 then begin
        if Sys.getenv_opt "OQEC_EXTRACT_DEBUG" <> None then begin
          Format.eprintf "stuck state:@.%a@." Zx_graph.pp g;
          Array.iteri (fun q v -> Format.eprintf "frontier %d = %d@." q v) frontier
        end;
        fail "no extractable vertex (phase gadget left?)"
      end
    end
  done;
  (* Leftover: a permutation of plain wires from inputs to outputs. *)
  let image = Array.make n (-1) in
  Array.iteri
    (fun q v ->
      match Zx_graph.kind g v with
      | Zx_graph.B_in i -> image.(i) <- q
      | Zx_graph.B_out _ | Zx_graph.Z | Zx_graph.X -> fail "leftover is not a wire")
    frontier;
  let perm = Perm.of_array image in
  let prefix =
    if Perm.is_identity perm then []
    else
      List.rev (List.map (fun (a, b) -> Circuit.Swap (a, b)) (Perm.transpositions perm))
  in
  let c = Circuit.create ~name:"extracted" n in
  let c = List.fold_left Circuit.add c prefix in
  List.fold_left Circuit.add c !emitted

let resynthesize circuit =
  let g = Zx_circuit.of_circuit circuit in
  ignore (Zx_simplify.interior_clifford_simp g);
  let out = extract g in
  Circuit.with_name out (Circuit.name circuit ^ "~zx")
