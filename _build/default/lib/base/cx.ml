type t = Complex.t = { re : float; im : float }

let zero = Complex.zero
let one = Complex.one
let minus_one = { re = -1.0; im = 0.0 }
let i = Complex.i
let sqrt2_inv = { re = 1.0 /. sqrt 2.0; im = 0.0 }
let make re im = { re; im }
let of_polar ~mag ~arg = { re = mag *. cos arg; im = mag *. sin arg }
let e_i theta = of_polar ~mag:1.0 ~arg:theta
let re z = z.re
let im z = z.im
let add = Complex.add
let sub = Complex.sub
let mul = Complex.mul
let div = Complex.div
let neg = Complex.neg
let conj = Complex.conj
let scale s z = { re = s *. z.re; im = s *. z.im }
let mag2 z = (z.re *. z.re) +. (z.im *. z.im)
let mag = Complex.norm
let arg = Complex.arg
let default_tolerance = 1e-10

let approx_equal ?(tol = default_tolerance) a b =
  Float.abs (a.re -. b.re) <= tol && Float.abs (a.im -. b.im) <= tol

let is_zero ?(tol = default_tolerance) z = approx_equal ~tol z zero
let is_one ?(tol = default_tolerance) z = approx_equal ~tol z one

let pp ppf z =
  if Float.abs z.im < 1e-15 then Format.fprintf ppf "%g" z.re
  else if Float.abs z.re < 1e-15 then Format.fprintf ppf "%gi" z.im
  else Format.fprintf ppf "%g%+gi" z.re z.im

let to_string z = Format.asprintf "%a" pp z
