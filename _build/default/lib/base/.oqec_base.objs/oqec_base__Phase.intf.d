lib/base/phase.mli: Format
