lib/base/rng.ml: Random
