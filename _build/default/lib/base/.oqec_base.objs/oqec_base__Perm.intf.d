lib/base/perm.mli: Format
