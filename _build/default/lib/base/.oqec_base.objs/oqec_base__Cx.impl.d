lib/base/cx.ml: Complex Float Format
