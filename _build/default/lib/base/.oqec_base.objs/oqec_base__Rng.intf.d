lib/base/rng.mli:
