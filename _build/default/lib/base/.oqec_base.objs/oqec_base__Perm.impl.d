lib/base/perm.ml: Array Format List String
