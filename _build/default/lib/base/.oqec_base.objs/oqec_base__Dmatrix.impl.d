lib/base/dmatrix.ml: Array Cx Format Perm
