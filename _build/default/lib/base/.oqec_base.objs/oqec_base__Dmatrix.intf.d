lib/base/dmatrix.mli: Cx Format Perm
