lib/base/phase.ml: Float Format
