lib/base/cx.mli: Complex Format
