(** Permutations of [0 .. n-1].

    Used to model initial layouts (logical to physical qubit assignments)
    and output permutations of compiled circuits, and to track the dynamic
    logical-to-physical mapping as SWAP gates are absorbed during
    equivalence checking. *)

type t

(** [id n] is the identity permutation on [n] elements. *)
val id : int -> t

(** [of_array a] validates that [a] is a bijection of [0..n-1] and returns
    it as a permutation.  Raises [Invalid_argument] otherwise. *)
val of_array : int array -> t

val to_array : t -> int array
val size : t -> int

(** [apply p i] is the image of [i] under [p]. *)
val apply : t -> int -> int

val inverse : t -> t

(** [compose p q] is the permutation mapping [i] to [p (q i)]. *)
val compose : t -> t -> t

(** [swap p a b] is [p] with the images of [a] and [b] exchanged. *)
val swap : t -> int -> int -> t

val is_identity : t -> bool
val equal : t -> t -> bool

(** [transpositions p] decomposes [p] into a list of swaps [(a, b)] such
    that applying them in order to the identity yields [p].  Used to emit
    correction SWAPs when a tracked permutation does not match the expected
    output permutation. *)
val transpositions : t -> (int * int) list

(** [random rng n] is a uniformly random permutation (Fisher-Yates), where
    [rng k] must return a uniform integer in [0, k). *)
val random : (int -> int) -> int -> t

val pp : Format.formatter -> t -> unit
