type t = int array

let id n = Array.init n (fun i -> i)

let of_array a =
  let n = Array.length a in
  let seen = Array.make n false in
  let check x =
    if x < 0 || x >= n then invalid_arg "Perm.of_array: out of range";
    if seen.(x) then invalid_arg "Perm.of_array: not a bijection";
    seen.(x) <- true
  in
  Array.iter check a;
  Array.copy a

let to_array p = Array.copy p
let size = Array.length
let apply p i = p.(i)

let inverse p =
  let inv = Array.make (Array.length p) 0 in
  Array.iteri (fun i x -> inv.(x) <- i) p;
  inv

let compose p q = Array.map (fun x -> p.(x)) q

let swap p a b =
  let p' = Array.copy p in
  let t = p'.(a) in
  p'.(a) <- p'.(b);
  p'.(b) <- t;
  p'

let is_identity p =
  let ok = ref true in
  Array.iteri (fun i x -> if i <> x then ok := false) p;
  !ok

let equal = ( = )

(* Selection-style decomposition: repeatedly move the right element into
   position [i] by swapping, recording each swap performed. *)
let transpositions p =
  let cur = Array.copy (id (Array.length p)) in
  let swaps = ref [] in
  for i = 0 to Array.length p - 1 do
    if cur.(i) <> p.(i) then begin
      let j = ref i in
      for k = i + 1 to Array.length p - 1 do
        if cur.(k) = p.(i) then j := k
      done;
      let t = cur.(i) in
      cur.(i) <- cur.(!j);
      cur.(!j) <- t;
      swaps := (i, !j) :: !swaps
    end
  done;
  List.rev !swaps

let random rng n =
  let a = id n in
  for i = n - 1 downto 1 do
    let j = rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  a

let pp ppf p =
  Format.fprintf ppf "[%s]"
    (String.concat "; " (Array.to_list (Array.map string_of_int p)))
