(** Dense complex matrices.

    This is the brute-force reference semantics of the library: circuits,
    decision diagrams and ZX-diagrams on a handful of qubits can all be
    evaluated to a dense matrix and compared, which is how the sophisticated
    representations are validated in the test suite.  Dimensions are
    arbitrary (not restricted to powers of two) so the module can also hold
    single-gate matrices. *)

type t

(** [make rows cols f] builds the matrix with entry [f i j] at row [i],
    column [j]. *)
val make : int -> int -> (int -> int -> Cx.t) -> t

val zero : int -> int -> t
val identity : int -> t
val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> Cx.t
val set : t -> int -> int -> Cx.t -> unit
val copy : t -> t
val add : t -> t -> t
val sub : t -> t -> t

(** [mul a b] is the matrix product [a * b]. *)
val mul : t -> t -> t

(** [kron a b] is the Kronecker (tensor) product with [a]'s indices most
    significant. *)
val kron : t -> t -> t

val scale : Cx.t -> t -> t

(** [adjoint a] is the conjugate transpose of [a]. *)
val adjoint : t -> t

val transpose : t -> t
val trace : t -> Cx.t

(** [apply a v] multiplies matrix [a] with column vector [v] (given as a
    [Cx.t array]). *)
val apply : t -> Cx.t array -> Cx.t array

(** [permutation_matrix p] is the unitary [P] with [P |i>] = [|sigma(i)>]
    where bit [q] of the basis-state index moves to bit [Perm.apply p q]. *)
val permutation_matrix : Perm.t -> t

val equal : ?tol:float -> t -> t -> bool

(** [equal_up_to_phase ?tol a b] holds when [a = exp(i*theta) * b] for some
    global phase [theta]. *)
val equal_up_to_phase : ?tol:float -> t -> t -> bool

(** [is_unitary ?tol a] checks [a * adjoint a = I]. *)
val is_unitary : ?tol:float -> t -> bool

(** [hilbert_schmidt a b] is [|tr(adjoint a * b)|], the similarity measure
    used in Section 3 of the paper; it equals the dimension when the
    matrices are equal up to global phase. *)
val hilbert_schmidt : t -> t -> float

val pp : Format.formatter -> t -> unit
