type t = { rows : int; cols : int; data : Cx.t array }

let make rows cols f =
  let data = Array.init (rows * cols) (fun k -> f (k / cols) (k mod cols)) in
  { rows; cols; data }

let zero rows cols = { rows; cols; data = Array.make (rows * cols) Cx.zero }
let identity n = make n n (fun i j -> if i = j then Cx.one else Cx.zero)
let rows m = m.rows
let cols m = m.cols
let get m i j = m.data.((i * m.cols) + j)
let set m i j v = m.data.((i * m.cols) + j) <- v
let copy m = { m with data = Array.copy m.data }

let map2 f a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Dmatrix: shape";
  { a with data = Array.map2 f a.data b.data }

let add = map2 Cx.add
let sub = map2 Cx.sub

let mul a b =
  if a.cols <> b.rows then invalid_arg "Dmatrix.mul: shape";
  let c = zero a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = get a i k in
      if not (Cx.is_zero aik) then
        for j = 0 to b.cols - 1 do
          set c i j (Cx.add (get c i j) (Cx.mul aik (get b k j)))
        done
    done
  done;
  c

let kron a b =
  make (a.rows * b.rows) (a.cols * b.cols) (fun i j ->
      Cx.mul (get a (i / b.rows) (j / b.cols)) (get b (i mod b.rows) (j mod b.cols)))

let scale s m = { m with data = Array.map (Cx.mul s) m.data }
let adjoint m = make m.cols m.rows (fun i j -> Cx.conj (get m j i))
let transpose m = make m.cols m.rows (fun i j -> get m j i)

let trace m =
  let acc = ref Cx.zero in
  for i = 0 to min m.rows m.cols - 1 do
    acc := Cx.add !acc (get m i i)
  done;
  !acc

let apply m v =
  if m.cols <> Array.length v then invalid_arg "Dmatrix.apply: shape";
  Array.init m.rows (fun i ->
      let acc = ref Cx.zero in
      for j = 0 to m.cols - 1 do
        acc := Cx.add !acc (Cx.mul (get m i j) v.(j))
      done;
      !acc)

(* Move bit [q] of the index to bit [p q]: column |i> has a single 1 in the
   row whose bits are the permuted bits of i. *)
let permutation_matrix p =
  let n = Perm.size p in
  let dim = 1 lsl n in
  let image i =
    let r = ref 0 in
    for q = 0 to n - 1 do
      if (i lsr q) land 1 = 1 then r := !r lor (1 lsl Perm.apply p q)
    done;
    !r
  in
  make dim dim (fun row col -> if row = image col then Cx.one else Cx.zero)

let equal ?tol a b =
  a.rows = b.rows && a.cols = b.cols
  && Array.for_all2 (fun x y -> Cx.approx_equal ?tol x y) a.data b.data

let largest_entry_index m =
  let best = ref 0 and best_mag = ref (-1.0) in
  Array.iteri
    (fun k z ->
      let mag = Cx.mag2 z in
      if mag > !best_mag then begin
        best := k;
        best_mag := mag
      end)
    m.data;
  !best

(* The phase must be estimated from the SAME entry position in both
   matrices; picking each matrix's own largest entry goes wrong when
   magnitudes tie up to floating-point noise. *)
let equal_up_to_phase ?tol a b =
  a.rows = b.rows && a.cols = b.cols
  &&
  let k = largest_entry_index a in
  let za = a.data.(k) and zb = b.data.(k) in
  if Cx.is_zero za || Cx.is_zero zb then equal ?tol a b
  else
    let phase = Cx.e_i (Cx.arg za -. Cx.arg zb) in
    equal ?tol a (scale phase b)

let is_unitary ?tol m =
  m.rows = m.cols && equal ?tol (mul m (adjoint m)) (identity m.rows)

let hilbert_schmidt a b = Cx.mag (trace (mul (adjoint a) b))

let pp ppf m =
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "@[<h>";
    for j = 0 to m.cols - 1 do
      Format.fprintf ppf "%10s " (Cx.to_string (get m i j))
    done;
    Format.fprintf ppf "@]@\n"
  done
