(** Complex numbers with tolerance-aware comparison.

    Thin wrapper around [Stdlib.Complex] providing the operations needed by
    the decision-diagram and ZX packages: polar constructors, approximate
    equality with a configurable tolerance, and printing.  All angles are in
    radians. *)

type t = Complex.t = { re : float; im : float }

val zero : t
val one : t
val minus_one : t
val i : t

(** [sqrt2_inv] is 1/sqrt 2, the weight showing up in Hadamard transforms. *)
val sqrt2_inv : t

val make : float -> float -> t

(** [of_polar ~mag ~arg] is the complex number [mag * exp(i*arg)]. *)
val of_polar : mag:float -> arg:float -> t

(** [e_i theta] is [exp(i*theta)], a unit-magnitude phase factor. *)
val e_i : float -> t

val re : t -> float
val im : t -> float
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val conj : t -> t
val scale : float -> t -> t

(** [mag2 z] is the squared magnitude of [z]. *)
val mag2 : t -> float

val mag : t -> float
val arg : t -> float

(** [approx_equal ?tol a b] holds when both components differ by at most
    [tol] (default {!default_tolerance}). *)
val approx_equal : ?tol:float -> t -> t -> bool

(** [is_zero ?tol z] holds when [z] is within [tol] of zero. *)
val is_zero : ?tol:float -> t -> bool

(** [is_one ?tol z] holds when [z] is within [tol] of one. *)
val is_one : ?tol:float -> t -> bool

(** Default tolerance used throughout the library when comparing floating
    point amplitudes (1e-10, mirroring the QMDD package default). *)
val default_tolerance : float

val pp : Format.formatter -> t -> unit
val to_string : t -> string
