type t = Random.State.t

let make ~seed = Random.State.make [| seed; 0x5eed |]
let split t = Random.State.make [| Random.State.bits t; Random.State.bits t |]
let int t bound = Random.State.int t bound
let bool t = Random.State.bool t
let float t bound = Random.State.float t bound
let bits64 t = Random.State.bits64 t
