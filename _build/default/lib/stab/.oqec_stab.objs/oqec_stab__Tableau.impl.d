lib/stab/tableau.ml: Array Buffer Circuit Format Gate List Oqec_base Oqec_circuit Phase Printf
