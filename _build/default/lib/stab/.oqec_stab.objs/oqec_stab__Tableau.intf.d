lib/stab/tableau.mli: Circuit Format Oqec_circuit
