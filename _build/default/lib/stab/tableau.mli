(** Heisenberg-picture tableaus for Clifford circuits
    (Aaronson-Gottesman style).

    A Clifford unitary is represented by the images of the Pauli
    generators under conjugation: for each qubit [q], the Hermitian
    Paulis [U X_q U^dag] and [U Z_q U^dag], each a signed Pauli string.
    Two Clifford circuits are equal up to global phase if and only if
    their tableaus coincide — a complete, polynomial-time equivalence
    check for the Clifford fragment (the fragment for which the paper
    notes the ZX ruleset is complete, ref. [41]).

    Polynomial scaling makes 65-qubit GHZ and graph-state instances
    instantaneous. *)

open Oqec_circuit

type t

(** [identity n] represents the identity on [n] qubits. *)
val identity : int -> t

val num_qubits : t -> int

(** Primitive Clifford gate applications (in-place). *)

val apply_h : t -> int -> unit
val apply_s : t -> int -> unit
val apply_cx : t -> ctl:int -> tgt:int -> unit

(** [apply_op tab op] applies any Clifford circuit operation, decomposing
    derived gates into H/S/CX; raises [Not_clifford] otherwise. *)
val apply_op : t -> Circuit.op -> unit

exception Not_clifford of string

(** [of_circuit c] builds the conjugation tableau of a Clifford circuit
    (layout metadata ignored; raises {!Not_clifford} on any non-Clifford
    gate). *)
val of_circuit : Circuit.t -> t

(** [equal a b] decides equality of the represented unitaries up to
    global phase. *)
val equal : t -> t -> bool

(** [row_x tab q] and [row_z tab q] expose the image of [X_q] / [Z_q] as
    [(x_bits, z_bits, negative)] for testing and display. *)
val row_x : t -> int -> bool array * bool array * bool
val row_z : t -> int -> bool array * bool array * bool

val pp : Format.formatter -> t -> unit
