open Oqec_base
open Oqec_circuit

exception Not_clifford of string

(* Row i is the image of X_i, row n+i the image of Z_i: a Hermitian Pauli
   string with a sign.  Appending a gate conjugates every row by it. *)
type row = { x : bool array; z : bool array; mutable neg : bool }
type t = { n : int; rows : row array }

let identity n =
  let make_row i kind =
    let x = Array.make n false and z = Array.make n false in
    (match kind with `X -> x.(i) <- true | `Z -> z.(i) <- true);
    { x; z; neg = false }
  in
  {
    n;
    rows =
      Array.init (2 * n) (fun k ->
          if k < n then make_row k `X else make_row (k - n) `Z);
  }

let num_qubits t = t.n

let apply_h t q =
  Array.iter
    (fun row ->
      if row.x.(q) && row.z.(q) then row.neg <- not row.neg;
      let tmp = row.x.(q) in
      row.x.(q) <- row.z.(q);
      row.z.(q) <- tmp)
    t.rows

let apply_s t q =
  Array.iter
    (fun row ->
      if row.x.(q) && row.z.(q) then row.neg <- not row.neg;
      row.z.(q) <- row.z.(q) <> row.x.(q))
    t.rows

let apply_cx t ~ctl ~tgt =
  Array.iter
    (fun row ->
      if row.x.(ctl) && row.z.(tgt) && row.x.(tgt) = row.z.(ctl) then
        row.neg <- not row.neg;
      row.x.(tgt) <- row.x.(tgt) <> row.x.(ctl);
      row.z.(ctl) <- row.z.(ctl) <> row.z.(tgt))
    t.rows

let not_clifford fmt = Printf.ksprintf (fun s -> raise (Not_clifford s)) fmt

(* Express derived Clifford gates through H/S/CX. *)
let rec apply_op t (op : Circuit.op) =
  let h q = apply_h t q and s q = apply_s t q in
  let sdg q = s q; s q; s q in
  let z q = s q; s q in
  let x q = h q; z q; h q in
  let rz_clifford a q =
    if Phase.is_zero a then ()
    else if Phase.equal a Phase.half_pi then s q
    else if Phase.is_pi a then z q
    else if Phase.equal a Phase.minus_half_pi then sdg q
    else not_clifford "rotation by %s" (Phase.to_string a)
  in
  let rx_clifford a q = h q; rz_clifford a q; h q in
  let ry_clifford a q =
    (* Ry(a) = Rz(pi/2) Rx(a) Rz(-pi/2), applied right to left. *)
    rz_clifford Phase.minus_half_pi q;
    rx_clifford a q;
    rz_clifford Phase.half_pi q
  in
  match op with
  | Circuit.Barrier -> ()
  | Circuit.Swap (a, b) ->
      apply_cx t ~ctl:a ~tgt:b;
      apply_cx t ~ctl:b ~tgt:a;
      apply_cx t ~ctl:a ~tgt:b
  | Circuit.Gate (g, q) -> (
      match g with
      | Gate.I -> ()
      | Gate.H -> h q
      | Gate.S -> s q
      | Gate.Sdg -> sdg q
      | Gate.Z -> z q
      | Gate.X -> x q
      | Gate.Y -> z q; x q
      | Gate.Sx -> h q; s q; h q
      | Gate.Sxdg -> h q; sdg q; h q
      | Gate.T | Gate.Tdg -> not_clifford "%s gate" (Gate.name g)
      | Gate.Rz a | Gate.P a -> rz_clifford a q
      | Gate.Rx a -> rx_clifford a q
      | Gate.Ry a -> ry_clifford a q
      | Gate.U (theta, phi, lambda) ->
          rz_clifford lambda q;
          ry_clifford theta q;
          rz_clifford phi q)
  | Circuit.Ctrl ([ c ], Gate.X, tgt) -> apply_cx t ~ctl:c ~tgt
  | Circuit.Ctrl ([ c ], Gate.Z, tgt) ->
      h tgt;
      apply_cx t ~ctl:c ~tgt;
      h tgt
  | Circuit.Ctrl ([ c ], Gate.P a, tgt) when Phase.is_pi a ->
      apply_op t (Circuit.Ctrl ([ c ], Gate.Z, tgt))
  | Circuit.Ctrl ([ c ], Gate.Rz a, tgt) when Phase.is_pauli a ->
      (* CRz(pi) = diag(1,1,-i,i) = Sdg(control) . CZ, which is Clifford. *)
      if Phase.is_pi a then begin
        sdg c;
        apply_op t (Circuit.Ctrl ([ c ], Gate.Z, tgt))
      end
  | Circuit.Ctrl (_, g, _) -> not_clifford "controlled %s" (Gate.name g)

let of_circuit c =
  let t = identity (Circuit.num_qubits c) in
  List.iter (apply_op t) (Circuit.ops c);
  t

let row_eq a b = a.neg = b.neg && a.x = b.x && a.z = b.z

let equal a b =
  a.n = b.n && Array.for_all2 row_eq a.rows b.rows

let row_x t q = (Array.copy t.rows.(q).x, Array.copy t.rows.(q).z, t.rows.(q).neg)

let row_z t q =
  (Array.copy t.rows.(t.n + q).x, Array.copy t.rows.(t.n + q).z, t.rows.(t.n + q).neg)

let pp ppf t =
  let pauli row =
    let buf = Buffer.create t.n in
    Buffer.add_char buf (if row.neg then '-' else '+');
    for q = 0 to t.n - 1 do
      Buffer.add_char buf
        (match (row.x.(q), row.z.(q)) with
        | false, false -> 'I'
        | true, false -> 'X'
        | false, true -> 'Z'
        | true, true -> 'Y')
    done;
    Buffer.contents buf
  in
  for q = 0 to t.n - 1 do
    Format.fprintf ppf "X%-3d -> %s@." q (pauli t.rows.(q));
    Format.fprintf ppf "Z%-3d -> %s@." q (pauli t.rows.(t.n + q))
  done
