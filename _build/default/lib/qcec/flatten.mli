(** Absorbing SWAPs and layout metadata into permutation bookkeeping.

    Compiled circuits differ from their high-level originals by an initial
    layout, inserted SWAP gates and an output permutation (Section 3).
    [flatten] tracks the dynamic logical-to-physical assignment through
    the circuit — every SWAP becomes an update of the tracked permutation
    rather than three gate applications, exactly as in Section 4.1 — and
    returns a plain circuit without SWAPs or metadata whose unitary equals
    the circuit's effective unitary (validated against
    {!Oqec_circuit.Unitary.effective_unitary} in the test suite).

    Any residual mismatch between the tracked permutation and the
    expected output permutation is corrected with explicit SWAP gates at
    the end, as the paper describes (the only SWAPs remaining in the
    output). *)

open Oqec_circuit

(** [flatten ?reconstruct_swaps c] eliminates SWAPs and layouts.
    [reconstruct_swaps] (default [true]) first re-assembles SWAPs from
    CX triples to maximise what can be absorbed. *)
val flatten : ?reconstruct_swaps:bool -> Circuit.t -> Circuit.t

(** [align a b] widens the narrower circuit so both have equal width. *)
val align : Circuit.t -> Circuit.t -> Circuit.t * Circuit.t
