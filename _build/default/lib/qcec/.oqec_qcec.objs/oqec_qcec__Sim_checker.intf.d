lib/qcec/sim_checker.mli: Circuit Equivalence Oqec_circuit
