lib/qcec/stab_checker.ml: Circuit Equivalence Flatten Oqec_circuit Oqec_stab Printf Tableau Unix
