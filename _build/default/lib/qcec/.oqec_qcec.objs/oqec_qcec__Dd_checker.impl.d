lib/qcec/dd_checker.ml: Array Circuit Cx Dd Dd_circuit Decompose Equivalence Flatten Float List Oqec_base Oqec_circuit Oqec_dd Printf Unix
