lib/qcec/stab_checker.mli: Circuit Equivalence Oqec_circuit
