lib/qcec/equivalence.mli: Format
