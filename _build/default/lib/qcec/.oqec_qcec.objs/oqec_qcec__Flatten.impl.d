lib/qcec/flatten.ml: Array Circuit Fun List Optimize Oqec_base Oqec_circuit Oqec_compile Perm
