lib/qcec/sim_checker.ml: Array Circuit Cx Dd Dd_circuit Equivalence Flatten List Oqec_base Oqec_circuit Oqec_dd Oqec_workloads Printf Rng Unix Workloads
