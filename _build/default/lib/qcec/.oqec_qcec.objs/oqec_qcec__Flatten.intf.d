lib/qcec/flatten.mli: Circuit Oqec_circuit
