lib/qcec/qcec.mli: Circuit Dd_checker Equivalence Oqec_circuit
