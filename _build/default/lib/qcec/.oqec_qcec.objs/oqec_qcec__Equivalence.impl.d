lib/qcec/equivalence.ml: Format Printf Unix
