lib/qcec/dd_checker.mli: Circuit Equivalence Oqec_circuit
