lib/qcec/qcec.ml: Dd_checker Equivalence Float Option Sim_checker Stab_checker Unix Zx_checker
