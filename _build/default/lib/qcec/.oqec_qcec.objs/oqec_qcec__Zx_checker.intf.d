lib/qcec/zx_checker.mli: Circuit Equivalence Oqec_circuit
