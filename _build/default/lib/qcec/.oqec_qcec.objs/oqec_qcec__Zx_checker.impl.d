lib/qcec/zx_checker.ml: Equivalence Flatten Oqec_base Oqec_zx Perm Printf Unix Zx_circuit Zx_graph Zx_simplify
