(** ZX-calculus equivalence checking (Section 5.1).

    Composes [G'] with the inverse of [G], rewrites the diagram to
    graph-like form and reduces it with the full PyZX-style procedure.
    Bare wires with the identity permutation prove equivalence; a
    non-identity permutation proves non-equivalence; remaining spiders
    yield [No_information]. *)

open Oqec_circuit

val check : ?deadline:float -> Circuit.t -> Circuit.t -> Equivalence.report
