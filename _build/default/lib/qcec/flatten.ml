open Oqec_base
open Oqec_circuit
open Oqec_compile

(* Invariant maintained below: U(prefix) . P(layout) = P(pi) . U(emitted),
   where pi is the tracked logical-to-wire assignment.  Gates on wires
   [ws] therefore re-emit on logicals [inv ws]; SWAPs update pi only.  At
   the end, Eff(c) = P(inv output_perm . pi) . U(emitted), and that
   residual permutation is realised by explicit SWAP gates. *)
let flatten ?(reconstruct_swaps = true) c =
  let c = if reconstruct_swaps then Optimize.reconstruct_swaps c else c in
  let n = Circuit.num_qubits c in
  (* Layouts recorded on a circuit narrower than its final width (after
     [align]) are padded with the identity on the remaining wires. *)
  let extend p =
    if Perm.size p = n then p
    else begin
      let a = Array.make n (-1) in
      Array.iteri (fun l w -> a.(l) <- w) (Perm.to_array p);
      let used = Array.make n false in
      Array.iter (fun w -> if w >= 0 then used.(w) <- true) a;
      let free = ref (List.filter (fun w -> not used.(w)) (List.init n Fun.id)) in
      Array.iteri
        (fun l w ->
          if w < 0 then
            match !free with
            | f :: rest ->
                a.(l) <- f;
                free := rest
            | [] -> assert false)
        a;
      Perm.of_array a
    end
  in
  let layout =
    match Circuit.initial_layout c with Some l -> extend l | None -> Perm.id n
  in
  let pi = Perm.to_array layout in
  let inv = Array.make n 0 in
  Array.iteri (fun l w -> inv.(w) <- l) pi;
  let out = ref (Circuit.create ~name:(Circuit.name c ^ "~flat") n) in
  let handle op =
    match op with
    | Circuit.Barrier -> ()
    | Circuit.Swap (w1, w2) ->
        let l1 = inv.(w1) and l2 = inv.(w2) in
        pi.(l1) <- w2;
        pi.(l2) <- w1;
        inv.(w1) <- l2;
        inv.(w2) <- l1
    | Circuit.Gate (g, t) -> out := Circuit.add !out (Circuit.Gate (g, inv.(t)))
    | Circuit.Ctrl (cs, g, t) ->
        out :=
          Circuit.add !out (Circuit.Ctrl (List.map (fun q -> inv.(q)) cs, g, inv.(t)))
  in
  List.iter handle (Circuit.ops c);
  let output =
    match Circuit.output_perm c with Some o -> extend o | None -> Perm.id n
  in
  let residual = Perm.compose (Perm.inverse output) (Perm.of_array pi) in
  if not (Perm.is_identity residual) then begin
    let swaps = List.rev (Perm.transpositions residual) in
    List.iter (fun (a, b) -> out := Circuit.add !out (Circuit.Swap (a, b))) swaps
  end;
  !out

let align a b =
  let n = max (Circuit.num_qubits a) (Circuit.num_qubits b) in
  (Circuit.embed a ~num_qubits:n, Circuit.embed b ~num_qubits:n)
