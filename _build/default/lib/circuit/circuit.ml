open Oqec_base

type op =
  | Gate of Gate.t * int
  | Ctrl of int list * Gate.t * int
  | Swap of int * int
  | Barrier

type t = {
  name : string;
  num_qubits : int;
  rev_ops : op list;
  n_ops : int;
  initial_layout : Perm.t option;
  output_perm : Perm.t option;
}

let create ?(name = "circuit") num_qubits =
  if num_qubits < 0 then invalid_arg "Circuit.create: negative width";
  { name; num_qubits; rev_ops = []; n_ops = 0; initial_layout = None; output_perm = None }

let name c = c.name
let num_qubits c = c.num_qubits
let ops c = List.rev c.rev_ops
let ops_array c = Array.of_list (ops c)

let op_qubits = function
  | Gate (_, t) -> [ t ]
  | Ctrl (cs, _, t) -> cs @ [ t ]
  | Swap (a, b) -> [ a; b ]
  | Barrier -> []

let rec distinct = function
  | [] -> true
  | x :: rest -> (not (List.mem x rest)) && distinct rest

let validate_op num_qubits op =
  let qs = op_qubits op in
  if List.exists (fun q -> q < 0 || q >= num_qubits) qs then
    invalid_arg "Circuit.add: wire index out of range";
  if not (distinct qs) then invalid_arg "Circuit.add: colliding operands";
  match op with
  | Ctrl ([], _, _) -> invalid_arg "Circuit.add: empty control list"
  | Ctrl (_, _, _) | Gate _ | Swap _ | Barrier -> ()

let add c op =
  validate_op c.num_qubits op;
  { c with rev_ops = op :: c.rev_ops; n_ops = c.n_ops + 1 }

let add_list c l = List.fold_left add c l
let gate c g q = add c (Gate (g, q))
let cx c a b = add c (Ctrl ([ a ], Gate.X, b))
let cz c a b = add c (Ctrl ([ a ], Gate.Z, b))
let ccx c a b t = add c (Ctrl ([ a; b ], Gate.X, t))
let mcx c cs t = add c (Ctrl (cs, Gate.X, t))
let swap c a b = add c (Swap (a, b))
let h c q = gate c Gate.H q
let x c q = gate c Gate.X q
let z c q = gate c Gate.Z q
let s c q = gate c Gate.S q
let t_gate c q = gate c Gate.T q
let rz c a q = gate c (Gate.Rz a) q
let rx c a q = gate c (Gate.Rx a) q
let ry c a q = gate c (Gate.Ry a) q
let p c a q = gate c (Gate.P a) q
let cp c a ctl tgt = add c (Ctrl ([ ctl ], Gate.P a, tgt))
let with_name c name = { c with name }
let initial_layout c = c.initial_layout
let output_perm c = c.output_perm
let with_initial_layout c initial_layout = { c with initial_layout }
let with_output_perm c output_perm = { c with output_perm }

let inverse_op = function
  | Gate (g, t) -> Gate (Gate.inverse g, t)
  | Ctrl (cs, g, t) -> Ctrl (cs, Gate.inverse g, t)
  | Swap (a, b) -> Swap (a, b)
  | Barrier -> Barrier

let inverse c =
  {
    name = c.name ^ "_dg";
    num_qubits = c.num_qubits;
    (* Program order of the inverse is the reverse of [ops c] with each op
       inverted; stored reversed, that is [ops c] mapped through the
       inverse. *)
    rev_ops = List.map inverse_op (List.rev c.rev_ops);
    n_ops = c.n_ops;
    initial_layout = None;
    output_perm = None;
  }

let append a b =
  if a.num_qubits <> b.num_qubits then invalid_arg "Circuit.append: width mismatch";
  { a with rev_ops = b.rev_ops @ a.rev_ops; n_ops = a.n_ops + b.n_ops }

let map_op_qubits f = function
  | Gate (g, t) -> Gate (g, f t)
  | Ctrl (cs, g, t) -> Ctrl (List.map f cs, g, f t)
  | Swap (a, b) -> Swap (f a, f b)
  | Barrier -> Barrier

let map_qubits f c =
  let remapped = List.rev_map (map_op_qubits f) c.rev_ops in
  List.iter (validate_op c.num_qubits) remapped;
  { c with rev_ops = List.rev remapped }

let embed c ~num_qubits =
  if num_qubits < c.num_qubits then invalid_arg "Circuit.embed: narrower target";
  { c with num_qubits }

let is_real_gate = function Gate _ | Ctrl _ | Swap _ -> true | Barrier -> false
let gate_count c = List.length (List.filter is_real_gate c.rev_ops)

let two_qubit_count c =
  let multi = function
    | Ctrl _ | Swap _ -> true
    | Gate _ | Barrier -> false
  in
  List.length (List.filter multi c.rev_ops)

(* Count T-type phases: T/Tdg, and rotations by odd multiples of pi/4. *)
let t_count c =
  let is_t_angle a =
    Phase.equal a Phase.quarter_pi
    || Phase.equal a (Phase.of_pi_fraction (-1) 4)
    || Phase.equal a (Phase.of_pi_fraction 3 4)
    || Phase.equal a (Phase.of_pi_fraction (-3) 4)
  in
  let count_gate = function
    | Gate.T | Gate.Tdg -> 1
    | Gate.Rz a | Gate.P a -> if is_t_angle a then 1 else 0
    | Gate.I | Gate.X | Gate.Y | Gate.Z | Gate.H | Gate.S | Gate.Sdg | Gate.Sx
    | Gate.Sxdg | Gate.Rx _ | Gate.Ry _ | Gate.U _ ->
        0
  in
  let count_op = function
    | Gate (g, _) | Ctrl (_, g, _) -> count_gate g
    | Swap _ | Barrier -> 0
  in
  List.fold_left (fun acc op -> acc + count_op op) 0 c.rev_ops

let depth c =
  let level = Array.make (max 1 c.num_qubits) 0 in
  let advance op =
    match op_qubits op with
    | [] -> ()
    | qs ->
        let d = 1 + List.fold_left (fun m q -> max m level.(q)) 0 qs in
        List.iter (fun q -> level.(q) <- d) qs
  in
  List.iter advance (ops c);
  Array.fold_left max 0 level

let used_qubits c =
  let module S = Set.Make (Int) in
  let add_op acc op = List.fold_left (fun s q -> S.add q s) acc (op_qubits op) in
  S.elements (List.fold_left add_op S.empty c.rev_ops)

let equal_op a b =
  match (a, b) with
  | Gate (g1, t1), Gate (g2, t2) -> Gate.equal g1 g2 && t1 = t2
  | Ctrl (c1, g1, t1), Ctrl (c2, g2, t2) ->
      List.sort compare c1 = List.sort compare c2 && Gate.equal g1 g2 && t1 = t2
  | Swap (a1, b1), Swap (a2, b2) -> (a1, b1) = (a2, b2) || (a1, b1) = (b2, a2)
  | Barrier, Barrier -> true
  | (Gate _ | Ctrl _ | Swap _ | Barrier), _ -> false

let pp_op ppf = function
  | Gate (g, t) -> Format.fprintf ppf "%a q%d" Gate.pp g t
  | Ctrl (cs, g, t) ->
      Format.fprintf ppf "c%a %s-> q%d" Gate.pp g
        (String.concat "" (List.map (fun q -> Printf.sprintf "q%d " q) cs))
        t
  | Swap (a, b) -> Format.fprintf ppf "swap q%d q%d" a b
  | Barrier -> Format.pp_print_string ppf "barrier"

let pp ppf c =
  Format.fprintf ppf "@[<v>%s: %d qubits, %d ops@," c.name c.num_qubits c.n_ops;
  List.iter (fun op -> Format.fprintf ppf "  %a@," pp_op op) (ops c);
  Format.fprintf ppf "@]"
