open Oqec_base

(* All decompositions in this module are exact up to global phase; the test
   suite checks every branch against the dense reference semantics. *)

let g gate t = Circuit.Gate (gate, t)
let cx c t = Circuit.Ctrl ([ c ], Gate.X, t)
let cp a c t = Circuit.Ctrl ([ c ], Gate.P a, t)

let swap_to_cx a b = [ cx a b; cx b a; cx a b ]

(* CP(a) = P(a/2) c . P(a/2) t . CX . P(-a/2) t . CX *)
let cp_ops a c t =
  let h = Phase.half a in
  [ g (Gate.P h) c; g (Gate.P h) t; cx c t; g (Gate.P (Phase.neg h)) t; cx c t ]

(* crz(a) = rz(a/2) t . CX . rz(-a/2) t . CX *)
let crz_ops a c t =
  let h = Phase.half a in
  [ g (Gate.Rz h) t; cx c t; g (Gate.Rz (Phase.neg h)) t; cx c t ]

let cry_ops a c t =
  let h = Phase.half a in
  [ g (Gate.Ry h) t; cx c t; g (Gate.Ry (Phase.neg h)) t; cx c t ]

let crx_ops a c t = (g Gate.H t :: crz_ops a c t) @ [ g Gate.H t ]

(* qelib1's exact controlled-Hadamard sequence. *)
let ch_ops c t =
  [
    g Gate.H t; g Gate.Sdg t; cx c t; g Gate.H t; g Gate.T t; cx c t; g Gate.T t;
    g Gate.H t; g Gate.S t; g Gate.X t; g Gate.S c;
  ]

let cy_ops c t = [ g Gate.Sdg t; cx c t; g Gate.S t ]

(* Sx = H P(pi/2) H exactly, so csx = H t . CP(pi/2) . H t. *)
let csx_ops c t = [ g Gate.H t; cp Phase.half_pi c t; g Gate.H t ]
let csxdg_ops c t = [ g Gate.H t; cp Phase.minus_half_pi c t; g Gate.H t ]

(* qelib1's exact cu3 sequence.  The halved angles must be real halves of
   the same real representatives (halving after reduction modulo 2*pi
   introduces pi-offsets that break the identity), so this is computed in
   the float domain. *)
let cu3_ops theta phi lambda c t =
  let th = Phase.to_float theta
  and ph = Phase.to_float phi
  and lm = Phase.to_float lambda in
  let p x = Phase.of_float x in
  [
    g (Gate.P (p ((lm +. ph) /. 2.0))) c;
    g (Gate.P (p ((lm -. ph) /. 2.0))) t;
    cx c t;
    g (Gate.U (p (-.th /. 2.0), Phase.zero, p (-.(ph +. lm) /. 2.0))) t;
    cx c t;
    g (Gate.U (p (th /. 2.0), p ph, Phase.zero)) t;
  ]

(* Standard Clifford+T Toffoli (exact). *)
let ccx_ops a b t =
  [
    g Gate.H t; cx b t; g Gate.Tdg t; cx a t; g Gate.T t; cx b t; g Gate.Tdg t;
    cx a t; g Gate.T b; g Gate.T t; g Gate.H t; cx a b; g Gate.T a; g Gate.Tdg b;
    cx a b;
  ]

let rec last_and_front = function
  | [] -> invalid_arg "last_and_front"
  | [ x ] -> (x, [])
  | x :: rest ->
      let l, f = last_and_front rest in
      (l, x :: f)

(* C^n(X^(1/2^k)) by the ancilla-free Barenco et al. recursion.  The
   principal root is exact with no phase correction:
   H P(pi/2^k) H has eigenvalues 1 and e^(i pi/2^k), squaring to
   H P(pi/2^(k-1)) H and eventually to X itself. *)
let rec mc_xroot controls t k =
  let root_angle = Phase.of_pi_fraction 1 (1 lsl k) in
  match controls with
  | [] ->
      if k = 0 then [ g Gate.X t ]
      else [ g Gate.H t; g (Gate.P root_angle) t; g Gate.H t ]
  | [ c ] ->
      if k = 0 then [ cx c t ]
      else [ g Gate.H t; cp root_angle c t; g Gate.H t ]
  | [ a; b ] when k = 0 -> ccx_ops a b t
  | controls ->
      let cn, front = last_and_front controls in
      mc_xroot [ cn ] t (k + 1)
      @ mc_xroot front cn 0
      @ List.map Circuit.inverse_op (List.rev (mc_xroot [ cn ] t (k + 1)))
      @ mc_xroot front cn 0
      @ mc_xroot front t (k + 1)

let mcx_ops controls t = mc_xroot controls t 0

(* C^n(P(a)): same recursion with phase roots (exact at every level). *)
let rec mcp_ops a controls t =
  match controls with
  | [] -> [ g (Gate.P a) t ]
  | [ c ] -> [ cp a c t ]
  | controls ->
      let cn, front = last_and_front controls in
      let h = Phase.half a in
      (cp h cn t :: mcx_ops front cn)
      @ (cp (Phase.neg h) cn t :: mcx_ops front cn)
      @ mcp_ops h front t

let mcz_ops controls t = (g Gate.H t :: mcx_ops controls t) @ [ g Gate.H t ]

(* ---------------------------------------------- Arbitrary controlled-U *)

(* ZYZ Euler angles: m = e^{i alpha} Rz(beta) Ry(gamma) Rz(delta). *)
let euler_zyz (m : Dmatrix.t) =
  let m00 = Dmatrix.get m 0 0
  and m01 = Dmatrix.get m 0 1
  and m10 = Dmatrix.get m 1 0
  and m11 = Dmatrix.get m 1 1 in
  let det = Cx.sub (Cx.mul m00 m11) (Cx.mul m01 m10) in
  let alpha = Cx.arg det /. 2.0 in
  (* Reduce to SU(2). *)
  let inv_phase = Cx.e_i (-.alpha) in
  let v00 = Cx.mul inv_phase m00 and v10 = Cx.mul inv_phase m10 in
  let gamma = 2.0 *. atan2 (Cx.mag v10) (Cx.mag v00) in
  if Cx.mag v00 < 1e-12 then
    (* Pure off-diagonal: beta - delta = 2 arg v10 + pi ambiguity folded
       into the convention arg(v10) = (beta - delta)/2. *)
    (alpha, 2.0 *. Cx.arg v10, gamma, 0.0)
  else if Cx.mag v10 < 1e-12 then (alpha, -2.0 *. Cx.arg v00, gamma, 0.0)
  else
    let beta = Cx.arg v10 -. Cx.arg v00 in
    let delta = -.Cx.arg v10 -. Cx.arg v00 in
    (alpha, beta, gamma, delta)

(* The standard ABC construction: CU = P(alpha)_c . A . CX . B . CX . C
   with A = Rz(b) Ry(g/2), B = Ry(-g/2) Rz(-(d+b)/2), C = Rz((d-b)/2). *)
let cu_ops (m : Dmatrix.t) c t =
  let alpha, beta, gamma, delta = euler_zyz m in
  let p x = Phase.of_float x in
  [
    g (Gate.Rz (p ((delta -. beta) /. 2.0))) t;
    cx c t;
    g (Gate.Rz (p (-.(delta +. beta) /. 2.0))) t;
    g (Gate.Ry (p (-.gamma /. 2.0))) t;
    cx c t;
    g (Gate.Ry (p (gamma /. 2.0))) t;
    g (Gate.Rz (p beta)) t;
    g (Gate.P (p alpha)) c;
  ]

(* Principal square root of a 2x2 unitary: write m = e^{i a} (cos(h) I -
   i sin(h) n.sigma) and halve both the phase and the rotation angle. *)
let matrix_sqrt (m : Dmatrix.t) =
  let m00 = Dmatrix.get m 0 0
  and m01 = Dmatrix.get m 0 1
  and m10 = Dmatrix.get m 1 0
  and m11 = Dmatrix.get m 1 1 in
  let det = Cx.sub (Cx.mul m00 m11) (Cx.mul m01 m10) in
  let a = Cx.arg det /. 2.0 in
  let inv = Cx.e_i (-.a) in
  let r00 = Cx.mul inv m00
  and r01 = Cx.mul inv m01
  and r10 = Cx.mul inv m10
  and r11 = Cx.mul inv m11 in
  let cos_h = (Cx.re r00 +. Cx.re r11) /. 2.0 in
  let sx = -.((Cx.im r01 +. Cx.im r10) /. 2.0) in
  let sy = (Cx.re r10 -. Cx.re r01) /. 2.0 in
  let sz = -.((Cx.im r00 -. Cx.im r11) /. 2.0) in
  let sin_h = sqrt ((sx *. sx) +. (sy *. sy) +. (sz *. sz)) in
  let h = atan2 sin_h cos_h in
  let nx, ny, nz =
    if sin_h < 1e-12 then (0.0, 0.0, 1.0) else (sx /. sin_h, sy /. sin_h, sz /. sin_h)
  in
  let h2 = h /. 2.0 in
  let c2 = cos h2 and s2 = sin h2 in
  let phase = Cx.e_i (a /. 2.0) in
  let entry re im = Cx.mul phase (Cx.make re im) in
  Dmatrix.make 2 2 (fun i j ->
      match (i, j) with
      | 0, 0 -> entry c2 (-.(nz *. s2))
      | 0, 1 -> entry (-.(ny *. s2)) (-.(nx *. s2))
      | 1, 0 -> entry (ny *. s2) (-.(nx *. s2))
      | _ -> entry c2 (nz *. s2))

(* Barenco et al.: C^n(U) = C(V)[cn] . C^{n-1}X . C(V+)[cn] . C^{n-1}X .
   C^{n-1}(V) with V^2 = U, recursing on matrices so arbitrary
   single-qubit gates gain any number of controls. *)
let rec mcu_ops (m : Dmatrix.t) controls t =
  match controls with
  | [] ->
      (* Only reached at the top level, where global phase is free. *)
      let _, beta, gamma, delta = euler_zyz m in
      let p x = Phase.of_float x in
      [ g (Gate.Rz (p delta)) t; g (Gate.Ry (p gamma)) t; g (Gate.Rz (p beta)) t ]
  | [ c ] -> cu_ops m c t
  | controls ->
      let cn, front = last_and_front controls in
      let v = matrix_sqrt m in
      cu_ops v cn t
      @ mcx_ops front cn
      @ cu_ops (Dmatrix.adjoint v) cn t
      @ mcx_ops front cn
      @ mcu_ops v front t

(* Expansion of one op into the elementary set. *)
let elementary_op (op : Circuit.op) : Circuit.op list =
  match op with
  | Circuit.Gate _ | Circuit.Swap _ | Circuit.Barrier -> [ op ]
  | Circuit.Ctrl ([ _ ], (Gate.X | Gate.Z | Gate.P _), _) -> [ op ]
  | Circuit.Ctrl ([ c ], gate, t) -> (
      match gate with
      | Gate.I -> []
      | Gate.Y -> cy_ops c t
      | Gate.H -> ch_ops c t
      | Gate.S -> [ cp Phase.half_pi c t ]
      | Gate.Sdg -> [ cp Phase.minus_half_pi c t ]
      | Gate.T -> [ cp Phase.quarter_pi c t ]
      | Gate.Tdg -> [ cp (Phase.neg Phase.quarter_pi) c t ]
      | Gate.Sx -> csx_ops c t
      | Gate.Sxdg -> csxdg_ops c t
      | Gate.Rx a -> crx_ops a c t
      | Gate.Ry a -> cry_ops a c t
      | Gate.Rz a -> crz_ops a c t
      | Gate.U (theta, phi, lambda) -> cu3_ops theta phi lambda c t
      | Gate.X | Gate.Z | Gate.P _ -> assert false)
  | Circuit.Ctrl (cs, gate, t) -> (
      match gate with
      | Gate.I -> []
      | Gate.X -> mcx_ops cs t
      | Gate.Z -> mcz_ops cs t
      | Gate.P a -> mcp_ops a cs t
      | Gate.S -> mcp_ops Phase.half_pi cs t
      | Gate.Sdg -> mcp_ops Phase.minus_half_pi cs t
      | Gate.T -> mcp_ops Phase.quarter_pi cs t
      | Gate.Tdg -> mcp_ops (Phase.neg Phase.quarter_pi) cs t
      | Gate.Rz a -> (
          (* C^n Rz(a) = C^n P(a) times C^(n-1) P(-a/2) on the controls. *)
          match cs with
          | first :: rest ->
              mcp_ops a cs t @ mcp_ops (Phase.neg (Phase.half a)) rest first
          | [] -> assert false)
      | Gate.Y | Gate.H | Gate.Sx | Gate.Sxdg | Gate.Rx _ | Gate.Ry _ | Gate.U _ ->
          mcu_ops (Gate.matrix gate) cs t)

let expand f c =
  let n = Circuit.num_qubits c in
  let add acc op = List.fold_left Circuit.add acc (f op) in
  let c' = List.fold_left add (Circuit.create ~name:(Circuit.name c) n) (Circuit.ops c) in
  let c' = Circuit.with_initial_layout c' (Circuit.initial_layout c) in
  Circuit.with_output_perm c' (Circuit.output_perm c)

let elementary c = expand elementary_op c

let to_cx_basis ?(keep_swaps = true) c =
  let lower op =
    List.concat_map
      (fun op ->
        match op with
        | Circuit.Ctrl ([ c ], Gate.Z, t) -> [ g Gate.H t; cx c t; g Gate.H t ]
        | Circuit.Ctrl ([ c ], Gate.P a, t) -> cp_ops a c t
        | Circuit.Swap (a, b) when not keep_swaps -> swap_to_cx a b
        | Circuit.Gate _ | Circuit.Ctrl _ | Circuit.Swap _ | Circuit.Barrier -> [ op ])
      (elementary_op op)
  in
  expand lower c
