(** Gate decomposition passes.

    Lowers the rich gate alphabet to small primitive sets, exactly (up to
    global phase): multi-controlled gates expand via the ancilla-free
    Barenco et al. recursion with controlled roots, exotic controlled
    gates via their standard qelib1 sequences.  Used by the ZX translation
    (which only understands single-qubit gates, CX, CZ and SWAP) and by
    the compilation flow (device basis of arbitrary single-qubit rotations
    plus CX, as in the paper's setup). *)


(** Every controlled gate decomposes: phase-type gates through exact
    rational recursions, arbitrary single-qubit gates through the ZYZ/ABC
    construction and matrix square roots (float angles, exact up to
    global phase). *)

(** [elementary c] removes every multi-controlled gate (two or more
    controls) and every controlled gate other than CX / CZ / controlled
    phase, producing ops from: single-qubit gates, [Ctrl([c],X,_)],
    [Ctrl([c],Z,_)], [Ctrl([c],P _,_)], [Swap], [Barrier]. *)
val elementary : Circuit.t -> Circuit.t

(** [to_cx_basis ?keep_swaps c] lowers further so that the only multi-qubit
    operation is CX (controlled phases become CX + rotations, CZ becomes
    H-conjugated CX).  SWAPs are kept as primitive when [keep_swaps] is
    [true] (default), otherwise expanded into three CX. *)
val to_cx_basis : ?keep_swaps:bool -> Circuit.t -> Circuit.t

(** [swap_to_cx a b] is the 3-CNOT expansion of a SWAP. *)
val swap_to_cx : int -> int -> Circuit.op list

(** [cp_ops alpha ctl tgt] is the exact CX + phase expansion of a
    controlled phase gate. *)
val cp_ops : Oqec_base.Phase.t -> int -> int -> Circuit.op list
