(* Grid-based drawing: wire q lives on text row 2q, the rows between carry
   the vertical connectors of multi-qubit gates. *)

let label_of_gate g =
  match g with
  | Gate.I | Gate.X | Gate.Y | Gate.Z | Gate.H | Gate.S | Gate.Sdg | Gate.T
  | Gate.Tdg | Gate.Sx | Gate.Sxdg ->
      String.uppercase_ascii (Gate.name g)
  | Gate.Rx _ | Gate.Ry _ | Gate.Rz _ | Gate.P _ | Gate.U _ ->
      Format.asprintf "%a" Gate.pp g

let to_ascii c =
  let n = Circuit.num_qubits c in
  if n = 0 then ""
  else begin
    (* Greedy column packing, as in depth computation. *)
    let columns : (int * Circuit.op) list ref = ref [] in
    (* (column, op) *)
    let level = Array.make n 0 in
    let place op =
      match Circuit.op_qubits op with
      | [] -> ()
      | qs ->
          let lo = List.fold_left min n qs and hi = List.fold_left max 0 qs in
          (* A multi-qubit gate blocks every wire it spans. *)
          let col = ref 0 in
          for q = lo to hi do
            col := max !col level.(q)
          done;
          for q = lo to hi do
            level.(q) <- !col + 1
          done;
          columns := (!col, op) :: !columns
    in
    List.iter place (Circuit.ops c);
    let n_cols = Array.fold_left max 0 level in
    (* Determine each column's width from its widest label. *)
    let width = Array.make (max 1 n_cols) 1 in
    let cell_label op q =
      match op with
      | Circuit.Gate (g, t) when t = q -> Some (Printf.sprintf "[%s]" (label_of_gate g))
      | Circuit.Ctrl (cs, _, _) when List.mem q cs -> Some "o"
      | Circuit.Ctrl (_, g, t) when t = q -> (
          match g with
          | Gate.X -> Some "(+)"
          | _ -> Some (Printf.sprintf "[%s]" (label_of_gate g)))
      | Circuit.Swap (a, b) when q = a || q = b -> Some "x"
      | Circuit.Gate _ | Circuit.Ctrl _ | Circuit.Swap _ | Circuit.Barrier -> None
    in
    List.iter
      (fun (col, op) ->
        List.iter
          (fun q ->
            match cell_label op q with
            | Some s -> width.(col) <- max width.(col) (String.length s)
            | None -> ())
          (Circuit.op_qubits op))
      !columns;
    let rows = (2 * n) - 1 in
    let prefix q = Printf.sprintf "q%-2d: " q in
    let prefix_len = String.length (prefix 0) in
    let total =
      prefix_len + Array.fold_left (fun acc w -> acc + w + 2) 0 (Array.sub width 0 n_cols) + 1
    in
    let grid = Array.make_matrix rows total ' ' in
    (* Horizontal wires. *)
    for q = 0 to n - 1 do
      let p = prefix q in
      String.iteri (fun i ch -> grid.((2 * q)).(i) <- ch) p;
      for x = prefix_len to total - 1 do
        grid.(2 * q).(x) <- '-'
      done
    done;
    let col_start = Array.make (max 1 n_cols) prefix_len in
    for cidx = 1 to n_cols - 1 do
      col_start.(cidx) <- col_start.(cidx - 1) + width.(cidx - 1) + 2
    done;
    let put_string row x s = String.iteri (fun i ch -> grid.(row).(x + i) <- ch) s in
    let draw (col, op) =
      let qs = Circuit.op_qubits op in
      let x = col_start.(col) + 1 in
      (match qs with
      | [] -> ()
      | _ ->
          let lo = List.fold_left min n qs and hi = List.fold_left max 0 qs in
          (* Vertical connector spanning the involved wires. *)
          if hi > lo then
            for row = (2 * lo) + 1 to (2 * hi) - 1 do
              grid.(row).(x) <- '|'
            done);
      List.iter
        (fun q ->
          match cell_label op q with
          | Some s -> put_string (2 * q) x s
          | None -> ())
        qs
    in
    List.iter draw (List.rev !columns);
    let buf = Buffer.create (rows * total) in
    for r = 0 to rows - 1 do
      let line = String.init total (fun i -> grid.(r).(i)) in
      (* Trim trailing blanks on connector rows. *)
      let rec trim i = if i > 0 && line.[i - 1] = ' ' then trim (i - 1) else i in
      Buffer.add_string buf (String.sub line 0 (trim total));
      Buffer.add_char buf '\n'
    done;
    Buffer.contents buf
  end

let print c = print_string (to_ascii c)
