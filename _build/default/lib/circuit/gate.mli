(** Single-qubit gate alphabet.

    Multi-qubit operations are built in {!Circuit} by adding controls to
    these base gates (plus SWAP).  The alphabet covers the discrete
    Clifford+T gates and the parameterised rotations appearing in the
    paper's benchmark set (QFT, QPE, Grover, compiled circuits). *)

open Oqec_base

type t =
  | I
  | X
  | Y
  | Z
  | H
  | S
  | Sdg
  | T
  | Tdg
  | Sx
  | Sxdg
  | Rx of Phase.t
  | Ry of Phase.t
  | Rz of Phase.t
  | P of Phase.t  (** phase gate diag(1, e^{i a}) *)
  | U of Phase.t * Phase.t * Phase.t
      (** generic single-qubit gate u(theta, phi, lambda) as in OpenQASM *)

(** [matrix g] is the 2x2 unitary of [g]. *)
val matrix : t -> Dmatrix.t

(** [inverse g] satisfies [matrix (inverse g) * matrix g = I] up to a global
    phase.  (The phase slack arises because {!Oqec_base.Phase} canonicalises
    angles modulo 2*pi while rotation gates have period 4*pi; equivalence of
    circuits is defined up to global phase anyway.) *)
val inverse : t -> t

(** [is_clifford g] holds for gates in the Clifford group (exact phases
    only; rotations with non-Clifford angles return [false]). *)
val is_clifford : t -> bool

(** [is_diagonal g] holds when [matrix g] is diagonal. *)
val is_diagonal : t -> bool

(** [equal a b] is structural equality of the gate description (not of the
    unitary: [Rz a] and [P a] differ). *)
val equal : t -> t -> bool

val name : t -> string
val pp : Format.formatter -> t -> unit
