(** ASCII rendering of circuits in the usual wire notation (Section 2.1):
    time flows left to right, controls are drawn as [o] connected to their
    targets, boxed labels carry gate names and angles. *)

(** [to_ascii c] draws the circuit.  Operations are packed greedily into
    columns (parallel gates share a column). *)
val to_ascii : Circuit.t -> string

val print : Circuit.t -> unit
