(** Quantum circuits.

    A circuit is a sequence of operations over [num_qubits] wires, plus the
    compilation metadata needed for equivalence checking: an optional
    initial layout (where each logical qubit starts on the physical
    register) and an optional output permutation (where each logical qubit
    ends up, cf. Fig. 2 of the paper). *)

open Oqec_base

type op =
  | Gate of Gate.t * int  (** single-qubit gate on a target wire *)
  | Ctrl of int list * Gate.t * int
      (** controlled gate: non-empty control wires, base gate, target *)
  | Swap of int * int
  | Barrier

type t

(** [create ?name n] is the empty circuit on [n] qubits. *)
val create : ?name:string -> int -> t

val name : t -> string
val num_qubits : t -> int

(** [ops c] lists the operations in program order. *)
val ops : t -> op list

val ops_array : t -> op array

(** [add c op] appends [op]; raises [Invalid_argument] if any wire index is
    out of range or operands collide (e.g. control equals target). *)
val add : t -> op -> t

val add_list : t -> op list -> t

(** Convenience constructors appending common gates. *)

val gate : t -> Gate.t -> int -> t
val cx : t -> int -> int -> t
val cz : t -> int -> int -> t
val ccx : t -> int -> int -> int -> t
val mcx : t -> int list -> int -> t
val swap : t -> int -> int -> t
val h : t -> int -> t
val x : t -> int -> t
val z : t -> int -> t
val s : t -> int -> t
val t_gate : t -> int -> t
val rz : t -> Phase.t -> int -> t
val rx : t -> Phase.t -> int -> t
val ry : t -> Phase.t -> int -> t
val p : t -> Phase.t -> int -> t
val cp : t -> Phase.t -> int -> int -> t

val with_name : t -> string -> t

(** Layout metadata (logical qubit [q] starts at / ends up on wire). *)

val initial_layout : t -> Perm.t option
val output_perm : t -> Perm.t option
val with_initial_layout : t -> Perm.t option -> t
val with_output_perm : t -> Perm.t option -> t

(** [inverse c] reverses the operation order and inverts every gate, so
    that [c] followed by [inverse c] is the identity.  Layout metadata is
    dropped (the inverse of a compiled circuit is only used as a miter
    half, where the checker supplies the permutations). *)
val inverse : t -> t

(** [append a b] concatenates the operations of [b] after [a] (same width
    required); metadata of [a] is kept. *)
val append : t -> t -> t

(** [map_qubits f c] relabels every wire through [f], validating the
    result against width [num_qubits]. *)
val map_qubits : (int -> int) -> t -> t

(** [embed c ~num_qubits] widens the register, keeping wire indices. *)
val embed : t -> num_qubits:int -> t

(** Statistics *)

val gate_count : t -> int

(** [two_qubit_count c] counts operations touching two or more qubits. *)
val two_qubit_count : t -> int

(** [t_count c] counts T/Tdg gates (and odd multiples of pi/4 in phase
    rotations). *)
val t_count : t -> int

val depth : t -> int

(** [op_qubits op] lists the wires an operation touches. *)
val op_qubits : op -> int list

(** [used_qubits c] is the sorted list of wires referenced by any op. *)
val used_qubits : t -> int list

(** [inverse_op op] is the inverse of a single operation.

    Caveat: for {e controlled} rotation gates (Rx/Ry/Rz/U under [Ctrl])
    the result is only the inverse up to a controlled sign, because gate
    angles are canonical modulo 2*pi while rotations have period 4*pi.
    Lower such operations first (see [Decompose.elementary]) when exact
    inversion matters — the equivalence checkers do this internally. *)
val inverse_op : op -> op

val equal_op : op -> op -> bool
val pp_op : Format.formatter -> op -> unit
val pp : Format.formatter -> t -> unit
