open Oqec_base

type t =
  | I
  | X
  | Y
  | Z
  | H
  | S
  | Sdg
  | T
  | Tdg
  | Sx
  | Sxdg
  | Rx of Phase.t
  | Ry of Phase.t
  | Rz of Phase.t
  | P of Phase.t
  | U of Phase.t * Phase.t * Phase.t

let of_entries a b c d =
  let entries = [| [| a; b |]; [| c; d |] |] in
  Dmatrix.make 2 2 (fun i j -> entries.(i).(j))

(* u(theta, phi, lambda) as defined by OpenQASM / qiskit:
   [[cos(t/2), -e^{i l} sin(t/2)], [e^{i p} sin(t/2), e^{i(p+l)} cos(t/2)]] *)
let u_matrix theta phi lambda =
  let t2 = Phase.to_float theta /. 2.0 in
  let ct = cos t2 and st = sin t2 in
  let p = Phase.to_float phi and l = Phase.to_float lambda in
  of_entries (Cx.make ct 0.0)
    (Cx.neg (Cx.scale st (Cx.e_i l)))
    (Cx.scale st (Cx.e_i p))
    (Cx.scale ct (Cx.e_i (p +. l)))

let matrix = function
  | I -> Dmatrix.identity 2
  | X -> of_entries Cx.zero Cx.one Cx.one Cx.zero
  | Y -> of_entries Cx.zero (Cx.neg Cx.i) Cx.i Cx.zero
  | Z -> of_entries Cx.one Cx.zero Cx.zero Cx.minus_one
  | H ->
      let h = Cx.sqrt2_inv in
      of_entries h h h (Cx.neg h)
  | S -> of_entries Cx.one Cx.zero Cx.zero Cx.i
  | Sdg -> of_entries Cx.one Cx.zero Cx.zero (Cx.neg Cx.i)
  | T -> of_entries Cx.one Cx.zero Cx.zero (Cx.e_i (Float.pi /. 4.0))
  | Tdg -> of_entries Cx.one Cx.zero Cx.zero (Cx.e_i (-.Float.pi /. 4.0))
  | Sx ->
      (* sqrt(X) = 1/2 [[1+i, 1-i], [1-i, 1+i]] *)
      let a = Cx.make 0.5 0.5 and b = Cx.make 0.5 (-0.5) in
      of_entries a b b a
  | Sxdg ->
      let a = Cx.make 0.5 (-0.5) and b = Cx.make 0.5 0.5 in
      of_entries a b b a
  | Rx a ->
      let t2 = Phase.to_float a /. 2.0 in
      let c = Cx.make (cos t2) 0.0 and s = Cx.make 0.0 (-.sin t2) in
      of_entries c s s c
  | Ry a ->
      let t2 = Phase.to_float a /. 2.0 in
      let c = Cx.make (cos t2) 0.0 and s = Cx.make (sin t2) 0.0 in
      of_entries c (Cx.neg s) s c
  | Rz a ->
      let t2 = Phase.to_float a /. 2.0 in
      of_entries (Cx.e_i (-.t2)) Cx.zero Cx.zero (Cx.e_i t2)
  | P a -> of_entries Cx.one Cx.zero Cx.zero (Cx.e_i (Phase.to_float a))
  | U (theta, phi, lambda) -> u_matrix theta phi lambda

let inverse = function
  | I -> I
  | X -> X
  | Y -> Y
  | Z -> Z
  | H -> H
  | S -> Sdg
  | Sdg -> S
  | T -> Tdg
  | Tdg -> T
  | Sx -> Sxdg
  | Sxdg -> Sx
  | Rx a -> Rx (Phase.neg a)
  | Ry a -> Ry (Phase.neg a)
  | Rz a -> Rz (Phase.neg a)
  | P a -> P (Phase.neg a)
  | U (theta, phi, lambda) -> U (Phase.neg theta, Phase.neg lambda, Phase.neg phi)

let is_clifford = function
  | I | X | Y | Z | H | S | Sdg | Sx | Sxdg -> true
  | T | Tdg -> false
  | Rx a | Ry a | Rz a | P a -> Phase.is_clifford a
  | U (theta, phi, lambda) ->
      Phase.is_clifford theta && Phase.is_clifford phi && Phase.is_clifford lambda

let is_diagonal = function
  | I | Z | S | Sdg | T | Tdg | Rz _ | P _ -> true
  | X | Y | H | Sx | Sxdg | Rx _ | Ry _ | U _ -> false

let equal (a : t) (b : t) =
  match (a, b) with
  | Rx x, Rx y | Ry x, Ry y | Rz x, Rz y | P x, P y -> Phase.equal x y
  | U (a1, a2, a3), U (b1, b2, b3) ->
      Phase.equal a1 b1 && Phase.equal a2 b2 && Phase.equal a3 b3
  | I, I | X, X | Y, Y | Z, Z | H, H | S, S | Sdg, Sdg | T, T | Tdg, Tdg
  | Sx, Sx | Sxdg, Sxdg ->
      true
  | ( ( I | X | Y | Z | H | S | Sdg | T | Tdg | Sx | Sxdg | Rx _ | Ry _ | Rz _
      | P _ | U _ ),
      _ ) ->
      false

let name = function
  | I -> "id"
  | X -> "x"
  | Y -> "y"
  | Z -> "z"
  | H -> "h"
  | S -> "s"
  | Sdg -> "sdg"
  | T -> "t"
  | Tdg -> "tdg"
  | Sx -> "sx"
  | Sxdg -> "sxdg"
  | Rx _ -> "rx"
  | Ry _ -> "ry"
  | Rz _ -> "rz"
  | P _ -> "p"
  | U _ -> "u"

let pp ppf g =
  match g with
  | Rx a | Ry a | Rz a | P a -> Format.fprintf ppf "%s(%a)" (name g) Phase.pp a
  | U (t, p, l) ->
      Format.fprintf ppf "u(%a,%a,%a)" Phase.pp t Phase.pp p Phase.pp l
  | I | X | Y | Z | H | S | Sdg | T | Tdg | Sx | Sxdg ->
      Format.pp_print_string ppf (name g)
