(** Dense reference semantics of circuits.

    Builds the full 2^n x 2^n system matrix of a circuit (Section 2.1 of
    the paper).  Exponential, intended for small widths: the test suite
    uses it as ground truth to validate the decision-diagram and
    ZX-calculus representations, and the figure demos print it for the
    3-qubit GHZ example.

    Convention: qubit [q] is bit [q] of the basis-state index (qubit 0 is
    the least significant bit). *)

open Oqec_base

(** Hard cap on the width accepted by [unitary] and [apply_to_vector]
    (14 qubits); wider circuits raise [Invalid_argument]. *)
val max_qubits : int

(** [apply_op_to_vector n op v] applies one operation to a state vector of
    length [2^n], in place. *)
val apply_op_to_vector : int -> Circuit.op -> Cx.t array -> unit

(** [apply_to_vector c v] applies the whole circuit to [v] in place. *)
val apply_to_vector : Circuit.t -> Cx.t array -> unit

(** [basis_state n i] is the computational basis vector [|i>]. *)
val basis_state : int -> int -> Cx.t array

(** [unitary c] is the system matrix of [c] (ignoring layout metadata). *)
val unitary : Circuit.t -> Dmatrix.t

(** [effective_unitary c] is the system matrix of [c] adjusted for its
    layout metadata: input wires are re-indexed by the initial layout and
    the output permutation is undone, so that two circuits implementing
    the same computation have effective unitaries equal up to global
    phase. *)
val effective_unitary : Circuit.t -> Dmatrix.t

(** [equivalent ?tol a b] compares effective unitaries up to global phase
    (reference equivalence check used to validate the real checkers). *)
val equivalent : ?tol:float -> Circuit.t -> Circuit.t -> bool
