open Oqec_base

let max_qubits = 14

let check_width n =
  if n > max_qubits then
    invalid_arg
      (Printf.sprintf "Unitary: %d qubits exceeds the dense limit of %d" n max_qubits)

(* Apply a 2x2 matrix to bit [t] of the index, restricted to indices where
   all bits in [cs] are set. *)
let apply_single n m cs t v =
  let mask_ctrl = List.fold_left (fun acc c -> acc lor (1 lsl c)) 0 cs in
  let bit = 1 lsl t in
  let m00 = Dmatrix.get m 0 0
  and m01 = Dmatrix.get m 0 1
  and m10 = Dmatrix.get m 1 0
  and m11 = Dmatrix.get m 1 1 in
  for i = 0 to (1 lsl n) - 1 do
    if i land bit = 0 && i land mask_ctrl = mask_ctrl then begin
      let j = i lor bit in
      let a = v.(i) and b = v.(j) in
      v.(i) <- Cx.add (Cx.mul m00 a) (Cx.mul m01 b);
      v.(j) <- Cx.add (Cx.mul m10 a) (Cx.mul m11 b)
    end
  done

let apply_op_to_vector n op v =
  check_width n;
  match op with
  | Circuit.Gate (g, t) -> apply_single n (Gate.matrix g) [] t v
  | Circuit.Ctrl (cs, g, t) -> apply_single n (Gate.matrix g) cs t v
  | Circuit.Swap (a, b) ->
      let ba = 1 lsl a and bb = 1 lsl b in
      for i = 0 to (1 lsl n) - 1 do
        if i land ba = ba && i land bb = 0 then begin
          let j = (i lxor ba) lor bb in
          let t = v.(i) in
          v.(i) <- v.(j);
          v.(j) <- t
        end
      done
  | Circuit.Barrier -> ()

let apply_to_vector c v =
  let n = Circuit.num_qubits c in
  List.iter (fun op -> apply_op_to_vector n op v) (Circuit.ops c)

let basis_state n i =
  let v = Array.make (1 lsl n) Cx.zero in
  v.(i) <- Cx.one;
  v

let unitary c =
  let n = Circuit.num_qubits c in
  check_width n;
  let dim = 1 lsl n in
  let m = Dmatrix.zero dim dim in
  for j = 0 to dim - 1 do
    let v = basis_state n j in
    apply_to_vector c v;
    for i = 0 to dim - 1 do
      Dmatrix.set m i j v.(i)
    done
  done;
  m

let effective_unitary c =
  let u = unitary c in
  let with_in =
    match Circuit.initial_layout c with
    | None -> u
    | Some l -> Dmatrix.mul u (Dmatrix.permutation_matrix l)
  in
  match Circuit.output_perm c with
  | None -> with_in
  | Some o -> Dmatrix.mul (Dmatrix.adjoint (Dmatrix.permutation_matrix o)) with_in

let equivalent ?tol a b =
  Circuit.num_qubits a = Circuit.num_qubits b
  && Dmatrix.equal_up_to_phase ?tol (effective_unitary a) (effective_unitary b)
