lib/circuit/circuit.mli: Format Gate Oqec_base Perm Phase
