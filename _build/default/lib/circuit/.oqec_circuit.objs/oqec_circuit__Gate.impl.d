lib/circuit/gate.ml: Array Cx Dmatrix Float Format Oqec_base Phase
