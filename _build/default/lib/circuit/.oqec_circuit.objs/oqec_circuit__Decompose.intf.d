lib/circuit/decompose.mli: Circuit Oqec_base
