lib/circuit/unitary.mli: Circuit Cx Dmatrix Oqec_base
