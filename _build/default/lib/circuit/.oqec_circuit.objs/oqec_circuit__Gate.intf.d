lib/circuit/gate.mli: Dmatrix Format Oqec_base Phase
