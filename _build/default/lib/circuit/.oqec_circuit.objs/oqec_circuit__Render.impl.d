lib/circuit/render.ml: Array Buffer Circuit Format Gate List Printf String
