lib/circuit/render.mli: Circuit
