lib/circuit/decompose.ml: Circuit Cx Dmatrix Gate List Oqec_base Phase
