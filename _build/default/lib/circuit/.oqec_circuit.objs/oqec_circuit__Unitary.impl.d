lib/circuit/unitary.ml: Array Circuit Cx Dmatrix Gate List Oqec_base Printf
