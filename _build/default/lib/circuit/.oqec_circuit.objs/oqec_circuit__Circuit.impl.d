lib/circuit/circuit.ml: Array Format Gate Int List Oqec_base Perm Phase Printf Set String
