open Oqec_base

type node = { id : int; var : int; edges : edge array }
and edge = { node : node; w : Cx.t }

let terminal = { id = 0; var = -1; edges = [||] }
let is_terminal n = n.var = -1
let zero_edge = { node = terminal; w = Cx.zero }
let one_edge = { node = terminal; w = Cx.one }
let is_zero_edge e = e.w.Cx.re = 0.0 && e.w.Cx.im = 0.0

(* Unique-table key: level plus child ids and interned weights.  Interned
   weights make structural equality and hashing reliable. *)
type ukey = { kvar : int; kids : int array; kre : float array; kim : float array }

type pkg = {
  ctab : Ctable.t;
  mutable next_id : int;
  unique : (ukey, node) Hashtbl.t;
  mm_cache : (int * int, edge) Hashtbl.t;
  mv_cache : (int * int, edge) Hashtbl.t;
  add_cache : (int * int * float * float, edge) Hashtbl.t;
  adj_cache : (int, edge) Hashtbl.t;
  inner_cache : (int * int, Cx.t) Hashtbl.t;
}

let create ?(tol = Cx.default_tolerance) () =
  {
    ctab = Ctable.create ~tol;
    next_id = 1;
    unique = Hashtbl.create 65536;
    mm_cache = Hashtbl.create 16384;
    mv_cache = Hashtbl.create 16384;
    add_cache = Hashtbl.create 16384;
    adj_cache = Hashtbl.create 1024;
    inner_cache = Hashtbl.create 1024;
  }

let tolerance pkg = Ctable.tolerance pkg.ctab
let intern pkg z = Ctable.intern pkg.ctab z

let edge_of pkg ~w node =
  let w = intern pkg w in
  if Cx.mag2 w = 0.0 then zero_edge else { node; w }

let scale pkg z e = if is_zero_edge e then zero_edge else edge_of pkg ~w:(Cx.mul z e.w) e.node

let key_of var (edges : edge array) =
  {
    kvar = var;
    kids = Array.map (fun e -> e.node.id) edges;
    kre = Array.map (fun e -> e.w.Cx.re) edges;
    kim = Array.map (fun e -> e.w.Cx.im) edges;
  }

(* Normalising constructor: extract the weight of the first maximal-
   magnitude edge, so that equal-up-to-scalar sub-matrices share a node. *)
let make_node pkg var (edges : edge array) =
  assert (var >= 0);
  let best = ref (-1) and best_mag = ref 0.0 in
  Array.iteri
    (fun i e ->
      let m = Cx.mag2 e.w in
      if m > !best_mag then begin
        best := i;
        best_mag := m
      end)
    edges;
  if !best < 0 then zero_edge
  else begin
    let top = edges.(!best).w in
    let normalise i (e : edge) =
      if is_zero_edge e then zero_edge
      else if i = !best then { node = e.node; w = Cx.one }
      else edge_of pkg ~w:(Cx.div e.w top) e.node
    in
    let edges = Array.mapi normalise edges in
    let key = key_of var edges in
    let node =
      match Hashtbl.find_opt pkg.unique key with
      | Some n -> n
      | None ->
          let n = { id = pkg.next_id; var; edges } in
          pkg.next_id <- pkg.next_id + 1;
          Hashtbl.replace pkg.unique key n;
          n
    in
    { node; w = intern pkg top }
  end

let cofactors e v =
  if is_zero_edge e then [| zero_edge; zero_edge; zero_edge; zero_edge |]
  else begin
    assert (e.node.var = v);
    Array.map
      (fun (c : edge) ->
        if is_zero_edge c then zero_edge else { node = c.node; w = Cx.mul e.w c.w })
      e.node.edges
  end

let vcofactors e v =
  if is_zero_edge e then [| zero_edge; zero_edge |]
  else begin
    assert (e.node.var = v);
    Array.map
      (fun (c : edge) ->
        if is_zero_edge c then zero_edge else { node = c.node; w = Cx.mul e.w c.w })
      e.node.edges
  end

let identity pkg n =
  let rec build v acc =
    if v >= n then acc
    else build (v + 1) (make_node pkg v [| acc; zero_edge; zero_edge; acc |])
  in
  build 0 one_edge

let is_identity ?(up_to_phase = true) pkg n e =
  let id = identity pkg n in
  e.node == id.node
  &&
  if up_to_phase then Float.abs (Cx.mag e.w -. 1.0) <= 1e-8
  else Cx.approx_equal ~tol:1e-8 e.w Cx.one

let trace e =
  let cache : (int, Cx.t) Hashtbl.t = Hashtbl.create 256 in
  let rec node_trace n =
    if is_terminal n then Cx.one
    else
      match Hashtbl.find_opt cache n.id with
      | Some t -> t
      | None ->
          let sub (c : edge) =
            if is_zero_edge c then Cx.zero else Cx.mul c.w (node_trace c.node)
          in
          let t = Cx.add (sub n.edges.(0)) (sub n.edges.(3)) in
          Hashtbl.replace cache n.id t;
          t
  in
  if is_zero_edge e then Cx.zero else Cx.mul e.w (node_trace e.node)

(* Computed in floats: [2^n] overflows native integers beyond 62 qubits
   (the Manhattan register has 65). *)
let fidelity_to_identity ~n e = Cx.mag (trace e) /. Float.pow 2.0 (float_of_int n)

(* ------------------------------------------------------------ Arithmetic *)

let float_key (z : Cx.t) = (z.Cx.re, z.Cx.im)

let rec add pkg (e1 : edge) (e2 : edge) =
  if is_zero_edge e1 then e2
  else if is_zero_edge e2 then e1
  else if e1.node == e2.node then edge_of pkg ~w:(Cx.add e1.w e2.w) e1.node
  else begin
    (* Commutative: order the operands deterministically. *)
    let e1, e2 =
      if e1.node.id <= e2.node.id then (e1, e2) else (e2, e1)
    in
    let ratio = intern pkg (Cx.div e2.w e1.w) in
    let kre, kim = float_key ratio in
    let key = (e1.node.id, e2.node.id, kre, kim) in
    let base =
      match Hashtbl.find_opt pkg.add_cache key with
      | Some r -> r
      | None ->
          let r =
            if is_terminal e1.node then begin
              assert (is_terminal e2.node);
              edge_of pkg ~w:(Cx.add Cx.one ratio) terminal
            end
            else begin
              let v = max e1.node.var e2.node.var in
              let c1 = cofactors { e1 with w = Cx.one } v
              and c2 = cofactors { e2 with w = ratio } v in
              let width = Array.length e1.node.edges in
              assert (Array.length e2.node.edges = width);
              if width = 4 then
                make_node pkg v (Array.init 4 (fun i -> add pkg c1.(i) c2.(i)))
              else
                make_node pkg v (Array.init 2 (fun i -> add pkg c1.(i) c2.(i)))
            end
          in
          Hashtbl.replace pkg.add_cache key r;
          r
    in
    scale pkg e1.w base
  end

let rec mul pkg (e1 : edge) (e2 : edge) =
  if is_zero_edge e1 || is_zero_edge e2 then zero_edge
  else if is_terminal e1.node && is_terminal e2.node then
    edge_of pkg ~w:(Cx.mul e1.w e2.w) terminal
  else begin
    assert (e1.node.var = e2.node.var);
    let v = e1.node.var in
    let key = (e1.node.id, e2.node.id) in
    let base =
      match Hashtbl.find_opt pkg.mm_cache key with
      | Some r -> r
      | None ->
          let a = cofactors { e1 with w = Cx.one } v
          and b = cofactors { e2 with w = Cx.one } v in
          let entry i j =
            add pkg
              (mul pkg a.((2 * i) + 0) b.((2 * 0) + j))
              (mul pkg a.((2 * i) + 1) b.((2 * 1) + j))
          in
          let r = make_node pkg v [| entry 0 0; entry 0 1; entry 1 0; entry 1 1 |] in
          Hashtbl.replace pkg.mm_cache key r;
          r
    in
    scale pkg (Cx.mul e1.w e2.w) base
  end

let rec mul_vec pkg (m : edge) (v : edge) =
  if is_zero_edge m || is_zero_edge v then zero_edge
  else if is_terminal m.node && is_terminal v.node then
    edge_of pkg ~w:(Cx.mul m.w v.w) terminal
  else begin
    assert (m.node.var = v.node.var);
    let lvl = m.node.var in
    let key = (m.node.id, v.node.id) in
    let base =
      match Hashtbl.find_opt pkg.mv_cache key with
      | Some r -> r
      | None ->
          let a = cofactors { m with w = Cx.one } lvl
          and x = vcofactors { v with w = Cx.one } lvl in
          let entry i =
            add pkg (mul_vec pkg a.((2 * i) + 0) x.(0)) (mul_vec pkg a.((2 * i) + 1) x.(1))
          in
          let r = make_node pkg lvl [| entry 0; entry 1 |] in
          Hashtbl.replace pkg.mv_cache key r;
          r
    in
    scale pkg (Cx.mul m.w v.w) base
  end

let rec adjoint pkg (e : edge) =
  if is_zero_edge e then zero_edge
  else if is_terminal e.node then edge_of pkg ~w:(Cx.conj e.w) terminal
  else begin
    let base =
      match Hashtbl.find_opt pkg.adj_cache e.node.id with
      | Some r -> r
      | None ->
          let v = e.node.var in
          let c = cofactors { e with w = Cx.one } v in
          (* Transpose the block structure and conjugate recursively. *)
          let r =
            make_node pkg v
              [| adjoint pkg c.(0); adjoint pkg c.(2); adjoint pkg c.(1); adjoint pkg c.(3) |]
          in
          Hashtbl.replace pkg.adj_cache e.node.id r;
          r
    in
    scale pkg (Cx.conj e.w) base
  end

let rec inner pkg (e1 : edge) (e2 : edge) =
  if is_zero_edge e1 || is_zero_edge e2 then Cx.zero
  else if is_terminal e1.node && is_terminal e2.node then Cx.mul (Cx.conj e1.w) e2.w
  else begin
    assert (e1.node.var = e2.node.var);
    let v = e1.node.var in
    let key = (e1.node.id, e2.node.id) in
    let base =
      match Hashtbl.find_opt pkg.inner_cache key with
      | Some r -> r
      | None ->
          let a = vcofactors { e1 with w = Cx.one } v
          and b = vcofactors { e2 with w = Cx.one } v in
          let r = Cx.add (inner pkg a.(0) b.(0)) (inner pkg a.(1) b.(1)) in
          Hashtbl.replace pkg.inner_cache key r;
          r
    in
    Cx.mul (Cx.mul (Cx.conj e1.w) e2.w) base
  end

let kets_bits pkg n bit =
  let rec build v acc =
    if v >= n then acc
    else
      let edges = if bit v then [| zero_edge; acc |] else [| acc; zero_edge |] in
      build (v + 1) (make_node pkg v edges)
  in
  build 0 one_edge

let kets pkg n i = kets_bits pkg n (fun v -> (i lsr v) land 1 = 1)

(* ------------------------------------------------------------ Diagnostics *)

let node_count e =
  let seen = Hashtbl.create 256 in
  let rec visit n =
    if (not (is_terminal n)) && not (Hashtbl.mem seen n.id) then begin
      Hashtbl.replace seen n.id ();
      Array.iter (fun (c : edge) -> visit c.node) n.edges
    end
  in
  visit e.node;
  Hashtbl.length seen

let allocated pkg = pkg.next_id - 1

let clear_caches pkg =
  Hashtbl.reset pkg.mm_cache;
  Hashtbl.reset pkg.mv_cache;
  Hashtbl.reset pkg.add_cache;
  Hashtbl.reset pkg.adj_cache;
  Hashtbl.reset pkg.inner_cache

let pp_edge ppf e =
  Format.fprintf ppf "edge(w=%a, nodes=%d)" Cx.pp e.w (node_count e)
