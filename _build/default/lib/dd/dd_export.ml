open Oqec_base

let to_dmatrix (e : Dd.edge) ~n =
  let dim = 1 lsl n in
  let m = Dmatrix.zero dim dim in
  let rec fill (e : Dd.edge) v row col w =
    if not (Dd.is_zero_edge e) then begin
      let w = Cx.mul w e.Dd.w in
      if v < 0 then Dmatrix.set m row col (Cx.add (Dmatrix.get m row col) w)
      else begin
        let half = 1 lsl v in
        let sub = (Dd.cofactors { e with Dd.w = Cx.one } v :> Dd.edge array) in
        fill sub.(0) (v - 1) row col w;
        fill sub.(1) (v - 1) row (col + half) w;
        fill sub.(2) (v - 1) (row + half) col w;
        fill sub.(3) (v - 1) (row + half) (col + half) w
      end
    end
  in
  fill e (n - 1) 0 0 Cx.one;
  m

let to_vector (e : Dd.edge) ~n =
  let v = Array.make (1 lsl n) Cx.zero in
  let rec fill (e : Dd.edge) lvl idx w =
    if not (Dd.is_zero_edge e) then begin
      let w = Cx.mul w e.Dd.w in
      if lvl < 0 then v.(idx) <- Cx.add v.(idx) w
      else begin
        let half = 1 lsl lvl in
        let sub = Dd.vcofactors { e with Dd.w = Cx.one } lvl in
        fill sub.(0) (lvl - 1) idx w;
        fill sub.(1) (lvl - 1) (idx + half) w
      end
    end
  in
  fill e (n - 1) 0 Cx.one;
  v

let iter_nodes (e : Dd.edge) f =
  let seen = Hashtbl.create 64 in
  let rec visit (n : Dd.node) =
    if n.Dd.var >= 0 && not (Hashtbl.mem seen n.Dd.id) then begin
      Hashtbl.replace seen n.Dd.id ();
      f n;
      Array.iter (fun (c : Dd.edge) -> visit c.Dd.node) n.Dd.edges
    end
  in
  visit e.Dd.node

let dump ppf (e : Dd.edge) ~n =
  Format.fprintf ppf "root: w=%a -> node %d (level %d, %d nodes)@\n" Cx.pp e.Dd.w
    e.Dd.node.Dd.id e.Dd.node.Dd.var (Dd.node_count e);
  ignore n;
  iter_nodes e (fun node ->
      Format.fprintf ppf "  node %d @@ level %d:" node.Dd.id node.Dd.var;
      Array.iteri
        (fun i (c : Dd.edge) ->
          if Dd.is_zero_edge c then Format.fprintf ppf " [%d]=0" i
          else Format.fprintf ppf " [%d]=(%a)->%d" i Cx.pp c.Dd.w c.Dd.node.Dd.id)
        node.Dd.edges;
      Format.fprintf ppf "@\n")

let to_dot (e : Dd.edge) ~n =
  ignore n;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph dd {\n  rankdir=TB;\n  node [shape=circle];\n";
  Buffer.add_string buf
    (Printf.sprintf "  root [shape=point];\n  root -> n%d [label=\"%s\"];\n"
       e.Dd.node.Dd.id (Cx.to_string e.Dd.w));
  iter_nodes e (fun node ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"q%d\"];\n" node.Dd.id node.Dd.var);
      Array.iteri
        (fun i (c : Dd.edge) ->
          if not (Dd.is_zero_edge c) then begin
            let mag = Cx.mag c.Dd.w in
            let hue = (Cx.arg c.Dd.w +. Float.pi) /. (2.0 *. Float.pi) in
            let target =
              if Dd.is_terminal c.Dd.node then "t" else Printf.sprintf "n%d" c.Dd.node.Dd.id
            in
            Buffer.add_string buf
              (Printf.sprintf
                 "  n%d -> %s [label=\"%d\", penwidth=%.2f, color=\"%.3f 0.7 0.7\"];\n"
                 node.Dd.id target i (0.5 +. (3.0 *. mag)) hue)
          end)
        node.Dd.edges);
  Buffer.add_string buf "  t [shape=box, label=\"1\"];\n}\n";
  Buffer.contents buf
