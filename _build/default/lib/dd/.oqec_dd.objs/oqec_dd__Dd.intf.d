lib/dd/dd.mli: Cx Format Oqec_base
