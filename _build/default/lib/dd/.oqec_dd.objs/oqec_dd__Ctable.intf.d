lib/dd/ctable.mli: Cx Oqec_base
