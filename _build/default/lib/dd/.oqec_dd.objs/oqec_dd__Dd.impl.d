lib/dd/dd.ml: Array Ctable Cx Float Format Hashtbl Oqec_base
