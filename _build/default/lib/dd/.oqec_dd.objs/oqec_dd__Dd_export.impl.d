lib/dd/dd_export.ml: Array Buffer Cx Dd Dmatrix Float Format Hashtbl Oqec_base Printf
