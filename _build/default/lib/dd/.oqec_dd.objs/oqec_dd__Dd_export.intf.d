lib/dd/dd_export.mli: Cx Dd Dmatrix Format Oqec_base
