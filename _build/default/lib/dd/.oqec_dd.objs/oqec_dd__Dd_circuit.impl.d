lib/dd/dd_circuit.ml: Array Circuit Dd Dmatrix Gate List Oqec_base Oqec_circuit
