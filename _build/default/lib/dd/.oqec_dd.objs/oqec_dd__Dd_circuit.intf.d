lib/dd/dd_circuit.mli: Circuit Dd Dmatrix Oqec_base Oqec_circuit
