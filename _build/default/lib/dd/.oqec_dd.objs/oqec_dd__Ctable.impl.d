lib/dd/ctable.ml: Cx Float Hashtbl List Oqec_base
