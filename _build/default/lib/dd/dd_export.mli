(** Dense conversion and debug output for decision diagrams. *)

open Oqec_base

(** [to_dmatrix e ~n] expands a matrix DD rooted at level [n-1] into the
    dense [2^n x 2^n] matrix it represents (exponential; tests and figure
    demos only). *)
val to_dmatrix : Dd.edge -> n:int -> Dmatrix.t

(** [to_vector e ~n] expands a vector DD into its [2^n] amplitudes. *)
val to_vector : Dd.edge -> n:int -> Cx.t array

(** [dump ppf e ~n] prints the diagram structure level by level: node ids,
    edge weights and targets — the textual analogue of Fig. 3. *)
val dump : Format.formatter -> Dd.edge -> n:int -> unit

(** [to_dot e ~n] renders the diagram in Graphviz DOT syntax (edge
    thickness encodes magnitude, colour encodes the weight's phase,
    following the visualisation of ref. [37]). *)
val to_dot : Dd.edge -> n:int -> string
