(* Use case 1 of the paper: verifying compilation-flow results.

   A suite of algorithm circuits is compiled onto the 65-qubit IBM
   Manhattan heavy-hex architecture with randomised initial layouts; each
   result is verified against its original, and error-injected variants
   are shown to be refuted.

   Run with: dune exec examples/verify_compilation.exe *)

open Oqec_circuit
open Oqec_compile
open Oqec_workloads.Workloads
open Oqec_qcec

let verify name g =
  let rng = Oqec_base.Rng.make ~seed:11 in
  let arch = Architecture.manhattan in
  let layout = Compile.spread_layout arch rng in
  let g' = Compile.run ~initial_layout:layout arch g in
  Printf.printf "%-14s %3d qubits  |G| = %5d  |G'| = %5d\n%!" name
    (Circuit.num_qubits g) (Circuit.gate_count g) (Circuit.gate_count g');
  let ok = Qcec.check ~strategy:Qcec.Combined ~seed:5 ~timeout:60.0 g g' in
  Format.printf "  compiled vs original : %a@." Equivalence.pp_report ok;
  assert (ok.Equivalence.outcome = Equivalence.Equivalent);
  (* The stabilizer tableau settles the Clifford benchmarks instantly. *)
  let cl = Qcec.check ~strategy:Qcec.Clifford g g' in
  (match cl.Equivalence.outcome with
  | Equivalence.Equivalent -> Format.printf "  stabilizer tableau   : %a@." Equivalence.pp_report cl
  | Equivalence.No_information | Equivalence.Not_equivalent | Equivalence.Timed_out -> ());
  let missing = remove_gate ~seed:7 g' in
  let r1 = Qcec.check ~strategy:Qcec.Combined ~seed:5 ~timeout:60.0 g missing in
  Format.printf "  one gate missing     : %a@." Equivalence.pp_report r1;
  let flipped = flip_cnot ~seed:7 g' in
  let r2 = Qcec.check ~strategy:Qcec.Combined ~seed:5 ~timeout:60.0 g flipped in
  Format.printf "  flipped CNOT         : %a@." Equivalence.pp_report r2

let () =
  verify "ghz-8" (ghz 8);
  verify "graphstate-8" (graph_state ~seed:2 8);
  verify "qft-6" (qft 6);
  verify "qpe-exact-5" (qpe_exact ~seed:2 5);
  verify "grover-4" (grover ~seed:2 4);
  verify "qwalk-5" (random_walk ~steps:3 5);
  print_endline "\nverify_compilation: all compiled circuits verified on ibmq-manhattan"
