(* ZX-based circuit resynthesis ("there and back again").

   Round-trips circuits through the ZX-calculus: translate to a diagram,
   Clifford-simplify, extract a circuit back (the paper's reference [40]),
   then verify the result with an *independent* checker — the
   decision-diagram miter or, for pure Clifford circuits, the stabilizer
   tableau.  On Clifford-dominated inputs this acts as an optimiser.

   Run with: dune exec examples/zx_resynthesis.exe *)

open Oqec_base
open Oqec_circuit
open Oqec_zx
open Oqec_qcec

let random_clifford seed n len =
  let rng = Rng.make ~seed in
  let c = ref (Circuit.create ~name:"clifford" n) in
  for _ = 1 to len do
    let q = Rng.int rng n in
    let q2 = (q + 1 + Rng.int rng (n - 1)) mod n in
    match Rng.int rng 6 with
    | 0 -> c := Circuit.h !c q
    | 1 -> c := Circuit.s !c q
    | 2 -> c := Circuit.x !c q
    | 3 -> c := Circuit.cx !c q q2
    | 4 -> c := Circuit.cz !c q q2
    | _ -> c := Circuit.swap !c q q2
  done;
  !c

let resynth name strategy c =
  let out = Oqec_compile.Optimize.optimize (Zx_extract.resynthesize c) in
  let r = Qcec.check ~strategy c out in
  Printf.printf "%-22s %4d gates -> %4d gates   verified: %s [%s]\n%!" name
    (Circuit.gate_count c) (Circuit.gate_count out)
    (Equivalence.outcome_to_string r.Equivalence.outcome)
    (Qcec.strategy_to_string strategy);
  assert (r.Equivalence.outcome = Equivalence.Equivalent)

let () =
  print_endline "ZX round-trip resynthesis, cross-checked by independent checkers:\n";
  resynth "random clifford-8" Qcec.Clifford (random_clifford 21 8 120);
  resynth "random clifford-10" Qcec.Clifford (random_clifford 5 10 200);
  resynth "graphstate-10" Qcec.Clifford (Oqec_workloads.Workloads.graph_state ~seed:7 10);
  resynth "ghz-12" Qcec.Clifford (Oqec_workloads.Workloads.ghz 12);
  resynth "qft-5" Qcec.Alternating (Oqec_workloads.Workloads.qft 5);
  resynth "bv-10" Qcec.Alternating
    (Oqec_workloads.Workloads.bernstein_vazirani ~secret:0b1011011011 10);
  print_endline "\nzx_resynthesis: all round-trips verified"
