(* Quickstart: the paper's running example end to end.

   Build the GHZ preparation circuit (Fig. 1a), compile it to a 5-qubit
   linear architecture (Fig. 2) and verify the result with both
   equivalence-checking paradigms.

   Run with: dune exec examples/quickstart.exe *)

open Oqec_base
open Oqec_circuit
open Oqec_compile
open Oqec_qcec

let () =
  (* The high-level circuit G. *)
  let g = Oqec_workloads.Workloads.ghz 3 in
  Format.printf "Original circuit G:@.";
  Render.print g;

  (* Fig. 1b: its system matrix. *)
  Format.printf "System matrix U of G:@.%a@." Dmatrix.pp (Unitary.unitary g);

  (* Compile to the 5-qubit linear architecture of Fig. 2. *)
  let arch = Architecture.linear 5 in
  let g' = Compile.run arch g in
  Format.printf "Compiled circuit G' on %s:@." (Architecture.name arch);
  Render.print g';
  (match Circuit.output_perm g' with
  | Some p -> Format.printf "Output permutation: %a@." Perm.pp p
  | None -> ());

  (* Verify with the decision-diagram paradigm (QCEC-style). *)
  let dd = Qcec.check ~strategy:Qcec.Alternating g g' in
  Format.printf "@.DD check:  %a@." Equivalence.pp_report dd;

  (* Verify with the ZX-calculus paradigm (PyZX-style). *)
  let zx = Qcec.check ~strategy:Qcec.Zx g g' in
  Format.printf "ZX check:  %a@." Equivalence.pp_report zx;

  (* Inject an error: verification must fail. *)
  let broken = Oqec_workloads.Workloads.flip_cnot ~seed:3 g' in
  let bad = Qcec.check ~strategy:Qcec.Combined g broken in
  Format.printf "@.Flipped-CNOT instance: %a@." Equivalence.pp_report bad;

  assert (dd.Equivalence.outcome = Equivalence.Equivalent);
  assert (zx.Equivalence.outcome = Equivalence.Equivalent);
  assert (bad.Equivalence.outcome = Equivalence.Not_equivalent);
  print_endline "\nquickstart: all checks behaved as expected"
