(* Diagrammatic reasoning with the ZX-calculus (Section 5 of the paper).

   Proves Example 6 — a SWAP equals three alternating CNOTs — by reducing
   the composed miter diagram to bare wires, and reproduces Example 7:
   the compiled GHZ circuit against its original reduces to the identity
   permutation.  Diagram statistics are printed after every phase of the
   reduction to illustrate the non-increasing spider count.

   Run with: dune exec examples/zx_rewriting.exe *)

open Oqec_base
open Oqec_circuit
open Oqec_zx

let stats label g =
  Printf.printf "  %-28s %3d spiders, %3d vertices\n%!" label
    (Zx_graph.spider_count g) (Zx_graph.num_vertices g)

let reduce_and_report g =
  stats "initial diagram" g;
  ignore (Zx_simplify.spider_simp g);
  Zx_simplify.to_gh g;
  stats "after fusion + colour change" g;
  ignore (Zx_simplify.interior_clifford_simp g);
  stats "after interior Clifford simp" g;
  ignore (Zx_simplify.full_reduce g);
  stats "after full reduce" g;
  match Zx_simplify.extract_permutation g with
  | Some p -> Format.printf "  => bare wires with permutation %a@." Perm.pp p
  | None -> Format.printf "  => not reducible to wires@."

let () =
  print_endline "Example 6: SWAP = CX(0,1) CX(1,0) CX(0,1)";
  let sw = Circuit.swap (Circuit.create 2) 0 1 in
  let three = Circuit.cx (Circuit.cx (Circuit.cx (Circuit.create 2) 0 1) 1 0) 0 1 in
  reduce_and_report (Zx_circuit.of_miter sw three);

  print_endline "\nExample 7: compiled GHZ vs original";
  let g = Oqec_workloads.Workloads.ghz 3 in
  let g' = Oqec_compile.Compile.run (Oqec_compile.Architecture.linear 5) g in
  let a, b = Oqec_qcec.Flatten.align g g' in
  reduce_and_report
    (Zx_circuit.of_miter (Oqec_qcec.Flatten.flatten a) (Oqec_qcec.Flatten.flatten b));

  print_endline "\nNon-example: a single Hadamard is not the identity";
  reduce_and_report (Zx_circuit.of_circuit (Circuit.h (Circuit.create 1) 0));

  (* A non-Clifford miter with an injected error: rewriting gets stuck,
     which the paper reads as a strong indication of non-equivalence. *)
  print_endline "\nError instance: QFT-4 with one gate removed";
  let qft = Oqec_workloads.Workloads.qft 4 in
  let broken = Oqec_workloads.Workloads.remove_gate ~seed:3 qft in
  reduce_and_report (Zx_circuit.of_miter qft broken)
