(* Use case 2 of the paper: verifying that an optimised circuit still
   implements its original.

   Each benchmark is lowered to the CX basis, peephole-optimised and
   verified; the reduction in gate count is reported alongside the
   verification result, and an error-injected optimisation is refuted.

   Run with: dune exec examples/verify_optimization.exe *)

open Oqec_circuit
open Oqec_workloads.Workloads
open Oqec_compile
open Oqec_qcec

let verify name g =
  let lowered = Decompose.to_cx_basis ~keep_swaps:false (Decompose.elementary g) in
  (* Pad with a few redundancies an optimiser should find, as real
     transpiler output contains. *)
  let padded = Circuit.h (Circuit.h lowered 0) 0 in
  let optimised = Optimize.optimize padded in
  Printf.printf "%-16s |G| = %5d  ->  |G'| = %5d (%.0f%% smaller)\n%!" name
    (Circuit.gate_count padded) (Circuit.gate_count optimised)
    (100.0
    *. (1.0
       -. (float_of_int (Circuit.gate_count optimised)
          /. float_of_int (max 1 (Circuit.gate_count padded)))));
  let dd = Qcec.check ~strategy:Qcec.Combined ~seed:3 ~timeout:60.0 g optimised in
  Format.printf "  DD : %a@." Equivalence.pp_report dd;
  assert (dd.Equivalence.outcome = Equivalence.Equivalent);
  let zx = Qcec.check ~strategy:Qcec.Zx ~timeout:60.0 g optimised in
  Format.printf "  ZX : %a@." Equivalence.pp_report zx;
  let broken = remove_gate ~seed:13 optimised in
  let bad = Qcec.check ~strategy:Qcec.Combined ~seed:3 ~timeout:60.0 g broken in
  Format.printf "  err: %a@." Equivalence.pp_report bad

let () =
  verify "grover-4" (grover ~seed:9 4);
  verify "qft-5" (qft 5);
  verify "adder-3" (ripple_adder 3);
  verify "urf-6" (random_reversible ~seed:5 ~gates:60 6);
  verify "plus5mod32" (const_adder_mod ~bits:5 ~constant:5);
  print_endline "\nverify_optimization: optimised circuits verified"
