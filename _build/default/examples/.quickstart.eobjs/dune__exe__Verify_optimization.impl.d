examples/verify_optimization.ml: Circuit Decompose Equivalence Format Optimize Oqec_circuit Oqec_compile Oqec_qcec Oqec_workloads Printf Qcec
