examples/zx_resynthesis.mli:
