examples/verify_compilation.ml: Architecture Circuit Compile Equivalence Format Oqec_base Oqec_circuit Oqec_compile Oqec_qcec Oqec_workloads Printf Qcec
