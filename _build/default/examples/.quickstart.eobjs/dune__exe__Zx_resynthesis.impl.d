examples/zx_resynthesis.ml: Circuit Equivalence Oqec_base Oqec_circuit Oqec_compile Oqec_qcec Oqec_workloads Oqec_zx Printf Qcec Rng Zx_extract
