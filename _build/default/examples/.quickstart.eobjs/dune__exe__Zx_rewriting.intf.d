examples/zx_rewriting.mli:
