examples/zx_rewriting.ml: Circuit Format Oqec_base Oqec_circuit Oqec_compile Oqec_qcec Oqec_workloads Oqec_zx Perm Printf Zx_circuit Zx_graph Zx_simplify
