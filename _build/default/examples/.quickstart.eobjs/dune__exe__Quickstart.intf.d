examples/quickstart.mli:
