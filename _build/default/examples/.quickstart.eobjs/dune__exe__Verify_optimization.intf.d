examples/verify_optimization.mli:
