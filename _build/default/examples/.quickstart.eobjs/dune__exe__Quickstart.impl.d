examples/quickstart.ml: Architecture Circuit Compile Dmatrix Equivalence Format Oqec_base Oqec_circuit Oqec_compile Oqec_qcec Oqec_workloads Perm Qcec Render Unitary
