(* Compilation flow tests: architectures, routing, optimisation. *)

open Oqec_base
open Oqec_circuit
open Oqec_compile
open Helpers

(* ---------------------------------------------------------- Architecture *)

let test_linear () =
  let a = Architecture.linear 5 in
  Alcotest.(check int) "qubits" 5 (Architecture.num_qubits a);
  Alcotest.(check bool) "0-1" true (Architecture.connected a 0 1);
  Alcotest.(check bool) "0-2" false (Architecture.connected a 0 2);
  Alcotest.(check int) "distance" 4 (Architecture.distance a 0 4);
  Alcotest.(check (list int)) "path" [ 1; 2; 3 ] (Architecture.shortest_path a 1 3)

let test_ring_grid () =
  let r = Architecture.ring 6 in
  Alcotest.(check int) "ring distance wraps" 1 (Architecture.distance r 0 5);
  let g = Architecture.grid ~rows:3 ~cols:4 in
  Alcotest.(check int) "grid qubits" 12 (Architecture.num_qubits g);
  Alcotest.(check int) "grid manhattan distance" 5 (Architecture.distance g 0 11)

let test_manhattan () =
  let m = Architecture.manhattan in
  Alcotest.(check int) "65 qubits" 65 (Architecture.num_qubits m);
  Alcotest.(check int) "72 couplings" 72 (List.length (Architecture.edges m));
  (* Heavy-hex degree bound: no qubit exceeds degree 3, and the lattice is
     connected. *)
  let max_degree = ref 0 in
  for q = 0 to 64 do
    max_degree := max !max_degree (List.length (Architecture.neighbours m q))
  done;
  Alcotest.(check int) "degree <= 3" 3 !max_degree;
  for q = 1 to 64 do
    Alcotest.(check bool) "connected" true (Architecture.distance m 0 q > 0)
  done

(* --------------------------------------------------------------- Routing *)

let ghz n =
  let c = ref (Circuit.h (Circuit.create ~name:"ghz" n) 0) in
  for q = 1 to n - 1 do
    c := Circuit.cx !c 0 q
  done;
  !c

let respects_coupling arch c =
  List.for_all
    (fun op ->
      match op with
      | Circuit.Ctrl ([ a ], _, b) | Circuit.Swap (a, b) -> Architecture.connected arch a b
      | Circuit.Gate _ | Circuit.Barrier -> true
      | Circuit.Ctrl (_, _, _) -> false)
    (Circuit.ops c)

let test_route_ghz_linear () =
  (* Example 3 of the paper: GHZ(3) on linear(5) needs one SWAP. *)
  let arch = Architecture.linear 5 in
  let routed = Route.route arch (ghz 3) in
  Alcotest.(check bool) "coupling respected" true (respects_coupling arch routed);
  let swaps =
    List.length
      (List.filter (function Circuit.Swap _ -> true | _ -> false) (Circuit.ops routed))
  in
  Alcotest.(check int) "one swap" 1 swaps;
  (* Functional equivalence via the dense reference. *)
  let embedded = Circuit.embed (ghz 3) ~num_qubits:5 in
  Alcotest.(check bool) "equivalent" true (Unitary.equivalent embedded routed)

let test_route_layout () =
  let arch = Architecture.linear 4 in
  let layout = Perm.of_array [| 2; 0; 3; 1 |] in
  let c = Circuit.cx (Circuit.cx (ghz 3) 1 2) 2 0 in
  let routed = Route.route arch ~initial_layout:layout c in
  Alcotest.(check bool) "coupling respected" true (respects_coupling arch routed);
  Alcotest.(check bool) "equivalent" true
    (Unitary.equivalent (Circuit.embed c ~num_qubits:4) routed)

let prop_routing_preserves =
  qtest ~count:30 "route: equivalence on random circuits and layouts"
    QCheck.(make ~print:string_of_int Gen.int)
    (fun seed ->
      let rng = Rng.make ~seed in
      let n = 3 + Rng.int rng 2 in
      let extra = Rng.int rng 2 in
      let arch =
        if Rng.bool rng then Architecture.linear (n + extra)
        else Architecture.ring (n + extra)
      in
      let c = ref (Circuit.create n) in
      for _ = 1 to 10 do
        let q = Rng.int rng n in
        let q2 = (q + 1 + Rng.int rng (n - 1)) mod n in
        match Rng.int rng 4 with
        | 0 -> c := Circuit.h !c q
        | 1 -> c := Circuit.t_gate !c q
        | 2 -> c := Circuit.cx !c q q2
        | _ -> c := Circuit.cz !c q q2
      done;
      let layout = Perm.random (Rng.int rng) (Architecture.num_qubits arch) in
      let routed = Route.route arch ~initial_layout:layout !c in
      respects_coupling arch routed
      && Unitary.equivalent (Circuit.embed !c ~num_qubits:(Architecture.num_qubits arch)) routed)

(* ---------------------------------------------------------- Optimisation *)

let test_cancel_pairs () =
  let c = Circuit.h (Circuit.h (Circuit.create 1) 0) 0 in
  Alcotest.(check int) "h h cancels" 0 (Circuit.gate_count (Optimize.optimize c));
  let c2 = Circuit.cx (Circuit.cx (Circuit.create 2) 0 1) 0 1 in
  Alcotest.(check int) "cx cx cancels" 0 (Circuit.gate_count (Optimize.optimize c2))

let test_merge_rotations () =
  let c = Circuit.t_gate (Circuit.t_gate (Circuit.create 1) 0) 0 in
  let o = Optimize.optimize c in
  Alcotest.(check int) "t t merges" 1 (Circuit.gate_count o);
  check_matrix_up_to_phase "t t = s" (Unitary.unitary c) (Unitary.unitary o)

let test_cancel_through_commuting () =
  (* rz on the control cancels across a CX. *)
  let c = Circuit.create 2 in
  let c = Circuit.rz c Phase.quarter_pi 0 in
  let c = Circuit.cx c 0 1 in
  let c = Circuit.rz c (Phase.neg Phase.quarter_pi) 0 in
  let o = Optimize.optimize c in
  Alcotest.(check int) "only the cx remains" 1 (Circuit.gate_count o);
  check_matrix_up_to_phase "semantics" (Unitary.unitary c) (Unitary.unitary o)

let test_no_unsound_cancel () =
  (* rz on the TARGET must not cancel across a CX. *)
  let c = Circuit.create 2 in
  let c = Circuit.rz c Phase.quarter_pi 1 in
  let c = Circuit.cx c 0 1 in
  let c = Circuit.rz c (Phase.neg Phase.quarter_pi) 1 in
  let o = Optimize.optimize c in
  Alcotest.(check int) "nothing cancels" 3 (Circuit.gate_count o)

let test_reconstruct_swaps () =
  let c = Circuit.create 2 in
  let c = Circuit.cx c 0 1 in
  let c = Circuit.cx c 1 0 in
  let c = Circuit.cx c 0 1 in
  let r = Optimize.reconstruct_swaps c in
  (match Circuit.ops r with
  | [ Circuit.Swap (0, 1) ] -> ()
  | _ -> Alcotest.fail "expected a single swap");
  check_matrix_up_to_phase "swap semantics" (Unitary.unitary c) (Unitary.unitary r)

let test_swap_not_reconstructed_when_blocked () =
  let c = Circuit.create 2 in
  let c = Circuit.cx c 0 1 in
  let c = Circuit.cx c 1 0 in
  let c = Circuit.h c 1 in
  let c = Circuit.cx c 0 1 in
  let r = Optimize.reconstruct_swaps c in
  Alcotest.(check bool) "no swap introduced" true
    (List.for_all (function Circuit.Swap _ -> false | _ -> true) (Circuit.ops r))

let random_opt_circuit seed =
  let rng = Rng.make ~seed in
  let n = 2 + Rng.int rng 3 in
  let c = ref (Circuit.create n) in
  for _ = 1 to 25 do
    let q = Rng.int rng n in
    let q2 = (q + 1 + Rng.int rng (n - 1)) mod n in
    match Rng.int rng 8 with
    | 0 -> c := Circuit.h !c q
    | 1 -> c := Circuit.t_gate !c q
    | 2 -> c := Circuit.s !c q
    | 3 -> c := Circuit.x !c q
    | 4 -> c := Circuit.rz !c (Phase.of_pi_fraction (Rng.int rng 16) 8) q
    | 5 -> c := Circuit.cx !c q q2
    | 6 -> c := Circuit.cz !c q q2
    | _ -> c := Circuit.swap !c q q2
  done;
  !c

let prop_optimize_preserves =
  qtest ~count:40 "optimize: preserves the unitary up to phase"
    QCheck.(make ~print:string_of_int Gen.int)
    (fun seed ->
      let c = random_opt_circuit seed in
      let o = Optimize.optimize c in
      Circuit.gate_count o <= Circuit.gate_count c
      && Dmatrix.equal_up_to_phase ~tol:1e-8 (Unitary.unitary c) (Unitary.unitary o))

let prop_optimize_shrinks_padded =
  qtest ~count:20 "optimize: removes an inserted inverse pair"
    QCheck.(make ~print:string_of_int Gen.int)
    (fun seed ->
      let c = random_opt_circuit seed in
      let padded = Circuit.h (Circuit.h c 0) 0 in
      Circuit.gate_count (Optimize.optimize padded) <= Circuit.gate_count (Optimize.optimize c))

(* ------------------------------------------------------------- Pipeline *)

let test_compile_pipeline () =
  let arch = Architecture.linear 5 in
  let c = ghz 4 in
  let compiled = Compile.run arch c in
  Alcotest.(check bool) "coupling respected" true (respects_coupling arch compiled);
  Alcotest.(check bool) "has layout metadata" true (Circuit.initial_layout compiled <> None);
  Alcotest.(check bool) "has output perm" true (Circuit.output_perm compiled <> None);
  Alcotest.(check bool) "equivalent" true
    (Unitary.equivalent (Circuit.embed c ~num_qubits:5) compiled)

let test_compile_toffoli_manhattan_subset () =
  (* A Toffoli routed on a ring still matches the reference semantics. *)
  let arch = Architecture.ring 5 in
  let c = Circuit.ccx (Circuit.create 3) 0 1 2 in
  let compiled = Compile.run arch c in
  Alcotest.(check bool) "coupling respected" true (respects_coupling arch compiled);
  Alcotest.(check bool) "equivalent" true
    (Unitary.equivalent (Circuit.embed c ~num_qubits:5) compiled)

let suite =
  [
    Alcotest.test_case "linear architecture" `Quick test_linear;
    Alcotest.test_case "ring and grid" `Quick test_ring_grid;
    Alcotest.test_case "manhattan heavy-hex" `Quick test_manhattan;
    Alcotest.test_case "route ghz on linear(5) (fig 2)" `Quick test_route_ghz_linear;
    Alcotest.test_case "route with layout" `Quick test_route_layout;
    prop_routing_preserves;
    Alcotest.test_case "cancel inverse pairs" `Quick test_cancel_pairs;
    Alcotest.test_case "merge rotations" `Quick test_merge_rotations;
    Alcotest.test_case "cancel through commuting" `Quick test_cancel_through_commuting;
    Alcotest.test_case "no unsound cancellation" `Quick test_no_unsound_cancel;
    Alcotest.test_case "swap reconstruction" `Quick test_reconstruct_swaps;
    Alcotest.test_case "blocked swap reconstruction" `Quick test_swap_not_reconstructed_when_blocked;
    prop_optimize_preserves;
    prop_optimize_shrinks_padded;
    Alcotest.test_case "compile pipeline" `Quick test_compile_pipeline;
    Alcotest.test_case "compile toffoli on ring" `Quick test_compile_toffoli_manhattan_subset;
  ]
