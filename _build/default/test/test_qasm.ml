(* Tests for the OpenQASM 2.0 reader/writer. *)

open Oqec_base
open Oqec_circuit
open Oqec_qasm
open Helpers

let ghz_src =
  {|OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q[0];
cx q[0],q[1];
cx q[0],q[2];
measure q[0] -> c[0];
measure q[1] -> c[1];
measure q[2] -> c[2];
|}

let test_parse_ghz () =
  let r = Qasm.parse_string ghz_src in
  Alcotest.(check int) "qubits" 3 (Circuit.num_qubits r.circuit);
  Alcotest.(check int) "gates" 3 (Circuit.gate_count r.circuit);
  Alcotest.(check int) "measures" 3 (List.length r.measures);
  (match Circuit.output_perm r.circuit with
  | Some p -> Alcotest.(check bool) "identity output perm" true (Perm.is_identity p)
  | None -> Alcotest.fail "expected output perm");
  let v = Unitary.basis_state 3 0 in
  Unitary.apply_to_vector r.circuit v;
  Alcotest.check cx_testable "ghz amplitude" Cx.sqrt2_inv v.(7)

let test_parse_parameters () =
  let src =
    {|OPENQASM 2.0;
qreg q[1];
rz(pi/4) q[0];
rz(-pi/4) q[0];
rz(3*pi/8) q[0];
rz(0.5) q[0];
u(pi/2, 0, pi) q[0];
p(2*pi/2^3) q[0];
|}
  in
  let c = Qasm.circuit_of_string src in
  match Circuit.ops c with
  | [
   Circuit.Gate (Gate.Rz a1, 0);
   Circuit.Gate (Gate.Rz a2, 0);
   Circuit.Gate (Gate.Rz a3, 0);
   Circuit.Gate (Gate.Rz a4, 0);
   Circuit.Gate (Gate.U (t, p, l), 0);
   Circuit.Gate (Gate.P a5, 0);
  ] ->
      Alcotest.check phase_testable "pi/4" Phase.quarter_pi a1;
      Alcotest.check phase_testable "-pi/4" (Phase.neg Phase.quarter_pi) a2;
      Alcotest.check phase_testable "3pi/8" (Phase.of_pi_fraction 3 8) a3;
      Alcotest.(check (float 1e-12)) "0.5 rad" 0.5 (Phase.to_float a4);
      Alcotest.check phase_testable "theta" Phase.half_pi t;
      Alcotest.check phase_testable "phi" Phase.zero p;
      Alcotest.check phase_testable "lambda" Phase.pi l;
      Alcotest.check phase_testable "2pi/8" Phase.quarter_pi a5
  | _ -> Alcotest.fail "unexpected ops"

let test_gate_macro () =
  let src =
    {|OPENQASM 2.0;
qreg q[2];
gate foo(theta) a, b {
  h a;
  cx a, b;
  rz(theta/2) b;
}
foo(pi) q[1], q[0];
|}
  in
  let c = Qasm.circuit_of_string src in
  match Circuit.ops c with
  | [
   Circuit.Gate (Gate.H, 1);
   Circuit.Ctrl ([ 1 ], Gate.X, 0);
   Circuit.Gate (Gate.Rz a, 0);
  ] ->
      Alcotest.check phase_testable "theta/2" Phase.half_pi a
  | _ -> Alcotest.fail "macro expansion wrong"

let test_nested_macro () =
  let src =
    {|OPENQASM 2.0;
qreg q[2];
gate inner a { h a; }
gate outer a, b { inner a; cx a, b; inner b; }
outer q[0], q[1];
|}
  in
  let c = Qasm.circuit_of_string src in
  Alcotest.(check int) "three gates" 3 (Circuit.gate_count c)

let test_broadcast () =
  let src = {|OPENQASM 2.0;
qreg q[3];
h q;
cx q[0], q[1];
|} in
  let c = Qasm.circuit_of_string src in
  Alcotest.(check int) "3 h + 1 cx" 4 (Circuit.gate_count c)

let test_registers_offsets () =
  let src = {|OPENQASM 2.0;
qreg a[2];
qreg b[2];
cx a[1], b[0];
|} in
  let c = Qasm.circuit_of_string src in
  match Circuit.ops c with
  | [ Circuit.Ctrl ([ 1 ], Gate.X, 2) ] -> ()
  | _ -> Alcotest.fail "register offsets wrong"

let test_multi_controlled () =
  let src = {|OPENQASM 2.0;
qreg q[5];
ccx q[0],q[1],q[2];
c3x q[0],q[1],q[2],q[3];
|} in
  let c = Qasm.circuit_of_string src in
  match Circuit.ops c with
  | [ Circuit.Ctrl ([ 0; 1 ], Gate.X, 2); Circuit.Ctrl ([ 0; 1; 2 ], Gate.X, 3) ] -> ()
  | _ -> Alcotest.fail "multi-controlled parsing wrong"

let test_parse_errors () =
  let expect_error src =
    match Qasm.parse_string src with
    | exception Qasm.Parse_error _ -> ()
    | _ -> Alcotest.fail ("expected parse error for: " ^ src)
  in
  expect_error "OPENQASM 2.0; qreg q[2]; bogus q[0];";
  expect_error "OPENQASM 2.0; qreg q[2]; h q[5];";
  expect_error "OPENQASM 2.0; qreg q[2]; rz q[0];";
  expect_error "OPENQASM 2.0; qreg q[2]; rz(pi";
  expect_error "OPENQASM 2.0; qreg q[2]; if (c == 1) x q[0];";
  expect_error "OPENQASM 2.0; qreg q[1]; reset q[0];"

let test_comments_and_whitespace () =
  let src =
    "OPENQASM 2.0; // header\n// a comment line\nqreg q[1];\nh q[0]; // trailing\n"
  in
  let c = Qasm.circuit_of_string src in
  Alcotest.(check int) "one gate" 1 (Circuit.gate_count c)

(* Round-trip: writer output parses back to the same unitary. *)
let test_roundtrip_handwritten () =
  let c = Circuit.create ~name:"rt" 3 in
  let c = Circuit.h c 0 in
  let c = Circuit.cx c 0 1 in
  let c = Circuit.rz c Phase.quarter_pi 2 in
  let c = Circuit.cp c (Phase.of_pi_fraction 1 8) 0 2 in
  let c = Circuit.swap c 1 2 in
  let c = Circuit.ccx c 0 1 2 in
  let c = Circuit.add c (Circuit.Ctrl ([ 0; 1 ], Gate.Z, 2)) in
  let c = Circuit.gate c (Gate.U (Phase.of_float 0.3, Phase.of_float 1.2, Phase.zero)) 1 in
  let text = Qasm.to_string c in
  let c' = Qasm.circuit_of_string text in
  check_matrix_up_to_phase "roundtrip unitary" (Unitary.unitary c) (Unitary.unitary c')

let random_circuit_for_roundtrip seed =
  let rng = Rng.make ~seed in
  let n = 2 + Rng.int rng 3 in
  let c = ref (Circuit.create n) in
  for _ = 1 to 1 + Rng.int rng 15 do
    let q = Rng.int rng n in
    let q2 = (q + 1 + Rng.int rng (n - 1)) mod n in
    match Rng.int rng 7 with
    | 0 -> c := Circuit.h !c q
    | 1 -> c := Circuit.t_gate !c q
    | 2 -> c := Circuit.cx !c q q2
    | 3 -> c := Circuit.rz !c (Phase.of_pi_fraction (Rng.int rng 16) 8) q
    | 4 -> c := Circuit.swap !c q q2
    | 5 -> c := Circuit.ry !c (Phase.of_float (Rng.float rng 3.0)) q
    | _ -> c := Circuit.cp !c (Phase.of_pi_fraction 1 (1 lsl Rng.int rng 5)) q q2
  done;
  !c

let test_metadata_roundtrip () =
  let c = Circuit.swap (Circuit.cx (Circuit.h (Circuit.create 3) 0) 0 1) 1 2 in
  let c = Circuit.with_initial_layout c (Some (Perm.of_array [| 2; 0; 1 |])) in
  let c = Circuit.with_output_perm c (Some (Perm.of_array [| 1; 2; 0 |])) in
  let c' = Qasm.circuit_of_string (Qasm.to_string c) in
  (match Circuit.initial_layout c' with
  | Some l -> Alcotest.(check bool) "layout" true (Perm.equal l (Perm.of_array [| 2; 0; 1 |]))
  | None -> Alcotest.fail "layout lost");
  (match Circuit.output_perm c' with
  | Some p -> Alcotest.(check bool) "output perm" true (Perm.equal p (Perm.of_array [| 1; 2; 0 |]))
  | None -> Alcotest.fail "output perm lost");
  check_matrix_up_to_phase "effective unitary preserved"
    (Unitary.effective_unitary c)
    (Unitary.effective_unitary c')

let prop_roundtrip =
  qtest ~count:40 "qasm: write . parse preserves the unitary"
    QCheck.(make ~print:string_of_int Gen.int)
    (fun seed ->
      let c = random_circuit_for_roundtrip seed in
      let c' = Qasm.circuit_of_string (Qasm.to_string c) in
      Dmatrix.equal_up_to_phase ~tol:1e-8 (Unitary.unitary c) (Unitary.unitary c'))

let suite =
  [
    Alcotest.test_case "parse ghz" `Quick test_parse_ghz;
    Alcotest.test_case "parameter expressions" `Quick test_parse_parameters;
    Alcotest.test_case "gate macro" `Quick test_gate_macro;
    Alcotest.test_case "nested macro" `Quick test_nested_macro;
    Alcotest.test_case "register broadcast" `Quick test_broadcast;
    Alcotest.test_case "register offsets" `Quick test_registers_offsets;
    Alcotest.test_case "multi-controlled gates" `Quick test_multi_controlled;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "comments and whitespace" `Quick test_comments_and_whitespace;
    Alcotest.test_case "roundtrip handwritten" `Quick test_roundtrip_handwritten;
    Alcotest.test_case "metadata roundtrip" `Quick test_metadata_roundtrip;
    prop_roundtrip;
  ]
