(* ZX-calculus validation: the translation and every rewrite pass are
   checked against the brute-force tensor semantics (up to scalar). *)

open Oqec_base
open Oqec_circuit
open Oqec_zx
open Helpers

let circuit_matrix c = Unitary.unitary c
let zx_matrix g = Zx_tensor.matrix g

let check_translation name c =
  let g = Zx_circuit.of_circuit c in
  Alcotest.(check bool)
    (name ^ ": diagram matches circuit")
    true
    (Zx_tensor.proportional (circuit_matrix c) (zx_matrix g))

let test_translation_single_gates () =
  let gates =
    [
      Gate.I; Gate.X; Gate.Y; Gate.Z; Gate.H; Gate.S; Gate.Sdg; Gate.T; Gate.Tdg;
      Gate.Sx; Gate.Sxdg;
      Gate.Rx Phase.quarter_pi;
      Gate.Ry (Phase.of_pi_fraction 3 8);
      Gate.Rz (Phase.of_float 0.7);
      Gate.P Phase.half_pi;
      Gate.U (Phase.of_float 0.4, Phase.of_float 1.1, Phase.quarter_pi);
    ]
  in
  List.iter
    (fun g ->
      check_translation (Format.asprintf "%a" Gate.pp g)
        (Circuit.gate (Circuit.create 1) g 0))
    gates

let test_translation_two_qubit () =
  check_translation "cx" (Circuit.cx (Circuit.create 2) 0 1);
  check_translation "cx reversed" (Circuit.cx (Circuit.create 2) 1 0);
  check_translation "cz" (Circuit.cz (Circuit.create 2) 0 1);
  check_translation "cp" (Circuit.cp (Circuit.create 2) Phase.quarter_pi 0 1);
  check_translation "swap" (Circuit.swap (Circuit.create 2) 0 1);
  check_translation "h-cx-h" (Circuit.h (Circuit.cx (Circuit.h (Circuit.create 2) 1) 0 1) 1)

let test_translation_ghz () =
  let c = Circuit.cx (Circuit.cx (Circuit.h (Circuit.create 3) 0) 0 1) 0 2 in
  check_translation "ghz" c

(* Random small circuits for rewrite validation. *)
let random_circuit seed ~n ~len =
  let rng = Rng.make ~seed in
  let c = ref (Circuit.create n) in
  for _ = 1 to len do
    let q = Rng.int rng n in
    let q2 = (q + 1 + Rng.int rng (max 1 (n - 1))) mod n in
    match Rng.int rng 8 with
    | 0 -> c := Circuit.h !c q
    | 1 -> c := Circuit.t_gate !c q
    | 2 -> c := Circuit.s !c q
    | 3 -> c := Circuit.x !c q
    | 4 -> c := Circuit.rz !c (Phase.of_pi_fraction (Rng.int rng 16) 8) q
    | 5 | 6 -> if n > 1 then c := Circuit.cx !c q q2
    | _ -> if n > 1 then c := Circuit.cz !c q q2
  done;
  !c

let seed_arb = QCheck.(make ~print:string_of_int Gen.int)

let prop_translation =
  qtest ~count:60 "zx: translation preserves semantics" seed_arb (fun seed ->
      let n = 1 + (abs seed mod 3) in
      let c = random_circuit seed ~n ~len:6 in
      Zx_tensor.proportional (circuit_matrix c) (zx_matrix (Zx_circuit.of_circuit c)))

let check_pass_preserves name pass =
  qtest ~count:60 (Printf.sprintf "zx: %s preserves semantics" name) seed_arb
    (fun seed ->
      let n = 1 + (abs seed mod 3) in
      let c = random_circuit seed ~n ~len:6 in
      let g = Zx_circuit.of_circuit c in
      let before = zx_matrix g in
      pass g;
      Zx_tensor.proportional before (zx_matrix g))

let prop_spider = check_pass_preserves "spider fusion" (fun g -> ignore (Zx_simplify.spider_simp g))

let prop_to_gh = check_pass_preserves "colour change" Zx_simplify.to_gh

let prop_id =
  check_pass_preserves "identity removal" (fun g ->
      ignore (Zx_simplify.spider_simp g);
      Zx_simplify.to_gh g;
      ignore (Zx_simplify.id_simp g))

let prop_interior_clifford =
  check_pass_preserves "interior clifford simp" (fun g ->
      ignore (Zx_simplify.interior_clifford_simp g))

let prop_clifford =
  check_pass_preserves "clifford simp" (fun g -> ignore (Zx_simplify.clifford_simp g))

let prop_full_reduce =
  check_pass_preserves "full reduce" (fun g -> ignore (Zx_simplify.full_reduce g))

let prop_full_reduce_never_grows =
  qtest ~count:60 "zx: full reduce never grows the spider count" seed_arb (fun seed ->
      let n = 1 + (abs seed mod 3) in
      let c = random_circuit seed ~n ~len:8 in
      let g = Zx_circuit.of_circuit c in
      let before = Zx_graph.spider_count g in
      ignore (Zx_simplify.full_reduce g);
      Zx_graph.spider_count g <= before)

(* The headline behaviour: the miter of a circuit with itself reduces to
   bare wires with the identity permutation. *)
let prop_miter_reduces_to_identity =
  qtest ~count:60 "zx: miter of c with c reduces to identity wires" seed_arb
    (fun seed ->
      let n = 1 + (abs seed mod 3) in
      let c = random_circuit seed ~n ~len:8 in
      let g = Zx_circuit.of_miter c c in
      ignore (Zx_simplify.full_reduce g);
      match Zx_simplify.extract_permutation g with
      | Some p -> Perm.is_identity p
      | None -> false)

let test_swap_equals_three_cnots () =
  (* Example 6 / Eq. (2) of the paper. *)
  let sw = Circuit.swap (Circuit.create 2) 0 1 in
  let three =
    Circuit.cx (Circuit.cx (Circuit.cx (Circuit.create 2) 0 1) 1 0) 0 1
  in
  let g = Zx_circuit.of_miter sw three in
  ignore (Zx_simplify.full_reduce g);
  match Zx_simplify.extract_permutation g with
  | Some p -> Alcotest.(check bool) "identity" true (Perm.is_identity p)
  | None -> Alcotest.fail "did not reduce to wires"

let test_swapped_circuit_perm () =
  (* A bare SWAP against the empty circuit reduces to crossed wires. *)
  let sw = Circuit.swap (Circuit.create 2) 0 1 in
  let empty = Circuit.create 2 in
  let g = Zx_circuit.of_miter empty sw in
  ignore (Zx_simplify.full_reduce g);
  match Zx_simplify.extract_permutation g with
  | Some p -> Alcotest.(check bool) "transposition" true (Perm.equal p (Perm.of_array [| 1; 0 |]))
  | None -> Alcotest.fail "did not reduce to wires"

let test_broken_miter_detected () =
  let c = random_circuit 123 ~n:3 ~len:8 in
  let broken = Circuit.t_gate c 1 in
  let g = Zx_circuit.of_miter c broken in
  ignore (Zx_simplify.full_reduce g);
  (match Zx_simplify.extract_permutation g with
  | Some p -> Alcotest.(check bool) "not the identity if wires" false (Perm.is_identity p)
  | None -> ());
  (* An injected non-Clifford error must leave spiders behind. *)
  Alcotest.(check bool) "spiders remain" true (Zx_graph.spider_count g > 0)

let test_hadamard_pair_reduces () =
  let c = Circuit.h (Circuit.h (Circuit.create 1) 0) 0 in
  let g = Zx_circuit.of_circuit c in
  ignore (Zx_simplify.full_reduce g);
  match Zx_simplify.extract_permutation g with
  | Some p -> Alcotest.(check bool) "wire" true (Perm.is_identity p)
  | None -> Alcotest.fail "H H did not cancel"

let test_single_hadamard_not_identity () =
  let c = Circuit.h (Circuit.create 1) 0 in
  let g = Zx_circuit.of_circuit c in
  ignore (Zx_simplify.full_reduce g);
  Alcotest.(check bool) "no permutation" true (Zx_simplify.extract_permutation g = None)

let test_dot_exports () =
  let c = Circuit.cx (Circuit.h (Circuit.create 2) 0) 0 1 in
  let dot = Zx_export.to_dot (Zx_circuit.of_circuit c) in
  let contains needle s =
    let rec go i =
      i + String.length needle <= String.length s
      && (String.sub s i (String.length needle) = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "graph header" true (contains "graph zx" dot);
  Alcotest.(check bool) "green spider" true (contains "#ccffcc" dot);
  Alcotest.(check bool) "red spider" true (contains "#ffcccc" dot);
  Alcotest.(check bool) "boundary" true (contains "in0" dot);
  (* DD dot export sanity, in the same breath. *)
  let pkg = Oqec_dd.Dd.create () in
  let dd = Oqec_dd.Dd_circuit.of_circuit pkg c in
  let ddot = Oqec_dd.Dd_export.to_dot dd ~n:2 in
  Alcotest.(check bool) "dd digraph" true (contains "digraph dd" ddot);
  Alcotest.(check bool) "dd terminal" true (contains "label=\"1\"" ddot)

let test_spider_count_measure () =
  let c = random_circuit 7 ~n:3 ~len:10 in
  let g = Zx_circuit.of_circuit c in
  Alcotest.(check bool) "has spiders" true (Zx_graph.spider_count g > 0);
  Alcotest.(check int) "boundaries excluded" (Zx_graph.num_vertices g - 6)
    (Zx_graph.spider_count g)

let suite =
  [
    Alcotest.test_case "single-gate translations" `Quick test_translation_single_gates;
    Alcotest.test_case "two-qubit translations" `Quick test_translation_two_qubit;
    Alcotest.test_case "ghz translation" `Quick test_translation_ghz;
    prop_translation;
    prop_spider;
    prop_to_gh;
    prop_id;
    prop_interior_clifford;
    prop_clifford;
    prop_full_reduce;
    prop_full_reduce_never_grows;
    prop_miter_reduces_to_identity;
    Alcotest.test_case "swap = 3 cnots (ex. 6)" `Quick test_swap_equals_three_cnots;
    Alcotest.test_case "bare swap leaves a transposition" `Quick test_swapped_circuit_perm;
    Alcotest.test_case "broken miter detected" `Quick test_broken_miter_detected;
    Alcotest.test_case "h h cancels" `Quick test_hadamard_pair_reduces;
    Alcotest.test_case "single h is not a wire" `Quick test_single_hadamard_not_identity;
    Alcotest.test_case "spider count" `Quick test_spider_count_measure;
    Alcotest.test_case "dot exports" `Quick test_dot_exports;
  ]
