(* Decomposition passes are validated exactly (up to global phase) against
   the dense reference semantics. *)

open Oqec_base
open Oqec_circuit
open Helpers

let check_same_unitary msg original decomposed =
  check_matrix_up_to_phase msg (Unitary.unitary original) (Unitary.unitary decomposed)

let one_op n op = Circuit.add (Circuit.create n) op

let test_elementary_controlled_singles () =
  let cases =
    [
      ("cy", 2, Circuit.Ctrl ([ 0 ], Gate.Y, 1));
      ("ch", 2, Circuit.Ctrl ([ 0 ], Gate.H, 1));
      ("cs", 2, Circuit.Ctrl ([ 0 ], Gate.S, 1));
      ("ctdg", 2, Circuit.Ctrl ([ 1 ], Gate.Tdg, 0));
      ("csx", 2, Circuit.Ctrl ([ 0 ], Gate.Sx, 1));
      ("csxdg", 2, Circuit.Ctrl ([ 0 ], Gate.Sxdg, 1));
      ("crx", 2, Circuit.Ctrl ([ 0 ], Gate.Rx (Phase.of_pi_fraction 3 8), 1));
      ("cry", 2, Circuit.Ctrl ([ 0 ], Gate.Ry (Phase.of_float 0.9), 1));
      ("crz", 2, Circuit.Ctrl ([ 0 ], Gate.Rz Phase.quarter_pi, 1));
      ( "cu3",
        2,
        Circuit.Ctrl ([ 0 ], Gate.U (Phase.of_float 0.7, Phase.of_float 1.3, Phase.quarter_pi), 1)
      );
    ]
  in
  List.iter
    (fun (name, n, op) ->
      let c = one_op n op in
      let d = Decompose.elementary c in
      check_same_unitary name c d;
      let ok_op = function
        | Circuit.Gate _ | Circuit.Swap _ | Circuit.Barrier -> true
        | Circuit.Ctrl ([ _ ], (Gate.X | Gate.Z | Gate.P _), _) -> true
        | Circuit.Ctrl _ -> false
      in
      Alcotest.(check bool) (name ^ " elementary ops") true (List.for_all ok_op (Circuit.ops d)))
    cases

let test_toffoli_decomposition () =
  let c = one_op 3 (Circuit.Ctrl ([ 0; 1 ], Gate.X, 2)) in
  let d = Decompose.elementary c in
  check_same_unitary "ccx" c d;
  Alcotest.(check int) "6 cnots" 6 (Circuit.two_qubit_count d)

let test_mcx_decomposition () =
  List.iter
    (fun n_controls ->
      let n = n_controls + 1 in
      let cs = List.init n_controls (fun i -> i) in
      let c = one_op n (Circuit.Ctrl (cs, Gate.X, n_controls)) in
      let d = Decompose.elementary c in
      check_same_unitary (Printf.sprintf "mcx-%d" n_controls) c d)
    [ 3; 4; 5 ]

let test_mcx_weird_wire_order () =
  let c = one_op 4 (Circuit.Ctrl ([ 3; 0; 2 ], Gate.X, 1)) in
  check_same_unitary "mcx wire order" c (Decompose.elementary c)

let test_mcp_mcz () =
  let c = one_op 4 (Circuit.Ctrl ([ 0; 1; 2 ], Gate.P (Phase.of_pi_fraction 1 4), 3)) in
  check_same_unitary "mcp" c (Decompose.elementary c);
  let z = one_op 4 (Circuit.Ctrl ([ 0; 1; 2 ], Gate.Z, 3)) in
  check_same_unitary "mcz" z (Decompose.elementary z);
  let rz = one_op 3 (Circuit.Ctrl ([ 0; 1 ], Gate.Rz (Phase.of_pi_fraction 3 8), 2)) in
  check_same_unitary "mc-rz" rz (Decompose.elementary rz)

let test_to_cx_basis () =
  let c = Circuit.create 3 in
  let c = Circuit.cz c 0 1 in
  let c = Circuit.cp c Phase.quarter_pi 1 2 in
  let c = Circuit.swap c 0 2 in
  let c = Circuit.ccx c 0 1 2 in
  let d = Decompose.to_cx_basis ~keep_swaps:false c in
  check_same_unitary "cx basis" c d;
  let ok_op = function
    | Circuit.Gate _ | Circuit.Barrier -> true
    | Circuit.Ctrl ([ _ ], Gate.X, _) -> true
    | Circuit.Ctrl _ | Circuit.Swap _ -> false
  in
  Alcotest.(check bool) "only cx left" true (List.for_all ok_op (Circuit.ops d))

let test_multi_controlled_arbitrary () =
  let cases =
    [
      ("cch", 3, Circuit.Ctrl ([ 0; 1 ], Gate.H, 2));
      ("ccy", 3, Circuit.Ctrl ([ 0; 2 ], Gate.Y, 1));
      ("ccsx", 3, Circuit.Ctrl ([ 1; 2 ], Gate.Sx, 0));
      ("ccry", 3, Circuit.Ctrl ([ 0; 1 ], Gate.Ry (Phase.of_float 0.8), 2));
      ("cc-u3", 3, Circuit.Ctrl ([ 0; 1 ], Gate.U (Phase.of_float 0.5, Phase.of_float 1.7, Phase.of_float 2.9), 2));
      ("c3h", 4, Circuit.Ctrl ([ 0; 1; 2 ], Gate.H, 3));
      ("c3ry", 4, Circuit.Ctrl ([ 0; 2; 3 ], Gate.Ry (Phase.of_pi_fraction 3 8), 1));
    ]
  in
  List.iter
    (fun (name, n, op) ->
      let c = one_op n op in
      check_same_unitary name c (Decompose.elementary c))
    cases

let prop_elementary_preserves_random =
  qtest ~count:30 "decompose: elementary preserves random controlled circuits"
    QCheck.(make ~print:string_of_int Gen.int)
    (fun seed ->
      let rng = Rng.make ~seed in
      let n = 3 + Rng.int rng 2 in
      let c = ref (Circuit.create n) in
      for _ = 1 to 8 do
        let t = Rng.int rng n in
        let c1 = (t + 1 + Rng.int rng (n - 1)) mod n in
        let c2 = (t + 1 + ((c1 - t - 1 + 1 + Rng.int rng (n - 2)) mod (n - 1))) mod n in
        match Rng.int rng 6 with
        | 0 -> c := Circuit.add !c (Circuit.Ctrl ([ c1 ], Gate.Y, t))
        | 1 -> c := Circuit.add !c (Circuit.Ctrl ([ c1 ], Gate.H, t))
        | 2 ->
            c :=
              Circuit.add !c
                (Circuit.Ctrl ([ c1 ], Gate.Ry (Phase.of_pi_fraction (Rng.int rng 8) 4), t))
        | 3 ->
            if c1 <> c2 && c2 <> t then
              c := Circuit.add !c (Circuit.Ctrl ([ c1; c2 ], Gate.X, t))
        | 4 -> c := Circuit.h !c t
        | _ ->
            c :=
              Circuit.add !c
                (Circuit.Ctrl ([ c1 ], Gate.P (Phase.of_pi_fraction (Rng.int rng 16) 8), t))
      done;
      Dmatrix.equal_up_to_phase ~tol:1e-8
        (Unitary.unitary !c)
        (Unitary.unitary (Decompose.to_cx_basis ~keep_swaps:false (Decompose.elementary !c))))

let suite =
  [
    Alcotest.test_case "controlled single-qubit gates" `Quick test_elementary_controlled_singles;
    Alcotest.test_case "toffoli" `Quick test_toffoli_decomposition;
    Alcotest.test_case "mcx up to 5 controls" `Slow test_mcx_decomposition;
    Alcotest.test_case "mcx wire order" `Quick test_mcx_weird_wire_order;
    Alcotest.test_case "mcp / mcz / mc-rz" `Quick test_mcp_mcz;
    Alcotest.test_case "cx basis" `Quick test_to_cx_basis;
    Alcotest.test_case "multi-controlled arbitrary gates" `Quick test_multi_controlled_arbitrary;
    prop_elementary_preserves_random;
  ]
