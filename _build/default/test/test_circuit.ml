(* Tests for the circuit IR and its dense reference semantics. *)

open Oqec_base
open Oqec_circuit
open Helpers

(* ---------------------------------------------------------------- Gate *)

let all_fixed_gates =
  Gate.[ I; X; Y; Z; H; S; Sdg; T; Tdg; Sx; Sxdg ]

let some_param_gates =
  Gate.
    [
      Rx Phase.quarter_pi;
      Ry (Phase.of_pi_fraction 3 8);
      Rz Phase.half_pi;
      P (Phase.of_pi_fraction (-1) 3);
      U (Phase.quarter_pi, Phase.half_pi, Phase.pi);
      U (Phase.of_float 0.3, Phase.of_float 1.1, Phase.of_float (-0.7));
    ]

let test_gates_unitary () =
  let check g =
    Alcotest.(check bool)
      (Format.asprintf "%a unitary" Gate.pp g)
      true
      (Dmatrix.is_unitary ~tol:1e-9 (Gate.matrix g))
  in
  List.iter check (all_fixed_gates @ some_param_gates)

let test_gate_inverses () =
  let check g =
    let m = Dmatrix.mul (Gate.matrix (Gate.inverse g)) (Gate.matrix g) in
    Alcotest.(check bool)
      (Format.asprintf "%a inverse" Gate.pp g)
      true
      (Dmatrix.equal_up_to_phase ~tol:1e-9 m (Dmatrix.identity 2))
  in
  List.iter check (all_fixed_gates @ some_param_gates)

let test_gate_identities () =
  let m g = Gate.matrix g in
  check_matrix "S = P(pi/2)" (m Gate.S) (m (Gate.P Phase.half_pi));
  check_matrix "T = P(pi/4)" (m Gate.T) (m (Gate.P Phase.quarter_pi));
  check_matrix_up_to_phase "Z = Rz(pi)" (m Gate.Z) (m (Gate.Rz Phase.pi));
  check_matrix_up_to_phase "X = Rx(pi)" (m Gate.X) (m (Gate.Rx Phase.pi));
  check_matrix_up_to_phase "H = u(pi/2, 0, pi)"
    (m Gate.H)
    (m (Gate.U (Phase.half_pi, Phase.zero, Phase.pi)));
  check_matrix "HZH = X"
    (m Gate.X)
    (Dmatrix.mul (m Gate.H) (Dmatrix.mul (m Gate.Z) (m Gate.H)))

let test_gate_clifford () =
  Alcotest.(check bool) "H clifford" true (Gate.is_clifford Gate.H);
  Alcotest.(check bool) "T not clifford" false (Gate.is_clifford Gate.T);
  Alcotest.(check bool) "Rz(pi/2) clifford" true (Gate.is_clifford (Gate.Rz Phase.half_pi));
  Alcotest.(check bool) "Rz(pi/4) not" false (Gate.is_clifford (Gate.Rz Phase.quarter_pi))

(* ------------------------------------------------------------- Circuit *)

let ghz3 =
  let c = Circuit.create ~name:"ghz3" 3 in
  let c = Circuit.h c 0 in
  let c = Circuit.cx c 0 1 in
  Circuit.cx c 0 2

let test_circuit_counts () =
  Alcotest.(check int) "gates" 3 (Circuit.gate_count ghz3);
  Alcotest.(check int) "2q" 2 (Circuit.two_qubit_count ghz3);
  Alcotest.(check int) "depth" 3 (Circuit.depth ghz3);
  Alcotest.(check int) "t-count 0" 0 (Circuit.t_count ghz3);
  let c = Circuit.t_gate (Circuit.rz ghz3 Phase.quarter_pi 1) 0 in
  Alcotest.(check int) "t-count 2" 2 (Circuit.t_count c)

let test_circuit_validation () =
  let c = Circuit.create 2 in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Circuit.add: wire index out of range") (fun () ->
      ignore (Circuit.h c 2));
  Alcotest.check_raises "collision"
    (Invalid_argument "Circuit.add: colliding operands") (fun () ->
      ignore (Circuit.cx c 1 1));
  Alcotest.check_raises "empty controls"
    (Invalid_argument "Circuit.add: empty control list") (fun () ->
      ignore (Circuit.add c (Circuit.Ctrl ([], Gate.X, 0))))

let test_ghz_state () =
  let v = Unitary.basis_state 3 0 in
  Unitary.apply_to_vector ghz3 v;
  Alcotest.check cx_testable "amp |000>" Cx.sqrt2_inv v.(0);
  Alcotest.check cx_testable "amp |111>" Cx.sqrt2_inv v.(7);
  Alcotest.check cx_testable "amp |001>" Cx.zero v.(1)

(* Fig. 1b of the paper: the GHZ system matrix. *)
let test_ghz_system_matrix () =
  let u = Unitary.unitary ghz3 in
  let s = 1.0 /. sqrt 2.0 in
  Alcotest.check cx_testable "(0,0)" (Cx.make s 0.0) (Dmatrix.get u 0 0);
  Alcotest.check cx_testable "(7,0)" (Cx.make s 0.0) (Dmatrix.get u 7 0);
  Alcotest.check cx_testable "(0,1)" (Cx.make s 0.0) (Dmatrix.get u 0 1);
  Alcotest.check cx_testable "(7,1)" (Cx.make (-.s) 0.0) (Dmatrix.get u 7 1);
  Alcotest.(check bool) "unitary" true (Dmatrix.is_unitary u)

let test_circuit_inverse () =
  let c = Circuit.t_gate (Circuit.cx (Circuit.h (Circuit.create 2) 0) 0 1) 1 in
  let both = Circuit.append c (Circuit.inverse c) in
  check_matrix "c . c^-1 = I" (Dmatrix.identity 4) (Unitary.unitary both);
  (* Inversion must reverse the op order, not just invert gates in place. *)
  let asym = Circuit.cx (Circuit.h (Circuit.create 2) 0) 0 1 in
  (match Circuit.ops (Circuit.inverse asym) with
  | [ Circuit.Ctrl ([ 0 ], Gate.X, 1); Circuit.Gate (Gate.H, 0) ] -> ()
  | _ -> Alcotest.fail "inverse did not reverse op order")

let test_swap_semantics () =
  let c = Circuit.swap (Circuit.create 2) 0 1 in
  let expected = Dmatrix.permutation_matrix (Perm.of_array [| 1; 0 |]) in
  check_matrix "swap = P(0 1)" expected (Unitary.unitary c)

let test_swap_is_three_cnots () =
  let sw = Circuit.swap (Circuit.create 2) 0 1 in
  let three =
    let c = Circuit.create 2 in
    let c = Circuit.cx c 0 1 in
    let c = Circuit.cx c 1 0 in
    Circuit.cx c 0 1
  in
  check_matrix "swap = cx cx cx" (Unitary.unitary sw) (Unitary.unitary three)

let test_mcx () =
  let c = Circuit.mcx (Circuit.create 3) [ 0; 1 ] 2 in
  let u = Unitary.unitary c in
  (* Toffoli: |011> (3) <-> |111> (7), everything else fixed. *)
  Alcotest.check cx_testable "maps 3 -> 7" Cx.one (Dmatrix.get u 7 3);
  Alcotest.check cx_testable "maps 7 -> 3" Cx.one (Dmatrix.get u 3 7);
  Alcotest.check cx_testable "fixes 5" Cx.one (Dmatrix.get u 5 5)

let test_effective_unitary_layout () =
  (* A bare SWAP with matching output permutation is an effective identity. *)
  let c = Circuit.swap (Circuit.create 2) 0 1 in
  let c = Circuit.with_output_perm c (Some (Perm.of_array [| 1; 0 |])) in
  check_matrix "swap with perm metadata = I" (Dmatrix.identity 4)
    (Unitary.effective_unitary c)

let test_equivalent_reference () =
  let c1 = ghz3 in
  (* Same unitary with the last CNOT conjugated by SWAPs:
     swap12 . cx(0,1) . swap12 = cx(0,2). *)
  let c2 =
    let c = Circuit.create ~name:"ghz-swapped" 3 in
    let c = Circuit.h c 0 in
    let c = Circuit.cx c 0 1 in
    let c = Circuit.swap c 1 2 in
    let c = Circuit.cx c 0 1 in
    Circuit.swap c 1 2
  in
  Alcotest.(check bool) "fanout vs swap-conjugated" true (Unitary.equivalent c1 c2);
  let c3 = Circuit.x c2 0 in
  Alcotest.(check bool) "broken not equivalent" false (Unitary.equivalent c1 c3)

(* Random circuit generator for property tests. *)
let random_circuit rng n n_ops =
  let c = ref (Circuit.create n) in
  for _ = 1 to n_ops do
    let choice = Rng.int rng 5 in
    let q = Rng.int rng n in
    let q2 = (q + 1 + Rng.int rng (n - 1)) mod n in
    (match choice with
    | 0 -> c := Circuit.h !c q
    | 1 -> c := Circuit.t_gate !c q
    | 2 -> c := Circuit.cx !c q q2
    | 3 -> c := Circuit.rz !c (Phase.of_pi_fraction (Rng.int rng 16) 8) q
    | 4 -> c := Circuit.swap !c q q2
    | _ -> assert false)
  done;
  !c

let circuit_arb =
  QCheck.make
    ~print:(fun c -> Format.asprintf "%a" Circuit.pp c)
    QCheck.Gen.(
      int_range 2 4 >>= fun n ->
      int_range 0 12 >>= fun n_ops ->
      map
        (fun seed ->
          let rng = Rng.make ~seed in
          random_circuit rng n n_ops)
        int)

let prop_circuit_unitary =
  qtest ~count:50 "circuit: system matrix is unitary" circuit_arb (fun c ->
      Dmatrix.is_unitary ~tol:1e-8 (Unitary.unitary c))

let prop_inverse_cancels =
  qtest ~count:50 "circuit: c . inverse c = I (up to phase)" circuit_arb (fun c ->
      let both = Circuit.append c (Circuit.inverse c) in
      Dmatrix.equal_up_to_phase ~tol:1e-8 (Unitary.unitary both)
        (Dmatrix.identity (1 lsl Circuit.num_qubits c)))

let prop_depth_le_count =
  qtest ~count:50 "circuit: depth <= gate count" circuit_arb (fun c ->
      Circuit.depth c <= Circuit.gate_count c)

let test_render () =
  let text = Render.to_ascii ghz3 in
  let lines = String.split_on_char '\n' text in
  Alcotest.(check int) "5 wire+gap rows (plus trailing)" 6 (List.length lines);
  let contains needle =
    let rec search i =
      i + String.length needle <= String.length text
      && (String.sub text i (String.length needle) = needle || search (i + 1))
    in
    search 0
  in
  Alcotest.(check bool) "hadamard box" true (contains "[H]");
  Alcotest.(check bool) "control dot" true (contains "o");
  Alcotest.(check bool) "target" true (contains "(+)");
  Alcotest.(check bool) "connector" true (contains "|");
  (* Rendering must not raise on every op kind. *)
  let c = Circuit.create 4 in
  let c = Circuit.swap c 0 3 in
  let c = Circuit.ccx c 0 1 3 in
  let c = Circuit.rz c Phase.quarter_pi 2 in
  let c = Circuit.add c Circuit.Barrier in
  Alcotest.(check bool) "renders" true (String.length (Render.to_ascii c) > 0)

let suite =
  [
    Alcotest.test_case "ascii rendering" `Quick test_render;
    Alcotest.test_case "gates are unitary" `Quick test_gates_unitary;
    Alcotest.test_case "gate inverses" `Quick test_gate_inverses;
    Alcotest.test_case "gate identities" `Quick test_gate_identities;
    Alcotest.test_case "clifford detection" `Quick test_gate_clifford;
    Alcotest.test_case "circuit counts" `Quick test_circuit_counts;
    Alcotest.test_case "circuit validation" `Quick test_circuit_validation;
    Alcotest.test_case "ghz state preparation" `Quick test_ghz_state;
    Alcotest.test_case "ghz system matrix (fig 1b)" `Quick test_ghz_system_matrix;
    Alcotest.test_case "circuit inverse" `Quick test_circuit_inverse;
    Alcotest.test_case "swap semantics" `Quick test_swap_semantics;
    Alcotest.test_case "swap = 3 cnots" `Quick test_swap_is_three_cnots;
    Alcotest.test_case "toffoli semantics" `Quick test_mcx;
    Alcotest.test_case "effective unitary with layout" `Quick test_effective_unitary_layout;
    Alcotest.test_case "reference equivalence" `Quick test_equivalent_reference;
    prop_circuit_unitary;
    prop_inverse_cancels;
    prop_depth_le_count;
  ]
