  $ oqec generate ghz -n 3 -o ghz.qasm
  $ cat ghz.qasm
  $ oqec info ghz.qasm
  $ oqec compile ghz.qasm -a linear:5 -o ghz_lin.qasm
  $ grep -c measure ghz_lin.qasm
  $ oqec check ghz.qasm ghz_lin.qasm -s alternating > /dev/null
  $ oqec check ghz.qasm ghz_lin.qasm -s zx > /dev/null
  $ oqec check ghz.qasm ghz_lin.qasm -s combined > /dev/null
  $ oqec check ghz.qasm ghz_lin.qasm -s reference > /dev/null
  $ sed 's/cx q\[1\],q\[2\];/cx q[2],q[1];/' ghz_lin.qasm > broken.qasm
  $ oqec check ghz.qasm broken.qasm -s combined > /dev/null
  $ oqec check ghz.qasm ghz_lin.qasm -s simulation > /dev/null
  $ printf 'OPENQASM 2.0;\nqreg q[1];\nbogus q[0];\n' > bad.qasm
  $ oqec check bad.qasm bad.qasm 2>&1
