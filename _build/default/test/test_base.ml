(* Unit and property tests for the numeric base: Cx, Phase, Perm, Dmatrix. *)

open Oqec_base
open Helpers

(* ------------------------------------------------------------------ Cx *)

let test_cx_basic () =
  Alcotest.check cx_testable "add" (Cx.make 3.0 4.0)
    (Cx.add (Cx.make 1.0 1.0) (Cx.make 2.0 3.0));
  Alcotest.check cx_testable "mul i*i" Cx.minus_one (Cx.mul Cx.i Cx.i);
  Alcotest.check cx_testable "conj" (Cx.make 1.0 (-2.0)) (Cx.conj (Cx.make 1.0 2.0));
  Alcotest.check cx_testable "e_i pi" Cx.minus_one (Cx.e_i Float.pi);
  Alcotest.(check bool) "is_zero" true (Cx.is_zero (Cx.make 1e-12 (-1e-12)));
  Alcotest.(check bool) "not is_zero" false (Cx.is_zero (Cx.make 1e-3 0.0));
  Alcotest.(check (float 1e-12)) "mag2" 25.0 (Cx.mag2 (Cx.make 3.0 4.0))

let test_cx_polar () =
  let z = Cx.of_polar ~mag:2.0 ~arg:(Float.pi /. 3.0) in
  Alcotest.(check (float 1e-12)) "mag" 2.0 (Cx.mag z);
  Alcotest.(check (float 1e-12)) "arg" (Float.pi /. 3.0) (Cx.arg z)

(* --------------------------------------------------------------- Phase *)

let test_phase_canonical () =
  Alcotest.check phase_testable "2pi = 0" Phase.zero (Phase.of_pi_fraction 2 1);
  Alcotest.check phase_testable "-pi/2 = 3pi/2" Phase.minus_half_pi
    (Phase.of_pi_fraction 3 2);
  Alcotest.check phase_testable "4/8 = 1/2" Phase.half_pi (Phase.of_pi_fraction 4 8);
  Alcotest.check phase_testable "add" Phase.pi
    (Phase.add Phase.half_pi Phase.half_pi);
  Alcotest.check phase_testable "sub to zero" Phase.zero
    (Phase.sub Phase.quarter_pi Phase.quarter_pi)

let test_phase_predicates () =
  Alcotest.(check bool) "0 pauli" true (Phase.is_pauli Phase.zero);
  Alcotest.(check bool) "pi pauli" true (Phase.is_pauli Phase.pi);
  Alcotest.(check bool) "pi/2 not pauli" false (Phase.is_pauli Phase.half_pi);
  Alcotest.(check bool) "pi/2 proper clifford" true
    (Phase.is_proper_clifford Phase.half_pi);
  Alcotest.(check bool) "-pi/2 proper clifford" true
    (Phase.is_proper_clifford Phase.minus_half_pi);
  Alcotest.(check bool) "pi not proper" false (Phase.is_proper_clifford Phase.pi);
  Alcotest.(check bool) "pi/4 not clifford" false (Phase.is_clifford Phase.quarter_pi);
  Alcotest.(check bool) "pi/4 exact" true (Phase.is_exact Phase.quarter_pi)

let test_phase_of_float () =
  Alcotest.check phase_testable "snap pi/2" Phase.half_pi
    (Phase.of_float (Float.pi /. 2.0));
  Alcotest.check phase_testable "snap -pi/4" (Phase.of_pi_fraction 7 4)
    (Phase.of_float (-.Float.pi /. 4.0));
  Alcotest.(check bool) "irrational stays approx" false (Phase.is_exact (Phase.of_float 1.0));
  Alcotest.(check (float 1e-9)) "approx roundtrip" 1.0
    (Phase.to_float (Phase.of_float 1.0))

let test_phase_overflow_fallback () =
  (* Adding huge-denominator angles must not overflow: falls back to float. *)
  let a = Phase.of_pi_fraction 1 ((1 lsl 40) + 1) in
  let b = Phase.of_pi_fraction 1 ((1 lsl 40) - 1) in
  let s = Phase.add a b in
  Alcotest.(check (float 1e-9))
    "value preserved"
    (Phase.to_float a +. Phase.to_float b)
    (Phase.to_float s)

let phase_gen =
  QCheck.Gen.(
    oneof
      [
        map2 (fun n d -> Phase.of_pi_fraction n (1 lsl d)) (int_range (-32) 32) (int_range 0 6);
        map Phase.of_float (float_range (-10.0) 10.0);
      ])

let phase_arb = QCheck.make ~print:Phase.to_string phase_gen

let prop_phase_neg_add =
  qtest "phase: p + (-p) = 0" phase_arb (fun p ->
      Phase.is_zero (Phase.add p (Phase.neg p)))

let prop_phase_float_consistent =
  qtest "phase: add consistent with float add mod 2pi"
    QCheck.(pair phase_arb phase_arb)
    (fun (p, q) ->
      let s = Phase.to_float (Phase.add p q) in
      let expect = Phase.to_float p +. Phase.to_float q in
      let d = Float.rem (s -. expect) (4.0 *. Float.pi) in
      let d = Float.abs d in
      let two_pi = 2.0 *. Float.pi in
      d < 1e-6 || Float.abs (d -. two_pi) < 1e-6 || Float.abs (d -. (2.0 *. two_pi)) < 1e-6)

(* ---------------------------------------------------------------- Perm *)

let test_perm_basic () =
  let p = Perm.of_array [| 2; 0; 1 |] in
  Alcotest.(check int) "apply" 2 (Perm.apply p 0);
  Alcotest.(check bool) "id is id" true (Perm.is_identity (Perm.id 4));
  Alcotest.(check bool) "p not id" false (Perm.is_identity p);
  let q = Perm.inverse p in
  Alcotest.(check bool) "p . p^-1 = id" true (Perm.is_identity (Perm.compose p q))

let test_perm_invalid () =
  Alcotest.check_raises "not a bijection" (Invalid_argument "Perm.of_array: not a bijection")
    (fun () -> ignore (Perm.of_array [| 0; 0; 1 |]))

let test_perm_transpositions () =
  let p = Perm.of_array [| 3; 1; 0; 2 |] in
  let swaps = Perm.transpositions p in
  let rebuilt =
    List.fold_left (fun acc (a, b) -> Perm.swap acc a b) (Perm.id 4) swaps
  in
  Alcotest.(check bool) "rebuild" true (Perm.equal p rebuilt)

let perm_arb =
  QCheck.make
    ~print:(fun p -> Format.asprintf "%a" Perm.pp p)
    QCheck.Gen.(
      int_range 1 8 >>= fun n ->
      map
        (fun seed ->
          let rng = Rng.make ~seed in
          Perm.random (Rng.int rng) n)
        int)

let prop_perm_transpositions =
  qtest "perm: transpositions rebuild the permutation" perm_arb (fun p ->
      let rebuilt =
        List.fold_left
          (fun acc (a, b) -> Perm.swap acc a b)
          (Perm.id (Perm.size p))
          (Perm.transpositions p)
      in
      Perm.equal p rebuilt)

let prop_perm_compose_assoc =
  qtest "perm: inverse . p = id" perm_arb (fun p ->
      Perm.is_identity (Perm.compose (Perm.inverse p) p))

(* ------------------------------------------------------------- Dmatrix *)

let test_dmatrix_mul_identity () =
  let m = Dmatrix.make 4 4 (fun i j -> Cx.make (float_of_int ((i * 4) + j)) 1.0) in
  check_matrix "I*m = m" m (Dmatrix.mul (Dmatrix.identity 4) m);
  check_matrix "m*I = m" m (Dmatrix.mul m (Dmatrix.identity 4))

let test_dmatrix_kron () =
  let x = Dmatrix.make 2 2 (fun i j -> if i <> j then Cx.one else Cx.zero) in
  let i2 = Dmatrix.identity 2 in
  let xi = Dmatrix.kron x i2 in
  (* X (x) I swaps the high bit: entry (0, 2) must be 1. *)
  Alcotest.check cx_testable "entry" Cx.one (Dmatrix.get xi 0 2);
  Alcotest.check cx_testable "zero entry" Cx.zero (Dmatrix.get xi 0 1)

let test_dmatrix_unitarity () =
  let h =
    Dmatrix.make 2 2 (fun i j ->
        Cx.scale (if i = 1 && j = 1 then -1.0 else 1.0) Cx.sqrt2_inv)
  in
  Alcotest.(check bool) "H unitary" true (Dmatrix.is_unitary h);
  Alcotest.(check bool) "H*H = I" true
    (Dmatrix.equal ~tol:1e-9 (Dmatrix.mul h h) (Dmatrix.identity 2))

let test_dmatrix_phase_equal () =
  let m = Dmatrix.identity 4 in
  let m' = Dmatrix.scale (Cx.e_i 0.7) m in
  Alcotest.(check bool) "equal up to phase" true (Dmatrix.equal_up_to_phase m m');
  Alcotest.(check bool) "not exactly equal" false (Dmatrix.equal m m');
  Alcotest.(check (float 1e-9)) "hilbert-schmidt" 4.0 (Dmatrix.hilbert_schmidt m m')

let test_permutation_matrix () =
  (* Swap bits 0 and 1 on 2 qubits: |01> (index 1) -> |10> (index 2). *)
  let p = Perm.of_array [| 1; 0 |] in
  let m = Dmatrix.permutation_matrix p in
  Alcotest.check cx_testable "maps |1> to |2>" Cx.one (Dmatrix.get m 2 1);
  Alcotest.(check bool) "unitary" true (Dmatrix.is_unitary m)

let prop_permutation_matrix_compose =
  qtest "dmatrix: P(p) * P(q) = P(p . q)"
    QCheck.(pair perm_arb perm_arb)
    (fun (p, q) ->
      QCheck.assume (Perm.size p = Perm.size q);
      let lhs =
        Dmatrix.mul (Dmatrix.permutation_matrix p) (Dmatrix.permutation_matrix q)
      in
      let rhs = Dmatrix.permutation_matrix (Perm.compose p q) in
      Dmatrix.equal ~tol:1e-9 lhs rhs)

let suite =
  [
    Alcotest.test_case "cx basic ops" `Quick test_cx_basic;
    Alcotest.test_case "cx polar" `Quick test_cx_polar;
    Alcotest.test_case "phase canonicalisation" `Quick test_phase_canonical;
    Alcotest.test_case "phase predicates" `Quick test_phase_predicates;
    Alcotest.test_case "phase of_float snapping" `Quick test_phase_of_float;
    Alcotest.test_case "phase overflow fallback" `Quick test_phase_overflow_fallback;
    prop_phase_neg_add;
    prop_phase_float_consistent;
    Alcotest.test_case "perm basics" `Quick test_perm_basic;
    Alcotest.test_case "perm validation" `Quick test_perm_invalid;
    Alcotest.test_case "perm transpositions" `Quick test_perm_transpositions;
    prop_perm_transpositions;
    prop_perm_compose_assoc;
    Alcotest.test_case "dmatrix identity" `Quick test_dmatrix_mul_identity;
    Alcotest.test_case "dmatrix kron" `Quick test_dmatrix_kron;
    Alcotest.test_case "dmatrix unitarity" `Quick test_dmatrix_unitarity;
    Alcotest.test_case "dmatrix equal up to phase" `Quick test_dmatrix_phase_equal;
    Alcotest.test_case "permutation matrix" `Quick test_permutation_matrix;
    prop_permutation_matrix_compose;
  ]
